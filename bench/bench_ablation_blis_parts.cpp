// Ablation (ours, motivated by §VI-A/§VI-C): which parts of the BLIS-like
// 6-loop implementation matter on which machine? Toggles A-packing,
// B-packing and prefetch independently on RVV @ gem5 and A64FX.
//
// Expected: on A64FX each feature contributes (prefetch and B-panel packing
// most); on RVV none of them help much — the co-design insight behind the
// paper's "not all optimizations are portable" conclusion.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Ablation — BLIS feature toggles per machine",
                      "Sections VI-A and VI-C (mechanism breakdown)", opt);

  struct Variant {
    const char* name;
    bool pack_a, pack_b, prefetch;
  };
  const Variant variants[] = {
      {"all features", true, true, true},
      {"no prefetch", true, true, false},
      {"no A packing", false, true, true},
      {"no B packing", true, false, true},
      {"blocking only", false, false, false},
  };

  Table table({"machine", "variant", "conv cycles (M)", "vs all-features"});
  for (const auto& machine : {sim::rvv_gem5(), sim::a64fx()}) {
    std::uint64_t base = 0;
    for (const auto& v : variants) {
      if (opt.quick && std::string(v.name).rfind("no ", 0) == 0) continue;
      gemm::Opt6Config cfg;
      cfg.blocks = gemm::tune_block_sizes(machine);
      cfg.pack_a = v.pack_a;
      cfg.pack_b = v.pack_b;
      cfg.prefetch = v.prefetch;
      auto net = dnn::build_yolov3_first4conv(opt.input_hw, opt.seed);
      const auto cycles = core::conv_cycles(
          core::run_simulated(*net, machine, core::EnginePolicy::opt6loop(cfg)));
      if (base == 0) base = cycles;
      table.add_row({machine.name, v.name, bench::mcycles(cycles),
                     Table::fmt(static_cast<double>(cycles) /
                                    static_cast<double>(base),
                                2) + "x"});
    }
  }
  table.print();
  std::printf("\nShape check: removing features hurts A64FX clearly but "
              "moves RVV little.\n");
  return 0;
}

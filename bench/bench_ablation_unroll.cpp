// Ablation (§VI-A): unroll-factor sweep for the optimized 3-loop GEMM on
// RISC-V Vector @ gem5.
//
// Paper finding: no significant gain beyond 16 registers; forcing 32
// accumulators spills and costs ~15%.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Ablation — 3-loop unroll factor (RVV @ gem5)",
                      "Section VI-A (register-utilization tuning)", opt);

  const int unrolls[] = {1, 2, 4, 8, 16, 24, 32};
  std::uint64_t base16 = 0;

  // First compute the unroll=16 reference.
  {
    auto net = dnn::build_yolov3_first4conv(opt.input_hw, opt.seed);
    base16 = core::conv_cycles(core::run_simulated(
        *net, sim::rvv_gem5().with_vlen(2048), core::EnginePolicy::opt3loop(16)));
  }

  Table table({"unroll factor", "conv cycles (M)", "relative to unroll=16",
               "note"});
  for (int u : unrolls) {
    if (opt.quick && (u == 2 || u == 24)) continue;
    auto net = dnn::build_yolov3_first4conv(opt.input_hw, opt.seed);
    const auto cycles = core::conv_cycles(core::run_simulated(
        *net, sim::rvv_gem5().with_vlen(2048), core::EnginePolicy::opt3loop(u)));
    std::string note;
    if (u == 16) note = "paper's chosen factor";
    if (u == 32) note = "spills accumulators (paper: ~15% loss)";
    table.add_row({std::to_string(u), bench::mcycles(cycles),
                   Table::fmt(static_cast<double>(cycles) /
                                  static_cast<double>(base16),
                              2) + "x",
                   note});
  }
  table.print();
  std::printf("\nShape check: cost falls until ~16, flattens, and rises "
              "again at 32 due to spilling.\n");
  return 0;
}

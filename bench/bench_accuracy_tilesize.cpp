// Tile-size study (§IV-B claim validation): the paper keeps Winograd at
// 8x8 tiles and vectorizes ACROSS channels because "vectorizing the
// transformations with longer vector lengths would require a larger tile
// size, however, in this case, the numerical accuracy would drop".
// This harness quantifies that trade-off: fp32 max error vs direct
// convolution for F(2x2,3x3), F(4x4,3x3) and F(6x6,3x3), next to each
// variant's arithmetic reduction.

#include "bench_common.hpp"
#include "winograd/variants.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Tile-size study — accuracy vs arithmetic reduction",
                      "Section IV-B (design rationale for 8x8 tiles)", opt);

  const winograd::WinogradVariant* variants[] = {
      &winograd::f2x3(), &winograd::f4x3(), &winograd::f6x3_variant()};
  const int seeds = opt.quick ? 3 : 10;
  const int hw = 48;

  Table table({"variant", "tile", "mult. reduction", "max |err| (mag 1)",
               "max |err| (mag 8)"});
  for (const auto* v : variants) {
    double err1 = 0.0, err8 = 0.0;
    for (int s = 1; s <= seeds; ++s) {
      err1 = std::max(err1, winograd::variant_max_error(*v, hw, hw,
                                                        static_cast<std::uint64_t>(s), 1.0f));
      err8 = std::max(err8, winograd::variant_max_error(*v, hw, hw,
                                                        static_cast<std::uint64_t>(s), 8.0f));
    }
    table.add_row({v->name,
                   std::to_string(v->in_tile) + "x" + std::to_string(v->in_tile),
                   Table::fmt(v->arithmetic_reduction(), 2) + "x",
                   Table::fmt(err1 * 1e6, 1) + "e-6",
                   Table::fmt(err8 * 1e6, 1) + "e-6"});
  }
  table.print();
  std::printf("\nShape check: error grows with tile size while the\n"
              "multiplication reduction saturates — the co-design reason the\n"
              "paper vectorizes across channels instead of growing tiles.\n");
  return 0;
}

#pragma once

// Shared harness utilities for the paper-reproduction benchmarks.
//
// Workload scaling: the paper simulates Darknet at a 608x608 network input
// on gem5, which takes hours per data point. These harnesses default to a
// reduced input resolution (96x96, --input=N to change). Crucially, the
// GEMM K dimension (channels x kernel area) and the vector-length-dependent
// working sets (K x VL strips) are *independent of resolution*, so the
// VL/cache-capacity interactions of Tables II/III and Figs 6-10 are
// preserved; only absolute cycle counts shrink. EXPERIMENTS.md records the
// mapping and the paper-vs-measured comparison for every experiment.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/codesign.hpp"
#include "core/conv_engine.hpp"
#include "core/roofline.hpp"
#include "dnn/models.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::bench {

struct BenchOptions {
  int input_hw = 96;       ///< network input resolution (paper: 608)
  int vgg_input_hw = 64;   ///< VGG16 input resolution (paper: 224)
  bool quick = false;      ///< trim sweeps for smoke runs
  std::uint64_t seed = 1234;
  std::string json_path;   ///< --json=<path>: machine-readable records

  static BenchOptions from_cli(int argc, char** argv) {
    CliArgs args(argc, argv);
    BenchOptions o;
    o.input_hw = static_cast<int>(args.get_int("input", 96));
    o.vgg_input_hw = static_cast<int>(args.get_int("vgg-input", 64));
    o.quick = args.get_bool("quick", false);
    o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
    o.json_path = args.get("json", "");
    return o;
  }
};

/// Machine-readable benchmark records (the perf trajectory the repo tracks
/// as BENCH_*.json): one `{bench, config, wall_ms, bytes_moved, ...}` object
/// per measured configuration, written as a JSON array when a `--json=path`
/// flag is given. With no path, add()/write() are no-ops, so harnesses can
/// record unconditionally.
class BenchJson {
 public:
  BenchJson(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one configuration. `extra` holds additional numeric fields
  /// (e.g. {"cycles", 1e6} or {"speedup", 1.4}).
  void add(const std::string& config, double wall_ms, double bytes_moved,
           const std::vector<std::pair<std::string, double>>& extra = {}) {
    if (!enabled()) return;
    records_.push_back({config, wall_ms, bytes_moved, extra});
  }

  /// Writes the records; returns false (with a message on stderr) on I/O
  /// failure so CI smoke steps fail loudly.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      // %.17g round-trips doubles exactly: the records exist to catch
      // traffic/time regressions across PRs, so exact counters (bytes,
      // cycles) must not be rounded away.
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"wall_ms\": %.17g, \"bytes_moved\": %.17g",
                   escape(bench_).c_str(), escape(r.config).c_str(),
                   r.wall_ms, r.bytes_moved);
      for (const auto& [key, value] : r.extra)
        std::fprintf(f, ", \"%s\": %.17g", escape(key).c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    const bool ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error: failed writing %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %zu records to %s\n", records_.size(), path_.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it simple
      out.push_back(c);
    }
    return out;
  }

  struct Record {
    std::string config;
    double wall_ms;
    double bytes_moved;
    std::vector<std::pair<std::string, double>> extra;
  };
  std::string bench_;
  std::string path_;
  std::vector<Record> records_;
};

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const BenchOptions& o) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload scale: input %dx%d (paper: 608x608); see EXPERIMENTS.md\n\n",
              o.input_hw, o.input_hw);
  std::fflush(stdout);
}

/// Cycle count formatted in units of 1e6 for readability.
inline std::string mcycles(std::uint64_t c) {
  return Table::fmt(static_cast<double>(c) / 1e6, 1);
}

inline std::string ratio(std::uint64_t base, std::uint64_t v) {
  return Table::fmt(static_cast<double>(base) / static_cast<double>(v), 2) + "x";
}

/// The paper's L2 sweep points (Figs 7-10).
inline std::vector<std::uint64_t> l2_sweep_bytes(bool quick) {
  if (quick)
    return {1ull << 20, 8ull << 20};
  return {1ull << 20, 8ull << 20, 64ull << 20, 256ull << 20};
}

}  // namespace vlacnn::bench

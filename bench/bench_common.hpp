#pragma once

// Shared harness utilities for the paper-reproduction benchmarks.
//
// Workload scaling: the paper simulates Darknet at a 608x608 network input
// on gem5, which takes hours per data point. These harnesses default to a
// reduced input resolution (96x96, --input=N to change). Crucially, the
// GEMM K dimension (channels x kernel area) and the vector-length-dependent
// working sets (K x VL strips) are *independent of resolution*, so the
// VL/cache-capacity interactions of Tables II/III and Figs 6-10 are
// preserved; only absolute cycle counts shrink. EXPERIMENTS.md records the
// mapping and the paper-vs-measured comparison for every experiment.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/codesign.hpp"
#include "core/conv_engine.hpp"
#include "core/roofline.hpp"
#include "dnn/layers.hpp"
#include "dnn/models.hpp"
#include "sim/address_map.hpp"
#include "sim/machine_config.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::bench {

struct BenchOptions {
  int input_hw = 96;       ///< network input resolution (paper: 608)
  int vgg_input_hw = 64;   ///< VGG16 input resolution (paper: 224)
  bool quick = false;      ///< trim sweeps for smoke runs
  std::uint64_t seed = 1234;
  std::string json_path;   ///< --json=<path>: machine-readable records

  static BenchOptions from_cli(int argc, char** argv) {
    CliArgs args(argc, argv);
    BenchOptions o;
    o.input_hw = static_cast<int>(args.get_int("input", 96));
    o.vgg_input_hw = static_cast<int>(args.get_int("vgg-input", 64));
    o.quick = args.get_bool("quick", false);
    o.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
    o.json_path = args.get("json", "");
    return o;
  }
};

// BenchJson moved to common/bench_json.hpp (serving examples emit the same
// records); included above so every bench keeps using bench::BenchJson.

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const BenchOptions& o) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload scale: input %dx%d (paper: 608x608); see EXPERIMENTS.md\n\n",
              o.input_hw, o.input_hw);
  std::fflush(stdout);
}

/// Cycle count formatted in units of 1e6 for readability.
inline std::string mcycles(std::uint64_t c) {
  return Table::fmt(static_cast<double>(c) / 1e6, 1);
}

inline std::string ratio(std::uint64_t base, std::uint64_t v) {
  return Table::fmt(static_cast<double>(base) / static_cast<double>(v), 2) + "x";
}

/// `--machine=sve|rvv|a64fx` → MachineConfig (default: gem5's SVE model).
inline sim::MachineConfig machine_from_name(const std::string& name) {
  if (name == "rvv") return sim::rvv_gem5();
  if (name == "a64fx") return sim::a64fx();
  return sim::sve_gem5();
}

/// Per-item DRAM bytes attributed to `layer`'s weight stream — DRAM line
/// fills, on a fresh instrumented run under `policy`, whose address falls
/// in [weights, weights+weight_bytes) or in the layer's resident packed
/// image (when `conv_desc` is given and the policy packs it). The batch is
/// `input`'s N: batch-fused when the policy is weight-resident and the
/// layer supports it, per item otherwise. The single definition of the
/// "weight DRAM bytes/item" metric shared by bench_fused_conv's
/// weight-residency section and bench_weight_reuse, so the two benches'
/// JSON records cannot drift.
inline double weight_dram_bytes_per_item(
    dnn::Layer& layer, const float* weights, std::uint64_t weight_bytes,
    const dnn::ConvDesc* conv_desc, core::BackendPlan plan, bool batch_fused,
    const sim::MachineConfig& machine, const dnn::Tensor& input) {
  sim::SimContext sctx(machine);
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(std::move(plan));
  engine.install(ctx);
  if (conv_desc != nullptr) {
    engine.prepare(*conv_desc, weights);
    // Watch the layer's resident image in the format the plan routes it
    // to (falling back to the fp32 image — e.g. a quantized plan whose
    // image was not retained); an int8 image's scale vector streams too,
    // and a sparse image's bitmap/offset metadata — the skip test reads it
    // on every panel, so leaving it unwatched would flatter the format.
    const gemm::PackFormat fmt =
        core::backend_pack_format(engine.plan().backend_for(*conv_desc));
    const int density_pm = gemm::pack_format_sparse(fmt)
                               ? engine.plan().sparsity_pm
                               : 1000;
    auto img = engine.packed_weights().find(
        weights, conv_desc->gemm_m(), conv_desc->gemm_k(),
        engine.plan().opt6.blocks.block_k, fmt, density_pm);
    if (img == nullptr && fmt != gemm::PackFormat::F32)
      img = engine.packed_weights().find(weights, conv_desc->gemm_m(),
                                         conv_desc->gemm_k(),
                                         engine.plan().opt6.blocks.block_k);
    if (img != nullptr) {
      sctx.memory().add_dram_watch(
          sim::AddressMap::instance().translate(img->raw()),
          img->data_bytes());
      if (img->scales() != nullptr)
        sctx.memory().add_dram_watch(
            sim::AddressMap::instance().translate(img->scales()),
            img->scales_bytes());
      if (img->sparse_meta() != nullptr)
        sctx.memory().add_dram_watch(
            sim::AddressMap::instance().translate(img->sparse_meta()),
            img->sparse_meta_bytes());
    }
  }
  sctx.memory().add_dram_watch(
      sim::AddressMap::instance().translate(weights), weight_bytes);

  const int batch = input.n();
  const std::vector<const dnn::Tensor*> ins{&input};
  layer.prepare_batch(ins);
  bool fused = false;
  if (batch > 1 && batch_fused) fused = layer.forward_batch(ctx, ins);
  if (!fused)
    for (int b = 0; b < batch; ++b) layer.forward_item(ctx, ins, b);
  return static_cast<double>(sctx.memory().watched_dram_line_fills()) *
         machine.l2.line_bytes / batch;
}

/// EnginePolicy convenience overload (the historical signature).
inline double weight_dram_bytes_per_item(
    dnn::Layer& layer, const float* weights, std::uint64_t weight_bytes,
    const dnn::ConvDesc* conv_desc, const core::EnginePolicy& policy,
    const sim::MachineConfig& machine, const dnn::Tensor& input) {
  return weight_dram_bytes_per_item(layer, weights, weight_bytes, conv_desc,
                                    core::BackendPlan::uniform(policy),
                                    policy.weight_resident, machine, input);
}

/// The paper's L2 sweep points (Figs 7-10).
inline std::vector<std::uint64_t> l2_sweep_bytes(bool quick) {
  if (quick)
    return {1ull << 20, 8ull << 20};
  return {1ull << 20, 8ull << 20, 64ull << 20, 256ull << 20};
}

}  // namespace vlacnn::bench

// Fig. 10: impact of vector length and L2 cache size with Winograd on
// ARM-SVE @ gem5 for VGG16 (all 13 conv layers are 3x3/stride-1, so the
// entire network runs through Winograd).
//
// Paper finding: 1.4x from 512 -> 2048-bit; 1.4x from 1 MB -> 64 MB and
// flat beyond — Winograd has smaller cache requirements than im2col+GEMM.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Fig. 10 — VL x L2 sweep, Winograd VGG16 (ARM-SVE @ gem5)",
                      "Fig. 10", opt);
  std::printf("VGG16 input: %dx%d (paper: 224x224)\n\n", opt.vgg_input_hw,
              opt.vgg_input_hw);

  const unsigned vlens[] = {512, 1024, 2048};
  const auto l2s = bench::l2_sweep_bytes(opt.quick);
  const core::EnginePolicy policy = core::EnginePolicy::winograd();

  std::uint64_t base = 0;
  Table table({"vector length", "L2 size", "cycles (M)",
               "speedup vs 512b/1MB", "L2 miss rate %"});
  for (unsigned vl : vlens) {
    for (std::uint64_t l2 : l2s) {
      auto net = dnn::build_vgg16(opt.vgg_input_hw, -1, opt.seed);
      const core::RunResult r = core::run_simulated(
          *net, sim::sve_gem5().with_vlen(vl).with_l2_size(l2), policy);
      if (base == 0) base = r.cycles;
      table.add_row({std::to_string(vl) + "-bit",
                     std::to_string(l2 >> 20) + "MB", bench::mcycles(r.cycles),
                     bench::ratio(base, r.cycles),
                     Table::fmt(100.0 * r.l2_miss_rate, 1)});
    }
  }
  table.print();
  std::printf("\nShape check: cache gains flatten at moderate sizes (paper: "
              "no benefit beyond 64MB) — Winograd's working set is compact.\n");
  return 0;
}

// Fig. 6: impact of the vector length on RISC-V Vector @ gem5 for YOLOv3
// (first 20 layers), constant 1 MB L2 and 8 vector lanes.
//
// Paper finding: 512-bit -> 16384-bit improves performance ~2.5x, but the
// curve saturates beyond 8192-bit because the L2 miss rate climbs (see
// Table III) — longer vectors amortize startup/scalar overhead yet demand
// more data per cycle from a fixed-size cache.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Fig. 6 — vector-length scaling (RVV @ gem5, 1 MB L2)",
                      "Fig. 6", opt);

  const unsigned vlens[] = {512, 1024, 2048, 4096, 8192, 16384};

  std::uint64_t base_cycles = 0;
  Table table({"vector length", "cycles (M)", "speedup vs 512-bit",
               "L2 miss rate %"});
  for (unsigned vl : vlens) {
    if (opt.quick && vl > 4096) break;
    auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
    const core::RunResult r = core::run_simulated(
        *net, sim::rvv_gem5().with_vlen(vl), core::EnginePolicy::opt3loop());
    if (base_cycles == 0) base_cycles = r.cycles;
    table.add_row({std::to_string(vl) + "-bit", bench::mcycles(r.cycles),
                   bench::ratio(base_cycles, r.cycles),
                   Table::fmt(100.0 * r.l2_miss_rate, 1)});
  }
  table.print();
  std::printf("\nShape check: monotone speedup, ~2-3x at the longest VL, "
              "flattening beyond 8192-bit (paper: 2.5x, saturating).\n");
  return 0;
}

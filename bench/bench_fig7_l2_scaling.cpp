// Fig. 7: impact of the L2 cache size (1..256 MB) on RISC-V Vector @ gem5
// for YOLOv3 (first 20 layers), 8 vector lanes, per vector length.
//
// Paper finding: larger L2 improves performance 1.5x for VLs up to
// 4096-bit and 1.7-1.9x for 8192/16384-bit (longer vectors need bigger
// caches); at 256 MB the 16384-bit VL is only ~5% ahead of 8192-bit.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Fig. 7 — L2 size scaling per vector length (RVV @ gem5)",
                      "Fig. 7", opt);

  const std::vector<unsigned> vlens =
      opt.quick ? std::vector<unsigned>{512, 4096}
                : std::vector<unsigned>{512, 1024, 2048, 4096, 8192, 16384};
  const auto l2s = bench::l2_sweep_bytes(opt.quick);

  Table table({"vector length", "L2 size", "cycles (M)", "speedup vs 1MB",
               "L2 miss rate %"});
  for (unsigned vl : vlens) {
    std::uint64_t base = 0;
    for (std::uint64_t l2 : l2s) {
      auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
      const core::RunResult r =
          core::run_simulated(*net, sim::rvv_gem5().with_vlen(vl).with_l2_size(l2),
                              core::EnginePolicy::opt3loop());
      if (base == 0) base = r.cycles;
      table.add_row({std::to_string(vl) + "-bit",
                     std::to_string(l2 >> 20) + "MB", bench::mcycles(r.cycles),
                     bench::ratio(base, r.cycles),
                     Table::fmt(100.0 * r.l2_miss_rate, 1)});
    }
  }
  table.print();
  std::printf("\nShape check: gains from larger L2 grow with VL; the longest "
              "VLs converge at the largest cache (paper: 1.5x short VLs, "
              "1.7-1.9x long VLs, ~5%% gap 8192 vs 16384 @ 256MB).\n");
  return 0;
}

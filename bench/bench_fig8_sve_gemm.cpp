// Fig. 8: impact of vector length (512/1024/2048-bit) and L2 cache size
// (1..256 MB) on ARM-SVE @ gem5 for YOLOv3 (first 20 layers) with the
// optimized im2col+GEMM (6-loop).
//
// Paper finding: 512 -> 2048-bit gives 1.34x at 1 MB; 1 MB -> 256 MB gives
// 1.6x at 2048-bit. Lanes are proportional to the vector length on this
// machine, as in gem5's SVE model.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Fig. 8 — VL x L2 sweep, im2col+GEMM (ARM-SVE @ gem5)",
                      "Fig. 8", opt);

  const unsigned vlens[] = {512, 1024, 2048};
  const auto l2s = bench::l2_sweep_bytes(opt.quick);

  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(sim::sve_gem5());
  const core::EnginePolicy policy = core::EnginePolicy::opt6loop(o6);

  std::uint64_t base_512_1mb = 0;
  Table table({"vector length", "L2 size", "cycles (M)",
               "speedup vs 512b/1MB", "L2 miss rate %"});
  for (unsigned vl : vlens) {
    for (std::uint64_t l2 : l2s) {
      auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
      const core::RunResult r = core::run_simulated(
          *net, sim::sve_gem5().with_vlen(vl).with_l2_size(l2), policy);
      if (base_512_1mb == 0) base_512_1mb = r.cycles;
      table.add_row({std::to_string(vl) + "-bit",
                     std::to_string(l2 >> 20) + "MB", bench::mcycles(r.cycles),
                     bench::ratio(base_512_1mb, r.cycles),
                     Table::fmt(100.0 * r.l2_miss_rate, 1)});
    }
  }
  table.print();
  std::printf("\nShape check: both longer vectors and larger caches help "
              "(paper: 1.34x from VL @ 1MB, 1.6x from L2 @ 2048-bit).\n");
  return 0;
}

// Fig. 9: impact of vector length and L2 cache size with the Winograd-
// enabled convolution engine on ARM-SVE @ gem5 for YOLOv3 (first 20
// layers). Winograd handles the 3x3/stride-1 layers; all other layers fall
// back to the optimized im2col+GEMM (paper §VII-B).
//
// Paper finding: 1.4x from 512 -> 2048-bit at 1 MB; 1.75x from 1 MB ->
// 256 MB (several YOLOv3 layers still invoke im2col+GEMM, which keeps some
// cache appetite).

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header(
      "Fig. 9 — VL x L2 sweep, Winograd-enabled YOLOv3 (ARM-SVE @ gem5)",
      "Fig. 9", opt);

  const unsigned vlens[] = {512, 1024, 2048};
  const auto l2s = bench::l2_sweep_bytes(opt.quick);
  const core::EnginePolicy policy = core::EnginePolicy::winograd();

  std::uint64_t base = 0;
  Table table({"vector length", "L2 size", "cycles (M)",
               "speedup vs 512b/1MB", "L2 miss rate %"});
  for (unsigned vl : vlens) {
    for (std::uint64_t l2 : l2s) {
      auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
      const core::RunResult r = core::run_simulated(
          *net, sim::sve_gem5().with_vlen(vl).with_l2_size(l2), policy);
      if (base == 0) base = r.cycles;
      table.add_row({std::to_string(vl) + "-bit",
                     std::to_string(l2 >> 20) + "MB", bench::mcycles(r.cycles),
                     bench::ratio(base, r.cycles),
                     Table::fmt(100.0 * r.l2_miss_rate, 1)});
    }
  }
  table.print();
  std::printf("\nShape check: VL gain ~1.4x; cache gain present but smaller "
              "than GEMM's (paper: 1.75x to 256MB).\n");
  return 0;
}

// Fused vs unfused convolution pipeline: per-layer bytes moved and wall
// time.
//
// The unfused Darknet pipeline streams the output tensor up to five times
// per conv layer (fill, GEMM accumulate, normalize, bias, activation) and
// materializes a full K×N im2col workspace that the GEMM pack stage then
// re-reads. The fused pipeline (EnginePolicy::fused) gathers im2col patches
// per (kc, nc) panel straight from the input, stores the first k-panel with
// beta=0, and applies the epilogue on the microkernel's final tile store —
// so the workspace, the fill pass and the post-passes disappear.
//
// Two traffic metrics per layer:
//   * bytes moved (DRAM): simulated line fills on --machine (default
//     arm-sve-gem5, 1 MB L2) — the off-chip traffic the paper's roofline
//     argues conv is bounded by. Expected reduction on VGG-style shapes:
//     well above 30%.
//   * bytes moved (engine): every vector/scalar load+store byte the kernels
//     issue, cache-blind (functional counters).
// Wall time is measured functionally (host speed), min over --reps.
//
//   ./bench_fused_conv [--model=vgg|tiny] [--vgg-input=128] [--input=96]
//                      [--machine=sve|rvv|a64fx] [--reps=3] [--quick]
//                      [--json=<path>]
//
// --json emits one {bench, config, wall_ms, bytes_moved, ...} record per
// (layer, mode) for the perf trajectory (BENCH_*.json).
//
// The VGG default here is 128 (not the 64 the cycle-accuracy benches use):
// below that, VGG's last conv block collapses to a 4x4 spatial extent whose
// im2col workspace fits L2 outright — those layers become pure
// weight-streaming (M*K dominates K*N), which no amount of fusion can cut,
// and the per-layer reduction column bottoms out for a reason that has
// nothing to do with the pipeline under test.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dnn/layers.hpp"
#include "sim/address_map.hpp"

using namespace vlacnn;

namespace {

struct LayerCase {
  std::string name;  // "L3 conv 128 3x3/1"
  dnn::ConvDesc desc;
  std::uint64_t seed;
};

struct Measurement {
  double wall_ms = 0.0;
  double dram_bytes = 0.0;
  double engine_bytes = 0.0;
  std::uint64_t cycles = 0;
};

std::vector<LayerCase> conv_layers(const dnn::Network& net,
                                   const std::string& model) {
  std::vector<LayerCase> cases;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    cases.push_back({model + " L" + std::to_string(i) + " " + conv->name(),
                     conv->desc(), 1000 + i});
  }
  return cases;
}

Measurement measure(const LayerCase& lc, const core::EnginePolicy& policy,
                    const sim::MachineConfig& machine, int reps) {
  Measurement m;
  // Traffic: one instrumented pass (fresh caches, deterministic layout).
  {
    dnn::ConvLayer layer(lc.desc, lc.seed);
    sim::SimContext sctx(machine);
    vla::VectorEngine eng(sctx);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    dnn::Tensor in(lc.desc.in_c, lc.desc.in_h, lc.desc.in_w);
    Rng rng(7);
    in.randomize(rng);
    layer.forward(ctx, {&in});
    m.cycles = sctx.cycles();
    m.dram_bytes = static_cast<double>(sctx.memory().dram_line_fills()) *
                   machine.l2.line_bytes;
    m.engine_bytes = static_cast<double>(eng.mem_bytes_moved());
  }
  // Wall time: functional passes at host speed (min over reps, after one
  // warm-up that sizes the packing buffers / workspace).
  {
    dnn::ConvLayer layer(lc.desc, lc.seed);
    vla::VectorEngine eng(machine.vlen_bits);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    dnn::Tensor in(lc.desc.in_c, lc.desc.in_h, lc.desc.in_w);
    Rng rng(7);
    in.randomize(rng);
    layer.forward(ctx, {&in});  // warm-up
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      layer.forward(ctx, {&in});
      best = std::min(best, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    }
    m.wall_ms = best * 1e3;
  }
  return m;
}

std::string mb(double bytes) {
  return Table::fmt(bytes / (1024.0 * 1024.0), 2);
}

std::string pct(double base, double v) {
  if (base <= 0.0) return "-";
  return Table::fmt(100.0 * (base - v) / base, 1) + "%";
}

/// bench::weight_dram_bytes_per_item over a LayerCase at the given batch.
double case_weight_dram_per_item(const LayerCase& lc,
                                 const core::EnginePolicy& policy,
                                 const sim::MachineConfig& machine,
                                 int batch) {
  dnn::ConvLayer layer(lc.desc, lc.seed);
  dnn::Tensor in(batch, lc.desc.in_c, lc.desc.in_h, lc.desc.in_w);
  in.randomize_batch(7, -1.0f, 1.0f);
  return bench::weight_dram_bytes_per_item(
      layer, layer.weights(),
      static_cast<std::uint64_t>(lc.desc.weight_count()) * sizeof(float),
      &lc.desc, policy, machine, in);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto opt = bench::BenchOptions::from_cli(argc, argv);
  if (!args.has("vgg-input")) opt.vgg_input_hw = 128;  // see header comment
  const std::string model = args.get("model", "vgg");
  const std::string machine_name = args.get("machine", "sve");
  const int reps = static_cast<int>(args.get_int("reps", opt.quick ? 1 : 3));
  const sim::MachineConfig machine = bench::machine_from_name(machine_name);

  bench::print_header(
      "Fused conv pipeline — implicit-GEMM packing + in-kernel epilogue",
      "bytes-moved reduction vs the unfused Darknet pipeline", opt);
  std::printf("machine=%s (L2 %llu KiB, %u B lines), reps=%d\n\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(machine.l2.size_bytes / 1024),
              machine.l2.line_bytes, reps);

  std::unique_ptr<dnn::Network> net;
  if (model == "tiny") {
    net = dnn::build_yolov3_tiny(opt.quick ? 32 : opt.input_hw);
  } else {
    net = dnn::build_vgg16(opt.quick ? 32 : opt.vgg_input_hw, -1, opt.seed);
  }
  std::vector<LayerCase> cases = conv_layers(*net, model);
  // Weight-bound layer set (VGG block 5 and friends — the layers the
  // weight-residency section below measures): kept even when --quick trims
  // the main sweep, which would otherwise retain only the early,
  // activation-bound layers.
  std::vector<LayerCase> weight_bound;
  for (const LayerCase& lc : cases)
    if (core::conv_weight_bound(lc.desc)) weight_bound.push_back(lc);
  if (opt.quick && cases.size() > 6) cases.resize(6);
  if (opt.quick && weight_bound.size() > 2)
    weight_bound.erase(weight_bound.begin(), weight_bound.end() - 2);
  net.reset();  // the layer cases carry everything we need

  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(machine);
  const core::EnginePolicy unfused = core::EnginePolicy::opt6loop(o6);
  const core::EnginePolicy fused =
      core::EnginePolicy::fused(/*use_winograd=*/false, o6);

  bench::BenchJson json("fused_conv", opt.json_path);
  Table table({"layer", "DRAM MB unfused", "DRAM MB fused", "DRAM saved",
               "eng MB unfused", "eng MB fused", "eng saved", "wall speedup"});

  double tot_dram_u = 0, tot_dram_f = 0, tot_eng_u = 0, tot_eng_f = 0;
  double tot_wall_u = 0, tot_wall_f = 0;
  double sum_reduction = 0.0;
  for (const LayerCase& lc : cases) {
    const Measurement mu = measure(lc, unfused, machine, reps);
    const Measurement mf = measure(lc, fused, machine, reps);
    tot_dram_u += mu.dram_bytes;
    tot_dram_f += mf.dram_bytes;
    tot_eng_u += mu.engine_bytes;
    tot_eng_f += mf.engine_bytes;
    tot_wall_u += mu.wall_ms;
    tot_wall_f += mf.wall_ms;
    if (mu.dram_bytes > 0)
      sum_reduction += (mu.dram_bytes - mf.dram_bytes) / mu.dram_bytes;
    table.add_row({lc.name, mb(mu.dram_bytes), mb(mf.dram_bytes),
                   pct(mu.dram_bytes, mf.dram_bytes), mb(mu.engine_bytes),
                   mb(mf.engine_bytes), pct(mu.engine_bytes, mf.engine_bytes),
                   Table::fmt(mu.wall_ms / mf.wall_ms, 2) + "x"});
    // weight_resident describes the MEASURED run (both main-sweep policies
    // are non-resident; only the residency section below sets 1.0);
    // weight_bound describes the shape.
    const double weight_bytes =
        static_cast<double>(lc.desc.weight_count()) * sizeof(float);
    const double ai = lc.desc.arithmetic_intensity();
    const double wbound = core::conv_weight_bound(lc.desc) ? 1.0 : 0.0;
    json.add(lc.name + " unfused", mu.wall_ms, mu.dram_bytes,
             {{"engine_bytes", mu.engine_bytes},
              {"cycles", static_cast<double>(mu.cycles)},
              {"weight_bytes", weight_bytes},
              {"arithmetic_intensity", ai},
              {"weight_bound", wbound},
              {"weight_resident", 0.0}});
    json.add(lc.name + " fused", mf.wall_ms, mf.dram_bytes,
             {{"engine_bytes", mf.engine_bytes},
              {"cycles", static_cast<double>(mf.cycles)},
              {"weight_bytes", weight_bytes},
              {"arithmetic_intensity", ai},
              {"weight_bound", wbound},
              {"weight_resident", 0.0}});
  }
  table.add_row({"TOTAL", mb(tot_dram_u), mb(tot_dram_f),
                 pct(tot_dram_u, tot_dram_f), mb(tot_eng_u), mb(tot_eng_f),
                 pct(tot_eng_u, tot_eng_f),
                 Table::fmt(tot_wall_u / tot_wall_f, 2) + "x"});
  table.print();

  std::printf("\nmean per-layer DRAM bytes-moved reduction: %.1f%%   "
              "total: %s\n",
              cases.empty() ? 0.0 : 100.0 * sum_reduction / cases.size(),
              pct(tot_dram_u, tot_dram_f).c_str());
  std::printf(
      "Shape check: the fused pipeline should cut DRAM bytes per conv "
      "layer by >= 30%% on the VGG-style shapes (workspace round-trip, fill "
      "pass and output post-passes eliminated) and never be slower. Layers "
      "whose spatial extent degenerates at reduced resolution (VGG block 5) "
      "are weight-streaming-bound and sit below that — fusion cannot cut "
      "weight traffic.\n");

  // ---- weight residency: what fusion cannot cut, pack-once + batch-fused
  // execution can. For the weight-bound layer set, per-item DRAM bytes
  // attributed to the weight stream at batch 1 vs batch 4 under the
  // weight-resident fused policy: the batched pass streams each resident
  // A panel once for the whole batch.
  if (!weight_bound.empty()) {
    core::EnginePolicy resident = fused;
    resident.weight_resident = true;
    Table wt({"weight-bound layer", "weights MB", "AI", "wt DRAM MB/item b1",
              "b4", "reduction"});
    double worst = 1e30;
    for (const LayerCase& lc : weight_bound) {
      const double b1 = case_weight_dram_per_item(lc, resident, machine, 1);
      const double b4 = case_weight_dram_per_item(lc, resident, machine, 4);
      const double weight_bytes =
          static_cast<double>(lc.desc.weight_count()) * sizeof(float);
      if (b1 > 0) worst = std::min(worst, b1 / std::max(b4, 1.0));
      wt.add_row({lc.name, mb(weight_bytes),
                  Table::fmt(lc.desc.arithmetic_intensity(), 1), mb(b1),
                  mb(b4), b1 > 0 ? Table::fmt(b1 / std::max(b4, 1.0), 2) + "x"
                                 : "-"});
      json.add(lc.name + " weight-resident", 0.0, b4,
               {{"weight_dram_bytes_per_item_b1", b1},
                {"weight_dram_bytes_per_item_b4", b4},
                {"weight_bytes", weight_bytes},
                {"arithmetic_intensity", lc.desc.arithmetic_intensity()},
                {"weight_resident", 1.0}});
    }
    std::printf("\n");
    wt.print();
    std::printf(
        "\nweight residency check: per-item weight DRAM bytes at batch 4 "
        "should drop >= 2x vs batch 1 on these layers (worst: %.2fx).\n",
        worst == 1e30 ? 0.0 : worst);
  }
  if (!json.write()) return 1;
  return 0;
}

// §VI-B(c): impact of the number of vector lanes (2..8) per vector length
// on RISC-V Vector @ gem5, 1 MB L2, YOLOv3 (first 20 layers).
//
// Paper finding: 2 -> 8 lanes gives ~1.25x at 8192-bit; at 512-bit the
// benefit saturates beyond 4 lanes (more lanes raise startup overhead that
// short vectors cannot amortize).

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("§VI-B(c) — vector-lane scaling (RVV @ gem5, 1 MB L2)",
                      "Section VI-B(c), unplotted experiment", opt);

  const std::vector<unsigned> vlens =
      opt.quick ? std::vector<unsigned>{512, 8192}
                : std::vector<unsigned>{512, 2048, 8192};
  const unsigned lane_counts[] = {2, 4, 8};

  Table table({"vector length", "lanes", "cycles (M)", "speedup vs 2 lanes"});
  for (unsigned vl : vlens) {
    std::uint64_t base = 0;
    for (unsigned lanes : lane_counts) {
      auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
      const core::RunResult r = core::run_simulated(
          *net, sim::rvv_gem5().with_vlen(vl).with_lanes(lanes),
          core::EnginePolicy::opt3loop());
      if (base == 0) base = r.cycles;
      table.add_row({std::to_string(vl) + "-bit", std::to_string(lanes),
                     bench::mcycles(r.cycles), bench::ratio(base, r.cycles)});
    }
  }
  table.print();
  std::printf("\nShape check: lane scaling helps long vectors more than "
              "short ones (paper: ~1.25x @ 8192-bit; 512-bit saturates at "
              "4 lanes).\n");
  return 0;
}

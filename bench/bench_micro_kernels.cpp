// Native-speed micro-benchmarks (google-benchmark): host wall-clock cost of
// the functional kernels themselves — GEMM variants, im2col, Winograd
// transforms and full Winograd convolution. These measure the library's
// own efficiency (no simulator attached), complementing the simulated
// paper-reproduction harnesses.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "dnn/im2col.hpp"
#include "gemm/gemm.hpp"
#include "winograd/f6x3.hpp"
#include "winograd/winograd_conv.hpp"

namespace {

using namespace vlacnn;

std::vector<float> rand_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

void BM_GemmRef(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = rand_vec(static_cast<std::size_t>(n) * n, 1);
  auto b = rand_vec(static_cast<std::size_t>(n) * n, 2);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    gemm::gemm_ref(n, n, n, 1.0f, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(128)->Arg(256);

template <gemm::GemmVariant V>
void BM_GemmVariant(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const unsigned vlen = static_cast<unsigned>(state.range(1));
  auto a = rand_vec(static_cast<std::size_t>(n) * n, 1);
  auto b = rand_vec(static_cast<std::size_t>(n) * n, 2);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  vla::VectorEngine eng(vlen);
  auto fn = gemm::make_gemm_fn(V);
  for (auto _ : state) {
    fn(eng, n, n, n, 1.0f, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_GemmVariant<gemm::GemmVariant::Opt3Loop>)
    ->Args({128, 512})
    ->Args({128, 2048})
    ->Args({128, 16384})
    ->Args({256, 2048});
BENCHMARK(BM_GemmVariant<gemm::GemmVariant::Opt6Loop>)
    ->Args({128, 512})
    ->Args({128, 2048})
    ->Args({256, 2048});

void BM_Im2col(benchmark::State& state) {
  dnn::ConvDesc d;
  d.in_c = 64;
  d.in_h = d.in_w = static_cast<int>(state.range(0));
  d.out_c = 1;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto in = rand_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 3);
  std::vector<float> col(static_cast<std::size_t>(d.gemm_k()) * d.gemm_n());
  vla::VectorEngine eng(2048);
  for (auto _ : state) {
    dnn::im2col_vla(eng, d, in.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(col.size()) * 4);
}
BENCHMARK(BM_Im2col)->Arg(32)->Arg(64);

void BM_WinogradInputTransformRef(benchmark::State& state) {
  auto d = rand_vec(64, 4);
  float out[64];
  for (auto _ : state) {
    winograd::input_transform_ref(d.data(), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WinogradInputTransformRef);

void BM_WinogradConvFull(benchmark::State& state) {
  dnn::ConvDesc d;
  d.in_c = static_cast<int>(state.range(0));
  d.in_h = d.in_w = 48;
  d.out_c = d.in_c;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto in = rand_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 5);
  auto w = rand_vec(static_cast<std::size_t>(d.weight_count()), 6);
  std::vector<float> out(static_cast<std::size_t>(d.out_c) * d.out_h() *
                         d.out_w());
  vla::VectorEngine eng(2048);
  winograd::WinogradConv wino;
  for (auto _ : state) {
    wino.run(eng, d, in.data(), w.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(d.flops()));
}
BENCHMARK(BM_WinogradConvFull)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

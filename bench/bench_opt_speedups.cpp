// Scalar headline speedups of §VI-A / §VI-C:
//   * optimized 3-loop vs naive Darknet GEMM: 14x (YOLOv3-tiny, RVV @ gem5)
//   * 6-loop vs 3-loop: ~1.0x on RVV @ gem5, ~1.15x on ARM-SVE @ gem5
//     (512-bit, no prefetch), ~2x on A64FX (prefetch + OoO)
//   * 6-loop vs naive: ~32x (YOLOv3, A64FX)

#include "bench_common.hpp"

using namespace vlacnn;

namespace {

std::uint64_t run_conv_cycles(std::unique_ptr<dnn::Network> net,
                              const sim::MachineConfig& m,
                              const core::EnginePolicy& p) {
  const core::RunResult r = core::run_simulated(*net, m, p);
  return core::conv_cycles(r);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("§VI-A/§VI-C — optimization speedup summary",
                      "Sections VI-A and VI-C (scalar results)", opt);
  // The naive baseline is extremely slow to simulate; use a smaller input.
  const int tiny_hw = opt.quick ? 64 : 128;
  const int yolo_layers = opt.quick ? 6 : 12;

  Table table({"comparison", "machine", "workload", "speedup (ours)",
               "speedup (paper)"});

  {  // 3-loop vs naive on RVV, YOLOv3-tiny.
    const auto naive = run_conv_cycles(dnn::build_yolov3_tiny(tiny_hw),
                                       sim::rvv_gem5(),
                                       core::EnginePolicy::naive());
    const auto opt3 = run_conv_cycles(dnn::build_yolov3_tiny(tiny_hw),
                                      sim::rvv_gem5(),
                                      core::EnginePolicy::opt3loop());
    table.add_row({"opt 3-loop vs naive", "RVV @ gem5", "YOLOv3-tiny",
                   bench::ratio(naive, opt3), "14x"});
  }
  {  // 6-loop vs 3-loop on the three machines, YOLOv3 prefix.
    struct Row {
      sim::MachineConfig machine;
      const char* paper;
    };
    const Row rows[] = {
        {sim::rvv_gem5(), "~1.0x (Table II)"},
        {sim::sve_gem5(), "1.15x"},
        {sim::a64fx(), "2x"},
    };
    for (const auto& row : rows) {
      const auto c3 =
          run_conv_cycles(dnn::build_yolov3(opt.input_hw, yolo_layers),
                          row.machine, core::EnginePolicy::opt3loop());
      gemm::Opt6Config o6;
      o6.blocks = gemm::tune_block_sizes(row.machine);
      const auto c6 =
          run_conv_cycles(dnn::build_yolov3(opt.input_hw, yolo_layers),
                          row.machine, core::EnginePolicy::opt6loop(o6));
      table.add_row({"opt 6-loop vs opt 3-loop", row.machine.name,
                     "YOLOv3 (" + std::to_string(yolo_layers) + " layers)",
                     bench::ratio(c3, c6), row.paper});
    }
  }
  {  // Isolated GEMM kernel (YOLOv3 L10 shape, N reduced): the paper's 2x
     // refers to the GEMM kernel itself; whole-network numbers above are
     // diluted by im2col and the auxiliary kernels.
    const int m = 256, n = 1444, k = 1152;
    auto run_kernel = [&](gemm::GemmVariant v) {
      AlignedBuffer<float> a(static_cast<std::size_t>(m) * k);
      AlignedBuffer<float> b(static_cast<std::size_t>(k) * n);
      AlignedBuffer<float> c(static_cast<std::size_t>(m) * n, 0.0f);
      Rng rng(3);
      for (auto& x : a) x = rng.uniform(-1.0f, 1.0f);
      for (auto& x : b) x = rng.uniform(-1.0f, 1.0f);
      sim::RegisteredRange ra(a.data(), a.size() * 4),
          rb(b.data(), b.size() * 4), rc(c.data(), c.size() * 4);
      sim::SimContext sctx(sim::a64fx());
      vla::VectorEngine eng(sctx);
      gemm::Opt6Config o6;
      o6.blocks = gemm::tune_block_sizes(sim::a64fx());
      auto fn = gemm::make_gemm_fn(v, {}, o6);
      fn(eng, m, n, k, 1.0f, a.data(), k, b.data(), n, c.data(), n);
      return sctx.cycles();
    };
    const auto c3 = run_kernel(gemm::GemmVariant::Opt3Loop);
    const auto c6 = run_kernel(gemm::GemmVariant::Opt6Loop);
    table.add_row({"opt 6-loop vs opt 3-loop", "a64fx",
                   "GEMM kernel (L10 shape)", bench::ratio(c3, c6), "2x"});
  }
  {  // 6-loop vs naive on A64FX.
    const auto naive =
        run_conv_cycles(dnn::build_yolov3(tiny_hw, yolo_layers), sim::a64fx(),
                        core::EnginePolicy::naive());
    gemm::Opt6Config o6;
    o6.blocks = gemm::tune_block_sizes(sim::a64fx());
    const auto opt6 =
        run_conv_cycles(dnn::build_yolov3(tiny_hw, yolo_layers), sim::a64fx(),
                        core::EnginePolicy::opt6loop(o6));
    table.add_row({"opt 6-loop vs naive", "a64fx",
                   "YOLOv3 (" + std::to_string(yolo_layers) + " layers)",
                   bench::ratio(naive, opt6), "32x"});
  }

  table.print();
  std::printf("\nShape check: vectorized+optimized beats naive by an order "
              "of magnitude; the 6-loop only pays off on A64FX.\n");
  return 0;
}

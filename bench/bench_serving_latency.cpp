// Serving latency under micro-batching policies: per-request queue-wait vs.
// compute time (p50/p95/p99) of the async serving runtime, per BatchPolicy.
//
// A producer thread offers a reproducible Poisson-ish request stream at a
// fixed fraction of the measured capacity; each policy serves the same
// stream through serve::Server (admission queue -> deadline-aware
// micro-batcher -> pipelined BatchScheduler). Small batches bound
// queue-wait but pay per-batch overheads; large batches amortize compute
// but make early arrivals wait — this harness makes that tradeoff visible
// as separate queue/compute/total percentile columns per policy.
//
//   ./bench_serving_latency [--model=tiny|vgg] [--input=96] [--threads=0]
//                           [--requests=48] [--load=0.7 (fraction of
//                            measured capacity)] [--rate=<req/s> (absolute
//                            override of load x capacity)] [--seed=1234]
//                           [--executor=graph|serial] [--quick]
//                           [--precision=f32|bf16|int8]
//                           [--sparsity=0 (block-sparse weight density in
//                            (0,1); 0 = dense)]
//                           [--scenario=steady|ramp|burst|overload3x|
//                            slowloris|mixed-tenant]
//                           [--chaos=<seed> (deterministic fault injection
//                            in the overload scenarios; 0 = off)]
//                           [--check (overload scenarios: exit nonzero if a
//                            robustness gate fails)]
//                           [--json=<path>]
//
// Per-request traces also carry the batch's worker occupancy and idle
// fraction (runtime::ExecStats); their percentiles and quartile histograms
// land in the JSON so the work-graph executor's overlap shows up in the
// perf trajectory, and --executor=serial is the apples-to-apples baseline.
//
// --scenario=ramp|burst switches to the traffic-shift harness: arrivals
// come from an inhomogeneous Poisson process (piecewise-constant rate,
// simulated by thinning) whose rate ramps up from a fraction of capacity to
// full offered load (ramp) or spikes in the middle of a quiet stream
// (burst). The identical arrival stream is served twice — online
// re-planning off, then on (a serve::Replanner watching the batch-size
// regime and swapping analytically re-priced plans at batch boundaries) —
// and the p50/p95/p99 latencies plus the replanner's counters land in the
// table and the JSON record per scenario. This is the harness behind CI's
// BENCH_replanning.json artifact.
//
// --scenario=overload3x|slowloris|mixed-tenant switches to the overload
// suite: the full hardened pipeline (OverloadGovernor admission + deadline
// shedding + degradation ladder + optional --chaos fault injection +
// watchdog) under adversarial arrival streams. Every request must resolve
// with a typed outcome; --check turns the conservation / shed-rate /
// accepted-p99 invariants into hard gates (nonzero exit). This is the
// harness behind CI's BENCH_overload.json artifact.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/arrival_process.hpp"
#include "common/percentile.hpp"
#include "core/selector.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/fault_injector.hpp"
#include "serve/overload_governor.hpp"
#include "serve/replanner.hpp"
#include "serve/server.hpp"

using namespace vlacnn;

namespace {

struct PolicyCase {
  const char* name;
  int max_batch;
  double max_wait_ms;
};

struct PolicyResult {
  std::vector<double> queue_ms, compute_ms, total_ms;
  std::vector<double> occupancy, idle_frac;
  std::uint64_t overlap_starts = 0;  // summed over requests
  serve::ServerStats stats;
  double wall_s = 0.0;
  std::uint64_t bytes_moved = 0;
};

// Quartile histogram of values in [0, 1]: counts per [0,.25) [.25,.5)
// [.5,.75) [.75,1].
std::array<int, 4> quartile_hist(const std::vector<double>& v) {
  std::array<int, 4> h{};
  for (double x : v) {
    int b = static_cast<int>(x * 4.0);
    if (b < 0) b = 0;
    if (b > 3) b = 3;
    ++h[static_cast<std::size_t>(b)];
  }
  return h;
}

PolicyResult serve_stream(runtime::BatchScheduler& sched, dnn::Network& net,
                          const PolicyCase& pc, int requests, double rate,
                          std::uint64_t seed) {
  serve::ServerConfig cfg;
  cfg.policy.max_batch = pc.max_batch;
  cfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(pc.max_wait_ms));
  cfg.queue_capacity = static_cast<std::size_t>(requests);  // no shedding:
  cfg.block_when_full = true;  // every policy serves the identical stream
  serve::Server server(sched, net, cfg);
  server.start();

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  PoissonArrivals arrivals(seed, rate);
  auto next_arrival = t0;
  for (int r = 0; r < requests; ++r) {
    next_arrival += arrivals.next_gap();
    std::this_thread::sleep_until(next_arrival);
    dnn::Tensor in(1, net.in_c(), net.in_h(), net.in_w());
    in.randomize_item(0, seed + static_cast<std::uint64_t>(r));
    server.submit(static_cast<std::uint64_t>(r), std::move(in));
  }
  server.stop();

  PolicyResult res;
  res.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  for (const serve::Completion& c : server.drain_completions()) {
    res.queue_ms.push_back(c.trace.queue_ms);
    res.compute_ms.push_back(c.trace.compute_ms);
    res.total_ms.push_back(c.trace.total_ms);
    res.occupancy.push_back(c.trace.batch_occupancy);
    res.idle_frac.push_back(c.trace.worker_idle_frac);
    res.overlap_starts += c.trace.batch_overlap_starts;
  }
  res.stats = server.stats();
  return res;
}

// One pass of the traffic-shift harness: serves the scenario's arrival
// stream (identical across passes for a given seed) with re-planning off or
// on, and returns the latency vectors plus the server's merged counters.
PolicyResult serve_scenario(runtime::BatchScheduler& sched, dnn::Network& net,
                            const std::vector<PiecewiseRateArrivals::Segment>&
                                segments,
                            std::uint64_t seed, serve::Replanner* rp) {
  serve::ServerConfig cfg;
  cfg.policy.max_batch = 8;
  cfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(2.0));
  cfg.queue_capacity = 512;
  cfg.block_when_full = true;  // identical stream: never shed
  cfg.replanner = rp;
  serve::Server server(sched, net, cfg);
  server.start();

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  PiecewiseRateArrivals arrivals(seed, segments);
  const double horizon = arrivals.horizon_seconds();
  for (std::uint64_t r = 0;; ++r) {
    const double at = arrivals.next_arrival_seconds();
    if (at >= horizon) break;
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(at)));
    dnn::Tensor in(1, net.in_c(), net.in_h(), net.in_w());
    in.randomize_item(0, seed + r);
    server.submit(r, std::move(in));
  }
  server.stop();

  PolicyResult res;
  res.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  for (const serve::Completion& c : server.drain_completions()) {
    res.queue_ms.push_back(c.trace.queue_ms);
    res.compute_ms.push_back(c.trace.compute_ms);
    res.total_ms.push_back(c.trace.total_ms);
    res.occupancy.push_back(c.trace.batch_occupancy);
    res.idle_frac.push_back(c.trace.worker_idle_frac);
    res.overlap_starts += c.trace.batch_overlap_starts;
  }
  res.stats = server.stats();
  return res;
}

int run_scenario(const std::string& scenario, const std::string& model,
                 int input_hw, int threads, int requests, double load,
                 double rate_override, std::uint64_t seed,
                 bench::BenchJson& json) {
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  net->fuse_residuals();

  // A per-layer analytic plan priced for batch 1 (the low-traffic regime a
  // scenario starts in): the structural CostModel ranks in microseconds, no
  // simulator in the bench loop. The replanner re-prices the same admitted
  // candidates as the regime shifts.
  const sim::MachineConfig machine = sim::a64fx();
  core::BackendPlan tuned;
  tuned.opt6.blocks = gemm::tune_block_sizes(machine);
  core::CostModel cm(machine, tuned.opt6);
  core::BackendPlan plan = core::select_per_layer(
      *net, machine, 7, /*batch=*/1, {}, core::CostSource::Analytic, &cm);

  core::ConvolutionEngine engine(plan);
  runtime::SchedulerConfig scfg;
  scfg.threads = threads;
  runtime::BatchScheduler sched(engine, scfg);

  double capacity_ips;
  {
    dnn::Tensor warm(8, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    capacity_ips = 8.0 / std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  }
  const double peak = rate_override > 0.0 ? rate_override : load * capacity_ips;

  // Segment durations sized so the expected arrival count matches
  // --requests at the scenario's mean rate.
  std::vector<PiecewiseRateArrivals::Segment> segments;
  if (scenario == "ramp") {
    const double mean = 0.625 * peak;  // mean of 0.25..1.0 over 4 steps
    segments = PiecewiseRateArrivals::ramp(0.25 * peak, peak, 4,
                                           requests / mean / 4.0);
  } else {
    const double mean = (0.4 + 1.0) / 3.0 * peak;  // quiet/spike/quiet thirds
    const double third = requests / mean / 3.0;
    segments = PiecewiseRateArrivals::burst(0.2 * peak, peak, third, third);
  }

  std::printf("== serving latency under traffic shift (%s) ==\n",
              scenario.c_str());
  std::printf("model=%s input=%d workers=%d | capacity ~%.1f images/sec, "
              "peak offered %.1f req/sec | horizon %.1fs\n\n",
              model.c_str(), input_hw, sched.threads(), capacity_ips, peak,
              PiecewiseRateArrivals(seed, segments).horizon_seconds());
  std::printf("%-10s %5s %7s | %8s %8s %8s | %7s %6s %9s %7s\n", "replan",
              "done", "avg_b", "t_p50", "t_p95", "t_p99", "replans", "swaps",
              "plan_us", "priced");

  for (const bool replan : {false, true}) {
    serve::Replanner rp(
        sched, *net, cm, plan,
        {/*max_batch=*/8, /*window=*/8, /*hysteresis=*/1.5,
         /*min_batches=*/6, /*cooldown_batches=*/6});
    if (replan) rp.start();
    PolicyResult res =
        serve_scenario(sched, *net, segments, seed, replan ? &rp : nullptr);
    if (replan) rp.stop();
    const auto p = [](const std::vector<double>& v, double q) {
      return percentile(v, q);
    };
    const double avg_b =
        res.stats.batches > 0
            ? res.stats.sum_batch_items / static_cast<double>(res.stats.batches)
            : 0.0;
    std::printf("%-10s %5llu %7.2f | %8.2f %8.2f %8.2f | %7llu %6llu %9llu "
                "%7d\n",
                replan ? "on" : "off",
                static_cast<unsigned long long>(res.stats.completed), avg_b,
                p(res.total_ms, 0.50), p(res.total_ms, 0.95),
                p(res.total_ms, 0.99),
                static_cast<unsigned long long>(res.stats.plans_recomputed),
                static_cast<unsigned long long>(res.stats.plan_swaps_applied),
                static_cast<unsigned long long>(res.stats.last_plan_compute_us),
                res.stats.plan_priced_batch);
    json.add(std::string("model=") + model + " scenario=" + scenario +
                 " replan=" + (replan ? "on" : "off"),
             res.wall_s * 1e3, 0.0,
             {{"images_per_sec",
               static_cast<double>(res.stats.completed) / res.wall_s},
              {"avg_batch", avg_b},
              {"queue_p99_ms", p(res.queue_ms, 0.99)},
              {"compute_p99_ms", p(res.compute_ms, 0.99)},
              {"total_p50_ms", p(res.total_ms, 0.50)},
              {"total_p95_ms", p(res.total_ms, 0.95)},
              {"total_p99_ms", p(res.total_ms, 0.99)},
              {"plans_recomputed",
               static_cast<double>(res.stats.plans_recomputed)},
              {"plan_swaps_applied",
               static_cast<double>(res.stats.plan_swaps_applied)},
              {"last_plan_compute_us",
               static_cast<double>(res.stats.last_plan_compute_us)},
              {"plan_priced_batch",
               static_cast<double>(res.stats.plan_priced_batch)}});
  }
  std::printf("\nre-planning re-prices the admitted candidates for the "
              "regime's effective batch and swaps at a batch boundary; "
              "outputs stay bit-identical (pinned in test_serve).\n");
  if (!json.write()) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Overload scenario suite.

// Requests are split into two traffic classes (primary / secondary) so the
// gates can tell victims from aggressors; the class rides in the request id.
constexpr std::uint64_t kClassBit = std::uint64_t{1} << 32;

struct ClassTally {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< at admission (queue-full or governor)
  std::array<std::uint64_t, serve::kOutcomeCount> delivered{};
  std::vector<double> ok_total_ms;
  std::vector<double> ok_queue_ms;
};

int run_overload(const std::string& scenario, const std::string& model,
                 int input_hw, int threads, int requests, std::uint64_t seed,
                 std::uint64_t chaos_seed, bool check,
                 const std::string& json_path) {
  bench::BenchJson json("serving_overload", json_path);
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  net->fuse_residuals();

  // Same analytic per-layer plan as the traffic-shift harness; the ladder's
  // tiers (bf16, int8) are derived from it.
  const sim::MachineConfig machine = sim::a64fx();
  core::BackendPlan tuned;
  tuned.opt6.blocks = gemm::tune_block_sizes(machine);
  core::CostModel cm(machine, tuned.opt6);
  core::BackendPlan plan = core::select_per_layer(
      *net, machine, 7, /*batch=*/1, {}, core::CostSource::Analytic, &cm);

  core::ConvolutionEngine engine(plan);
  runtime::FaultInjector injector(runtime::FaultPlan::chaos(chaos_seed));
  runtime::SchedulerConfig scfg;
  scfg.threads = threads;
  if (chaos_seed != 0) scfg.fault_injector = &injector;
  scfg.watchdog_timeout_s = 2.0;  // chaos stalls are ~20ms: far below this
  runtime::BatchScheduler sched(engine, scfg);

  // Capacity + batch-8 service time: sets the offered overload rates and
  // the accepted-latency gate's scale.
  double capacity_ips, batch8_ms;
  {
    dnn::Tensor warm(8, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    capacity_ips = 8.0 / s;
    batch8_ms = s * 1e3;
  }

  serve::Replanner rp(sched, *net, cm, plan,
                      {/*max_batch=*/8, /*window=*/8, /*hysteresis=*/1.5,
                       /*min_batches=*/6, /*cooldown_batches=*/6});
  rp.set_tiers(serve::default_degradation_tiers(plan));
  rp.start();

  serve::GovernorConfig gcfg;
  gcfg.target_sojourn_ms = 10.0;
  gcfg.interval_ms = 50.0;
  gcfg.est_item_seconds = serve::estimate_item_seconds(plan, machine.freq_ghz);
  gcfg.max_tier = 2;
  gcfg.degrade_after_ms = 100.0;
  gcfg.recover_after_ms = 150.0;
  gcfg.cooldown_ms = 50.0;
  serve::OverloadGovernor governor(gcfg,
                                   [&rp](int tier) { rp.request_tier(tier); });

  std::mutex tally_mu;
  std::array<ClassTally, 2> tally;

  serve::ServerConfig cfg;
  cfg.policy.max_batch = 8;
  cfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(2.0));
  cfg.queue_capacity = 64;
  cfg.block_when_full = false;  // overload harness: shed, never block
  cfg.replanner = &rp;
  cfg.governor = &governor;
  cfg.on_complete = [&](serve::Completion&& c) {
    const std::size_t cls = (c.trace.id & kClassBit) != 0 ? 1 : 0;
    std::lock_guard<std::mutex> lock(tally_mu);
    ClassTally& t = tally[cls];
    t.delivered[static_cast<std::size_t>(c.trace.outcome)] += 1;
    if (c.trace.outcome == serve::Outcome::Ok) {
      t.ok_total_ms.push_back(c.trace.total_ms);
      t.ok_queue_ms.push_back(c.trace.queue_ms);
    }
  };
  serve::Server server(sched, *net, cfg);
  server.start();

  // The deadline every well-behaved request carries: a couple of batch-8
  // service times — tight enough that a 3x standing queue overruns it,
  // loose enough that a promptly-served request makes it.
  const double budget_ms = std::max(50.0, 2.0 * batch8_ms);
  const auto deadline_in = [](double ms) {
    return ms <= 0.0 ? serve::Clock::now()
                     : serve::Clock::now() +
                           std::chrono::duration_cast<serve::Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
  };
  const auto submit_one = [&](std::size_t cls, std::uint64_t idx,
                              serve::Clock::time_point dl) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, seed + idx);
    const std::uint64_t id = idx | (cls == 1 ? kClassBit : 0);
    const serve::Admit a = server.submit(id, std::move(in), dl);
    std::lock_guard<std::mutex> lock(tally_mu);
    ++tally[cls].submitted;
    if (a != serve::Admit::Accepted) ++tally[cls].rejected;
  };

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto sleep_to = [&t0](double at_s) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(at_s)));
  };
  double horizon = 0.0;
  std::uint64_t idx = 0;
  if (scenario == "overload3x") {
    // 3x capacity for half the horizon, then 0.4x — the governor must shed
    // through the storm and the ladder must degrade and recover. The horizon
    // scales with the measured batch time so the queue dynamics (backlog
    // build-up, CoDel interval, ladder windows) have room on slow machines.
    const double half = std::max(
        {1.0, 4.0 * batch8_ms * 1e-3,
         static_cast<double>(requests) / (3.4 * capacity_ips)});
    PiecewiseRateArrivals arrivals(
        seed, {{half, 3.0 * capacity_ips}, {half, 0.4 * capacity_ips}});
    horizon = arrivals.horizon_seconds();
    for (;;) {
      const double at = arrivals.next_arrival_seconds();
      if (at >= horizon) break;
      sleep_to(at);
      submit_one(0, idx++, deadline_in(budget_ms));
    }
  } else if (scenario == "slowloris") {
    // A healthy 0.6x stream plus a trickle of requests whose deadline has
    // already expired at submission — doomed work the governor's capacity
    // estimate must turn away at admission (or dequeue-shedding must drop)
    // without ever letting it occupy a batch slot.
    horizon =
        std::max(2.0, static_cast<double>(requests) / (0.6 * capacity_ips));
    PoissonArrivals healthy(seed, 0.6 * capacity_ips);
    PoissonArrivals loris(seed + 1, 20.0);
    double t_h = healthy.next_gap_seconds();
    double t_l = loris.next_gap_seconds();
    for (;;) {
      const bool is_healthy = t_h <= t_l;
      const double at = is_healthy ? t_h : t_l;
      if (at >= horizon) break;
      sleep_to(at);
      if (is_healthy) {
        submit_one(0, idx++, deadline_in(budget_ms));
        t_h += healthy.next_gap_seconds();
      } else {
        submit_one(1, idx++, deadline_in(0.0));  // already expired
        t_l += loris.next_gap_seconds();
      }
    }
  } else {  // mixed-tenant
    // One 1.5x stream, alternating tenants: A (class 0) carries deadlines
    // and absorbs the shedding; B (class 1) is deadline-less batch traffic
    // that must never be deadline-shed, only overload-rejected.
    horizon =
        std::max(2.0, static_cast<double>(requests) / (1.5 * capacity_ips));
    PoissonArrivals arrivals(seed, 1.5 * capacity_ips);
    double at = arrivals.next_gap_seconds();
    for (;;) {
      if (at >= horizon) break;
      sleep_to(at);
      const std::size_t cls = idx % 2;
      submit_one(cls, idx,
                 cls == 0 ? deadline_in(budget_ms) : serve::kNoDeadline);
      ++idx;
      at += arrivals.next_gap_seconds();
    }
  }
  server.stop();
  const double wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  rp.stop();

  const serve::ServerStats st = server.stats();
  const runtime::FaultInjector::Stats fs = injector.stats();
  std::uint64_t submitted = 0, resolved = 0;
  for (const ClassTally& t : tally) {
    submitted += t.submitted;
    resolved += t.rejected;
    for (const std::uint64_t d : t.delivered) resolved += d;
  }
  std::uint64_t outcome_sum = 0;
  for (const std::uint64_t o : st.outcomes) outcome_sum += o;

  const auto p = [](const std::vector<double>& v, double q) {
    return percentile(v, q);
  };
  std::printf("== overload scenario: %s ==\n", scenario.c_str());
  std::printf("model=%s input=%d workers=%d | capacity ~%.1f images/sec "
              "(batch8 %.2f ms) | horizon %.1fs | chaos=%llu\n\n",
              model.c_str(), input_hw, sched.threads(), capacity_ips,
              batch8_ms, horizon,
              static_cast<unsigned long long>(chaos_seed));
  std::printf("%-9s %6s %6s | %6s %6s %6s %6s | %8s %8s\n", "class", "sub",
              "rej", "ok", "shed", "canc", "ierr", "ok_p50", "ok_p99");
  const char* class_names[2] = {"primary", "secondary"};
  for (std::size_t c = 0; c < 2; ++c) {
    const ClassTally& t = tally[c];
    if (t.submitted == 0) continue;
    std::printf(
        "%-9s %6llu %6llu | %6llu %6llu %6llu %6llu | %8.2f %8.2f\n",
        class_names[c], static_cast<unsigned long long>(t.submitted),
        static_cast<unsigned long long>(t.rejected),
        static_cast<unsigned long long>(
            t.delivered[static_cast<std::size_t>(serve::Outcome::Ok)]),
        static_cast<unsigned long long>(t.delivered[static_cast<std::size_t>(
            serve::Outcome::ShedDeadline)]),
        static_cast<unsigned long long>(
            t.delivered[static_cast<std::size_t>(serve::Outcome::Cancelled)]),
        static_cast<unsigned long long>(t.delivered[static_cast<std::size_t>(
            serve::Outcome::InternalError)]),
        p(t.ok_total_ms, 0.50), p(t.ok_total_ms, 0.99));
  }
  std::printf("\ngovernor: rejected_overload=%llu rejected_doomed=%llu "
              "drop_intervals=%llu | ladder: tier=%d degrades=%llu "
              "recoveries=%llu | watchdog_wedges=%llu | faults: stalls=%llu "
              "slows=%llu item_fails=%llu\n",
              static_cast<unsigned long long>(st.governor_rejected_overload),
              static_cast<unsigned long long>(st.governor_rejected_doomed),
              static_cast<unsigned long long>(st.drop_intervals), st.tier,
              static_cast<unsigned long long>(st.tier_degrades),
              static_cast<unsigned long long>(st.tier_recoveries),
              static_cast<unsigned long long>(st.watchdog_wedges),
              static_cast<unsigned long long>(fs.task_stalls),
              static_cast<unsigned long long>(fs.worker_slows),
              static_cast<unsigned long long>(fs.item_failures));

  // Robustness gates. Reported always; --check makes them the exit status.
  std::vector<std::string> failures;
  const auto gate = [&](bool ok, const std::string& what) {
    std::printf("gate %-52s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
    if (!ok) failures.push_back(what);
  };
  std::printf("\n");
  // Conservation: every submitted request resolved with exactly one typed
  // outcome — locally (admission verdict or delivered completion, per
  // class) and in the server's merged outcome tally.
  gate(resolved == submitted, "conservation: typed outcome per request");
  gate(outcome_sum == submitted, "conservation: server outcome tally");
  if (chaos_seed == 0)
    gate(st.watchdog_wedges == 0, "no watchdog wedges without chaos");
  const std::uint64_t ok_primary =
      tally[0].delivered[static_cast<std::size_t>(serve::Outcome::Ok)];
  if (scenario == "overload3x") {
    const double shed_frac =
        submitted > 0
            ? 1.0 - static_cast<double>(ok_primary) / submitted
            : 0.0;
    gate(shed_frac > 0.05 && shed_frac < 0.95,
         "overload3x: shed fraction in (5%, 95%)");
    gate(ok_primary > 0, "overload3x: goodput > 0");
    const double p99_bound =
        budget_ms + 10.0 * batch8_ms + (chaos_seed != 0 ? 500.0 : 200.0);
    gate(p(tally[0].ok_total_ms, 0.99) <= p99_bound,
         "overload3x: accepted p99 bounded");
  } else if (scenario == "slowloris") {
    gate(tally[1].delivered[static_cast<std::size_t>(serve::Outcome::Ok)] ==
             0,
         "slowloris: no expired request ever served");
    gate(tally[0].submitted > 0 &&
             static_cast<double>(ok_primary) / tally[0].submitted >= 0.5,
         "slowloris: healthy goodput >= 50%");
  } else {  // mixed-tenant
    gate(tally[1].delivered[static_cast<std::size_t>(
             serve::Outcome::ShedDeadline)] == 0,
         "mixed-tenant: deadline-less tenant never shed");
    const double p99_bound =
        budget_ms + 10.0 * batch8_ms + (chaos_seed != 0 ? 500.0 : 200.0);
    gate(tally[0].ok_total_ms.empty() ||
             p(tally[0].ok_total_ms, 0.99) <= p99_bound,
         "mixed-tenant: tenant-A accepted p99 bounded");
  }

  json.add(
      std::string("model=") + model + " scenario=" + scenario +
          " chaos=" + std::to_string(chaos_seed),
      wall_s * 1e3, 0.0,
      {{"submitted", static_cast<double>(submitted)},
       {"ok", static_cast<double>(
                  st.outcomes[static_cast<std::size_t>(serve::Outcome::Ok)])},
       {"rejected_overload",
        static_cast<double>(st.outcomes[static_cast<std::size_t>(
            serve::Outcome::RejectedOverload)])},
       {"shed_deadline",
        static_cast<double>(st.outcomes[static_cast<std::size_t>(
            serve::Outcome::ShedDeadline)])},
       {"cancelled", static_cast<double>(st.outcomes[static_cast<std::size_t>(
                         serve::Outcome::Cancelled)])},
       {"internal_error",
        static_cast<double>(st.outcomes[static_cast<std::size_t>(
            serve::Outcome::InternalError)])},
       {"governor_rejected_overload",
        static_cast<double>(st.governor_rejected_overload)},
       {"governor_rejected_doomed",
        static_cast<double>(st.governor_rejected_doomed)},
       {"drop_intervals", static_cast<double>(st.drop_intervals)},
       {"tier_degrades", static_cast<double>(st.tier_degrades)},
       {"tier_recoveries", static_cast<double>(st.tier_recoveries)},
       {"watchdog_wedges", static_cast<double>(st.watchdog_wedges)},
       {"fault_task_stalls", static_cast<double>(fs.task_stalls)},
       {"fault_item_failures", static_cast<double>(fs.item_failures)},
       {"ok_p50_ms", p(tally[0].ok_total_ms, 0.50)},
       {"ok_p99_ms", p(tally[0].ok_total_ms, 0.99)},
       {"ok_queue_p99_ms", p(tally[0].ok_queue_ms, 0.99)},
       {"budget_ms", budget_ms},
       {"batch8_ms", batch8_ms},
       {"capacity_ips", capacity_ips},
       {"gates_failed", static_cast<double>(failures.size())}});
  if (!json.write()) return 1;
  if (!failures.empty()) {
    std::fprintf(stderr, "\n%zu robustness gate(s) FAILED:\n",
                 failures.size());
    for (const std::string& f : failures)
      std::fprintf(stderr, "  - %s\n", f.c_str());
    if (check) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const bool quick = args.get_bool("quick", false);
  const int requests =
      static_cast<int>(args.get_int("requests", quick ? 16 : 48));
  const double load = args.get_double("load", 0.7);
  const double rate_override = args.get_double("rate", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const std::string precision = args.get("precision", "f32");
  const std::string executor = args.get("executor", "graph");
  const std::string scenario = args.get("scenario", "steady");
  const auto chaos_seed = static_cast<std::uint64_t>(args.get_int("chaos", 0));
  const bool check = args.get_bool("check", false);
  if (requests < 1 || load <= 0.0) {
    std::fprintf(stderr, "error: --requests >= 1 and --load > 0 required\n");
    return 1;
  }
  const bool overload = scenario == "overload3x" || scenario == "slowloris" ||
                        scenario == "mixed-tenant";
  if (!overload && scenario != "steady" && scenario != "ramp" &&
      scenario != "burst") {
    std::fprintf(stderr,
                 "error: unknown --scenario=%s (steady|ramp|burst|"
                 "overload3x|slowloris|mixed-tenant)\n",
                 scenario.c_str());
    return 1;
  }

  dnn::warn_if_input_resized(model, input_hw);
  if (overload)
    // Overload suite: governor + ladder + optional chaos, its own JSON
    // record name (serving_overload -> BENCH_overload.json in CI).
    return run_overload(scenario, model, input_hw, threads, requests, seed,
                        chaos_seed, check, args.get("json", ""));
  bench::BenchJson json("serving_latency", args.get("json", ""));
  if (scenario != "steady")
    // Traffic-shift harness: per-layer analytic plan + optional online
    // re-planning instead of the per-policy sweep (fp32 dense; --precision /
    // --sparsity / --executor apply to the steady sweep only).
    return run_scenario(scenario, model, input_hw, threads, requests, load,
                        rate_override, seed, json);
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  net->fuse_residuals();

  core::BackendPlan plan =
      core::BackendPlan::uniform(core::EnginePolicy::fused());
  // --precision routes the Gemm6-family convs through reduced-precision
  // resident weight images, so serving percentiles compare across formats
  // with one flag.
  if (precision == "bf16") {
    plan = plan.with_precision(gemm::PackFormat::Bf16);
  } else if (precision == "int8") {
    plan = plan.with_precision(gemm::PackFormat::Int8PerChannel);
  } else if (precision != "f32") {
    std::fprintf(stderr, "error: unknown --precision=%s (f32|bf16|int8)\n",
                 precision.c_str());
    return 1;
  }
  // --sparsity composes with --precision: block-sparse resident images at
  // the given density (0 = dense), the Gemm6-family convs skip-walking only
  // the kept 4x16 blocks.
  const double sparsity = args.get_double("sparsity", 0.0);
  if (sparsity < 0.0 || sparsity > 1.0) {
    std::fprintf(stderr, "error: --sparsity=%g must be in [0,1]\n", sparsity);
    return 1;
  }
  if (sparsity > 0.0) plan = plan.with_sparsity(sparsity);
  core::ConvolutionEngine engine(std::move(plan));
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  if (executor == "serial") {
    cfg.executor = runtime::ExecutorKind::Serial;
  } else if (executor != "graph") {
    std::fprintf(stderr, "error: unknown --executor=%s (graph|serial)\n",
                 executor.c_str());
    return 1;
  }
  runtime::BatchScheduler sched(engine, cfg);

  // Capacity measurement (and warm-up): batch-8 images/sec of the
  // synchronous path sets the offered load for every policy.
  double capacity_ips;
  {
    dnn::Tensor warm(8, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);  // warm-up: caches, workspaces
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    capacity_ips = 8.0 / std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  }
  const double rate = rate_override > 0.0 ? rate_override : load * capacity_ips;

  std::printf("== serving latency vs. micro-batching policy ==\n");
  std::printf("model=%s input=%d workers=%d executor=%s | capacity ~%.1f "
              "images/sec, offered %.1f req/sec (load %.2f%s) | %d "
              "requests/policy\n\n",
              model.c_str(), input_hw, sched.threads(), executor.c_str(),
              capacity_ips, rate, rate / capacity_ips,
              rate_override > 0.0 ? ", --rate override" : "", requests);
  std::printf("%-10s %7s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s | %5s %7s\n",
              "policy", "avg_b", "q_p50", "q_p95", "q_p99", "c_p50", "c_p95",
              "c_p99", "t_p50", "t_p95", "t_p99", "occ", "ovl");

  std::vector<PolicyCase> cases;
  if (quick)
    cases = {{"batch1", 1, 0.0}, {"mb8_w2", 8, 2.0}};
  else
    cases = {{"batch1", 1, 0.0},
             {"mb4_w1", 4, 1.0},
             {"mb8_w2", 8, 2.0},
             {"mb8_w8", 8, 8.0}};

  for (const PolicyCase& pc : cases) {
    const std::uint64_t bytes0 = sched.mem_bytes_moved();
    PolicyResult res = serve_stream(sched, *net, pc, requests, rate, seed);
    res.bytes_moved = sched.mem_bytes_moved() - bytes0;
    const auto p = [](const std::vector<double>& v, double q) {
      return percentile(v, q);
    };
    const double avg_b =
        res.stats.batches > 0
            ? res.stats.sum_batch_items /
                  static_cast<double>(res.stats.batches)
            : 0.0;
    std::printf("%-10s %7.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | "
                "%8.2f %8.2f %8.2f | %5.2f %7llu\n",
                pc.name, avg_b, p(res.queue_ms, 0.50), p(res.queue_ms, 0.95),
                p(res.queue_ms, 0.99), p(res.compute_ms, 0.50),
                p(res.compute_ms, 0.95), p(res.compute_ms, 0.99),
                p(res.total_ms, 0.50), p(res.total_ms, 0.95),
                p(res.total_ms, 0.99), p(res.occupancy, 0.50),
                static_cast<unsigned long long>(res.overlap_starts));
    const std::array<int, 4> occ_h = quartile_hist(res.occupancy);
    const std::array<int, 4> idle_h = quartile_hist(res.idle_frac);
    json.add(std::string("model=") + model + " precision=" + precision +
                 " sparsity=" + Table::fmt(sparsity, 2) + " executor=" +
                 executor + " policy=" + pc.name +
                 " max_batch=" + std::to_string(pc.max_batch) +
                 " max_wait_ms=" + std::to_string(pc.max_wait_ms),
             res.wall_s * 1e3, static_cast<double>(res.bytes_moved),
             {{"images_per_sec",
               static_cast<double>(res.stats.completed) / res.wall_s},
              {"avg_batch", avg_b},
              {"queue_p50_ms", p(res.queue_ms, 0.50)},
              {"queue_p95_ms", p(res.queue_ms, 0.95)},
              {"queue_p99_ms", p(res.queue_ms, 0.99)},
              {"compute_p50_ms", p(res.compute_ms, 0.50)},
              {"compute_p95_ms", p(res.compute_ms, 0.95)},
              {"compute_p99_ms", p(res.compute_ms, 0.99)},
              {"total_p50_ms", p(res.total_ms, 0.50)},
              {"total_p95_ms", p(res.total_ms, 0.95)},
              {"total_p99_ms", p(res.total_ms, 0.99)},
              {"occupancy_p50", p(res.occupancy, 0.50)},
              {"occupancy_p95", p(res.occupancy, 0.95)},
              {"idle_frac_p50", p(res.idle_frac, 0.50)},
              {"idle_frac_p95", p(res.idle_frac, 0.95)},
              {"occ_hist_q1", static_cast<double>(occ_h[0])},
              {"occ_hist_q2", static_cast<double>(occ_h[1])},
              {"occ_hist_q3", static_cast<double>(occ_h[2])},
              {"occ_hist_q4", static_cast<double>(occ_h[3])},
              {"idle_hist_q1", static_cast<double>(idle_h[0])},
              {"idle_hist_q2", static_cast<double>(idle_h[1])},
              {"idle_hist_q3", static_cast<double>(idle_h[2])},
              {"idle_hist_q4", static_cast<double>(idle_h[3])},
              {"overlap_task_starts", static_cast<double>(res.overlap_starts)}});
  }
  std::printf("\nqueue-wait grows with batch window (max_wait) while compute "
              "amortizes; batch1 minimizes queueing but forfeits batch "
              "sharding across the pool.\n");
  if (!json.write()) return 1;
  return 0;
}

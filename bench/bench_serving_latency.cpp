// Serving latency under micro-batching policies: per-request queue-wait vs.
// compute time (p50/p95/p99) of the async serving runtime, per BatchPolicy.
//
// A producer thread offers a reproducible Poisson-ish request stream at a
// fixed fraction of the measured capacity; each policy serves the same
// stream through serve::Server (admission queue -> deadline-aware
// micro-batcher -> pipelined BatchScheduler). Small batches bound
// queue-wait but pay per-batch overheads; large batches amortize compute
// but make early arrivals wait — this harness makes that tradeoff visible
// as separate queue/compute/total percentile columns per policy.
//
//   ./bench_serving_latency [--model=tiny|vgg] [--input=96] [--threads=0]
//                           [--requests=48] [--load=0.7 (fraction of
//                            measured capacity)] [--rate=<req/s> (absolute
//                            override of load x capacity)] [--seed=1234]
//                           [--executor=graph|serial] [--quick]
//                           [--precision=f32|bf16|int8]
//                           [--sparsity=0 (block-sparse weight density in
//                            (0,1); 0 = dense)]
//                           [--scenario=steady|ramp|burst]
//                           [--json=<path>]
//
// Per-request traces also carry the batch's worker occupancy and idle
// fraction (runtime::ExecStats); their percentiles and quartile histograms
// land in the JSON so the work-graph executor's overlap shows up in the
// perf trajectory, and --executor=serial is the apples-to-apples baseline.
//
// --scenario=ramp|burst switches to the traffic-shift harness: arrivals
// come from an inhomogeneous Poisson process (piecewise-constant rate,
// simulated by thinning) whose rate ramps up from a fraction of capacity to
// full offered load (ramp) or spikes in the middle of a quiet stream
// (burst). The identical arrival stream is served twice — online
// re-planning off, then on (a serve::Replanner watching the batch-size
// regime and swapping analytically re-priced plans at batch boundaries) —
// and the p50/p95/p99 latencies plus the replanner's counters land in the
// table and the JSON record per scenario. This is the harness behind CI's
// BENCH_replanning.json artifact.

#include <array>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/arrival_process.hpp"
#include "common/percentile.hpp"
#include "core/selector.hpp"
#include "runtime/batch_scheduler.hpp"
#include "serve/replanner.hpp"
#include "serve/server.hpp"

using namespace vlacnn;

namespace {

struct PolicyCase {
  const char* name;
  int max_batch;
  double max_wait_ms;
};

struct PolicyResult {
  std::vector<double> queue_ms, compute_ms, total_ms;
  std::vector<double> occupancy, idle_frac;
  std::uint64_t overlap_starts = 0;  // summed over requests
  serve::ServerStats stats;
  double wall_s = 0.0;
  std::uint64_t bytes_moved = 0;
};

// Quartile histogram of values in [0, 1]: counts per [0,.25) [.25,.5)
// [.5,.75) [.75,1].
std::array<int, 4> quartile_hist(const std::vector<double>& v) {
  std::array<int, 4> h{};
  for (double x : v) {
    int b = static_cast<int>(x * 4.0);
    if (b < 0) b = 0;
    if (b > 3) b = 3;
    ++h[static_cast<std::size_t>(b)];
  }
  return h;
}

PolicyResult serve_stream(runtime::BatchScheduler& sched, dnn::Network& net,
                          const PolicyCase& pc, int requests, double rate,
                          std::uint64_t seed) {
  serve::ServerConfig cfg;
  cfg.policy.max_batch = pc.max_batch;
  cfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(pc.max_wait_ms));
  cfg.queue_capacity = static_cast<std::size_t>(requests);  // no shedding:
  cfg.block_when_full = true;  // every policy serves the identical stream
  serve::Server server(sched, net, cfg);
  server.start();

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  PoissonArrivals arrivals(seed, rate);
  auto next_arrival = t0;
  for (int r = 0; r < requests; ++r) {
    next_arrival += arrivals.next_gap();
    std::this_thread::sleep_until(next_arrival);
    dnn::Tensor in(1, net.in_c(), net.in_h(), net.in_w());
    in.randomize_item(0, seed + static_cast<std::uint64_t>(r));
    server.submit(static_cast<std::uint64_t>(r), std::move(in));
  }
  server.stop();

  PolicyResult res;
  res.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  for (const serve::Completion& c : server.drain_completions()) {
    res.queue_ms.push_back(c.trace.queue_ms);
    res.compute_ms.push_back(c.trace.compute_ms);
    res.total_ms.push_back(c.trace.total_ms);
    res.occupancy.push_back(c.trace.batch_occupancy);
    res.idle_frac.push_back(c.trace.worker_idle_frac);
    res.overlap_starts += c.trace.batch_overlap_starts;
  }
  res.stats = server.stats();
  return res;
}

// One pass of the traffic-shift harness: serves the scenario's arrival
// stream (identical across passes for a given seed) with re-planning off or
// on, and returns the latency vectors plus the server's merged counters.
PolicyResult serve_scenario(runtime::BatchScheduler& sched, dnn::Network& net,
                            const std::vector<PiecewiseRateArrivals::Segment>&
                                segments,
                            std::uint64_t seed, serve::Replanner* rp) {
  serve::ServerConfig cfg;
  cfg.policy.max_batch = 8;
  cfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(2.0));
  cfg.queue_capacity = 512;
  cfg.block_when_full = true;  // identical stream: never shed
  cfg.replanner = rp;
  serve::Server server(sched, net, cfg);
  server.start();

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  PiecewiseRateArrivals arrivals(seed, segments);
  const double horizon = arrivals.horizon_seconds();
  for (std::uint64_t r = 0;; ++r) {
    const double at = arrivals.next_arrival_seconds();
    if (at >= horizon) break;
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(at)));
    dnn::Tensor in(1, net.in_c(), net.in_h(), net.in_w());
    in.randomize_item(0, seed + r);
    server.submit(r, std::move(in));
  }
  server.stop();

  PolicyResult res;
  res.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  for (const serve::Completion& c : server.drain_completions()) {
    res.queue_ms.push_back(c.trace.queue_ms);
    res.compute_ms.push_back(c.trace.compute_ms);
    res.total_ms.push_back(c.trace.total_ms);
    res.occupancy.push_back(c.trace.batch_occupancy);
    res.idle_frac.push_back(c.trace.worker_idle_frac);
    res.overlap_starts += c.trace.batch_overlap_starts;
  }
  res.stats = server.stats();
  return res;
}

int run_scenario(const std::string& scenario, const std::string& model,
                 int input_hw, int threads, int requests, double load,
                 double rate_override, std::uint64_t seed,
                 bench::BenchJson& json) {
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  net->fuse_residuals();

  // A per-layer analytic plan priced for batch 1 (the low-traffic regime a
  // scenario starts in): the structural CostModel ranks in microseconds, no
  // simulator in the bench loop. The replanner re-prices the same admitted
  // candidates as the regime shifts.
  const sim::MachineConfig machine = sim::a64fx();
  core::BackendPlan tuned;
  tuned.opt6.blocks = gemm::tune_block_sizes(machine);
  core::CostModel cm(machine, tuned.opt6);
  core::BackendPlan plan = core::select_per_layer(
      *net, machine, 7, /*batch=*/1, {}, core::CostSource::Analytic, &cm);

  core::ConvolutionEngine engine(plan);
  runtime::SchedulerConfig scfg;
  scfg.threads = threads;
  runtime::BatchScheduler sched(engine, scfg);

  double capacity_ips;
  {
    dnn::Tensor warm(8, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    capacity_ips = 8.0 / std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  }
  const double peak = rate_override > 0.0 ? rate_override : load * capacity_ips;

  // Segment durations sized so the expected arrival count matches
  // --requests at the scenario's mean rate.
  std::vector<PiecewiseRateArrivals::Segment> segments;
  if (scenario == "ramp") {
    const double mean = 0.625 * peak;  // mean of 0.25..1.0 over 4 steps
    segments = PiecewiseRateArrivals::ramp(0.25 * peak, peak, 4,
                                           requests / mean / 4.0);
  } else {
    const double mean = (0.4 + 1.0) / 3.0 * peak;  // quiet/spike/quiet thirds
    const double third = requests / mean / 3.0;
    segments = PiecewiseRateArrivals::burst(0.2 * peak, peak, third, third);
  }

  std::printf("== serving latency under traffic shift (%s) ==\n",
              scenario.c_str());
  std::printf("model=%s input=%d workers=%d | capacity ~%.1f images/sec, "
              "peak offered %.1f req/sec | horizon %.1fs\n\n",
              model.c_str(), input_hw, sched.threads(), capacity_ips, peak,
              PiecewiseRateArrivals(seed, segments).horizon_seconds());
  std::printf("%-10s %5s %7s | %8s %8s %8s | %7s %6s %9s %7s\n", "replan",
              "done", "avg_b", "t_p50", "t_p95", "t_p99", "replans", "swaps",
              "plan_us", "priced");

  for (const bool replan : {false, true}) {
    serve::Replanner rp(
        sched, *net, cm, plan,
        {/*max_batch=*/8, /*window=*/8, /*hysteresis=*/1.5,
         /*min_batches=*/6, /*cooldown_batches=*/6});
    if (replan) rp.start();
    PolicyResult res =
        serve_scenario(sched, *net, segments, seed, replan ? &rp : nullptr);
    if (replan) rp.stop();
    const auto p = [](const std::vector<double>& v, double q) {
      return percentile(v, q);
    };
    const double avg_b =
        res.stats.batches > 0
            ? res.stats.sum_batch_items / static_cast<double>(res.stats.batches)
            : 0.0;
    std::printf("%-10s %5llu %7.2f | %8.2f %8.2f %8.2f | %7llu %6llu %9llu "
                "%7d\n",
                replan ? "on" : "off",
                static_cast<unsigned long long>(res.stats.completed), avg_b,
                p(res.total_ms, 0.50), p(res.total_ms, 0.95),
                p(res.total_ms, 0.99),
                static_cast<unsigned long long>(res.stats.plans_recomputed),
                static_cast<unsigned long long>(res.stats.plan_swaps_applied),
                static_cast<unsigned long long>(res.stats.last_plan_compute_us),
                res.stats.plan_priced_batch);
    json.add(std::string("model=") + model + " scenario=" + scenario +
                 " replan=" + (replan ? "on" : "off"),
             res.wall_s * 1e3, 0.0,
             {{"images_per_sec",
               static_cast<double>(res.stats.completed) / res.wall_s},
              {"avg_batch", avg_b},
              {"queue_p99_ms", p(res.queue_ms, 0.99)},
              {"compute_p99_ms", p(res.compute_ms, 0.99)},
              {"total_p50_ms", p(res.total_ms, 0.50)},
              {"total_p95_ms", p(res.total_ms, 0.95)},
              {"total_p99_ms", p(res.total_ms, 0.99)},
              {"plans_recomputed",
               static_cast<double>(res.stats.plans_recomputed)},
              {"plan_swaps_applied",
               static_cast<double>(res.stats.plan_swaps_applied)},
              {"last_plan_compute_us",
               static_cast<double>(res.stats.last_plan_compute_us)},
              {"plan_priced_batch",
               static_cast<double>(res.stats.plan_priced_batch)}});
  }
  std::printf("\nre-planning re-prices the admitted candidates for the "
              "regime's effective batch and swaps at a batch boundary; "
              "outputs stay bit-identical (pinned in test_serve).\n");
  if (!json.write()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const bool quick = args.get_bool("quick", false);
  const int requests =
      static_cast<int>(args.get_int("requests", quick ? 16 : 48));
  const double load = args.get_double("load", 0.7);
  const double rate_override = args.get_double("rate", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const std::string precision = args.get("precision", "f32");
  const std::string executor = args.get("executor", "graph");
  const std::string scenario = args.get("scenario", "steady");
  bench::BenchJson json("serving_latency", args.get("json", ""));
  if (requests < 1 || load <= 0.0) {
    std::fprintf(stderr, "error: --requests >= 1 and --load > 0 required\n");
    return 1;
  }
  if (scenario != "steady" && scenario != "ramp" && scenario != "burst") {
    std::fprintf(stderr, "error: unknown --scenario=%s (steady|ramp|burst)\n",
                 scenario.c_str());
    return 1;
  }

  dnn::warn_if_input_resized(model, input_hw);
  if (scenario != "steady")
    // Traffic-shift harness: per-layer analytic plan + optional online
    // re-planning instead of the per-policy sweep (fp32 dense; --precision /
    // --sparsity / --executor apply to the steady sweep only).
    return run_scenario(scenario, model, input_hw, threads, requests, load,
                        rate_override, seed, json);
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  net->fuse_residuals();

  core::BackendPlan plan =
      core::BackendPlan::uniform(core::EnginePolicy::fused());
  // --precision routes the Gemm6-family convs through reduced-precision
  // resident weight images, so serving percentiles compare across formats
  // with one flag.
  if (precision == "bf16") {
    plan = plan.with_precision(gemm::PackFormat::Bf16);
  } else if (precision == "int8") {
    plan = plan.with_precision(gemm::PackFormat::Int8PerChannel);
  } else if (precision != "f32") {
    std::fprintf(stderr, "error: unknown --precision=%s (f32|bf16|int8)\n",
                 precision.c_str());
    return 1;
  }
  // --sparsity composes with --precision: block-sparse resident images at
  // the given density (0 = dense), the Gemm6-family convs skip-walking only
  // the kept 4x16 blocks.
  const double sparsity = args.get_double("sparsity", 0.0);
  if (sparsity < 0.0 || sparsity > 1.0) {
    std::fprintf(stderr, "error: --sparsity=%g must be in [0,1]\n", sparsity);
    return 1;
  }
  if (sparsity > 0.0) plan = plan.with_sparsity(sparsity);
  core::ConvolutionEngine engine(std::move(plan));
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  if (executor == "serial") {
    cfg.executor = runtime::ExecutorKind::Serial;
  } else if (executor != "graph") {
    std::fprintf(stderr, "error: unknown --executor=%s (graph|serial)\n",
                 executor.c_str());
    return 1;
  }
  runtime::BatchScheduler sched(engine, cfg);

  // Capacity measurement (and warm-up): batch-8 images/sec of the
  // synchronous path sets the offered load for every policy.
  double capacity_ips;
  {
    dnn::Tensor warm(8, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);  // warm-up: caches, workspaces
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    capacity_ips = 8.0 / std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  }
  const double rate = rate_override > 0.0 ? rate_override : load * capacity_ips;

  std::printf("== serving latency vs. micro-batching policy ==\n");
  std::printf("model=%s input=%d workers=%d executor=%s | capacity ~%.1f "
              "images/sec, offered %.1f req/sec (load %.2f%s) | %d "
              "requests/policy\n\n",
              model.c_str(), input_hw, sched.threads(), executor.c_str(),
              capacity_ips, rate, rate / capacity_ips,
              rate_override > 0.0 ? ", --rate override" : "", requests);
  std::printf("%-10s %7s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s | %5s %7s\n",
              "policy", "avg_b", "q_p50", "q_p95", "q_p99", "c_p50", "c_p95",
              "c_p99", "t_p50", "t_p95", "t_p99", "occ", "ovl");

  std::vector<PolicyCase> cases;
  if (quick)
    cases = {{"batch1", 1, 0.0}, {"mb8_w2", 8, 2.0}};
  else
    cases = {{"batch1", 1, 0.0},
             {"mb4_w1", 4, 1.0},
             {"mb8_w2", 8, 2.0},
             {"mb8_w8", 8, 8.0}};

  for (const PolicyCase& pc : cases) {
    const std::uint64_t bytes0 = sched.mem_bytes_moved();
    PolicyResult res = serve_stream(sched, *net, pc, requests, rate, seed);
    res.bytes_moved = sched.mem_bytes_moved() - bytes0;
    const auto p = [](const std::vector<double>& v, double q) {
      return percentile(v, q);
    };
    const double avg_b =
        res.stats.batches > 0
            ? res.stats.sum_batch_items /
                  static_cast<double>(res.stats.batches)
            : 0.0;
    std::printf("%-10s %7.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | "
                "%8.2f %8.2f %8.2f | %5.2f %7llu\n",
                pc.name, avg_b, p(res.queue_ms, 0.50), p(res.queue_ms, 0.95),
                p(res.queue_ms, 0.99), p(res.compute_ms, 0.50),
                p(res.compute_ms, 0.95), p(res.compute_ms, 0.99),
                p(res.total_ms, 0.50), p(res.total_ms, 0.95),
                p(res.total_ms, 0.99), p(res.occupancy, 0.50),
                static_cast<unsigned long long>(res.overlap_starts));
    const std::array<int, 4> occ_h = quartile_hist(res.occupancy);
    const std::array<int, 4> idle_h = quartile_hist(res.idle_frac);
    json.add(std::string("model=") + model + " precision=" + precision +
                 " sparsity=" + Table::fmt(sparsity, 2) + " executor=" +
                 executor + " policy=" + pc.name +
                 " max_batch=" + std::to_string(pc.max_batch) +
                 " max_wait_ms=" + std::to_string(pc.max_wait_ms),
             res.wall_s * 1e3, static_cast<double>(res.bytes_moved),
             {{"images_per_sec",
               static_cast<double>(res.stats.completed) / res.wall_s},
              {"avg_batch", avg_b},
              {"queue_p50_ms", p(res.queue_ms, 0.50)},
              {"queue_p95_ms", p(res.queue_ms, 0.95)},
              {"queue_p99_ms", p(res.queue_ms, 0.99)},
              {"compute_p50_ms", p(res.compute_ms, 0.50)},
              {"compute_p95_ms", p(res.compute_ms, 0.95)},
              {"compute_p99_ms", p(res.compute_ms, 0.99)},
              {"total_p50_ms", p(res.total_ms, 0.50)},
              {"total_p95_ms", p(res.total_ms, 0.95)},
              {"total_p99_ms", p(res.total_ms, 0.99)},
              {"occupancy_p50", p(res.occupancy, 0.50)},
              {"occupancy_p95", p(res.occupancy, 0.95)},
              {"idle_frac_p50", p(res.idle_frac, 0.50)},
              {"idle_frac_p95", p(res.idle_frac, 0.95)},
              {"occ_hist_q1", static_cast<double>(occ_h[0])},
              {"occ_hist_q2", static_cast<double>(occ_h[1])},
              {"occ_hist_q3", static_cast<double>(occ_h[2])},
              {"occ_hist_q4", static_cast<double>(occ_h[3])},
              {"idle_hist_q1", static_cast<double>(idle_h[0])},
              {"idle_hist_q2", static_cast<double>(idle_h[1])},
              {"idle_hist_q3", static_cast<double>(idle_h[2])},
              {"idle_hist_q4", static_cast<double>(idle_h[3])},
              {"overlap_task_starts", static_cast<double>(res.overlap_starts)}});
  }
  std::printf("\nqueue-wait grows with batch window (max_wait) while compute "
              "amortizes; batch1 minimizes queueing but forfeits batch "
              "sharding across the pool.\n");
  if (!json.write()) return 1;
  return 0;
}

// Table II: relative execution time of the optimized 6-loop implementation
// vs the optimized 3-loop implementation of im2col+GEMM for six block-size
// candidates, on YOLOv3 (first 4 conv layers), RISC-V Vector @ gem5,
// 1 MB L2, 8 vector lanes.
//
// Paper finding: the 6-loop never beats the 3-loop on this machine (best
// candidate 16x512x128 at 0.98); BLIS-like blocking buys nothing when the
// vector unit is attached to the L2 and prefetch instructions do not exist.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Table II — 6-loop block sizes vs 3-loop (RVV @ gem5)",
                      "Table II", opt);

  const sim::MachineConfig machine = sim::rvv_gem5();  // 1 MB L2, 8 lanes

  auto net3 = dnn::build_yolov3_first4conv(opt.input_hw, opt.seed);
  const core::RunResult base =
      core::run_simulated(*net3, machine, core::EnginePolicy::opt3loop());
  const std::uint64_t cycles3 = core::conv_cycles(base);

  const gemm::BlockSizes candidates[] = {
      {128, 1024, 256}, {16, 1024, 128}, {16, 512, 128},
      {16, 512, 256},   {32, 512, 128},  {64, 1024, 128},
  };
  const double paper_normalized[] = {0.90, 0.95, 0.98, 0.96, 0.97, 0.95};

  Table table({"block sizes (MxNxK)", "6-loop Mcycles", "3-loop Mcycles",
               "normalized perf (ours)", "normalized perf (paper)"});
  for (std::size_t i = 0; i < std::size(candidates); ++i) {
    gemm::Opt6Config cfg;
    cfg.blocks = candidates[i];
    auto net = dnn::build_yolov3_first4conv(opt.input_hw, opt.seed);
    const core::RunResult r =
        core::run_simulated(*net, machine, core::EnginePolicy::opt6loop(cfg));
    const std::uint64_t cycles6 = core::conv_cycles(r);
    table.add_row({candidates[i].to_string(), bench::mcycles(cycles6),
                   bench::mcycles(cycles3),
                   Table::fmt(static_cast<double>(cycles3) /
                                  static_cast<double>(cycles6),
                              2),
                   Table::fmt(paper_normalized[i], 2)});
  }
  table.print("Normalized performance = 3-loop / 6-loop cycle ratio "
              "(1.0 means parity; <1 means the 6-loop is slower):");
  std::printf("\nShape check: 6-loop should not exceed ~1.0x on RVV "
              "(paper: 0.90-0.98).\n");
  return 0;
}

// Table III: average granted vector length and L2 cache miss rate on
// RISC-V Vector @ gem5 for YOLOv3 (first 20 layers), 1 MB L2, 8 lanes,
// sweeping the hardware vector length 512..16384 bits.
//
// Paper finding: the granted VL stays close to the hardware VL (loop tails
// only), while the L2 miss rate climbs from 32% to 79% because the
// per-strip vector working set (K x VL) outgrows the fixed 1 MB L2.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header(
      "Table III — average vector length & L2 miss rate (RVV @ gem5)",
      "Table III", opt);

  const unsigned vlens[] = {512, 1024, 2048, 4096, 8192, 16384};
  const double paper_avg_vl[] = {512, 1022.9, 2041.9, 4063.7, 8111.9, 15902.2};
  const double paper_missrate[] = {32, 36, 39, 42, 61, 79};

  Table table({"vector length", "avg VL bits (ours)", "avg VL bits (paper)",
               "L2 miss rate % (ours)", "L2 miss rate % (paper)"});
  std::size_t i = 0;
  for (unsigned vl : vlens) {
    if (opt.quick && vl > 4096) break;
    auto net = dnn::build_yolov3_prefix_20(opt.input_hw, opt.seed);
    const core::RunResult r = core::run_simulated(
        *net, sim::rvv_gem5().with_vlen(vl), core::EnginePolicy::opt3loop());
    table.add_row({std::to_string(vl) + "-bit", Table::fmt(r.avg_vl_bits, 1),
                   Table::fmt(paper_avg_vl[i], 1),
                   Table::fmt(100.0 * r.l2_miss_rate, 1),
                   Table::fmt(paper_missrate[i], 0)});
    ++i;
  }
  table.print();
  std::printf("\nShape check: avg VL tracks the hardware VL closely; miss "
              "rate grows monotonically with VL.\n");
  return 0;
}

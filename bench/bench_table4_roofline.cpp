// Table IV: arithmetic intensity and sustained fraction of single-core
// peak for the 14 discrete YOLOv3 convolutional layers on A64FX, using the
// optimized 6-loop GEMM.
//
// Paper finding: low-AI layers (small M/K) sustain ~46-50% of peak; high-AI
// layers reach 75-91%. AI is computed at the paper's full 608x608 shapes;
// the measured %-of-peak uses an N-scaled GEMM to bound simulation time.

#include "bench_common.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("Table IV — per-layer roofline on A64FX", "Table IV",
                      opt);

  const int n_scale = opt.quick ? 512 : 64;
  core::EnginePolicy policy = core::EnginePolicy::opt6loop();
  policy.opt6.blocks = gemm::tune_block_sizes(sim::a64fx());
  const auto entries = core::run_roofline(sim::a64fx(), policy, 608, n_scale);

  const double paper_pct[] = {46, 72, 50, 77, 70, 81, 75,
                              82, 83, 78, 75, 91, 83, 75};

  Table table({"layer", "M", "N", "K", "AI (ours)", "% peak (ours)",
               "% peak (paper)"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    table.add_row({e.label, Table::fmt_int(e.m), Table::fmt_int(e.n),
                   Table::fmt_int(e.k), Table::fmt(e.arithmetic_intensity, 1),
                   Table::fmt(e.pct_of_peak, 0), Table::fmt(paper_pct[i], 0)});
  }
  table.print("AI = 2MNK / 4(MN+KN+MK); peak = 62.5 GFLOP/s per core:");
  std::printf("\nShape check: %%-of-peak increases with AI; L1 (AI 7.3) is "
              "the weakest, L61/L62 among the strongest.\n");
  return 0;
}

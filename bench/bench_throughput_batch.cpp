// Batched multi-threaded throughput: images/sec of the runtime::BatchScheduler
// as a function of worker count and batch size (functional engines — this
// measures the library's host-speed inference runtime, not the simulator).
//
// The headline check: at batch >= 8, 4 workers should deliver >= 2.5x the
// images/sec of 1 worker on a machine with >= 4 cores (batch items are
// independent, so scaling is limited only by memory bandwidth and the
// layer barrier). The batch=1 rows show the intra-op path instead, where
// the pool shards the GEMM M-panel / Winograd tile loops of a single image.
//
//   ./bench_throughput_batch [--model=tiny|vgg (full yolo is too heavy
//                             for a scaling sweep)]
//                            [--policy=opt6|opt3|winograd|fused|plan]
//                            [--input=96] [--reps=3] [--max-threads=8]
//                            [--quick] [--json=<path>]
//
// The default policy is opt6 because only the 6-loop GEMM (and Winograd)
// have intra-op pool sharding — opt3 would silently run the batch=1 rows
// serially at every thread count. --policy=fused runs the fused conv
// pipeline (implicit-GEMM packing + in-kernel epilogue); --policy=plan
// runs the simulation-driven per-layer BackendPlan (selected once on the
// a64fx machine config, then reused for every row). --json appends one
// {bench, config, wall_ms, bytes_moved, images_per_sec, lat_p50/95/99_ms}
// record per (threads, batch) row for the perf trajectory — the latency
// percentiles are over the per-rep batch wall times, so BENCH_*.json tracks
// tail latency alongside throughput.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/percentile.hpp"
#include "core/selector.hpp"
#include "runtime/batch_scheduler.hpp"

using namespace vlacnn;

namespace {

double run_once(runtime::BatchScheduler& sched, dnn::Network& net,
                const dnn::Tensor& input) {
  const auto t0 = std::chrono::steady_clock::now();
  sched.run(net, input);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

namespace {

core::BackendPlan plan_from_name(const std::string& name, dnn::Network& net) {
  if (name == "plan") return core::select_per_layer(net, sim::a64fx());
  if (name == "opt3")
    return core::BackendPlan::uniform(core::EnginePolicy::opt3loop());
  if (name == "winograd")
    return core::BackendPlan::uniform(core::EnginePolicy::winograd());
  if (name == "fused")
    return core::BackendPlan::uniform(core::EnginePolicy::fused());
  return core::BackendPlan::uniform(core::EnginePolicy::opt6loop());
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const std::string policy_name = args.get("policy", "opt6");
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const int max_threads = static_cast<int>(args.get_int("max-threads", 8));
  const bool quick = args.get_bool("quick", false);
  bench::BenchJson json("throughput_batch", args.get("json", ""));
  if (reps < 1 || max_threads < 1) {
    std::fprintf(stderr, "error: --reps and --max-threads must be >= 1\n");
    return 1;
  }

  if (model != "tiny" && model != "vgg") {
    std::fprintf(stderr, "error: unknown --model=%s (tiny|vgg)\n",
                 model.c_str());
    return 1;
  }
  dnn::warn_if_input_resized(model, input_hw);
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);
  // Selected (or compiled) once; engines per row share the plan by value.
  const core::BackendPlan plan = plan_from_name(policy_name, *net);
  std::printf("model=%s policy=%s input=%d  hardware threads=%d\n",
              model.c_str(), policy_name.c_str(), input_hw,
              runtime::ThreadPool::hardware_threads());
  if (policy_name == "plan")
    std::printf("per-layer dispatch table:\n%s", plan.summary().c_str());
  std::printf("%-8s %-8s %-12s %-12s %-10s\n", "threads", "batch", "sec/run",
              "images/sec", "speedup");

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  std::vector<int> batches = quick ? std::vector<int>{1, 8}
                                   : std::vector<int>{1, 8, 16};

  for (int batch : batches) {
    dnn::Tensor input(batch, net->in_c(), net->in_h(), net->in_w());
    input.randomize_batch(1234, 0.0f, 1.0f);
    double base_ips = 0.0;
    for (int threads : thread_counts) {
      core::ConvolutionEngine engine(plan);
      runtime::SchedulerConfig cfg;
      cfg.threads = threads;
      runtime::BatchScheduler sched(engine, cfg);
      run_once(sched, *net, input);  // warm-up (allocations, weight caches)
      double best = 1e30;
      std::uint64_t run_bytes = 0;
      std::vector<double> lat_ms;  // per-rep batch latency -> tail tracking
      lat_ms.reserve(static_cast<std::size_t>(reps));
      for (int r = 0; r < reps; ++r) {
        const std::uint64_t bytes0 = sched.mem_bytes_moved();
        const double sec = run_once(sched, *net, input);
        lat_ms.push_back(sec * 1e3);
        best = std::min(best, sec);
        run_bytes = sched.mem_bytes_moved() - bytes0;  // constant per run
      }
      const double ips = batch / best;
      if (threads == 1) base_ips = ips;
      std::printf("%-8d %-8d %-12.4f %-12.1f %-10.2f\n", threads, batch, best,
                  ips, ips / base_ips);
      json.add("model=" + model + " policy=" + policy_name +
                   " threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch),
               best * 1e3, static_cast<double>(run_bytes),
               {{"images_per_sec", ips},
                {"lat_p50_ms", percentile(lat_ms, 0.50)},
                {"lat_p95_ms", percentile(lat_ms, 0.95)},
                {"lat_p99_ms", percentile(lat_ms, 0.99)}});
    }
  }
  if (!json.write()) return 1;
  return 0;
}

// Weight-resident batch-fused execution: per-item weight DRAM traffic vs
// batch size on the weight-bound layer set (VGG block-5 convolutions and
// the FC tail).
//
// For small-N / large-K layers the weight stream dominates DRAM traffic
// and PR 2's epilogue fusion cannot help: every per-item pass re-streams
// the same multi-megabyte weight matrix. With weight residency the A
// panels are packed once at prepare() (gemm::PackedWeightCache) and the
// layer executes batch-fused — the im2col matrices of all batch items
// concatenated along the GEMM N axis — so each resident panel is streamed
// from DRAM once per batch instead of once per item. FC layers get the
// same treatment through the batched out(nb×N) += X(nb×K)·W(K×N) GEMM.
//
// Per batch in {1, 2, 4, 8} and per layer, the harness measures:
//   * weight DRAM bytes/item: simulated DRAM line fills attributed (via
//     MemorySystem watch ranges) to the raw-weight + packed-image buffers,
//     divided by the batch — the metric that must fall ~batch×.
//   * engine bytes/item and functional wall time/item, for context.
// It also verifies, per layer, that the batch-fused outputs are
// bit-identical to the per-item path.
//
//   ./bench_weight_reuse [--machine=sve|rvv|a64fx] [--quick] [--check]
//                        [--json=<path>]
//
// --check (the CI smoke gate) exits non-zero if batch-4 weight DRAM
// bytes/item exceeds 0.5x the batch-1 value on any layer, or if any
// batch-fused output differs from the per-item path.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dnn/layers.hpp"
#include "sim/address_map.hpp"

using namespace vlacnn;

namespace {

struct ReuseCase {
  std::string name;
  bool fc = false;
  dnn::ConvDesc desc;   // conv cases
  int fc_in = 0, fc_out = 0;  // fc cases
  std::uint64_t seed = 1;
};

struct Measurement {
  double weight_dram_bytes_per_item = 0.0;
  double engine_bytes_per_item = 0.0;
  double wall_ms_per_item = 0.0;
  double weight_bytes = 0.0;
  double arithmetic_intensity = 0.0;
};

std::unique_ptr<dnn::Layer> build_layer(const ReuseCase& rc) {
  if (rc.fc)
    return std::make_unique<dnn::ConnectedLayer>(
        rc.fc_in, rc.fc_out, dnn::Activation::Relu, rc.seed);
  return std::make_unique<dnn::ConvLayer>(rc.desc, rc.seed);
}

dnn::Tensor make_input(const ReuseCase& rc, int batch) {
  dnn::Tensor in = rc.fc ? dnn::Tensor(batch, rc.fc_in, 1, 1)
                         : dnn::Tensor(batch, rc.desc.in_c, rc.desc.in_h,
                                       rc.desc.in_w);
  in.randomize_batch(7, -1.0f, 1.0f);
  return in;
}

const float* case_weights(const ReuseCase& rc, const dnn::Layer& layer) {
  if (rc.fc)
    return static_cast<const dnn::ConnectedLayer&>(layer).weights();
  return static_cast<const dnn::ConvLayer&>(layer).weights();
}

/// Runs the case at `batch` — batch-fused when batch > 1 — and returns the
/// traffic/time metrics. The weight-DRAM attribution is the shared
/// bench::weight_dram_bytes_per_item metric (raw weights + resident packed
/// image), so this bench and bench_fused_conv's weight-residency section
/// measure identically.
Measurement measure(const ReuseCase& rc, const sim::MachineConfig& machine,
                    int batch) {
  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  Measurement m;

  // Instrumented pass: DRAM fills attributed to the weight stream.
  {
    auto layer = build_layer(rc);
    const std::uint64_t weight_bytes =
        rc.fc ? static_cast<std::uint64_t>(rc.fc_in) * rc.fc_out *
                    sizeof(float)
              : static_cast<std::uint64_t>(rc.desc.weight_count()) *
                    sizeof(float);
    m.weight_bytes = static_cast<double>(weight_bytes);
    m.arithmetic_intensity =
        rc.fc ? 2.0 * rc.fc_in * rc.fc_out /
                    (4.0 * (rc.fc_in +
                            static_cast<double>(rc.fc_in) * rc.fc_out +
                            rc.fc_out))
              : rc.desc.arithmetic_intensity();
    dnn::Tensor in = make_input(rc, batch);
    m.weight_dram_bytes_per_item = bench::weight_dram_bytes_per_item(
        *layer, case_weights(rc, *layer), weight_bytes,
        rc.fc ? nullptr : &rc.desc, policy, machine, in);
  }

  // Functional pass: engine bytes + host wall time (one warm-up rep).
  {
    auto layer = build_layer(rc);
    vla::VectorEngine eng(machine.vlen_bits);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    if (!rc.fc)
      engine.prepare(rc.desc,
                     static_cast<const dnn::ConvLayer*>(layer.get())->weights());
    dnn::Tensor in = make_input(rc, batch);
    const std::vector<const dnn::Tensor*> ins{&in};
    layer->prepare_batch(ins);
    auto run_once = [&] {
      bool fused = false;
      if (batch > 1) fused = layer->forward_batch(ctx, ins);
      if (!fused)
        for (int b = 0; b < batch; ++b) layer->forward_item(ctx, ins, b);
    };
    run_once();  // warm-up sizes the packing/staging buffers
    eng.reset_mem_counters();
    const auto t0 = std::chrono::steady_clock::now();
    run_once();
    m.wall_ms_per_item =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e3 / batch;
    m.engine_bytes_per_item =
        static_cast<double>(eng.mem_bytes_moved()) / batch;
  }
  return m;
}

/// Batch-fused vs per-item outputs, bytewise (functional engines).
bool bit_identical(const ReuseCase& rc, int batch) {
  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  auto run = [&](bool batched, std::vector<float>* out) {
    auto layer = build_layer(rc);
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    if (!rc.fc)
      engine.prepare(rc.desc,
                     static_cast<const dnn::ConvLayer*>(layer.get())->weights());
    dnn::Tensor in = make_input(rc, batch);
    const std::vector<const dnn::Tensor*> ins{&in};
    layer->prepare_batch(ins);
    if (batched) {
      if (!layer->forward_batch(ctx, ins)) return false;
    } else {
      for (int b = 0; b < batch; ++b) layer->forward_item(ctx, ins, b);
    }
    const dnn::Tensor& o = layer->output();
    out->assign(o.data(), o.data() + o.size());
    return true;
  };
  std::vector<float> batched, per_item;
  if (!run(true, &batched)) return false;
  if (!run(false, &per_item)) return false;
  return batched.size() == per_item.size() &&
         std::memcmp(batched.data(), per_item.data(),
                     batched.size() * sizeof(float)) == 0;
}

std::string mb(double bytes) {
  return Table::fmt(bytes / (1024.0 * 1024.0), 3);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  const std::string machine_name = args.get("machine", "sve");
  const bool check = args.get_bool("check", false);
  const sim::MachineConfig machine = bench::machine_from_name(machine_name);

  bench::print_header(
      "Weight-resident batch-fused execution — per-item weight DRAM vs batch",
      "ROADMAP fused follow-up (a): weight-resident blocking for small-N / "
      "large-K layers",
      opt);
  std::printf("machine=%s (L2 %llu KiB, %u B lines)%s\n\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(machine.l2.size_bytes / 1024),
              machine.l2.line_bytes, check ? ", --check on" : "");

  // The weight-bound layer set: VGG block 5 (at the fused-conv bench's
  // 128-input scale) and the VGG FC tail (at the 64-input scale). --quick
  // shrinks channels, keeping the weight-bound geometry (M >= N).
  std::vector<ReuseCase> cases;
  {
    ReuseCase vgg5;
    vgg5.name = opt.quick ? "vgg5-conv 256 3x3 (quick)" : "vgg5-conv 512 3x3";
    vgg5.desc.in_c = opt.quick ? 256 : 512;
    vgg5.desc.in_h = vgg5.desc.in_w = opt.quick ? 4 : 8;
    vgg5.desc.out_c = vgg5.desc.in_c;
    vgg5.desc.ksize = 3;
    vgg5.desc.stride = 1;
    vgg5.desc.pad = 1;
    vgg5.desc.batch_norm = false;
    vgg5.desc.act = dnn::Activation::Relu;
    vgg5.seed = 1001;
    cases.push_back(vgg5);

    ReuseCase head = vgg5;  // the 1x1 flavour (dense batched B path)
    head.name = opt.quick ? "head-conv 256 1x1 (quick)" : "head-conv 512 1x1";
    head.desc.ksize = 1;
    head.desc.pad = 0;
    head.seed = 1002;
    cases.push_back(head);

    ReuseCase fc;
    fc.fc = true;
    fc.name = opt.quick ? "vgg-fc 512x1024 (quick)" : "vgg-fc 2048x4096";
    fc.fc_in = opt.quick ? 512 : 2048;
    fc.fc_out = opt.quick ? 1024 : 4096;
    fc.seed = 1003;
    cases.push_back(fc);
  }
  for (const ReuseCase& rc : cases) {
    if (!rc.fc && !core::conv_weight_bound(rc.desc)) {
      std::fprintf(stderr, "case %s is not weight-bound\n", rc.name.c_str());
      return 1;
    }
  }

  const std::vector<int> batches{1, 2, 4, 8};
  bench::BenchJson json("weight_reuse", opt.json_path);
  Table table({"layer", "batch", "wt DRAM MB/item", "vs b1", "eng MB/item",
               "wall ms/item", "bit-identical"});
  bool ok = true;
  for (const ReuseCase& rc : cases) {
    double base = 0.0;
    double at4 = 0.0;
    for (int batch : batches) {
      // Bit-identity is checked PER batch size: strip/item-boundary
      // arithmetic differs with N' = N×batch, so a defect could manifest
      // at one batch size only.
      const bool bits = batch == 1 || bit_identical(rc, batch);
      if (!bits) ok = false;
      const Measurement m = measure(rc, machine, batch);
      if (batch == 1) base = m.weight_dram_bytes_per_item;
      if (batch == 4) at4 = m.weight_dram_bytes_per_item;
      table.add_row(
          {rc.name, std::to_string(batch), mb(m.weight_dram_bytes_per_item),
           base > 0 ? Table::fmt(m.weight_dram_bytes_per_item / base, 2) + "x"
                    : "-",
           mb(m.engine_bytes_per_item), Table::fmt(m.wall_ms_per_item, 3),
           batch == 1 ? "-" : (bits ? "yes" : "NO")});
      json.add(rc.name + " b" + std::to_string(batch), m.wall_ms_per_item,
               m.engine_bytes_per_item,
               {{"batch", static_cast<double>(batch)},
                {"weight_dram_bytes_per_item", m.weight_dram_bytes_per_item},
                {"weight_bytes", m.weight_bytes},
                {"arithmetic_intensity", m.arithmetic_intensity},
                {"weight_resident", 1.0},
                {"bit_identical", bits ? 1.0 : 0.0}});
    }
    if (base > 0 && at4 > 0.5 * base) {
      std::fprintf(stderr,
                   "FAIL %s: batch-4 weight DRAM bytes/item %.0f > 0.5x "
                   "batch-1 %.0f\n",
                   rc.name.c_str(), at4, base);
      ok = false;
    }
  }
  table.print();
  std::printf(
      "\nExpectation: weight DRAM bytes/item falls ~batch-fold (each "
      "resident weight panel is streamed once per batch), so batch 4 must "
      "sit at <= 0.5x batch 1; batch-fused outputs are bit-identical to the "
      "per-item path.\n");
  if (!json.write()) return 1;
  if (check && !ok) {
    std::fprintf(stderr, "weight-reuse check FAILED\n");
    return 1;
  }
  if (!ok) std::printf("warning: weight-reuse expectations not met\n");
  return 0;
}

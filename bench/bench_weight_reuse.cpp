// Weight-resident batch-fused execution: per-item weight DRAM traffic vs
// batch size on the weight-bound layer set (VGG block-5 convolutions and
// the FC tail), across weight storage precisions.
//
// For small-N / large-K layers the weight stream dominates DRAM traffic
// and PR 2's epilogue fusion cannot help: every per-item pass re-streams
// the same multi-megabyte weight matrix. With weight residency the A
// panels are packed once at prepare() (gemm::PackedWeightCache) and the
// layer executes batch-fused — the im2col matrices of all batch items
// concatenated along the GEMM N axis — so each resident panel is streamed
// from DRAM once per batch instead of once per item. FC layers get the
// same treatment through the batched out(nb×N) += X(nb×K)·W(K×N) GEMM.
//
// --format=bf16|int8 stores the resident conv images reduced-precision
// (weight-only quantization; activations and accumulation stay fp32), so
// the same resident stream touches half / a quarter of the DRAM lines.
// --format=sparse50|sparse25 stores them block-sparse instead: a magnitude
// prune keeps 50% / 25% of the 4x16 weight blocks and the skip-aware
// kernel streams only the kept blocks (plus the bitmap/offset metadata,
// which the DRAM attribution watches too), so the resident stream shrinks
// ~density-fold without touching the element precision. The harness then
// also measures the fp32-resident baseline per batch and reports the
// accuracy cost (max ULP distance and max abs error vs the fp32 reference
// output). The FC case always stays fp32.
//
// Per batch in {1, 2, 4, 8} and per layer, the harness measures:
//   * weight DRAM bytes/item: simulated DRAM line fills attributed (via
//     MemorySystem watch ranges) to the raw-weight + packed-image buffers,
//     divided by the batch — the metric that must fall ~batch×.
//   * engine bytes/item and functional wall time/item, for context.
// It also verifies, per layer, that the batch-fused outputs are
// bit-identical to the per-item path (in the SAME precision: quantized
// batch-fused must equal quantized per-item bit-for-bit).
//
//   ./bench_weight_reuse [--machine=sve|rvv|a64fx] [--quick] [--check]
//                        [--format=f32|bf16|int8|sparse50|sparse25]
//                        [--json=<path>]
//
// --check (the CI smoke gate) exits non-zero if batch-4 weight DRAM
// bytes/item exceeds 0.5x the batch-1 value on any layer, if any
// batch-fused output differs from the per-item path, or — for the reduced
// formats — if the batch-4 quantized stream misses its reduction target
// versus fp32-resident (bf16: >= 1.8x; int8: >= 3.5x and <= 0.3x the fp32
// batch-1 stream; sparseNN: <= density+0.05 of the fp32-resident stream)
// or the accuracy gates of core/selector.hpp are broken. The sparse
// formats additionally gate that the fp32 sparse path is bit-identical to
// the dense fp32-resident path over apply_block_mask-pruned weights.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/selector.hpp"
#include "dnn/layers.hpp"
#include "sim/address_map.hpp"

using namespace vlacnn;

namespace {

struct ReuseCase {
  std::string name;
  bool fc = false;
  dnn::ConvDesc desc;   // conv cases
  int fc_in = 0, fc_out = 0;  // fc cases
  std::uint64_t seed = 1;
};

struct Measurement {
  double weight_dram_bytes_per_item = 0.0;
  double engine_bytes_per_item = 0.0;
  double wall_ms_per_item = 0.0;
  double weight_bytes = 0.0;
  double weight_bytes_packed = 0.0;
  double arithmetic_intensity = 0.0;
};

struct Accuracy {
  double max_ulp = 0.0;
  double max_abs_err = 0.0;
  double max_abs_ref = 0.0;
};

std::unique_ptr<dnn::Layer> build_layer(const ReuseCase& rc) {
  if (rc.fc)
    return std::make_unique<dnn::ConnectedLayer>(
        rc.fc_in, rc.fc_out, dnn::Activation::Relu, rc.seed);
  return std::make_unique<dnn::ConvLayer>(rc.desc, rc.seed);
}

dnn::Tensor make_input(const ReuseCase& rc, int batch) {
  dnn::Tensor in = rc.fc ? dnn::Tensor(batch, rc.fc_in, 1, 1)
                         : dnn::Tensor(batch, rc.desc.in_c, rc.desc.in_h,
                                       rc.desc.in_w);
  in.randomize_batch(7, -1.0f, 1.0f);
  return in;
}

const float* case_weights(const ReuseCase& rc, const dnn::Layer& layer) {
  if (rc.fc)
    return static_cast<const dnn::ConnectedLayer&>(layer).weights();
  return static_cast<const dnn::ConvLayer&>(layer).weights();
}

/// Weight-resident fused plan routing the conv cases through `fmt`-format
/// resident images (block-pruned at `sparsity_pm` for the sparse formats).
/// FC cases always run fp32 — an FC layer's GEMM is non-beta0 (its fp32
/// partial sums cannot join a quantized-domain accumulation), so reduced
/// formats do not apply there.
core::BackendPlan case_plan(const ReuseCase& rc, gemm::PackFormat fmt,
                            int sparsity_pm) {
  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  core::BackendPlan plan = core::BackendPlan::uniform(policy);
  if (rc.fc) return plan;
  if (gemm::pack_format_sparse(fmt))
    return plan.with_sparsity(sparsity_pm / 1000.0);
  if (fmt != gemm::PackFormat::F32) plan = plan.with_precision(fmt);
  return plan;
}

/// Runs the case at `batch` — batch-fused when batch > 1 — and returns the
/// traffic/time metrics. The weight-DRAM attribution is the shared
/// bench::weight_dram_bytes_per_item metric (raw weights + resident packed
/// image, scale vector included), so this bench and bench_fused_conv's
/// weight-residency section measure identically.
Measurement measure(const ReuseCase& rc, const sim::MachineConfig& machine,
                    int batch, gemm::PackFormat fmt, int sparsity_pm = 1000) {
  Measurement m;

  // Instrumented pass: DRAM fills attributed to the weight stream.
  {
    auto layer = build_layer(rc);
    const std::uint64_t weight_bytes =
        rc.fc ? static_cast<std::uint64_t>(rc.fc_in) * rc.fc_out *
                    sizeof(float)
              : static_cast<std::uint64_t>(rc.desc.weight_count()) *
                    sizeof(float);
    m.weight_bytes = static_cast<double>(weight_bytes);
    m.arithmetic_intensity =
        rc.fc ? 2.0 * rc.fc_in * rc.fc_out /
                    (4.0 * (rc.fc_in +
                            static_cast<double>(rc.fc_in) * rc.fc_out +
                            rc.fc_out))
              : rc.desc.arithmetic_intensity();
    dnn::Tensor in = make_input(rc, batch);
    m.weight_dram_bytes_per_item = bench::weight_dram_bytes_per_item(
        *layer, case_weights(rc, *layer), weight_bytes,
        rc.fc ? nullptr : &rc.desc, case_plan(rc, fmt, sparsity_pm),
        /*batch_fused=*/true, machine, in);
  }

  // Functional pass: engine bytes + host wall time (one warm-up rep), plus
  // the resident image's packed footprint.
  {
    auto layer = build_layer(rc);
    vla::VectorEngine eng(machine.vlen_bits);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(case_plan(rc, fmt, sparsity_pm));
    engine.install(ctx);
    if (!rc.fc) {
      const float* w =
          static_cast<const dnn::ConvLayer*>(layer.get())->weights();
      engine.prepare(rc.desc, w);
      if (const auto img = engine.packed_weights().find(
              w, rc.desc.gemm_m(), rc.desc.gemm_k(),
              engine.plan().opt6.blocks.block_k, fmt,
              gemm::pack_format_sparse(fmt) ? sparsity_pm : 1000))
        m.weight_bytes_packed = static_cast<double>(img->bytes());
    }
    dnn::Tensor in = make_input(rc, batch);
    const std::vector<const dnn::Tensor*> ins{&in};
    layer->prepare_batch(ins);
    auto run_once = [&] {
      bool fused = false;
      if (batch > 1) fused = layer->forward_batch(ctx, ins);
      if (!fused)
        for (int b = 0; b < batch; ++b) layer->forward_item(ctx, ins, b);
    };
    run_once();  // warm-up sizes the packing/staging buffers
    eng.reset_mem_counters();
    const auto t0 = std::chrono::steady_clock::now();
    run_once();
    m.wall_ms_per_item =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e3 / batch;
    m.engine_bytes_per_item =
        static_cast<double>(eng.mem_bytes_moved()) / batch;
  }
  return m;
}

/// Functional per-item or batch-fused outputs under `fmt`. Returns false if
/// the batched path declined. `prune_weights_pm` != 0 zeroes the blocks a
/// magnitude prune at that density drops BEFORE preparing — the dense
/// reference the sparse path must match bit-for-bit.
bool run_outputs(const ReuseCase& rc, int batch, gemm::PackFormat fmt,
                 bool batched, std::vector<float>* out, int sparsity_pm = 1000,
                 int prune_weights_pm = 0) {
  auto layer = build_layer(rc);
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(case_plan(rc, fmt, sparsity_pm));
  engine.install(ctx);
  if (!rc.fc) {
    auto* conv = static_cast<dnn::ConvLayer*>(layer.get());
    if (prune_weights_pm != 0) {
      const auto mask = gemm::prune_block_mask(
          conv->mutable_weights(), rc.desc.gemm_m(), rc.desc.gemm_k(),
          engine.plan().opt6.blocks.block_k, prune_weights_pm);
      gemm::apply_block_mask(conv->mutable_weights(), rc.desc.gemm_m(),
                             rc.desc.gemm_k(),
                             engine.plan().opt6.blocks.block_k, mask);
    }
    engine.prepare(rc.desc, conv->weights());
  }
  dnn::Tensor in = make_input(rc, batch);
  const std::vector<const dnn::Tensor*> ins{&in};
  layer->prepare_batch(ins);
  if (batched) {
    if (!layer->forward_batch(ctx, ins)) return false;
  } else {
    for (int b = 0; b < batch; ++b) layer->forward_item(ctx, ins, b);
  }
  const dnn::Tensor& o = layer->output();
  out->assign(o.data(), o.data() + o.size());
  return true;
}

/// Batch-fused vs per-item outputs, bytewise, in the SAME precision: the
/// strip-grouping contract holds for quantized and sparse images exactly
/// as for fp32.
bool bit_identical(const ReuseCase& rc, int batch, gemm::PackFormat fmt,
                   int sparsity_pm = 1000) {
  std::vector<float> batched, per_item;
  if (!run_outputs(rc, batch, fmt, true, &batched, sparsity_pm)) return false;
  if (!run_outputs(rc, batch, fmt, false, &per_item, sparsity_pm))
    return false;
  return batched.size() == per_item.size() &&
         std::memcmp(batched.data(), per_item.data(),
                     batched.size() * sizeof(float)) == 0;
}

/// The sparse-correctness gate: the fp32 skip-aware path over a resident
/// sparse image must be BIT-IDENTICAL to the dense fp32-resident path over
/// weights pruned by the same mask — skipping a zeroed block is
/// arithmetically invisible.
bool sparse_matches_pruned_dense(const ReuseCase& rc, int sparsity_pm) {
  std::vector<float> sparse_out, dense_pruned;
  if (!run_outputs(rc, 1, gemm::PackFormat::SparseF32, false, &sparse_out,
                   sparsity_pm))
    return false;
  if (!run_outputs(rc, 1, gemm::PackFormat::F32, false, &dense_pruned, 1000,
                   sparsity_pm))
    return false;
  return sparse_out.size() == dense_pruned.size() &&
         std::memcmp(sparse_out.data(), dense_pruned.data(),
                     sparse_out.size() * sizeof(float)) == 0;
}

double ulp_distance(float a, float b) {
  auto to_ordered = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    return i < 0 ? -2147483648.0 - i : static_cast<double>(i);
  };
  return std::fabs(to_ordered(a) - to_ordered(b));
}

/// Quantized vs fp32 per-item outputs at batch 1 — the accuracy columns.
/// ULP distance is taken over elements at working magnitude only (>= max
/// |ref| / 1024): near-zero outputs (Relu-clipped, or cancellation-
/// dominated sums) can sit enormous lexicographic distances from equally
/// tiny references while being numerically fine — those are governed by
/// the absolute-error gate instead. Same definition as the selector's
/// accuracy check.
Accuracy measure_accuracy(const ReuseCase& rc, gemm::PackFormat fmt,
                          int sparsity_pm = 1000) {
  Accuracy acc;
  std::vector<float> ref, quant;
  run_outputs(rc, 1, gemm::PackFormat::F32, false, &ref);
  run_outputs(rc, 1, fmt, false, &quant, sparsity_pm);
  for (std::size_t i = 0; i < ref.size(); ++i)
    acc.max_abs_ref = std::max(acc.max_abs_ref,
                               static_cast<double>(std::fabs(ref[i])));
  const double ulp_floor = acc.max_abs_ref / 1024.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    acc.max_abs_err = std::max(
        acc.max_abs_err, static_cast<double>(std::fabs(ref[i] - quant[i])));
    if (std::fabs(ref[i]) >= ulp_floor)
      acc.max_ulp = std::max(acc.max_ulp, ulp_distance(ref[i], quant[i]));
  }
  return acc;
}

std::string mb(double bytes) {
  return Table::fmt(bytes / (1024.0 * 1024.0), 3);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  const std::string machine_name = args.get("machine", "sve");
  const bool check = args.get_bool("check", false);
  const std::string fmt_name = args.get("format", "f32");
  gemm::PackFormat fmt = gemm::PackFormat::F32;
  int sparsity_pm = 1000;
  if (fmt_name == "bf16") {
    fmt = gemm::PackFormat::Bf16;
  } else if (fmt_name == "int8") {
    fmt = gemm::PackFormat::Int8PerChannel;
  } else if (fmt_name == "sparse50") {
    fmt = gemm::PackFormat::SparseF32;
    sparsity_pm = 500;
  } else if (fmt_name == "sparse25") {
    fmt = gemm::PackFormat::SparseF32;
    sparsity_pm = 250;
  } else if (fmt_name != "f32") {
    std::fprintf(stderr,
                 "unknown --format=%s (f32|bf16|int8|sparse50|sparse25)\n",
                 fmt_name.c_str());
    return 1;
  }
  const sim::MachineConfig machine = bench::machine_from_name(machine_name);

  bench::print_header(
      "Weight-resident batch-fused execution — per-item weight DRAM vs batch",
      "ROADMAP fused follow-up (a): weight-resident blocking for small-N / "
      "large-K layers; reduced-precision residency (bf16/int8)",
      opt);
  std::printf("machine=%s (L2 %llu KiB, %u B lines), format=%s%s\n\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(machine.l2.size_bytes / 1024),
              machine.l2.line_bytes, fmt_name.c_str(),
              check ? ", --check on" : "");

  // The weight-bound layer set: VGG block 5 (at the fused-conv bench's
  // 128-input scale) and the VGG FC tail (at the 64-input scale). --quick
  // shrinks channels, keeping the weight-bound geometry (M >= N).
  std::vector<ReuseCase> cases;
  {
    ReuseCase vgg5;
    vgg5.name = opt.quick ? "vgg5-conv 256 3x3 (quick)" : "vgg5-conv 512 3x3";
    vgg5.desc.in_c = opt.quick ? 256 : 512;
    vgg5.desc.in_h = vgg5.desc.in_w = opt.quick ? 4 : 8;
    vgg5.desc.out_c = vgg5.desc.in_c;
    vgg5.desc.ksize = 3;
    vgg5.desc.stride = 1;
    vgg5.desc.pad = 1;
    vgg5.desc.batch_norm = false;
    vgg5.desc.act = dnn::Activation::Relu;
    vgg5.seed = 1001;
    cases.push_back(vgg5);

    ReuseCase head = vgg5;  // the 1x1 flavour (dense batched B path)
    head.name = opt.quick ? "head-conv 256 1x1 (quick)" : "head-conv 512 1x1";
    head.desc.ksize = 1;
    head.desc.pad = 0;
    head.seed = 1002;
    cases.push_back(head);

    ReuseCase fc;
    fc.fc = true;
    fc.name = opt.quick ? "vgg-fc 512x1024 (quick)" : "vgg-fc 2048x4096";
    fc.fc_in = opt.quick ? 512 : 2048;
    fc.fc_out = opt.quick ? 1024 : 4096;
    fc.seed = 1003;
    cases.push_back(fc);
  }
  for (const ReuseCase& rc : cases) {
    if (!rc.fc && !core::conv_weight_bound(rc.desc)) {
      std::fprintf(stderr, "case %s is not weight-bound\n", rc.name.c_str());
      return 1;
    }
  }

  const std::vector<int> batches{1, 2, 4, 8};
  bench::BenchJson json("weight_reuse", opt.json_path);
  Table table({"layer", "fmt", "batch", "wt DRAM MB/item", "vs b1", "vs f32",
               "packed MB", "eng MB/item", "wall ms/item", "bit-identical"});
  bool ok = true;
  for (const ReuseCase& rc : cases) {
    const gemm::PackFormat case_fmt = rc.fc ? gemm::PackFormat::F32 : fmt;
    const bool case_sparse = gemm::pack_format_sparse(case_fmt);
    const bool case_quant = case_fmt != gemm::PackFormat::F32;
    // Accuracy vs the fp32 reference, once per case (per-item path; the
    // batch paths are bitwise-identical to it by the gate below).
    Accuracy acc;
    if (case_quant) acc = measure_accuracy(rc, case_fmt, sparsity_pm);
    if (case_sparse && !sparse_matches_pruned_dense(rc, sparsity_pm)) {
      std::fprintf(stderr,
                   "FAIL %s (sparse): fp32 sparse path is not bit-identical "
                   "to the dense fp32-resident path over pruned weights\n",
                   rc.name.c_str());
      ok = false;
    }
    double base = 0.0, at4 = 0.0;
    double f32_base = 0.0, f32_at4 = 0.0;
    for (int batch : batches) {
      // Bit-identity is checked PER batch size: strip/item-boundary
      // arithmetic differs with N' = N×batch, so a defect could manifest
      // at one batch size only.
      const bool bits =
          batch == 1 || bit_identical(rc, batch, case_fmt, sparsity_pm);
      if (!bits) ok = false;
      const Measurement m = measure(rc, machine, batch, case_fmt, sparsity_pm);
      // Quantized runs price their fp32-resident baseline alongside, for
      // the reduction-vs-f32 column and the --check ratio gates.
      double f32_dram = m.weight_dram_bytes_per_item;
      if (case_quant && (batch == 1 || batch == 4))
        f32_dram = measure(rc, machine, batch, gemm::PackFormat::F32)
                       .weight_dram_bytes_per_item;
      if (batch == 1) base = m.weight_dram_bytes_per_item;
      if (batch == 4) at4 = m.weight_dram_bytes_per_item;
      if (batch == 1) f32_base = f32_dram;
      if (batch == 4) f32_at4 = f32_dram;
      table.add_row(
          {rc.name, gemm::to_string(case_fmt), std::to_string(batch),
           mb(m.weight_dram_bytes_per_item),
           base > 0 ? Table::fmt(m.weight_dram_bytes_per_item / base, 2) + "x"
                    : "-",
           case_quant && (batch == 1 || batch == 4) && f32_dram > 0
               ? Table::fmt(f32_dram / m.weight_dram_bytes_per_item, 2) + "x"
               : "-",
           m.weight_bytes_packed > 0 ? mb(m.weight_bytes_packed) : "-",
           mb(m.engine_bytes_per_item), Table::fmt(m.wall_ms_per_item, 3),
           batch == 1 ? "-" : (bits ? "yes" : "NO")});
      json.add(
          rc.name + " " + gemm::to_string(case_fmt) + " b" +
              std::to_string(batch),
          m.wall_ms_per_item, m.engine_bytes_per_item,
          {{"batch", static_cast<double>(batch)},
           {"weight_dram_bytes_per_item", m.weight_dram_bytes_per_item},
           {"weight_bytes", m.weight_bytes},
           {"weight_bytes_packed", m.weight_bytes_packed},
           {"pack_format", static_cast<double>(case_fmt)},
           {"sparsity_pm",
            static_cast<double>(case_sparse ? sparsity_pm : 1000)},
           {"max_ulp", acc.max_ulp},
           {"max_abs_err", acc.max_abs_err},
           {"arithmetic_intensity", m.arithmetic_intensity},
           {"weight_resident", 1.0},
           {"bit_identical", bits ? 1.0 : 0.0}});
    }
    if (base > 0 && at4 > 0.5 * base) {
      std::fprintf(stderr,
                   "FAIL %s: batch-4 weight DRAM bytes/item %.0f > 0.5x "
                   "batch-1 %.0f\n",
                   rc.name.c_str(), at4, base);
      ok = false;
    }
    if (case_quant) {
      // Traffic gates: the reduced stream must deliver its compression at
      // batch 4 versus the fp32-resident baseline. For the sparse formats
      // the target is density-proportional with a +0.05 allowance for the
      // bitmap/offset metadata and partially-filled lines.
      const double need =
          case_sparse ? 1.0 / (sparsity_pm / 1000.0 + 0.05)
                      : (case_fmt == gemm::PackFormat::Bf16 ? 1.8 : 3.5);
      if (f32_at4 > 0 && at4 > f32_at4 / need) {
        std::fprintf(stderr,
                     "FAIL %s (%s): batch-4 weight DRAM %.0f misses the "
                     "%.2fx reduction vs fp32-resident %.0f\n",
                     rc.name.c_str(), gemm::to_string(case_fmt), at4, need,
                     f32_at4);
        ok = false;
      }
      if (case_fmt == gemm::PackFormat::Int8PerChannel && f32_base > 0 &&
          at4 > 0.3 * f32_base) {
        std::fprintf(stderr,
                     "FAIL %s (int8): batch-4 weight DRAM %.0f > 0.3x the "
                     "fp32 batch-1 stream %.0f\n",
                     rc.name.c_str(), at4, f32_base);
        ok = false;
      }
      // Accuracy gates: the pinned bounds of core/selector.hpp.
      if (case_fmt == gemm::PackFormat::Bf16 &&
          acc.max_ulp > static_cast<double>(core::kBf16OutputMaxUlp)) {
        std::fprintf(stderr,
                     "FAIL %s (bf16): max ULP %.0f exceeds the pinned bound "
                     "%u\n",
                     rc.name.c_str(), acc.max_ulp, core::kBf16OutputMaxUlp);
        ok = false;
      }
      if (case_fmt == gemm::PackFormat::Int8PerChannel &&
          acc.max_abs_err >
              static_cast<double>(core::kInt8OutputRelTol) * acc.max_abs_ref) {
        std::fprintf(stderr,
                     "FAIL %s (int8): max abs err %.4f exceeds %.4f (rel tol "
                     "%.4f of max |ref| %.2f)\n",
                     rc.name.c_str(), acc.max_abs_err,
                     core::kInt8OutputRelTol * acc.max_abs_ref,
                     core::kInt8OutputRelTol, acc.max_abs_ref);
        ok = false;
      }
      // Sparse accuracy is REPORTED (max_abs_err in the JSON), not gated:
      // the bench forces the sparse plan onto incompressible random
      // weights, where a low-density prune legitimately exceeds the
      // selector's admission ceiling — at serving time the selector's
      // functional gate rejects such a layer and the dense sibling runs.
      // The sparse correctness gate is the pruned-dense bit-identity above.
      if (case_sparse &&
          acc.max_abs_err > static_cast<double>(core::kSparseOutputRelTol) *
                                acc.max_abs_ref) {
        std::printf(
            "note: %s (%s) max abs err %.4f exceeds the selector admission "
            "ceiling (%.2f of max |ref|) — the selector would keep this "
            "layer dense\n",
            rc.name.c_str(), gemm::to_string(case_fmt), acc.max_abs_err,
            core::kSparseOutputRelTol);
      }
    }
  }
  table.print();
  std::printf(
      "\nExpectation: weight DRAM bytes/item falls ~batch-fold (each "
      "resident weight panel is streamed once per batch), so batch 4 must "
      "sit at <= 0.5x batch 1; batch-fused outputs are bit-identical to the "
      "per-item path. Reduced formats additionally halve (bf16) / quarter "
      "(int8) the resident stream vs fp32 while staying inside the pinned "
      "accuracy gates; the sparse formats shrink it ~density-fold and the "
      "fp32 sparse path stays bit-identical to dense-over-pruned-weights.\n");
  if (!json.write()) return 1;
  if (check && !ok) {
    std::fprintf(stderr, "weight-reuse check FAILED\n");
    return 1;
  }
  if (!ok) std::printf("warning: weight-reuse expectations not met\n");
  return 0;
}

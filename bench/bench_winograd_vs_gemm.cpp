// §VII-A: Winograd vs the optimized im2col+GEMM baseline on A64FX.
//
// Paper findings (weight transform excluded, i.e. performed offline):
//   * VGG16 (all layers 3x3/s1):            Winograd 1.5x faster
//   * YOLOv3 (38/75 layers are 3x3):        Winograd 1.35x faster overall
//   * 3x3 stride-1 layers alone:            2.4x faster
//   * 3x3 stride-2 layers alone:            1.4x SLOWER (0.71x)
//   * VGG16 on SVE @ gem5, 1 MB L2, VL 512/1024/2048: 1.4x/1.5x/1.3x

#include "bench_common.hpp"

using namespace vlacnn;

namespace {

struct LayerSplit {
  std::uint64_t s1_3x3 = 0;   // cycles in 3x3 stride-1 conv layers
  std::uint64_t s2_3x3 = 0;   // cycles in 3x3 stride-2 conv layers
  std::uint64_t total = 0;    // all layers
};

LayerSplit split_cycles(const core::RunResult& r, const dnn::Network& net) {
  LayerSplit s;
  std::size_t li = 0;
  for (const auto& rec : r.layers) {
    s.total += rec.cycles;
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(li));
    if (conv != nullptr && conv->desc().ksize == 3) {
      if (conv->desc().stride == 1) s.s1_3x3 += rec.cycles;
      if (conv->desc().stride == 2) s.s2_3x3 += rec.cycles;
    }
    ++li;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::from_cli(argc, argv);
  bench::print_header("§VII-A — Winograd vs optimized im2col+GEMM (A64FX)",
                      "Section VII-A", opt);

  const int yolo_layers = opt.quick ? 12 : 24;
  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(sim::a64fx());
  const core::EnginePolicy gemm_policy = core::EnginePolicy::opt6loop(o6);
  core::EnginePolicy wino_policy = core::EnginePolicy::winograd();
  wino_policy.opt6 = o6;
  wino_policy.winograd_stride2 = true;  // to measure the stride-2 slowdown

  Table table({"workload", "metric", "speedup (ours)", "speedup (paper)"});

  {  // VGG16 overall.
    auto net_g = dnn::build_vgg16(opt.vgg_input_hw, -1, opt.seed);
    const auto rg = core::run_simulated(*net_g, sim::a64fx(), gemm_policy);
    auto net_w = dnn::build_vgg16(opt.vgg_input_hw, -1, opt.seed);
    core::EnginePolicy p = wino_policy;
    p.winograd_stride2 = false;
    const auto rw = core::run_simulated(*net_w, sim::a64fx(), p);
    table.add_row({"VGG16", "whole network",
                   bench::ratio(rg.cycles, rw.cycles), "1.5x"});
  }
  {  // YOLOv3 prefix, overall plus per-stride split.
    auto net_g = dnn::build_yolov3(opt.input_hw, yolo_layers, opt.seed);
    const auto rg = core::run_simulated(*net_g, sim::a64fx(), gemm_policy);
    const auto sg = split_cycles(rg, *net_g);

    auto net_w = dnn::build_yolov3(opt.input_hw, yolo_layers, opt.seed);
    const auto rw = core::run_simulated(*net_w, sim::a64fx(), wino_policy);
    const auto sw = split_cycles(rw, *net_w);

    table.add_row({"YOLOv3 (" + std::to_string(yolo_layers) + " layers)",
                   "whole network", bench::ratio(sg.total, sw.total),
                   "1.35x (full model)"});
    table.add_row({"YOLOv3 3x3/s1 layers", "conv layers only",
                   bench::ratio(sg.s1_3x3, sw.s1_3x3), "2.4x"});
    table.add_row({"YOLOv3 3x3/s2 layers", "conv layers only",
                   bench::ratio(sg.s2_3x3, sw.s2_3x3), "0.71x (1.4x slower)"});
  }
  {  // VGG16 on SVE @ gem5 across vector lengths, 1 MB L2.
    const double paper[] = {1.4, 1.5, 1.3};
    int i = 0;
    for (unsigned vl : {512u, 1024u, 2048u}) {
      auto net_g = dnn::build_vgg16(opt.vgg_input_hw, -1, opt.seed);
      const auto rg = core::run_simulated(*net_g, sim::sve_gem5().with_vlen(vl),
                                          gemm_policy);
      auto net_w = dnn::build_vgg16(opt.vgg_input_hw, -1, opt.seed);
      core::EnginePolicy p = wino_policy;
      p.winograd_stride2 = false;
      const auto rw =
          core::run_simulated(*net_w, sim::sve_gem5().with_vlen(vl), p);
      table.add_row({"VGG16, SVE@gem5 " + std::to_string(vl) + "-bit",
                     "whole network", bench::ratio(rg.cycles, rw.cycles),
                     Table::fmt(paper[i++], 1) + "x"});
    }
  }

  table.print();
  std::printf("\nShape check: Winograd wins on every stride-1 3x3 workload, "
              "loses on stride-2, and the win holds across vector lengths.\n");
  return 0;
}

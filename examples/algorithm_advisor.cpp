// Compiler/framework-developer scenario: simulation-driven per-layer
// algorithm selection (the tool form of the paper's conclusion that
// "convolutional layers require careful algorithmic selection related to
// the kernel sizes and strides", §VII-A).
//
// For each convolutional layer of the chosen model, all eligible backends
// (3-loop GEMM, 6-loop GEMM, fused implicit-GEMM, Winograd, fused
// Winograd, direct) are priced on the chosen machine — full layer
// pipeline, epilogue included — and the winners are reported as a
// BackendPlan ready to install into a ConvolutionEngine.
//
// --cost picks the pricing path: "sim" runs the full cache/timing
// simulator per candidate (the reference, simulator-seconds); "analytic"
// prices through the calibrated core::CostModel (microseconds — the online
// re-planning path); "both" runs the two and prints a per-layer agreement
// table plus the planning-time speedup. --check exits nonzero unless the
// analytic argmax matches the simulated one on every layer AND analytic
// planning ran >= 100x faster — the CI agreement gate.
//
//   ./algorithm_advisor [--model=yolov3|tiny|vgg16] [--input=64]
//                       [--layers=16] [--machine=a64fx|rvv|sve] [--vlen=N]
//                       [--cost=sim|analytic|both] [--check] [--batch=4]

#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

namespace {

void print_plan(const core::BackendPlan& plan, const char* title) {
  Table table({"layer", "winner", "Mcycles", "candidates (Mcycles)"});
  for (const auto& e : plan.entries) {
    std::string cands;
    for (const auto& [backend, cycles] : e.candidates) {
      if (!cands.empty()) cands += ", ";
      cands += std::string(core::to_string(backend)) + "=" +
               Table::fmt(static_cast<double>(cycles) / 1e6, 2);
    }
    table.add_row({std::to_string(e.layer_index) + " " + e.layer_name,
                   core::to_string(e.backend),
                   Table::fmt(static_cast<double>(e.cycles) / 1e6, 2), cands});
  }
  table.print(title);
}

void print_selector_stats(const core::SelectorStats& st, const char* label) {
  std::printf(
      "%s: plan computed in %llu us; shape memo %llu hits / %llu misses\n",
      label, static_cast<unsigned long long>(st.plan_compute_us),
      static_cast<unsigned long long>(st.memo_hits),
      static_cast<unsigned long long>(st.memo_misses));
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "yolov3");
  const int input = static_cast<int>(args.get_int("input", 64));
  const int layers = static_cast<int>(args.get_int("layers", 16));
  const std::string machine_name = args.get("machine", "a64fx");
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 0));
  const std::string cost = args.get("cost", "sim");
  const bool check = args.get_bool("check", false);
  const int batch = static_cast<int>(args.get_int("batch", 4));

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") machine = sim::rvv_gem5();
  if (machine_name == "sve") machine = sim::sve_gem5();
  if (vlen != 0) machine = machine.with_vlen(vlen);

  std::unique_ptr<dnn::Network> net;
  if (model == "tiny")
    net = dnn::build_yolov3_tiny(input, layers);
  else if (model == "vgg16")
    net = dnn::build_vgg16(input, layers);
  else
    net = dnn::build_yolov3(input, layers);

  std::printf("algorithm advisor: %s (%zu conv layers) at %dx%d on %s "
              "[cost=%s]\n\n",
              model.c_str(), net->num_conv_layers(), input, input,
              machine.name.c_str(), cost.c_str());

  const bool want_sim = cost == "sim" || cost == "both";
  const bool want_ana = cost == "analytic" || cost == "both";

  core::BackendPlan sim_plan;
  core::SelectorStats sim_stats;
  if (want_sim) {
    sim_plan = core::select_per_layer(*net, machine, 7, batch, {},
                                      core::CostSource::Simulated, nullptr,
                                      &sim_stats);
    print_plan(sim_plan, "per-layer BackendPlan (fastest simulated backend):");
    print_selector_stats(sim_stats, "simulated");
  }

  core::BackendPlan ana_plan;
  core::SelectorStats ana_stats;
  if (want_ana) {
    // Calibration: free from the simulated plan's own candidate table when
    // we just built one ("both"); a one-shot simulator pass over this
    // model's shapes otherwise.
    core::CostModel cm(machine, sim_plan.opt6);
    if (want_sim) {
      cm.calibrate_from(*net, sim_plan);
    } else {
      core::BackendPlan shapes_of;  // tuned opt6 for the estimators
      shapes_of.opt6.blocks = gemm::tune_block_sizes(machine);
      cm = core::CostModel(machine, shapes_of.opt6);
      std::vector<dnn::ConvDesc> shapes;
      for (std::size_t i = 0; i < net->num_layers(); ++i) {
        const auto* conv =
            dynamic_cast<const dnn::ConvLayer*>(&net->layer(i));
        if (conv != nullptr) shapes.push_back(conv->desc());
      }
      cm.calibrate(shapes);
    }
    ana_plan = core::select_per_layer(*net, machine, 7, batch, {},
                                      core::CostSource::Analytic, &cm,
                                      &ana_stats);
    print_plan(ana_plan, "per-layer BackendPlan (analytic cost model):");
    print_selector_stats(ana_stats, "analytic");
  }

  bool agree = true;
  if (want_sim && want_ana) {
    Table cmp({"layer", "simulated", "analytic", "agree"});
    for (std::size_t i = 0; i < sim_plan.entries.size(); ++i) {
      const auto& es = sim_plan.entries[i];
      const auto& ea = ana_plan.entries[i];
      const bool ok = es.backend == ea.backend;
      agree = agree && ok;
      cmp.add_row({std::to_string(es.layer_index) + " " + es.layer_name,
                   core::to_string(es.backend), core::to_string(ea.backend),
                   ok ? "yes" : "NO"});
    }
    cmp.print("\nargmax agreement (simulated vs analytic):");
    const double speedup =
        ana_stats.plan_compute_us > 0
            ? static_cast<double>(sim_stats.plan_compute_us) /
                  static_cast<double>(ana_stats.plan_compute_us)
            : static_cast<double>(sim_stats.plan_compute_us);
    std::printf("\nplanning time: simulated %llu us, analytic %llu us "
                "(%.0fx faster); argmax agreement: %s\n",
                static_cast<unsigned long long>(sim_stats.plan_compute_us),
                static_cast<unsigned long long>(ana_stats.plan_compute_us),
                speedup, agree ? "FULL" : "BROKEN");
    if (check) {
      if (!agree) {
        std::printf("CHECK FAILED: analytic argmax disagrees with the "
                    "simulator\n");
        return 1;
      }
      if (speedup < 100.0) {
        std::printf("CHECK FAILED: analytic planning only %.0fx faster "
                    "(gate: >=100x)\n", speedup);
        return 1;
      }
      std::printf("CHECK PASSED: full agreement, %.0fx faster\n", speedup);
    }
  }

  const core::BackendPlan& plan = want_sim ? sim_plan : ana_plan;
  int wino = 0, direct = 0, g3 = 0, g6 = 0, fused = 0, quant = 0, sparse = 0;
  for (const auto& e : plan.entries) {
    switch (e.backend) {
      case core::Backend::Winograd: ++wino; break;
      case core::Backend::Direct: ++direct; break;
      case core::Backend::Gemm3: ++g3; break;
      case core::Backend::Naive:
      case core::Backend::Gemm6: ++g6; break;
      case core::Backend::FusedGemm6:
      case core::Backend::FusedWinograd: ++fused; break;
      case core::Backend::Gemm6Bf16:
      case core::Backend::Gemm6Int8: ++quant; break;
      case core::Backend::Gemm6Sparse:
      case core::Backend::Gemm6SparseBf16: ++sparse; break;
    }
  }
  std::printf("\nsummary: fused=%d quantized=%d sparse=%d winograd=%d "
              "direct=%d gemm3=%d gemm6=%d — no one-size-fits-all (paper "
              "§II-B/§VII-A)\n",
              fused, quant, sparse, wino, direct, g3, g6);
  return 0;
}

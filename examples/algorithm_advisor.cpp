// Compiler/framework-developer scenario: simulation-driven per-layer
// algorithm selection (the tool form of the paper's conclusion that
// "convolutional layers require careful algorithmic selection related to
// the kernel sizes and strides", §VII-A).
//
// For each convolutional layer of the chosen model, all eligible backends
// (3-loop GEMM, 6-loop GEMM, fused implicit-GEMM, Winograd, fused
// Winograd, direct) are simulated on the chosen machine — full layer
// pipeline, epilogue included — and the winners are reported as a
// BackendPlan ready to install into a ConvolutionEngine.
//
//   ./algorithm_advisor [--model=yolov3|tiny|vgg16] [--input=64]
//                       [--layers=16] [--machine=a64fx|rvv|sve] [--vlen=N]

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "yolov3");
  const int input = static_cast<int>(args.get_int("input", 64));
  const int layers = static_cast<int>(args.get_int("layers", 16));
  const std::string machine_name = args.get("machine", "a64fx");
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 0));

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") machine = sim::rvv_gem5();
  if (machine_name == "sve") machine = sim::sve_gem5();
  if (vlen != 0) machine = machine.with_vlen(vlen);

  std::unique_ptr<dnn::Network> net;
  if (model == "tiny")
    net = dnn::build_yolov3_tiny(input, layers);
  else if (model == "vgg16")
    net = dnn::build_vgg16(input, layers);
  else
    net = dnn::build_yolov3(input, layers);

  std::printf("algorithm advisor: %s (%zu conv layers) at %dx%d on %s\n\n",
              model.c_str(), net->num_conv_layers(), input, input,
              machine.name.c_str());

  const core::BackendPlan plan = core::select_per_layer(*net, machine);

  Table table({"layer", "winner", "Mcycles", "candidates (Mcycles)"});
  for (const auto& e : plan.entries) {
    std::string cands;
    for (const auto& [backend, cycles] : e.candidates) {
      if (!cands.empty()) cands += ", ";
      cands += std::string(core::to_string(backend)) + "=" +
               Table::fmt(static_cast<double>(cycles) / 1e6, 2);
    }
    table.add_row({std::to_string(e.layer_index) + " " + e.layer_name,
                   core::to_string(e.backend),
                   Table::fmt(static_cast<double>(e.cycles) / 1e6, 2), cands});
  }
  table.print("per-layer BackendPlan (fastest simulated backend):");

  int wino = 0, direct = 0, g3 = 0, g6 = 0, fused = 0, quant = 0, sparse = 0;
  for (const auto& e : plan.entries) {
    switch (e.backend) {
      case core::Backend::Winograd: ++wino; break;
      case core::Backend::Direct: ++direct; break;
      case core::Backend::Gemm3: ++g3; break;
      case core::Backend::Naive:
      case core::Backend::Gemm6: ++g6; break;
      case core::Backend::FusedGemm6:
      case core::Backend::FusedWinograd: ++fused; break;
      case core::Backend::Gemm6Bf16:
      case core::Backend::Gemm6Int8: ++quant; break;
      case core::Backend::Gemm6Sparse:
      case core::Backend::Gemm6SparseBf16: ++sparse; break;
    }
  }
  std::printf("\nsummary: fused=%d quantized=%d sparse=%d winograd=%d "
              "direct=%d gemm3=%d gemm6=%d — no one-size-fits-all (paper "
              "§II-B/§VII-A)\n",
              fused, quant, sparse, wino, direct, g3, g6);
  return 0;
}

// Compiler/framework-developer scenario: simulation-driven per-layer
// algorithm selection (the tool form of the paper's conclusion that
// "convolutional layers require careful algorithmic selection related to
// the kernel sizes and strides", §VII-A).
//
// For each convolutional layer of the chosen model, all eligible
// algorithms (3-loop GEMM, 6-loop GEMM, Winograd, direct) are simulated on
// the chosen machine and the winner is reported as a deployment plan.
//
//   ./algorithm_advisor [--model=yolov3|tiny|vgg16] [--input=64]
//                       [--layers=16] [--machine=a64fx|rvv|sve] [--vlen=N]

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "yolov3");
  const int input = static_cast<int>(args.get_int("input", 64));
  const int layers = static_cast<int>(args.get_int("layers", 16));
  const std::string machine_name = args.get("machine", "a64fx");
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 0));

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") machine = sim::rvv_gem5();
  if (machine_name == "sve") machine = sim::sve_gem5();
  if (vlen != 0) machine = machine.with_vlen(vlen);

  std::unique_ptr<dnn::Network> net;
  if (model == "tiny")
    net = dnn::build_yolov3_tiny(input, layers);
  else if (model == "vgg16")
    net = dnn::build_vgg16(input, layers);
  else
    net = dnn::build_yolov3(input, layers);

  std::printf("algorithm advisor: %s (%zu conv layers) at %dx%d on %s\n\n",
              model.c_str(), net->num_conv_layers(), input, input,
              machine.name.c_str());

  const auto plan = core::select_per_layer(*net, machine);

  Table table({"layer", "winner", "Mcycles", "candidates (Mcycles)"});
  for (const auto& c : plan) {
    std::string cands;
    for (const auto& [algo, cycles] : c.candidates) {
      if (!cands.empty()) cands += ", ";
      cands += std::string(core::to_string(algo)) + "=" +
               Table::fmt(static_cast<double>(cycles) / 1e6, 2);
    }
    table.add_row({std::to_string(c.layer_index) + " " + c.layer_name,
                   core::to_string(c.algo),
                   Table::fmt(static_cast<double>(c.cycles) / 1e6, 2), cands});
  }
  table.print("per-layer plan (fastest simulated algorithm):");

  int wino = 0, direct = 0, g3 = 0, g6 = 0;
  for (const auto& c : plan) {
    switch (c.algo) {
      case core::ConvAlgo::Winograd: ++wino; break;
      case core::ConvAlgo::Direct: ++direct; break;
      case core::ConvAlgo::Im2colGemm3: ++g3; break;
      case core::ConvAlgo::Im2colGemm6: ++g6; break;
    }
  }
  std::printf("\nsummary: winograd=%d direct=%d gemm3=%d gemm6=%d — no "
              "one-size-fits-all (paper §II-B/§VII-A)\n",
              wino, direct, g3, g6);
  return 0;
}

// Hardware-designer scenario: a custom co-design sweep over the
// (vector length x L2 size) plane for a user-chosen workload, printing a
// grid of cycles — the tool a hardware architect would use to pick design
// points, built from the same API as the paper-reproduction benches.
//
//   ./codesign_sweep [--model=yolov3|tiny|vgg16] [--input=64] [--layers=12]
//                    [--machine=rvv|sve] [--winograd]

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/codesign.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "yolov3");
  const int input = static_cast<int>(args.get_int("input", 64));
  const int layers = static_cast<int>(args.get_int("layers", 12));
  const std::string machine_name = args.get("machine", "rvv");
  const bool winograd = args.get_bool("winograd", false);

  sim::MachineConfig base =
      machine_name == "sve" ? sim::sve_gem5() : sim::rvv_gem5();
  const std::vector<unsigned> vlens =
      machine_name == "sve" ? std::vector<unsigned>{512, 1024, 2048}
                            : std::vector<unsigned>{512, 2048, 8192};
  const std::vector<std::uint64_t> l2s = {1ull << 20, 8ull << 20, 64ull << 20};

  auto build = [&]() -> std::unique_ptr<dnn::Network> {
    if (model == "tiny") return dnn::build_yolov3_tiny(input, layers);
    if (model == "vgg16") return dnn::build_vgg16(input, layers);
    return dnn::build_yolov3(input, layers);
  };
  const core::EnginePolicy policy = winograd ? core::EnginePolicy::winograd()
                                             : core::EnginePolicy::opt3loop();

  std::printf("co-design sweep: %s (%d layers) at %dx%d on %s%s\n\n",
              model.c_str(), layers, input, input, base.name.c_str(),
              winograd ? " with Winograd" : "");

  std::vector<std::string> headers = {"VL \\ L2"};
  for (auto l2 : l2s) headers.push_back(std::to_string(l2 >> 20) + "MB");
  Table table(headers);
  std::uint64_t best = UINT64_MAX;
  std::string best_point;
  for (unsigned vl : vlens) {
    std::vector<std::string> row = {std::to_string(vl) + "-bit"};
    for (auto l2 : l2s) {
      auto net = build();
      const core::RunResult r =
          core::run_simulated(*net, base.with_vlen(vl).with_l2_size(l2), policy);
      row.push_back(Table::fmt(static_cast<double>(r.cycles) / 1e6, 1));
      if (r.cycles < best) {
        best = r.cycles;
        best_point = std::to_string(vl) + "-bit / " +
                     std::to_string(l2 >> 20) + "MB";
      }
    }
    table.add_row(row);
  }
  table.print("cycles (millions):");
  std::printf("\nbest design point: %s (%.1f Mcycles)\n", best_point.c_str(),
              static_cast<double>(best) / 1e6);
  return 0;
}

// Quickstart: the smallest end-to-end use of the library.
//
// Builds a single convolutional layer, runs it three ways — optimized
// im2col+GEMM natively, Winograd natively, and im2col+GEMM on a simulated
// RISC-V Vector machine — and prints what the simulator observed.
//
//   ./quickstart [--vlen=2048]

#include <cstdio>

#include "common/cli.hpp"
#include "core/codesign.hpp"
#include "core/conv_engine.hpp"
#include "dnn/network.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 2048));

  // A small network: one 3x3 convolution over a 64x64 RGB image.
  dnn::Network net(/*c=*/3, /*h=*/64, /*w=*/64);
  net.add_conv(/*out_c=*/16, /*ksize=*/3, /*stride=*/1, /*pad=*/1,
               dnn::Activation::Leaky, /*batch_norm=*/true);
  std::printf("network:\n%s\n", net.summary().c_str());

  // 1) Run natively with the optimized 3-loop GEMM.
  const double t_gemm = core::run_native(net, vlen, core::EnginePolicy::opt3loop());
  std::printf("native im2col+GEMM: %.3f ms\n", t_gemm * 1e3);

  // 2) Run natively with Winograd (eligible: 3x3, stride 1).
  const double t_wino = core::run_native(net, vlen, core::EnginePolicy::winograd());
  std::printf("native Winograd:    %.3f ms\n", t_wino * 1e3);

  // 3) Run on a simulated RISC-V Vector machine and inspect the co-design
  //    metrics the paper's figures are made of.
  const sim::MachineConfig machine = sim::rvv_gem5().with_vlen(vlen);
  const core::RunResult r =
      core::run_simulated(net, machine, core::EnginePolicy::opt3loop());
  std::printf("\nsimulated on %s (VL=%u bits, %u lanes, L2=%llu KB):\n",
              r.machine.c_str(), r.vlen_bits, r.lanes,
              static_cast<unsigned long long>(r.l2_bytes >> 10));
  std::printf("  cycles:              %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  sustained:           %.2f GFLOP/s (peak %.1f)\n",
              r.gflops_sustained, machine.peak_gflops());
  std::printf("  avg vector length:   %.1f bits\n", r.avg_vl_bits);
  std::printf("  L2 miss rate:        %.1f%%\n", 100.0 * r.l2_miss_rate);
  std::printf("  vector instructions: %llu\n",
              static_cast<unsigned long long>(r.vector_instructions));
  return 0;
}

// Throughput server: a micro-batching inference loop on top of the batched
// multi-threaded runtime.
//
// Simulates the serving pattern of a production deployment: requests queue
// up, the server drains them in batches of up to --batch images, and each
// batch is forwarded once through the network with the batch items sharded
// across the worker pool. Reports end-to-end throughput and per-request
// latency percentiles (time from "arrival" — its position in the request
// stream — to completion of its batch).
//
// --policy picks the dispatch configuration:
//   plan      (default) simulation-driven per-layer BackendPlan: every
//             eligible backend is simulated per layer on the serving
//             machine config (--machine) and the winner wins — tiny-channel
//             head layers may go direct, 3x3/s1 body layers to fused
//             Winograd, the rest to the fused implicit-GEMM.
//   fused     uniform fused conv pipeline (EnginePolicy::fused()).
//   winograd  Winograd for 3x3/s1, optimized GEMM elsewhere.
//   opt6      uniform 6-loop GEMM.
// The chosen per-layer table is printed at startup. Residual shortcuts are
// folded into their producing convolutions (Network::fuse_residuals) so
// models with skip connections serve them in-epilogue.
//
//   ./throughput_server [--model=tiny|vgg|yolo] [--requests=32] [--batch=8]
//                       [--threads=0 (hardware)] [--input=96] [--vlen=512]
//                       [--policy=plan|fused|winograd|opt6]
//                       [--machine=a64fx|rvv|sve]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const int requests = static_cast<int>(args.get_int("requests", 32));
  const int batch = static_cast<int>(args.get_int("batch", 8));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 512));
  const std::string policy = args.get("policy", "plan");
  const std::string machine_name = args.get("machine", "a64fx");
  if (requests < 1 || batch < 1) {
    std::fprintf(stderr, "error: --requests and --batch must be >= 1\n");
    return 1;
  }

  std::unique_ptr<dnn::Network> net;
  if (model == "vgg")
    net = dnn::build_vgg16(input_hw % 32 == 0 ? input_hw : 64);
  else if (model == "yolo")
    net = dnn::build_yolov3(input_hw % 32 == 0 ? input_hw : 64);
  else
    net = dnn::build_yolov3_tiny(input_hw);

  // Fold residual shortcuts into their producing convolutions: the skip add
  // runs in the conv epilogue (in-kernel on fused backends) instead of as
  // an extra output-streaming layer.
  const int folded = net->fuse_residuals();

  core::BackendPlan plan;
  if (policy == "plan") {
    sim::MachineConfig machine = sim::a64fx();
    if (machine_name == "rvv") {
      machine = sim::rvv_gem5();
    } else if (machine_name == "sve") {
      machine = sim::sve_gem5();
    } else if (machine_name != "a64fx") {
      std::fprintf(stderr, "error: unknown --machine=%s (a64fx|rvv|sve)\n",
                   machine_name.c_str());
      return 1;
    }
    std::printf("selecting per-layer backends on %s (simulating all "
                "candidates)...\n", machine.name.c_str());
    plan = core::select_per_layer(*net, machine);
  } else if (policy == "fused") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::fused());
  } else if (policy == "winograd") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::winograd());
  } else if (policy == "opt6") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::opt6loop());
  } else {
    std::fprintf(stderr,
                 "error: unknown --policy=%s (plan|fused|winograd|opt6)\n",
                 policy.c_str());
    return 1;
  }

  core::ConvolutionEngine engine(plan);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.vlen_bits = vlen;
  runtime::BatchScheduler sched(engine, cfg);

  std::printf("serving %s (%zu layers, %d fused shortcuts) | %d requests, "
              "batch<=%d, %d workers | policy=%s\n",
              model.c_str(), net->num_layers(), folded, requests, batch,
              sched.threads(), policy.c_str());
  std::printf("per-layer dispatch table:\n%s\n",
              engine.plan().summary().c_str());

  // Warm-up pass: weight caches, workspaces, output reshapes.
  {
    dnn::Tensor warm(batch, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);
  }

  using clock = std::chrono::steady_clock;
  std::vector<double> latency_ms;
  latency_ms.reserve(static_cast<std::size_t>(requests));
  const auto serve_t0 = clock::now();

  for (int next = 0; next < requests;) {
    const int nb = std::min(batch, requests - next);
    // Each queued request is one image; request r carries RNG stream r so
    // results do not depend on how requests were grouped into batches.
    dnn::Tensor in(nb, net->in_c(), net->in_h(), net->in_w());
    for (int b = 0; b < nb; ++b)
      in.randomize_item(b, 1234 + static_cast<std::uint64_t>(next + b));
    const auto t0 = clock::now();
    sched.run(*net, in);
    const double batch_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    // Every request in the batch completes when the batch does.
    for (int b = 0; b < nb; ++b) latency_ms.push_back(batch_ms);
    next += nb;
  }

  const double total_s =
      std::chrono::duration<double>(clock::now() - serve_t0).count();
  std::sort(latency_ms.begin(), latency_ms.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latency_ms.size() - 1));
    return latency_ms[idx];
  };
  std::printf("throughput: %.1f images/sec\n", requests / total_s);
  std::printf("batch latency: p50=%.1f ms  p90=%.1f ms  p99=%.1f ms\n",
              pct(0.50), pct(0.90), pct(0.99));

  // Per-layer accounting of the last batch (merged across workers).
  std::printf("\nlast-batch per-layer wall time (top 5):\n");
  std::vector<dnn::LayerRecord> recs = sched.records();
  std::sort(recs.begin(), recs.end(),
            [](const dnn::LayerRecord& a, const dnn::LayerRecord& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, recs.size()); ++i)
    std::printf("  %-16s %-14s items=%-3d %.3f ms\n", recs[i].name.c_str(),
                recs[i].algo.c_str(), recs[i].items,
                recs[i].wall_seconds * 1e3);
  return 0;
}

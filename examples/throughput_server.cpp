// Throughput server: the async serving runtime end to end.
//
// Simulates a production deployment serving live traffic: a client thread
// submits requests with Poisson-ish arrivals (exponential inter-arrival
// gaps from Rng::for_stream, --rate to set the offered load), the
// serve::Server admits them through a bounded queue with backpressure,
// the deadline-aware micro-batcher groups them per --batch/--max-wait-ms,
// and batches pipeline through the BatchScheduler's double-buffered
// submit/wait API — batch k+1 forms and packs while batch k executes.
// Reports per-request latency percentiles broken down into queue / dispatch
// / compute, throughput, admission stats and launch-trigger counts.
//
// --policy picks the dispatch configuration:
//   plan      (default) simulation-driven per-layer BackendPlan: every
//             eligible backend is simulated per layer on the serving
//             machine config (--machine) and the winner wins — tiny-channel
//             head layers may go direct, 3x3/s1 body layers to fused
//             Winograd, the rest to the fused implicit-GEMM.
//   fused     uniform fused conv pipeline (EnginePolicy::fused()).
//   winograd  Winograd for 3x3/s1, optimized GEMM elsewhere.
//   opt6      uniform 6-loop GEMM.
// The chosen per-layer table is printed at startup. Residual shortcuts are
// folded into their producing convolutions (Network::fuse_residuals) so
// models with skip connections serve them in-epilogue.
//
// --replan (policy=plan only) wires a serve::Replanner into the loop: the
// analytic cost model is calibrated once against the simulated plan, then
// watches the served batch-size histogram and queue depth and re-prices the
// plan for the observed regime off the hot path, swapping it in between
// batches (bit-identical outputs). Its counters — plans recomputed, swaps
// applied, last plan-compute time, per-backend wins of the live plan — are
// reported and land in --json.
//
//   ./throughput_server [--model=tiny|vgg|yolo] [--requests=32] [--batch=8]
//                       [--threads=0 (hardware)] [--input=96] [--vlen=512]
//                       [--policy=plan|fused|winograd|opt6] [--replan]
//                       [--precision=f32|bf16|int8]
//                       [--sparsity=0 (block-sparse weight density in
//                        (0,1); 0 = dense)]
//                       [--machine=a64fx|rvv|sve]
//                       [--max-wait-ms=2] [--deadline-ms=0 (none)]
//                       [--queue-cap=64] [--block (block-when-full)]
//                       [--executor=graph|serial (work-graph vs serialized
//                        batch executor)]
//                       [--rate=0 (requests/sec; 0 = 80% of measured
//                        capacity)] [--seed=1234] [--json=<path>]
//                       [--chaos=0 (fault-injection seed; 0 = off)]
//
// --chaos=<seed> arms a deterministic runtime::FaultInjector (task stalls,
// slow workers, per-item failures — the FaultPlan::chaos profile) plus the
// scheduler's batch watchdog. Failures are isolated per request: an injected
// item fault surfaces as that request's InternalError completion while its
// batch-mates finish normally, and the outcome tally printed at the end
// accounts for every request. Same seed, same fault set — chaos runs are
// replayable.

#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "common/arrival_process.hpp"
#include "common/bench_json.hpp"
#include "common/cli.hpp"
#include "common/percentile.hpp"
#include "core/cost_model.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/fault_injector.hpp"
#include "serve/replanner.hpp"
#include "serve/server.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const int requests = static_cast<int>(args.get_int("requests", 32));
  const int batch = static_cast<int>(args.get_int("batch", 8));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 512));
  const std::string policy = args.get("policy", "plan");
  const std::string precision = args.get("precision", "f32");
  const double sparsity = args.get_double("sparsity", 0.0);
  const std::string machine_name = args.get("machine", "a64fx");
  const double max_wait_ms = args.get_double("max-wait-ms", 2.0);
  const double deadline_ms = args.get_double("deadline-ms", 0.0);
  const auto queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 64));
  const bool block_when_full = args.get_bool("block", false);
  const bool replan = args.get_bool("replan", false);
  double rate = args.get_double("rate", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const auto chaos_seed = static_cast<std::uint64_t>(args.get_int("chaos", 0));
  bench::BenchJson json("throughput_server", args.get("json", ""));
  if (requests < 1 || batch < 1 || queue_cap < 1 || max_wait_ms < 0.0) {
    std::fprintf(stderr,
                 "error: --requests/--batch/--queue-cap must be >= 1 and "
                 "--max-wait-ms >= 0\n");
    return 1;
  }
  if (model != "tiny" && model != "vgg" && model != "yolo") {
    std::fprintf(stderr, "error: unknown --model=%s (tiny|vgg|yolo)\n",
                 model.c_str());
    return 1;
  }

  // vgg/yolo need an input divisible by 32; never resize silently.
  dnn::warn_if_input_resized(model, input_hw);
  std::unique_ptr<dnn::Network> net = dnn::build_model(model, input_hw);

  // Fold residual shortcuts into their producing convolutions: the skip add
  // runs in the conv epilogue (in-kernel on fused backends) instead of as
  // an extra output-streaming layer.
  const int folded = net->fuse_residuals();

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") {
    machine = sim::rvv_gem5();
  } else if (machine_name == "sve") {
    machine = sim::sve_gem5();
  } else if (machine_name != "a64fx") {
    std::fprintf(stderr, "error: unknown --machine=%s (a64fx|rvv|sve)\n",
                 machine_name.c_str());
    return 1;
  }
  if (replan && policy != "plan") {
    std::fprintf(stderr, "error: --replan requires --policy=plan (the "
                         "analytic model re-ranks the plan's candidates)\n");
    return 1;
  }

  core::BackendPlan plan;
  if (policy == "plan") {
    std::printf("selecting per-layer backends on %s (simulating all "
                "candidates)...\n", machine.name.c_str());
    plan = core::select_per_layer(*net, machine);
  } else if (policy == "fused") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::fused());
  } else if (policy == "winograd") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::winograd());
  } else if (policy == "opt6") {
    plan = core::BackendPlan::uniform(core::EnginePolicy::opt6loop());
  } else {
    std::fprintf(stderr,
                 "error: unknown --policy=%s (plan|fused|winograd|opt6)\n",
                 policy.c_str());
    return 1;
  }
  // One-flag precision knob: route every Gemm6-family conv through the
  // requested resident weight format (weight-only quantization; fp32
  // activations/accumulation). f32 leaves the plan untouched.
  if (precision == "bf16") {
    plan = plan.with_precision(gemm::PackFormat::Bf16);
  } else if (precision == "int8") {
    plan = plan.with_precision(gemm::PackFormat::Int8PerChannel);
  } else if (precision != "f32") {
    std::fprintf(stderr, "error: unknown --precision=%s (f32|bf16|int8)\n",
                 precision.c_str());
    return 1;
  }
  // One-flag sparsity knob, composable with --precision: route the
  // Gemm6-family convs through block-sparse resident images pruned to the
  // given density (e.g. --sparsity=0.5 keeps half the 4x16 weight blocks;
  // int8 entries stay dense). 0 leaves the plan dense.
  if (sparsity < 0.0 || sparsity > 1.0) {
    std::fprintf(stderr, "error: --sparsity=%g must be in [0,1]\n", sparsity);
    return 1;
  }
  if (sparsity > 0.0) plan = plan.with_sparsity(sparsity);

  core::ConvolutionEngine engine(plan);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.vlen_bits = vlen;
  // --chaos: deterministic fault injection + the batch watchdog. The
  // injector must outlive the scheduler.
  std::optional<runtime::FaultInjector> injector;
  if (chaos_seed != 0) {
    injector.emplace(runtime::FaultPlan::chaos(chaos_seed));
    cfg.fault_injector = &*injector;
    cfg.watchdog_timeout_s = 2.0;
  }
  const std::string executor = args.get("executor", "graph");
  if (executor == "serial") {
    cfg.executor = runtime::ExecutorKind::Serial;
  } else if (executor != "graph") {
    std::fprintf(stderr, "error: unknown --executor=%s (graph|serial)\n",
                 executor.c_str());
    return 1;
  }
  runtime::BatchScheduler sched(engine, cfg);

  std::printf("serving %s (%zu layers, %d fused shortcuts) | %d requests, "
              "batch<=%d, %d workers | policy=%s precision=%s executor=%s\n",
              model.c_str(), net->num_layers(), folded, requests, batch,
              sched.threads(), policy.c_str(), precision.c_str(),
              executor.c_str());
  std::printf("per-layer dispatch table:\n%s\n",
              engine.plan().summary().c_str());

  // Warm-up pass (weight caches, workspaces, output reshapes) doubles as
  // the capacity measurement that sizes the default offered load and the
  // deadline slack.
  double batch_compute_ms;
  {
    dnn::Tensor warm(batch, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    const auto t0 = std::chrono::steady_clock::now();
    sched.run(*net, warm);
    batch_compute_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  }
  if (rate <= 0.0) rate = 0.8 * (batch / (batch_compute_ms / 1e3));

  serve::ServerConfig scfg;
  scfg.policy.max_batch = batch;
  scfg.policy.max_wait = std::chrono::duration_cast<serve::Clock::duration>(
      std::chrono::duration<double, std::milli>(max_wait_ms));
  // Reserve roughly one batch's compute before a deadline so the batcher
  // launches early enough to meet it.
  scfg.policy.deadline_slack =
      std::chrono::duration_cast<serve::Clock::duration>(
          std::chrono::duration<double, std::milli>(
              deadline_ms > 0.0 ? batch_compute_ms : 0.0));
  scfg.queue_capacity = queue_cap;
  scfg.block_when_full = block_when_full;
  // Declared before the server so the server (its only caller) is torn
  // down first.
  std::optional<serve::Replanner> replanner;
  if (replan) {
    // One-shot calibration against the simulated plan just computed: fits
    // the analytic model's per-kernel constants from the plan's own
    // candidate cycles, so re-planning needs no further simulation.
    core::CostModel cm(machine, plan.opt6);
    cm.calibrate_from(*net, plan);
    serve::ReplannerConfig rcfg;
    rcfg.max_batch = batch;
    replanner.emplace(sched, *net, std::move(cm), plan, rcfg);
    replanner->start();
    scfg.replanner = &*replanner;
  }
  serve::Server server(sched, *net, scfg);
  server.start();

  std::printf("offered load: %.1f requests/sec (measured capacity ~%.1f "
              "images/sec); max_wait=%.1f ms, deadline=%s, queue cap=%zu "
              "(%s)\n\n",
              rate, batch / (batch_compute_ms / 1e3), max_wait_ms,
              deadline_ms > 0.0
                  ? (std::to_string(deadline_ms) + " ms").c_str()
                  : "none",
              queue_cap, block_when_full ? "block" : "reject");

  // Client: reproducible Poisson-ish arrivals (PoissonArrivals). Request
  // r's input comes from its own stream, so results do not depend on how
  // requests were grouped into batches.
  using clock = std::chrono::steady_clock;
  // Engine-byte delta over the serve run: no batch is in flight here (the
  // server has only just started) or after stop() below.
  const std::uint64_t bytes0 = sched.mem_bytes_moved();
  const auto serve_t0 = clock::now();
  PoissonArrivals arrivals(seed, rate);
  auto next_arrival = serve_t0;
  for (int r = 0; r < requests; ++r) {
    next_arrival += arrivals.next_gap();
    std::this_thread::sleep_until(next_arrival);
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, seed + static_cast<std::uint64_t>(r));
    const auto deadline =
        deadline_ms > 0.0
            ? clock::now() + std::chrono::duration_cast<clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms))
            : serve::kNoDeadline;
    // Non-Accepted here can only be Rejected (queue full, reject-on-full
    // mode); the server's stats count it.
    (void)server.submit(static_cast<std::uint64_t>(r), std::move(in),
                        deadline);
  }
  server.stop();  // drain everything admitted
  if (replanner) replanner->stop();
  const double total_s =
      std::chrono::duration<double>(clock::now() - serve_t0).count();
  const std::uint64_t serve_bytes = sched.mem_bytes_moved() - bytes0;

  const std::vector<serve::Completion> done = server.drain_completions();
  const serve::ServerStats stats = server.stats();
  std::vector<double> queue_ms, compute_ms, total_ms;
  for (const serve::Completion& c : done) {
    if (c.trace.outcome != serve::Outcome::Ok) continue;  // chaos/shed: no
    queue_ms.push_back(c.trace.queue_ms);                 // latency sample
    compute_ms.push_back(c.trace.compute_ms);
    total_ms.push_back(c.trace.total_ms);
  }

  std::printf("served %llu/%d requests in %.2f s (%.1f images/sec), "
              "%llu shed by the full queue\n",
              static_cast<unsigned long long>(stats.completed), requests,
              total_s, static_cast<double>(stats.completed) / total_s,
              static_cast<unsigned long long>(stats.rejected));
  std::printf("%llu batches, avg %.2f images/batch, queue peak depth %zu\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batches > 0 ? stats.sum_batch_items /
                                      static_cast<double>(stats.batches)
                                : 0.0,
              stats.queue_peak_depth);
  std::printf("launch triggers (per batch): full=%llu max_wait=%llu "
              "deadline=%llu drain=%llu\n",
              static_cast<unsigned long long>(stats.trigger_counts[0]),
              static_cast<unsigned long long>(stats.trigger_counts[1]),
              static_cast<unsigned long long>(stats.trigger_counts[2]),
              static_cast<unsigned long long>(stats.trigger_counts[3]));
  if (deadline_ms > 0.0)
    std::printf("deadline misses: %llu\n",
                static_cast<unsigned long long>(stats.deadline_misses));
  if (chaos_seed != 0) {
    const runtime::FaultInjector::Stats fi = injector->stats();
    std::printf("chaos (seed %llu): %llu task stalls, %llu slow-worker "
                "delays, %llu item failures injected; %llu watchdog "
                "cancellations\n",
                static_cast<unsigned long long>(chaos_seed),
                static_cast<unsigned long long>(fi.task_stalls),
                static_cast<unsigned long long>(fi.worker_slows),
                static_cast<unsigned long long>(fi.item_failures),
                static_cast<unsigned long long>(stats.watchdog_wedges));
    std::printf("outcomes:");
    for (std::size_t o = 0; o < serve::kOutcomeCount; ++o)
      if (stats.outcomes[o] > 0)
        std::printf(" %s=%llu",
                    serve::outcome_name(static_cast<serve::Outcome>(o)),
                    static_cast<unsigned long long>(stats.outcomes[o]));
    std::printf("\n");
  }
  if (replan) {
    std::printf("re-planning: %llu plans recomputed, %llu swaps applied, "
                "last plan compute %llu us, live plan priced for batch %d\n",
                static_cast<unsigned long long>(stats.plans_recomputed),
                static_cast<unsigned long long>(stats.plan_swaps_applied),
                static_cast<unsigned long long>(stats.last_plan_compute_us),
                stats.plan_priced_batch);
    std::printf("live plan backend wins:");
    for (std::size_t b = 0; b < core::kBackendCount; ++b)
      if (stats.backend_wins[b] > 0)
        std::printf(" %s=%llu",
                    core::to_string(static_cast<core::Backend>(b)),
                    static_cast<unsigned long long>(stats.backend_wins[b]));
    std::printf("\n");
  }

  const auto p = [](const std::vector<double>& v, double q) {
    return percentile(v, q);
  };
  std::printf("\nper-request latency breakdown (ms):\n");
  std::printf("  %-10s %8s %8s %8s\n", "stage", "p50", "p95", "p99");
  std::printf("  %-10s %8.2f %8.2f %8.2f\n", "queue", p(queue_ms, 0.50),
              p(queue_ms, 0.95), p(queue_ms, 0.99));
  std::printf("  %-10s %8.2f %8.2f %8.2f\n", "compute", p(compute_ms, 0.50),
              p(compute_ms, 0.95), p(compute_ms, 0.99));
  std::printf("  %-10s %8.2f %8.2f %8.2f\n", "total", p(total_ms, 0.50),
              p(total_ms, 0.95), p(total_ms, 0.99));

  json.add("model=" + model + " policy=" + policy +
               " precision=" + precision +
               " batch=" + std::to_string(batch) +
               " max_wait_ms=" + std::to_string(max_wait_ms),
           total_s * 1e3, static_cast<double>(serve_bytes),
           {{"images_per_sec", static_cast<double>(stats.completed) / total_s},
            {"completed", static_cast<double>(stats.completed)},
            {"rejected", static_cast<double>(stats.rejected)},
            {"avg_batch",
             stats.batches > 0
                 ? stats.sum_batch_items / static_cast<double>(stats.batches)
                 : 0.0},
            {"queue_p50_ms", p(queue_ms, 0.50)},
            {"queue_p95_ms", p(queue_ms, 0.95)},
            {"queue_p99_ms", p(queue_ms, 0.99)},
            {"compute_p50_ms", p(compute_ms, 0.50)},
            {"compute_p95_ms", p(compute_ms, 0.95)},
            {"compute_p99_ms", p(compute_ms, 0.99)},
            {"total_p50_ms", p(total_ms, 0.50)},
            {"total_p95_ms", p(total_ms, 0.95)},
            {"total_p99_ms", p(total_ms, 0.99)},
            {"plans_recomputed", static_cast<double>(stats.plans_recomputed)},
            {"plan_swaps_applied",
             static_cast<double>(stats.plan_swaps_applied)},
            {"last_plan_compute_us",
             static_cast<double>(stats.last_plan_compute_us)},
            {"plan_priced_batch",
             static_cast<double>(stats.plan_priced_batch)},
            {"chaos_seed", static_cast<double>(chaos_seed)},
            {"internal_errors",
             static_cast<double>(stats.outcomes[static_cast<std::size_t>(
                 serve::Outcome::InternalError)])},
            {"watchdog_wedges", static_cast<double>(stats.watchdog_wedges)}});
  if (!json.write()) return 1;
  return 0;
}

// Throughput server: a micro-batching inference loop on top of the batched
// multi-threaded runtime.
//
// Simulates the serving pattern of a production deployment: requests queue
// up, the server drains them in batches of up to --batch images, and each
// batch is forwarded once through the network with the batch items sharded
// across the worker pool. Reports end-to-end throughput and per-request
// latency percentiles (time from "arrival" — its position in the request
// stream — to completion of its batch).
//
//   ./throughput_server [--model=tiny|vgg] [--requests=32] [--batch=8]
//                       [--threads=0 (hardware)] [--input=96] [--vlen=512]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model = args.get("model", "tiny");
  const int requests = static_cast<int>(args.get_int("requests", 32));
  const int batch = static_cast<int>(args.get_int("batch", 8));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int input_hw = static_cast<int>(args.get_int("input", 96));
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 512));
  if (requests < 1 || batch < 1) {
    std::fprintf(stderr, "error: --requests and --batch must be >= 1\n");
    return 1;
  }

  std::unique_ptr<dnn::Network> net =
      model == "vgg" ? dnn::build_vgg16(input_hw % 32 == 0 ? input_hw : 64)
                     : dnn::build_yolov3_tiny(input_hw);

  // Serve with the fused conv pipeline: implicit-GEMM packing + in-kernel
  // epilogue — the lowest-traffic configuration (see bench_fused_conv).
  core::ConvolutionEngine engine(core::EnginePolicy::fused());
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.vlen_bits = vlen;
  runtime::BatchScheduler sched(engine, cfg);

  std::printf("serving %s (%zu layers) | %d requests, batch<=%d, %d workers\n",
              model.c_str(), net->num_layers(), requests, batch,
              sched.threads());

  // Warm-up pass: weight caches, workspaces, output reshapes.
  {
    dnn::Tensor warm(batch, net->in_c(), net->in_h(), net->in_w());
    warm.randomize_batch(99);
    sched.run(*net, warm);
  }

  using clock = std::chrono::steady_clock;
  std::vector<double> latency_ms;
  latency_ms.reserve(static_cast<std::size_t>(requests));
  const auto serve_t0 = clock::now();

  for (int next = 0; next < requests;) {
    const int nb = std::min(batch, requests - next);
    // Each queued request is one image; request r carries RNG stream r so
    // results do not depend on how requests were grouped into batches.
    dnn::Tensor in(nb, net->in_c(), net->in_h(), net->in_w());
    for (int b = 0; b < nb; ++b)
      in.randomize_item(b, 1234 + static_cast<std::uint64_t>(next + b));
    const auto t0 = clock::now();
    sched.run(*net, in);
    const double batch_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    // Every request in the batch completes when the batch does.
    for (int b = 0; b < nb; ++b) latency_ms.push_back(batch_ms);
    next += nb;
  }

  const double total_s =
      std::chrono::duration<double>(clock::now() - serve_t0).count();
  std::sort(latency_ms.begin(), latency_ms.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latency_ms.size() - 1));
    return latency_ms[idx];
  };
  std::printf("throughput: %.1f images/sec\n", requests / total_s);
  std::printf("batch latency: p50=%.1f ms  p90=%.1f ms  p99=%.1f ms\n",
              pct(0.50), pct(0.90), pct(0.99));

  // Per-layer accounting of the last batch (merged across workers).
  std::printf("\nlast-batch per-layer wall time (top 5):\n");
  std::vector<dnn::LayerRecord> recs = sched.records();
  std::sort(recs.begin(), recs.end(),
            [](const dnn::LayerRecord& a, const dnn::LayerRecord& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, recs.size()); ++i)
    std::printf("  %-16s %-12s items=%-3d %.3f ms\n", recs[i].name.c_str(),
                recs[i].algo.c_str(), recs[i].items,
                recs[i].wall_seconds * 1e3);
  return 0;
}

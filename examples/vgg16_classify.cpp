// Image-classification scenario: VGG16 with algorithm comparison.
//
// Runs the same VGG16 inference through the optimized im2col+GEMM engine
// and through the Winograd engine (all VGG16 convolutions are 3x3/stride-1,
// so the whole backbone is Winograd-eligible — §VII-A), verifies the two
// predictions agree, and reports the speedup.
//
//   ./vgg16_classify [--input=64] [--machine=a64fx|rvv|sve] [--vlen=2048]

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/codesign.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

namespace {

int argmax_of(const dnn::Tensor& t) {
  int best = 0;
  for (std::size_t i = 1; i < t.size(); ++i)
    if (t[i] > t[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  return best;
}

struct Outcome {
  int top_class;
  float confidence;
  std::uint64_t cycles;
};

Outcome classify(const sim::MachineConfig& machine,
                 const core::EnginePolicy& policy, int input,
                 std::uint64_t seed) {
  auto net = dnn::build_vgg16(input, -1, seed);
  const core::RunResult r = core::run_simulated(*net, machine, policy);
  const dnn::Tensor& probs = net->layer(net->num_layers() - 1).output();
  const int cls = argmax_of(probs);
  return {cls, probs[static_cast<std::size_t>(cls)], r.cycles};
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int input = static_cast<int>(args.get_int("input", 64));
  const std::string machine_name = args.get("machine", "a64fx");
  const auto vlen = static_cast<unsigned>(args.get_int("vlen", 0));

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") machine = sim::rvv_gem5();
  if (machine_name == "sve") machine = sim::sve_gem5();
  if (vlen != 0) machine = machine.with_vlen(vlen);

  std::printf("VGG16 at %dx%d on %s\n\n", input, input, machine.name.c_str());

  const Outcome gemm_run =
      classify(machine, core::EnginePolicy::opt6loop(), input, 1234);
  std::printf("im2col+GEMM: class %d (p=%.4f), %.1f Mcycles\n",
              gemm_run.top_class, static_cast<double>(gemm_run.confidence),
              static_cast<double>(gemm_run.cycles) / 1e6);

  const Outcome wino_run =
      classify(machine, core::EnginePolicy::winograd(), input, 1234);
  std::printf("Winograd:    class %d (p=%.4f), %.1f Mcycles\n",
              wino_run.top_class, static_cast<double>(wino_run.confidence),
              static_cast<double>(wino_run.cycles) / 1e6);

  if (gemm_run.top_class != wino_run.top_class) {
    std::printf("ERROR: algorithm choice changed the prediction!\n");
    return 1;
  }
  std::printf("\npredictions agree; Winograd speedup: %.2fx "
              "(paper §VII-A: 1.5x on A64FX)\n",
              static_cast<double>(gemm_run.cycles) /
                  static_cast<double>(wino_run.cycles));
  return 0;
}

// Object-detection scenario: YOLOv3 inference with per-layer breakdown.
//
// Mirrors the paper's Darknet workflow: build YOLOv3, run one inference on
// a synthetic image, and report the per-layer cycle/FLOP breakdown on a
// chosen simulated machine — showing GEMM's dominance (§II-B: ~93% of
// computation) and where Winograd takes over when enabled.
//
//   ./yolov3_inference [--input=96] [--layers=24] [--machine=a64fx|rvv|sve]
//                      [--winograd]

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/codesign.hpp"
#include "dnn/models.hpp"

using namespace vlacnn;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int input = static_cast<int>(args.get_int("input", 96));
  const int layers = static_cast<int>(args.get_int("layers", 24));
  const std::string machine_name = args.get("machine", "a64fx");
  const bool winograd = args.get_bool("winograd", false);

  sim::MachineConfig machine = sim::a64fx();
  if (machine_name == "rvv") machine = sim::rvv_gem5();
  if (machine_name == "sve") machine = sim::sve_gem5();

  auto net = dnn::build_yolov3(input, layers);
  std::printf("YOLOv3 (%d layers, %zu conv) at %dx%d on %s%s\n\n", layers,
              net->num_conv_layers(), input, input, machine.name.c_str(),
              winograd ? " with Winograd" : "");

  const core::EnginePolicy policy = winograd ? core::EnginePolicy::winograd()
                                             : core::EnginePolicy::opt6loop();
  const core::RunResult r = core::run_simulated(*net, machine, policy);

  Table table({"#", "layer", "GFLOP", "Mcycles", "% of total"});
  std::size_t idx = 0;
  for (const auto& rec : r.layers) {
    table.add_row({std::to_string(idx++), rec.name,
                   Table::fmt(rec.flops / 1e9, 3),
                   Table::fmt(static_cast<double>(rec.cycles) / 1e6, 1),
                   Table::fmt(100.0 * static_cast<double>(rec.cycles) /
                                  static_cast<double>(r.cycles),
                              1)});
  }
  table.print("per-layer breakdown:");

  std::uint64_t conv = core::conv_cycles(r);
  std::printf("\ntotals: %.2f GFLOP in %.1f Mcycles (%.2f GFLOP/s sustained, "
              "%.1f%% in conv layers)\n",
              r.total_flops / 1e9, static_cast<double>(r.cycles) / 1e6,
              r.gflops_sustained,
              100.0 * static_cast<double>(conv) / static_cast<double>(r.cycles));
  std::printf("L2 miss rate %.1f%%, avg VL %.0f bits\n",
              100.0 * r.l2_miss_rate, r.avg_vl_bits);
  return 0;
}

#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace vlacnn {

/// Cache-line / vector-register aligned owning buffer of trivially copyable
/// elements. Alignment defaults to 256 bytes — enough for a full A64FX cache
/// line and any SIMD width we model.
template <typename T, std::size_t Alignment = 256>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer requires trivially copyable element types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(std::size_t n, T fill_value) {
    resize(n);
    fill(fill_value);
  }

  AlignedBuffer(const AlignedBuffer& other) {
    resize(other.size_);
    if (size_ != 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    resize(other.size_);
    if (size_ != 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)), size_(other.size_) {
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      data_ = std::move(other.data_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  /// Reallocates to exactly `n` elements. Contents are NOT preserved.
  void resize(std::size_t n) {
    if (n == size_) return;
    if (n == 0) {
      data_.reset();
      size_ = 0;
      return;
    }
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    data_.reset(static_cast<T*>(p));
    size_ = n;
  }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) data_.get()[i] = value;
  }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) { return data_.get()[i]; }
  const T& operator[](std::size_t i) const { return data_.get()[i]; }

  T* begin() noexcept { return data_.get(); }
  T* end() noexcept { return data_.get() + size_; }
  const T* begin() const noexcept { return data_.get(); }
  const T* end() const noexcept { return data_.get() + size_; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace vlacnn

#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace vlacnn {

/// Reproducible Poisson-ish arrival process: exponential inter-arrival gaps
/// at a fixed rate, drawn from one dedicated Rng stream so the offered
/// traffic depends only on (seed, rate) — never on how fast the server
/// drains it. Shared by the serving example and bench so both harnesses
/// measure the identical arrival stream.
class PoissonArrivals {
 public:
  /// The dedicated stream id: derived Rng streams are decorrelated by id,
  /// so arrivals never alias the per-request input streams.
  static constexpr std::uint64_t kStreamId = 0xA221A1;

  PoissonArrivals(std::uint64_t seed, double rate_per_sec)
      : rng_(Rng::for_stream(seed, kStreamId)), rate_(rate_per_sec) {}

  /// Next exponential inter-arrival gap, in seconds.
  double next_gap_seconds() {
    return -std::log(1.0 - static_cast<double>(rng_.next_float())) / rate_;
  }

  /// The same gap as a steady_clock duration (for sleep_until arithmetic).
  std::chrono::steady_clock::duration next_gap() {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(next_gap_seconds()));
  }

 private:
  Rng rng_;
  double rate_;
};

}  // namespace vlacnn

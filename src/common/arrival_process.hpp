#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace vlacnn {

/// Reproducible Poisson-ish arrival process: exponential inter-arrival gaps
/// at a fixed rate, drawn from one dedicated Rng stream so the offered
/// traffic depends only on (seed, rate) — never on how fast the server
/// drains it. Shared by the serving example and bench so both harnesses
/// measure the identical arrival stream.
class PoissonArrivals {
 public:
  /// The dedicated stream id: derived Rng streams are decorrelated by id,
  /// so arrivals never alias the per-request input streams.
  static constexpr std::uint64_t kStreamId = 0xA221A1;

  PoissonArrivals(std::uint64_t seed, double rate_per_sec)
      : rng_(Rng::for_stream(seed, kStreamId)), rate_(rate_per_sec) {}

  /// Next exponential inter-arrival gap, in seconds.
  double next_gap_seconds() {
    return -std::log(1.0 - static_cast<double>(rng_.next_float())) / rate_;
  }

  /// The same gap as a steady_clock duration (for sleep_until arithmetic).
  std::chrono::steady_clock::duration next_gap() {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(next_gap_seconds()));
  }

 private:
  Rng rng_;
  double rate_;
};

/// Inhomogeneous Poisson arrivals with a piecewise-constant rate function —
/// the traffic-shift scenarios (ramps, bursts) that make online re-planning
/// pay off. Simulated by thinning (the IPPP approach, Hohmann 2019):
/// candidate arrivals are drawn from a homogeneous process at the peak rate
/// λ_max and each candidate at time t is kept with probability λ(t)/λ_max,
/// which yields exactly the target inhomogeneous process. Deterministic in
/// (seed, segments), independent of service speed, and sharing
/// PoissonArrivals' dedicated Rng stream id so arrival draws never alias
/// the per-request input streams.
///
/// Unlike PoissonArrivals this yields ABSOLUTE arrival times (seconds since
/// the process start): with a time-varying rate, gaps only make sense
/// anchored to the clock. After the last segment the final segment's rate
/// continues forever.
class PiecewiseRateArrivals {
 public:
  struct Segment {
    double duration_s = 1.0;      ///< segment length in seconds
    double rate_per_sec = 1.0;    ///< constant rate λ within the segment
  };

  PiecewiseRateArrivals(std::uint64_t seed, std::vector<Segment> segments)
      : rng_(Rng::for_stream(seed, PoissonArrivals::kStreamId)),
        segments_(std::move(segments)) {
    lambda_max_ = 0.0;
    for (const Segment& s : segments_)
      lambda_max_ = s.rate_per_sec > lambda_max_ ? s.rate_per_sec : lambda_max_;
    if (segments_.empty() || lambda_max_ <= 0.0) {
      segments_ = {Segment{1.0, 1.0}};
      lambda_max_ = 1.0;
    }
  }

  /// Rate λ(t) at absolute time t (the last segment's rate past the end).
  [[nodiscard]] double rate_at(double t_s) const {
    double edge = 0.0;
    for (const Segment& s : segments_) {
      edge += s.duration_s;
      if (t_s < edge) return s.rate_per_sec;
    }
    return segments_.back().rate_per_sec;
  }

  /// Absolute time (seconds since start) of the next accepted arrival.
  double next_arrival_seconds() {
    for (;;) {
      // Homogeneous candidate at the peak rate...
      t_ += -std::log(1.0 - static_cast<double>(rng_.next_float())) /
            lambda_max_;
      // ...thinned by the local rate ratio.
      if (static_cast<double>(rng_.next_float()) * lambda_max_ <= rate_at(t_))
        return t_;
    }
  }

  /// Total duration of the declared segments (harnesses stop offering
  /// traffic here; the process itself extrapolates past it).
  [[nodiscard]] double horizon_seconds() const {
    double total = 0.0;
    for (const Segment& s : segments_) total += s.duration_s;
    return total;
  }

  /// Ramp scenario: rate climbs from `low` to `high` over `steps` equal
  /// segments of `segment_s` seconds — the diurnal-ramp shape where the
  /// optimal plan's amortization point drifts upward.
  [[nodiscard]] static std::vector<Segment> ramp(double low, double high,
                                                 int steps,
                                                 double segment_s) {
    std::vector<Segment> segs;
    for (int i = 0; i < steps; ++i) {
      const double f = steps > 1 ? static_cast<double>(i) / (steps - 1) : 1.0;
      segs.push_back({segment_s, low + (high - low) * f});
    }
    return segs;
  }

  /// Burst scenario: quiet `low` traffic, a `high` spike in the middle,
  /// then quiet again — the flash-crowd shape that tests re-planning's
  /// hysteresis in both directions.
  [[nodiscard]] static std::vector<Segment> burst(double low, double high,
                                                  double quiet_s,
                                                  double burst_s) {
    return {{quiet_s, low}, {burst_s, high}, {quiet_s, low}};
  }

 private:
  Rng rng_;
  std::vector<Segment> segments_;
  double lambda_max_ = 1.0;
  double t_ = 0.0;  ///< absolute time of the last candidate
};

}  // namespace vlacnn

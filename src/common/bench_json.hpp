#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace vlacnn::bench {

/// Machine-readable benchmark records (the perf trajectory the repo tracks
/// as BENCH_*.json): one `{bench, config, wall_ms, bytes_moved, ...}` object
/// per measured configuration, written as a JSON array when a `--json=path`
/// flag is given. With no path, add()/write() are no-ops, so harnesses can
/// record unconditionally. Lives in common/ (not bench/) because serving
/// examples emit the same records for CI artifacts.
class BenchJson {
 public:
  BenchJson(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one configuration. `extra` holds additional numeric fields
  /// (e.g. {"cycles", 1e6} or {"speedup", 1.4}).
  void add(const std::string& config, double wall_ms, double bytes_moved,
           const std::vector<std::pair<std::string, double>>& extra = {}) {
    if (!enabled()) return;
    records_.push_back({config, wall_ms, bytes_moved, extra});
  }

  /// Writes the records; returns false (with a message on stderr) on I/O
  /// failure so CI smoke steps fail loudly.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      // %.17g round-trips doubles exactly: the records exist to catch
      // traffic/time regressions across PRs, so exact counters (bytes,
      // cycles) must not be rounded away.
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"wall_ms\": %.17g, \"bytes_moved\": %.17g",
                   escape(bench_).c_str(), escape(r.config).c_str(),
                   r.wall_ms, r.bytes_moved);
      for (const auto& [key, value] : r.extra)
        std::fprintf(f, ", \"%s\": %.17g", escape(key).c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    const bool ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error: failed writing %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %zu records to %s\n", records_.size(), path_.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it simple
      out.push_back(c);
    }
    return out;
  }

  struct Record {
    std::string config;
    double wall_ms;
    double bytes_moved;
    std::vector<std::pair<std::string, double>> extra;
  };
  std::string bench_;
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace vlacnn::bench

#include "common/cli.hpp"

#include <cstdlib>

namespace vlacnn {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace vlacnn

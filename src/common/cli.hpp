#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlacnn {

/// Tiny `--key=value` / `--flag` command-line parser shared by the benchmark
/// harnesses and examples. Unknown keys are collected so callers can reject
/// or ignore them explicitly.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace vlacnn

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vlacnn {

/// Thrown on violated API preconditions (bad shapes, out-of-range configs).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  if (std::string(kind) == "precondition") throw InvalidArgument(full);
  throw InternalError(full);
}
}  // namespace detail

}  // namespace vlacnn

/// Precondition check on public API boundaries; throws InvalidArgument.
#define VLACNN_REQUIRE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::vlacnn::detail::check_failed("precondition", #expr, __FILE__,    \
                                     __LINE__, (msg));                   \
  } while (0)

/// Internal invariant check; throws InternalError.
#define VLACNN_ASSERT(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::vlacnn::detail::check_failed("invariant", #expr, __FILE__,       \
                                     __LINE__, (msg));                   \
  } while (0)

#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace vlacnn {

/// Linear-interpolation percentile (numpy's default "linear" / R-7
/// estimator): p in [0, 1] maps to rank p*(n-1) over the sorted values,
/// interpolating between the two straddling order statistics. The input need
/// not be sorted (a sorted copy is made). An empty input returns 0.0 so
/// harnesses can report percentiles of "no samples" without a guard.
inline double percentile(std::span<const double> values, double p) {
  VLACNN_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0, 1]");
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace vlacnn

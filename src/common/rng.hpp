#pragma once

#include <cstdint>
#include <limits>

namespace vlacnn {

/// Deterministic, seedable PRNG (xoshiro256**). Used everywhere instead of
/// std::mt19937 so that synthetic weights/inputs are bit-identical across
/// platforms and standard-library versions — benchmark and test outputs must
/// be reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding of the four state words.
    std::uint64_t z = seed;
    for (auto& w : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      w = x ^ (x >> 31);
    }
  }

  /// Derives an independent generator for substream `stream` of `seed`.
  /// Streams are decorrelated via a splitmix64 finalizer over (seed, stream),
  /// so draws in one stream are reproducible no matter how many draws any
  /// other stream has made — the contract per-batch-item randomization and
  /// the multi-threaded batch scheduler rely on.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return Rng(x ^ (x >> 31));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 draws);
  /// adequate for synthetic network weights.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    float s = 0.0f;
    for (int i = 0; i < 12; ++i) s += next_float();
    return mean + stddev * (s - 6.0f);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace vlacnn

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace vlacnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VLACNN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  VLACNN_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::render(const std::string& caption) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  if (!caption.empty()) out << caption << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& caption) const {
  std::fputs(render(caption).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace vlacnn

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vlacnn {

/// Minimal aligned-column table printer used by all benchmark harnesses to
/// emit the rows/series of the paper's tables and figures in a uniform,
/// grep-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(std::int64_t v);

  /// Renders with column alignment, a header underline, and an optional
  /// caption line above.
  [[nodiscard]] std::string render(const std::string& caption = "") const;

  void print(const std::string& caption = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vlacnn

#include "core/backend_plan.hpp"

#include <algorithm>
#include <sstream>

#include "core/conv_engine.hpp"
#include "winograd/winograd_conv.hpp"

namespace vlacnn::core {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Naive: return "naive-gemm";
    case Backend::Gemm3: return "im2col+gemm3";
    case Backend::Gemm6: return "im2col+gemm6";
    case Backend::FusedGemm6: return "fused-gemm6";
    case Backend::Winograd: return "winograd";
    case Backend::FusedWinograd: return "fused-winograd";
    case Backend::Direct: return "direct";
    case Backend::Gemm6Bf16: return "fused-gemm6-bf16";
    case Backend::Gemm6Int8: return "fused-gemm6-int8";
    case Backend::Gemm6Sparse: return "fused-gemm6-sparse";
    case Backend::Gemm6SparseBf16: return "fused-gemm6-sparse-bf16";
  }
  return "?";
}

bool backend_fuses(Backend b) {
  return b == Backend::FusedGemm6 || b == Backend::FusedWinograd ||
         backend_quantized(b) || backend_sparse(b);
}

bool backend_gemm6_family(Backend b) {
  return b == Backend::Gemm6 || b == Backend::FusedGemm6 ||
         backend_quantized(b) || backend_sparse(b);
}

bool backend_quantized(Backend b) {
  return b == Backend::Gemm6Bf16 || b == Backend::Gemm6Int8;
}

bool backend_sparse(Backend b) {
  return b == Backend::Gemm6Sparse || b == Backend::Gemm6SparseBf16;
}

bool backend_bit_compatible(Backend a, Backend b) {
  if (a == b) return true;
  const auto dense_gemm6 = [](Backend x) {
    return x == Backend::Gemm6 || x == Backend::FusedGemm6;
  };
  return dense_gemm6(a) && dense_gemm6(b);
}

gemm::PackFormat backend_pack_format(Backend b) {
  switch (b) {
    case Backend::Gemm6Bf16: return gemm::PackFormat::Bf16;
    case Backend::Gemm6Int8: return gemm::PackFormat::Int8PerChannel;
    case Backend::Gemm6Sparse: return gemm::PackFormat::SparseF32;
    case Backend::Gemm6SparseBf16: return gemm::PackFormat::SparseBf16;
    default: return gemm::PackFormat::F32;
  }
}

Backend backend_with_format(Backend b, gemm::PackFormat fmt) {
  if (!backend_gemm6_family(b)) return b;
  switch (fmt) {
    case gemm::PackFormat::F32:
      // Dropping the quantization/sparsity restores the fused fp32 backend;
      // plain Gemm6 stays plain.
      return b == Backend::Gemm6 ? b : Backend::FusedGemm6;
    case gemm::PackFormat::Bf16: return Backend::Gemm6Bf16;
    case gemm::PackFormat::Int8PerChannel: return Backend::Gemm6Int8;
    case gemm::PackFormat::SparseF32: return Backend::Gemm6Sparse;
    case gemm::PackFormat::SparseBf16: return Backend::Gemm6SparseBf16;
  }
  return b;
}

bool backend_eligible(Backend b, const dnn::ConvDesc& d) {
  if (b == Backend::Winograd || b == Backend::FusedWinograd)
    return winograd::WinogradConv::supports(d);
  return true;
}

bool conv_weight_bound(const dnn::ConvDesc& d) {
  // Weight matrix (M×K floats) at least as large as one item's im2col
  // matrix (K×N): the K factor cancels, so the test is M >= N.
  return d.gemm_m() >= d.gemm_n();
}

std::uint64_t conv_shape_key(const dnn::ConvDesc& d) {
  std::uint64_t k = 1469598103934665603ull;
  for (int v : {d.in_c, d.in_h, d.in_w, d.out_c, d.ksize, d.stride, d.pad}) {
    k ^= static_cast<std::uint64_t>(v);
    k *= 1099511628211ull;
  }
  return k;
}

BackendPlan BackendPlan::uniform(const EnginePolicy& policy) {
  BackendPlan p;
  p.opt3 = policy.opt3;
  p.opt6 = policy.opt6;
  p.vectorize_aux = policy.vectorize_aux;
  switch (policy.gemm_variant) {
    case gemm::GemmVariant::Naive:
      p.fallback_gemm = Backend::Naive;
      break;
    case gemm::GemmVariant::Opt3Loop:
      p.fallback_gemm = Backend::Gemm3;
      break;
    case gemm::GemmVariant::Opt6Loop:
      p.fallback_gemm =
          policy.fuse_conv ? Backend::FusedGemm6 : Backend::Gemm6;
      break;
  }
  p.fallback_winograd =
      policy.fuse_conv ? Backend::FusedWinograd : Backend::Winograd;
  p.winograd_stride1 = policy.winograd_stride1;
  p.winograd_stride2 = policy.winograd_stride2;
  p.fallback_weight_resident = policy.weight_resident;
  p.fc_weight_resident = policy.weight_resident;
  return p;
}

const PlanEntry* BackendPlan::find(const dnn::ConvDesc& d) const {
  const std::uint64_t key = conv_shape_key(d);
  for (const PlanEntry& e : entries)
    if (e.shape_key == key) return &e;
  return nullptr;
}

Backend BackendPlan::backend_for(const dnn::ConvDesc& d) const {
  if (const PlanEntry* e = find(d);
      e != nullptr && backend_eligible(e->backend, d))
    return e->backend;
  const bool to_winograd =
      winograd::WinogradConv::supports(d) &&
      (d.stride == 1 ? winograd_stride1 : winograd_stride2);
  return to_winograd ? fallback_winograd : fallback_gemm;
}

bool BackendPlan::weight_resident_for(const dnn::ConvDesc& d) const {
  const Backend b = backend_for(d);
  if (!backend_gemm6_family(b)) return false;
  // A quantized or sparse backend is weight-resident by definition: the
  // reduced/pruned image only exists as a prepare()-time cache entry.
  if (backend_quantized(b) || backend_sparse(b)) return true;
  if (const PlanEntry* e = find(d);
      e != nullptr && backend_eligible(e->backend, d))
    return e->weight_resident;
  return fallback_weight_resident;
}

bool BackendPlan::may_use(Backend b) const {
  if (fallback_gemm == b) return true;
  if ((winograd_stride1 || winograd_stride2) && fallback_winograd == b)
    return true;
  for (const PlanEntry& e : entries)
    if (e.backend == b) return true;
  return false;
}

BackendPlan BackendPlan::with_precision(gemm::PackFormat fmt) const {
  BackendPlan p = *this;
  if (backend_gemm6_family(p.fallback_gemm)) {
    p.fallback_gemm = backend_with_format(p.fallback_gemm, fmt);
    if (backend_quantized(p.fallback_gemm)) p.fallback_weight_resident = true;
  }
  for (PlanEntry& e : p.entries)
    if (backend_gemm6_family(e.backend)) {
      e.backend = backend_with_format(e.backend, fmt);
      if (backend_quantized(e.backend)) e.weight_resident = true;
    }
  return p;
}

BackendPlan BackendPlan::with_sparsity(double density) const {
  BackendPlan p = *this;
  const int pm = static_cast<int>(density * 1000.0 + 0.5);
  p.sparsity_pm = std::clamp(pm, 1, 1000);
  const auto sparsify = [](Backend b) {
    if (b == Backend::Gemm6Int8) return b;  // no sparse integer kernel
    if (b == Backend::Gemm6Bf16 || b == Backend::Gemm6SparseBf16)
      return Backend::Gemm6SparseBf16;
    return backend_gemm6_family(b) ? Backend::Gemm6Sparse : b;
  };
  if (backend_gemm6_family(p.fallback_gemm)) {
    p.fallback_gemm = sparsify(p.fallback_gemm);
    if (backend_sparse(p.fallback_gemm)) p.fallback_weight_resident = true;
  }
  for (PlanEntry& e : p.entries)
    if (backend_gemm6_family(e.backend)) {
      e.backend = sparsify(e.backend);
      if (backend_sparse(e.backend)) e.weight_resident = true;
    }
  return p;
}

std::string BackendPlan::summary() const {
  std::ostringstream out;
  for (const PlanEntry& e : entries) {
    out << "  layer " << e.layer_index << "  " << e.layer_name << "  -> "
        << to_string(e.backend);
    if (e.weight_resident) out << " [weight-resident]";
    if (e.cycles != 0)
      out << "  (" << static_cast<double>(e.cycles) / 1e6 << " Mcycles)";
    out << "\n";
  }
  out << "  fallback: " << to_string(fallback_gemm);
  if (winograd_stride1 || winograd_stride2) {
    out << ", 3x3";
    if (winograd_stride1) out << "/s1";
    if (winograd_stride2) out << "/s2";
    out << " -> " << to_string(fallback_winograd);
  }
  out << "\n";
  return out.str();
}

}  // namespace vlacnn::core

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dnn/conv_desc.hpp"
#include "gemm/gemm_opt3.hpp"
#include "gemm/gemm_opt6.hpp"

namespace vlacnn::core {

struct EnginePolicy;

/// Convolution backends a layer can be dispatched to — the algorithm
/// portfolio of the paper's §VII-A conclusion ("convolutional layers
/// require careful algorithmic selection related to kernel sizes and
/// strides") plus the fused pipelines PR 2 built. The Fused* kinds carry
/// the epilogue-fusion flag: they apply BN/bias/activation (and a folded
/// residual add) on the output tile in registers instead of as post-passes.
enum class Backend {
  Naive,          ///< scalar Darknet baseline GEMM (paper Fig. 1)
  Gemm3,          ///< im2col + vectorized 3-loop GEMM (Fig. 2)
  Gemm6,          ///< im2col + blocked/packed 6-loop GEMM (Fig. 3)
  FusedGemm6,     ///< implicit-GEMM packing + in-kernel epilogue
  Winograd,       ///< F(6x6,3x3), epilogue as post-passes
  FusedWinograd,  ///< F(6x6,3x3), epilogue on the output transform
  Direct,         ///< direct convolution (no im2col; best for tiny channels)
  Gemm6Bf16,      ///< FusedGemm6 over a bf16 resident weight image
  Gemm6Int8,      ///< FusedGemm6 over an int8 per-channel resident image
  Gemm6Sparse,    ///< FusedGemm6 over a block-sparse fp32 resident image
  Gemm6SparseBf16,///< block-sparse resident image with bf16 values
};

const char* to_string(Backend b);

/// True for the backends that apply the epilogue in-kernel.
[[nodiscard]] bool backend_fuses(Backend b);

/// True for the Gemm6 fused/unfused/quantized family — the backends that
/// can consume a pack-once resident weight image.
[[nodiscard]] bool backend_gemm6_family(Backend b);

/// True for the reduced-precision (weight-only quantized) backends. These
/// are the only backends exempt from the fp32 bit-exactness contract; their
/// outputs are instead held to the selector's accuracy budget.
[[nodiscard]] bool backend_quantized(Backend b);

/// True for the block-sparse (magnitude-pruned) backends. Like the
/// quantized kinds they are accuracy-budgeted and residency-or-nothing;
/// unlike them Gemm6Sparse stays bit-identical to dense FusedGemm6 over the
/// block-pruned weights — the lossy step is the prune, not the kernel.
[[nodiscard]] bool backend_sparse(Backend b);

/// Storage format of the resident weight image backend `b` consumes.
[[nodiscard]] gemm::PackFormat backend_pack_format(Backend b);

/// Maps a Gemm6-family backend to the variant consuming `fmt`-format
/// resident weights (F32 restores FusedGemm6 for quantized inputs); any
/// other backend is returned unchanged.
[[nodiscard]] Backend backend_with_format(Backend b, gemm::PackFormat fmt);

/// True when `b` can run the layer shape `d` at all (Winograd variants need
/// 3x3/pad-1; everything else takes any shape).
[[nodiscard]] bool backend_eligible(Backend b, const dnn::ConvDesc& d);

/// Shape key matching plan entries to layers at dispatch time (FNV-1a over
/// the convolution geometry; epilogue config deliberately excluded — the
/// backend choice depends on shape only).
[[nodiscard]] std::uint64_t conv_shape_key(const dnn::ConvDesc& d);

/// True when swapping a layer's route from `a` to `b` cannot change output
/// bits: either the same backend, or both in the Gemm6/FusedGemm6 pair
/// (epilogue fusion reorders nothing — pinned bit-identical since PR 2).
/// Winograd vs FusedWinograd is NOT in this relation (the fused output
/// transform differs by ≤2 ULP), and the quantized/sparse kinds are lossy
/// by design. The Replanner's bit-identical pinning consults this.
[[nodiscard]] bool backend_bit_compatible(Backend a, Backend b);

/// True when the layer's GEMM is weight-bound: the weight matrix A (M×K) is
/// at least as large as one item's im2col matrix B (K×N), i.e. M >= N —
/// VGG block 5 and the deep small-spatial YOLO layers, where the weight
/// stream dominates DRAM traffic and epilogue fusion cannot help. These are
/// the layers worth packing once at prepare() and executing batch-fused so
/// the resident weight panels are reused across the whole batch.
[[nodiscard]] bool conv_weight_bound(const dnn::ConvDesc& d);

/// One row of a per-layer backend table.
struct PlanEntry {
  int layer_index = -1;
  std::string layer_name;
  std::uint64_t shape_key = 0;
  Backend backend = Backend::Gemm6;
  std::uint64_t cycles = 0;  ///< simulated cycles of the winner (0 = not
                             ///< simulated, e.g. hand-written plans)
  /// Weight-resident layer: its weights are packed once during
  /// ConvolutionEngine::prepare() (skipping the A-pack stage on the hot
  /// path) and the BatchScheduler dispatches it batch-fused — one conv
  /// call over the whole batch — instead of per item. Only meaningful for
  /// the Gemm6/FusedGemm6 backends.
  bool weight_resident = false;
  /// Every simulated (backend, cycles) candidate, for reporting.
  std::vector<std::pair<Backend, std::uint64_t>> candidates;
};

/// First-class per-layer backend dispatch table: the single structure the
/// selector and the codesign advisor emit, ConvolutionEngine::install
/// compiles into a per-context dispatch, and the runtime/serving layers
/// consume. A global EnginePolicy is just the uniform special case
/// (`BackendPlan::uniform`): an empty table whose fallback routing encodes
/// the policy's GEMM variant and Winograd flags.
///
/// Resolution order for a layer shape (`backend_for`): a table entry whose
/// shape key matches and whose backend is eligible wins; otherwise the
/// fallback routing applies — 3x3 layers go to `fallback_winograd` when the
/// matching stride flag is set, everything else to `fallback_gemm`. A
/// declined (ineligible) entry therefore keeps the layer on its plan
/// default — fused included; nothing clears fusion as a side effect.
struct BackendPlan {
  /// Kernel configuration shared by every backend of the plan.
  gemm::Opt3Config opt3{};
  gemm::Opt6Config opt6{};
  bool vectorize_aux = true;

  /// Fallback routing for layers without a (eligible) table entry.
  Backend fallback_gemm = Backend::Gemm6;
  Backend fallback_winograd = Backend::Winograd;
  bool winograd_stride1 = false;
  bool winograd_stride2 = false;

  /// Weight residency of fallback-routed conv layers (shapes without a
  /// table entry). Leave false for selected plans: an unseen shape could be
  /// activation-bound, where batch-fusing costs staging and batch-level
  /// parallelism for nothing. Per-entry residency lives in PlanEntry.
  bool fallback_weight_resident = false;
  /// Batch-fuse FC layers (one out(nb×N) += X(nb×K)·W GEMM per batch): an
  /// FC layer's weight matrix is read whole per item — the textbook
  /// weight-bound case — so this is gated separately from the conv
  /// fallback and safe for the selector to set unconditionally.
  bool fc_weight_resident = false;
  /// Byte budget of the engine's pack-once weight cache (LRU beyond it).
  std::size_t packed_weight_budget = gemm::PackedWeightCache::kDefaultBudgetBytes;

  /// Block-prune density (per-mille) of the plan's sparse routes: the
  /// fraction of 4x16 weight blocks a Gemm6Sparse* layer keeps. 1000 (all
  /// blocks) when no route is sparse; installed into every context's Gemm6
  /// so sparse residency lookups and prepare() agree on the key.
  int sparsity_pm = 1000;

  /// Micro-batch size the plan's candidate cycles were priced at (the
  /// `batch` that amortized the pack deltas). Lets a re-planner and
  /// CostModel::calibrate_from interpret `PlanEntry::cycles` without
  /// guessing; 1 for hand-written plans.
  int priced_batch = 1;

  /// Per-layer table, matched by conv_shape_key.
  std::vector<PlanEntry> entries;

  /// Compiles a global EnginePolicy into the equivalent uniform plan.
  [[nodiscard]] static BackendPlan uniform(const EnginePolicy& policy);

  [[nodiscard]] const PlanEntry* find(const dnn::ConvDesc& d) const;

  /// The backend layer shape `d` dispatches to (entry or fallback; always
  /// eligible for `d`).
  [[nodiscard]] Backend backend_for(const dnn::ConvDesc& d) const;

  /// True when layer shape `d` runs weight-resident: its backend is
  /// Gemm6/FusedGemm6 and the matching entry (or the fallback flag) marks
  /// it. ConvolutionEngine::prepare() packs exactly these layers' weights;
  /// the BatchScheduler routes exactly these through the batch-fused path.
  [[nodiscard]] bool weight_resident_for(const dnn::ConvDesc& d) const;

  /// True when any entry or fallback route can reach `b`.
  [[nodiscard]] bool may_use(Backend b) const;

  /// Copy of the plan with every Gemm6-family conv route (entries and the
  /// GEMM fallback) switched to the variant consuming `fmt`-format resident
  /// weights — the one-flag precision knob of the serving tools
  /// (`--precision=bf16|int8`). Quantized routes are forced
  /// weight-resident: the reduced image IS the backend. Non-GEMM routes
  /// (Winograd, Direct, Naive/Gemm3) are left untouched.
  [[nodiscard]] BackendPlan with_precision(gemm::PackFormat fmt) const;

  /// Copy of the plan with every Gemm6-family conv route switched to its
  /// block-sparse variant at `density` (fraction of 4x16 blocks kept, in
  /// (0, 1]) — the serving tools' `--sparsity=0.5` knob. Precision
  /// composes: bf16 routes become Gemm6SparseBf16, fp32/fused routes
  /// Gemm6Sparse; int8 routes are left dense (no sparse integer kernel —
  /// the scale fold and the skip walk would fight over the epilogue).
  /// Sparse routes are forced weight-resident: the pruned image IS the
  /// backend, and a residency miss falls back to the dense sibling at run
  /// time.
  [[nodiscard]] BackendPlan with_sparsity(double density) const;

  /// Printable per-layer table (one line per entry + the fallback), for
  /// serving startup logs and the advisor examples.
  [[nodiscard]] std::string summary() const;
};

}  // namespace vlacnn::core

#include "core/codesign.hpp"

#include <chrono>

namespace vlacnn::core {

namespace {

RunResult run_with_engine(dnn::Network& net, const sim::MachineConfig& machine,
                          ConvolutionEngine& engine,
                          std::uint64_t input_seed) {
  sim::SimContext sctx(machine);
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  engine.install(ctx);

  dnn::Tensor input(net.in_c(), net.in_h(), net.in_w());
  Rng rng(input_seed);
  input.randomize(rng, 0.0f, 1.0f);

  // Warm the Winograd weight cache outside the timed region (the paper
  // excludes the offline weight transform, §VII-A).
  engine.prepare(net);

  net.forward(ctx, input);

  RunResult r;
  r.machine = machine.name;
  r.vlen_bits = machine.vlen_bits;
  r.lanes = machine.effective_lanes();
  r.l2_bytes = machine.l2.size_bytes;
  r.cycles = sctx.cycles();
  r.seconds = sctx.seconds();
  r.total_flops = net.total_flops();
  r.gflops_sustained = r.seconds > 0 ? r.total_flops / r.seconds / 1e9 : 0.0;

  const sim::TimingStats& ts = sctx.timing().stats();
  r.avg_vl_elems = ts.avg_vector_length_elems();
  r.avg_vl_bits = r.avg_vl_elems * 32.0;
  r.vector_instructions = ts.vector_instructions;
  r.scalar_ops = ts.scalar_ops;

  const sim::CacheStats& l2 = sctx.memory().l2_stats();
  r.l2_accesses = l2.accesses;
  r.l2_misses = l2.misses;
  r.l2_miss_rate = l2.miss_rate();
  r.dram_lines = sctx.memory().dram_line_fills();

  r.layers = std::move(ctx.records);
  return r;
}

}  // namespace

RunResult run_simulated(dnn::Network& net, const sim::MachineConfig& machine,
                        const EnginePolicy& policy, std::uint64_t input_seed) {
  ConvolutionEngine engine(policy);
  return run_with_engine(net, machine, engine, input_seed);
}

RunResult run_simulated(dnn::Network& net, const sim::MachineConfig& machine,
                        const BackendPlan& plan, std::uint64_t input_seed) {
  ConvolutionEngine engine(plan);
  return run_with_engine(net, machine, engine, input_seed);
}

double run_native(dnn::Network& net, unsigned vlen_bits,
                  const EnginePolicy& policy, std::uint64_t input_seed) {
  vla::VectorEngine eng(vlen_bits);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(policy);
  engine.install(ctx);

  dnn::Tensor input(net.in_c(), net.in_h(), net.in_w());
  Rng rng(input_seed);
  input.randomize(rng, 0.0f, 1.0f);

  const auto t0 = std::chrono::steady_clock::now();
  net.forward(ctx, input);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t conv_cycles(const RunResult& r) {
  std::uint64_t total = 0;
  for (const auto& rec : r.layers)
    if (rec.name.rfind("conv", 0) == 0) total += rec.cycles;
  return total;
}

}  // namespace vlacnn::core

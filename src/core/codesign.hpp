#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/network.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

/// Result of one simulated inference run — the quantities the paper reports
/// in its tables and figures.
struct RunResult {
  std::string machine;
  unsigned vlen_bits = 0;
  unsigned lanes = 0;
  std::uint64_t l2_bytes = 0;

  std::uint64_t cycles = 0;
  double seconds = 0.0;
  double total_flops = 0.0;
  double gflops_sustained = 0.0;

  double avg_vl_elems = 0.0;  ///< Table III "average vector length"
  double avg_vl_bits = 0.0;
  double l2_miss_rate = 0.0;  ///< Table III "L2 cache miss rate"
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_lines = 0;
  std::uint64_t vector_instructions = 0;
  std::uint64_t scalar_ops = 0;

  std::vector<dnn::LayerRecord> layers;
};

/// Runs one forward pass of `net` on the simulated `machine` with the given
/// algorithm policy, on a deterministic synthetic input image. Network
/// setup (weight generation, Winograd weight transform) is excluded from
/// the cycle count, matching the paper's measurement protocol (§VI).
RunResult run_simulated(dnn::Network& net, const sim::MachineConfig& machine,
                        const EnginePolicy& policy,
                        std::uint64_t input_seed = 7);

/// Same, driven by a per-layer BackendPlan (e.g. from select_per_layer) —
/// the codesign advisor's plan-emitting form: sweep machines, select a plan
/// per machine, and report the simulated quantities of running exactly that
/// plan. Layers without an eligible plan entry keep the plan's default
/// backend (fused included); nothing falls back to a different pipeline as
/// a side effect of plan application.
RunResult run_simulated(dnn::Network& net, const sim::MachineConfig& machine,
                        const BackendPlan& plan, std::uint64_t input_seed = 7);

/// Runs one forward pass functionally (no simulator attached), returning
/// wall-clock seconds — used by the native micro-benchmarks and tests.
double run_native(dnn::Network& net, unsigned vlen_bits,
                  const EnginePolicy& policy, std::uint64_t input_seed = 7);

/// Convenience: cycles spent in convolutional layers only (the paper's
/// figures exclude setup; conv dominates at >93%, but this makes the
/// ratios exact for GEMM-focused comparisons).
std::uint64_t conv_cycles(const RunResult& r);

}  // namespace vlacnn::core

#include "core/conv_engine.hpp"

#include "dnn/network.hpp"

namespace vlacnn::core {

ConvolutionEngine::ConvolutionEngine(const EnginePolicy& policy)
    : policy_(policy) {}

void ConvolutionEngine::install(dnn::ExecContext& ctx,
                                runtime::ThreadPool* intra_op_pool) {
  ctx.fused_conv = nullptr;
  if (policy_.gemm_variant == gemm::GemmVariant::Opt6Loop) {
    // One Gemm6 instance per context backs both the plain GemmFn and (when
    // the policy fuses) the implicit-GEMM fused-conv entry, so they share
    // packing buffers and the intra-op pool wiring.
    auto impl = gemm::make_gemm6(policy_.opt6, intra_op_pool);
    ctx.gemm = gemm::wrap_gemm6(impl);
    if (policy_.fuse_conv) {
      ctx.fused_conv = [impl](vla::VectorEngine& eng, const dnn::ConvDesc& d,
                              const float* input, const float* weights,
                              float* output, const dnn::EpilogueDesc& epi) {
        return impl->conv_fused(eng, d, weights, input, output, &epi);
      };
    }
  } else {
    ctx.gemm = gemm::make_gemm_fn(policy_.gemm_variant, policy_.opt3,
                                  policy_.opt6, intra_op_pool);
  }
  ctx.vectorize_aux_kernels = policy_.vectorize_aux;
  if (policy_.winograd_stride1 || policy_.winograd_stride2) {
    const bool s1 = policy_.winograd_stride1;
    const bool s2 = policy_.winograd_stride2;
    const bool fuse = policy_.fuse_conv;
    // Fresh per-context instance (own V/M/stage scratch) over the shared
    // read-mostly weight cache; the shared_ptr keeps it alive for as long
    // as the context holds the override.
    auto impl = std::make_shared<winograd::WinogradConv>(&weight_cache_);
    impl->set_intra_op_pool(intra_op_pool);
    ctx.conv_override = [impl, s1, s2, fuse](vla::VectorEngine& eng,
                                             const dnn::ConvDesc& d,
                                             const float* input,
                                             const float* weights,
                                             float* output,
                                             const dnn::EpilogueDesc* epi) {
      if (!winograd::WinogradConv::supports(d)) return dnn::ConvStatus::Declined;
      if (d.stride == 1 && !s1) return dnn::ConvStatus::Declined;
      if (d.stride == 2 && !s2) return dnn::ConvStatus::Declined;
      if (fuse && epi != nullptr) {
        impl->run(eng, d, input, weights, output, epi);
        return dnn::ConvStatus::RanFused;
      }
      impl->run(eng, d, input, weights, output);
      return dnn::ConvStatus::Ran;
    };
  } else {
    ctx.conv_override = nullptr;
  }
}

void ConvolutionEngine::prepare(const dnn::Network& net) {
  if (!policy_.winograd_stride1 && !policy_.winograd_stride2) return;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    // The transform depends only on in_c/out_c and the raw weights, so the
    // same cached entry serves both the stride-1 and the dense-stride-1
    // view of a stride-2 layer.
    if (policy_.routes_to_winograd(conv->desc()))
      weight_cache_.prepare(conv->desc(), conv->weights());
  }
}

}  // namespace vlacnn::core

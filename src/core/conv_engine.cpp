#include "core/conv_engine.hpp"

namespace vlacnn::core {

ConvolutionEngine::ConvolutionEngine(const EnginePolicy& policy)
    : policy_(policy) {
  gemm_fn_ = gemm::make_gemm_fn(policy.gemm_variant, policy.opt3, policy.opt6);
}

void ConvolutionEngine::install(dnn::ExecContext& ctx) {
  ctx.gemm = gemm_fn_;
  ctx.vectorize_aux_kernels = policy_.vectorize_aux;
  if (policy_.winograd_stride1 || policy_.winograd_stride2) {
    const bool s1 = policy_.winograd_stride1;
    const bool s2 = policy_.winograd_stride2;
    winograd::WinogradConv* impl = &winograd_;
    ctx.conv_override = [impl, s1, s2](vla::VectorEngine& eng,
                                       const dnn::ConvDesc& d,
                                       const float* input,
                                       const float* weights, float* output) {
      if (!winograd::WinogradConv::supports(d)) return false;
      if (d.stride == 1 && !s1) return false;
      if (d.stride == 2 && !s2) return false;
      impl->run(eng, d, input, weights, output);
      return true;
    };
  } else {
    ctx.conv_override = nullptr;
  }
}

}  // namespace vlacnn::core

#include "core/conv_engine.hpp"

#include "dnn/direct_conv.hpp"
#include "dnn/kernels.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"

namespace vlacnn::core {

ConvolutionEngine::ConvolutionEngine(const EnginePolicy& policy)
    : plan_(std::make_shared<const BackendPlan>(BackendPlan::uniform(policy))),
      packed_cache_(plan_->packed_weight_budget) {}

ConvolutionEngine::ConvolutionEngine(BackendPlan plan)
    : plan_(std::make_shared<const BackendPlan>(std::move(plan))),
      packed_cache_(plan_->packed_weight_budget) {}

void ConvolutionEngine::set_plan(BackendPlan plan) {
  plan_ = std::make_shared<const BackendPlan>(std::move(plan));
}

void ConvolutionEngine::install(dnn::ExecContext& ctx,
                                runtime::ThreadPool* intra_op_pool) {
  const std::shared_ptr<const BackendPlan> plan = plan_;

  // Per-context mutable kernel state shared by every backend the plan can
  // route to. One Gemm6 instance backs the plain 6-loop, the fused
  // implicit-GEMM entry and the FC-layer GemmFn, so they share packing
  // buffers and the intra-op pool wiring; the Winograd instance (own
  // V/M/stage scratch) sits over the engine-shared read-mostly weight
  // cache.
  struct Backends {
    std::shared_ptr<gemm::Gemm6> gemm6;
    std::shared_ptr<winograd::WinogradConv> wino;
    dnn::GemmFn gemm6_fn, gemm6_conv_fn, gemm3_fn, naive_fn;
  };
  auto st = std::make_shared<Backends>();
  st->gemm6 = gemm::make_gemm6(plan->opt6, intra_op_pool);
  // Every per-context instance shares the engine's pack-once weight cache
  // (read-only during passes): any layer prepare() packed skips its A-pack
  // stage in every context, fused and unfused Gemm6 paths alike. Only the
  // conv dispatch uses the cache-consulting entry (gemm_weights) — its A
  // is a weight matrix by construction; the generic gemm6_fn (FC layers,
  // base path) must not guess.
  st->gemm6->set_weight_cache(&packed_cache_);
  // Sparse routes key their residency lookups by the plan's prune density;
  // installing it here keeps the conv_fused signature density-free.
  st->gemm6->set_sparsity_pm(plan->sparsity_pm);
  st->gemm6_fn = gemm::wrap_gemm6(st->gemm6);
  st->gemm6_conv_fn = [impl = st->gemm6](vla::VectorEngine& eng, int M, int N,
                                         int K, float alpha, const float* A,
                                         int lda, const float* B, int ldb,
                                         float* C, int ldc) {
    impl->gemm_weights(eng, M, N, K, alpha, A, lda, B, ldb, C, ldc);
  };
  st->gemm3_fn = gemm::make_gemm_fn(gemm::GemmVariant::Opt3Loop, plan->opt3);
  st->naive_fn = gemm::make_gemm_fn(gemm::GemmVariant::Naive);
  if (plan->may_use(Backend::Winograd) ||
      plan->may_use(Backend::FusedWinograd)) {
    st->wino = std::make_shared<winograd::WinogradConv>(&weight_cache_);
    st->wino->set_intra_op_pool(intra_op_pool);
  }

  // FC layers (1xN GEMV) and the base path of un-dispatched contexts run
  // the plan's fallback GEMM.
  switch (plan->fallback_gemm) {
    case Backend::Naive: ctx.gemm = st->naive_fn; break;
    case Backend::Gemm3: ctx.gemm = st->gemm3_fn; break;
    default: ctx.gemm = st->gemm6_fn; break;
  }
  ctx.vectorize_aux_kernels = plan->vectorize_aux;
  ctx.conv_label = [plan](const dnn::ConvDesc& d) {
    return to_string(plan->backend_for(d));
  };
  ctx.conv_backend = [st, plan](dnn::ExecContext& c, const dnn::ConvDesc& d,
                                const float* input, const float* weights,
                                float* output,
                                const dnn::EpilogueDesc& epi)
      -> dnn::ConvStatus {
    vla::VectorEngine& eng = c.engine();
    const Backend b = plan->backend_for(d);
    switch (b) {
      case Backend::FusedWinograd:
        // Epilogue (and any folded residual) applied on the output
        // transform's registers; stride-2 fuses into the subsample pass.
        st->wino->run(eng, d, input, weights, output, &epi);
        return dnn::ConvStatus::RanFused;
      case Backend::Winograd:
        // Raw convolution only (no fill needed — the transform overwrites
        // the output completely); the layer applies the epilogue.
        st->wino->run(eng, d, input, weights, output);
        return dnn::ConvStatus::Ran;
      case Backend::Direct: {
        const std::size_t out_elems =
            static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w();
        dnn::fill_cpu(eng, out_elems, 0.0f, output);
        dnn::direct_conv_vla(eng, d, input, weights, output);
        return dnn::ConvStatus::Ran;
      }
      case Backend::Gemm6Bf16:
      case Backend::Gemm6Int8:
      case Backend::Gemm6Sparse:
      case Backend::Gemm6SparseBf16:
      case Backend::FusedGemm6:
        // Quantized and sparse kinds run the same fused kernel over the
        // format-tagged resident image; a missing image (budget-evicted, or
        // weights not prepared) silently falls back to the dense fp32 path
        // inside the kernel.
        if (st->gemm6->conv_fused(eng, d, weights, input, output, &epi,
                                  backend_pack_format(b)))
          return dnn::ConvStatus::RanFused;
        [[fallthrough]];  // packing disabled: no fused equivalent — run the
                          // unfused 6-loop, NOT a silent fusion clear
      case Backend::Gemm6:
        dnn::run_im2col_gemm(c, d, input, weights, output, st->gemm6_conv_fn);
        return dnn::ConvStatus::Ran;
      case Backend::Gemm3:
        dnn::run_im2col_gemm(c, d, input, weights, output, st->gemm3_fn);
        return dnn::ConvStatus::Ran;
      case Backend::Naive:
        dnn::run_im2col_gemm(c, d, input, weights, output, st->naive_fn);
        return dnn::ConvStatus::Ran;
    }
    return dnn::ConvStatus::Declined;
  };
  ctx.conv_batch = [st, plan](dnn::ExecContext& c, const dnn::ConvDesc& d,
                              const float* input, std::size_t in_item_stride,
                              const float* weights, float* output,
                              std::size_t out_item_stride, int batch,
                              const dnn::EpilogueDesc& epi)
      -> dnn::ConvStatus {
    // Batch-fused execution only for weight-resident layers — the staged
    // batched C plus the lost batch-level parallelism is only worth paying
    // where the resident weight stream dominates. The fused kernel serves
    // both Gemm6 kinds: fused and unfused outputs are bit-identical by
    // contract, and a resident unfused layer wants the traffic cut too.
    if (!plan->weight_resident_for(d)) return dnn::ConvStatus::Declined;
    if (st->gemm6->conv_fused_batch(c.engine(), d, weights, input,
                                    in_item_stride, output, out_item_stride,
                                    batch, &epi,
                                    backend_pack_format(plan->backend_for(d))))
      return dnn::ConvStatus::RanFused;
    return dnn::ConvStatus::Declined;
  };
}

void ConvolutionEngine::prepare(const dnn::Network& net) {
  const bool any_winograd = plan_->may_use(Backend::Winograd) ||
                            plan_->may_use(Backend::FusedWinograd);
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    // The transform depends only on in_c/out_c and the raw weights, so the
    // same cached entry serves both the stride-1 and the dense-stride-1
    // view of a stride-2 layer.
    const Backend b = plan_->backend_for(conv->desc());
    if (any_winograd &&
        (b == Backend::Winograd || b == Backend::FusedWinograd))
      weight_cache_.prepare(conv->desc(), conv->weights());
    if (plan_->weight_resident_for(conv->desc())) {
      const gemm::PackFormat fmt = backend_pack_format(b);
      packed_cache_.prepare(conv->weights(), conv->desc().gemm_m(),
                            conv->desc().gemm_k(),
                            plan_->opt6.blocks.block_k, fmt,
                            gemm::pack_format_sparse(fmt) ? plan_->sparsity_pm
                                                          : 1000);
    }
  }
}

void ConvolutionEngine::prepare(const dnn::ConvDesc& d, const float* weights) {
  const Backend b = plan_->backend_for(d);
  if (b == Backend::Winograd || b == Backend::FusedWinograd)
    weight_cache_.prepare(d, weights);
  if (plan_->weight_resident_for(d)) {
    const gemm::PackFormat fmt = backend_pack_format(b);
    packed_cache_.prepare(weights, d.gemm_m(), d.gemm_k(),
                          plan_->opt6.blocks.block_k, fmt,
                          gemm::pack_format_sparse(fmt) ? plan_->sparsity_pm
                                                        : 1000);
  }
}

}  // namespace vlacnn::core

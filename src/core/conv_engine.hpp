#pragma once

#include <memory>

#include "core/backend_plan.hpp"
#include "dnn/exec_context.hpp"
#include "gemm/gemm.hpp"
#include "winograd/weight_cache.hpp"
#include "winograd/winograd_conv.hpp"

namespace vlacnn::dnn {
class Network;
}  // namespace vlacnn::dnn

namespace vlacnn::core {

/// Per-layer algorithm-selection policy (paper §VII: "convolutional layers
/// require careful algorithmic selection related to kernel sizes and
/// strides").
struct EnginePolicy {
  gemm::GemmVariant gemm_variant = gemm::GemmVariant::Opt3Loop;
  gemm::Opt3Config opt3{};
  gemm::Opt6Config opt6{};
  /// Use Winograd for 3x3 stride-1 layers (falls back to GEMM elsewhere).
  bool winograd_stride1 = false;
  /// Additionally use Winograd for 3x3 stride-2 layers (the paper measures
  /// this slower than GEMM; kept for reproducing that comparison).
  bool winograd_stride2 = false;
  /// Vectorize the auxiliary conv-layer kernels (im2col, bias, norm, act).
  bool vectorize_aux = true;
  /// Fuse the convolution pipeline: implicit-GEMM packing (no materialized
  /// im2col workspace), beta=0 first-panel stores (no fill pass), and the
  /// BN/bias/activation epilogue applied in-kernel — on the GEMM
  /// microkernel's final tile store (Opt6Loop only) and on the Winograd
  /// output transform. Off by default so instrumented paper-reproduction
  /// runs keep the unfused Darknet pipeline they model.
  bool fuse_conv = false;
  /// Weight residency: pack every GEMM-routed conv layer's weights once at
  /// ConvolutionEngine::prepare() (the A-pack stage disappears from the hot
  /// path) and let the BatchScheduler execute those layers — and FC layers
  /// — batch-fused, streaming the whole batch past each resident weight
  /// panel. Off by default: the instrumented paper policies model Darknet's
  /// per-call packing.
  bool weight_resident = false;

  [[nodiscard]] static EnginePolicy naive() {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Naive;
    p.vectorize_aux = false;
    return p;
  }
  [[nodiscard]] static EnginePolicy opt3loop(int unroll = 16) {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Opt3Loop;
    p.opt3.unroll_factor = unroll;
    return p;
  }
  [[nodiscard]] static EnginePolicy opt6loop(const gemm::Opt6Config& cfg = {}) {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Opt6Loop;
    p.opt6 = cfg;
    return p;
  }
  /// Winograd where profitable (3x3/s1), optimized GEMM elsewhere — the
  /// paper's best configuration (§VII-B).
  [[nodiscard]] static EnginePolicy winograd(
      gemm::GemmVariant fallback = gemm::GemmVariant::Opt6Loop) {
    EnginePolicy p;
    p.gemm_variant = fallback;
    p.winograd_stride1 = true;
    return p;
  }
  /// Fused conv pipeline on the 6-loop GEMM (optionally with Winograd for
  /// 3x3/s1, whose output transform then applies the epilogue) — the
  /// lowest-traffic serving configuration.
  [[nodiscard]] static EnginePolicy fused(bool use_winograd = false,
                                          const gemm::Opt6Config& cfg = {}) {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Opt6Loop;
    p.opt6 = cfg;
    p.winograd_stride1 = use_winograd;
    p.fuse_conv = true;
    return p;
  }

  /// True when the policy routes this layer shape to Winograd.
  [[nodiscard]] bool routes_to_winograd(const dnn::ConvDesc& d) const {
    if (!winograd::WinogradConv::supports(d)) return false;
    if (d.stride == 1) return winograd_stride1;
    return winograd_stride2;
  }
};

/// Compiles a BackendPlan into per-context dispatch tables and installs
/// them into dnn::ExecContexts. A global EnginePolicy is accepted as the
/// uniform special case (it is compiled through BackendPlan::uniform).
///
/// install() materializes *fresh per-context* mutable state — the packed-
/// buffer GEMM and the Winograd V/M/stage scratch — behind one compiled
/// dnn::ConvBackendFn that routes each layer shape to its planned backend,
/// so any number of ExecContexts installed from one engine can run forward
/// passes on different threads concurrently. The only shared pieces are the
/// (immutable) plan and the Winograd transformed-weight cache, which is
/// insert-only behind a mutex and becomes a read-only lookup after
/// prepare() has swept the network (the paper excludes the weight transform
/// from inference time, §VII-A, so the prepare step also keeps the
/// measurement protocol honest under multi-threading).
class ConvolutionEngine {
 public:
  explicit ConvolutionEngine(const EnginePolicy& policy);
  explicit ConvolutionEngine(BackendPlan plan);

  /// Installs the compiled per-context dispatch. `intra_op_pool` (optional)
  /// shards the GEMM M-panel and Winograd tile loops across a thread pool
  /// for this context — use only for a context that runs alone (batch-1
  /// latency mode), not for per-worker contexts of a batch-sharded run.
  void install(dnn::ExecContext& ctx,
               runtime::ThreadPool* intra_op_pool = nullptr);

  /// Pre-transforms Winograd weights for every conv layer of `net` the
  /// plan routes to (fused) Winograd, and packs the weights of every layer
  /// the plan marks weight-resident into the shared PackedWeightCache, so
  /// concurrent forward passes only read the shared caches. Both
  /// preparations are host-side and uninstrumented (the paper excludes
  /// weight preparation from inference time, §VII-A).
  void prepare(const dnn::Network& net);

  /// Single-layer prepare (the selector's simulation harness and the
  /// weight-residency benches drive layers outside a Network).
  void prepare(const dnn::ConvDesc& d, const float* weights);

  /// Replaces the plan (online re-planning). Cheap: swaps the shared_ptr.
  /// Already-installed ExecContexts keep dispatching through the plan they
  /// were compiled against (each compiled dispatch owns a shared_ptr to
  /// it), so a swap never yanks state out from under a running pass —
  /// re-install each context at a quiescent point to pick the new plan up,
  /// then prepare() packs/transforms whatever the new routing needs. The
  /// shared weight caches are (shape, format, density)-keyed, so entries
  /// valid under both plans stay warm across the swap; the packed-cache
  /// byte budget is fixed at construction and the new plan's budget field
  /// is ignored.
  void set_plan(BackendPlan plan);

  /// The compiled plan — authoritative whichever constructor was used.
  [[nodiscard]] const BackendPlan& plan() const { return *plan_; }
  [[nodiscard]] winograd::WeightCache& weight_cache() { return weight_cache_; }
  [[nodiscard]] gemm::PackedWeightCache& packed_weights() {
    return packed_cache_;
  }

 private:
  std::shared_ptr<const BackendPlan> plan_;
  winograd::WeightCache weight_cache_;
  gemm::PackedWeightCache packed_cache_;
};

}  // namespace vlacnn::core

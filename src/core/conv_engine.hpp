#pragma once

#include <memory>

#include "dnn/exec_context.hpp"
#include "gemm/gemm.hpp"
#include "winograd/winograd_conv.hpp"

namespace vlacnn::core {

/// Per-layer algorithm-selection policy (paper §VII: "convolutional layers
/// require careful algorithmic selection related to kernel sizes and
/// strides").
struct EnginePolicy {
  gemm::GemmVariant gemm_variant = gemm::GemmVariant::Opt3Loop;
  gemm::Opt3Config opt3{};
  gemm::Opt6Config opt6{};
  /// Use Winograd for 3x3 stride-1 layers (falls back to GEMM elsewhere).
  bool winograd_stride1 = false;
  /// Additionally use Winograd for 3x3 stride-2 layers (the paper measures
  /// this slower than GEMM; kept for reproducing that comparison).
  bool winograd_stride2 = false;
  /// Vectorize the auxiliary conv-layer kernels (im2col, bias, norm, act).
  bool vectorize_aux = true;

  [[nodiscard]] static EnginePolicy naive() {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Naive;
    p.vectorize_aux = false;
    return p;
  }
  [[nodiscard]] static EnginePolicy opt3loop(int unroll = 16) {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Opt3Loop;
    p.opt3.unroll_factor = unroll;
    return p;
  }
  [[nodiscard]] static EnginePolicy opt6loop(const gemm::Opt6Config& cfg = {}) {
    EnginePolicy p;
    p.gemm_variant = gemm::GemmVariant::Opt6Loop;
    p.opt6 = cfg;
    return p;
  }
  /// Winograd where profitable (3x3/s1), optimized GEMM elsewhere — the
  /// paper's best configuration (§VII-B).
  [[nodiscard]] static EnginePolicy winograd(
      gemm::GemmVariant fallback = gemm::GemmVariant::Opt6Loop) {
    EnginePolicy p;
    p.gemm_variant = fallback;
    p.winograd_stride1 = true;
    return p;
  }
};

/// Owns the algorithm implementations (packed-buffer GEMM state, Winograd
/// scratch and weight cache) and installs them into a dnn::ExecContext.
class ConvolutionEngine {
 public:
  explicit ConvolutionEngine(const EnginePolicy& policy);

  void install(dnn::ExecContext& ctx);

  [[nodiscard]] const EnginePolicy& policy() const { return policy_; }
  [[nodiscard]] winograd::WinogradConv& winograd_impl() { return winograd_; }

 private:
  EnginePolicy policy_;
  dnn::GemmFn gemm_fn_;
  winograd::WinogradConv winograd_;
};

}  // namespace vlacnn::core

#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/selector.hpp"
#include "dnn/layers.hpp"
#include "dnn/models.hpp"
#include "dnn/network.hpp"

namespace vlacnn::core {

namespace {

/// Dynamic-instruction and stream-traffic tallies of one estimated kernel
/// call — the closed-form mirror of what VectorTimingModel/MemorySystem
/// account when the simulator actually runs it.
struct Counts {
  double v_arith = 0.0;        ///< vector arithmetic instructions (FMA pipes)
  double v_arith_cycles = 0.0; ///< their pipe-occupancy cycles (ceil(E/lanes))
  double v_mem = 0.0;          ///< vector load/store/gather instructions
  double v_mem_cycles = 0.0;   ///< memory-port occupancy (gathers: 1 elem/cyc)
  double scalars = 0.0;        ///< scalar bookkeeping ops
  double scalar_mem = 0.0;     ///< scalar memory accesses (~1 line each)
  double l2_lines = 0.0;       ///< line touches serviced by L2
  double dram_lines = 0.0;     ///< line fills from DRAM

  Counts& operator+=(const Counts& o) {
    v_arith += o.v_arith;
    v_arith_cycles += o.v_arith_cycles;
    v_mem += o.v_mem;
    v_mem_cycles += o.v_mem_cycles;
    scalars += o.scalars;
    scalar_mem += o.scalar_mem;
    l2_lines += o.l2_lines;
    dram_lines += o.dram_lines;
    return *this;
  }
};

/// Machine parameters reduced to what the closed forms consume.
struct Mach {
  double vl;        // fp32 elements per vector
  double lanes;     // effective lanes
  double pipes;     // FMA pipes
  double width;     // issue width
  double sc;        // scalar_op_cycles
  double dispatch;  // per-vector-instruction dispatch overhead
  double startup;   // vector startup latency (s0 + s1*lanes)
  double line;      // cache line bytes
  double near_cap;  // capacity of the vector unit's nearest cache
  double l1_cap;
  double l2_cap;
  double l2_lat;
  double dram_lat;
  double dram_bpc;  // DRAM bytes per cycle
  double mlp;       // memory-level parallelism
  double window;    // in-flight window

  explicit Mach(const sim::MachineConfig& m)
      : vl(m.vlen_bits / 32.0),
        lanes(std::max(1u, m.effective_lanes())),
        pipes(std::max(1u, m.vector_pipes)),
        width(std::max(1u, m.issue_width)),
        sc(m.scalar_op_cycles),
        dispatch(m.vector_dispatch_cycles),
        startup(m.startup_base_cycles +
                m.startup_per_lane * m.effective_lanes()),
        line(m.l2.line_bytes),
        near_cap(m.vector_through_l1
                     ? static_cast<double>(m.l1.size_bytes)
                     : static_cast<double>(m.vector_cache_bytes)),
        l1_cap(m.l1.size_bytes),
        l2_cap(m.l2.size_bytes),
        l2_lat(m.l2.latency_cycles),
        dram_lat(m.dram_latency_cycles),
        dram_bpc(m.dram_bytes_per_cycle),
        mlp(std::max(1u, m.mem_level_parallelism)),
        window(std::max(1u, m.inflight_window)) {}

  [[nodiscard]] double occ(double elems) const {
    return std::max(1.0, std::ceil(elems / lanes));
  }
};

double cdiv(double a, double b) { return std::ceil(a / std::max(1.0, b)); }

/// Sum of f(panel_size) over the panels of a `total`-long dimension split
/// into `blk`-sized blocks (exact full+remainder decomposition, no loops).
template <typename F>
double panels(double total, double blk, F f) {
  const double full = std::floor(total / blk);
  const double rem = total - full * blk;
  return full * f(blk) + (rem > 0.0 ? f(rem) : 0.0);
}

/// Adds a sequential stream of `bytes_per_pass` read/written `passes` times
/// against a working set of `footprint` bytes. `cold` streams take their
/// first pass from DRAM (the estimators model one cold-cache call, like the
/// selector's simulation harness); subsequent passes — and every pass of a
/// just-produced (`cold == false`) stream — hit the level the footprint
/// fits. A footprint inside the near cache makes re-passes free.
void stream(Counts& c, const Mach& m, double bytes_per_pass, double passes,
            double footprint, bool cold = true) {
  if (bytes_per_pass <= 0.0 || passes <= 0.0) return;
  const double lines = bytes_per_pass / m.line;
  double warm_passes = passes;
  if (cold) {
    c.dram_lines += lines;
    warm_passes -= 1.0;
  }
  if (warm_passes <= 0.0) return;
  if (footprint <= 0.75 * m.near_cap) return;  // near-cache hits: ~free
  if (footprint <= 0.75 * m.l2_cap)
    c.l2_lines += lines * warm_passes;
  else
    c.dram_lines += lines * warm_passes;
}

/// Scalar-path variant: scalar accesses go through L1 on every machine.
void stream_scalar(Counts& c, const Mach& m, double bytes_per_pass,
                   double passes, double footprint, bool cold = true) {
  if (bytes_per_pass <= 0.0 || passes <= 0.0) return;
  const double lines = bytes_per_pass / m.line;
  double warm_passes = passes;
  if (cold) {
    c.dram_lines += lines;
    warm_passes -= 1.0;
  }
  if (warm_passes <= 0.0) return;
  if (footprint <= 0.75 * m.l1_cap) return;
  if (footprint <= 0.75 * m.l2_cap)
    c.l2_lines += lines * warm_passes;
  else
    c.dram_lines += lines * warm_passes;
}

/// Bottleneck composition of the tallies, mirroring the timing model: issue
/// serialization, FMA-pipe and memory-port occupancy (whichever binds),
/// plus exposed miss stalls bounded below by DRAM pin bandwidth.
double combine(const Counts& c, const Mach& m) {
  const double pipe =
      (c.v_arith_cycles + c.v_arith * m.dispatch) / m.pipes;
  const double mem_port = c.v_mem_cycles + c.v_mem * m.dispatch;
  const double issue = (c.v_arith + c.v_mem + c.scalars * m.sc +
                        c.scalar_mem) /
                       m.width;
  // Bounded in-flight window: completion latency limits how far issue can
  // run ahead (the mechanism behind the paper's startup-latency trade-off).
  const double window_floor =
      (c.v_arith + c.v_mem) * (m.startup + m.dispatch) / m.window;
  const double base = std::max({pipe, mem_port, issue, window_floor});
  const double dram_stall = std::max(c.dram_lines * m.line / m.dram_bpc,
                                     c.dram_lines * m.dram_lat / m.mlp);
  const double stall = c.l2_lines * m.l2_lat / m.mlp + dram_stall;
  return base + stall;
}

struct GemmDims {
  double M, N, K;
  double mc, nc, kc;
  double jn, kn, iblk;  // panel counts along N, K, M
  double sj;            // total vector strips across all N panels
  double sj_occ;        // their summed per-strip pipe occupancy
};

GemmDims gemm_dims(const dnn::ConvDesc& d, const gemm::Opt6Config& o6,
                   const Mach& m) {
  GemmDims g;
  g.M = d.gemm_m();
  g.N = d.gemm_n();
  g.K = d.gemm_k();
  g.mc = o6.blocks.block_m;
  g.nc = o6.blocks.block_n;
  g.kc = o6.blocks.block_k;
  g.jn = cdiv(g.N, g.nc);
  g.kn = cdiv(g.K, g.kc);
  g.iblk = cdiv(g.M, g.mc);
  g.sj = panels(g.N, g.nc, [&](double n) { return cdiv(n, m.vl); });
  g.sj_occ = panels(g.N, g.nc, [&](double n) {
    const double full = std::floor(n / m.vl);
    const double rem = n - full * m.vl;
    return full * m.occ(m.vl) + (rem > 0.0 ? m.occ(rem) : 0.0);
  });
  return g;
}

/// Bytes per packed-A element of a resident image format, plus the sparse
/// metadata allowance (bitmap + offsets per 4x16 block).
double packed_a_elem_bytes(Backend b, double density) {
  switch (b) {
    case Backend::Gemm6Bf16: return 2.0;
    case Backend::Gemm6Int8: return 1.0;
    case Backend::Gemm6Sparse: return 4.0 * density + 0.25;
    case Backend::Gemm6SparseBf16: return 2.0 * density + 0.25;
    default: return 4.0;
  }
}

/// im2col materialization (the non-fused backends' staging pass). 1x1/s1/p0
/// layers skip it (Darknet consumes the input directly).
void add_im2col(Counts& c, const Mach& m, const dnn::ConvDesc& d) {
  if (d.ksize == 1 && d.stride == 1 && d.pad == 0) return;
  const double kn = static_cast<double>(d.gemm_k()) * d.gemm_n();
  const double in_bytes =
      4.0 * d.in_c * d.in_h * d.in_w;
  c.v_mem += 2.0 * kn / m.vl;
  c.v_mem_cycles += 2.0 * (kn / m.vl) * m.occ(m.vl);
  c.scalars += 3.0 * kn / m.vl + (d.ksize > 1 ? kn / m.vl : 0.0);
  stream(c, m, in_bytes, std::max(1.0, 4.0 * kn / in_bytes), in_bytes, true);
  stream(c, m, 4.0 * kn, 1.0, 4.0 * kn, true);  // workspace first-touch write
}

/// Post-pass epilogue of the non-fused backends: bias/BN/activation sweeps
/// over the output map (plus the fill pass that zeroes C first).
void add_post_epilogue(Counts& c, const Mach& m, const dnn::ConvDesc& d) {
  const double out_elems = static_cast<double>(d.gemm_m()) * d.gemm_n();
  const double strips = out_elems / m.vl;
  c.v_mem += 6.0 * strips;  // fill store + 2.5 read/write post passes
  c.v_mem_cycles += 6.0 * strips * m.occ(m.vl);
  c.v_arith += 5.0 * strips;
  c.v_arith_cycles += 5.0 * strips * m.occ(m.vl);
  c.scalars += 3.0 * strips + 6.0 * d.gemm_m();
  c.scalar_mem += 4.0 * d.gemm_m();  // per-channel BN/bias parameter loads
  stream(c, m, 4.0 * out_elems, 5.0, 4.0 * out_elems, false);
}

/// The blocked 6-loop GEMM core (micro-kernel + B pack + optional A pack),
/// shared by Gemm6/FusedGemm6 and the quantized/sparse resident variants.
void add_gemm6_core(Counts& c, const Mach& m, const dnn::ConvDesc& d,
                    const gemm::Opt6Config& o6, Backend b, bool fused,
                    bool resident, double density) {
  const GemmDims g = gemm_dims(d, o6, m);
  const bool sparse = backend_sparse(b);
  const double dens = sparse ? density : 1.0;
  const double in_bytes = 4.0 * d.in_c * d.in_h * d.in_w;
  const bool direct_b = fused && d.ksize == 1 && d.stride == 1 && d.pad == 0;

  // Micro-kernel: per (j-strip, k, row): 1 B vload amortized over the
  // 16-row block, a scalar A load, bookkeeping and one vector FMA. Sparse
  // panels skip whole 4x16 blocks — density scales the FMA/A-load counts.
  const double fma = g.sj * g.K * g.M * dens;
  c.v_arith += fma;
  c.v_arith_cycles += g.sj_occ * g.K * g.M * dens;
  const double b_loads = g.sj * g.K * g.iblk * dens;
  const double c_stores = g.sj * g.M * g.kn;
  const double c_loads = g.sj * g.M * (fused ? g.kn - 1.0 : g.kn);
  const double avg_occ = g.sj_occ / std::max(1.0, g.sj);
  c.v_mem += b_loads + c_stores + c_loads;
  c.v_mem_cycles += (b_loads + c_stores + c_loads) * avg_occ;
  c.scalar_mem += fma;  // scalar A-element loads
  c.scalars += 1.3 * fma + 2.0 * g.sj * g.K * g.iblk + 3.0 * g.sj * g.iblk * g.kn;
  if (sparse) {
    // Bitmap/offset walk per (strip, 4-row block) + per-chunk bit tests.
    c.scalar_mem += 2.0 * g.sj * (g.M / 4.0) * g.kn;
    c.scalars += g.sj * (g.M / 4.0) * (2.0 + g.K / 16.0);
  }
  if (fused) {
    // In-kernel epilogue on the final k-panel stores + per-call channel
    // parameter staging.
    c.v_arith += 4.0 * g.sj * g.M;
    c.v_arith_cycles += 4.0 * g.sj_occ * g.M;
    c.scalar_mem += 5.0 * g.M;
    c.scalars += 4.0 * g.M;
  }

  // A-panel stream. Resident: the packed image is read jn times (once per
  // j1 panel) through the scalar path. Non-resident: the fp32 source
  // weights are read jn times by the pack stage and the just-packed 8 KB
  // buffer feeds the micro-kernel from L1 — the pack's instruction overhead
  // is what residency removes (accounted in the pack delta, not here).
  const double a_bytes = g.M * g.K * packed_a_elem_bytes(b, density);
  if (resident) {
    stream_scalar(c, m, a_bytes, g.jn, a_bytes, true);
  } else {
    stream_scalar(c, m, g.M * g.K * 4.0, g.jn, g.M * g.K * 4.0, true);
  }

  // B: pack stage + packed-panel micro-kernel reads (panel stays L2-hot).
  const double bn_bytes = 4.0 * g.K * g.N;
  if (direct_b) {
    // 1x1/s1/p0 fused path consumes the input as a dense B — no pack; the
    // micro-kernel streams it once per i-block.
    stream(c, m, bn_bytes, g.iblk, in_bytes, true);
  } else {
    c.v_mem += 2.0 * g.sj * g.K;
    c.v_mem_cycles += 2.0 * g.sj_occ * g.K;
    c.scalars += (fused ? 4.0 : 2.0) * g.sj * g.K;
    if (fused) {
      // Implicit-GEMM pack reads the input in place (k²/stride² overlap).
      stream(c, m, in_bytes, std::max(1.0, bn_bytes / in_bytes), in_bytes,
             true);
    } else {
      // Reads the im2col workspace (just written), writes the packed panel.
      stream(c, m, bn_bytes, 1.0, bn_bytes, false);
    }
    stream(c, m, bn_bytes, g.iblk,
           std::min(bn_bytes, g.kc * g.nc * 4.0), false);
  }

  // C traffic: stored per k panel, reloaded per subsequent panel.
  const double c_bytes = 4.0 * g.M * g.N;
  stream(c, m, c_bytes, std::max(1.0, 2.0 * g.kn - (fused ? 1.0 : 0.0)),
         c_bytes, true);
}

/// The hot-path A-pack work residency removes: vectorized row copies of the
/// whole weight matrix, repeated once per j1 panel.
Counts gemm6_pack_delta(const Mach& m, const dnn::ConvDesc& d,
                        const gemm::Opt6Config& o6) {
  Counts c;
  const GemmDims g = gemm_dims(d, o6, m);
  const double copies = g.jn * g.M * panels(g.K, g.kc, [&](double k) {
    return cdiv(k, m.vl);
  });
  c.v_mem += 2.0 * copies;
  c.v_mem_cycles += 2.0 * copies * m.occ(m.vl);
  c.scalars += 2.0 * copies + 2.0 * g.jn * g.M * g.kn;
  // Packed destination lives in a small reused buffer (near-cache); the
  // source-weight stream itself is charged identically on both sides and
  // cancels out of the delta.
  return c;
}

void add_gemm3(Counts& c, const Mach& m, const dnn::ConvDesc& d) {
  const double M = d.gemm_m(), N = d.gemm_n(), K = d.gemm_k();
  const double s3 = cdiv(N, m.vl);
  const double i16 = cdiv(M, 16.0);
  const double fma = s3 * K * M;
  c.v_arith += fma;
  c.v_arith_cycles += fma * m.occ(std::min(m.vl, N));
  const double b_loads = s3 * K * i16;
  const double c_rw = 2.0 * s3 * M;
  c.v_mem += b_loads + c_rw;
  c.v_mem_cycles += (b_loads + c_rw) * m.occ(std::min(m.vl, N));
  c.scalar_mem += fma;
  c.scalars += 1.2 * fma + 2.0 * s3 * K * i16 + 3.0 * s3 * i16;
  // No cache blocking: the whole im2col B re-streams once per 16-row block
  // and A re-streams (scalar path) once per strip.
  const bool direct_b = d.ksize == 1 && d.stride == 1 && d.pad == 0;
  stream(c, m, 4.0 * K * N, i16, 4.0 * K * N, direct_b);
  stream_scalar(c, m, 4.0 * M * K, s3, 4.0 * M * K, true);
  stream(c, m, 4.0 * M * N, 2.0, 4.0 * M * N, true);
}

void add_naive(Counts& c, const Mach& m, const dnn::ConvDesc& d) {
  const double macs =
      static_cast<double>(d.gemm_m()) * d.gemm_n() * d.gemm_k();
  c.scalars += 3.0 * macs;
  c.scalar_mem += 2.0 * macs;
  stream_scalar(c, m, 4.0 * d.gemm_k() * d.gemm_n(), d.gemm_m(),
                4.0 * d.gemm_k() * d.gemm_n(), true);
}

void add_winograd(Counts& c, const Mach& m, const dnn::ConvDesc& d,
                  bool fused) {
  const double tiles_x = cdiv(d.out_w(), 6.0);
  const double tiles_y = cdiv(d.out_h(), 6.0);
  const double tiles = tiles_x * tiles_y;
  const double in_c = d.in_c, out_c = d.out_c;
  const double g = std::max(1.0, m.vl / 4.0);  // channels per transform group
  const double icg = cdiv(in_c, g), ocg = cdiv(out_c, g);
  const double vec_e = std::min(m.vl, 64.0);
  const double ne = cdiv(64.0, vec_e);
  const double interior =
      std::max(0.0, tiles_x - 2.0) * std::max(0.0, tiles_y - 2.0);
  const double edge = tiles - interior;
  const double in_bytes = 4.0 * in_c * d.in_h * d.in_w;
  const double out_bytes = 4.0 * out_c * d.out_h() * d.out_w();

  // Input transform: ~16 MACs per tile element (two 8x8 half-sparse
  // passes), gather-packed for interior tiles, scalar-packed on edges.
  c.v_arith += tiles * in_c * 1024.0 / m.vl;
  c.v_arith_cycles += tiles * in_c * (1024.0 / m.vl) * m.occ(m.vl);
  c.v_mem += interior * icg * 64.0;
  c.v_mem_cycles += interior * icg * (32.0 * m.vl + 32.0 * m.occ(m.vl));
  c.scalars += edge * in_c * 128.0 + tiles * icg * 40.0;
  c.scalar_mem += edge * in_c * 8.0;

  // Tuple GEMM over the 64 tile elements (register-unrolled over 8 tiles).
  const double fma_w = out_c * in_c * tiles * ne;
  c.v_arith += fma_w;
  c.v_arith_cycles += fma_w * m.occ(vec_e);
  c.v_mem += fma_w * 9.0 / 8.0 + out_c * tiles * ne;
  c.v_mem_cycles += (fma_w * 9.0 / 8.0 + out_c * tiles * ne) * m.occ(vec_e);
  c.scalars += 0.3 * fma_w + out_c * in_c * cdiv(tiles, 8.0) * ne * 2.0;

  // Output transform: ~12 MACs per tile element, subsample + stores.
  c.v_arith += tiles * out_c * 768.0 / m.vl + (fused ? tiles * ocg * 8.0 : 0.0);
  c.v_arith_cycles += tiles * out_c * (768.0 / m.vl) * m.occ(m.vl);
  c.v_mem += tiles * ocg * 48.0;
  c.v_mem_cycles += tiles * ocg * (16.0 * m.vl + 32.0 * m.occ(m.vl));
  c.scalars += tiles * ocg * 40.0;

  // Streams: transformed weights U re-stream once per 16-tile block; the V
  // panel of a tile block stays L2-resident across the output-channel loop.
  const double u_bytes = out_c * in_c * 256.0;
  const double v_bytes = in_c * tiles * 256.0;
  const double m_bytes = out_c * tiles * 256.0;
  const double ntb = cdiv(tiles, 16.0);
  stream(c, m, u_bytes, ntb, u_bytes, true);
  stream(c, m, v_bytes, 1.0, v_bytes, true);                      // V write
  stream(c, m, v_bytes, out_c, in_c * 16.0 * 256.0, false);       // V reads
  stream(c, m, m_bytes, 2.0, m_bytes, true);                      // M w + r
  stream(c, m, in_bytes, 64.0 / 36.0, in_bytes, true);
  stream(c, m, out_bytes, 1.0, out_bytes, true);
}

void add_direct(Counts& c, const Mach& m, const dnn::ConvDesc& d) {
  const double ow = d.out_w(), oh = d.out_h();
  const double k2 = static_cast<double>(d.ksize) * d.ksize;
  const double so = cdiv(ow, m.vl);
  const double avg_e = ow / so;
  const double fma = d.out_c * d.in_c * k2 * oh * so;
  c.v_arith += fma;
  c.v_arith_cycles += fma * m.occ(avg_e);
  const double acc_rw = 2.0 * d.out_c * oh * so;
  c.v_mem += fma + acc_rw;  // one input vload per FMA + acc load/store
  // Strided input rows (stride > 1) gather one element per cycle.
  c.v_mem_cycles +=
      fma * (d.stride > 1 ? avg_e : m.occ(avg_e)) + acc_rw * m.occ(avg_e);
  c.scalar_mem += fma;  // per-(ky,kx) weight loads
  const double boundary =
      d.ksize > 1 ? std::min(1.0, (d.ksize - 1.0) / oh) +
                        0.5 * std::min(1.0, 2.0 / so)
                  : 0.0;
  c.scalars += 0.4 * fma + 2.0 * avg_e * fma * boundary +
               d.out_c * oh * (4.0 + 2.0 * so);
  const double in_bytes = 4.0 * d.in_c * d.in_h * d.in_w;
  stream(c, m, in_bytes, d.out_c * k2 / (d.stride * d.stride), in_bytes,
         true);
  stream_scalar(c, m, 4.0 * d.weight_count(), 1.0, 4.0 * d.weight_count(),
                true);
  stream(c, m, 4.0 * d.out_c * oh * ow, 2.0, 4.0 * d.out_c * oh * ow, true);
}

}  // namespace

CostModel::CostModel(const sim::MachineConfig& machine,
                     const gemm::Opt6Config& opt6)
    : machine_(machine), opt6_(opt6) {
  scales_.fill(0.0);  // 0 = unfitted; scale() resolves the fallback chain
  for (auto& per_backend : bucket_scales_) per_backend.fill(0.0);
}

std::size_t CostModel::shape_bucket(const dnn::ConvDesc& d) {
  return (d.ksize > 1 ? 4u : 0u) | (d.stride > 1 ? 2u : 0u) |
         (conv_weight_bound(d) ? 1u : 0u);
}

CostEstimate CostModel::estimate(Backend b, const dnn::ConvDesc& d,
                                 bool weight_resident,
                                 int sparsity_pm) const {
  const Mach m(machine_);
  const double density =
      std::clamp(static_cast<double>(sparsity_pm) / 1000.0, 0.001, 1.0);
  Counts warm;
  CostEstimate est;

  switch (b) {
    case Backend::Naive:
      add_im2col(warm, m, d);
      add_naive(warm, m, d);
      add_post_epilogue(warm, m, d);
      break;
    case Backend::Gemm3:
      add_im2col(warm, m, d);
      add_gemm3(warm, m, d);
      add_post_epilogue(warm, m, d);
      break;
    case Backend::Gemm6:
      add_im2col(warm, m, d);
      add_gemm6_core(warm, m, d, opt6_, b, /*fused=*/false, weight_resident,
                     density);
      add_post_epilogue(warm, m, d);
      break;
    case Backend::FusedGemm6:
    case Backend::Gemm6Bf16:
    case Backend::Gemm6Int8:
    case Backend::Gemm6Sparse:
    case Backend::Gemm6SparseBf16:
      add_gemm6_core(warm, m, d, opt6_, b, /*fused=*/true, weight_resident,
                     density);
      break;
    case Backend::Winograd:
      add_winograd(warm, m, d, /*fused=*/false);
      add_post_epilogue(warm, m, d);
      break;
    case Backend::FusedWinograd:
      add_winograd(warm, m, d, /*fused=*/true);
      break;
    case Backend::Direct:
      add_direct(warm, m, d);
      add_post_epilogue(warm, m, d);
      break;
  }

  double pack_inline = 0.0;
  if (backend_gemm6_family(b) && opt6_.pack_a) {
    // The pack is its own serial sweep before the GEMM (the simulator runs
    // it as a separate loop, never overlapped with the kernel), so it is
    // combined on its own rather than folded into the kernel's bottleneck
    // max — there it would vanish under a pipe-bound kernel.
    const Counts pack = gemm6_pack_delta(m, d, opt6_);
    if (weight_resident) {
      // Steady state skips the pack; the delta is the amortizable one-time
      // cost (same convention as the selector's simulated warm/cold pair).
      est.pack_cycles = combine(pack, m);
    } else {
      pack_inline = combine(pack, m);  // non-resident calls pay it per call
    }
  }

  est.warm_cycles = combine(warm, m) + pack_inline;
  est.dram_bytes = warm.dram_lines * m.line;
  return est;
}

std::uint64_t CostModel::cycles(Backend b, const dnn::ConvDesc& d,
                                bool weight_resident, int batch,
                                int sparsity_pm) const {
  const CostEstimate est = estimate(b, d, weight_resident, sparsity_pm);
  const double priced =
      est.warm_cycles +
      pack_scale_ * est.pack_cycles / static_cast<double>(batch < 1 ? 1 : batch);
  const double scaled = scale_for(b, d) * priced;
  return static_cast<std::uint64_t>(std::llround(std::max(1.0, scaled)));
}

double CostModel::scale(Backend b) const {
  const double own = scales_[static_cast<std::size_t>(b)];
  if (own > 0.0) return own;
  // Quantized/sparse kinds run the FusedGemm6 kernel over a different
  // resident image: inherit its fitted scale when not fitted directly.
  if (backend_quantized(b) || backend_sparse(b)) {
    const double fused =
        scales_[static_cast<std::size_t>(Backend::FusedGemm6)];
    if (fused > 0.0) return fused;
  }
  return 1.0;
}

void CostModel::set_scale(Backend b, double s) {
  scales_[static_cast<std::size_t>(b)] = s;
}

double CostModel::scale_for(Backend b, const dnn::ConvDesc& d) const {
  const std::size_t bucket = shape_bucket(d);
  const double own = bucket_scales_[static_cast<std::size_t>(b)][bucket];
  if (own > 0.0) return own;
  if (backend_quantized(b) || backend_sparse(b)) {
    // Same kernel as FusedGemm6 over a different resident image: inherit
    // its bucket fit before falling back to the global chain.
    const double fused =
        bucket_scales_[static_cast<std::size_t>(Backend::FusedGemm6)][bucket];
    if (fused > 0.0) return fused;
  }
  return scale(b);
}

namespace {

constexpr Backend kCalibrationCandidates[] = {
    Backend::Gemm3,    Backend::Gemm6,         Backend::FusedGemm6,
    Backend::Winograd, Backend::FusedWinograd, Backend::Direct,
};

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += std::log(std::max(1e-12, x));
  return std::exp(acc / static_cast<double>(v.size()));
}

/// Per-(backend, bucket) and per-backend-global ratio accumulator shared by
/// the two calibration paths.
struct RatioFit {
  std::array<std::vector<double>, kBackendCount> global;
  std::array<std::array<std::vector<double>, CostModel::kBuckets>,
             kBackendCount>
      bucket;

  void add(Backend b, std::size_t bkt, double ratio) {
    global[static_cast<std::size_t>(b)].push_back(ratio);
    bucket[static_cast<std::size_t>(b)][bkt].push_back(ratio);
  }
};

/// Writes the fitted geomeans into the model's scale tables (only buckets /
/// backends that actually saw ratios; the rest keep their fallback chain).
///
/// Winograd and FusedWinograd share one pooled fit: the two kernels differ
/// only in how the epilogue is applied, so fitting them independently lets
/// per-shape noise invert their ~2% structural gap and flip the intra-family
/// winner. Pooling keeps the family's level right while the structural
/// fused-saves-the-post-passes delta decides the order.
void adopt_fit(
    RatioFit fit, std::array<double, kBackendCount>& scales,
    std::array<std::array<double, CostModel::kBuckets>, kBackendCount>&
        bucket_scales) {
  const auto wi = static_cast<std::size_t>(Backend::Winograd);
  const auto fwi = static_cast<std::size_t>(Backend::FusedWinograd);
  const auto pool = [](std::vector<double>& a, std::vector<double>& b) {
    a.insert(a.end(), b.begin(), b.end());
    b = a;
  };
  pool(fit.global[wi], fit.global[fwi]);
  for (std::size_t k = 0; k < CostModel::kBuckets; ++k)
    pool(fit.bucket[wi][k], fit.bucket[fwi][k]);
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    const double s = geomean(fit.global[i]);
    if (s > 0.0) scales[i] = s;
    for (std::size_t k = 0; k < CostModel::kBuckets; ++k) {
      const double bs = geomean(fit.bucket[i][k]);
      if (bs > 0.0) bucket_scales[i][k] = bs;
    }
  }
}

}  // namespace

void CostModel::calibrate(const std::vector<dnn::ConvDesc>& shapes,
                          std::uint64_t input_seed) {
  RatioFit fit;
  std::vector<double> pack_ratios;
  pack_scale_ = 1.0;
  for (const dnn::ConvDesc& d : shapes) {
    const bool weight_bound = conv_weight_bound(d);
    const std::size_t bkt = shape_bucket(d);
    for (Backend b : kCalibrationCandidates) {
      if (!backend_eligible(b, d)) continue;
      if (b == Backend::FusedGemm6 && !opt6_.pack_b) continue;
      const bool resident = weight_bound && backend_gemm6_family(b) &&
                            opt6_.pack_a;
      if (resident) {
        const std::uint64_t warm = simulate_backend_cycles(
            b, d, machine_, opt6_, input_seed, /*weight_resident=*/true);
        const std::uint64_t cold = simulate_backend_cycles(
            b, d, machine_, opt6_, input_seed, /*weight_resident=*/false);
        const CostEstimate est = estimate(b, d, /*weight_resident=*/true);
        if (est.warm_cycles > 0.0)
          fit.add(b, bkt, static_cast<double>(warm) / est.warm_cycles);
        const std::uint64_t pack = cold > warm ? cold - warm : 0;
        if (pack > 0 && est.pack_cycles > 0.0)
          pack_ratios.push_back(static_cast<double>(pack) / est.pack_cycles);
      } else {
        const std::uint64_t sim = simulate_backend_cycles(
            b, d, machine_, opt6_, input_seed, /*weight_resident=*/false);
        const CostEstimate est = estimate(b, d, /*weight_resident=*/false);
        if (est.warm_cycles > 0.0)
          fit.add(b, bkt, static_cast<double>(sim) / est.warm_cycles);
      }
    }
  }
  adopt_fit(fit, scales_, bucket_scales_);
  const double ps = geomean(pack_ratios);
  if (ps > 0.0) pack_scale_ = ps;
}

void CostModel::calibrate_from(const dnn::Network& net,
                               const BackendPlan& plan) {
  RatioFit fit;
  const int batch = std::max(1, plan.priced_batch);
  std::set<std::uint64_t> seen;
  for (const PlanEntry& e : plan.entries) {
    if (e.layer_index < 0 ||
        static_cast<std::size_t>(e.layer_index) >= net.num_layers())
      continue;
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(
        &net.layer(static_cast<std::size_t>(e.layer_index)));
    if (conv == nullptr) continue;
    const dnn::ConvDesc& d = conv->desc();
    if (!seen.insert(conv_shape_key(d)).second) continue;
    const bool weight_bound = conv_weight_bound(d);
    const std::size_t bkt = shape_bucket(d);
    for (const auto& [b, cycles] : e.candidates) {
      if (cycles == 0) continue;
      const bool resident = weight_bound && backend_gemm6_family(b) &&
                            opt6_.pack_a;
      const CostEstimate est = estimate(b, d, resident, plan.sparsity_pm);
      const double denom = est.priced(batch);
      if (denom > 0.0)
        fit.add(b, bkt, static_cast<double>(cycles) / denom);
    }
  }
  adopt_fit(fit, scales_, bucket_scales_);
}

CostModel CostModel::calibrated(const sim::MachineConfig& machine,
                                const gemm::Opt6Config& opt6,
                                const std::vector<dnn::ConvDesc>& shapes,
                                std::uint64_t input_seed) {
  CostModel model(machine, opt6);
  model.calibrate(shapes, input_seed);
  return model;
}

std::vector<dnn::ConvDesc> CostModel::paper_layer_set() {
  // The paper's VGG16 + YOLOv3 convolution shapes, deduplicated by shape
  // key, at the reduced test-scale resolutions the repo's selector suites
  // use (the shape MIX — kernel sizes, strides, channel ramps — is what
  // drives backend choice; full-resolution simulation belongs offline).
  std::vector<dnn::ConvDesc> shapes;
  std::set<std::uint64_t> seen;
  const auto harvest = [&](const dnn::Network& net) {
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
      if (conv == nullptr) continue;
      if (seen.insert(conv_shape_key(conv->desc())).second)
        shapes.push_back(conv->desc());
    }
  };
  harvest(*dnn::build_vgg16(64));
  harvest(*dnn::build_yolov3(96, 24));
  return shapes;
}

}  // namespace vlacnn::core

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/backend_plan.hpp"
#include "dnn/conv_desc.hpp"
#include "gemm/gemm_opt6.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::dnn {
class Network;
}  // namespace vlacnn::dnn

namespace vlacnn::core {

/// How select_per_layer prices candidate backends.
enum class CostSource {
  /// Full cache/timing simulation per (shape, backend) — the reference
  /// path. Seconds per network; use offline.
  Simulated,
  /// Closed-form CostModel estimators calibrated against the simulator —
  /// microseconds per network; the online re-planning path.
  Analytic,
};

/// Number of Backend enum values (kept next to the estimator that must
/// cover every one of them).
inline constexpr std::size_t kBackendCount =
    static_cast<std::size_t>(Backend::Gemm6SparseBf16) + 1;

/// Observability counters of one plan-selection / re-planning pass:
/// shape-memo effectiveness (satellite of the long-standing "accumulated
/// but never reported" gap), the wall-clock cost of computing the plan, and
/// which backend won how many layer entries.
struct SelectorStats {
  std::uint64_t memo_hits = 0;    ///< layer entries served from the memo
  std::uint64_t memo_misses = 0;  ///< shapes priced from scratch
  std::uint64_t plan_compute_us = 0;  ///< wall-clock µs of the whole pass
  std::array<std::uint64_t, kBackendCount> wins{};  ///< entries per backend

  [[nodiscard]] std::uint64_t win_count(Backend b) const {
    return wins[static_cast<std::size_t>(b)];
  }
};

/// One analytic cost estimate, split the same way the selector prices
/// simulated candidates: a steady-state per-call term plus a one-time
/// packing delta amortized over the micro-batch (PR 5's
/// `cycles = warm + pack/batch` formula).
struct CostEstimate {
  double warm_cycles = 0.0;  ///< steady-state per-call cycles
  double pack_cycles = 0.0;  ///< one-time A-pack delta (cold - warm); 0 for
                             ///< non-resident pricing
  double dram_bytes = 0.0;   ///< estimated cold-call DRAM traffic

  [[nodiscard]] double priced(int batch) const {
    return warm_cycles + pack_cycles / static_cast<double>(batch < 1 ? 1 : batch);
  }
};

/// Closed-form per-backend cycle estimators over (conv dims, vector length,
/// cache blocking, density/precision) — the poplibs
/// `PerformanceEstimation.hpp` idiom: small per-kernel formulas that mirror
/// each kernel's loop structure (instruction mix, pipe occupancy, stream
/// traffic classified against the cache capacities) instead of simulating
/// it. A handful of per-backend scale constants, fitted once against the
/// simulator on the paper's layer set (`calibrate` / `calibrated_from`),
/// absorb the systematic bias of the closed forms; the structural terms
/// carry the shape dependence, so the calibrated model picks the same
/// per-layer winner as the simulator while pricing a whole network in
/// microseconds.
///
/// The estimators model one cold-cache forward call — exactly what
/// `select_per_layer`'s simulation harness measures — so calibrated cycles
/// are directly comparable with simulated PlanEntry candidates.
class CostModel {
 public:
  CostModel(const sim::MachineConfig& machine, const gemm::Opt6Config& opt6);

  /// Structural (uncalibrated) estimate for `b` on shape `d`.
  /// `weight_resident` prices the Gemm6-family steady state without the
  /// hot-path A-pack stage and reports the pack delta separately; for
  /// non-resident pricing the pack cost is folded into warm_cycles and
  /// pack_cycles is 0. `sparsity_pm` is the block-prune density (per
  /// mille) of the sparse kinds.
  [[nodiscard]] CostEstimate estimate(Backend b, const dnn::ConvDesc& d,
                                      bool weight_resident,
                                      int sparsity_pm = 1000) const;

  /// Calibrated price of one candidate, in simulator-comparable cycles:
  /// `scale(b) * (warm + pack_scale * pack / batch)`, rounded. This is the
  /// quantity the analytic selector ranks.
  [[nodiscard]] std::uint64_t cycles(Backend b, const dnn::ConvDesc& d,
                                     bool weight_resident, int batch,
                                     int sparsity_pm = 1000) const;

  /// Calibration buckets: per-kernel constants are fitted per (backend,
  /// shape class) rather than per backend alone — a 1x1 GEMM and a 3x3
  /// implicit-GEMM exercise different code paths of the same kernel with
  /// systematically different structural bias, and the winner margins the
  /// argmax gate must preserve are small. The class axes are exactly the
  /// ones the paper names as driving algorithm choice (kernel size and
  /// stride, §VII-A) plus weight-boundedness (which flips the pricing
  /// formula). 8 buckets x backends is still a handful of constants, not a
  /// lookup table: every bucket covers an open family of shapes.
  static constexpr std::size_t kBuckets = 8;
  [[nodiscard]] static std::size_t shape_bucket(const dnn::ConvDesc& d);

  [[nodiscard]] double scale(Backend b) const;
  void set_scale(Backend b, double s);
  /// Scale used for backend `b` on shape `d`: the (backend, bucket) fit
  /// when calibration covered that class, else the backend-global fit,
  /// else the FusedGemm6 chain for quantized/sparse kinds, else 1.
  [[nodiscard]] double scale_for(Backend b, const dnn::ConvDesc& d) const;
  [[nodiscard]] double pack_scale() const { return pack_scale_; }
  void set_pack_scale(double s) { pack_scale_ = s; }

  /// One-shot calibration pass: runs the simulator on every eligible fp32
  /// candidate of every shape (deduplicated) and fits the per-backend scale
  /// constants as the geometric mean of simulated/structural ratios.
  /// Weight-bound shapes fit the resident warm term and the pack delta
  /// separately, mirroring the selector's pricing. Quantized/sparse kinds
  /// run the same fused kernel as FusedGemm6 and inherit its scale.
  /// Simulator-seconds; do once, then price forever.
  void calibrate(const std::vector<dnn::ConvDesc>& shapes,
                 std::uint64_t input_seed = 7);

  /// Fits the scales from an already-simulated plan's candidate tables
  /// (priced at `plan.priced_batch`) instead of re-running the simulator —
  /// free calibration for a server that already selected its plan offline.
  /// `net` supplies the ConvDesc for each entry's layer_index.
  void calibrate_from(const dnn::Network& net, const BackendPlan& plan);

  /// Convenience: construct + calibrate against the simulator on `shapes`.
  [[nodiscard]] static CostModel calibrated(
      const sim::MachineConfig& machine, const gemm::Opt6Config& opt6,
      const std::vector<dnn::ConvDesc>& shapes, std::uint64_t input_seed = 7);

  /// The paper's VGG16 + YOLOv3 conv layer set (deduplicated by shape key)
  /// — the calibration and CI agreement-gate shape set.
  [[nodiscard]] static std::vector<dnn::ConvDesc> paper_layer_set();

  [[nodiscard]] const sim::MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const gemm::Opt6Config& opt6() const { return opt6_; }

 private:
  sim::MachineConfig machine_;
  gemm::Opt6Config opt6_;
  std::array<double, kBackendCount> scales_;                   // global fits
  std::array<std::array<double, kBuckets>, kBackendCount> bucket_scales_;
  double pack_scale_ = 1.0;
};

}  // namespace vlacnn::core

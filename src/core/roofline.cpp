#include "core/roofline.hpp"

#include <algorithm>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

namespace {
/// Paper Table IV rows: conv-ordinal label, M (filters), K (k·k·c), and the
/// downsampling factor of the layer's feature map relative to the input.
struct Table4Row {
  const char* label;
  int m, k, downsample;
};
constexpr Table4Row kTable4[] = {
    {"L1", 32, 27, 1},     {"L2", 64, 288, 2},    {"L3", 32, 64, 2},
    {"L5", 128, 576, 4},   {"L6", 64, 128, 4},    {"L10", 256, 1152, 8},
    {"L11", 128, 256, 8},  {"L38", 256, 512, 16}, {"L44", 1024, 4608, 32},
    {"L45", 512, 1024, 32},{"L59", 255, 1024, 32},{"L61", 256, 768, 16},
    {"L62", 512, 2304, 16},{"L75", 255, 256, 8},
};
}  // namespace

std::vector<dnn::ConvDesc> table4_layers(int input_hw) {
  std::vector<dnn::ConvDesc> out;
  for (const auto& row : kTable4) {
    dnn::ConvDesc d;
    const int spatial = input_hw / row.downsample;
    const bool is3x3 = row.k % 9 == 0 && row.k / 9 > 2;  // K = 9c vs K = c
    d.ksize = is3x3 ? 3 : 1;
    d.pad = is3x3 ? 1 : 0;
    d.stride = 1;
    d.in_c = row.k / (d.ksize * d.ksize);
    d.in_h = d.in_w = spatial;
    d.out_c = row.m;
    out.push_back(d);
  }
  return out;
}

std::vector<std::string> table4_labels() {
  std::vector<std::string> labels;
  for (const auto& row : kTable4) labels.emplace_back(row.label);
  return labels;
}

std::vector<RooflineEntry> run_roofline(const sim::MachineConfig& machine,
                                        const EnginePolicy& policy,
                                        int input_hw, int n_scale) {
  std::vector<RooflineEntry> out;
  const auto descs = table4_layers(input_hw);
  const auto labels = table4_labels();
  const double peak = machine.peak_gflops();

  for (std::size_t i = 0; i < descs.size(); ++i) {
    const dnn::ConvDesc& d = descs[i];
    const int m = d.gemm_m(), k = d.gemm_k();
    const int n_full = d.gemm_n();
    const int n = std::max(machine.elements_per_vreg() * 2u,
                           static_cast<unsigned>(n_full / std::max(1, n_scale)));

    // Isolated GEMM of this layer's shape through the simulated machine.
    AlignedBuffer<float> a(static_cast<std::size_t>(m) * k);
    AlignedBuffer<float> b(static_cast<std::size_t>(k) * n);
    AlignedBuffer<float> c(static_cast<std::size_t>(m) * n, 0.0f);
    Rng rng(17 + i);
    for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
    for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
    sim::RegisteredRange ra(a.data(), a.size() * sizeof(float));
    sim::RegisteredRange rb(b.data(), b.size() * sizeof(float));
    sim::RegisteredRange rc(c.data(), c.size() * sizeof(float));

    sim::SimContext sctx(machine);
    vla::VectorEngine eng(sctx);
    auto fn = gemm::make_gemm_fn(policy.gemm_variant, policy.opt3, policy.opt6);
    fn(eng, m, n, k, 1.0f, a.data(), k, b.data(), n, c.data(), n);

    RooflineEntry e;
    e.label = labels[i];
    e.m = m;
    e.n = n_full;
    e.k = k;
    e.arithmetic_intensity = d.arithmetic_intensity();
    const double secs = sctx.seconds();
    const double flops = 2.0 * m * static_cast<double>(n) * k;
    e.gflops = secs > 0 ? flops / secs / 1e9 : 0.0;
    e.pct_of_peak = peak > 0 ? 100.0 * e.gflops / peak : 0.0;
    out.push_back(e);
  }
  return out;
}

}  // namespace vlacnn::core

#pragma once

#include <string>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/conv_desc.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::core {

/// One row of the paper's Table IV: a discrete YOLOv3 convolutional layer
/// with its GEMM dimensions, arithmetic intensity, and sustained fraction
/// of single-core peak.
struct RooflineEntry {
  std::string label;  // paper numbering: L1, L2, L3, L5, ...
  int m = 0, n = 0, k = 0;
  double arithmetic_intensity = 0.0;
  double gflops = 0.0;
  double pct_of_peak = 0.0;
};

/// The 14 discrete (unique-shape) YOLOv3 convolutional layers of Table IV,
/// with the paper's conv-ordinal labels, at the given input resolution
/// (608 reproduces the paper's N values exactly).
std::vector<dnn::ConvDesc> table4_layers(int input_hw = 608);
std::vector<std::string> table4_labels();

/// Runs each layer's GEMM on the simulated machine and fills in measured
/// sustained performance. `n_scale` divides the GEMM N dimension to bound
/// simulation time (AI is always reported for the full-resolution shape).
std::vector<RooflineEntry> run_roofline(const sim::MachineConfig& machine,
                                        const EnginePolicy& policy,
                                        int input_hw = 608, int n_scale = 16);

}  // namespace vlacnn::core

#include "core/selector.hpp"

#include <limits>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "dnn/direct_conv.hpp"
#include "dnn/im2col.hpp"
#include "dnn/kernels.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

const char* to_string(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::Im2colGemm3: return "im2col+gemm3";
    case ConvAlgo::Im2colGemm6: return "im2col+gemm6";
    case ConvAlgo::Winograd: return "winograd";
    case ConvAlgo::Direct: return "direct";
  }
  return "?";
}

namespace {

/// Shape key for matching plan entries to layers at execution time.
std::uint64_t desc_key(const dnn::ConvDesc& d) {
  std::uint64_t k = 1469598103934665603ull;
  for (int v : {d.in_c, d.in_h, d.in_w, d.out_c, d.ksize, d.stride, d.pad}) {
    k ^= static_cast<std::uint64_t>(v);
    k *= 1099511628211ull;
  }
  return k;
}

/// Scratch bundle for one isolated-layer simulation.
struct LayerBench {
  AlignedBuffer<float> input, weights, output, workspace;
  sim::RegisteredRange ri, rw, ro, rs;

  explicit LayerBench(const dnn::ConvDesc& d) {
    Rng rng(desc_key(d));
    input.resize(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w);
    for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(d.weight_count()));
    for (auto& v : weights) v = rng.uniform(-0.5f, 0.5f);
    output.resize(static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w());
    workspace.resize(static_cast<std::size_t>(d.gemm_k()) * d.gemm_n());
    ri = sim::RegisteredRange(input.data(), input.size() * 4);
    rw = sim::RegisteredRange(weights.data(), weights.size() * 4);
    ro = sim::RegisteredRange(output.data(), output.size() * 4);
    rs = sim::RegisteredRange(workspace.data(), workspace.size() * 4);
  }
};

void run_algo(ConvAlgo algo, vla::VectorEngine& eng, const dnn::ConvDesc& d,
              const float* input, const float* weights, float* output,
              float* workspace, winograd::WinogradConv& wino,
              gemm::Gemm6& gemm6) {
  switch (algo) {
    case ConvAlgo::Winograd:
      wino.run(eng, d, input, weights, output);
      return;
    case ConvAlgo::Direct:
      dnn::fill_cpu(eng, static_cast<std::size_t>(d.out_c) * d.out_h() *
                             d.out_w(),
                    0.0f, output);
      dnn::direct_conv_vla(eng, d, input, weights, output);
      return;
    case ConvAlgo::Im2colGemm3:
    case ConvAlgo::Im2colGemm6: {
      dnn::fill_cpu(eng, static_cast<std::size_t>(d.out_c) * d.out_h() *
                             d.out_w(),
                    0.0f, output);
      const float* b = input;
      if (!(d.ksize == 1 && d.stride == 1 && d.pad == 0)) {
        dnn::im2col_vla(eng, d, input, workspace);
        b = workspace;
      }
      if (algo == ConvAlgo::Im2colGemm3)
        gemm::gemm_opt3_default(eng, d.gemm_m(), d.gemm_n(), d.gemm_k(), 1.0f,
                                weights, d.gemm_k(), b, d.gemm_n(), output,
                                d.gemm_n());
      else
        gemm6(eng, d.gemm_m(), d.gemm_n(), d.gemm_k(), 1.0f, weights,
              d.gemm_k(), b, d.gemm_n(), output, d.gemm_n());
      return;
    }
  }
}

bool eligible(ConvAlgo algo, const dnn::ConvDesc& d) {
  if (algo == ConvAlgo::Winograd) return winograd::WinogradConv::supports(d);
  return true;
}

}  // namespace

std::vector<LayerChoice> select_per_layer(dnn::Network& net,
                                          const sim::MachineConfig& machine,
                                          std::uint64_t /*input_seed*/) {
  std::vector<LayerChoice> plan;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    const dnn::ConvDesc& d = conv->desc();

    LayerChoice choice;
    choice.layer_index = static_cast<int>(i);
    choice.layer_name = conv->name();
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();

    for (ConvAlgo algo : {ConvAlgo::Im2colGemm3, ConvAlgo::Im2colGemm6,
                          ConvAlgo::Winograd, ConvAlgo::Direct}) {
      if (!eligible(algo, d)) continue;
      LayerBench bench(d);
      sim::SimContext sctx(machine);
      vla::VectorEngine eng(sctx);
      winograd::WinogradConv wino;
      gemm::Opt6Config o6;
      o6.blocks = gemm::tune_block_sizes(machine);
      gemm::Gemm6 gemm6(o6);
      run_algo(algo, eng, d, bench.input.data(), bench.weights.data(),
               bench.output.data(), bench.workspace.data(), wino, gemm6);
      const std::uint64_t cycles = sctx.cycles();
      choice.candidates.emplace_back(algo, cycles);
      if (cycles < best) {
        best = cycles;
        choice.algo = algo;
        choice.cycles = cycles;
      }
    }
    plan.push_back(std::move(choice));
  }
  return plan;
}

void apply_plan(const std::vector<LayerChoice>& plan,
                ConvolutionEngine& engine, dnn::ExecContext& ctx) {
  auto algo_by_shape = std::make_shared<std::map<std::uint64_t, ConvAlgo>>();
  // Later layers win on shape collisions; identical shapes get identical
  // choices anyway because the candidate simulations are deterministic.
  struct State {
    winograd::WinogradConv wino;
    std::unique_ptr<gemm::Gemm6> gemm6;
    AlignedBuffer<float> workspace;
    sim::RegisteredRange ws_reg;
  };
  auto state = std::make_shared<State>();
  state->gemm6 = std::make_unique<gemm::Gemm6>(engine.policy().opt6);
  // Plan entries were produced against ConvLayer descs; recover shape keys
  // from the candidates' cycle table is unnecessary — the network is
  // re-walked at install time by the caller, so the plan is keyed by the
  // layer names' shapes instead.
  (void)engine;
  // Build the shape->algo map from the plan via the network is not possible
  // here without the network; instead the ConvOverrideFn closes over the
  // plan and matches by the layer's shape key computed on the fly.
  auto plan_copy = std::make_shared<std::vector<LayerChoice>>(plan);

  // The plan's candidate set is unfused algorithms only; a layer the plan
  // routes to the default pipeline must actually run it, not fall through
  // to a fused implicit-GEMM the installing policy happened to enable —
  // the simulated cycles must correspond to the algorithm the plan chose.
  ctx.fused_conv = nullptr;
  ctx.conv_override = [state, plan_copy](vla::VectorEngine& eng,
                                         const dnn::ConvDesc& d,
                                         const float* input,
                                         const float* weights, float* output,
                                         const dnn::EpilogueDesc* /*epi*/)
      -> dnn::ConvStatus {
    // Match by geometry: find a plan entry whose recorded name encodes the
    // same out_c/ksize/stride and whose eligibility matches.
    const std::string want = "conv " + std::to_string(d.out_c) + " " +
                             std::to_string(d.ksize) + "x" +
                             std::to_string(d.ksize) + "/" +
                             std::to_string(d.stride);
    const LayerChoice* hit = nullptr;
    for (const auto& c : *plan_copy)
      if (c.layer_name == want) {
        hit = &c;
        break;
      }
    // The advisor's backends run the raw convolution; the layer applies the
    // epilogue afterwards (Ran, not RanFused).
    if (hit == nullptr) return dnn::ConvStatus::Declined;  // fall back to ctx.gemm
    if (hit->algo == ConvAlgo::Im2colGemm3)
      return dnn::ConvStatus::Declined;  // default path
    if (state->workspace.size() <
        static_cast<std::size_t>(d.gemm_k()) * d.gemm_n()) {
      state->ws_reg = {};
      state->workspace.resize(static_cast<std::size_t>(d.gemm_k()) *
                              d.gemm_n());
      state->ws_reg = sim::RegisteredRange(state->workspace.data(),
                                           state->workspace.size() * 4);
    }
    run_algo(hit->algo, eng, d, input, weights, output,
             state->workspace.data(), state->wino, *state->gemm6);
    return dnn::ConvStatus::Ran;
  };
}

}  // namespace vlacnn::core

#include "core/selector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/conv_engine.hpp"
#include "gemm/blocking.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

namespace {

constexpr Backend kCandidates[] = {
    Backend::Gemm3,    Backend::Gemm6,         Backend::FusedGemm6,
    Backend::Winograd, Backend::FusedWinograd, Backend::Direct,
};

[[nodiscard]] bool is_gemm6_backend(Backend b) {
  return b == Backend::Gemm6 || b == Backend::FusedGemm6;
}

/// Simulates one full conv layer (convolution + epilogue) routed through
/// `backend` on `machine`, via the same compiled dispatch that will execute
/// the plan at serving time, and returns the cycle count. Weights/BN
/// parameters are deterministic per shape; the weight transform of the
/// Winograd candidates — and, when `weight_resident` is set, the pack-once
/// A-panel image of the GEMM candidates — stays host-side and uncharged,
/// matching the paper's measurement protocol (§VII-A).
std::uint64_t simulate_backend(Backend backend, const dnn::ConvDesc& d,
                               const sim::MachineConfig& machine,
                               const gemm::Opt6Config& o6,
                               std::uint64_t input_seed,
                               bool weight_resident, int sparsity_pm = 1000) {
  const std::uint64_t key = conv_shape_key(d);
  sim::SimContext sctx(machine);
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, key);

  BackendPlan bench;
  bench.opt6 = o6;
  bench.sparsity_pm = sparsity_pm;
  PlanEntry entry;
  entry.shape_key = key;
  entry.backend = backend;
  entry.weight_resident = weight_resident;
  bench.entries.push_back(std::move(entry));
  ConvolutionEngine engine(std::move(bench));
  engine.install(ctx);
  if (weight_resident) engine.prepare(d, layer.weights());

  dnn::Tensor input(d.in_c, d.in_h, d.in_w);
  Rng rng(input_seed ^ key);
  input.randomize(rng, -1.0f, 1.0f);
  layer.forward(ctx, {&input});
  return sctx.cycles();
}

/// ULP distance between two fp32 values (lexicographic integer mapping, so
/// the measure is monotone across the sign boundary).
[[nodiscard]] std::uint32_t ulp_distance(float a, float b) {
  auto to_ordered = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    return i < 0 ? std::int64_t{std::numeric_limits<std::int32_t>::min()} - i
                 : std::int64_t{i};
  };
  const std::int64_t delta = to_ordered(a) - to_ordered(b);
  const std::int64_t mag = delta < 0 ? -delta : delta;
  return mag > std::numeric_limits<std::uint32_t>::max()
             ? std::numeric_limits<std::uint32_t>::max()
             : static_cast<std::uint32_t>(mag);
}

struct AccuracyStats {
  float max_rel = 0.0f;         ///< max abs error / max |reference|
  std::uint32_t max_ulp = 0;    ///< max per-element ULP distance
  bool top1_preserved = true;   ///< per-position channel argmax unchanged
};

/// Functional (host-speed, vlen-512) run of the full layer through
/// `backend` with a weight-resident plan, returning the output tensor's
/// values. Deterministic weights/BN/input per shape — the same seeds the
/// cycle simulations use.
std::vector<float> run_functional(Backend backend, const dnn::ConvDesc& d,
                                  const gemm::Opt6Config& o6,
                                  std::uint64_t input_seed,
                                  int sparsity_pm = 1000) {
  const std::uint64_t key = conv_shape_key(d);
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, key);

  BackendPlan bench;
  bench.opt6 = o6;
  bench.sparsity_pm = sparsity_pm;
  PlanEntry entry;
  entry.shape_key = key;
  entry.backend = backend;
  entry.weight_resident = true;
  bench.entries.push_back(std::move(entry));
  ConvolutionEngine engine(std::move(bench));
  engine.install(ctx);
  engine.prepare(d, layer.weights());

  dnn::Tensor input(d.in_c, d.in_h, d.in_w);
  Rng rng(input_seed ^ key);
  input.randomize(rng, -1.0f, 1.0f);
  layer.forward(ctx, {&input});
  const dnn::Tensor& out = layer.output();
  return {out.data(), out.data() + out.size()};
}

/// Compares a quantized/sparse backend's layer output against the fp32
/// fused reference: the admission check behind the selector's accuracy
/// budget.
AccuracyStats measure_quantized_accuracy(Backend qb, const dnn::ConvDesc& d,
                                         const gemm::Opt6Config& o6,
                                         std::uint64_t input_seed,
                                         int sparsity_pm = 1000) {
  const std::vector<float> ref =
      run_functional(Backend::FusedGemm6, d, o6, input_seed);
  const std::vector<float> quant =
      run_functional(qb, d, o6, input_seed, sparsity_pm);
  AccuracyStats st;
  float max_abs_ref = 0.0f, max_abs_err = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_abs_ref = std::max(max_abs_ref, std::fabs(ref[i]));
  // ULP distance is only meaningful at working magnitude: a cancellation-
  // dominated (or Relu-clipped) near-zero output can sit a billion "ULPs"
  // from an equally tiny reference while being numerically fine — those
  // elements are governed by the absolute/relative gate instead.
  const float ulp_floor = max_abs_ref / 1024.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_abs_err = std::max(max_abs_err, std::fabs(ref[i] - quant[i]));
    if (std::fabs(ref[i]) >= ulp_floor)
      st.max_ulp = std::max(st.max_ulp, ulp_distance(ref[i], quant[i]));
  }
  st.max_rel = max_abs_ref > 0.0f ? max_abs_err / max_abs_ref
                                  : (max_abs_err > 0.0f ? 1.0f : 0.0f);
  // Top-1 preservation: the argmax over output channels at every spatial
  // position must survive quantization (the classification proxy of the
  // paper's accuracy protocol).
  const std::size_t hw = ref.size() / static_cast<std::size_t>(d.out_c);
  for (std::size_t j = 0; j < hw && st.top1_preserved; ++j) {
    std::size_t ref_arg = 0, q_arg = 0;
    for (std::size_t c = 1; c < static_cast<std::size_t>(d.out_c); ++c) {
      if (ref[c * hw + j] > ref[ref_arg * hw + j]) ref_arg = c;
      if (quant[c * hw + j] > quant[q_arg * hw + j]) q_arg = c;
    }
    if (ref_arg != q_arg) st.top1_preserved = false;
  }
  return st;
}

}  // namespace

std::uint64_t simulate_backend_cycles(Backend backend, const dnn::ConvDesc& d,
                                      const sim::MachineConfig& machine,
                                      const gemm::Opt6Config& o6,
                                      std::uint64_t input_seed,
                                      bool weight_resident, int sparsity_pm) {
  return simulate_backend(backend, d, machine, o6, input_seed,
                          weight_resident, sparsity_pm);
}

BackendPlan select_per_layer(dnn::Network& net,
                             const sim::MachineConfig& machine,
                             std::uint64_t input_seed, int batch,
                             const AccuracyBudget& accuracy,
                             CostSource source, const CostModel* model,
                             SelectorStats* stats) {
  VLACNN_REQUIRE(batch >= 1, "selector batch must be >= 1");
  VLACNN_REQUIRE(source == CostSource::Simulated || model != nullptr,
                 "analytic selection needs a calibrated CostModel");
  const bool analytic = source == CostSource::Analytic;
  const auto t0 = std::chrono::steady_clock::now();
  BackendPlan plan;
  plan.opt6.blocks = gemm::tune_block_sizes(machine);
  plan.fallback_gemm = Backend::Gemm6;
  // FC layers are the textbook weight-bound case (the whole K×N weight
  // matrix is read per item): let the scheduler batch-fuse them. Conv
  // layers get per-entry flags below; the conv FALLBACK stays non-resident
  // — a shape the plan never saw could be activation-bound, and
  // batch-fusing one of those costs staging and batch parallelism.
  plan.fc_weight_resident = true;
  // Sparse routes (entries or just listed candidates) key their residency
  // by the plan's density; harmless when nothing sparse ends up admitted.
  if (accuracy.allow_sparse)
    plan.sparsity_pm = std::clamp(
        static_cast<int>(accuracy.sparse_density * 1000.0f + 0.5f), 1, 1000);

  // Identical shapes get identical candidate simulations, so the cycle
  // table is memoized — but the key must carry the format axes of the
  // candidate set (which reduced-precision/sparse kinds the budget admits,
  // and at what density) alongside the shape: the simulated cost of a shape
  // is format-specific, and a memo keyed by shape alone would silently hand
  // a dense entry to a quantized/sparse variant of the same shape.
  const std::uint64_t sparsity_pm =
      static_cast<std::uint64_t>(plan.sparsity_pm);
  const std::uint64_t fmt_sig = (accuracy.allow_bf16 ? 1u : 0u) |
                                (accuracy.allow_int8 ? 2u : 0u) |
                                (accuracy.allow_sparse ? 4u : 0u) |
                                (sparsity_pm << 3);
  using ShapeFormatKey = std::pair<std::uint64_t, std::uint64_t>;
  std::map<ShapeFormatKey, PlanEntry> by_shape;

  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    const dnn::ConvDesc& d = conv->desc();
    const std::uint64_t key = conv_shape_key(d);

    auto it = by_shape.find({key, fmt_sig});
    if (stats != nullptr) {
      if (it != by_shape.end())
        ++stats->memo_hits;
      else
        ++stats->memo_misses;
    }
    if (it == by_shape.end()) {
      const bool weight_bound = conv_weight_bound(d);
      PlanEntry e;
      e.shape_key = key;
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t fused_pack = 0;  // FusedGemm6's cold-warm packing delta
      for (Backend b : kCandidates) {
        if (!backend_eligible(b, d)) continue;
        if (b == Backend::FusedGemm6 && !plan.opt6.pack_b) continue;
        std::uint64_t cycles;
        if (weight_bound && is_gemm6_backend(b) && plan.opt6.pack_a) {
          // Weight-resident pricing: the steady state skips the A-pack
          // stage entirely (the image is packed at prepare()); the packing
          // delta — what the cold path pays over the resident one — is a
          // one-time cost amortized over the micro-batch, not a per-call
          // charge. cold >= warm by construction (same pipeline minus the
          // pack stage), but saturate anyway against simulator noise. The
          // analytic model prices warm + pack_scale·pack/batch directly.
          if (analytic) {
            cycles = model->cycles(b, d, /*weight_resident=*/true, batch);
          } else {
            const std::uint64_t warm =
                simulate_backend(b, d, machine, plan.opt6, input_seed,
                                 /*weight_resident=*/true);
            const std::uint64_t cold =
                simulate_backend(b, d, machine, plan.opt6, input_seed,
                                 /*weight_resident=*/false);
            const std::uint64_t pack = cold > warm ? cold - warm : 0;
            if (b == Backend::FusedGemm6) fused_pack = pack;
            cycles = warm + pack / static_cast<std::uint64_t>(batch);
          }
        } else if (analytic) {
          cycles = model->cycles(b, d, /*weight_resident=*/false, 1);
        } else {
          cycles = simulate_backend(b, d, machine, plan.opt6, input_seed,
                                    /*weight_resident=*/false);
        }
        e.candidates.emplace_back(b, cycles);
        if (cycles < best) {
          best = cycles;
          e.backend = b;
          e.cycles = cycles;
        }
      }
      // Reduced-precision candidates: weight-bound layers only (elsewhere
      // the weight stream is not the bottleneck and the accuracy spend buys
      // nothing), requiring both pack stages (the quantized image IS a
      // packed A; the fused kernel needs pack_b). Each candidate must first
      // survive the functional accuracy gate against the fp32 fused
      // reference; the simulation then prices its halved/quartered weight
      // stream through the ordinary MemorySystem model — no synthetic
      // discounts. The pack delta is the fp32 one: packing cost is
      // dominated by reading the fp32 source weights either way.
      if (weight_bound && plan.opt6.pack_a && plan.opt6.pack_b &&
          (accuracy.allow_bf16 || accuracy.allow_int8)) {
        for (Backend qb : {Backend::Gemm6Bf16, Backend::Gemm6Int8}) {
          if (qb == Backend::Gemm6Bf16 && !accuracy.allow_bf16) continue;
          if (qb == Backend::Gemm6Int8 && !accuracy.allow_int8) continue;
          const AccuracyStats st =
              measure_quantized_accuracy(qb, d, plan.opt6, input_seed);
          const bool within =
              qb == Backend::Gemm6Bf16
                  ? st.max_rel <= accuracy.bf16_rel_tol &&
                        st.max_ulp <= accuracy.bf16_max_ulp
                  : st.max_rel <= accuracy.int8_rel_tol &&
                        (!accuracy.int8_top1_preserving || st.top1_preserved);
          if (!within) continue;  // over budget: not even listed
          const std::uint64_t cycles =
              analytic
                  ? model->cycles(qb, d, /*weight_resident=*/true, batch)
                  : simulate_backend(qb, d, machine, plan.opt6, input_seed,
                                     /*weight_resident=*/true) +
                        fused_pack / static_cast<std::uint64_t>(batch);
          e.candidates.emplace_back(qb, cycles);
          if (cycles < best) {
            best = cycles;
            e.backend = qb;
            e.cycles = cycles;
          }
        }
      }
      // Block-sparse candidates: same weight-bound + pack-stage conditions
      // as the quantized kinds, plus the kernel's 4-row panel-alignment
      // requirement. The prune happens functionally first — a candidate
      // whose pruned output breaks the sparse gate is not even listed —
      // then the warm sparse pass is priced through the ordinary sim, where
      // the skip-aware kernel's density-proportional weight stream AND FMA
      // count show up as real line fills and issue slots. Pack delta: the
      // fp32 one again (prune + pack both stream the fp32 source once).
      if (weight_bound && plan.opt6.pack_a && plan.opt6.pack_b &&
          plan.opt6.blocks.block_m % gemm::kSparseBlockM == 0 &&
          accuracy.allow_sparse) {
        const int pm = static_cast<int>(sparsity_pm);
        for (Backend sb : {Backend::Gemm6Sparse, Backend::Gemm6SparseBf16}) {
          if (sb == Backend::Gemm6SparseBf16 && !accuracy.allow_bf16)
            continue;
          const AccuracyStats st =
              measure_quantized_accuracy(sb, d, plan.opt6, input_seed, pm);
          const bool within =
              st.max_rel <= accuracy.sparse_rel_tol &&
              (!accuracy.sparse_top1_preserving || st.top1_preserved);
          if (!within) continue;  // over budget: not even listed
          const std::uint64_t cycles =
              analytic
                  ? model->cycles(sb, d, /*weight_resident=*/true, batch, pm)
                  : simulate_backend(sb, d, machine, plan.opt6, input_seed,
                                     /*weight_resident=*/true, pm) +
                        fused_pack / static_cast<std::uint64_t>(batch);
          e.candidates.emplace_back(sb, cycles);
          if (cycles < best) {
            best = cycles;
            e.backend = sb;
            e.cycles = cycles;
          }
        }
      }
      e.weight_resident = weight_bound && backend_gemm6_family(e.backend) &&
                          plan.opt6.pack_a;
      it = by_shape.emplace(ShapeFormatKey{key, fmt_sig}, std::move(e)).first;
    }

    PlanEntry e = it->second;
    e.layer_index = static_cast<int>(i);
    e.layer_name = conv->name();
    plan.entries.push_back(std::move(e));
  }
  plan.priced_batch = batch;
  if (stats != nullptr) {
    for (const PlanEntry& e : plan.entries)
      ++stats->wins[static_cast<std::size_t>(e.backend)];
    stats->plan_compute_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return plan;
}

BackendPlan replan_for_batch(const dnn::Network& net, const BackendPlan& base,
                             const CostModel& model, int batch,
                             bool pin_bit_identical, SelectorStats* stats) {
  VLACNN_REQUIRE(batch >= 1, "replan batch must be >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  BackendPlan plan = base;
  plan.priced_batch = batch;
  for (PlanEntry& e : plan.entries) {
    if (e.layer_index < 0 ||
        static_cast<std::size_t>(e.layer_index) >= net.num_layers())
      continue;
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(
        &net.layer(static_cast<std::size_t>(e.layer_index)));
    if (conv == nullptr || e.candidates.empty()) continue;
    const dnn::ConvDesc& d = conv->desc();
    const bool weight_bound = conv_weight_bound(d);
    Backend best_backend = e.backend;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t incumbent = 0;
    for (auto& [b, cycles] : e.candidates) {
      // Re-rank only the candidates `base` already admitted; residency
      // re-derives per candidate exactly as original selection did.
      const bool resident =
          weight_bound && backend_gemm6_family(b) && plan.opt6.pack_a;
      cycles = model.cycles(b, d, resident, batch, plan.sparsity_pm);
      if (b == e.backend) incumbent = cycles;
      if (cycles < best) {
        best = cycles;
        best_backend = b;
      }
    }
    if (pin_bit_identical &&
        !backend_bit_compatible(e.backend, best_backend)) {
      // The cheaper kernel would change output bits mid-stream: keep the
      // incumbent route. Residency below still re-derives, which is also
      // bit-identical (resident vs hot-path pack is pinned equal).
      best_backend = e.backend;
      best = incumbent;
    }
    e.backend = best_backend;
    e.cycles = best;
    e.weight_resident = weight_bound && backend_gemm6_family(e.backend) &&
                        plan.opt6.pack_a;
  }
  if (stats != nullptr) {
    for (const PlanEntry& e : plan.entries)
      ++stats->wins[static_cast<std::size_t>(e.backend)];
    stats->plan_compute_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return plan;
}

}  // namespace vlacnn::core

#include "core/selector.hpp"

#include <limits>
#include <map>
#include <utility>

#include "common/rng.hpp"
#include "core/conv_engine.hpp"
#include "gemm/blocking.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

namespace {

constexpr Backend kCandidates[] = {
    Backend::Gemm3,    Backend::Gemm6,         Backend::FusedGemm6,
    Backend::Winograd, Backend::FusedWinograd, Backend::Direct,
};

/// Simulates one full conv layer (convolution + epilogue) routed through
/// `backend` on `machine`, via the same compiled dispatch that will execute
/// the plan at serving time, and returns the cycle count. Weights/BN
/// parameters are deterministic per shape; the weight transform of the
/// Winograd candidates stays host-side and uncharged, matching the paper's
/// measurement protocol (§VII-A).
std::uint64_t simulate_backend(Backend backend, const dnn::ConvDesc& d,
                               const sim::MachineConfig& machine,
                               const gemm::Opt6Config& o6,
                               std::uint64_t input_seed) {
  const std::uint64_t key = conv_shape_key(d);
  sim::SimContext sctx(machine);
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, key);

  BackendPlan bench;
  bench.opt6 = o6;
  PlanEntry entry;
  entry.shape_key = key;
  entry.backend = backend;
  bench.entries.push_back(std::move(entry));
  ConvolutionEngine engine(std::move(bench));
  engine.install(ctx);

  dnn::Tensor input(d.in_c, d.in_h, d.in_w);
  Rng rng(input_seed ^ key);
  input.randomize(rng, -1.0f, 1.0f);
  layer.forward(ctx, {&input});
  return sctx.cycles();
}

}  // namespace

BackendPlan select_per_layer(dnn::Network& net,
                             const sim::MachineConfig& machine,
                             std::uint64_t input_seed) {
  BackendPlan plan;
  plan.opt6.blocks = gemm::tune_block_sizes(machine);
  plan.fallback_gemm = Backend::Gemm6;

  // Identical shapes get identical candidate simulations, so the cycle
  // table is memoized per shape key (YOLO repeats its body shapes a lot).
  std::map<std::uint64_t, PlanEntry> by_shape;

  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    const dnn::ConvDesc& d = conv->desc();
    const std::uint64_t key = conv_shape_key(d);

    auto it = by_shape.find(key);
    if (it == by_shape.end()) {
      PlanEntry e;
      e.shape_key = key;
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      for (Backend b : kCandidates) {
        if (!backend_eligible(b, d)) continue;
        if (b == Backend::FusedGemm6 && !plan.opt6.pack_b) continue;
        const std::uint64_t cycles =
            simulate_backend(b, d, machine, plan.opt6, input_seed);
        e.candidates.emplace_back(b, cycles);
        if (cycles < best) {
          best = cycles;
          e.backend = b;
          e.cycles = cycles;
        }
      }
      it = by_shape.emplace(key, std::move(e)).first;
    }

    PlanEntry e = it->second;
    e.layer_index = static_cast<int>(i);
    e.layer_name = conv->name();
    plan.entries.push_back(std::move(e));
  }
  return plan;
}

}  // namespace vlacnn::core

#include "core/selector.hpp"

#include <limits>
#include <map>
#include <utility>

#include "common/rng.hpp"
#include "core/conv_engine.hpp"
#include "gemm/blocking.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::core {

namespace {

constexpr Backend kCandidates[] = {
    Backend::Gemm3,    Backend::Gemm6,         Backend::FusedGemm6,
    Backend::Winograd, Backend::FusedWinograd, Backend::Direct,
};

[[nodiscard]] bool is_gemm6_backend(Backend b) {
  return b == Backend::Gemm6 || b == Backend::FusedGemm6;
}

/// Simulates one full conv layer (convolution + epilogue) routed through
/// `backend` on `machine`, via the same compiled dispatch that will execute
/// the plan at serving time, and returns the cycle count. Weights/BN
/// parameters are deterministic per shape; the weight transform of the
/// Winograd candidates — and, when `weight_resident` is set, the pack-once
/// A-panel image of the GEMM candidates — stays host-side and uncharged,
/// matching the paper's measurement protocol (§VII-A).
std::uint64_t simulate_backend(Backend backend, const dnn::ConvDesc& d,
                               const sim::MachineConfig& machine,
                               const gemm::Opt6Config& o6,
                               std::uint64_t input_seed,
                               bool weight_resident) {
  const std::uint64_t key = conv_shape_key(d);
  sim::SimContext sctx(machine);
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, key);

  BackendPlan bench;
  bench.opt6 = o6;
  PlanEntry entry;
  entry.shape_key = key;
  entry.backend = backend;
  entry.weight_resident = weight_resident;
  bench.entries.push_back(std::move(entry));
  ConvolutionEngine engine(std::move(bench));
  engine.install(ctx);
  if (weight_resident) engine.prepare(d, layer.weights());

  dnn::Tensor input(d.in_c, d.in_h, d.in_w);
  Rng rng(input_seed ^ key);
  input.randomize(rng, -1.0f, 1.0f);
  layer.forward(ctx, {&input});
  return sctx.cycles();
}

}  // namespace

BackendPlan select_per_layer(dnn::Network& net,
                             const sim::MachineConfig& machine,
                             std::uint64_t input_seed, int batch) {
  VLACNN_REQUIRE(batch >= 1, "selector batch must be >= 1");
  BackendPlan plan;
  plan.opt6.blocks = gemm::tune_block_sizes(machine);
  plan.fallback_gemm = Backend::Gemm6;
  // FC layers are the textbook weight-bound case (the whole K×N weight
  // matrix is read per item): let the scheduler batch-fuse them. Conv
  // layers get per-entry flags below; the conv FALLBACK stays non-resident
  // — a shape the plan never saw could be activation-bound, and
  // batch-fusing one of those costs staging and batch parallelism.
  plan.fc_weight_resident = true;

  // Identical shapes get identical candidate simulations, so the cycle
  // table is memoized per shape key (YOLO repeats its body shapes a lot).
  std::map<std::uint64_t, PlanEntry> by_shape;

  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    const dnn::ConvDesc& d = conv->desc();
    const std::uint64_t key = conv_shape_key(d);

    auto it = by_shape.find(key);
    if (it == by_shape.end()) {
      const bool weight_bound = conv_weight_bound(d);
      PlanEntry e;
      e.shape_key = key;
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      for (Backend b : kCandidates) {
        if (!backend_eligible(b, d)) continue;
        if (b == Backend::FusedGemm6 && !plan.opt6.pack_b) continue;
        std::uint64_t cycles;
        if (weight_bound && is_gemm6_backend(b) && plan.opt6.pack_a) {
          // Weight-resident pricing: the steady state skips the A-pack
          // stage entirely (the image is packed at prepare()); the packing
          // delta — what the cold path pays over the resident one — is a
          // one-time cost amortized over the micro-batch, not a per-call
          // charge. cold >= warm by construction (same pipeline minus the
          // pack stage), but saturate anyway against simulator noise.
          const std::uint64_t warm = simulate_backend(
              b, d, machine, plan.opt6, input_seed, /*weight_resident=*/true);
          const std::uint64_t cold = simulate_backend(
              b, d, machine, plan.opt6, input_seed, /*weight_resident=*/false);
          const std::uint64_t pack = cold > warm ? cold - warm : 0;
          cycles = warm + pack / static_cast<std::uint64_t>(batch);
        } else {
          cycles = simulate_backend(b, d, machine, plan.opt6, input_seed,
                                    /*weight_resident=*/false);
        }
        e.candidates.emplace_back(b, cycles);
        if (cycles < best) {
          best = cycles;
          e.backend = b;
          e.cycles = cycles;
        }
      }
      e.weight_resident =
          weight_bound && is_gemm6_backend(e.backend) && plan.opt6.pack_a;
      it = by_shape.emplace(key, std::move(e)).first;
    }

    PlanEntry e = it->second;
    e.layer_index = static_cast<int>(i);
    e.layer_name = conv->name();
    plan.entries.push_back(std::move(e));
  }
  return plan;
}

}  // namespace vlacnn::core

#pragma once

#include "core/backend_plan.hpp"
#include "dnn/network.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::core {

/// Simulation-driven per-layer backend selection — the tool form of the
/// paper's conclusion that "convolutional layers require careful
/// algorithmic selection related to the kernel sizes and strides" (§VII-A).
///
/// For every convolutional layer of `net`, each *eligible* candidate
/// backend — both im2col+GEMM variants, the fused implicit-GEMM, Winograd
/// and fused Winograd (3x3 layers only), and direct convolution — is
/// simulated in isolation on `machine`. Each candidate runs the *full*
/// layer pipeline, BN/bias/activation included (in-kernel for the fused
/// backends, as post-passes otherwise), so the comparison prices the
/// epilogue-fusion advantage instead of just the raw convolution.
///
/// Returns a BackendPlan: one entry per conv layer recording the winner and
/// every candidate's cycles, with the machine-tuned 6-loop GEMM as the
/// fallback. Install it via core::ConvolutionEngine(plan) — there is no
/// separate "apply" step, and a layer whose entry cannot run (or whose
/// shape the plan has never seen) keeps the plan's default backend, fused
/// included.
///
/// Weight-bound layers (conv_weight_bound: the weight matrix dominates one
/// item's im2col matrix) are priced with pack-once amortization: their GEMM
/// candidates simulate weight-RESIDENT (A panels pre-packed at prepare(),
/// no hot-path pack stage) and the packing delta is charged as a one-time
/// prepare() cost spread over `batch` calls — not re-charged on every
/// simulated call, which is what used to make resident candidates look
/// uniformly worse than they serve. Winning GEMM candidates on those
/// layers get PlanEntry::weight_resident, so ConvolutionEngine::prepare()
/// packs them and the BatchScheduler runs them batch-fused; the plan's
/// fc_weight_resident is set so FC layers batch-fuse too. `batch` is
/// the micro-batch size the plan is priced for (>= 1).
BackendPlan select_per_layer(dnn::Network& net,
                             const sim::MachineConfig& machine,
                             std::uint64_t input_seed = 7, int batch = 4);

}  // namespace vlacnn::core

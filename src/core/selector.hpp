#pragma once

#include <array>
#include <cstdint>

#include "core/backend_plan.hpp"
#include "core/cost_model.hpp"
#include "dnn/network.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::core {

/// Pinned accuracy gates for the reduced-precision weight backends (the
/// bounds `bench_weight_reuse --check` and the selector enforce; fp32
/// backends stay bit-identical and never consult these).
///
/// bf16 rounds each weight to 8 mantissa bits (relative step 2^-8); the
/// fp32 accumulation over K compounds that to output errors a few times
/// larger, and the ULP distance is taken down to outputs 1024x below the
/// peak magnitude, where a 2^-8-of-peak absolute error spans many more
/// representable steps. The pinned bounds sit ~4x above the worst
/// observation on the VGG/YOLO layer shapes (2.4e7 ULP on the 512-channel
/// 3x3 block-5 conv) so routine runs never flake, while a real regression
/// (double rounding, a wrong widen) overshoots them by orders of
/// magnitude.
inline constexpr float kBf16OutputRelTol = 1.0f / 128;  // 2^-7 of max |ref|
inline constexpr std::uint32_t kBf16OutputMaxUlp = 1u << 27;
/// int8 per-channel quantization has a relative weight step of ~1/127 on
/// the channel's amax; the output bound is correspondingly looser, and the
/// top-1 (argmax-over-channels) check is the classification-preserving
/// gate the tolerance alone cannot give.
inline constexpr float kInt8OutputRelTol = 1.0f / 16;   // 2^-4 of max |ref|
/// Block-sparse backends drop whole 4x16 weight blocks, so the output error
/// is governed by the pruned mass, not a rounding step: on the selector's
/// deterministic uniform-random weights (the incompressible worst case — no
/// real checkpoint's magnitude distribution is that flat) a 0.5-density
/// prune leaves roughly half the L1 weight mass out of every output
/// channel. The pinned bound covers that worst case with headroom; plans
/// built for genuinely pruned checkpoints should pass a far tighter
/// sparse_rel_tol through the budget instead of relying on this ceiling.
inline constexpr float kSparseOutputRelTol = 0.75f;

/// Per-plan accuracy budget gating quantized candidates in
/// select_per_layer. The default admits NONE (fp32-only selection, the
/// historical behavior); relaxed() opts both formats in under the pinned
/// gates above.
struct AccuracyBudget {
  bool allow_bf16 = false;
  bool allow_int8 = false;
  float bf16_rel_tol = kBf16OutputRelTol;
  std::uint32_t bf16_max_ulp = kBf16OutputMaxUlp;
  float int8_rel_tol = kInt8OutputRelTol;
  /// Require the per-position argmax over output channels to survive int8
  /// quantization (the top-1-preserving criterion).
  bool int8_top1_preserving = true;
  /// Opt block-sparse candidates in (Gemm6Sparse; plus Gemm6SparseBf16 when
  /// allow_bf16 is also set) at `sparse_density` (fraction of 4x16 blocks
  /// kept). Sparse admission uses its own rel gate; top-1 preservation is
  /// off by default — magnitude pruning at serving time is a deliberate
  /// accuracy/throughput trade the budget owner opts into.
  bool allow_sparse = false;
  float sparse_density = 0.5f;
  float sparse_rel_tol = kSparseOutputRelTol;
  bool sparse_top1_preserving = false;

  [[nodiscard]] static AccuracyBudget relaxed() {
    AccuracyBudget b;
    b.allow_bf16 = true;
    b.allow_int8 = true;
    return b;
  }

  /// Budget admitting sparse candidates at `density` (and nothing else).
  [[nodiscard]] static AccuracyBudget sparse(float density) {
    AccuracyBudget b;
    b.allow_sparse = true;
    b.sparse_density = density;
    return b;
  }
};

/// Simulation-driven per-layer backend selection — the tool form of the
/// paper's conclusion that "convolutional layers require careful
/// algorithmic selection related to the kernel sizes and strides" (§VII-A).
///
/// For every convolutional layer of `net`, each *eligible* candidate
/// backend — both im2col+GEMM variants, the fused implicit-GEMM, Winograd
/// and fused Winograd (3x3 layers only), and direct convolution — is
/// simulated in isolation on `machine`. Each candidate runs the *full*
/// layer pipeline, BN/bias/activation included (in-kernel for the fused
/// backends, as post-passes otherwise), so the comparison prices the
/// epilogue-fusion advantage instead of just the raw convolution.
///
/// Returns a BackendPlan: one entry per conv layer recording the winner and
/// every candidate's cycles, with the machine-tuned 6-loop GEMM as the
/// fallback. Install it via core::ConvolutionEngine(plan) — there is no
/// separate "apply" step, and a layer whose entry cannot run (or whose
/// shape the plan has never seen) keeps the plan's default backend, fused
/// included.
///
/// Weight-bound layers (conv_weight_bound: the weight matrix dominates one
/// item's im2col matrix) are priced with pack-once amortization: their GEMM
/// candidates simulate weight-RESIDENT (A panels pre-packed at prepare(),
/// no hot-path pack stage) and the packing delta is charged as a one-time
/// prepare() cost spread over `batch` calls — not re-charged on every
/// simulated call, which is what used to make resident candidates look
/// uniformly worse than they serve. Winning GEMM candidates on those
/// layers get PlanEntry::weight_resident, so ConvolutionEngine::prepare()
/// packs them and the BatchScheduler runs them batch-fused; the plan's
/// fc_weight_resident is set so FC layers batch-fuse too. `batch` is
/// the micro-batch size the plan is priced for (>= 1).
///
/// When `accuracy` opts reduced-precision formats in, weight-bound layers
/// additionally get Gemm6Bf16/Gemm6Int8 candidates: each is first checked
/// functionally against the fp32 fused reference on a deterministic input
/// (rejected outright if it breaks the budget's gates), then priced as the
/// warm quantized pass — whose reduced weight stream the MemorySystem
/// simulation sees directly as fewer DRAM line fills — plus the fp32 pack
/// delta amortized over `batch`, exactly like the fp32 resident pricing.
///
/// allow_sparse adds block-sparse candidates the same way: the skip-aware
/// kernel's simulation sees both the density-proportional weight stream
/// (fewer resident-image line fills) AND the density-proportional MAC count
/// (skipped FMA runs) — the lever neither reduced-precision format has.
/// Admission is identical in spirit: functional accuracy gate first,
/// residency-or-nothing at run time (a budget-evicted sparse image falls
/// back to the dense sibling inside the kernel). The candidate table is
/// memoized per (shape, format-budget signature), never per shape alone —
/// a dense sim result must not be silently reused for a quantized/sparse
/// variant of the same shape.
///
/// `source` picks how candidates are priced: CostSource::Simulated runs the
/// full cache/timing simulator per candidate (the reference path,
/// simulator-seconds per network); CostSource::Analytic prices through the
/// supplied calibrated `model` in closed form — microseconds per network,
/// the online re-planning path. Accuracy gates (functional, host-speed) run
/// identically under both sources whenever the budget admits lossy formats;
/// the default fp32 budget runs none, which is what makes the analytic path
/// ≥100× faster end to end. `stats`, when given, receives the shape-memo
/// hit/miss counters, the wall-clock plan-compute time, and per-backend win
/// counts.
BackendPlan select_per_layer(dnn::Network& net,
                             const sim::MachineConfig& machine,
                             std::uint64_t input_seed = 7, int batch = 4,
                             const AccuracyBudget& accuracy = {},
                             CostSource source = CostSource::Simulated,
                             const CostModel* model = nullptr,
                             SelectorStats* stats = nullptr);

/// Simulates one full conv layer (convolution + epilogue) routed through
/// `backend` on `machine` and returns the cycle count — the selector's
/// reference measurement, exported for CostModel::calibrate and the
/// agreement tests. `weight_resident` prices the Gemm6-family steady state
/// with the A-panel image pre-packed (the pack stage uncharged).
std::uint64_t simulate_backend_cycles(Backend backend, const dnn::ConvDesc& d,
                                      const sim::MachineConfig& machine,
                                      const gemm::Opt6Config& o6,
                                      std::uint64_t input_seed,
                                      bool weight_resident,
                                      int sparsity_pm = 1000);

/// Re-prices an already-selected plan for a different effective batch size
/// through the analytic `model` — the Replanner's core operation, and the
/// reason re-planning needs neither the simulator NOR the accuracy gates:
/// every entry's candidate set was admitted (accuracy-gated) when `base`
/// was built, and re-planning only re-ranks those same admitted candidates
/// at the new amortization point. Microseconds per network.
///
/// With `pin_bit_identical` (the serving default), an entry only moves to a
/// new winner when `backend_bit_compatible` with the incumbent — so a live
/// swap mid-stream changes which kernel runs, never the bits it produces.
/// Residency flags re-derive from the (possibly re-pinned) winner; the
/// returned plan records `priced_batch = batch`.
BackendPlan replan_for_batch(const dnn::Network& net, const BackendPlan& base,
                             const CostModel& model, int batch,
                             bool pin_bit_identical = true,
                             SelectorStats* stats = nullptr);

}  // namespace vlacnn::core

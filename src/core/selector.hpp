#pragma once

#include <string>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/network.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::core {

/// Candidate algorithms for one convolutional layer.
enum class ConvAlgo { Im2colGemm3, Im2colGemm6, Winograd, Direct };

const char* to_string(ConvAlgo a);

/// One row of a per-layer algorithm plan.
struct LayerChoice {
  int layer_index = -1;
  std::string layer_name;
  ConvAlgo algo = ConvAlgo::Im2colGemm3;
  std::uint64_t cycles = 0;   ///< simulated cycles of the winning algorithm
  std::vector<std::pair<ConvAlgo, std::uint64_t>> candidates;
};

/// Simulation-driven per-layer algorithm selection — the tool form of the
/// paper's conclusion that "convolutional layers require careful
/// algorithmic selection related to the kernel sizes and strides" (§VII-A).
///
/// For every convolutional layer of `net`, each *eligible* candidate
/// algorithm is simulated in isolation on `machine` (Winograd only for
/// 3x3 layers; Direct for any; GEMM always) and the fastest is recorded.
/// The returned plan can be applied with `apply_plan` to get a
/// ConvOverrideFn routing each layer to its winner.
std::vector<LayerChoice> select_per_layer(dnn::Network& net,
                                          const sim::MachineConfig& machine,
                                          std::uint64_t input_seed = 7);

/// Installs a per-layer routing based on `plan` into `ctx`. Layers not in
/// the plan fall back to `fallback_policy`'s GEMM.
void apply_plan(const std::vector<LayerChoice>& plan,
                ConvolutionEngine& engine, dnn::ExecContext& ctx);

}  // namespace vlacnn::core

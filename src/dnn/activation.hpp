#pragma once

#include <cmath>

namespace vlacnn::dnn {

/// Activation functions used by the Darknet layers this study covers.
enum class Activation { Linear, Relu, Leaky, Logistic };

inline const char* to_string(Activation a) {
  switch (a) {
    case Activation::Linear: return "linear";
    case Activation::Relu: return "relu";
    case Activation::Leaky: return "leaky";
    case Activation::Logistic: return "logistic";
  }
  return "?";
}

/// Scalar reference semantics (Darknet's activate()).
inline float activate_scalar(float x, Activation a) {
  switch (a) {
    case Activation::Linear: return x;
    case Activation::Relu: return x > 0.0f ? x : 0.0f;
    case Activation::Leaky: return x > 0.0f ? x : 0.1f * x;
    case Activation::Logistic: return 1.0f / (1.0f + std::exp(-x));
  }
  return x;
}

}  // namespace vlacnn::dnn

#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "dnn/activation.hpp"

namespace vlacnn::dnn {

/// Geometry of one convolutional layer and its im2col+GEMM view.
///
/// With a k×k kernel over c input channels producing n filters on an
/// h×w input, GEMM sees a weight matrix A of M×K and an input matrix B of
/// K×N where M = n, K = k·k·c, N = out_h·out_w (paper §IV-A).
struct ConvDesc {
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int ksize = 3;
  int stride = 1;
  int pad = 1;
  bool batch_norm = true;
  Activation act = Activation::Leaky;

  [[nodiscard]] int out_h() const { return (in_h + 2 * pad - ksize) / stride + 1; }
  [[nodiscard]] int out_w() const { return (in_w + 2 * pad - ksize) / stride + 1; }

  [[nodiscard]] int gemm_m() const { return out_c; }
  [[nodiscard]] int gemm_k() const { return ksize * ksize * in_c; }
  [[nodiscard]] int gemm_n() const { return out_h() * out_w(); }

  [[nodiscard]] std::int64_t weight_count() const {
    return static_cast<std::int64_t>(out_c) * in_c * ksize * ksize;
  }

  /// Multiply-add FLOPs of the direct/GEMM formulation.
  [[nodiscard]] double flops() const {
    return 2.0 * gemm_m() * static_cast<double>(gemm_n()) * gemm_k();
  }

  /// Arithmetic intensity per the paper's Table IV formula:
  /// AI = 2MNK / (4 (MN + KN + MK)).
  [[nodiscard]] double arithmetic_intensity() const {
    const double m = gemm_m(), n = gemm_n(), k = gemm_k();
    return (2.0 * m * n * k) / (4.0 * (m * n + k * n + m * k));
  }

  void validate() const {
    VLACNN_REQUIRE(in_c > 0 && in_h > 0 && in_w > 0, "bad conv input dims");
    VLACNN_REQUIRE(out_c > 0, "bad conv output channels");
    VLACNN_REQUIRE(ksize >= 1 && stride >= 1 && pad >= 0, "bad conv params");
    VLACNN_REQUIRE(out_h() > 0 && out_w() > 0, "conv output collapses to zero");
  }
};

}  // namespace vlacnn::dnn

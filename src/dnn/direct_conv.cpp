#include "dnn/direct_conv.hpp"

#include <algorithm>

namespace vlacnn::dnn {

void direct_conv_ref(const ConvDesc& d, const float* input,
                     const float* weights, float* output) {
  const int oh = d.out_h(), ow = d.out_w();
  for (int oc = 0; oc < d.out_c; ++oc) {
    for (int ic = 0; ic < d.in_c; ++ic) {
      for (int ky = 0; ky < d.ksize; ++ky) {
        for (int kx = 0; kx < d.ksize; ++kx) {
          const float wv =
              weights[((static_cast<std::size_t>(oc) * d.in_c + ic) * d.ksize +
                       ky) *
                          d.ksize +
                      kx];
          for (int y = 0; y < oh; ++y) {
            const int iy = y * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.in_h) continue;
            for (int x = 0; x < ow; ++x) {
              const int ix = x * d.stride + kx - d.pad;
              if (ix < 0 || ix >= d.in_w) continue;
              output[(static_cast<std::size_t>(oc) * oh + y) * ow + x] +=
                  wv *
                  input[(static_cast<std::size_t>(ic) * d.in_h + iy) * d.in_w +
                        ix];
            }
          }
        }
      }
    }
  }
}

void direct_conv_vla(vla::VectorEngine& eng, const ConvDesc& d,
                     const float* input, const float* weights, float* output) {
  const int oh = d.out_h(), ow = d.out_w();
  constexpr vla::Vreg kAcc = 0, kIn = 1;

  for (int oc = 0; oc < d.out_c; ++oc) {
    const float* w_oc =
        weights + static_cast<std::size_t>(oc) * d.in_c * d.ksize * d.ksize;
    float* out_oc = output + static_cast<std::size_t>(oc) * oh * ow;
    for (int y = 0; y < oh; ++y) {
      float* out_row = out_oc + static_cast<std::size_t>(y) * ow;
      eng.scalar_ops(2);
      for (int x = 0; x < ow;) {
        const auto vl =
            static_cast<int>(eng.setvl(static_cast<std::size_t>(ow - x)));
        eng.vload(kAcc, out_row + x);
        for (int ic = 0; ic < d.in_c; ++ic) {
          const float* in_ic =
              input + static_cast<std::size_t>(ic) * d.in_h * d.in_w;
          for (int ky = 0; ky < d.ksize; ++ky) {
            const int iy = y * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.in_h) continue;
            for (int kx = 0; kx < d.ksize; ++kx) {
              const int ix0 = x * d.stride + kx - d.pad;
              // Fast path: the whole strip is in-bounds and unit-stride.
              const int ix_last =
                  (x + vl - 1) * d.stride + kx - d.pad;
              const float* w_ptr =
                  w_oc + (static_cast<std::size_t>(ic) * d.ksize + ky) *
                             d.ksize +
                  kx;
              eng.scalar_mem(w_ptr, sizeof(float), false);
              const float wv = *w_ptr;
              if (ix0 >= 0 && ix_last < d.in_w) {
                const float* src =
                    in_ic + static_cast<std::size_t>(iy) * d.in_w + ix0;
                if (d.stride == 1)
                  eng.vload(kIn, src);
                else
                  eng.vload_strided(kIn, src, d.stride);
                eng.vfma_scalar(kAcc, wv, kIn);
              } else {
                // Edge strip: predicate-like handling through a gather of
                // clamped indices would be faithful SVE; a strided load of
                // the valid sub-range keeps it simple and correct.
                for (int l = 0; l < vl; ++l) {
                  const int ix = (x + l) * d.stride + kx - d.pad;
                  if (ix < 0 || ix >= d.in_w) continue;
                  eng.set_lane(kIn, static_cast<std::size_t>(l),
                               in_ic[static_cast<std::size_t>(iy) * d.in_w + ix]);
                  eng.set_lane(kAcc, static_cast<std::size_t>(l),
                               eng.lane(kAcc, static_cast<std::size_t>(l)) +
                                   wv * eng.lane(kIn, static_cast<std::size_t>(l)));
                }
                eng.scalar_ops(static_cast<std::uint64_t>(vl) * 2);
              }
            }
          }
        }
        eng.vstore(kAcc, out_row + x);
        eng.scalar_ops(2);
        x += vl;
      }
    }
  }
}

}  // namespace vlacnn::dnn

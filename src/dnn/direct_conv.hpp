#pragma once

#include "dnn/conv_desc.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// VLA direct convolution (no im2col): vectorizes along the output row, so
/// every memory access is unit-stride for stride-1 layers.
///
/// The paper's background (§II-B) notes that "the Direct algorithm is
/// better for 1x1 kernel sizes": it avoids materializing the K x N im2col
/// matrix entirely — for 1x1 that matrix equals the input, and for small
/// channel counts the im2col traffic dominates. This kernel completes the
/// algorithm portfolio so the per-layer selector (core/selector.hpp) can
/// reproduce the paper's "no one-size-fits-all" conclusion.
///
/// Supports stride 1 and 2, any kernel size/padding. Accumulates into
/// `output`, which must be zeroed by the caller (same contract as GEMM).
void direct_conv_vla(vla::VectorEngine& eng, const ConvDesc& d,
                     const float* input, const float* weights, float* output);

/// Scalar reference for tests.
void direct_conv_ref(const ConvDesc& d, const float* input,
                     const float* weights, float* output);

}  // namespace vlacnn::dnn

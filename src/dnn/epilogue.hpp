#pragma once

#include <cmath>

#include "dnn/activation.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// Per-channel post-GEMM work of a convolutional layer, described as data so
/// a backend can fuse it into its final output store instead of re-streaming
/// the output tensor once per pass (fill / normalize / scale / bias /
/// activate — the Darknet sequence the paper profiles in §II-B).
///
/// All pointers are per-output-channel arrays owned by the layer and
/// read-only during forward passes. The fused application order must match
/// the unfused kernels exactly so fused and unfused outputs stay
/// bit-identical:
///   x = (x + (-bn_mean[c])) * (1 / sqrt(bn_var[c] + 1e-5))   (batch_norm)
///   x = x * bn_scale[c]                                      (batch_norm)
///   x = x + bias[c]                                          (bias != null)
///   x = act(x)
///   x = x + residual[i]                                      (residual != null)
///   x = residual_act(x)
/// Backends fuse Linear/Relu/Leaky only; the layer keeps Logistic (scalar
/// transcendental) as a post-pass by handing the backend act = Linear.
///
/// `residual` folds a Darknet shortcut layer into the convolution that feeds
/// it (out = act(conv) + skip, then the shortcut's own activation): unlike
/// the per-channel constants above it is a full output-shaped tensor, added
/// element-for-element on the output tile while it is still in registers.
struct EpilogueDesc {
  /// Darknet's batch-norm variance epsilon — the single definition every
  /// fused and unfused kernel must share for bit-identical outputs.
  static constexpr float kBnEpsilon = 1e-5f;

  bool batch_norm = false;
  const float* bn_mean = nullptr;   ///< [channels], batch_norm only
  const float* bn_var = nullptr;    ///< [channels], batch_norm only
  const float* bn_scale = nullptr;  ///< [channels], batch_norm only
  const float* bias = nullptr;      ///< [channels]; nullptr = no bias
  /// Per-channel dequantization scale for int8 weight-resident backends,
  /// applied FIRST (the accumulator holds q·b sums in the quantized domain;
  /// multiplying by the channel scale restores the fp32 domain before any
  /// batch-norm/bias constant touches it). Installed only by the GEMM
  /// backend from a resident image's scale vector — layers never set it,
  /// so the fp32 bit-exactness contract is untouched when it is null.
  const float* dequant_scale = nullptr;  ///< [channels]; nullptr = fp32
  Activation act = Activation::Linear;
  /// Fused shortcut: [channels × out_h × out_w] elementwise addend (the skip
  /// tensor), applied after `act`; nullptr = no residual.
  const float* residual = nullptr;
  /// Activation after the residual add (the shortcut layer's activation).
  Activation residual_act = Activation::Linear;

  /// True when applying the epilogue is a no-op.
  [[nodiscard]] bool empty() const {
    return !batch_norm && bias == nullptr && act == Activation::Linear &&
           residual == nullptr && dequant_scale == nullptr;
  }

  /// The affine constants for channel `c` in application order:
  /// x = ((x + neg_mean) * inv_std) * scale + bias. Every fused backend
  /// derives its constants here so the arithmetic cannot drift between the
  /// GEMM microkernel, the Winograd output transform and the stride-2
  /// subsample (and stays op-for-op equal to the unfused kernels).
  struct ChannelParams {
    float neg_mean = 0.0f, inv_std = 1.0f, scale = 1.0f, bias = 0.0f;
    float dequant = 1.0f;  ///< int8 weight dequantization pre-multiply
  };
  [[nodiscard]] ChannelParams channel_params(int c) const {
    ChannelParams p;
    if (batch_norm) {
      p.neg_mean = -bn_mean[c];
      p.inv_std = 1.0f / std::sqrt(bn_var[c] + kBnEpsilon);
      p.scale = bn_scale[c];
    }
    if (bias != nullptr) p.bias = bias[c];
    if (dequant_scale != nullptr) p.dequant = dequant_scale[c];
    return p;
  }
};

/// Applies one channel's epilogue to register `acc` with scalar-operand
/// vector ops — the shared implementation behind the GEMM microkernel's
/// last-panel store and the Winograd stride-2 subsample, kept in one place
/// so the op sequence (and with it the bit-identical fused==unfused
/// contract) cannot drift between backends. `scratch` must be a register
/// that is dead at the call site (Leaky needs one temporary). The Winograd
/// output transform applies the same sequence with per-lane parameter
/// vectors (reg-reg ops) and so has its own copy of the ordering.
/// Applies `act` to register `acc` with the exact op sequence of
/// activate_array, so fused and post-pass activations stay bit-identical.
/// `scratch` must be dead at the call site (Leaky needs one temporary).
inline void apply_activation_reg(vla::VectorEngine& eng, Activation act,
                                 vla::Vreg acc, vla::Vreg scratch) {
  switch (act) {
    case Activation::Linear:
    case Activation::Logistic:  // scalar transcendental: post-pass in the layer
      break;
    case Activation::Relu:
      eng.vmax_scalar(acc, acc, 0.0f);
      break;
    case Activation::Leaky:  // max(x,0) + 0.1*min(x,0), as activate_array
      eng.vbroadcast(scratch, 0.0f);
      eng.vmin(scratch, acc, scratch);
      eng.vmax_scalar(acc, acc, 0.0f);
      eng.vfma_scalar(acc, 0.1f, scratch);
      break;
  }
}

inline void apply_channel_epilogue(vla::VectorEngine& eng,
                                   const EpilogueDesc& epi,
                                   const EpilogueDesc::ChannelParams& p,
                                   vla::Vreg acc, vla::Vreg scratch) {
  if (epi.dequant_scale != nullptr) eng.vmul_scalar(acc, acc, p.dequant);
  if (epi.batch_norm) {
    eng.vadd_scalar(acc, acc, p.neg_mean);
    eng.vmul_scalar(acc, acc, p.inv_std);
    eng.vmul_scalar(acc, acc, p.scale);
  }
  if (epi.bias != nullptr) eng.vadd_scalar(acc, acc, p.bias);
  apply_activation_reg(eng, epi.act, acc, scratch);
}

}  // namespace vlacnn::dnn

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// C(M×N) += alpha · A(M×K) · B(K×N); row-major with leading dimensions.
/// This matches Darknet's gemm_nn contract used by the convolutional layer.
using GemmFn = std::function<void(vla::VectorEngine&, int M, int N, int K,
                                  float alpha, const float* A, int lda,
                                  const float* B, int ldb, float* C, int ldc)>;

/// Whole-convolution override (e.g. Winograd). Returns false to decline the
/// layer (wrong kernel size / stride), in which case the layer falls back to
/// im2col+GEMM — mirroring the paper's per-layer algorithm selection (§VII).
using ConvOverrideFn =
    std::function<bool(vla::VectorEngine&, const ConvDesc&, const float* input,
                       const float* weights, float* output)>;

/// Per-layer record filled during a forward pass.
struct LayerRecord {
  std::string name;
  std::string algo;          // "im2col+gemm", "winograd", "maxpool", ...
  double flops = 0.0;
  std::uint64_t cycles = 0;  // simulated cycles spent in this layer (0 if
                             // running without a SimContext)
};

/// Everything a layer needs to run: the vector engine (and through it the
/// optional simulator), the GEMM implementation, the optional convolution
/// override, and a shared im2col workspace.
class ExecContext {
 public:
  explicit ExecContext(vla::VectorEngine& engine) : engine_(&engine) {}

  [[nodiscard]] vla::VectorEngine& engine() { return *engine_; }

  GemmFn gemm;                    // required before running conv layers
  ConvOverrideFn conv_override;   // optional
  bool vectorize_aux_kernels = true;  // paper vectorizes all conv-layer kernels

  /// Grows (never shrinks) the shared im2col scratch buffer.
  float* workspace(std::size_t floats) {
    if (workspace_.size() < floats) {
      workspace_reg_ = {};
      workspace_.resize(floats);
      workspace_reg_ = sim::RegisteredRange(workspace_.data(),
                                            workspace_.size() * sizeof(float));
    }
    return workspace_.data();
  }

  std::vector<LayerRecord> records;

 private:
  vla::VectorEngine* engine_;
  AlignedBuffer<float> workspace_;
  sim::RegisteredRange workspace_reg_;
};

}  // namespace vlacnn::dnn

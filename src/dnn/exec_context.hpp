#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "dnn/epilogue.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// C(M×N) += alpha · A(M×K) · B(K×N); row-major with leading dimensions.
/// This matches Darknet's gemm_nn contract used by the convolutional layer.
using GemmFn = std::function<void(vla::VectorEngine&, int M, int N, int K,
                                  float alpha, const float* A, int lda,
                                  const float* B, int ldb, float* C, int ldc)>;

/// What a convolution backend did with a layer it was offered.
enum class ConvStatus {
  Declined,  ///< no backend installed/ran; caller runs the base im2col+GEMM
  Ran,       ///< raw convolution written; caller applies BN/bias/activation
  RanFused,  ///< convolution written with `epi` already applied in-kernel
};

class ExecContext;

/// Compiled per-layer backend dispatch (installed by
/// core::ConvolutionEngine::install from a core::BackendPlan): routes the
/// layer's shape to its planned backend — im2col+GEMM (3-loop / 6-loop),
/// fused implicit-GEMM, (fused) Winograd, or direct convolution. `epi`
/// describes the layer's post-GEMM work; a fusing backend applies it on the
/// output tile while it is still in registers and returns RanFused, a
/// non-fusing one ignores it and returns Ran. Declined means no backend ran
/// and the caller falls back to its own im2col + `ctx.gemm` pipeline —
/// mirroring the paper's per-layer algorithm selection (§VII).
using ConvBackendFn = std::function<ConvStatus(
    ExecContext&, const ConvDesc&, const float* input, const float* weights,
    float* output, const EpilogueDesc& epi)>;

/// Batch-fused convolution dispatch (installed alongside ConvBackendFn for
/// plans with weight-resident layers): runs the layer once for the WHOLE
/// batch — the per-item im2col matrices concatenated logically along the
/// GEMM N axis — so each resident weight panel is reused batch× instead of
/// being re-streamed per item. `input`/`output` point at item 0 and items
/// are the given strides (in floats) apart; `epi` must not carry a residual
/// (the caller applies residual adds per item afterwards). Declined means
/// the layer is not weight-resident (or the backend cannot batch-fuse it)
/// and the caller keeps the per-item path.
using ConvBatchFn = std::function<ConvStatus(
    ExecContext&, const ConvDesc&, const float* input,
    std::size_t in_item_stride, const float* weights, float* output,
    std::size_t out_item_stride, int batch, const EpilogueDesc& epi)>;

/// Names the backend the dispatch table routes `d` to (for LayerRecords).
using ConvLabelFn = std::function<const char*(const ConvDesc&)>;

/// Per-layer record filled during a forward pass.
struct LayerRecord {
  std::string name;
  std::string algo;          // "im2col+gemm", "winograd", "maxpool", ...
  double flops = 0.0;        // total over all batch items this record covers
  int items = 1;             // batch items aggregated into this record
  std::uint64_t cycles = 0;  // simulated cycles spent in this layer (0 if
                             // running without a SimContext)
  double wall_seconds = 0.0; // host wall-clock (filled by the batch
                             // scheduler; 0 in simulated runs)
};

/// Deterministically merges per-thread records of the same layer sequence:
/// `parts` is one records-vector per worker, every non-empty one covering the
/// same layers in the same order. Items/flops/cycles are summed in worker-id
/// order, wall_seconds takes the max (the layer barrier waits for the
/// slowest worker), so the result is independent of thread scheduling.
inline std::vector<LayerRecord> merge_layer_records(
    const std::vector<std::vector<LayerRecord>>& parts) {
  std::vector<LayerRecord> merged;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    if (merged.empty()) {
      merged = part;
      continue;
    }
    VLACNN_REQUIRE(part.size() == merged.size(),
                   "cannot merge record sequences of different lengths");
    for (std::size_t i = 0; i < part.size(); ++i) {
      VLACNN_REQUIRE(part[i].name == merged[i].name,
                     "cannot merge records of different layers");
      merged[i].flops += part[i].flops;
      merged[i].items += part[i].items;
      merged[i].cycles += part[i].cycles;
      merged[i].wall_seconds =
          std::max(merged[i].wall_seconds, part[i].wall_seconds);
    }
  }
  return merged;
}

/// Everything a layer needs to run: the vector engine (and through it the
/// optional simulator), the GEMM implementation, the optional compiled
/// backend dispatch, and a per-context im2col workspace.
///
/// An ExecContext is single-threaded state: the workspace, the GEMM packing
/// buffers captured inside `gemm`, and the Winograd scratch captured inside
/// `conv_backend` are all scribbled on during forward passes. Concurrent
/// workers must each own one (see runtime::BatchScheduler), which is why
/// core::ConvolutionEngine::install() materializes fresh per-context
/// algorithm state instead of sharing one instance.
class ExecContext {
 public:
  explicit ExecContext(vla::VectorEngine& engine) : engine_(&engine) {}

  [[nodiscard]] vla::VectorEngine& engine() { return *engine_; }

  GemmFn gemm;              // required before running conv/connected layers
  ConvBackendFn conv_backend;  // compiled per-layer dispatch (optional)
  ConvBatchFn conv_batch;      // batch-fused weight-resident path (optional)
  ConvLabelFn conv_label;      // backend names for LayerRecords (optional)
  bool vectorize_aux_kernels = true;  // paper vectorizes all conv-layer kernels

  /// Grows (never shrinks) the im2col scratch buffer. Growth is geometric
  /// (at least 1.5x the previous capacity) so a network whose layers request
  /// successively larger workspaces triggers O(log) reallocations instead of
  /// one per layer; each resize re-registers the range with the simulator
  /// exactly once and re-establishes AlignedBuffer's 256-byte alignment.
  float* workspace(std::size_t floats) {
    if (workspace_.size() < floats) {
      const std::size_t grown = workspace_.size() + workspace_.size() / 2;
      const std::size_t cap = std::max(floats, grown);
      workspace_reg_ = {};  // unregister before the buffer is reallocated
      workspace_.resize(cap);
      workspace_reg_ = sim::RegisteredRange(workspace_.data(),
                                            workspace_.size() * sizeof(float));
    }
    return workspace_.data();
  }

  /// Current workspace capacity in floats (for tests).
  [[nodiscard]] std::size_t workspace_capacity() const {
    return workspace_.size();
  }

  std::vector<LayerRecord> records;

 private:
  vla::VectorEngine* engine_;
  AlignedBuffer<float> workspace_;
  sim::RegisteredRange workspace_reg_;
};

}  // namespace vlacnn::dnn

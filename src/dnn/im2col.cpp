#include "dnn/im2col.hpp"

#include <algorithm>

namespace vlacnn::dnn {

void im2col_ref(const ConvDesc& d, const float* input, float* col) {
  const int oh = d.out_h(), ow = d.out_w();
  const std::size_t n = static_cast<std::size_t>(oh) * ow;
  for (int c = 0; c < d.in_c; ++c) {
    for (int kh = 0; kh < d.ksize; ++kh) {
      for (int kw = 0; kw < d.ksize; ++kw) {
        const std::size_t row =
            (static_cast<std::size_t>(c) * d.ksize + kh) * d.ksize + kw;
        float* out_row = col + row * n;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * d.stride + kh - d.pad;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * d.stride + kw - d.pad;
            float v = 0.0f;
            if (iy >= 0 && iy < d.in_h && ix >= 0 && ix < d.in_w)
              v = input[(static_cast<std::size_t>(c) * d.in_h + iy) * d.in_w + ix];
            out_row[static_cast<std::size_t>(y) * ow + x] = v;
          }
        }
      }
    }
  }
}

namespace {
constexpr vla::Vreg kV0 = 0;

/// Fills col[first..last) with zeros using vector broadcasts.
void vfill_zero(vla::VectorEngine& eng, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n;) {
    const std::size_t vl = eng.setvl(n - i);
    eng.vbroadcast(kV0, 0.0f);
    eng.vstore(kV0, dst + i);
    eng.scalar_ops(1);
    i += vl;
  }
}
}  // namespace

void im2col_vla(vla::VectorEngine& eng, const ConvDesc& d, const float* input,
                float* col) {
  const int oh = d.out_h(), ow = d.out_w();
  const std::size_t n = static_cast<std::size_t>(oh) * ow;
  for (int c = 0; c < d.in_c; ++c) {
    const float* in_c = input + static_cast<std::size_t>(c) * d.in_h * d.in_w;
    for (int kh = 0; kh < d.ksize; ++kh) {
      for (int kw = 0; kw < d.ksize; ++kw) {
        const std::size_t row =
            (static_cast<std::size_t>(c) * d.ksize + kh) * d.ksize + kw;
        float* out_row = col + row * n;
        eng.scalar_ops(3);  // row setup
        for (int y = 0; y < oh; ++y) {
          const int iy = y * d.stride + kh - d.pad;
          float* dst = out_row + static_cast<std::size_t>(y) * ow;
          eng.scalar_ops(3);  // per-output-row bookkeeping
          if (iy < 0 || iy >= d.in_h) {
            vfill_zero(eng, dst, static_cast<std::size_t>(ow));
            continue;
          }
          // Valid x range: x*stride + kw - pad in [0, in_w).
          const int x_lo = std::max(0, (d.pad - kw + d.stride - 1) / d.stride);
          int x_hi = ow;  // exclusive
          {
            // largest x with x*stride + kw - pad <= in_w - 1
            const int top = d.in_w - 1 - kw + d.pad;
            if (top < 0)
              x_hi = 0;
            else
              x_hi = std::min(ow, top / d.stride + 1);
          }
          if (x_lo > 0) vfill_zero(eng, dst, static_cast<std::size_t>(std::min(x_lo, ow)));
          if (x_hi < ow)
            vfill_zero(eng, dst + x_hi,
                       static_cast<std::size_t>(ow - std::max(x_hi, 0)));
          if (x_hi <= x_lo) continue;
          const float* src_base =
              in_c + static_cast<std::size_t>(iy) * d.in_w +
              (static_cast<std::ptrdiff_t>(x_lo) * d.stride + kw - d.pad);
          const std::size_t count = static_cast<std::size_t>(x_hi - x_lo);
          if (d.stride == 1) {
            for (std::size_t i = 0; i < count;) {
              const std::size_t vl = eng.setvl(count - i);
              eng.vload(kV0, src_base + i);
              eng.vstore(kV0, dst + x_lo + i);
              eng.scalar_ops(2);
              i += vl;
            }
          } else {
            for (std::size_t i = 0; i < count;) {
              const std::size_t vl = eng.setvl(count - i);
              eng.vload_strided(kV0,
                                src_base + static_cast<std::ptrdiff_t>(i) * d.stride,
                                d.stride);
              eng.vstore(kV0, dst + x_lo + i);
              eng.scalar_ops(2);
              i += vl;
            }
          }
        }
      }
    }
  }
}

void im2col_pack_segment(vla::VectorEngine& eng, const ConvDesc& d,
                         const float* input, int row, int col0, int count,
                         float* dst) {
  const int ow = d.out_w();
  const int kk = d.ksize * d.ksize;
  const int c = row / kk;
  const int rem = row - c * kk;
  const int kh = rem / d.ksize, kw = rem % d.ksize;
  const float* in_c = input + static_cast<std::size_t>(c) * d.in_h * d.in_w;
  eng.scalar_ops(6);  // row decomposition + segment setup

  // The segment may span several output rows; process one row at a time with
  // the same valid-range arithmetic as im2col_vla.
  int written = 0;
  int y = col0 / ow;
  int x0 = col0 - y * ow;
  while (written < count) {
    const int span = std::min(ow - x0, count - written);
    float* seg = dst + written;
    const int iy = y * d.stride + kh - d.pad;
    eng.scalar_ops(3);
    if (iy < 0 || iy >= d.in_h) {
      vfill_zero(eng, seg, static_cast<std::size_t>(span));
    } else {
      // Valid x range: x*stride + kw - pad in [0, in_w), clipped to the
      // segment's [x0, x0+span) window.
      const int x_end = x0 + span;
      int x_lo = std::max(x0, (d.pad - kw + d.stride - 1) / d.stride);
      int x_hi;  // exclusive
      const int top = d.in_w - 1 - kw + d.pad;
      if (top < 0)
        x_hi = x0;
      else
        x_hi = std::min(x_end, top / d.stride + 1);
      x_lo = std::min(x_lo, x_end);
      x_hi = std::max(x_hi, x0);
      if (x_lo > x0)
        vfill_zero(eng, seg, static_cast<std::size_t>(x_lo - x0));
      if (x_hi < x_end)
        vfill_zero(eng, seg + (std::max(x_hi, x_lo) - x0),
                   static_cast<std::size_t>(x_end - std::max(x_hi, x_lo)));
      if (x_hi > x_lo) {
        const float* src =
            in_c + static_cast<std::size_t>(iy) * d.in_w +
            (static_cast<std::ptrdiff_t>(x_lo) * d.stride + kw - d.pad);
        const std::size_t n = static_cast<std::size_t>(x_hi - x_lo);
        float* out = seg + (x_lo - x0);
        if (d.stride == 1) {
          for (std::size_t i = 0; i < n;) {
            const std::size_t vl = eng.setvl(n - i);
            eng.vload(kV0, src + i);
            eng.vstore(kV0, out + i);
            eng.scalar_ops(2);
            i += vl;
          }
        } else {
          for (std::size_t i = 0; i < n;) {
            const std::size_t vl = eng.setvl(n - i);
            eng.vload_strided(
                kV0, src + static_cast<std::ptrdiff_t>(i) * d.stride, d.stride);
            eng.vstore(kV0, out + i);
            eng.scalar_ops(2);
            i += vl;
          }
        }
      }
    }
    written += span;
    x0 = 0;
    ++y;
  }
}

}  // namespace vlacnn::dnn

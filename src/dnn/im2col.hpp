#pragma once

#include "dnn/conv_desc.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// Darknet-layout im2col: expands the padded input image (c×h×w) into the
/// GEMM input matrix B of K×N, K = c·k·k, N = out_h·out_w; row index is
/// (c·k·k + kh·k + kw), column index is (oh·out_w + ow).
///
/// Scalar reference (Darknet's im2col_cpu).
void im2col_ref(const ConvDesc& d, const float* input, float* col);

/// VLA-vectorized im2col: for stride-1 layers each (c,kh,kw,oh) row segment
/// is a contiguous run of the input and is moved with unit-stride vector
/// copies; strided layers use strided vector loads. Zero padding is filled
/// with vector broadcasts.
void im2col_vla(vla::VectorEngine& eng, const ConvDesc& d, const float* input,
                float* col);

/// Implicit-GEMM gather: writes `count` elements of im2col row `row`
/// starting at column `col0` into the contiguous buffer `dst`, reading
/// straight from the input image (zero padding via vector broadcasts,
/// stride-1 runs via unit-stride loads, strided layers via strided loads).
/// This is the building block of Gemm6's fused B-pack stage: the B panel is
/// gathered per (kc, nc) block, so no full-size K×N workspace is ever
/// materialized.
void im2col_pack_segment(vla::VectorEngine& eng, const ConvDesc& d,
                         const float* input, int row, int col0, int count,
                         float* dst);

}  // namespace vlacnn::dnn

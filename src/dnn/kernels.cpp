#include "dnn/kernels.hpp"

#include <cmath>

#include "dnn/epilogue.hpp"

namespace vlacnn::dnn {

namespace {
// Registers used by the aux kernels. They are leaf kernels, so a fixed small
// allocation is safe (v0..v3).
constexpr vla::Vreg kV0 = 0, kV1 = 1, kV2 = 2;
}  // namespace

void fill_cpu(vla::VectorEngine& eng, std::size_t n, float alpha, float* x) {
  for (std::size_t i = 0; i < n;) {
    const std::size_t vl = eng.setvl(n - i);
    eng.vbroadcast(kV0, alpha);
    eng.vstore(kV0, x + i);
    eng.scalar_ops(2);  // induction + branch
    i += vl;
  }
}

void fill_ref(std::size_t n, float alpha, float* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] = alpha;
}

void copy_cpu(vla::VectorEngine& eng, std::size_t n, const float* src,
              float* dst) {
  for (std::size_t i = 0; i < n;) {
    const std::size_t vl = eng.setvl(n - i);
    eng.vload(kV0, src + i);
    eng.vstore(kV0, dst + i);
    eng.scalar_ops(2);
    i += vl;
  }
}

void copy_ref(std::size_t n, const float* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

void normalize_cpu(vla::VectorEngine& eng, float* x, const float* mean,
                   const float* variance, int channels, int spatial) {
  for (int c = 0; c < channels; ++c) {
    const float m = mean[c];
    const float inv_std = 1.0f / std::sqrt(variance[c] + EpilogueDesc::kBnEpsilon);
    eng.scalar_mem(mean + c, sizeof(float), false);
    eng.scalar_mem(variance + c, sizeof(float), false);
    float* xc = x + static_cast<std::size_t>(c) * spatial;
    for (int i = 0; i < spatial;) {
      const std::size_t vl = eng.setvl(static_cast<std::size_t>(spatial - i));
      eng.vload(kV0, xc + i);
      eng.vadd_scalar(kV1, kV0, -m);
      eng.vmul_scalar(kV2, kV1, inv_std);
      eng.vstore(kV2, xc + i);
      eng.scalar_ops(2);
      i += static_cast<int>(vl);
    }
  }
}

void normalize_ref(float* x, const float* mean, const float* variance,
                   int channels, int spatial) {
  for (int c = 0; c < channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(variance[c] + EpilogueDesc::kBnEpsilon);
    for (int i = 0; i < spatial; ++i) {
      float& v = x[static_cast<std::size_t>(c) * spatial + i];
      v = (v - mean[c]) * inv_std;
    }
  }
}

void add_bias(vla::VectorEngine& eng, float* x, const float* bias,
              int channels, int spatial) {
  for (int c = 0; c < channels; ++c) {
    const float b = bias[c];
    eng.scalar_mem(bias + c, sizeof(float), false);
    float* xc = x + static_cast<std::size_t>(c) * spatial;
    for (int i = 0; i < spatial;) {
      const std::size_t vl = eng.setvl(static_cast<std::size_t>(spatial - i));
      eng.vload(kV0, xc + i);
      eng.vadd_scalar(kV1, kV0, b);
      eng.vstore(kV1, xc + i);
      eng.scalar_ops(2);
      i += static_cast<int>(vl);
    }
  }
}

void add_bias_ref(float* x, const float* bias, int channels, int spatial) {
  for (int c = 0; c < channels; ++c)
    for (int i = 0; i < spatial; ++i)
      x[static_cast<std::size_t>(c) * spatial + i] += bias[c];
}

void scale_bias(vla::VectorEngine& eng, float* x, const float* scale,
                int channels, int spatial) {
  for (int c = 0; c < channels; ++c) {
    const float s = scale[c];
    eng.scalar_mem(scale + c, sizeof(float), false);
    float* xc = x + static_cast<std::size_t>(c) * spatial;
    for (int i = 0; i < spatial;) {
      const std::size_t vl = eng.setvl(static_cast<std::size_t>(spatial - i));
      eng.vload(kV0, xc + i);
      eng.vmul_scalar(kV1, kV0, s);
      eng.vstore(kV1, xc + i);
      eng.scalar_ops(2);
      i += static_cast<int>(vl);
    }
  }
}

void scale_bias_ref(float* x, const float* scale, int channels, int spatial) {
  for (int c = 0; c < channels; ++c)
    for (int i = 0; i < spatial; ++i)
      x[static_cast<std::size_t>(c) * spatial + i] *= scale[c];
}

void activate_array(vla::VectorEngine& eng, float* x, std::size_t n,
                    Activation act) {
  if (act == Activation::Linear) return;
  if (act == Activation::Logistic) {
    // Transcendental: remains scalar (the compiler cannot vectorize it and
    // neither did the paper's kernels; it only appears on tiny YOLO heads).
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = activate_scalar(x[i], act);
      eng.scalar_ops(4);
    }
    eng.scalar_mem(x, n * sizeof(float), true);
    return;
  }
  for (std::size_t i = 0; i < n;) {
    const std::size_t vl = eng.setvl(n - i);
    eng.vload(kV0, x + i);
    if (act == Activation::Relu) {
      eng.vmax_scalar(kV1, kV0, 0.0f);
    } else {  // Leaky: max(x,0) + 0.1*min(x,0)
      eng.vmax_scalar(kV1, kV0, 0.0f);
      eng.vbroadcast(kV2, 0.0f);
      eng.vmin(kV2, kV0, kV2);
      eng.vfma_scalar(kV1, 0.1f, kV2);
    }
    eng.vstore(kV1, x + i);
    eng.scalar_ops(2);
    i += vl;
  }
}

void activate_ref(float* x, std::size_t n, Activation act) {
  for (std::size_t i = 0; i < n; ++i) x[i] = activate_scalar(x[i], act);
}

void axpy_cpu(vla::VectorEngine& eng, std::size_t n, float alpha,
              const float* x, float* y) {
  for (std::size_t i = 0; i < n;) {
    const std::size_t vl = eng.setvl(n - i);
    eng.vload(kV0, x + i);
    eng.vload(kV1, y + i);
    eng.vfma_scalar(kV1, alpha, kV0);
    eng.vstore(kV1, y + i);
    eng.scalar_ops(2);
    i += vl;
  }
}

}  // namespace vlacnn::dnn

#pragma once

#include <cstddef>

#include "dnn/activation.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::dnn {

/// VLA-vectorized versions of every auxiliary kernel of the Darknet
/// convolutional layer (paper §II-B: fill_cpu, copy_cpu, normalize_cpu,
/// add_bias, scale_bias, activate_array). Each has a scalar reference
/// counterpart (suffix `_ref`) used for testing and for the unvectorized
/// baseline configuration.

// x[0..n) = alpha
void fill_cpu(vla::VectorEngine& eng, std::size_t n, float alpha, float* x);
void fill_ref(std::size_t n, float alpha, float* x);

// dst[0..n) = src[0..n)
void copy_cpu(vla::VectorEngine& eng, std::size_t n, const float* src,
              float* dst);
void copy_ref(std::size_t n, const float* src, float* dst);

// x[c][i] = (x[c][i] - mean[c]) / sqrt(var[c] + eps), spatial size per channel
void normalize_cpu(vla::VectorEngine& eng, float* x, const float* mean,
                   const float* variance, int channels, int spatial);
void normalize_ref(float* x, const float* mean, const float* variance,
                   int channels, int spatial);

// x[c][i] += bias[c]
void add_bias(vla::VectorEngine& eng, float* x, const float* bias,
              int channels, int spatial);
void add_bias_ref(float* x, const float* bias, int channels, int spatial);

// x[c][i] *= scale[c]
void scale_bias(vla::VectorEngine& eng, float* x, const float* scale,
                int channels, int spatial);
void scale_bias_ref(float* x, const float* scale, int channels, int spatial);

// x[i] = act(x[i])
void activate_array(vla::VectorEngine& eng, float* x, std::size_t n,
                    Activation act);
void activate_ref(float* x, std::size_t n, Activation act);

// out[i] += in[i] (shortcut layers)
void axpy_cpu(vla::VectorEngine& eng, std::size_t n, float alpha,
              const float* x, float* y);

}  // namespace vlacnn::dnn

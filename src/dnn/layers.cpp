#include "dnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dnn/im2col.hpp"
#include "dnn/kernels.hpp"

namespace vlacnn::dnn {

// -------------------------------------------------------------------- Layer

int Layer::prepare_batch(const std::vector<const Tensor*>& inputs) {
  VLACNN_REQUIRE(!inputs.empty(), "layer has no inputs");
  for (const Tensor* t : inputs)
    VLACNN_REQUIRE(t != nullptr, "layer input missing");
  const int n = inputs[0]->n();
  for (const Tensor* t : inputs)
    VLACNN_REQUIRE(t->n() == n, "layer inputs disagree on batch size");
  if (output_.n() != n)
    output_.reshape(n, output_.c(), output_.h(), output_.w());
  return n;
}

void Layer::forward(ExecContext& ctx,
                    const std::vector<const Tensor*>& inputs) {
  const int n = prepare_batch(inputs);
  for (int b = 0; b < n; ++b) forward_item(ctx, inputs, b);
}

// ---------------------------------------------------------------- ConvLayer

ConvLayer::ConvLayer(const ConvDesc& desc, std::uint64_t weight_seed)
    : desc_(desc) {
  desc_.validate();
  output_.reshape(desc_.out_c, desc_.out_h(), desc_.out_w());

  const auto wn = static_cast<std::size_t>(desc_.weight_count());
  weights_.resize(wn);
  biases_.resize(static_cast<std::size_t>(desc_.out_c));
  bn_scales_.resize(static_cast<std::size_t>(desc_.out_c));
  bn_mean_.resize(static_cast<std::size_t>(desc_.out_c));
  bn_var_.resize(static_cast<std::size_t>(desc_.out_c));

  // He-style scaling keeps activations O(1) through deep stacks so that the
  // 75-conv YOLOv3 forward pass stays in a numerically healthy range.
  Rng rng(weight_seed);
  const float scale = std::sqrt(2.0f / static_cast<float>(desc_.gemm_k()));
  for (std::size_t i = 0; i < wn; ++i) weights_[i] = rng.normal(0.0f, scale);
  for (int i = 0; i < desc_.out_c; ++i) {
    biases_[static_cast<std::size_t>(i)] = rng.uniform(-0.1f, 0.1f);
    bn_scales_[static_cast<std::size_t>(i)] = rng.uniform(0.9f, 1.1f);
    bn_mean_[static_cast<std::size_t>(i)] = rng.uniform(-0.05f, 0.05f);
    bn_var_[static_cast<std::size_t>(i)] = rng.uniform(0.8f, 1.2f);
  }
  w_reg_ = sim::RegisteredRange(weights_.data(), wn * sizeof(float));
  b_reg_ = sim::RegisteredRange(biases_.data(), biases_.size() * sizeof(float));
  s_reg_ = sim::RegisteredRange(bn_scales_.data(), bn_scales_.size() * sizeof(float));
  m_reg_ = sim::RegisteredRange(bn_mean_.data(), bn_mean_.size() * sizeof(float));
  v_reg_ = sim::RegisteredRange(bn_var_.data(), bn_var_.size() * sizeof(float));
}

std::string ConvLayer::name() const {
  return "conv " + std::to_string(desc_.out_c) + " " +
         std::to_string(desc_.ksize) + "x" + std::to_string(desc_.ksize) + "/" +
         std::to_string(desc_.stride);
}

void run_im2col_gemm(ExecContext& ctx, const ConvDesc& d, const float* input,
                     const float* weights, float* output, const GemmFn& gemm) {
  vla::VectorEngine& eng = ctx.engine();
  const int m = d.gemm_m(), k = d.gemm_k(), n = d.gemm_n();
  fill_cpu(eng, static_cast<std::size_t>(m) * n, 0.0f, output);
  const float* b_matrix = nullptr;
  if (d.ksize == 1 && d.stride == 1 && d.pad == 0) {
    // Darknet skips im2col entirely for 1x1/s1 convolutions.
    b_matrix = input;
  } else {
    float* ws = ctx.workspace(static_cast<std::size_t>(k) * n);
    if (ctx.vectorize_aux_kernels) {
      im2col_vla(eng, d, input, ws);
    } else {
      im2col_ref(d, input, ws);
      // Scalar im2col: ~2 ops per expanded element plus the buffer write
      // traffic (the unvectorized baseline pays for this too).
      eng.scalar_ops(static_cast<std::uint64_t>(k) * n * 2);
      eng.scalar_mem(ws, static_cast<std::size_t>(k) * n * sizeof(float),
                     true);
    }
    b_matrix = ws;
  }
  VLACNN_REQUIRE(static_cast<bool>(gemm),
                 "ExecContext has no GEMM implementation");
  gemm(eng, m, n, k, 1.0f, weights, k, b_matrix, n, output, n);
}

void ConvLayer::forward_item(ExecContext& ctx,
                             const std::vector<const Tensor*>& inputs, int b) {
  VLACNN_REQUIRE(inputs.size() == (residual_from_ >= 0 ? 2u : 1u) &&
                     inputs[0] != nullptr,
                 "conv input count mismatch");
  const Tensor& in = *inputs[0];
  VLACNN_REQUIRE(in.c() == desc_.in_c && in.h() == desc_.in_h &&
                     in.w() == desc_.in_w,
                 "conv input shape mismatch");
  const float* in_b = in.item_data(b);
  float* out_b = output_.item_data(b);
  const std::size_t out_elems = output_.item_size();
  vla::VectorEngine& eng = ctx.engine();

  const float* skip_b = nullptr;
  if (residual_from_ >= 0) {
    VLACNN_REQUIRE(inputs[1] != nullptr &&
                       inputs[1]->item_size() == out_elems,
                   "fused residual shape mismatch");
    skip_b = inputs[1]->item_data(b);
  }

  // Epilogue of this layer: what a fusing backend applies on the output
  // tile in registers. Logistic is a scalar transcendental no backend
  // vectorizes — hand the backend Linear and apply it as a post-pass. The
  // fused residual add sits after the activation, so it is only handed to
  // the backend when the activation itself fuses.
  EpilogueDesc epi;
  epi.batch_norm = desc_.batch_norm;
  if (desc_.batch_norm) {
    epi.bn_mean = bn_mean_.data();
    epi.bn_var = bn_var_.data();
    epi.bn_scale = bn_scales_.data();
  }
  epi.bias = biases_.data();
  const bool act_fusable = desc_.act != Activation::Logistic;
  epi.act = act_fusable ? desc_.act : Activation::Linear;
  const bool post_fusable = residual_act_ != Activation::Logistic;
  if (skip_b != nullptr && act_fusable) {
    epi.residual = skip_b;
    epi.residual_act = post_fusable ? residual_act_ : Activation::Linear;
  }

  ConvStatus status = ConvStatus::Declined;
  if (ctx.conv_backend)
    status = ctx.conv_backend(ctx, desc_, in_b, weights_.data(), out_b, epi);
  if (status == ConvStatus::Declined) {
    run_im2col_gemm(ctx, desc_, in_b, weights_.data(), out_b, ctx.gemm);
    status = ConvStatus::Ran;
  }

  if (status == ConvStatus::RanFused) {
    // BN/bias (and any vectorizable activation) already applied in-kernel.
    if (!act_fusable) {
      activate_array(eng, out_b, out_elems, desc_.act);
      if (skip_b != nullptr) {
        // The backend skipped the residual (it must follow the activation).
        axpy_cpu(eng, out_elems, 1.0f, skip_b, out_b);
        activate_array(eng, out_b, out_elems, residual_act_);
      }
    } else if (epi.residual != nullptr && !post_fusable) {
      activate_array(eng, out_b, out_elems, residual_act_);
    }
    return;
  }

  const int spatial = desc_.out_h() * desc_.out_w();
  if (ctx.vectorize_aux_kernels) {
    if (desc_.batch_norm) {
      normalize_cpu(eng, out_b, bn_mean_.data(), bn_var_.data(), desc_.out_c,
                    spatial);
      scale_bias(eng, out_b, bn_scales_.data(), desc_.out_c, spatial);
    }
    add_bias(eng, out_b, biases_.data(), desc_.out_c, spatial);
    activate_array(eng, out_b, out_elems, desc_.act);
  } else {
    if (desc_.batch_norm) {
      normalize_ref(out_b, bn_mean_.data(), bn_var_.data(), desc_.out_c,
                    spatial);
      scale_bias_ref(out_b, bn_scales_.data(), desc_.out_c, spatial);
    }
    add_bias_ref(out_b, biases_.data(), desc_.out_c, spatial);
    activate_ref(out_b, out_elems, desc_.act);
    // Charge the scalar work of the unvectorized kernels.
    eng.scalar_ops(out_elems * (desc_.batch_norm ? 6 : 3));
  }
  if (skip_b != nullptr) {
    // Unfused residual post-pass: the exact ShortcutLayer op sequence (the
    // copy is implicit — the sum lands in this layer's output tensor).
    axpy_cpu(eng, out_elems, 1.0f, skip_b, out_b);
    activate_array(eng, out_b, out_elems, residual_act_);
  }
}

bool ConvLayer::forward_batch(ExecContext& ctx,
                              const std::vector<const Tensor*>& inputs) {
  if (!ctx.conv_batch) return false;
  VLACNN_REQUIRE(inputs.size() == (residual_from_ >= 0 ? 2u : 1u) &&
                     inputs[0] != nullptr,
                 "conv input count mismatch");
  const Tensor& in = *inputs[0];
  const int nb = in.n();
  if (nb < 2) return false;
  VLACNN_REQUIRE(in.c() == desc_.in_c && in.h() == desc_.in_h &&
                     in.w() == desc_.in_w,
                 "conv input shape mismatch");
  const std::size_t out_elems = output_.item_size();
  if (residual_from_ >= 0)
    VLACNN_REQUIRE(inputs[1] != nullptr && inputs[1]->item_size() == out_elems,
                   "fused residual shape mismatch");

  // Same epilogue the per-item path hands a fusing backend, EXCEPT the
  // residual: its addend offsets are per item, so the add (which must
  // follow the activation) runs as a per-item post-pass below — the exact
  // op sequence of the unfused shortcut, hence bit-identical either way.
  EpilogueDesc epi;
  epi.batch_norm = desc_.batch_norm;
  if (desc_.batch_norm) {
    epi.bn_mean = bn_mean_.data();
    epi.bn_var = bn_var_.data();
    epi.bn_scale = bn_scales_.data();
  }
  epi.bias = biases_.data();
  const bool act_fusable = desc_.act != Activation::Logistic;
  epi.act = act_fusable ? desc_.act : Activation::Linear;

  const ConvStatus status =
      ctx.conv_batch(ctx, desc_, in.data(), in.item_size(), weights_.data(),
                     output_.data(), out_elems, nb, epi);
  if (status == ConvStatus::Declined) return false;
  VLACNN_REQUIRE(status == ConvStatus::RanFused,
                 "batch-fused conv must apply the epilogue in-kernel");

  vla::VectorEngine& eng = ctx.engine();
  for (int b = 0; b < nb; ++b) {
    float* out_b = output_.item_data(b);
    if (!act_fusable) activate_array(eng, out_b, out_elems, desc_.act);
    if (residual_from_ >= 0) {
      axpy_cpu(eng, out_elems, 1.0f, inputs[1]->item_data(b), out_b);
      activate_array(eng, out_b, out_elems, residual_act_);
    }
  }
  return true;
}

// ------------------------------------------------------------- MaxPoolLayer

MaxPoolLayer::MaxPoolLayer(int in_c, int in_h, int in_w, int size, int stride)
    : in_c_(in_c), in_h_(in_h), in_w_(in_w), size_(size), stride_(stride),
      pad_(size - 1) {
  VLACNN_REQUIRE(size >= 1 && stride >= 1, "bad pool params");
  output_.reshape(in_c, out_h(), out_w());
}

std::string MaxPoolLayer::name() const {
  return "maxpool " + std::to_string(size_) + "x" + std::to_string(size_) +
         "/" + std::to_string(stride_);
}

double MaxPoolLayer::flops() const {
  return static_cast<double>(output_.item_size()) * size_ * size_;
}

void MaxPoolLayer::forward_item(ExecContext& ctx,
                                const std::vector<const Tensor*>& inputs,
                                int b) {
  VLACNN_REQUIRE(inputs.size() == 1, "maxpool expects one input");
  const Tensor& in = *inputs[0];
  const float* in_b = in.item_data(b);
  float* out_b = output_.item_data(b);
  vla::VectorEngine& eng = ctx.engine();
  const int oh = out_h(), ow = out_w();
  const int w_offset = -pad_ / 2, h_offset = -pad_ / 2;

  for (int c = 0; c < in_c_; ++c) {
    const float* in_chan = in_b + static_cast<std::size_t>(c) * in_h_ * in_w_;
    for (int y = 0; y < oh; ++y) {
      float* out_row = out_b + (static_cast<std::size_t>(c) * oh + y) * ow;
      for (int x = 0; x < ow; ++x) {
        float best = -std::numeric_limits<float>::max();
        for (int ky = 0; ky < size_; ++ky) {
          const int iy = y * stride_ + ky + h_offset;
          if (iy < 0 || iy >= in_h_) continue;
          for (int kx = 0; kx < size_; ++kx) {
            const int ix = x * stride_ + kx + w_offset;
            if (ix < 0 || ix >= in_w_) continue;
            best = std::max(best,
                            in_chan[static_cast<std::size_t>(iy) * in_w_ + ix]);
          }
        }
        out_row[x] = best;
      }
      // Bulk-charge the scalar comparisons and the row traffic.
      eng.scalar_ops(static_cast<std::uint64_t>(ow) * size_ * size_);
      eng.scalar_mem(out_row, static_cast<std::size_t>(ow) * sizeof(float), true);
      eng.scalar_mem(in_chan + static_cast<std::size_t>(
                                   std::min(y * stride_, in_h_ - 1)) * in_w_,
                     static_cast<std::size_t>(in_w_) * sizeof(float), false);
    }
  }
}

// --------------------------------------------------------------- RouteLayer

RouteLayer::RouteLayer(std::vector<int> from, int out_c, int h, int w)
    : from_(std::move(from)) {
  VLACNN_REQUIRE(!from_.empty(), "route needs at least one source");
  output_.reshape(out_c, h, w);
}

void RouteLayer::forward_item(ExecContext& ctx,
                              const std::vector<const Tensor*>& inputs,
                              int b) {
  vla::VectorEngine& eng = ctx.engine();
  float* out_b = output_.item_data(b);
  std::size_t offset = 0;
  for (const Tensor* t : inputs) {
    VLACNN_REQUIRE(t != nullptr, "route input missing");
    copy_cpu(eng, t->item_size(), t->item_data(b), out_b + offset);
    offset += t->item_size();
  }
  VLACNN_REQUIRE(offset == output_.item_size(), "route size mismatch");
}

// ------------------------------------------------------------ ShortcutLayer

ShortcutLayer::ShortcutLayer(int from, int c, int h, int w, Activation act)
    : from_(from), act_(act) {
  output_.reshape(c, h, w);
}

int ShortcutLayer::prepare_batch(const std::vector<const Tensor*>& inputs) {
  if (producer_ == nullptr) return Layer::prepare_batch(inputs);
  // Fused into the producing conv: the values live in the producer's output
  // tensor (already reshaped by its own prepare_batch); don't grow ours.
  VLACNN_REQUIRE(!inputs.empty() && inputs[0] != nullptr,
                 "shortcut input missing");
  return inputs[0]->n();
}

void ShortcutLayer::forward_item(ExecContext& ctx,
                                 const std::vector<const Tensor*>& inputs,
                                 int b) {
  if (producer_ != nullptr) return;  // add ran in the producer's epilogue
  VLACNN_REQUIRE(inputs.size() == 2, "shortcut expects two inputs");
  const Tensor& prev = *inputs[0];
  const Tensor& skip = *inputs[1];
  const std::size_t elems = output_.item_size();
  VLACNN_REQUIRE(prev.item_size() == elems && skip.item_size() == elems,
                 "shortcut shape mismatch");
  vla::VectorEngine& eng = ctx.engine();
  float* out_b = output_.item_data(b);
  copy_cpu(eng, elems, prev.item_data(b), out_b);
  axpy_cpu(eng, elems, 1.0f, skip.item_data(b), out_b);
  activate_array(eng, out_b, elems, act_);
}

// ------------------------------------------------------------ UpsampleLayer

UpsampleLayer::UpsampleLayer(int c, int in_h, int in_w) {
  output_.reshape(c, in_h * 2, in_w * 2);
  gather_idx_.resize(static_cast<std::size_t>(in_w) * 2);
  for (int x = 0; x < in_w * 2; ++x)
    gather_idx_[static_cast<std::size_t>(x)] = x / 2;
}

void UpsampleLayer::forward_item(ExecContext& ctx,
                                 const std::vector<const Tensor*>& inputs,
                                 int b) {
  VLACNN_REQUIRE(inputs.size() == 1, "upsample expects one input");
  const Tensor& in = *inputs[0];
  const float* in_b = in.item_data(b);
  float* out_b = output_.item_data(b);
  vla::VectorEngine& eng = ctx.engine();
  const int ow = output_.w(), oh = output_.h();
  const int iw = in.w(), ih = in.h();
  for (int c = 0; c < output_.c(); ++c) {
    for (int y = 0; y < oh; ++y) {
      const float* src =
          in_b + (static_cast<std::size_t>(c) * ih + y / 2) * iw;
      float* dst = out_b + (static_cast<std::size_t>(c) * oh + y) * ow;
      for (int x = 0; x < ow;) {
        const std::size_t vl = eng.setvl(static_cast<std::size_t>(ow - x));
        eng.vgather(0, src, gather_idx_.data() + x);
        eng.vstore(0, dst + x);
        eng.scalar_ops(2);
        x += static_cast<int>(vl);
      }
    }
  }
}

// ----------------------------------------------------------- ConnectedLayer

ConnectedLayer::ConnectedLayer(int in_n, int out_n, Activation act,
                               std::uint64_t seed)
    : in_n_(in_n), out_n_(out_n), act_(act) {
  VLACNN_REQUIRE(in_n > 0 && out_n > 0, "bad connected dims");
  output_.reshape(out_n, 1, 1);
  weights_.resize(static_cast<std::size_t>(in_n) * out_n);
  biases_.resize(static_cast<std::size_t>(out_n));
  Rng rng(seed);
  const float scale = std::sqrt(2.0f / static_cast<float>(in_n));
  // Weights are stored transposed (in_n × out_n) so the layer runs as a
  // row-vector GEMM x(1×K)·W^T(K×N) on the installed microkernel, which
  // vectorizes along the output dimension. Logical weight (o, i) keeps the
  // same RNG draw as the historical out_n × in_n layout.
  for (int o = 0; o < out_n; ++o)
    for (int i = 0; i < in_n; ++i)
      weights_[static_cast<std::size_t>(i) * out_n + o] =
          rng.normal(0.0f, scale);
  for (auto& b : biases_) b = rng.uniform(-0.1f, 0.1f);
  w_reg_ = sim::RegisteredRange(weights_.data(), weights_.size() * sizeof(float));
  b_reg_ = sim::RegisteredRange(biases_.data(), biases_.size() * sizeof(float));
}

void ConnectedLayer::forward_item(ExecContext& ctx,
                                  const std::vector<const Tensor*>& inputs,
                                  int b) {
  VLACNN_REQUIRE(inputs.size() == 1, "connected expects one input");
  const Tensor& in = *inputs[0];
  VLACNN_REQUIRE(in.item_size() == static_cast<std::size_t>(in_n_),
                 "connected input size mismatch");
  VLACNN_REQUIRE(static_cast<bool>(ctx.gemm),
                 "ExecContext has no GEMM implementation");
  const float* in_b = in.item_data(b);
  float* out_b = output_.item_data(b);
  vla::VectorEngine& eng = ctx.engine();
  // out(1×N) += x(1×K) · W^T(K×N): the same microkernel that runs the conv
  // layers, so FC layers inherit blocking/packing/intra-op sharding.
  fill_cpu(eng, static_cast<std::size_t>(out_n_), 0.0f, out_b);
  ctx.gemm(eng, 1, out_n_, in_n_, 1.0f, in_b, in_n_, weights_.data(), out_n_,
           out_b, out_n_);
  apply_bias_act(eng, out_b);
}

void ConnectedLayer::apply_bias_act(vla::VectorEngine& eng, float* out_b) {
  constexpr vla::Vreg kAcc = 0, kB = 1;
  for (int i = 0; i < out_n_;) {
    const std::size_t vl = eng.setvl(static_cast<std::size_t>(out_n_ - i));
    eng.vload(kAcc, out_b + i);
    eng.vload(kB, biases_.data() + i);
    eng.vadd(kAcc, kAcc, kB);
    eng.vstore(kAcc, out_b + i);
    eng.scalar_ops(2);
    i += static_cast<int>(vl);
  }
  activate_array(eng, out_b, static_cast<std::size_t>(out_n_), act_);
}

bool ConnectedLayer::forward_batch(ExecContext& ctx,
                                   const std::vector<const Tensor*>& inputs) {
  VLACNN_REQUIRE(inputs.size() == 1, "connected expects one input");
  const Tensor& in = *inputs[0];
  const int nb = in.n();
  if (nb < 2) return false;
  VLACNN_REQUIRE(in.item_size() == static_cast<std::size_t>(in_n_),
                 "connected input size mismatch");
  VLACNN_REQUIRE(static_cast<bool>(ctx.gemm),
                 "ExecContext has no GEMM implementation");
  vla::VectorEngine& eng = ctx.engine();
  // Batch items are contiguous (item stride == in_n_), so the batch IS a
  // GEMM A matrix: out(nb×N) += X(nb×K) · W^T(K×N). One call streams the
  // weight matrix once for the whole batch — and with M = nb > 1 the
  // 6-loop packs each B panel and reuses it across every item's row —
  // where the per-item GEMV re-streams all K×N weights per item. The
  // per-element k-accumulation order is that of the M=1 call, so outputs
  // are bit-identical to the forward_item loop.
  fill_cpu(eng, static_cast<std::size_t>(nb) * out_n_, 0.0f, output_.data());
  ctx.gemm(eng, nb, out_n_, in_n_, 1.0f, in.data(), in_n_, weights_.data(),
           out_n_, output_.data(), out_n_);
  for (int b = 0; b < nb; ++b) apply_bias_act(eng, output_.item_data(b));
  return true;
}

// ------------------------------------------------------------- SoftmaxLayer

SoftmaxLayer::SoftmaxLayer(int c, int h, int w) { output_.reshape(c, h, w); }

void SoftmaxLayer::forward_item(ExecContext& ctx,
                                const std::vector<const Tensor*>& inputs,
                                int b) {
  VLACNN_REQUIRE(inputs.size() == 1, "softmax expects one input");
  const Tensor& in = *inputs[0];
  const std::size_t elems = output_.item_size();
  VLACNN_REQUIRE(in.item_size() == elems, "softmax size mismatch");
  const float* in_b = in.item_data(b);
  float* out_b = output_.item_data(b);
  vla::VectorEngine& eng = ctx.engine();
  float maxv = -std::numeric_limits<float>::max();
  for (std::size_t i = 0; i < elems; ++i) maxv = std::max(maxv, in_b[i]);
  double sum = 0.0;
  for (std::size_t i = 0; i < elems; ++i) {
    out_b[i] = std::exp(in_b[i] - maxv);
    sum += static_cast<double>(out_b[i]);
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t i = 0; i < elems; ++i) out_b[i] *= inv;
  eng.scalar_ops(elems * 6);
  eng.scalar_mem(out_b, elems * sizeof(float), true);
}

// ---------------------------------------------------------------- YoloLayer

YoloLayer::YoloLayer(int c, int h, int w) { output_.reshape(c, h, w); }

void YoloLayer::forward_item(ExecContext& ctx,
                             const std::vector<const Tensor*>& inputs, int b) {
  VLACNN_REQUIRE(inputs.size() == 1, "yolo expects one input");
  copy_cpu(ctx.engine(), inputs[0]->item_size(), inputs[0]->item_data(b),
           output_.item_data(b));
}

}  // namespace vlacnn::dnn

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "dnn/exec_context.hpp"
#include "dnn/tensor.hpp"

namespace vlacnn::dnn {

/// Base class of all network layers. Inputs are resolved by the Network and
/// passed to forward(); each layer owns its output tensor.
///
/// Layers are batched: inputs may carry a batch dimension N, and the output
/// is reshaped to match. The per-item kernel lives in forward_item(), which
/// touches only item `b`'s slice of the inputs and output — that contract is
/// what lets the runtime::BatchScheduler run items of one layer concurrently
/// on different worker threads (each with its own ExecContext) without
/// synchronization. Weights are written once at construction and read-only
/// during forward passes.
class Layer {
 public:
  /// How this layer's output becomes ready to its consumers in a work-graph
  /// execution (runtime::WorkGraph):
  ///  * PerItem — forward_item(b) reads only item `b` of each input and
  ///    writes only item `b` of the output, so item b is consumable as soon
  ///    as it is computed; downstream per-item work may start before the
  ///    rest of the batch exists.
  ///  * Barrier — the layer must observe ALL items of its inputs before any
  ///    work and publishes all output items at once: a sync point in the
  ///    graph. Declared by layers whose execution couples items (a fused
  ///    residual's epilogue reads a whole earlier tensor snapshot); the
  ///    scheduler additionally pins a barrier on layers it dispatches
  ///    batch-fused (weight-resident), whose single forward_batch kernel
  ///    spans the batch by construction.
  enum class Readiness { PerItem, Barrier };

  virtual ~Layer() = default;

  /// Readiness shape of this layer (see Readiness). Defaults to PerItem —
  /// the forward_item contract below is exactly the per-item guarantee.
  [[nodiscard]] virtual Readiness readiness() const {
    return Readiness::PerItem;
  }

  /// Whole-batch forward: prepare_batch() + forward_item() for every item in
  /// order. Batch-1 numerics are bit-identical to the historical
  /// single-image path (same code, same operation order).
  void forward(ExecContext& ctx, const std::vector<const Tensor*>& inputs);

  /// Validates the batched inputs and reshapes the output tensor to their
  /// common batch size (preserving the per-item CHW shape). Returns the
  /// batch size. Must be called (directly or via forward()) before
  /// forward_item(); it is NOT thread-safe and runs on the scheduler thread.
  /// Virtual so a fused-away layer (see ShortcutLayer) can skip reshaping
  /// the output tensor it no longer owns the values of.
  virtual int prepare_batch(const std::vector<const Tensor*>& inputs);

  /// Computes batch item `b` of the output from item `b` of each input.
  virtual void forward_item(ExecContext& ctx,
                            const std::vector<const Tensor*>& inputs,
                            int b) = 0;

  /// Whole-batch fused forward: computes every item in ONE kernel dispatch
  /// (the weight-resident execution path — each weight panel is streamed
  /// once for the whole batch instead of once per item). Returns false when
  /// the layer (or the installed backend) has no batch-fused form; the
  /// caller then falls back to the per-item contract above. Must be
  /// bit-identical to the forward_item loop. Requires prepare_batch() first
  /// and runs on a single ExecContext (callers must not shard it).
  virtual bool forward_batch(ExecContext& ctx,
                             const std::vector<const Tensor*>& inputs) {
    (void)ctx;
    (void)inputs;
    return false;
  }

  /// Indices of the layers whose outputs this layer consumes; -1 denotes the
  /// network input. Default: the previous layer.
  [[nodiscard]] virtual std::vector<int> input_indices() const {
    return {self_index_ - 1};
  }

  [[nodiscard]] virtual std::string name() const = 0;
  /// Multiply-add FLOPs per batch item.
  [[nodiscard]] virtual double flops() const { return 0.0; }
  /// Virtual so a fused-away layer can alias its producer's tensor.
  [[nodiscard]] virtual const Tensor& output() const { return output_; }
  [[nodiscard]] virtual Tensor& output() { return output_; }

  void set_self_index(int i) { self_index_ = i; }
  [[nodiscard]] int self_index() const { return self_index_; }

 protected:
  Tensor output_;
  int self_index_ = -1;
};

/// Convolutional layer: im2col + GEMM (or the ExecContext's convolution
/// override, e.g. Winograd), then batch-norm / bias / activation — exactly
/// the Darknet kernel sequence the paper profiles (§II-B).
class ConvLayer final : public Layer {
 public:
  ConvLayer(const ConvDesc& desc, std::uint64_t weight_seed);

  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  bool forward_batch(ExecContext& ctx,
                     const std::vector<const Tensor*>& inputs) override;
  /// A fused residual pins a sync point: the epilogue add consumes the skip
  /// tensor, and the work-graph treats that read as whole-tensor so the
  /// ordering against the shortcut source never depends on item-level
  /// interleaving.
  [[nodiscard]] Readiness readiness() const override {
    return residual_from_ >= 0 ? Readiness::Barrier : Readiness::PerItem;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double flops() const override {
    // A fused residual moves the shortcut's add into this layer's epilogue.
    return desc_.flops() +
           (residual_from_ >= 0 ? static_cast<double>(output_.item_size())
                                : 0.0);
  }
  [[nodiscard]] std::vector<int> input_indices() const override {
    if (residual_from_ < 0) return {self_index_ - 1};
    return {self_index_ - 1, residual_from_};
  }

  /// Folds a following shortcut layer into this convolution: the skip
  /// tensor (layer `from`'s output) is added element-wise after this
  /// layer's activation, then `post_act` is applied — the exact Darknet
  /// shortcut sequence, expressed through EpilogueDesc so fusing backends
  /// apply it on the output tile in registers. Installed by
  /// Network::fuse_residuals().
  void fuse_residual(int from, Activation post_act) {
    residual_from_ = from;
    residual_act_ = post_act;
  }
  [[nodiscard]] bool has_fused_residual() const { return residual_from_ >= 0; }

  [[nodiscard]] const ConvDesc& desc() const { return desc_; }
  [[nodiscard]] const float* weights() const { return weights_.data(); }
  [[nodiscard]] float* mutable_weights() { return weights_.data(); }

 private:
  ConvDesc desc_;
  int residual_from_ = -1;  // fused shortcut source layer; -1 = none
  Activation residual_act_ = Activation::Linear;
  AlignedBuffer<float> weights_;  // out_c × in_c × k × k
  AlignedBuffer<float> biases_;
  AlignedBuffer<float> bn_scales_;
  AlignedBuffer<float> bn_mean_;
  AlignedBuffer<float> bn_var_;
  sim::RegisteredRange w_reg_, b_reg_, s_reg_, m_reg_, v_reg_;
};

/// Max-pooling layer (Darknet semantics: pad = (size-1)/2 style windows,
/// -FLT_MAX identity).
class MaxPoolLayer final : public Layer {
 public:
  MaxPoolLayer(int in_c, int in_h, int in_w, int size, int stride);

  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double flops() const override;

  [[nodiscard]] int out_h() const { return (in_h_ + pad_ - size_) / stride_ + 1; }
  [[nodiscard]] int out_w() const { return (in_w_ + pad_ - size_) / stride_ + 1; }

 private:
  int in_c_, in_h_, in_w_, size_, stride_, pad_;
};

/// Channel-concatenation (Darknet "route") layer.
class RouteLayer final : public Layer {
 public:
  RouteLayer(std::vector<int> from, int out_c, int h, int w);

  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::vector<int> input_indices() const override { return from_; }
  [[nodiscard]] std::string name() const override { return "route"; }

 private:
  std::vector<int> from_;
};

/// Residual addition (Darknet "shortcut") layer: out = prev + layers[from].
///
/// When Network::fuse_residuals() folds the add into the producing conv
/// layer's epilogue, this layer becomes a zero-cost alias: forward_item is a
/// no-op and output() returns the producer's tensor (downstream layers keep
/// referencing this layer's index unchanged).
class ShortcutLayer final : public Layer {
 public:
  ShortcutLayer(int from, int c, int h, int w, Activation act);

  int prepare_batch(const std::vector<const Tensor*>& inputs) override;
  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::vector<int> input_indices() const override {
    return {self_index_ - 1, from_};
  }
  [[nodiscard]] std::string name() const override {
    return producer_ != nullptr ? "shortcut(fused)" : "shortcut";
  }
  [[nodiscard]] double flops() const override {
    // Fused: the add is accounted in the producing conv layer.
    return producer_ != nullptr ? 0.0
                                : static_cast<double>(output_.item_size());
  }
  [[nodiscard]] const Tensor& output() const override {
    return producer_ != nullptr ? producer_->output() : output_;
  }
  [[nodiscard]] Tensor& output() override {
    return producer_ != nullptr ? producer_->output() : output_;
  }

  [[nodiscard]] int from() const { return from_; }
  [[nodiscard]] Activation activation() const { return act_; }
  /// Marks this layer fused into `producer` (the preceding conv layer).
  void set_fused_into(Layer* producer) { producer_ = producer; }
  [[nodiscard]] bool fused() const { return producer_ != nullptr; }

 private:
  int from_;
  Activation act_;
  Layer* producer_ = nullptr;  // non-null once fused into the conv before it
};

/// Nearest-neighbour 2x upsampling.
class UpsampleLayer final : public Layer {
 public:
  UpsampleLayer(int c, int in_h, int in_w);

  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::string name() const override { return "upsample"; }

 private:
  AlignedBuffer<std::int32_t> gather_idx_;  // per-output-row source indices
};

/// Fully connected layer (Darknet "connected").
class ConnectedLayer final : public Layer {
 public:
  ConnectedLayer(int in_n, int out_n, Activation act, std::uint64_t seed);

  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  bool forward_batch(ExecContext& ctx,
                     const std::vector<const Tensor*>& inputs) override;
  [[nodiscard]] std::string name() const override { return "connected"; }
  [[nodiscard]] double flops() const override {
    return 2.0 * in_n_ * static_cast<double>(out_n_);
  }
  [[nodiscard]] const float* weights() const { return weights_.data(); }
  [[nodiscard]] int in_n() const { return in_n_; }
  [[nodiscard]] int out_n() const { return out_n_; }

 private:
  /// Bias add + activation of one item's output row (shared by the
  /// per-item and batch-fused paths so the op sequence cannot drift).
  void apply_bias_act(vla::VectorEngine& eng, float* out_b);

  int in_n_, out_n_;
  Activation act_;
  AlignedBuffer<float> weights_;  // in_n × out_n row-major (transposed for
                                  // the 1×N GEMV through ctx.gemm)
  AlignedBuffer<float> biases_;
  sim::RegisteredRange w_reg_, b_reg_;
};

/// Softmax over the flattened input (per batch item).
class SoftmaxLayer final : public Layer {
 public:
  SoftmaxLayer(int c, int h, int w);
  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::string name() const override { return "softmax"; }
};

/// YOLO detection head. For this performance study it forwards its input
/// unchanged (box decoding contributes negligible time and is excluded, as
/// in the paper's kernel breakdown); it exists so the model zoo preserves
/// YOLOv3's 107-layer structure.
class YoloLayer final : public Layer {
 public:
  YoloLayer(int c, int h, int w);
  void forward_item(ExecContext& ctx, const std::vector<const Tensor*>& inputs,
                    int b) override;
  [[nodiscard]] std::string name() const override { return "yolo"; }
};

/// The canonical unfused convolution pipeline: fill, im2col into the
/// context workspace (skipped for 1x1/s1, scalar when vectorize_aux is
/// off), then `gemm` — the raw convolution only; BN/bias/activation remain
/// the caller's concern. The single definition shared by ConvLayer's base
/// path and the plan-compiled GEMM backends, so the op sequence (and with
/// it the bit-identical dispatch contract) cannot drift between them.
void run_im2col_gemm(ExecContext& ctx, const ConvDesc& d, const float* input,
                     const float* weights, float* output, const GemmFn& gemm);

}  // namespace vlacnn::dnn

#include "dnn/models.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace vlacnn::dnn {

namespace {

/// Builder wrapper that stops adding layers once the truncation limit is
/// reached (mirrors simulating only a network prefix in gem5).
class TruncatedBuilder {
 public:
  TruncatedBuilder(Network& net, int max_layers)
      : net_(net), max_layers_(max_layers) {}

  [[nodiscard]] bool full() const {
    return max_layers_ >= 0 &&
           static_cast<int>(net_.num_layers()) >= max_layers_;
  }

  int conv(int out_c, int k, int s, int pad,
           Activation act = Activation::Leaky, bool bn = true) {
    if (full()) return -1;
    return net_.add_conv(out_c, k, s, pad, act, bn);
  }
  void maxpool(int size, int stride) {
    if (!full()) net_.add_maxpool(size, stride);
  }
  void route(const std::vector<int>& from) {
    if (!full()) net_.add_route(from);
  }
  void shortcut(int from) {
    if (!full()) net_.add_shortcut(from, Activation::Linear);
  }
  void upsample() {
    if (!full()) net_.add_upsample();
  }
  void connected(int out_n, Activation act) {
    if (!full()) net_.add_connected(out_n, act);
  }
  void softmax() {
    if (!full()) net_.add_softmax();
  }
  void yolo() {
    if (!full()) net_.add_yolo();
  }

  [[nodiscard]] int last() const { return static_cast<int>(net_.num_layers()) - 1; }

 private:
  Network& net_;
  int max_layers_;
};

/// One Darknet-53 residual block: 1x1 bottleneck, 3x3 expand, shortcut.
void residual_block(TruncatedBuilder& b, int channels) {
  const int anchor = b.last();
  b.conv(channels / 2, 1, 1, 0);
  b.conv(channels, 3, 1, 1);
  if (!b.full()) b.shortcut(anchor);
}

}  // namespace

std::unique_ptr<Network> build_yolov3(int input_hw, int max_layers,
                                      std::uint64_t seed) {
  VLACNN_REQUIRE(input_hw % 32 == 0 || max_layers > 0,
                 "full YOLOv3 needs input divisible by 32");
  auto net = std::make_unique<Network>(3, input_hw, input_hw, seed);
  TruncatedBuilder b(*net, max_layers);

  // ---- Darknet-53 backbone (layers 0..74) ----
  b.conv(32, 3, 1, 1);        // 0
  b.conv(64, 3, 2, 1);        // 1
  residual_block(b, 64);      // 2,3,4
  b.conv(128, 3, 2, 1);       // 5
  for (int i = 0; i < 2; ++i) residual_block(b, 128);   // 6..11
  b.conv(256, 3, 2, 1);       // 12
  for (int i = 0; i < 8; ++i) residual_block(b, 256);   // 13..36
  b.conv(512, 3, 2, 1);       // 37
  for (int i = 0; i < 8; ++i) residual_block(b, 512);   // 38..61
  b.conv(1024, 3, 2, 1);      // 62
  for (int i = 0; i < 4; ++i) residual_block(b, 1024);  // 63..74

  // ---- detection head, scale 1 (stride 32) ----
  b.conv(512, 1, 1, 0);   // 75
  b.conv(1024, 3, 1, 1);  // 76
  b.conv(512, 1, 1, 0);   // 77
  b.conv(1024, 3, 1, 1);  // 78
  const int l79 = b.conv(512, 1, 1, 0);   // 79
  b.conv(1024, 3, 1, 1);  // 80
  b.conv(255, 1, 1, 0, Activation::Linear, false);  // 81
  b.yolo();               // 82

  // ---- scale 2 (stride 16) ----
  b.route({l79});         // 83
  b.conv(256, 1, 1, 0);   // 84
  b.upsample();           // 85
  if (!b.full()) b.route({b.last(), 61});  // 86: concat with backbone L61
  b.conv(256, 1, 1, 0);   // 87
  b.conv(512, 3, 1, 1);   // 88
  b.conv(256, 1, 1, 0);   // 89
  b.conv(512, 3, 1, 1);   // 90
  const int l91 = b.conv(256, 1, 1, 0);   // 91
  b.conv(512, 3, 1, 1);   // 92
  b.conv(255, 1, 1, 0, Activation::Linear, false);  // 93
  b.yolo();               // 94

  // ---- scale 3 (stride 8) ----
  b.route({l91});         // 95
  b.conv(128, 1, 1, 0);   // 96
  b.upsample();           // 97
  if (!b.full()) b.route({b.last(), 36});  // 98: concat with backbone L36
  b.conv(128, 1, 1, 0);   // 99
  b.conv(256, 3, 1, 1);   // 100
  b.conv(128, 1, 1, 0);   // 101
  b.conv(256, 3, 1, 1);   // 102
  b.conv(128, 1, 1, 0);   // 103
  b.conv(256, 3, 1, 1);   // 104
  b.conv(255, 1, 1, 0, Activation::Linear, false);  // 105
  b.yolo();               // 106

  return net;
}

std::unique_ptr<Network> build_yolov3_tiny(int input_hw, int max_layers,
                                           std::uint64_t seed) {
  auto net = std::make_unique<Network>(3, input_hw, input_hw, seed);
  TruncatedBuilder b(*net, max_layers);

  b.conv(16, 3, 1, 1);    // 0
  b.maxpool(2, 2);        // 1
  b.conv(32, 3, 1, 1);    // 2
  b.maxpool(2, 2);        // 3
  b.conv(64, 3, 1, 1);    // 4
  b.maxpool(2, 2);        // 5
  b.conv(128, 3, 1, 1);   // 6
  b.maxpool(2, 2);        // 7
  const int l8 = b.conv(256, 3, 1, 1);  // 8
  b.maxpool(2, 2);        // 9
  b.conv(512, 3, 1, 1);   // 10
  b.maxpool(2, 1);        // 11 (stride-1 pool keeps size)
  b.conv(1024, 3, 1, 1);  // 12
  const int l13 = b.conv(256, 1, 1, 0);  // 13
  b.conv(512, 3, 1, 1);   // 14
  b.conv(255, 1, 1, 0, Activation::Linear, false);  // 15
  b.yolo();               // 16
  b.route({l13});         // 17
  b.conv(128, 1, 1, 0);   // 18
  b.upsample();           // 19
  if (!b.full()) b.route({b.last(), l8});  // 20
  b.conv(256, 3, 1, 1);   // 21
  b.conv(255, 1, 1, 0, Activation::Linear, false);  // 22
  b.yolo();               // 23

  return net;
}

std::unique_ptr<Network> build_vgg16(int input_hw, int max_layers,
                                     std::uint64_t seed) {
  VLACNN_REQUIRE(input_hw % 32 == 0 || max_layers > 0,
                 "full VGG16 needs input divisible by 32");
  auto net = std::make_unique<Network>(3, input_hw, input_hw, seed);
  TruncatedBuilder b(*net, max_layers);
  const auto relu = Activation::Relu;

  const int widths[5] = {64, 128, 256, 512, 512};
  const int depth[5] = {2, 2, 3, 3, 3};
  for (int block = 0; block < 5; ++block) {
    for (int i = 0; i < depth[block]; ++i)
      b.conv(widths[block], 3, 1, 1, relu, /*bn=*/false);
    b.maxpool(2, 2);
  }
  b.connected(4096, relu);
  b.connected(4096, relu);
  b.connected(1000, Activation::Linear);
  b.softmax();
  return net;
}

std::unique_ptr<Network> build_yolov3_prefix_20(int input_hw,
                                                std::uint64_t seed) {
  // First 20 layers contain 15 convolutional layers (paper §VI-B).
  auto net = build_yolov3(input_hw, 20, seed);
  VLACNN_ASSERT(net->num_layers() == 20, "prefix truncation mismatch");
  VLACNN_ASSERT(net->num_conv_layers() == 15, "conv count mismatch (want 15)");
  return net;
}

std::unique_ptr<Network> build_yolov3_first4conv(int input_hw,
                                                 std::uint64_t seed) {
  // Layers 0..3 are conv,conv,conv,conv (the 4th residual add is layer 4).
  auto net = build_yolov3(input_hw, 4, seed);
  VLACNN_ASSERT(net->num_conv_layers() == 4, "conv count mismatch (want 4)");
  return net;
}

int model_input_hw(const std::string& model, int requested_hw) {
  if (model == "vgg" || model == "yolo")
    return requested_hw % 32 == 0 ? requested_hw : 64;
  return requested_hw;
}

void warn_if_input_resized(const std::string& model, int requested_hw) {
  const int hw = model_input_hw(model, requested_hw);
  if (hw != requested_hw)
    std::fprintf(stderr,
                 "warning: --model=%s needs --input divisible by 32; "
                 "using %d instead of the requested %d\n",
                 model.c_str(), hw, requested_hw);
}

std::unique_ptr<Network> build_model(const std::string& model,
                                     int requested_hw, std::uint64_t seed) {
  const int hw = model_input_hw(model, requested_hw);
  if (model == "vgg") return build_vgg16(hw, -1, seed);
  if (model == "yolo") return build_yolov3(hw, -1, seed);
  VLACNN_REQUIRE(model == "tiny", "unknown model (tiny|vgg|yolo): " + model);
  return build_yolov3_tiny(hw, -1, seed);
}

}  // namespace vlacnn::dnn

#pragma once

#include <memory>
#include <string>

#include "dnn/network.hpp"

namespace vlacnn::dnn {

/// Model zoo: the three network models the paper evaluates, reconstructed
/// from their Darknet .cfg definitions with deterministic synthetic weights.
///
/// `input_hw` scales the input resolution (must be divisible by 32 for the
/// full models; the paper's Darknet runs resize the 768×576 image to the
/// network input of 608×608). `max_layers` truncates the model to its first
/// N layers — the paper simulates "YOLOv3 (first 20 layers)" and
/// "YOLOv3 (first 4 conv layers)" prefixes to bound gem5 time; we do the
/// same to bound simulation time.

/// YOLOv3: 107 layers, 75 convolutional (Darknet-53 backbone + 3-scale
/// detection head). Conv ordinals match the paper's Table IV "L" numbering.
std::unique_ptr<Network> build_yolov3(int input_hw = 608, int max_layers = -1,
                                      std::uint64_t seed = 1234);

/// YOLOv3-tiny: 24 layers, 13 convolutional.
std::unique_ptr<Network> build_yolov3_tiny(int input_hw = 416,
                                           int max_layers = -1,
                                           std::uint64_t seed = 1234);

/// VGG16: 13 convolutional + 5 maxpool + 3 fully-connected + softmax.
std::unique_ptr<Network> build_vgg16(int input_hw = 224, int max_layers = -1,
                                     std::uint64_t seed = 1234);

/// Truncation helper: the first `n` layers of YOLOv3 such that exactly the
/// paper's workloads are reproduced (20 layers -> 15 conv; 4 conv layers).
std::unique_ptr<Network> build_yolov3_prefix_20(int input_hw = 608,
                                                std::uint64_t seed = 1234);
std::unique_ptr<Network> build_yolov3_first4conv(int input_hw = 608,
                                                 std::uint64_t seed = 1234);

/// The input resolution the named model ("tiny" | "vgg" | "yolo") will
/// actually be built at: the full models need a multiple of 32 and fall back
/// to 64 otherwise; tiny accepts anything. Harnesses compare this against
/// the requested size and warn instead of silently serving a different
/// resolution.
int model_input_hw(const std::string& model, int requested_hw);

/// Prints the one canonical stderr warning when model_input_hw() will
/// adjust `requested_hw` — call before build_model() in any harness taking
/// --model/--input flags so the rounding is never silent.
void warn_if_input_resized(const std::string& model, int requested_hw);

/// Builds "tiny" | "vgg" | "yolo" at model_input_hw(model, requested_hw).
/// Throws InvalidArgument for an unknown model name.
std::unique_ptr<Network> build_model(const std::string& model,
                                     int requested_hw,
                                     std::uint64_t seed = 1234);

}  // namespace vlacnn::dnn

#include "dnn/network.hpp"

#include <sstream>

namespace vlacnn::dnn {

Network::Network(int in_c, int in_h, int in_w, std::uint64_t seed)
    : in_c_(in_c), in_h_(in_h), in_w_(in_w),
      cur_c_(in_c), cur_h_(in_h), cur_w_(in_w), seed_(seed) {
  VLACNN_REQUIRE(in_c > 0 && in_h > 0 && in_w > 0, "bad network input shape");
}

int Network::push(std::unique_ptr<Layer> layer, int c, int h, int w) {
  layer->set_self_index(static_cast<int>(layers_.size()));
  layers_.push_back(std::move(layer));
  cur_c_ = c;
  cur_h_ = h;
  cur_w_ = w;
  return static_cast<int>(layers_.size()) - 1;
}

int Network::add_conv(int out_c, int ksize, int stride, int pad,
                      Activation act, bool batch_norm) {
  ConvDesc d;
  d.in_c = cur_c_;
  d.in_h = cur_h_;
  d.in_w = cur_w_;
  d.out_c = out_c;
  d.ksize = ksize;
  d.stride = stride;
  d.pad = pad;
  d.act = act;
  d.batch_norm = batch_norm;
  auto layer = std::make_unique<ConvLayer>(d, next_seed());
  const int oh = d.out_h(), ow = d.out_w();
  return push(std::move(layer), out_c, oh, ow);
}

int Network::add_maxpool(int size, int stride) {
  auto layer = std::make_unique<MaxPoolLayer>(cur_c_, cur_h_, cur_w_, size, stride);
  const int oh = layer->out_h(), ow = layer->out_w();
  return push(std::move(layer), cur_c_, oh, ow);
}

int Network::add_route(const std::vector<int>& from) {
  int total_c = 0;
  int h = 0, w = 0;
  for (int idx : from) {
    VLACNN_REQUIRE(idx >= 0 && idx < static_cast<int>(layers_.size()),
                   "route source out of range");
    const Tensor& t = layers_[static_cast<std::size_t>(idx)]->output();
    if (h == 0) {
      h = t.h();
      w = t.w();
    }
    VLACNN_REQUIRE(t.h() == h && t.w() == w, "route spatial mismatch");
    total_c += t.c();
  }
  return push(std::make_unique<RouteLayer>(from, total_c, h, w), total_c, h, w);
}

int Network::add_shortcut(int from, Activation act) {
  VLACNN_REQUIRE(from >= 0 && from < static_cast<int>(layers_.size()),
                 "shortcut source out of range");
  return push(std::make_unique<ShortcutLayer>(from, cur_c_, cur_h_, cur_w_, act),
              cur_c_, cur_h_, cur_w_);
}

int Network::add_upsample() {
  return push(std::make_unique<UpsampleLayer>(cur_c_, cur_h_, cur_w_), cur_c_,
              cur_h_ * 2, cur_w_ * 2);
}

int Network::add_connected(int out_n, Activation act) {
  const int in_n = cur_c_ * cur_h_ * cur_w_;
  return push(std::make_unique<ConnectedLayer>(in_n, out_n, act, next_seed()),
              out_n, 1, 1);
}

int Network::add_softmax() {
  return push(std::make_unique<SoftmaxLayer>(cur_c_, cur_h_, cur_w_), cur_c_,
              cur_h_, cur_w_);
}

int Network::add_yolo() {
  return push(std::make_unique<YoloLayer>(cur_c_, cur_h_, cur_w_), cur_c_,
              cur_h_, cur_w_);
}

int Network::fuse_residuals() {
  // References to each layer's output in the unfused graph; a conv whose
  // raw output feeds anything beyond its shortcut cannot be folded.
  std::vector<int> refs(layers_.size(), 0);
  for (const auto& l : layers_)
    for (int idx : l->input_indices())
      if (idx >= 0) ++refs[static_cast<std::size_t>(idx)];
  int fused = 0;
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    auto* sc = dynamic_cast<ShortcutLayer*>(layers_[i].get());
    if (sc == nullptr || sc->fused()) continue;
    auto* conv = dynamic_cast<ConvLayer*>(layers_[i - 1].get());
    if (conv == nullptr || conv->has_fused_residual()) continue;
    if (refs[i - 1] != 1) continue;
    conv->fuse_residual(sc->from(), sc->activation());
    sc->set_fused_into(conv);
    ++fused;
  }
  return fused;
}

const Tensor& Network::forward(ExecContext& ctx, const Tensor& input) {
  VLACNN_REQUIRE(!layers_.empty(), "empty network");
  VLACNN_REQUIRE(input.c() == in_c_ && input.h() == in_h_ && input.w() == in_w_,
                 "network input shape mismatch");
  sim::SimContext* sctx = ctx.engine().context();
  for (auto& layer : layers_) {
    std::vector<const Tensor*> ins;
    for (int idx : layer->input_indices()) {
      if (idx < 0)
        ins.push_back(&input);
      else
        ins.push_back(&layers_[static_cast<std::size_t>(idx)]->output());
    }
    const std::uint64_t before = sctx ? sctx->timing().finish() : 0;
    layer->forward(ctx, ins);
    LayerRecord rec;
    rec.name = layer->name();
    rec.flops = layer->flops() * input.n();
    rec.items = input.n();
    if (const auto* conv = dynamic_cast<const ConvLayer*>(layer.get())) {
      rec.algo = ctx.conv_label ? ctx.conv_label(conv->desc())
                                : (ctx.conv_backend ? "auto" : "im2col+gemm");
    } else {
      rec.algo = "aux";
    }
    if (sctx) rec.cycles = sctx->timing().finish() - before;
    ctx.records.push_back(std::move(rec));
  }
  return layers_.back()->output();
}

double Network::total_flops() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l->flops();
  return total;
}

std::size_t Network::num_conv_layers() const {
  std::size_t n = 0;
  for (const auto& l : layers_)
    if (dynamic_cast<const ConvLayer*>(l.get()) != nullptr) ++n;
  return n;
}

std::string Network::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Tensor& t = layers_[i]->output();
    out << i << "\t" << layers_[i]->name() << "\t-> " << t.shape_str() << "\n";
  }
  return out.str();
}

}  // namespace vlacnn::dnn

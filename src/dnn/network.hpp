#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dnn/layers.hpp"

namespace vlacnn::dnn {

/// A feed-forward layer graph with Darknet-style indexed skip connections
/// (route / shortcut reference earlier layer outputs by index).
///
/// Built through the add_* API (used by the model zoo in models.hpp); tracks
/// the running output shape so convolutional descriptors are derived
/// automatically, like parsing a .cfg file would.
class Network {
 public:
  Network(int in_c, int in_h, int in_w, std::uint64_t seed = 1234);

  // ---- builder API (returns the new layer's index) ----
  int add_conv(int out_c, int ksize, int stride, int pad, Activation act,
               bool batch_norm);
  int add_maxpool(int size, int stride);
  int add_route(const std::vector<int>& from);
  int add_shortcut(int from, Activation act = Activation::Linear);
  int add_upsample();
  int add_connected(int out_n, Activation act);
  int add_softmax();
  int add_yolo();

  /// Runs inference; returns the last layer's output.
  const Tensor& forward(ExecContext& ctx, const Tensor& input);

  /// Folds every shortcut layer that directly follows the convolution
  /// producing its left operand into that convolution's epilogue (ROADMAP
  /// fused follow-up (b)): the conv gains the skip tensor as a second input
  /// and applies add + shortcut-activation via EpilogueDesc — in-kernel on
  /// fusing backends, as a post-pass otherwise — and the shortcut layer
  /// becomes a zero-cost alias of the conv's output. Numerics are
  /// bit-identical to the unfused graph. Only shortcuts whose producing
  /// conv is not consumed by any other layer are folded (the raw pre-add
  /// activation map must not be observable). Returns the number of folded
  /// shortcuts; safe to call more than once.
  int fuse_residuals();

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }

  [[nodiscard]] int in_c() const { return in_c_; }
  [[nodiscard]] int in_h() const { return in_h_; }
  [[nodiscard]] int in_w() const { return in_w_; }

  /// Shape after the last added layer (builder state).
  [[nodiscard]] int cur_c() const { return cur_c_; }
  [[nodiscard]] int cur_h() const { return cur_h_; }
  [[nodiscard]] int cur_w() const { return cur_w_; }

  /// Total conv/FC multiply-add FLOPs.
  [[nodiscard]] double total_flops() const;

  /// Number of convolutional layers.
  [[nodiscard]] std::size_t num_conv_layers() const;

  /// One line per layer (index, kind, output shape), like `darknet detect`.
  [[nodiscard]] std::string summary() const;

 private:
  std::uint64_t next_seed() { return seed_ ^ (layers_.size() * 0x9e3779b9ULL); }
  int push(std::unique_ptr<Layer> layer, int c, int h, int w);

  int in_c_, in_h_, in_w_;
  int cur_c_, cur_h_, cur_w_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace vlacnn::dnn

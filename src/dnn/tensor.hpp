#pragma once

#include <cstddef>
#include <string>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/address_map.hpp"

namespace vlacnn::dnn {

/// Single-batch CHW fp32 tensor (inference framework, batch = 1 as in the
/// paper's Darknet runs). Storage is 256-byte aligned and registered with the
/// simulator's AddressMap so cache behaviour is deterministic across runs.
class Tensor {
 public:
  Tensor() = default;

  Tensor(int c, int h, int w) { reshape(c, h, w); }

  /// Flat 1-D tensor (used for FC layers and weights).
  explicit Tensor(std::size_t n) { reshape(static_cast<int>(n), 1, 1); }

  void reshape(int c, int h, int w) {
    VLACNN_REQUIRE(c > 0 && h > 0 && w > 0, "tensor dims must be positive");
    c_ = c;
    h_ = h;
    w_ = w;
    reg_ = {};  // unregister the old range before the buffer is reallocated
    data_.resize(static_cast<std::size_t>(c) * h * w);
    data_.fill(0.0f);
    reg_ = sim::RegisteredRange(data_.data(), data_.size() * sizeof(float));
  }

  [[nodiscard]] int c() const { return c_; }
  [[nodiscard]] int h() const { return h_; }
  [[nodiscard]] int w() const { return w_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& at(int ch, int y, int x) {
    return data_[(static_cast<std::size_t>(ch) * h_ + y) * w_ + x];
  }
  [[nodiscard]] const float& at(int ch, int y, int x) const {
    return data_[(static_cast<std::size_t>(ch) * h_ + y) * w_ + x];
  }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float v) { data_.fill(v); }

  /// Deterministic pseudo-random content (weights / synthetic inputs).
  void randomize(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    for (std::size_t i = 0; i < data_.size(); ++i)
      data_[i] = rng.uniform(lo, hi);
  }

  [[nodiscard]] std::string shape_str() const {
    return std::to_string(c_) + "x" + std::to_string(h_) + "x" +
           std::to_string(w_);
  }

 private:
  int c_ = 0, h_ = 0, w_ = 0;
  AlignedBuffer<float> data_;
  sim::RegisteredRange reg_;
};

}  // namespace vlacnn::dnn

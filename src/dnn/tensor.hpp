#pragma once

#include <cstddef>
#include <string>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/address_map.hpp"

namespace vlacnn::dnn {

/// NCHW fp32 tensor (inference framework). The batch dimension defaults to 1
/// (the paper's single-image Darknet runs); the batched runtime in
/// src/runtime shards items of an N>1 tensor across worker threads, each item
/// being an independent CHW image. Storage is 256-byte aligned and registered
/// with the simulator's AddressMap so cache behaviour is deterministic across
/// runs.
class Tensor {
 public:
  Tensor() = default;

  Tensor(int c, int h, int w) { reshape(c, h, w); }

  Tensor(int n, int c, int h, int w) { reshape(n, c, h, w); }

  /// Flat 1-D tensor (used for FC layers and weights).
  explicit Tensor(std::size_t n) { reshape(static_cast<int>(n), 1, 1); }

  /// Batch-1 reshape (the historical CHW API).
  void reshape(int c, int h, int w) { reshape(1, c, h, w); }

  void reshape(int n, int c, int h, int w) {
    VLACNN_REQUIRE(n > 0 && c > 0 && h > 0 && w > 0,
                   "tensor dims must be positive");
    n_ = n;
    c_ = c;
    h_ = h;
    w_ = w;
    reg_ = {};  // unregister the old range before the buffer is reallocated
    data_.resize(static_cast<std::size_t>(n) * c * h * w);
    data_.fill(0.0f);
    reg_ = sim::RegisteredRange(data_.data(), data_.size() * sizeof(float));
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int c() const { return c_; }
  [[nodiscard]] int h() const { return h_; }
  [[nodiscard]] int w() const { return w_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Elements of one batch item (c*h*w).
  [[nodiscard]] std::size_t item_size() const {
    return static_cast<std::size_t>(c_) * h_ * w_;
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Pointer to batch item `b`'s CHW block.
  [[nodiscard]] float* item_data(int b) {
    return data_.data() + static_cast<std::size_t>(b) * item_size();
  }
  [[nodiscard]] const float* item_data(int b) const {
    return data_.data() + static_cast<std::size_t>(b) * item_size();
  }

  /// Batch-0 element access (the historical CHW API).
  float& at(int ch, int y, int x) {
    return data_[(static_cast<std::size_t>(ch) * h_ + y) * w_ + x];
  }
  [[nodiscard]] const float& at(int ch, int y, int x) const {
    return data_[(static_cast<std::size_t>(ch) * h_ + y) * w_ + x];
  }

  float& at(int b, int ch, int y, int x) {
    return data_[((static_cast<std::size_t>(b) * c_ + ch) * h_ + y) * w_ + x];
  }
  [[nodiscard]] const float& at(int b, int ch, int y, int x) const {
    return data_[((static_cast<std::size_t>(b) * c_ + ch) * h_ + y) * w_ + x];
  }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float v) { data_.fill(v); }

  /// Deterministic pseudo-random content (weights / synthetic inputs).
  void randomize(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    for (std::size_t i = 0; i < data_.size(); ++i)
      data_[i] = rng.uniform(lo, hi);
  }

  /// Per-item deterministic randomization: item `b` is filled from its own
  /// RNG stream derived from (seed, b), so the values of each batch item are
  /// independent of batch size, item order, and worker interleaving. A
  /// batch-1 tensor randomized with stream b equals item b of a batched one.
  void randomize_batch(std::uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
    for (int b = 0; b < n_; ++b) randomize_item(b, seed, lo, hi);
  }

  void randomize_item(int b, std::uint64_t seed, float lo = -1.0f,
                      float hi = 1.0f) {
    Rng rng = Rng::for_stream(seed, static_cast<std::uint64_t>(b));
    float* p = item_data(b);
    for (std::size_t i = 0; i < item_size(); ++i) p[i] = rng.uniform(lo, hi);
  }

  [[nodiscard]] std::string shape_str() const {
    const std::string chw = std::to_string(c_) + "x" + std::to_string(h_) +
                            "x" + std::to_string(w_);
    return n_ == 1 ? chw : std::to_string(n_) + "x" + chw;
  }

 private:
  int n_ = 1, c_ = 0, h_ = 0, w_ = 0;
  AlignedBuffer<float> data_;
  sim::RegisteredRange reg_;
};

}  // namespace vlacnn::dnn

#include "gemm/blocking.hpp"

#include <algorithm>

namespace vlacnn::gemm {

BlockSizes tune_block_sizes(const sim::MachineConfig& cfg, int unroll) {
  BlockSizes b;
  b.block_m = unroll;

  // blockN: a multiple of the vector length, sized so that the packed B
  // panel (blockK x blockN) occupies at most half the L2.
  const int vl_elems = static_cast<int>(cfg.elements_per_vreg());
  b.block_n = std::max(vl_elems, 512 / vl_elems * vl_elems);
  if (b.block_n < vl_elems) b.block_n = vl_elems;

  // blockK: packed A (blockM x blockK) in half the L1; packed B in half L2.
  const auto l1_budget = static_cast<std::size_t>(cfg.l1.size_bytes / 2);
  const auto l2_budget = static_cast<std::size_t>(cfg.l2.size_bytes / 2);
  int bk = 128;
  while (static_cast<std::size_t>(b.block_m) * (bk * 2) * sizeof(float) <=
             l1_budget &&
         static_cast<std::size_t>(bk * 2) * b.block_n * sizeof(float) <=
             l2_budget &&
         bk < 2048)
    bk *= 2;
  while ((static_cast<std::size_t>(b.block_m) * bk * sizeof(float) > l1_budget ||
          static_cast<std::size_t>(bk) * b.block_n * sizeof(float) > l2_budget) &&
         bk > 16)
    bk /= 2;
  b.block_k = bk;
  return b;
}

}  // namespace vlacnn::gemm

#pragma once

#include <string>

#include "sim/machine_config.hpp"

namespace vlacnn::gemm {

/// Cache-blocking parameters of the 6-loop BLIS-like GEMM (paper Fig. 3:
/// blockM, blockN, blockK). The paper's Table II explores candidates such as
/// 128x1024x256 and finds 16x512x128 best on RISC-V Vector.
struct BlockSizes {
  int block_m = 16;
  int block_n = 512;
  int block_k = 128;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(block_m) + "x" + std::to_string(block_n) + "x" +
           std::to_string(block_k);
  }

  /// Bytes of the packed B panel (the block BLIS keeps L2-resident).
  [[nodiscard]] std::size_t packed_b_bytes() const {
    return static_cast<std::size_t>(block_k) * block_n * sizeof(float);
  }
  /// Bytes of the packed A panel (kept L1-resident in BLIS).
  [[nodiscard]] std::size_t packed_a_bytes() const {
    return static_cast<std::size_t>(block_m) * block_k * sizeof(float);
  }
};

/// BLIS-style block-size heuristic: fit the packed B panel in half the L2
/// and the packed A panel in half the L1, with blockM equal to the register
/// unroll and blockN a multiple of the hardware vector length.
BlockSizes tune_block_sizes(const sim::MachineConfig& cfg, int unroll = 16);

}  // namespace vlacnn::gemm

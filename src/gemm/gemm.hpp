#pragma once

#include <memory>
#include <string>

#include "dnn/exec_context.hpp"
#include "gemm/blocking.hpp"
#include "gemm/gemm_naive.hpp"
#include "gemm/gemm_opt3.hpp"
#include "gemm/gemm_opt6.hpp"
#include "gemm/gemm_ref.hpp"

namespace vlacnn::gemm {

/// The GEMM implementations the paper compares (§IV-A, §VI).
enum class GemmVariant {
  Naive,     ///< Fig. 1 — scalar Darknet baseline
  Opt3Loop,  ///< Fig. 2 — vectorized + reordered + unrolled
  Opt6Loop,  ///< Fig. 3 — BLIS-like blocked + packed + prefetched
};

inline const char* to_string(GemmVariant v) {
  switch (v) {
    case GemmVariant::Naive: return "naive";
    case GemmVariant::Opt3Loop: return "opt-3loop";
    case GemmVariant::Opt6Loop: return "opt-6loop";
  }
  return "?";
}

/// Materializes a fresh Gemm6 instance (own packing buffers) with its
/// intra-op pool wired — the single construction point shared by
/// make_gemm_fn and core::ConvolutionEngine::install (which additionally
/// exposes the instance's conv_fused entry).
inline std::shared_ptr<Gemm6> make_gemm6(
    const Opt6Config& o6, runtime::ThreadPool* intra_op_pool = nullptr) {
  auto impl = std::make_shared<Gemm6>(o6);
  impl->set_intra_op_pool(intra_op_pool);
  return impl;
}

/// Adapts a shared Gemm6 to the dnn::GemmFn interface.
inline dnn::GemmFn wrap_gemm6(std::shared_ptr<Gemm6> impl) {
  return [impl = std::move(impl)](vla::VectorEngine& eng, int M, int N, int K,
                                  float alpha, const float* A, int lda,
                                  const float* B, int ldb, float* C,
                                  int ldc) {
    (*impl)(eng, M, N, K, alpha, A, lda, B, ldb, C, ldc);
  };
}

/// Builds a dnn::GemmFn for the given variant. For Opt6Loop, block sizes
/// default to the BLIS heuristic for `machine` (pass std::nullopt-like
/// default-constructed BlockSizes with tune=true) or use the given blocks.
///
/// Each call materializes fresh algorithm state (notably the Opt6Loop
/// packing buffers), so every ExecContext gets its own instance and
/// contexts can run forward passes concurrently. `intra_op_pool` optionally
/// shards the Opt6Loop M-panel loop across a thread pool (batch-1 case).
inline dnn::GemmFn make_gemm_fn(GemmVariant v, const Opt3Config& o3 = {},
                                const Opt6Config& o6 = {},
                                runtime::ThreadPool* intra_op_pool = nullptr) {
  switch (v) {
    case GemmVariant::Naive:
      return [](vla::VectorEngine& eng, int M, int N, int K, float alpha,
                const float* A, int lda, const float* B, int ldb, float* C,
                int ldc) {
        gemm_naive(eng, M, N, K, alpha, A, lda, B, ldb, C, ldc);
      };
    case GemmVariant::Opt3Loop:
      return [o3](vla::VectorEngine& eng, int M, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float* C,
                  int ldc) {
        gemm_opt3(eng, o3, M, N, K, alpha, A, lda, B, ldb, C, ldc);
      };
    case GemmVariant::Opt6Loop:
      return wrap_gemm6(make_gemm6(o6, intra_op_pool));
  }
  return {};
}

}  // namespace vlacnn::gemm

#include "gemm/gemm_naive.hpp"

#include <cstddef>

namespace vlacnn::gemm {

void gemm_naive(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                const float* A, int lda, const float* B, int ldb, float* C,
                int ldc) {
  for (int i = 0; i < M; ++i) {
    float* crow = C + static_cast<std::size_t>(i) * ldc;
    for (int k = 0; k < K; ++k) {
      const float a = alpha * A[static_cast<std::size_t>(i) * lda + k];
      const float* brow = B + static_cast<std::size_t>(k) * ldb;
      for (int j = 0; j < N; ++j) crow[j] += a * brow[j];

      // Simulated cost of the scalar inner loop: one load of A, and per
      // element a B load, C load, FMA, C store, address updates and the
      // loop branch (~7 ops, what -O3 -fno-vectorize emits), plus the row
      // traffic of B (read) and C (read-modify-write) through L1.
      eng.scalar_mem(&A[static_cast<std::size_t>(i) * lda + k], sizeof(float),
                     false);
      eng.scalar_ops(static_cast<std::uint64_t>(N) * 7);
      eng.scalar_mem(brow, static_cast<std::size_t>(N) * sizeof(float), false);
      eng.scalar_mem(crow, static_cast<std::size_t>(N) * sizeof(float), true);
    }
  }
}

}  // namespace vlacnn::gemm

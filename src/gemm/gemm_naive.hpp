#pragma once

#include "vla/vector_engine.hpp"

namespace vlacnn::gemm {

/// The naive Darknet GEMM of the paper's Fig. 1, modelling the baseline
/// build (`-O3 -fno-vectorize`, no manual vectorization): a scalar i/k/j
/// triple loop. Numerics are computed natively; the simulated cost charges
/// two scalar ALU ops per inner multiply-add plus the B/C row traffic
/// through the scalar (L1) path.
void gemm_naive(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                const float* A, int lda, const float* B, int ldb, float* C,
                int ldc);

}  // namespace vlacnn::gemm

#include "gemm/gemm_opt3.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vlacnn::gemm {

namespace {
constexpr int kMaxAccRegs = 30;  // v0..v29 accumulators, v30 = B row
constexpr vla::Vreg kVB = 30;
}  // namespace

void gemm_opt3(vla::VectorEngine& eng, const Opt3Config& cfg, int M, int N,
               int K, float alpha, const float* A, int lda, const float* B,
               int ldb, float* C, int ldc) {
  VLACNN_REQUIRE(cfg.unroll_factor >= 1 && cfg.unroll_factor <= 64,
                 "unroll factor out of range");
  const int unroll = cfg.unroll_factor;
  const int in_regs = std::min(unroll, kMaxAccRegs);

  for (int j = 0; j < N;) {
    const auto gvl = static_cast<int>(eng.setvl(static_cast<std::size_t>(N - j)));
    eng.scalar_ops(2);  // strip-mine bookkeeping
    for (int i = 0; i < M; i += unroll) {
      const int rows = std::min(unroll, M - i);
      const int reg_rows = std::min(rows, in_regs);
      eng.scalar_ops(3);  // i-loop bookkeeping + address setup

      // Load the C tile into vector accumulators (v0..v(reg_rows-1)).
      for (int u = 0; u < reg_rows; ++u)
        eng.vload(u, C + static_cast<std::size_t>(i + u) * ldc + j);

      for (int k = 0; k < K; ++k) {
        eng.vload(kVB, B + static_cast<std::size_t>(k) * ldb + j);
        eng.scalar_ops(2);  // k-loop bookkeeping
        for (int u = 0; u < rows; ++u) {
          const float* a_ptr = A + static_cast<std::size_t>(i + u) * lda + k;
          eng.scalar_mem(a_ptr, sizeof(float), false);
          float a = *a_ptr;
          if (alpha != 1.0f) {  // paper: skip the multiply when ALPHA == 1
            a *= alpha;
            eng.scalar_ops(1);
          }
          if (u < reg_rows) {
            eng.vfma_scalar(u, a, kVB);
          } else {
            // Spilled accumulator: round-trips through memory every FMA.
            float* crow = C + static_cast<std::size_t>(i + u) * ldc + j;
            eng.vload(31, crow);
            eng.vfma_scalar(31, a, kVB);
            eng.vstore(31, crow);
          }
        }
      }

      for (int u = 0; u < reg_rows; ++u)
        eng.vstore(u, C + static_cast<std::size_t>(i + u) * ldc + j);
    }
    j += gvl;
  }
}

void gemm_opt3_default(vla::VectorEngine& eng, int M, int N, int K,
                       float alpha, const float* A, int lda, const float* B,
                       int ldb, float* C, int ldc) {
  gemm_opt3(eng, Opt3Config{}, M, N, K, alpha, A, lda, B, ldb, C, ldc);
}

}  // namespace vlacnn::gemm

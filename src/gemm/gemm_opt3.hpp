#pragma once

#include "vla/vector_engine.hpp"

namespace vlacnn::gemm {

/// Tuning knobs of the optimized 3-loop GEMM (paper Fig. 2).
struct Opt3Config {
  /// Rows of C accumulated simultaneously in vector registers. The paper
  /// tunes this to 16 (no gain beyond 16 on RVV; 32 spills and loses ~15%).
  int unroll_factor = 16;
};

/// Optimized 3-loop GEMM (paper Fig. 2): the N loop is strip-mined by the
/// granted vector length (vsetvl), the M loop is unrolled by
/// `unroll_factor` with one vector accumulator per row, and the K loop
/// broadcasts A elements into vector-scalar FMAs over a single B row load.
/// Loop order (j, i, k) maximizes reuse of the loaded B vector and keeps all
/// memory accesses unit-stride.
///
/// Accumulators live in v0..v29; B occupies v30. If `unroll_factor`
/// exceeds the 30 available accumulators, the surplus rows are spilled:
/// each spilled accumulator is re-loaded and re-stored around every FMA,
/// reproducing the register-spilling slowdown the paper observed at 32.
void gemm_opt3(vla::VectorEngine& eng, const Opt3Config& cfg, int M, int N,
               int K, float alpha, const float* A, int lda, const float* B,
               int ldb, float* C, int ldc);

/// gemm_opt3 with the paper's default unroll factor of 16.
void gemm_opt3_default(vla::VectorEngine& eng, int M, int N, int K,
                       float alpha, const float* A, int lda, const float* B,
                       int ldb, float* C, int ldc);

}  // namespace vlacnn::gemm

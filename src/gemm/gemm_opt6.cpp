#include "gemm/gemm_opt6.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "dnn/im2col.hpp"
#include "runtime/thread_pool.hpp"

namespace vlacnn::gemm {

namespace {
constexpr int kMaxAccRegs = 30;
constexpr vla::Vreg kVB = 30;
constexpr vla::Vreg kVTmp = 31;

/// Strip-mined unit-stride copy of `n` floats through kVTmp — the one
/// vector-copy idiom (and its scalar bookkeeping charge) shared by the
/// A-pack, the batched dense B-pack and the batched C scatter.
void vcopy_run(vla::VectorEngine& eng, const float* src, float* dst, int n) {
  eng.scalar_ops(2);
  for (int i = 0; i < n;) {
    const auto vl =
        static_cast<int>(eng.setvl(static_cast<std::size_t>(n - i)));
    eng.vload(kVTmp, src + i);
    eng.vstore(kVTmp, dst + i);
    eng.scalar_ops(2);
    i += vl;
  }
}
}  // namespace

Gemm6::Gemm6(const Opt6Config& cfg) : cfg_(cfg) {
  VLACNN_REQUIRE(cfg.blocks.block_m >= 1 && cfg.blocks.block_n >= 1 &&
                     cfg.blocks.block_k >= 1,
                 "block sizes must be positive");
  VLACNN_REQUIRE(cfg.unroll_factor >= 1 && cfg.unroll_factor <= kMaxAccRegs,
                 "6-loop unroll must fit the register file");
  pack_a_buf_.resize(static_cast<std::size_t>(cfg.blocks.block_m) *
                     cfg.blocks.block_k);
  pack_b_buf_.resize(static_cast<std::size_t>(cfg.blocks.block_k) *
                     cfg.blocks.block_n);
  pa_reg_ = sim::RegisteredRange(pack_a_buf_.data(),
                                 pack_a_buf_.size() * sizeof(float));
  pb_reg_ = sim::RegisteredRange(pack_b_buf_.data(),
                                 pack_b_buf_.size() * sizeof(float));
}

void Gemm6::pack_b_panel_implicit(vla::VectorEngine& eng,
                                  const dnn::ConvDesc& d, const float* input,
                                  int k0, int kc, int j0, int nc) {
  // Same micro-panel layout as pack_b_panel, but the source rows are im2col
  // rows gathered straight from the input image: the full K×N workspace (and
  // its write + re-read traffic) never exists.
  const int panel_w = static_cast<int>(eng.vlmax());
  for (int jp = 0, strip = 0; jp < nc; jp += panel_w, ++strip) {
    const int w = std::min(panel_w, nc - jp);
    float* strip_base = pack_b_buf_.data() +
                        static_cast<std::size_t>(strip) * kc * panel_w;
    eng.scalar_ops(2);
    for (int k = 0; k < kc; ++k)
      dnn::im2col_pack_segment(eng, d, input, k0 + k, j0 + jp, w,
                               strip_base + static_cast<std::size_t>(k) * panel_w);
  }
}

void Gemm6::pack_b_panel_batched(vla::VectorEngine& eng, const BatchB& bb,
                                 const dnn::ConvDesc* conv, int k0, int kc,
                                 int j0, int nc) {
  // Same micro-panel layout as pack_b_panel, but the logical B matrix is
  // the column-axis concatenation of every batch item's (implicit or dense)
  // B. Strips may straddle item boundaries, so each row segment is gathered
  // per item piece; the packed bytes are exactly what per-item packing
  // would produce, which is what keeps the micro-kernel numerics
  // bit-identical to the per-item path.
  const int panel_w = static_cast<int>(eng.vlmax());
  for (int jp = 0, strip = 0; jp < nc; jp += panel_w, ++strip) {
    const int w = std::min(panel_w, nc - jp);
    float* strip_base =
        pack_b_buf_.data() + static_cast<std::size_t>(strip) * kc * panel_w;
    eng.scalar_ops(2);
    for (int k = 0; k < kc; ++k) {
      float* dst = strip_base + static_cast<std::size_t>(k) * panel_w;
      int col = j0 + jp;
      int left = w;
      int off = 0;
      while (left > 0) {
        const int item = col / bb.n_item;
        const int local = col % bb.n_item;
        const int take = std::min(left, bb.n_item - local);
        const float* in_item =
            bb.input + static_cast<std::size_t>(item) * bb.item_stride;
        if (conv != nullptr) {
          dnn::im2col_pack_segment(eng, *conv, in_item, k0 + k, local, take,
                                   dst + off);
        } else {
          // Dense 1x1/s1 item: row k0+k of its B is a contiguous input run.
          vcopy_run(eng,
                    in_item + static_cast<std::size_t>(k0 + k) * bb.n_item +
                        local,
                    dst + off, take);
        }
        col += take;
        off += take;
        left -= take;
      }
    }
  }
}

void Gemm6::pack_b_panel(vla::VectorEngine& eng, const float* B, int ldb,
                         int k0, int kc, int j0, int nc) {
  // BLIS-style micro-panel layout: the panel is split into strips of NR =
  // VLMAX columns; within a strip, the kc rows are stored contiguously so
  // that the micro-kernel's k-walk is perfectly sequential (this is what
  // lets the A64FX stream prefetcher hide the panel traffic — and why the
  // packing buys nothing on the L2-connected RVV vector unit).
  const int panel_w = static_cast<int>(eng.vlmax());
  for (int jp = 0, strip = 0; jp < nc; jp += panel_w, ++strip) {
    const int w = std::min(panel_w, nc - jp);
    float* strip_base = pack_b_buf_.data() +
                        static_cast<std::size_t>(strip) * kc * panel_w;
    eng.scalar_ops(2);
    for (int k = 0; k < kc; ++k) {
      const float* src = B + static_cast<std::size_t>(k0 + k) * ldb + j0 + jp;
      eng.setvl(static_cast<std::size_t>(w));
      eng.vload(kVTmp, src);
      eng.vstore(kVTmp, strip_base + static_cast<std::size_t>(k) * panel_w);
      eng.scalar_ops(2);
    }
  }
}

vla::VectorEngine& Gemm6::worker_engine(int w, unsigned vlen_bits) {
  return vla::ensure_worker_engine(worker_engines_, w, vlen_bits);
}

float* Gemm6::worker_pack_a(int w) {
  const auto idx = static_cast<std::size_t>(w);
  if (worker_pack_a_.size() <= idx) {
    worker_pack_a_.resize(idx + 1);
    worker_pa_regs_.resize(idx + 1);
  }
  if (!worker_pack_a_[idx]) {
    worker_pack_a_[idx] = std::make_unique<AlignedBuffer<float>>(
        static_cast<std::size_t>(cfg_.blocks.block_m) * cfg_.blocks.block_k);
    worker_pa_regs_[idx] = sim::RegisteredRange(
        worker_pack_a_[idx]->data(),
        worker_pack_a_[idx]->size() * sizeof(float));
  }
  return worker_pack_a_[idx]->data();
}

void Gemm6::pack_a_panel(vla::VectorEngine& eng, float* dst_buf,
                         const float* A, int lda, int i0, int mc, int k0,
                         int kc) {
  // Row-major mc x kc panel so the micro-kernel's scalar A loads walk
  // contiguous memory.
  for (int i = 0; i < mc; ++i)
    vcopy_run(eng, A + static_cast<std::size_t>(i0 + i) * lda + k0,
              dst_buf + static_cast<std::size_t>(i) * kc, kc);
}

void Gemm6::micro_kernel(vla::VectorEngine& eng, int mc, int nc, int kc,
                         float alpha, const APanel& a, const float* b_panel,
                         int b_stride, float* C, int ldc, int i0, int j0,
                         bool beta0, const dnn::EpilogueDesc* epi) {
  if (a.sparse != nullptr) {
    micro_kernel_sparse(eng, mc, nc, kc, alpha, a, b_panel, b_stride, C, ldc,
                        i0, j0, beta0, epi);
    return;
  }
  const int unroll = cfg_.unroll_factor;
  // b_stride == -1 flags the packed micro-panel layout (see pack_b_panel).
  const bool b_packed = b_stride < 0;
  const int panel_w = static_cast<int>(eng.vlmax());
  // A-panel addressing in bytes: a resident reduced-precision image stores
  // 2-byte (bf16) or 1-byte (int8) elements in the identical panel
  // geometry, which is precisely where the weight-stream DRAM saving comes
  // from — the k-walk touches half / a quarter of the cache lines.
  const auto* a_bytes = static_cast<const std::uint8_t*>(a.data);
  const std::size_t a_elem = pack_elem_bytes(a.fmt);
  for (int j = 0; j < nc;) {
    const auto gvl = static_cast<int>(eng.setvl(static_cast<std::size_t>(nc - j)));
    eng.scalar_ops(2);
    for (int i = 0; i < mc; i += unroll) {
      const int rows = std::min(unroll, mc - i);
      eng.scalar_ops(3);

      if (cfg_.prefetch) {
        // Paper Fig. 3 lines 11-13: C tile into L1, packed panels into L2.
        for (int u = 0; u < rows; ++u)
          eng.prefetch(C + static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j,
                       static_cast<std::size_t>(gvl) * sizeof(float), 1);
        eng.prefetch(a_bytes + static_cast<std::size_t>(i) * a.stride * a_elem,
                     static_cast<std::size_t>(rows) * a.stride * a_elem, 2);
        eng.prefetch(b_panel + static_cast<std::size_t>(j),
                     static_cast<std::size_t>(gvl) * sizeof(float), 2);
      }

      for (int u = 0; u < rows; ++u) {
        if (beta0) {
          // First k-panel of a fused conv: the accumulator starts at zero
          // instead of loading the (would-be zero-filled) C tile — this is
          // what eliminates both the fill_cpu pass and the first C read.
          eng.vbroadcast(u, 0.0f);
        } else {
          eng.vload(u, C + static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j);
        }
      }

      for (int k = 0; k < kc; ++k) {
        const float* b_addr =
            b_packed ? b_panel + (static_cast<std::size_t>(j) / panel_w) * kc *
                                     panel_w +
                           static_cast<std::size_t>(k) * panel_w
                     : b_panel + static_cast<std::size_t>(k) * b_stride + j;
        if (cfg_.prefetch && (k & 15) == 0) {
          // Fig. 3 lines 16-17: stream the next packed lines into L1.
          eng.prefetch(b_addr, 64, 1);
          eng.prefetch(a_bytes + (static_cast<std::size_t>(i) * a.stride + k) *
                                     a_elem,
                       64, 1);
        }
        eng.vload(kVB, b_addr);
        eng.scalar_ops(2);
        for (int u = 0; u < rows; ++u) {
          const std::uint8_t* a_ptr =
              a_bytes +
              (static_cast<std::size_t>(i + u) * a.stride + k) * a_elem;
          eng.scalar_mem(a_ptr, a_elem, false);
          float av = 0.0f;
          switch (a.fmt) {
            case PackFormat::F32:
              std::memcpy(&av, a_ptr, sizeof(float));
              break;
            case PackFormat::Bf16: {
              // Cast-on-load, accumulate-in-fp32: the widen is a pure bit
              // shift (exact), billed as one scalar op.
              std::uint16_t h;
              std::memcpy(&h, a_ptr, sizeof(h));
              av = f32_from_bf16(h);
              eng.scalar_ops(1);
              break;
            }
            case PackFormat::Int8PerChannel:
              // Integer-domain accumulation: the FMA sees the raw quantized
              // value; the per-channel scale is applied once per output
              // element by the epilogue (dequant pre-multiply), not per FMA.
              av = static_cast<float>(
                  *reinterpret_cast<const std::int8_t*>(a_ptr));
              eng.scalar_ops(1);
              break;
            case PackFormat::SparseF32:
            case PackFormat::SparseBf16:
              break;  // unreachable: sparse panels take micro_kernel_sparse
          }
          if (alpha != 1.0f) {
            av *= alpha;
            eng.scalar_ops(1);
          }
          eng.vfma_scalar(u, av, kVB);
        }
      }

      for (int u = 0; u < rows; ++u) {
        // Last k-panel of a fused conv: BN/bias/activation happen here, on
        // the accumulator registers, instead of as separate passes that
        // re-stream the output tensor (kVB is dead after the k-loop).
        const std::size_t c_off =
            static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j;
        if (epi != nullptr) {
          dnn::apply_channel_epilogue(
              eng, *epi, epi_params_[static_cast<std::size_t>(i0 + i + u)], u,
              kVB);
          if (epi->residual != nullptr) {
            // Fused shortcut: the skip tensor shares C's layout, so the
            // addend for this tile slice sits at the same offset (kVTmp is
            // dead outside the packing stages).
            eng.vload(kVB, epi->residual + c_off);
            eng.vadd(u, u, kVB);
            dnn::apply_activation_reg(eng, epi->residual_act, u, kVTmp);
          }
        }
        eng.vstore(u, C + c_off);
      }
    }
    j += gvl;
  }
}

void Gemm6::micro_kernel_sparse(vla::VectorEngine& eng, int mc, int nc,
                                int kc, float alpha, const APanel& a,
                                const float* b_panel, int b_stride, float* C,
                                int ldc, int i0, int j0, bool beta0,
                                const dnn::EpilogueDesc* epi) {
  const PackedWeights& img = *a.sparse;
  const bool b_packed = b_stride < 0;
  const int panel_w = static_cast<int>(eng.vlmax());
  const std::size_t a_elem = img.elem_bytes();
  const int nchunks = (kc + kSparseBlockK - 1) / kSparseBlockK;
  // Rows advance in the sparse granule (kSparseBlockM) rather than the
  // configured unroll: each output element's k-walk is strictly ascending
  // either way, so the grouping does not change any accumulation order —
  // only which rows share a bitmap word. run_blocked guarantees i0 is
  // granule-aligned (block_m % kSparseBlockM == 0).
  for (int j = 0; j < nc;) {
    const auto gvl =
        static_cast<int>(eng.setvl(static_cast<std::size_t>(nc - j)));
    eng.scalar_ops(2);
    for (int i = 0; i < mc; i += kSparseBlockM) {
      const int rows = std::min(kSparseBlockM, mc - i);
      eng.scalar_ops(3);
      // One bitmap + offset read per (strip, row block); both words live in
      // the image's index structure, so the weight-DRAM watch sees them.
      const std::size_t seg = img.sparse_segment(i0 + i, a.k1);
      const std::uint64_t* bits_w = img.sparse_bitmap_word(seg);
      const std::uint64_t* offs_w = img.sparse_offset_word(seg);
      eng.scalar_mem(bits_w, sizeof(std::uint64_t), false);
      eng.scalar_mem(offs_w, sizeof(std::uint64_t), false);
      eng.scalar_ops(2);
      const std::uint64_t bits = *bits_w;
      const auto* vals = static_cast<const std::uint8_t*>(img.sparse_values(seg));

      if (cfg_.prefetch) {
        for (int u = 0; u < rows; ++u)
          eng.prefetch(C + static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j,
                       static_cast<std::size_t>(gvl) * sizeof(float), 1);
        eng.prefetch(vals, static_cast<std::size_t>(rows) * kSparseBlockK *
                               a_elem, 2);
        eng.prefetch(b_panel + static_cast<std::size_t>(j),
                     static_cast<std::size_t>(gvl) * sizeof(float), 2);
      }

      for (int u = 0; u < rows; ++u) {
        if (beta0) {
          eng.vbroadcast(u, 0.0f);
        } else {
          eng.vload(u, C + static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j);
        }
      }

      // THE skip: a cleared bit drops the whole 4x16 block — its A loads
      // AND its 16-iteration FMA run — and the compacted stream means the
      // kept blocks it jumps between are still contiguous in memory.
      for (int cb = 0; cb < nchunks; ++cb) {
        eng.scalar_ops(1);  // the bit test
        if ((bits & (1ull << cb)) == 0) continue;
        const int cw = std::min(kSparseBlockK, kc - cb * kSparseBlockK);
        if (cfg_.prefetch) eng.prefetch(vals, 64, 1);
        for (int c = 0; c < cw; ++c) {
          const int k = cb * kSparseBlockK + c;
          const float* b_addr =
              b_packed ? b_panel + (static_cast<std::size_t>(j) / panel_w) *
                                       kc * panel_w +
                             static_cast<std::size_t>(k) * panel_w
                       : b_panel + static_cast<std::size_t>(k) * b_stride + j;
          eng.vload(kVB, b_addr);
          eng.scalar_ops(2);
          for (int u = 0; u < rows; ++u) {
            const std::uint8_t* a_ptr =
                vals + (static_cast<std::size_t>(u) * cw + c) * a_elem;
            eng.scalar_mem(a_ptr, a_elem, false);
            float av;
            if (img.format() == PackFormat::SparseF32) {
              std::memcpy(&av, a_ptr, sizeof(float));
            } else {
              std::uint16_t h;
              std::memcpy(&h, a_ptr, sizeof(h));
              av = f32_from_bf16(h);
              eng.scalar_ops(1);
            }
            if (alpha != 1.0f) {
              av *= alpha;
              eng.scalar_ops(1);
            }
            eng.vfma_scalar(u, av, kVB);
          }
        }
        vals += static_cast<std::size_t>(rows) * cw * a_elem;
      }

      // beta0 stores and the one-pass epilogue run for EVERY row block,
      // occupied or not — a fully pruned block still owns its output rows.
      for (int u = 0; u < rows; ++u) {
        const std::size_t c_off =
            static_cast<std::size_t>(i0 + i + u) * ldc + j0 + j;
        if (epi != nullptr) {
          dnn::apply_channel_epilogue(
              eng, *epi, epi_params_[static_cast<std::size_t>(i0 + i + u)], u,
              kVB);
          if (epi->residual != nullptr) {
            eng.vload(kVB, epi->residual + c_off);
            eng.vadd(u, u, kVB);
            dnn::apply_activation_reg(eng, epi->residual_act, u, kVTmp);
          }
        }
        eng.vstore(u, C + c_off);
      }
    }
    j += gvl;
  }
}

void Gemm6::operator()(vla::VectorEngine& eng, int M, int N, int K,
                       float alpha, const float* A, int lda, const float* B,
                       int ldb, float* C, int ldc) {
  run_blocked(eng, M, N, K, alpha, A, lda, B, ldb, nullptr, nullptr, C, ldc,
              /*beta0=*/false, /*epi=*/nullptr, /*bb=*/nullptr,
              /*a_is_weights=*/false, PackFormat::F32);
}

void Gemm6::gemm_weights(vla::VectorEngine& eng, int M, int N, int K,
                         float alpha, const float* A, int lda, const float* B,
                         int ldb, float* C, int ldc) {
  // Always fp32: without beta0 the C matrix may carry fp32-domain partial
  // sums, which an int8 (quantized-domain) accumulation cannot join.
  run_blocked(eng, M, N, K, alpha, A, lda, B, ldb, nullptr, nullptr, C, ldc,
              /*beta0=*/false, /*epi=*/nullptr, /*bb=*/nullptr,
              /*a_is_weights=*/true, PackFormat::F32);
}

bool Gemm6::conv_fused(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                       const float* weights, const float* input,
                       float* output, const dnn::EpilogueDesc* epi,
                       PackFormat weight_format) {
  const int m = d.gemm_m(), n = d.gemm_n(), k = d.gemm_k();
  if (d.ksize == 1 && d.stride == 1 && d.pad == 0) {
    // 1x1/s1: the input already IS the dense B matrix (Darknet skips im2col
    // here too); beta=0 and the epilogue still fuse.
    run_blocked(eng, m, n, k, 1.0f, weights, k, input, n, nullptr, nullptr,
                output, n, /*beta0=*/true, epi, /*bb=*/nullptr,
                /*a_is_weights=*/true, weight_format);
    return true;
  }
  if (!cfg_.pack_b) return false;  // the implicit gather IS the pack stage
  run_blocked(eng, m, n, k, 1.0f, weights, k, nullptr, 0, &d, input, output,
              n, /*beta0=*/true, epi, /*bb=*/nullptr,
              /*a_is_weights=*/true, weight_format);
  return true;
}

bool Gemm6::conv_fused_batch(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                             const float* weights, const float* input,
                             std::size_t in_item_stride, float* output,
                             std::size_t out_item_stride, int batch,
                             const dnn::EpilogueDesc* epi,
                             PackFormat weight_format) {
  if (batch < 2) return false;  // no cross-item reuse to win
  if (!cfg_.pack_b) return false;  // the batched gather IS a pack stage
  VLACNN_REQUIRE(epi == nullptr || epi->residual == nullptr,
                 "batch-fused conv cannot fuse a residual (per-item offsets)");
  const int m = d.gemm_m(), n = d.gemm_n(), k = d.gemm_k();
  const std::int64_t n_total64 = static_cast<std::int64_t>(n) * batch;
  const std::int64_t c_elems64 = static_cast<std::int64_t>(m) * n_total64;
  // Staging guard: the batched C must stay a sane fraction of memory. The
  // weight-bound layers this path exists for have tiny outputs; a huge N'
  // means the layer was activation-bound and mis-routed — decline it.
  if (c_elems64 > (64ll << 20)) return false;
  const int n_total = static_cast<int>(n_total64);
  const auto c_elems = static_cast<std::size_t>(c_elems64);
  if (batch_c_buf_.size() < c_elems) {
    bc_reg_ = {};
    batch_c_buf_.resize(c_elems);
    bc_reg_ = sim::RegisteredRange(batch_c_buf_.data(),
                                   batch_c_buf_.size() * sizeof(float));
  }
  const bool dense = d.ksize == 1 && d.stride == 1 && d.pad == 0;
  const BatchB bb{input, in_item_stride, n, dense};
  run_blocked(eng, m, n_total, k, 1.0f, weights, k, nullptr, 0,
              dense ? nullptr : &d, nullptr, batch_c_buf_.data(), n_total,
              /*beta0=*/true, epi, &bb, /*a_is_weights=*/true, weight_format);
  // Scatter each item's column block of the staged C back to its output
  // slice. This extra round trip over the (small) output is what the
  // batch× reuse of the (large) resident weight stream pays for.
  for (int b = 0; b < batch; ++b) {
    const float* src_base =
        batch_c_buf_.data() + static_cast<std::size_t>(b) * n;
    float* dst_base = output + static_cast<std::size_t>(b) * out_item_stride;
    for (int i = 0; i < m; ++i)
      vcopy_run(eng, src_base + static_cast<std::size_t>(i) * n_total,
                dst_base + static_cast<std::size_t>(i) * n, n);
  }
  return true;
}

void Gemm6::run_blocked(vla::VectorEngine& eng, int M, int N, int K,
                        float alpha, const float* A, int lda, const float* B,
                        int ldb, const dnn::ConvDesc* conv,
                        const float* conv_input, float* C, int ldc,
                        bool beta0, const dnn::EpilogueDesc* epi,
                        const BatchB* bb, bool a_is_weights,
                        PackFormat a_fmt) {
  const BlockSizes& bs = cfg_.blocks;
  // Pack-once weight residency: if A has a resident image in the shared
  // cache (packed during ConvolutionEngine::prepare() with this blocking
  // config), consume its panels directly and skip pack_a_panel below — the
  // image is immutable, so the serial loop and every intra-op worker may
  // read it concurrently. The shared_ptr keeps the image alive across this
  // call even if the cache evicts it meanwhile. Consulted only when the
  // entry point vouched that A IS a weight matrix (a_is_weights — the conv
  // paths and gemm_weights; never operator(), whose A may be an activation
  // matrix, as in the FC layers' GEMM) and, via maybe_resident(), only when
  // anything is resident at all — generic calls never take the shared
  // mutex or pollute the hit/miss stats. lda == K is required for the
  // cached layout to correspond to this call's A.
  //
  // A reduced-precision request (a_fmt != F32) is residency-or-nothing:
  // quantizing on the hot path would both cost a full M×K sweep per call
  // and make the quantized values depend on the calling context, so a miss
  // simply downgrades the call to the fp32 path (which may itself be
  // resident).
  const bool cache_ok = a_is_weights && weight_cache_ != nullptr &&
                        cfg_.pack_a && A != nullptr && lda == K;
  std::shared_ptr<const PackedWeights> resident;
  // A sparse image's row blocks live on a global kSparseBlockM grid, so
  // every M panel must start 4-row aligned; an exotic unroll that breaks
  // that simply treats the sparse request as a miss (dense sibling below).
  const bool sparse_req = pack_format_sparse(a_fmt);
  if (cache_ok && a_fmt != PackFormat::F32 &&
      weight_cache_->maybe_resident() &&
      (!sparse_req || bs.block_m % kSparseBlockM == 0))
    resident = weight_cache_->find(A, M, K, bs.block_k, a_fmt,
                                   sparse_req ? sparsity_pm_ : 1000);
  if (!resident) a_fmt = PackFormat::F32;
  if (cache_ok && !resident && weight_cache_->maybe_resident())
    resident = weight_cache_->find(A, M, K, bs.block_k);
  // An int8 image accumulates in the quantized domain; fold its per-channel
  // dequantization scale into the epilogue so the restore to the fp32
  // domain shares the one existing per-channel pass (a local copy — the
  // caller's descriptor must stay untouched for the fp32 fallback path of
  // the next call).
  dnn::EpilogueDesc epi_q;
  if (resident && resident->format() == PackFormat::Int8PerChannel) {
    if (epi != nullptr) epi_q = *epi;
    epi_q.dequant_scale = resident->scales();
    epi = &epi_q;
  }
  // Fused epilogue: derive every channel's constants (and charge the
  // per-channel parameter reads the unfused passes would make) once per
  // call — the 1/sqrt is host work, and recharging per panel would
  // overstate the fused pipeline's traffic. The buffer is written here,
  // before any fan-out, and read-only inside micro_kernel, so the intra-op
  // workers may share it.
  if (epi != nullptr) {
    epi_params_.resize(static_cast<std::size_t>(M));
    for (int ch = 0; ch < M; ++ch) {
      epi_params_[static_cast<std::size_t>(ch)] = epi->channel_params(ch);
      if (epi->batch_norm) {
        eng.scalar_mem(epi->bn_mean + ch, sizeof(float), false);
        eng.scalar_mem(epi->bn_var + ch, sizeof(float), false);
        eng.scalar_mem(epi->bn_scale + ch, sizeof(float), false);
        eng.scalar_ops(3);
      }
      if (epi->bias != nullptr)
        eng.scalar_mem(epi->bias + ch, sizeof(float), false);
      if (epi->dequant_scale != nullptr) {
        eng.scalar_mem(epi->dequant_scale + ch, sizeof(float), false);
        eng.scalar_ops(1);
      }
    }
  }
  for (int j1 = 0; j1 < N; j1 += bs.block_n) {
    const int nc = std::min(bs.block_n, N - j1);
    for (int k1 = 0; k1 < K; k1 += bs.block_k) {
      const int kc = std::min(bs.block_k, K - k1);
      // beta=0 applies to the first k-panel only (later panels accumulate),
      // the epilogue to the last (the tile value is final there).
      const bool panel_beta0 = beta0 && k1 == 0;
      const dnn::EpilogueDesc* panel_epi = (k1 + kc == K) ? epi : nullptr;
      const float* b_panel;
      int b_stride;
      // Packing B pays off through reuse across M rows. A pure GEMV
      // (M == 1, the FC layers' row-vector product) reads each B element
      // exactly once, so packing would only add a K*N write + re-read of
      // pure traffic; stream B directly there. Any larger M honors the
      // configured pack_b — the BLIS ablations toggle it deliberately, so
      // no heuristic may silently override it. (Implicit conv packing has
      // no materialized B to stream from and always packs.)
      const bool pack_b =
          bb != nullptr || conv != nullptr || (cfg_.pack_b && M > 1);
      if (pack_b) {
        // Micro-panel layout needs kc x round_up(nc, VLMAX) floats.
        const std::size_t panel_w = eng.vlmax();
        const std::size_t strips = (static_cast<std::size_t>(nc) + panel_w - 1) / panel_w;
        const std::size_t needed = strips * panel_w * static_cast<std::size_t>(kc);
        if (pack_b_buf_.size() < needed) {
          pb_reg_ = {};
          pack_b_buf_.resize(needed);
          pb_reg_ = sim::RegisteredRange(pack_b_buf_.data(),
                                         pack_b_buf_.size() * sizeof(float));
        }
        if (bb != nullptr)
          pack_b_panel_batched(eng, *bb, conv, k1, kc, j1, nc);
        else if (conv != nullptr)
          pack_b_panel_implicit(eng, *conv, conv_input, k1, kc, j1, nc);
        else
          pack_b_panel(eng, B, ldb, k1, kc, j1, nc);
        b_panel = pack_b_buf_.data();
        b_stride = -1;  // packed micro-panel layout
      } else {
        b_panel = B + static_cast<std::size_t>(k1) * ldb + j1;
        b_stride = ldb;
      }
      const int m_panels = (M + bs.block_m - 1) / bs.block_m;
      // Intra-op sharding of the M-panel loop: each panel updates a disjoint
      // row range of C, so panels can run concurrently once the shared B
      // panel is packed. Functional engines only — the timing model is a
      // single instruction stream.
      const bool parallel = pool_ != nullptr && pool_->size() > 1 &&
                            eng.context() == nullptr && m_panels >= 2;
      if (parallel) {
        const unsigned vlen = eng.vlen_bits();
        // Materialize per-worker engines/buffers on this thread so the
        // AddressMap registration order stays deterministic.
        for (int w = 0; w < pool_->size(); ++w) {
          worker_engine(w, vlen);
          if (cfg_.pack_a && !resident) worker_pack_a(w);
        }
        // Worker traffic folds into the coordinating engine's counters
        // after the fan-out (this runs once per (j1, k1) panel, inside the
        // blocked hot loop; the fold's buffer is reused).
        traffic_fold_.snapshot(worker_engines_, pool_->size());
        pool_->parallel_for(m_panels, [&](int p, int w) {
          const int i1 = p * bs.block_m;
          const int mc = std::min(bs.block_m, M - i1);
          vla::VectorEngine& weng = worker_engine(w, vlen);
          APanel ap;
          if (resident && resident->sparse()) {
            ap.fmt = resident->format();
            ap.sparse = resident.get();
            ap.k1 = k1;
          } else if (resident) {
            ap = {resident->panel_raw(i1, k1, kc), kc, resident->format()};
          } else if (cfg_.pack_a) {
            float* buf = worker_pack_a(w);
            pack_a_panel(weng, buf, A, lda, i1, mc, k1, kc);
            ap = {buf, kc, PackFormat::F32};
          } else {
            ap = {A + static_cast<std::size_t>(i1) * lda + k1, lda,
                  PackFormat::F32};
          }
          micro_kernel(weng, mc, nc, kc, alpha, ap, b_panel, b_stride, C,
                       ldc, i1, j1, panel_beta0, panel_epi);
        });
        traffic_fold_.fold_into(eng, worker_engines_, pool_->size());
        continue;
      }
      for (int i1 = 0; i1 < M; i1 += bs.block_m) {
        const int mc = std::min(bs.block_m, M - i1);
        APanel ap;
        if (resident && resident->sparse()) {
          ap.fmt = resident->format();
          ap.sparse = resident.get();
          ap.k1 = k1;
        } else if (resident) {
          ap = {resident->panel_raw(i1, k1, kc), kc, resident->format()};
        } else if (cfg_.pack_a) {
          pack_a_panel(eng, pack_a_buf_.data(), A, lda, i1, mc, k1, kc);
          ap = {pack_a_buf_.data(), kc, PackFormat::F32};
        } else {
          ap = {A + static_cast<std::size_t>(i1) * lda + k1, lda,
                PackFormat::F32};
        }
        micro_kernel(eng, mc, nc, kc, alpha, ap, b_panel, b_stride, C, ldc,
                     i1, j1, panel_beta0, panel_epi);
      }
    }
  }
}

}  // namespace vlacnn::gemm

#pragma once

#include "common/aligned_buffer.hpp"
#include "gemm/blocking.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::gemm {

/// Feature toggles of the 6-loop implementation, for the ablation study:
/// the paper's Fig. 3 applies all of them together.
struct Opt6Config {
  BlockSizes blocks{};
  int unroll_factor = 16;
  bool pack_a = true;
  bool pack_b = true;
  bool prefetch = true;  // emits prefetch hints (effective only on A64FX)
};

/// Optimized 6-loop BLIS-like GEMM (paper Fig. 3): tiles A/B/C into
/// blockM x blockN x blockK panels, packs the A and B panels into
/// contiguous buffers with vectorized copies, prefetches the C tile into L1
/// and the packed panels into L2/L1, and runs the same unrolled
/// vector-scalar-FMA micro-kernel as the 3-loop implementation on the
/// packed data.
class Gemm6 {
 public:
  explicit Gemm6(const Opt6Config& cfg = {});

  /// C(MxN) += alpha * A(MxK) * B(KxN).
  void operator()(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float* C,
                  int ldc);

  [[nodiscard]] const Opt6Config& config() const { return cfg_; }

 private:
  void pack_b_panel(vla::VectorEngine& eng, const float* B, int ldb, int k0,
                    int kc, int j0, int nc);
  void pack_a_panel(vla::VectorEngine& eng, const float* A, int lda, int i0,
                    int mc, int k0, int kc);
  void micro_kernel(vla::VectorEngine& eng, int mc, int nc, int kc,
                    float alpha, const float* a_panel, int a_stride,
                    const float* b_panel, int b_stride, float* C, int ldc,
                    int i0, int j0);

  Opt6Config cfg_;
  AlignedBuffer<float> pack_a_buf_;
  AlignedBuffer<float> pack_b_buf_;
  sim::RegisteredRange pa_reg_, pb_reg_;
};

}  // namespace vlacnn::gemm

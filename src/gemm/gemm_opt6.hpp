#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "dnn/epilogue.hpp"
#include "gemm/blocking.hpp"
#include "gemm/packed_weight_cache.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::runtime {
class ThreadPool;
}  // namespace vlacnn::runtime

namespace vlacnn::gemm {

/// Feature toggles of the 6-loop implementation, for the ablation study:
/// the paper's Fig. 3 applies all of them together.
struct Opt6Config {
  BlockSizes blocks{};
  int unroll_factor = 16;
  bool pack_a = true;
  bool pack_b = true;
  bool prefetch = true;  // emits prefetch hints (effective only on A64FX)
};

/// Optimized 6-loop BLIS-like GEMM (paper Fig. 3): tiles A/B/C into
/// blockM x blockN x blockK panels, packs the A and B panels into
/// contiguous buffers with vectorized copies, prefetches the C tile into L1
/// and the packed panels into L2/L1, and runs the same unrolled
/// vector-scalar-FMA micro-kernel as the 3-loop implementation on the
/// packed data.
///
/// A Gemm6 instance owns mutable packing buffers and must only be driven by
/// one thread at a time (core::ConvolutionEngine::install() hands each
/// ExecContext its own instance). With set_intra_op_pool(), the M-panel loop
/// is additionally sharded across the pool for the batch-1 latency case:
/// the B panel is packed once, then each worker packs its own A panels
/// (per-worker buffer + functional engine) and runs the micro-kernel on a
/// disjoint row range of C — bitwise identical to the serial path.
/// Instrumented (simulated) runs always stay serial.
class Gemm6 {
 public:
  explicit Gemm6(const Opt6Config& cfg = {});

  /// C(MxN) += alpha * A(MxK) * B(KxN). A is treated as anonymous data —
  /// the pack-once weight cache is NOT consulted (see gemm_weights).
  void operator()(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float* C,
                  int ldc);

  /// Same contract as operator(), for call sites that KNOW `A` is a layer's
  /// weight matrix: the pack-once cache is consulted and a resident image's
  /// panels are consumed directly. Kept separate so generic GEMM calls
  /// (notably the FC layers', whose A is an activation matrix) never take
  /// the shared cache mutex or pollute its hit/miss stats — residency is
  /// signalled by the caller, not guessed from shapes.
  void gemm_weights(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                    const float* A, int lda, const float* B, int ldb,
                    float* C, int ldc);

  /// Fused convolution: output = epi(weights · im2col(input)) in one pass.
  ///
  /// The B matrix of the conv GEMM is never materialized — the B-pack stage
  /// gathers im2col patches per (kc, nc) panel straight from the input
  /// tensor (im2col_pack_segment), the first k-panel stores the C tile with
  /// beta=0 (eliminating the fill pass), and `epi` (BN / bias / activation)
  /// is applied on the last k-panel while the tile is still in registers.
  /// 1x1/stride-1 layers use the input as a dense B with the same beta=0 +
  /// epilogue treatment. Bit-identical to the unfused fill + im2col +
  /// operator() + post-pass pipeline.
  ///
  /// Returns false (declining the layer) when `pack_b` is disabled — the
  /// implicit gather IS the pack stage, so the ablation configuration that
  /// removes packing has no fused equivalent.
  ///
  /// `weight_format` requests a reduced-precision resident weight image
  /// (Bf16 / Int8PerChannel): the micro-kernel consumes the quantized
  /// panels directly, widening each A element to fp32 on load (bf16: exact
  /// bit shift; int8: integer-domain accumulation with the per-channel
  /// dequantization scale folded into the epilogue's channel constants, so
  /// the epilogue stays one pass). Activations, accumulation and C stay
  /// fp32. If no image of that format is resident the call falls back to
  /// the fp32 path — quantization never happens on the hot path.
  ///
  /// The sparse formats (SparseF32 / SparseBf16, looked up at the density
  /// set via set_sparsity_pm) route the A side through the skip-aware
  /// micro-kernel: per 4-row block it reads the panel's occupancy bitmap
  /// and walks only the kept 16-column chunks of the compacted value
  /// stream — a pruned block skips both its A loads and its FMA run, so
  /// weight traffic AND MACs scale with density. The epilogue is unchanged
  /// (beta0 stores and the one-pass EpilogueDesc run for every row block,
  /// occupied or not), and a sparse miss falls back to the dense chain
  /// like any other non-resident format.
  bool conv_fused(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                  const float* weights, const float* input, float* output,
                  const dnn::EpilogueDesc* epi,
                  PackFormat weight_format = PackFormat::F32);

  /// Batch-fused convolution for weight-bound layers: one fused-GEMM pass
  /// over the logical N' = N×batch column space — the im2col (or dense 1x1)
  /// B matrices of all batch items concatenated along the column axis — so
  /// every A panel that becomes cache-resident is reused batch× instead of
  /// being re-streamed per item. The batched C (M×N') is staged in an
  /// internal buffer and scattered back to the per-item output slices with
  /// vector copies; `epi` (which must not carry a residual — the caller
  /// applies residual adds per item, after the scatter) is applied in-kernel
  /// exactly as conv_fused would. Bit-identical to running conv_fused item
  /// by item: the per-element k-accumulation order is unchanged, only the
  /// strip grouping differs, and every vector op is lane-independent.
  ///
  /// `input`/`output` point at item 0; items are `in_item_stride` /
  /// `out_item_stride` floats apart. Returns false (declining) when packing
  /// is disabled or batch < 2 — the caller keeps the per-item path.
  bool conv_fused_batch(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                        const float* weights, const float* input,
                        std::size_t in_item_stride, float* output,
                        std::size_t out_item_stride, int batch,
                        const dnn::EpilogueDesc* epi,
                        PackFormat weight_format = PackFormat::F32);

  /// Shards the M-panel loop across `pool` when running functionally.
  void set_intra_op_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  /// Wires the engine-shared pack-once weight cache: run_blocked then
  /// consults it per call (keyed by the A pointer and blocking config) and
  /// consumes resident A panels directly, skipping pack_a_panel on the hot
  /// path — for the serial loop and every intra-op worker alike, since the
  /// resident image is immutable.
  void set_weight_cache(PackedWeightCache* cache) { weight_cache_ = cache; }

  /// Block-prune density (per-mille) used to key sparse-format residency
  /// lookups; a plan's sparsity is installed here once, not threaded through
  /// every conv_fused call.
  void set_sparsity_pm(int pm) { sparsity_pm_ = pm; }
  [[nodiscard]] int sparsity_pm() const { return sparsity_pm_; }

  [[nodiscard]] const Opt6Config& config() const { return cfg_; }

 private:
  /// Column-concatenated per-item B view of a batch-fused conv: global
  /// column jg maps to item jg / n_item, local column jg % n_item.
  struct BatchB {
    const float* input;       ///< item 0 (input image, or dense 1x1 B)
    std::size_t item_stride;  ///< floats between consecutive items
    int n_item;               ///< per-item N
    bool dense;               ///< 1x1/s1/p0: the input rows ARE the B rows
  };

  /// The A panel a micro-kernel invocation consumes: run-time packed
  /// buffers and streamed A are always F32; a resident cache image carries
  /// its own storage format, which the micro-kernel widens on load.
  struct APanel {
    const void* data = nullptr;
    int stride = 0;  ///< row stride in ELEMENTS (kc when packed, lda else)
    PackFormat fmt = PackFormat::F32;
    /// Sparse resident image + the panel's column origin: the micro-kernel
    /// reads the (panel, row-block) bitmap/offset words itself. data/stride
    /// are unused when set.
    const PackedWeights* sparse = nullptr;
    int k1 = 0;
  };

  void run_blocked(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                   const float* A, int lda, const float* B, int ldb,
                   const dnn::ConvDesc* conv, const float* conv_input,
                   float* C, int ldc, bool beta0, const dnn::EpilogueDesc* epi,
                   const BatchB* bb, bool a_is_weights, PackFormat a_fmt);
  void pack_b_panel(vla::VectorEngine& eng, const float* B, int ldb, int k0,
                    int kc, int j0, int nc);
  void pack_b_panel_implicit(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                             const float* input, int k0, int kc, int j0,
                             int nc);
  void pack_b_panel_batched(vla::VectorEngine& eng, const BatchB& bb,
                            const dnn::ConvDesc* conv, int k0, int kc, int j0,
                            int nc);
  void pack_a_panel(vla::VectorEngine& eng, float* dst_buf, const float* A,
                    int lda, int i0, int mc, int k0, int kc);
  void micro_kernel(vla::VectorEngine& eng, int mc, int nc, int kc,
                    float alpha, const APanel& a, const float* b_panel,
                    int b_stride, float* C, int ldc, int i0, int j0,
                    bool beta0, const dnn::EpilogueDesc* epi);
  /// Skip-aware variant consuming a sparse resident image (a.sparse set):
  /// walks only occupied 4×16 blocks of each A panel.
  void micro_kernel_sparse(vla::VectorEngine& eng, int mc, int nc, int kc,
                           float alpha, const APanel& a, const float* b_panel,
                           int b_stride, float* C, int ldc, int i0, int j0,
                           bool beta0, const dnn::EpilogueDesc* epi);

  vla::VectorEngine& worker_engine(int w, unsigned vlen_bits);
  float* worker_pack_a(int w);

  Opt6Config cfg_;
  AlignedBuffer<float> pack_a_buf_;
  AlignedBuffer<float> pack_b_buf_;
  AlignedBuffer<float> batch_c_buf_;  ///< staged M×N' of conv_fused_batch
  sim::RegisteredRange pa_reg_, pb_reg_, bc_reg_;
  PackedWeightCache* weight_cache_ = nullptr;
  int sparsity_pm_ = 1000;

  runtime::ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<AlignedBuffer<float>>> worker_pack_a_;
  std::vector<sim::RegisteredRange> worker_pa_regs_;
  /// Per-panel traffic snapshot/fold of the intra-op workers.
  vla::WorkerTrafficFold traffic_fold_;
  /// Per-channel fused-epilogue constants, filled once per run_blocked call
  /// (before any fan-out) and read-only in the microkernel.
  std::vector<dnn::EpilogueDesc::ChannelParams> epi_params_;
};

}  // namespace vlacnn::gemm

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "dnn/epilogue.hpp"
#include "gemm/blocking.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::runtime {
class ThreadPool;
}  // namespace vlacnn::runtime

namespace vlacnn::gemm {

/// Feature toggles of the 6-loop implementation, for the ablation study:
/// the paper's Fig. 3 applies all of them together.
struct Opt6Config {
  BlockSizes blocks{};
  int unroll_factor = 16;
  bool pack_a = true;
  bool pack_b = true;
  bool prefetch = true;  // emits prefetch hints (effective only on A64FX)
};

/// Optimized 6-loop BLIS-like GEMM (paper Fig. 3): tiles A/B/C into
/// blockM x blockN x blockK panels, packs the A and B panels into
/// contiguous buffers with vectorized copies, prefetches the C tile into L1
/// and the packed panels into L2/L1, and runs the same unrolled
/// vector-scalar-FMA micro-kernel as the 3-loop implementation on the
/// packed data.
///
/// A Gemm6 instance owns mutable packing buffers and must only be driven by
/// one thread at a time (core::ConvolutionEngine::install() hands each
/// ExecContext its own instance). With set_intra_op_pool(), the M-panel loop
/// is additionally sharded across the pool for the batch-1 latency case:
/// the B panel is packed once, then each worker packs its own A panels
/// (per-worker buffer + functional engine) and runs the micro-kernel on a
/// disjoint row range of C — bitwise identical to the serial path.
/// Instrumented (simulated) runs always stay serial.
class Gemm6 {
 public:
  explicit Gemm6(const Opt6Config& cfg = {});

  /// C(MxN) += alpha * A(MxK) * B(KxN).
  void operator()(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float* C,
                  int ldc);

  /// Fused convolution: output = epi(weights · im2col(input)) in one pass.
  ///
  /// The B matrix of the conv GEMM is never materialized — the B-pack stage
  /// gathers im2col patches per (kc, nc) panel straight from the input
  /// tensor (im2col_pack_segment), the first k-panel stores the C tile with
  /// beta=0 (eliminating the fill pass), and `epi` (BN / bias / activation)
  /// is applied on the last k-panel while the tile is still in registers.
  /// 1x1/stride-1 layers use the input as a dense B with the same beta=0 +
  /// epilogue treatment. Bit-identical to the unfused fill + im2col +
  /// operator() + post-pass pipeline.
  ///
  /// Returns false (declining the layer) when `pack_b` is disabled — the
  /// implicit gather IS the pack stage, so the ablation configuration that
  /// removes packing has no fused equivalent.
  bool conv_fused(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                  const float* weights, const float* input, float* output,
                  const dnn::EpilogueDesc* epi);

  /// Shards the M-panel loop across `pool` when running functionally.
  void set_intra_op_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  [[nodiscard]] const Opt6Config& config() const { return cfg_; }

 private:
  void run_blocked(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                   const float* A, int lda, const float* B, int ldb,
                   const dnn::ConvDesc* conv, const float* conv_input,
                   float* C, int ldc, bool beta0,
                   const dnn::EpilogueDesc* epi);
  void pack_b_panel(vla::VectorEngine& eng, const float* B, int ldb, int k0,
                    int kc, int j0, int nc);
  void pack_b_panel_implicit(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                             const float* input, int k0, int kc, int j0,
                             int nc);
  void pack_a_panel(vla::VectorEngine& eng, float* dst_buf, const float* A,
                    int lda, int i0, int mc, int k0, int kc);
  void micro_kernel(vla::VectorEngine& eng, int mc, int nc, int kc,
                    float alpha, const float* a_panel, int a_stride,
                    const float* b_panel, int b_stride, float* C, int ldc,
                    int i0, int j0, bool beta0, const dnn::EpilogueDesc* epi);

  vla::VectorEngine& worker_engine(int w, unsigned vlen_bits);
  float* worker_pack_a(int w);

  Opt6Config cfg_;
  AlignedBuffer<float> pack_a_buf_;
  AlignedBuffer<float> pack_b_buf_;
  sim::RegisteredRange pa_reg_, pb_reg_;

  runtime::ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<AlignedBuffer<float>>> worker_pack_a_;
  std::vector<sim::RegisteredRange> worker_pa_regs_;
  /// Per-panel traffic snapshot/fold of the intra-op workers.
  vla::WorkerTrafficFold traffic_fold_;
  /// Per-channel fused-epilogue constants, filled once per run_blocked call
  /// (before any fan-out) and read-only in the microkernel.
  std::vector<dnn::EpilogueDesc::ChannelParams> epi_params_;
};

}  // namespace vlacnn::gemm

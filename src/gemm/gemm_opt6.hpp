#pragma once

#include <memory>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "gemm/blocking.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::runtime {
class ThreadPool;
}  // namespace vlacnn::runtime

namespace vlacnn::gemm {

/// Feature toggles of the 6-loop implementation, for the ablation study:
/// the paper's Fig. 3 applies all of them together.
struct Opt6Config {
  BlockSizes blocks{};
  int unroll_factor = 16;
  bool pack_a = true;
  bool pack_b = true;
  bool prefetch = true;  // emits prefetch hints (effective only on A64FX)
};

/// Optimized 6-loop BLIS-like GEMM (paper Fig. 3): tiles A/B/C into
/// blockM x blockN x blockK panels, packs the A and B panels into
/// contiguous buffers with vectorized copies, prefetches the C tile into L1
/// and the packed panels into L2/L1, and runs the same unrolled
/// vector-scalar-FMA micro-kernel as the 3-loop implementation on the
/// packed data.
///
/// A Gemm6 instance owns mutable packing buffers and must only be driven by
/// one thread at a time (core::ConvolutionEngine::install() hands each
/// ExecContext its own instance). With set_intra_op_pool(), the M-panel loop
/// is additionally sharded across the pool for the batch-1 latency case:
/// the B panel is packed once, then each worker packs its own A panels
/// (per-worker buffer + functional engine) and runs the micro-kernel on a
/// disjoint row range of C — bitwise identical to the serial path.
/// Instrumented (simulated) runs always stay serial.
class Gemm6 {
 public:
  explicit Gemm6(const Opt6Config& cfg = {});

  /// C(MxN) += alpha * A(MxK) * B(KxN).
  void operator()(vla::VectorEngine& eng, int M, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float* C,
                  int ldc);

  /// Shards the M-panel loop across `pool` when running functionally.
  void set_intra_op_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  [[nodiscard]] const Opt6Config& config() const { return cfg_; }

 private:
  void pack_b_panel(vla::VectorEngine& eng, const float* B, int ldb, int k0,
                    int kc, int j0, int nc);
  void pack_a_panel(vla::VectorEngine& eng, float* dst_buf, const float* A,
                    int lda, int i0, int mc, int k0, int kc);
  void micro_kernel(vla::VectorEngine& eng, int mc, int nc, int kc,
                    float alpha, const float* a_panel, int a_stride,
                    const float* b_panel, int b_stride, float* C, int ldc,
                    int i0, int j0);

  vla::VectorEngine& worker_engine(int w, unsigned vlen_bits);
  float* worker_pack_a(int w);

  Opt6Config cfg_;
  AlignedBuffer<float> pack_a_buf_;
  AlignedBuffer<float> pack_b_buf_;
  sim::RegisteredRange pa_reg_, pb_reg_;

  runtime::ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<AlignedBuffer<float>>> worker_pack_a_;
  std::vector<sim::RegisteredRange> worker_pa_regs_;
};

}  // namespace vlacnn::gemm

#include "gemm/gemm_ref.hpp"

#include <cstddef>

namespace vlacnn::gemm {

void gemm_ref(int M, int N, int K, float alpha, const float* A, int lda,
              const float* B, int ldb, float* C, int ldc) {
  for (int i = 0; i < M; ++i) {
    for (int k = 0; k < K; ++k) {
      const float a = alpha * A[static_cast<std::size_t>(i) * lda + k];
      const float* brow = B + static_cast<std::size_t>(k) * ldb;
      float* crow = C + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < N; ++j) crow[j] += a * brow[j];
    }
  }
}

}  // namespace vlacnn::gemm

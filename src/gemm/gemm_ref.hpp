#pragma once

namespace vlacnn::gemm {

/// Plain scalar reference GEMM: C(M×N) += alpha · A(M×K) · B(K×N),
/// row-major with leading dimensions. Used as the numerical oracle in tests;
/// it does not touch the vector engine or the simulator.
void gemm_ref(int M, int N, int K, float alpha, const float* A, int lda,
              const float* B, int ldb, float* C, int ldc);

}  // namespace vlacnn::gemm

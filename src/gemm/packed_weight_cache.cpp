#include "gemm/packed_weight_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vlacnn::gemm {

const char* to_string(PackFormat f) {
  switch (f) {
    case PackFormat::F32: return "f32";
    case PackFormat::Bf16: return "bf16";
    case PackFormat::Int8PerChannel: return "int8";
    case PackFormat::SparseF32: return "sparse-f32";
    case PackFormat::SparseBf16: return "sparse-bf16";
  }
  return "?";
}

float int8_channel_scale(const float* row, int k) {
  float amax = 0.0f;
  for (int c = 0; c < k; ++c) amax = std::max(amax, std::fabs(row[c]));
  return amax > 0.0f ? amax / 127.0f : 1.0f;
}

namespace {

/// round-to-nearest(-even) symmetric int8 quantization, clamped to ±127.
std::int8_t quantize_int8(float x, float inv_scale) {
  const long q = std::lrintf(x * inv_scale);
  return static_cast<std::int8_t>(std::clamp(q, -127l, 127l));
}

}  // namespace

std::vector<std::uint8_t> prune_block_mask(const float* weights, int m, int k,
                                           int block_k, int density_pm) {
  VLACNN_REQUIRE(density_pm >= 1 && density_pm <= 1000,
                 "block-prune density must be in (0, 1000] per-mille");
  const SparseGrid g(m, k, block_k);
  std::vector<std::uint8_t> mask(g.size(), 0);
  // L1 mass per valid block, ranked descending (ties by lower index so the
  // mask — and therefore the packed image — is fully deterministic).
  std::vector<std::pair<double, std::size_t>> rank;
  rank.reserve(g.valid_blocks());
  for (int pk = 0; pk < g.num_pk; ++pk) {
    const int k1 = pk * block_k;
    for (int rb = 0; rb < g.num_rb; ++rb) {
      const int r0 = rb * kSparseBlockM, rows = g.rows(rb);
      for (int cb = 0; cb < g.chunks(pk); ++cb) {
        const int c0 = k1 + cb * kSparseBlockK, cols = g.cols(pk, cb);
        double mag = 0.0;
        for (int r = 0; r < rows; ++r) {
          const float* row = weights + static_cast<std::size_t>(r0 + r) * k + c0;
          for (int c = 0; c < cols; ++c) mag += std::fabs(row[c]);
        }
        rank.emplace_back(mag, g.index(pk, rb, cb));
      }
    }
  }
  const std::size_t kept =
      (rank.size() * static_cast<std::size_t>(density_pm) + 999) / 1000;
  std::stable_sort(rank.begin(), rank.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = 0; i < kept && i < rank.size(); ++i)
    mask[rank[i].second] = 1;
  return mask;
}

void apply_block_mask(float* weights, int m, int k, int block_k,
                      const std::vector<std::uint8_t>& mask) {
  const SparseGrid g(m, k, block_k);
  VLACNN_REQUIRE(mask.size() == g.size(), "block mask / grid mismatch");
  for (int pk = 0; pk < g.num_pk; ++pk)
    for (int rb = 0; rb < g.num_rb; ++rb)
      for (int cb = 0; cb < g.chunks(pk); ++cb) {
        if (mask[g.index(pk, rb, cb)]) continue;
        const int r0 = rb * kSparseBlockM, rows = g.rows(rb);
        const int c0 = pk * block_k + cb * kSparseBlockK, cols = g.cols(pk, cb);
        for (int r = 0; r < rows; ++r)
          std::memset(weights + static_cast<std::size_t>(r0 + r) * k + c0, 0,
                      static_cast<std::size_t>(cols) * sizeof(float));
      }
}

PackedWeights::PackedWeights(const float* weights, int m, int k, int block_k,
                             PackFormat format, int density_pm)
    : m_(m), k_(k), block_k_(block_k), format_(format),
      density_pm_(pack_format_sparse(format) ? density_pm : 1000) {
  VLACNN_REQUIRE(m >= 1 && k >= 1 && block_k >= 1, "bad packed-weight dims");
  if (pack_format_sparse(format)) {
    pack_sparse(weights);
    reg_ = sim::RegisteredRange(data_.data(), data_.size());
    meta_reg_ = sim::RegisteredRange(sparse_meta_.data(),
                                     sparse_meta_.size() * sizeof(std::uint64_t));
    return;
  }
  data_.resize(static_cast<std::size_t>(m) * k * elem_bytes());
  // Int8 scales come first and cover the WHOLE row: the quantized value of
  // a weight must not depend on which k-block a later sweep reads it from.
  if (format == PackFormat::Int8PerChannel) {
    scales_.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
      scales_[static_cast<std::size_t>(i)] =
          int8_channel_scale(weights + static_cast<std::size_t>(i) * k, k);
  }
  // Offline scalar packing (uninstrumented, like the Winograd weight
  // transform): per k-block, every row's [k1, k1+kc) slice lands
  // contiguously — the pack_a_panel layout, cast per format on the way in.
  for (int k1 = 0; k1 < k; k1 += block_k) {
    const int kc = std::min(block_k, k - k1);
    std::uint8_t* block =
        data_.data() + static_cast<std::size_t>(m) * k1 * elem_bytes();
    for (int i = 0; i < m; ++i) {
      const float* src = weights + static_cast<std::size_t>(i) * k + k1;
      std::uint8_t* dst =
          block + static_cast<std::size_t>(i) * kc * elem_bytes();
      switch (format) {
        case PackFormat::F32:
          std::memcpy(dst, src, static_cast<std::size_t>(kc) * sizeof(float));
          break;
        case PackFormat::Bf16: {
          auto* out = reinterpret_cast<std::uint16_t*>(dst);
          for (int c = 0; c < kc; ++c) out[c] = bf16_from_f32(src[c]);
          break;
        }
        case PackFormat::Int8PerChannel: {
          auto* out = reinterpret_cast<std::int8_t*>(dst);
          const float inv_scale = 1.0f / scales_[static_cast<std::size_t>(i)];
          for (int c = 0; c < kc; ++c)
            out[c] = quantize_int8(src[c], inv_scale);
          break;
        }
        case PackFormat::SparseF32:
        case PackFormat::SparseBf16:
          break;  // unreachable: sparse formats take pack_sparse above
      }
    }
  }
  reg_ = sim::RegisteredRange(data_.data(), data_.size());
  if (!scales_.empty())
    scales_reg_ = sim::RegisteredRange(scales_.data(),
                                       scales_.size() * sizeof(float));
}

void PackedWeights::pack_sparse(const float* weights) {
  const SparseGrid g(m_, k_, block_k_);
  VLACNN_REQUIRE(g.chunk_cap <= 64,
                 "sparse block bitmap needs block_k <= 64*kSparseBlockK");
  const auto mask = prune_block_mask(weights, m_, k_, block_k_, density_pm_);
  num_rb_ = static_cast<std::size_t>(g.num_rb);
  nsegs_ = g.segments();
  sparse_meta_.resize(2 * nsegs_);
  sparse_meta_.fill(0);
  // First sweep sizes the compacted stream and writes bitmaps + offsets.
  std::size_t cursor = 0;  // elements
  for (int pk = 0; pk < g.num_pk; ++pk)
    for (int rb = 0; rb < g.num_rb; ++rb) {
      const std::size_t seg = static_cast<std::size_t>(pk) * num_rb_ + rb;
      sparse_meta_[nsegs_ + seg] = cursor;
      std::uint64_t bits = 0;
      for (int cb = 0; cb < g.chunks(pk); ++cb)
        if (mask[g.index(pk, rb, cb)]) {
          bits |= 1ull << cb;
          cursor += static_cast<std::size_t>(g.rows(rb)) * g.cols(pk, cb);
        }
      sparse_meta_[seg] = bits;
    }
  data_.resize(cursor * elem_bytes());
  // Second sweep copies kept blocks: each a rows×cols row-major tile, blocks
  // consecutive in (pk, rb, ascending cb) order — the order the skip-aware
  // microkernel consumes them in.
  std::uint8_t* out = data_.data();
  for (int pk = 0; pk < g.num_pk; ++pk)
    for (int rb = 0; rb < g.num_rb; ++rb)
      for (int cb = 0; cb < g.chunks(pk); ++cb) {
        if (!mask[g.index(pk, rb, cb)]) continue;
        const int r0 = rb * kSparseBlockM, rows = g.rows(rb);
        const int c0 = pk * block_k_ + cb * kSparseBlockK;
        const int cols = g.cols(pk, cb);
        for (int r = 0; r < rows; ++r) {
          const float* src =
              weights + static_cast<std::size_t>(r0 + r) * k_ + c0;
          if (format_ == PackFormat::SparseF32) {
            std::memcpy(out, src, static_cast<std::size_t>(cols) * 4);
            out += static_cast<std::size_t>(cols) * 4;
          } else {
            auto* dst = reinterpret_cast<std::uint16_t*>(out);
            for (int c = 0; c < cols; ++c) dst[c] = bf16_from_f32(src[c]);
            out += static_cast<std::size_t>(cols) * 2;
          }
        }
      }
}

const float* PackedWeights::data() const {
  VLACNN_REQUIRE(format_ == PackFormat::F32,
                 "fp32 view of a quantized packed-weight image");
  return reinterpret_cast<const float*>(data_.data());
}

const float* PackedWeights::panel(int i1, int k1, int kc) const {
  VLACNN_REQUIRE(format_ == PackFormat::F32,
                 "fp32 panel of a quantized packed-weight image");
  return reinterpret_cast<const float*>(panel_raw(i1, k1, kc));
}

std::shared_ptr<const PackedWeights> PackedWeightCache::prepare(
    const float* weights, int m, int k, int block_k, PackFormat format,
    int density_pm) {
  if (!pack_format_sparse(format)) density_pm = 1000;
  const Key key{weights, m, k, block_k,
                static_cast<std::uint8_t>(format), density_pm};
  const std::size_t bytes = image_bytes(m, k, block_k, format, density_pm);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.last_use = ++tick_;
      return it->second.image;
    }
    // Admission checks BEFORE the (expensive) pack: prepare() runs before
    // every batch, so a layer that cannot be retained must cost O(1) here,
    // not a full M×K copy that is then thrown away.
    if (bytes > budget_) {
      ++stats_.rejected;
      return nullptr;  // caller keeps the run-time packing path
    }
    if (resident_bytes_ + bytes > budget_) {
      ++stats_.deferred;  // budget full: no evict-on-insert churn
      return nullptr;
    }
  }
  // Pack outside the lock: concurrent first-touch of *different* layers
  // proceeds in parallel; a duplicate pack of the same layer is harmless
  // (the images are identical) and the second insert wins nothing.
  auto image = std::make_shared<const PackedWeights>(weights, m, k, block_k,
                                                     format, density_pm);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.last_use = ++tick_;
    return it->second.image;
  }
  ++stats_.packs;
  if (resident_bytes_ + bytes > budget_) {
    ++stats_.deferred;  // a concurrent prepare filled the budget meanwhile
    return nullptr;
  }
  account(*image, /*insert=*/true);
  cache_.emplace(key, Entry{image, ++tick_});
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
  return image;
}

std::shared_ptr<const PackedWeights> PackedWeightCache::find(
    const float* weights, int m, int k, int block_k, PackFormat format,
    int density_pm) {
  if (!pack_format_sparse(format)) density_pm = 1000;
  const Key key{weights, m, k, block_k,
                static_cast<std::uint8_t>(format), density_pm};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_use = ++tick_;
  return it->second.image;
}

void PackedWeightCache::account(const PackedWeights& image, bool insert) {
  const std::size_t bytes = image.bytes();
  const auto fmt = static_cast<std::size_t>(image.format());
  if (insert) {
    resident_bytes_ += bytes;
    resident_by_format_[fmt] += bytes;
  } else {
    resident_bytes_ -= bytes;
    resident_by_format_[fmt] -= bytes;
  }
}

void PackedWeightCache::enforce_budget() {
  while (resident_bytes_ > budget_ && !cache_.empty()) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    account(*victim->second.image, /*insert=*/false);
    cache_.erase(victim);
    ++stats_.evictions;
  }
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
}

void PackedWeightCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  entry_count_.store(0, std::memory_order_relaxed);
  resident_bytes_ = 0;
  resident_by_format_.fill(0);
}

void PackedWeightCache::set_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  enforce_budget();
}

PackedWeightCacheStats PackedWeightCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PackedWeightCacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_bytes_by_format = resident_by_format_;
  s.entries = cache_.size();
  return s;
}

}  // namespace vlacnn::gemm

#include "gemm/packed_weight_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vlacnn::gemm {

PackedWeights::PackedWeights(const float* weights, int m, int k, int block_k)
    : m_(m), k_(k), block_k_(block_k) {
  VLACNN_REQUIRE(m >= 1 && k >= 1 && block_k >= 1, "bad packed-weight dims");
  data_.resize(static_cast<std::size_t>(m) * k);
  // Offline scalar packing (uninstrumented, like the Winograd weight
  // transform): per k-block, every row's [k1, k1+kc) slice lands
  // contiguously — bytewise the pack_a_panel layout.
  for (int k1 = 0; k1 < k; k1 += block_k) {
    const int kc = std::min(block_k, k - k1);
    float* block = data_.data() + static_cast<std::size_t>(m) * k1;
    for (int i = 0; i < m; ++i) {
      const float* src = weights + static_cast<std::size_t>(i) * k + k1;
      float* dst = block + static_cast<std::size_t>(i) * kc;
      std::copy(src, src + kc, dst);
    }
  }
  reg_ = sim::RegisteredRange(data_.data(), data_.size() * sizeof(float));
}

std::shared_ptr<const PackedWeights> PackedWeightCache::prepare(
    const float* weights, int m, int k, int block_k) {
  const Key key{weights, m, k, block_k};
  const std::size_t bytes =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k) *
      sizeof(float);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.last_use = ++tick_;
      return it->second.image;
    }
    // Admission checks BEFORE the (expensive) pack: prepare() runs before
    // every batch, so a layer that cannot be retained must cost O(1) here,
    // not a full M×K copy that is then thrown away.
    if (bytes > budget_) {
      ++stats_.rejected;
      return nullptr;  // caller keeps the run-time packing path
    }
    if (resident_bytes_ + bytes > budget_) {
      ++stats_.deferred;  // budget full: no evict-on-insert churn
      return nullptr;
    }
  }
  // Pack outside the lock: concurrent first-touch of *different* layers
  // proceeds in parallel; a duplicate pack of the same layer is harmless
  // (the images are identical) and the second insert wins nothing.
  auto image = std::make_shared<const PackedWeights>(weights, m, k, block_k);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.last_use = ++tick_;
    return it->second.image;
  }
  ++stats_.packs;
  if (resident_bytes_ + bytes > budget_) {
    ++stats_.deferred;  // a concurrent prepare filled the budget meanwhile
    return nullptr;
  }
  resident_bytes_ += image->bytes();
  cache_.emplace(key, Entry{image, ++tick_});
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
  return image;
}

std::shared_ptr<const PackedWeights> PackedWeightCache::find(
    const float* weights, int m, int k, int block_k) {
  const Key key{weights, m, k, block_k};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_use = ++tick_;
  return it->second.image;
}

void PackedWeightCache::enforce_budget() {
  while (resident_bytes_ > budget_ && !cache_.empty()) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    resident_bytes_ -= victim->second.image->bytes();
    cache_.erase(victim);
    ++stats_.evictions;
  }
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
}

void PackedWeightCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  entry_count_.store(0, std::memory_order_relaxed);
  resident_bytes_ = 0;
}

void PackedWeightCache::set_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  enforce_budget();
}

PackedWeightCacheStats PackedWeightCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PackedWeightCacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.entries = cache_.size();
  return s;
}

}  // namespace vlacnn::gemm

#include "gemm/packed_weight_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vlacnn::gemm {

const char* to_string(PackFormat f) {
  switch (f) {
    case PackFormat::F32: return "f32";
    case PackFormat::Bf16: return "bf16";
    case PackFormat::Int8PerChannel: return "int8";
  }
  return "?";
}

float int8_channel_scale(const float* row, int k) {
  float amax = 0.0f;
  for (int c = 0; c < k; ++c) amax = std::max(amax, std::fabs(row[c]));
  return amax > 0.0f ? amax / 127.0f : 1.0f;
}

namespace {

/// round-to-nearest(-even) symmetric int8 quantization, clamped to ±127.
std::int8_t quantize_int8(float x, float inv_scale) {
  const long q = std::lrintf(x * inv_scale);
  return static_cast<std::int8_t>(std::clamp(q, -127l, 127l));
}

}  // namespace

PackedWeights::PackedWeights(const float* weights, int m, int k, int block_k,
                             PackFormat format)
    : m_(m), k_(k), block_k_(block_k), format_(format) {
  VLACNN_REQUIRE(m >= 1 && k >= 1 && block_k >= 1, "bad packed-weight dims");
  data_.resize(static_cast<std::size_t>(m) * k * elem_bytes());
  // Int8 scales come first and cover the WHOLE row: the quantized value of
  // a weight must not depend on which k-block a later sweep reads it from.
  if (format == PackFormat::Int8PerChannel) {
    scales_.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
      scales_[static_cast<std::size_t>(i)] =
          int8_channel_scale(weights + static_cast<std::size_t>(i) * k, k);
  }
  // Offline scalar packing (uninstrumented, like the Winograd weight
  // transform): per k-block, every row's [k1, k1+kc) slice lands
  // contiguously — the pack_a_panel layout, cast per format on the way in.
  for (int k1 = 0; k1 < k; k1 += block_k) {
    const int kc = std::min(block_k, k - k1);
    std::uint8_t* block =
        data_.data() + static_cast<std::size_t>(m) * k1 * elem_bytes();
    for (int i = 0; i < m; ++i) {
      const float* src = weights + static_cast<std::size_t>(i) * k + k1;
      std::uint8_t* dst =
          block + static_cast<std::size_t>(i) * kc * elem_bytes();
      switch (format) {
        case PackFormat::F32:
          std::memcpy(dst, src, static_cast<std::size_t>(kc) * sizeof(float));
          break;
        case PackFormat::Bf16: {
          auto* out = reinterpret_cast<std::uint16_t*>(dst);
          for (int c = 0; c < kc; ++c) out[c] = bf16_from_f32(src[c]);
          break;
        }
        case PackFormat::Int8PerChannel: {
          auto* out = reinterpret_cast<std::int8_t*>(dst);
          const float inv_scale = 1.0f / scales_[static_cast<std::size_t>(i)];
          for (int c = 0; c < kc; ++c)
            out[c] = quantize_int8(src[c], inv_scale);
          break;
        }
      }
    }
  }
  reg_ = sim::RegisteredRange(data_.data(), data_.size());
  if (!scales_.empty())
    scales_reg_ = sim::RegisteredRange(scales_.data(),
                                       scales_.size() * sizeof(float));
}

const float* PackedWeights::data() const {
  VLACNN_REQUIRE(format_ == PackFormat::F32,
                 "fp32 view of a quantized packed-weight image");
  return reinterpret_cast<const float*>(data_.data());
}

const float* PackedWeights::panel(int i1, int k1, int kc) const {
  VLACNN_REQUIRE(format_ == PackFormat::F32,
                 "fp32 panel of a quantized packed-weight image");
  return reinterpret_cast<const float*>(panel_raw(i1, k1, kc));
}

std::shared_ptr<const PackedWeights> PackedWeightCache::prepare(
    const float* weights, int m, int k, int block_k, PackFormat format) {
  const Key key{weights, m, k, block_k,
                static_cast<std::uint8_t>(format)};
  const std::size_t bytes = image_bytes(m, k, format);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.last_use = ++tick_;
      return it->second.image;
    }
    // Admission checks BEFORE the (expensive) pack: prepare() runs before
    // every batch, so a layer that cannot be retained must cost O(1) here,
    // not a full M×K copy that is then thrown away.
    if (bytes > budget_) {
      ++stats_.rejected;
      return nullptr;  // caller keeps the run-time packing path
    }
    if (resident_bytes_ + bytes > budget_) {
      ++stats_.deferred;  // budget full: no evict-on-insert churn
      return nullptr;
    }
  }
  // Pack outside the lock: concurrent first-touch of *different* layers
  // proceeds in parallel; a duplicate pack of the same layer is harmless
  // (the images are identical) and the second insert wins nothing.
  auto image =
      std::make_shared<const PackedWeights>(weights, m, k, block_k, format);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.last_use = ++tick_;
    return it->second.image;
  }
  ++stats_.packs;
  if (resident_bytes_ + bytes > budget_) {
    ++stats_.deferred;  // a concurrent prepare filled the budget meanwhile
    return nullptr;
  }
  account(*image, /*insert=*/true);
  cache_.emplace(key, Entry{image, ++tick_});
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
  return image;
}

std::shared_ptr<const PackedWeights> PackedWeightCache::find(
    const float* weights, int m, int k, int block_k, PackFormat format) {
  const Key key{weights, m, k, block_k,
                static_cast<std::uint8_t>(format)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_use = ++tick_;
  return it->second.image;
}

void PackedWeightCache::account(const PackedWeights& image, bool insert) {
  const std::size_t bytes = image.bytes();
  const auto fmt = static_cast<std::size_t>(image.format());
  if (insert) {
    resident_bytes_ += bytes;
    resident_by_format_[fmt] += bytes;
  } else {
    resident_bytes_ -= bytes;
    resident_by_format_[fmt] -= bytes;
  }
}

void PackedWeightCache::enforce_budget() {
  while (resident_bytes_ > budget_ && !cache_.empty()) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    account(*victim->second.image, /*insert=*/false);
    cache_.erase(victim);
    ++stats_.evictions;
  }
  entry_count_.store(cache_.size(), std::memory_order_relaxed);
}

void PackedWeightCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  entry_count_.store(0, std::memory_order_relaxed);
  resident_bytes_ = 0;
  resident_by_format_.fill(0);
}

void PackedWeightCache::set_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  enforce_budget();
}

PackedWeightCacheStats PackedWeightCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PackedWeightCacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_bytes_by_format = resident_by_format_;
  s.entries = cache_.size();
  return s;
}

}  // namespace vlacnn::gemm

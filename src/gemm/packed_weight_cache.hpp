#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "sim/address_map.hpp"

namespace vlacnn::gemm {

/// Storage format of a pack-once weight image. Precision is a pure
/// storage-format question once weights are pack-once/run-many: the reduced
/// formats shrink the resident A-panel stream (the dominant DRAM consumer of
/// weight-bound layers) by 2x / 4x, and the microkernel widens back to fp32
/// on the A load — activations and accumulation stay fp32 throughout (the
/// popfloat cast-on-load / accumulate-in-fp32 idiom).
enum class PackFormat : std::uint8_t {
  F32 = 0,            ///< bytewise the run-time pack_a_panel layout
  Bf16 = 1,           ///< round-to-nearest-even bf16; widened by a bit shift
  Int8PerChannel = 2, ///< symmetric int8, one scale per output channel (row)
  SparseF32 = 3,      ///< block-sparse fp32: bitmap + compacted value stream
  SparseBf16 = 4,     ///< block-sparse bf16 values, same index structure
};

inline constexpr std::size_t kNumPackFormats = 5;

const char* to_string(PackFormat f);

[[nodiscard]] constexpr bool pack_format_sparse(PackFormat f) {
  return f == PackFormat::SparseF32 || f == PackFormat::SparseBf16;
}

/// Bytes per packed element (for sparse formats, per *stored* element).
[[nodiscard]] constexpr std::size_t pack_elem_bytes(PackFormat f) {
  switch (f) {
    case PackFormat::F32:
    case PackFormat::SparseF32:
      return 4;
    case PackFormat::Bf16:
    case PackFormat::SparseBf16:
      return 2;
    case PackFormat::Int8PerChannel:
      return 1;
  }
  return 4;
}

/// Block-sparsity granule: kSparseBlockM output channels (rows of the GEMM A
/// matrix) by kSparseBlockK reduction columns. The row granule matches the
/// microkernel's accumulator-row grouping (every power-of-two unroll the
/// tuner emits is a multiple of 4), the column granule gives the skip test a
/// 16-iteration FMA run to amortize against — the popsparse block-CSR shape
/// mapped onto the BLIS panel walk.
inline constexpr int kSparseBlockM = 4;
inline constexpr int kSparseBlockK = 16;

/// Geometry of the block grid a sparse image is pruned/packed on. Blocks are
/// aligned to the k-panel grid (panel pk covers columns [pk·block_k, +kc)),
/// so a block never straddles the panels the blocked GEMM sweeps; every
/// panel gets a fixed capacity of `chunk_cap` column chunks (trailing chunks
/// of a short last panel simply stay empty) so the linear block index is
/// closed-form.
struct SparseGrid {
  int m = 0, k = 0, block_k = 0;
  int num_pk = 0;     ///< k-panels
  int num_rb = 0;     ///< row blocks (granule kSparseBlockM)
  int chunk_cap = 0;  ///< column-chunk capacity per panel

  SparseGrid(int m_in, int k_in, int block_k_in)
      : m(m_in),
        k(k_in),
        block_k(block_k_in),
        num_pk((k_in + block_k_in - 1) / block_k_in),
        num_rb((m_in + kSparseBlockM - 1) / kSparseBlockM),
        chunk_cap((std::min(block_k_in, k_in) + kSparseBlockK - 1) /
                  kSparseBlockK) {}

  [[nodiscard]] int kc(int pk) const { return std::min(block_k, k - pk * block_k); }
  [[nodiscard]] int chunks(int pk) const {
    return (kc(pk) + kSparseBlockK - 1) / kSparseBlockK;
  }
  [[nodiscard]] int rows(int rb) const {
    return std::min(kSparseBlockM, m - rb * kSparseBlockM);
  }
  [[nodiscard]] int cols(int pk, int cb) const {
    return std::min(kSparseBlockK, kc(pk) - cb * kSparseBlockK);
  }
  /// Linear index of block (pk, rb, cb) into a mask / the bitmap order.
  [[nodiscard]] std::size_t index(int pk, int rb, int cb) const {
    return (static_cast<std::size_t>(pk) * num_rb + rb) * chunk_cap + cb;
  }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(num_pk) * num_rb * chunk_cap;
  }
  [[nodiscard]] std::size_t segments() const {
    return static_cast<std::size_t>(num_pk) * num_rb;
  }
  /// Blocks that actually cover matrix data (excludes the padding slots of a
  /// short last panel).
  [[nodiscard]] std::size_t valid_blocks() const {
    std::size_t n = 0;
    for (int pk = 0; pk < num_pk; ++pk)
      n += static_cast<std::size_t>(chunks(pk)) * num_rb;
    return n;
  }
};

/// Magnitude-based block pruning: keeps the ceil(density_pm/1000 · valid)
/// blocks with the largest L1 mass, ties broken by lower linear index so the
/// mask is deterministic. Returns one byte per SparseGrid slot (1 = keep);
/// padding slots are always 0. density_pm is density in per-mille (500 =
/// keep half the blocks).
[[nodiscard]] std::vector<std::uint8_t> prune_block_mask(
    const float* weights, int m, int k, int block_k, int density_pm);

/// Zeroes every weight belonging to a pruned block, in place — the dense
/// reference a sparse image must match bit-for-bit.
void apply_block_mask(float* weights, int m, int k, int block_k,
                      const std::vector<std::uint8_t>& mask);

/// fp32 -> bf16 with round-to-nearest-even (the standard truncation-plus-
/// rounding-bias formula). Values exactly representable in bf16 round-trip
/// bit-exactly through f32_from_bf16.
[[nodiscard]] inline std::uint16_t bf16_from_f32(float x) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint32_t lsb = (bits >> 16) & 1u;
  return static_cast<std::uint16_t>((bits + 0x7FFFu + lsb) >> 16);
}

/// bf16 -> fp32 widening: a pure bit shift, always exact.
[[nodiscard]] inline float f32_from_bf16(std::uint16_t h) {
  const std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// Symmetric per-channel int8 scale: amax/127, or 1.0 for an all-zero
/// channel (whose quantized values are all exactly 0 either way — the scale
/// only needs to be finite and non-zero so dequantization stays well-defined).
[[nodiscard]] float int8_channel_scale(const float* row, int k);

/// Immutable pack-once image of one weight matrix A (M×K, row-major,
/// lda == K) in the exact BLIS panel layout Gemm6::pack_a_panel produces at
/// run time: the K dimension is split into blocks of `block_k`; block k1
/// holds all M rows of columns [k1, k1+kc) as consecutive mc×kc row-major
/// panels (stride kc). Because panel i1 of block k1 simply starts at row i1,
/// the whole image is the concatenation over k-blocks of an M×kc row-major
/// slab, and
///
///   panel(i1, k1) = data() + elem_bytes·(M·k1 + i1·kc),   a_stride = kc
///
/// addresses any (i1, k1) panel directly. For PackFormat::F32 the values are
/// bytewise what the run-time pack stage would have written, so the
/// micro-kernel consuming a resident image is bit-identical to the packing
/// hot path it replaces. The reduced-precision formats keep the identical
/// panel geometry with 2-byte (bf16) or 1-byte (int8) elements; an int8
/// image additionally carries one dequantization scale per output channel
/// (row), computed here at pack time over the whole row — NOT per k-block,
/// so the quantized value of a weight never depends on the blocking sweep
/// that reads it.
///
/// The sparse formats store the SAME values the dense formats would, minus
/// the blocks a magnitude prune at `density_pm` dropped: a per-(panel,
/// row-block) segment holds a uint64 occupancy bitmap (bit cb = chunk cb
/// kept, so block_k ≤ 64·kSparseBlockK) plus the element offset of the
/// segment's first kept block in one compacted value stream. Kept blocks
/// are stored consecutively in ascending cb order, each as a rows×cols
/// row-major tile, so the skip-aware microkernel walks k strictly ascending
/// — the float additions it performs are exactly the non-zero subsequence
/// of the dense k-walk, which is why fp32-sparse output is bit-identical to
/// the dense kernel over apply_block_mask-pruned weights.
class PackedWeights {
 public:
  PackedWeights(const float* weights, int m, int k, int block_k,
                PackFormat format = PackFormat::F32, int density_pm = 1000);

  [[nodiscard]] PackFormat format() const { return format_; }
  [[nodiscard]] std::size_t elem_bytes() const {
    return pack_elem_bytes(format_);
  }
  /// The packed image, element type per format().
  [[nodiscard]] const void* raw() const { return data_.data(); }
  /// fp32 view of an F32 image (the historical accessor; refuses other
  /// formats so a float* can never silently alias quantized bytes).
  [[nodiscard]] const float* data() const;
  /// Image bytes (panel data only — what the DRAM watch ranges cover).
  [[nodiscard]] std::size_t data_bytes() const { return data_.size(); }
  /// Per-channel dequantization scales (Int8PerChannel only, length m()).
  [[nodiscard]] const float* scales() const {
    return scales_.empty() ? nullptr : scales_.data();
  }
  [[nodiscard]] std::size_t scales_bytes() const {
    return scales_.size() * sizeof(float);
  }
  /// Sparse index structure (bitmaps then offsets, one uint64 each per
  /// segment); nullptr/0 for dense formats. The hot path reads this, so the
  /// DRAM watch ranges cover it alongside the value stream.
  [[nodiscard]] const void* sparse_meta() const {
    return sparse_meta_.size() == 0 ? nullptr : sparse_meta_.data();
  }
  [[nodiscard]] std::size_t sparse_meta_bytes() const {
    return sparse_meta_.size() * sizeof(std::uint64_t);
  }
  /// Total resident footprint: panel data plus the scale vector plus any
  /// sparse index structure. This is what the cache budget accounts.
  [[nodiscard]] std::size_t bytes() const {
    return data_bytes() + scales_bytes() + sparse_meta_bytes();
  }
  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int block_k() const { return block_k_; }
  [[nodiscard]] bool sparse() const { return pack_format_sparse(format_); }
  /// Pruning density in per-mille (1000 for dense formats).
  [[nodiscard]] int density_pm() const { return density_pm_; }

  /// Panel for rows [i1, i1+mc) of k-block starting at column k1 whose
  /// width is kc = min(block_k, K - k1); row stride is kc elements.
  [[nodiscard]] const void* panel_raw(int i1, int k1, int kc) const {
    return data_.data() + (static_cast<std::size_t>(m_) * k1 +
                           static_cast<std::size_t>(i1) * kc) *
                              elem_bytes();
  }
  /// fp32 panel of an F32 image (historical accessor; see data()).
  [[nodiscard]] const float* panel(int i1, int k1, int kc) const;

  /// --- Sparse accessors (sparse formats only) ---
  /// Segment index of (row block containing `row`, panel starting at column
  /// `k1`). `row` must be a multiple of kSparseBlockM.
  [[nodiscard]] std::size_t sparse_segment(int row, int k1) const {
    return static_cast<std::size_t>(k1 / block_k_) * num_rb_ +
           row / kSparseBlockM;
  }
  /// Pointer to the segment's occupancy bitmap word (bit cb = column chunk
  /// [k1 + cb·kSparseBlockK, …) kept).
  [[nodiscard]] const std::uint64_t* sparse_bitmap_word(std::size_t seg) const {
    return sparse_meta_.data() + seg;
  }
  /// Pointer to the segment's value-stream element offset word.
  [[nodiscard]] const std::uint64_t* sparse_offset_word(std::size_t seg) const {
    return sparse_meta_.data() + nsegs_ + seg;
  }
  /// First kept block of segment `seg` inside the compacted value stream.
  [[nodiscard]] const void* sparse_values(std::size_t seg) const {
    return data_.data() + sparse_meta_[nsegs_ + seg] * elem_bytes();
  }

 private:
  /// Builds the sparse index + compacted value stream from a prune mask.
  void pack_sparse(const float* weights);

  int m_, k_, block_k_;
  PackFormat format_;
  int density_pm_ = 1000;
  std::size_t num_rb_ = 0, nsegs_ = 0;  ///< sparse grid dims (sparse only)
  AlignedBuffer<std::uint8_t> data_;
  AlignedBuffer<float> scales_;  ///< per-row dequant scales (int8 only)
  /// Sparse index: nsegs_ bitmap words followed by nsegs_ offset words.
  AlignedBuffer<std::uint64_t> sparse_meta_;
  sim::RegisteredRange reg_, scales_reg_, meta_reg_;
};

/// Counters describing what the cache has done so far (snapshot).
struct PackedWeightCacheStats {
  std::uint64_t hits = 0;       ///< find() located a resident image
  std::uint64_t misses = 0;     ///< find() had no image for the key
  std::uint64_t packs = 0;      ///< prepare() packed a new image
  std::uint64_t evictions = 0;  ///< images dropped on a budget shrink
  std::uint64_t rejected = 0;   ///< images larger than the whole budget
  std::uint64_t deferred = 0;   ///< prepare() skips: budget already full
  std::size_t resident_bytes = 0;
  /// Per-format resident byte totals, indexed by PackFormat: mixed-precision
  /// plans share one budget, so the aggregate alone cannot tell which
  /// format's stream is pinning it.
  std::array<std::size_t, kNumPackFormats> resident_bytes_by_format{};
  std::size_t entries = 0;
};

/// Cache of pack-once weight images shared by every per-context Gemm6 a
/// core::ConvolutionEngine installs — the GEMM twin of
/// winograd::WeightCache. Populated during ConvolutionEngine::prepare()
/// (host-side scalar packing, uninstrumented: the paper's protocol excludes
/// weight preparation from inference time, §VII-A) and read-only during
/// forward passes, so any number of worker contexts may consume the same
/// image concurrently.
///
/// Keys are (weights pointer, M, K, block_k, format): the layout depends on
/// the blocking configuration, and — as with the Winograd cache — a recycled
/// heap address from a destroyed network must never alias an entry of a
/// different shape. The format key lets mixed-precision plans keep an fp32
/// and a quantized image of the same weights resident side by side under
/// the one budget. Entries are handed out as shared_ptr, so an image a
/// reader still holds survives its own eviction; the cache keeps at most
/// `budget_bytes` resident (a YOLOv3's 200+ MB of conv weights must not
/// pin memory forever). Admission is prepare-time only and STOPS at the
/// budget: an image that does not fit the remaining budget is skipped
/// without packing (`deferred` — its layers keep the run-time packing
/// path), never admitted by evicting a resident image. prepare(net) runs
/// before every batch, so evict-on-insert would repack the whole rotation
/// of an over-budget layer set on every single batch; first-come residency
/// is stable and churn-free instead. LRU eviction applies when the budget
/// shrinks (set_budget); clear() restarts admission from scratch.
class PackedWeightCache {
 public:
  static constexpr std::size_t kDefaultBudgetBytes = 256ull << 20;

  explicit PackedWeightCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_(budget_bytes) {}

  /// Packs (or refreshes the LRU stamp of) the image for `weights`; the
  /// prepare step of the serving lifecycle. Returns the image, or nullptr
  /// when it was not retained (larger than the whole budget, or the budget
  /// is already full) — the size check precedes the packing work, so a
  /// skipped prepare() is O(1).
  /// density_pm is the block-pruning density for the sparse formats (part
  /// of the key: sparse50 and sparse25 images of the same weights are
  /// distinct residents); dense formats must pass 1000.
  std::shared_ptr<const PackedWeights> prepare(
      const float* weights, int m, int k, int block_k,
      PackFormat format = PackFormat::F32, int density_pm = 1000);

  /// Hot-path lookup: returns the resident image (bumping its LRU stamp)
  /// or nullptr. Never packs.
  std::shared_ptr<const PackedWeights> find(
      const float* weights, int m, int k, int block_k,
      PackFormat format = PackFormat::F32, int density_pm = 1000);

  /// Lock-free pre-check for the GEMM hot path: false means the cache is
  /// empty and find() cannot possibly hit, so callers skip the mutexed
  /// lookup (and the miss-stat noise) entirely — the common case for
  /// every non-weight-resident policy.
  [[nodiscard]] bool maybe_resident() const {
    return entry_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Drops every resident image (e.g. after mutating weights in tests).
  void clear();

  void set_budget(std::size_t bytes);
  [[nodiscard]] std::size_t budget() const {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_;
  }
  [[nodiscard]] PackedWeightCacheStats stats() const;

  /// Image footprint for admission checks, computed BEFORE packing. For the
  /// sparse formats this is a conservative upper bound (every kept block at
  /// full granule size plus the index words); the post-pack accounting uses
  /// the exact bytes(). Public so benches and tests can price admission the
  /// way the cache does.
  static std::size_t image_bytes(int m, int k, int block_k, PackFormat format,
                                 int density_pm) {
    if (pack_format_sparse(format)) {
      const SparseGrid g(m, k, block_k);
      const std::size_t kept =
          (g.valid_blocks() * static_cast<std::size_t>(density_pm) + 999) /
          1000;
      return kept * kSparseBlockM * kSparseBlockK * pack_elem_bytes(format) +
             2 * g.segments() * sizeof(std::uint64_t);
    }
    std::size_t b = static_cast<std::size_t>(m) * static_cast<std::size_t>(k) *
                    pack_elem_bytes(format);
    if (format == PackFormat::Int8PerChannel)
      b += static_cast<std::size_t>(m) * sizeof(float);  // the scale vector
    return b;
  }

 private:
  using Key = std::tuple<const float*, int, int, int, std::uint8_t, int>;
  struct Entry {
    std::shared_ptr<const PackedWeights> image;
    std::uint64_t last_use = 0;
  };

  /// Accounts `image` in (or out of, delta < 0) the per-format totals.
  /// mu_ held.
  void account(const PackedWeights& image, bool insert);

  /// Evicts LRU entries until the budget holds. mu_ held.
  void enforce_budget();

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::atomic<std::size_t> entry_count_{0};  // == cache_.size(), lock-free
  std::size_t budget_;
  std::size_t resident_bytes_ = 0;
  std::array<std::size_t, kNumPackFormats> resident_by_format_{};
  std::uint64_t tick_ = 0;
  PackedWeightCacheStats stats_;
};

}  // namespace vlacnn::gemm

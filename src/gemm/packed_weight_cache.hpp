#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/aligned_buffer.hpp"
#include "sim/address_map.hpp"

namespace vlacnn::gemm {

/// Storage format of a pack-once weight image. Precision is a pure
/// storage-format question once weights are pack-once/run-many: the reduced
/// formats shrink the resident A-panel stream (the dominant DRAM consumer of
/// weight-bound layers) by 2x / 4x, and the microkernel widens back to fp32
/// on the A load — activations and accumulation stay fp32 throughout (the
/// popfloat cast-on-load / accumulate-in-fp32 idiom).
enum class PackFormat : std::uint8_t {
  F32 = 0,            ///< bytewise the run-time pack_a_panel layout
  Bf16 = 1,           ///< round-to-nearest-even bf16; widened by a bit shift
  Int8PerChannel = 2, ///< symmetric int8, one scale per output channel (row)
};

inline constexpr std::size_t kNumPackFormats = 3;

const char* to_string(PackFormat f);

/// Bytes per packed element.
[[nodiscard]] constexpr std::size_t pack_elem_bytes(PackFormat f) {
  return f == PackFormat::F32 ? 4 : f == PackFormat::Bf16 ? 2 : 1;
}

/// fp32 -> bf16 with round-to-nearest-even (the standard truncation-plus-
/// rounding-bias formula). Values exactly representable in bf16 round-trip
/// bit-exactly through f32_from_bf16.
[[nodiscard]] inline std::uint16_t bf16_from_f32(float x) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint32_t lsb = (bits >> 16) & 1u;
  return static_cast<std::uint16_t>((bits + 0x7FFFu + lsb) >> 16);
}

/// bf16 -> fp32 widening: a pure bit shift, always exact.
[[nodiscard]] inline float f32_from_bf16(std::uint16_t h) {
  const std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// Symmetric per-channel int8 scale: amax/127, or 1.0 for an all-zero
/// channel (whose quantized values are all exactly 0 either way — the scale
/// only needs to be finite and non-zero so dequantization stays well-defined).
[[nodiscard]] float int8_channel_scale(const float* row, int k);

/// Immutable pack-once image of one weight matrix A (M×K, row-major,
/// lda == K) in the exact BLIS panel layout Gemm6::pack_a_panel produces at
/// run time: the K dimension is split into blocks of `block_k`; block k1
/// holds all M rows of columns [k1, k1+kc) as consecutive mc×kc row-major
/// panels (stride kc). Because panel i1 of block k1 simply starts at row i1,
/// the whole image is the concatenation over k-blocks of an M×kc row-major
/// slab, and
///
///   panel(i1, k1) = data() + elem_bytes·(M·k1 + i1·kc),   a_stride = kc
///
/// addresses any (i1, k1) panel directly. For PackFormat::F32 the values are
/// bytewise what the run-time pack stage would have written, so the
/// micro-kernel consuming a resident image is bit-identical to the packing
/// hot path it replaces. The reduced-precision formats keep the identical
/// panel geometry with 2-byte (bf16) or 1-byte (int8) elements; an int8
/// image additionally carries one dequantization scale per output channel
/// (row), computed here at pack time over the whole row — NOT per k-block,
/// so the quantized value of a weight never depends on the blocking sweep
/// that reads it.
class PackedWeights {
 public:
  PackedWeights(const float* weights, int m, int k, int block_k,
                PackFormat format = PackFormat::F32);

  [[nodiscard]] PackFormat format() const { return format_; }
  [[nodiscard]] std::size_t elem_bytes() const {
    return pack_elem_bytes(format_);
  }
  /// The packed image, element type per format().
  [[nodiscard]] const void* raw() const { return data_.data(); }
  /// fp32 view of an F32 image (the historical accessor; refuses other
  /// formats so a float* can never silently alias quantized bytes).
  [[nodiscard]] const float* data() const;
  /// Image bytes (panel data only — what the DRAM watch ranges cover).
  [[nodiscard]] std::size_t data_bytes() const { return data_.size(); }
  /// Per-channel dequantization scales (Int8PerChannel only, length m()).
  [[nodiscard]] const float* scales() const {
    return scales_.empty() ? nullptr : scales_.data();
  }
  [[nodiscard]] std::size_t scales_bytes() const {
    return scales_.size() * sizeof(float);
  }
  /// Total resident footprint: panel data plus the scale vector. This is
  /// what the cache budget accounts.
  [[nodiscard]] std::size_t bytes() const {
    return data_bytes() + scales_bytes();
  }
  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int block_k() const { return block_k_; }

  /// Panel for rows [i1, i1+mc) of k-block starting at column k1 whose
  /// width is kc = min(block_k, K - k1); row stride is kc elements.
  [[nodiscard]] const void* panel_raw(int i1, int k1, int kc) const {
    return data_.data() + (static_cast<std::size_t>(m_) * k1 +
                           static_cast<std::size_t>(i1) * kc) *
                              elem_bytes();
  }
  /// fp32 panel of an F32 image (historical accessor; see data()).
  [[nodiscard]] const float* panel(int i1, int k1, int kc) const;

 private:
  int m_, k_, block_k_;
  PackFormat format_;
  AlignedBuffer<std::uint8_t> data_;
  AlignedBuffer<float> scales_;  ///< per-row dequant scales (int8 only)
  sim::RegisteredRange reg_, scales_reg_;
};

/// Counters describing what the cache has done so far (snapshot).
struct PackedWeightCacheStats {
  std::uint64_t hits = 0;       ///< find() located a resident image
  std::uint64_t misses = 0;     ///< find() had no image for the key
  std::uint64_t packs = 0;      ///< prepare() packed a new image
  std::uint64_t evictions = 0;  ///< images dropped on a budget shrink
  std::uint64_t rejected = 0;   ///< images larger than the whole budget
  std::uint64_t deferred = 0;   ///< prepare() skips: budget already full
  std::size_t resident_bytes = 0;
  /// Per-format resident byte totals, indexed by PackFormat: mixed-precision
  /// plans share one budget, so the aggregate alone cannot tell which
  /// format's stream is pinning it.
  std::array<std::size_t, kNumPackFormats> resident_bytes_by_format{};
  std::size_t entries = 0;
};

/// Cache of pack-once weight images shared by every per-context Gemm6 a
/// core::ConvolutionEngine installs — the GEMM twin of
/// winograd::WeightCache. Populated during ConvolutionEngine::prepare()
/// (host-side scalar packing, uninstrumented: the paper's protocol excludes
/// weight preparation from inference time, §VII-A) and read-only during
/// forward passes, so any number of worker contexts may consume the same
/// image concurrently.
///
/// Keys are (weights pointer, M, K, block_k, format): the layout depends on
/// the blocking configuration, and — as with the Winograd cache — a recycled
/// heap address from a destroyed network must never alias an entry of a
/// different shape. The format key lets mixed-precision plans keep an fp32
/// and a quantized image of the same weights resident side by side under
/// the one budget. Entries are handed out as shared_ptr, so an image a
/// reader still holds survives its own eviction; the cache keeps at most
/// `budget_bytes` resident (a YOLOv3's 200+ MB of conv weights must not
/// pin memory forever). Admission is prepare-time only and STOPS at the
/// budget: an image that does not fit the remaining budget is skipped
/// without packing (`deferred` — its layers keep the run-time packing
/// path), never admitted by evicting a resident image. prepare(net) runs
/// before every batch, so evict-on-insert would repack the whole rotation
/// of an over-budget layer set on every single batch; first-come residency
/// is stable and churn-free instead. LRU eviction applies when the budget
/// shrinks (set_budget); clear() restarts admission from scratch.
class PackedWeightCache {
 public:
  static constexpr std::size_t kDefaultBudgetBytes = 256ull << 20;

  explicit PackedWeightCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_(budget_bytes) {}

  /// Packs (or refreshes the LRU stamp of) the image for `weights`; the
  /// prepare step of the serving lifecycle. Returns the image, or nullptr
  /// when it was not retained (larger than the whole budget, or the budget
  /// is already full) — the size check precedes the packing work, so a
  /// skipped prepare() is O(1).
  std::shared_ptr<const PackedWeights> prepare(
      const float* weights, int m, int k, int block_k,
      PackFormat format = PackFormat::F32);

  /// Hot-path lookup: returns the resident image (bumping its LRU stamp)
  /// or nullptr. Never packs.
  std::shared_ptr<const PackedWeights> find(
      const float* weights, int m, int k, int block_k,
      PackFormat format = PackFormat::F32);

  /// Lock-free pre-check for the GEMM hot path: false means the cache is
  /// empty and find() cannot possibly hit, so callers skip the mutexed
  /// lookup (and the miss-stat noise) entirely — the common case for
  /// every non-weight-resident policy.
  [[nodiscard]] bool maybe_resident() const {
    return entry_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Drops every resident image (e.g. after mutating weights in tests).
  void clear();

  void set_budget(std::size_t bytes);
  [[nodiscard]] std::size_t budget() const {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_;
  }
  [[nodiscard]] PackedWeightCacheStats stats() const;

 private:
  using Key = std::tuple<const float*, int, int, int, std::uint8_t>;
  struct Entry {
    std::shared_ptr<const PackedWeights> image;
    std::uint64_t last_use = 0;
  };

  /// Image footprint for admission checks, computed BEFORE packing.
  static std::size_t image_bytes(int m, int k, PackFormat format) {
    std::size_t b = static_cast<std::size_t>(m) * static_cast<std::size_t>(k) *
                    pack_elem_bytes(format);
    if (format == PackFormat::Int8PerChannel)
      b += static_cast<std::size_t>(m) * sizeof(float);  // the scale vector
    return b;
  }

  /// Accounts `image` in (or out of, delta < 0) the per-format totals.
  /// mu_ held.
  void account(const PackedWeights& image, bool insert);

  /// Evicts LRU entries until the budget holds. mu_ held.
  void enforce_budget();

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::atomic<std::size_t> entry_count_{0};  // == cache_.size(), lock-free
  std::size_t budget_;
  std::size_t resident_bytes_ = 0;
  std::array<std::size_t, kNumPackFormats> resident_by_format_{};
  std::uint64_t tick_ = 0;
  PackedWeightCacheStats stats_;
};

}  // namespace vlacnn::gemm

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/aligned_buffer.hpp"
#include "sim/address_map.hpp"

namespace vlacnn::gemm {

/// Immutable pack-once image of one weight matrix A (M×K, row-major,
/// lda == K) in the exact BLIS panel layout Gemm6::pack_a_panel produces at
/// run time: the K dimension is split into blocks of `block_k`; block k1
/// holds all M rows of columns [k1, k1+kc) as consecutive mc×kc row-major
/// panels (stride kc). Because panel i1 of block k1 simply starts at row i1,
/// the whole image is the concatenation over k-blocks of an M×kc row-major
/// slab, and
///
///   panel(i1, k1) = data() + M·k1 + i1·kc,   a_stride = kc
///
/// addresses any (i1, k1) panel directly. The values are bytewise what the
/// run-time pack stage would have written, so the micro-kernel consuming a
/// resident image is bit-identical to the packing hot path it replaces.
class PackedWeights {
 public:
  PackedWeights(const float* weights, int m, int k, int block_k);

  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(float);
  }
  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int block_k() const { return block_k_; }

  /// Panel for rows [i1, i1+mc) of k-block starting at column k1 whose
  /// width is kc = min(block_k, K - k1); row stride is kc.
  [[nodiscard]] const float* panel(int i1, int k1, int kc) const {
    return data_.data() + static_cast<std::size_t>(m_) * k1 +
           static_cast<std::size_t>(i1) * kc;
  }

 private:
  int m_, k_, block_k_;
  AlignedBuffer<float> data_;
  sim::RegisteredRange reg_;
};

/// Counters describing what the cache has done so far (snapshot).
struct PackedWeightCacheStats {
  std::uint64_t hits = 0;       ///< find() located a resident image
  std::uint64_t misses = 0;     ///< find() had no image for the key
  std::uint64_t packs = 0;      ///< prepare() packed a new image
  std::uint64_t evictions = 0;  ///< images dropped on a budget shrink
  std::uint64_t rejected = 0;   ///< images larger than the whole budget
  std::uint64_t deferred = 0;   ///< prepare() skips: budget already full
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;
};

/// Cache of pack-once weight images shared by every per-context Gemm6 a
/// core::ConvolutionEngine installs — the GEMM twin of
/// winograd::WeightCache. Populated during ConvolutionEngine::prepare()
/// (host-side scalar packing, uninstrumented: the paper's protocol excludes
/// weight preparation from inference time, §VII-A) and read-only during
/// forward passes, so any number of worker contexts may consume the same
/// image concurrently.
///
/// Keys are (weights pointer, M, K, block_k): the layout depends on the
/// blocking configuration, and — as with the Winograd cache — a recycled
/// heap address from a destroyed network must never alias an entry of a
/// different shape. Entries are handed out as shared_ptr, so an image a
/// reader still holds survives its own eviction; the cache keeps at most
/// `budget_bytes` resident (a YOLOv3's 200+ MB of conv weights must not
/// pin memory forever). Admission is prepare-time only and STOPS at the
/// budget: an image that does not fit the remaining budget is skipped
/// without packing (`deferred` — its layers keep the run-time packing
/// path), never admitted by evicting a resident image. prepare(net) runs
/// before every batch, so evict-on-insert would repack the whole rotation
/// of an over-budget layer set on every single batch; first-come residency
/// is stable and churn-free instead. LRU eviction applies when the budget
/// shrinks (set_budget); clear() restarts admission from scratch.
class PackedWeightCache {
 public:
  static constexpr std::size_t kDefaultBudgetBytes = 256ull << 20;

  explicit PackedWeightCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_(budget_bytes) {}

  /// Packs (or refreshes the LRU stamp of) the image for `weights`; the
  /// prepare step of the serving lifecycle. Returns the image, or nullptr
  /// when it was not retained (larger than the whole budget, or the budget
  /// is already full) — the size check precedes the packing work, so a
  /// skipped prepare() is O(1).
  std::shared_ptr<const PackedWeights> prepare(const float* weights, int m,
                                               int k, int block_k);

  /// Hot-path lookup: returns the resident image (bumping its LRU stamp)
  /// or nullptr. Never packs.
  std::shared_ptr<const PackedWeights> find(const float* weights, int m,
                                            int k, int block_k);

  /// Lock-free pre-check for the GEMM hot path: false means the cache is
  /// empty and find() cannot possibly hit, so callers skip the mutexed
  /// lookup (and the miss-stat noise) entirely — the common case for
  /// every non-weight-resident policy.
  [[nodiscard]] bool maybe_resident() const {
    return entry_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Drops every resident image (e.g. after mutating weights in tests).
  void clear();

  void set_budget(std::size_t bytes);
  [[nodiscard]] std::size_t budget() const {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_;
  }
  [[nodiscard]] PackedWeightCacheStats stats() const;

 private:
  using Key = std::tuple<const float*, int, int, int>;
  struct Entry {
    std::shared_ptr<const PackedWeights> image;
    std::uint64_t last_use = 0;
  };

  /// Evicts LRU entries until the budget holds. mu_ held.
  void enforce_budget();

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::atomic<std::size_t> entry_count_{0};  // == cache_.size(), lock-free
  std::size_t budget_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  PackedWeightCacheStats stats_;
};

}  // namespace vlacnn::gemm

#include "runtime/batch_scheduler.hpp"

#include <chrono>

namespace vlacnn::runtime {

BatchScheduler::BatchScheduler(core::ConvolutionEngine& engine,
                               const SchedulerConfig& cfg)
    : engine_(&engine), cfg_(cfg), pool_(cfg.threads) {
  const int t = pool_.size();
  worker_ctxs_.reserve(static_cast<std::size_t>(t));
  for (int w = 0; w < t; ++w) {
    vla::VectorEngine& eng =
        vla::ensure_worker_engine(worker_engines_, w, cfg_.vlen_bits);
    worker_ctxs_.push_back(std::make_unique<dnn::ExecContext>(eng));
    engine_->install(*worker_ctxs_.back());
  }
  main_engine_ = std::make_unique<vla::VectorEngine>(cfg_.vlen_bits);
  main_ctx_ = std::make_unique<dnn::ExecContext>(*main_engine_);
  engine_->install(*main_ctx_, cfg_.intra_op && t > 1 ? &pool_ : nullptr);
}

std::uint64_t BatchScheduler::mem_bytes_moved() const {
  std::uint64_t total = main_engine_->mem_bytes_moved();
  for (const auto& eng : worker_engines_)
    if (eng) total += eng->mem_bytes_moved();
  return total;
}

const dnn::Tensor& BatchScheduler::run(dnn::Network& net,
                                       const dnn::Tensor& input) {
  using clock = std::chrono::steady_clock;
  VLACNN_REQUIRE(net.num_layers() > 0, "empty network");
  VLACNN_REQUIRE(input.c() == net.in_c() && input.h() == net.in_h() &&
                     input.w() == net.in_w(),
                 "network input shape mismatch");

  // Weight transforms happen before any worker runs, so the shared cache is
  // a read-only lookup for the rest of the pass.
  engine_->prepare(net);
  records_.clear();
  // Per-layer backend names come from the engine's compiled plan (every
  // worker context shares the same plan, so the main context's label
  // function is authoritative for all of them).
  const auto algo_of = [this](const dnn::Layer& layer) -> std::string {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&layer);
    if (conv == nullptr) return "aux";
    return main_ctx_->conv_label ? main_ctx_->conv_label(conv->desc())
                                 : "im2col+gemm";
  };

  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    dnn::Layer& layer = net.layer(i);
    std::vector<const dnn::Tensor*> ins;
    for (int idx : layer.input_indices()) {
      if (idx < 0)
        ins.push_back(&input);
      else
        ins.push_back(&net.layer(static_cast<std::size_t>(idx)).output());
    }
    const int nb = layer.prepare_batch(ins);
    const auto t0 = clock::now();

    if (nb == 1 || pool_.size() == 1) {
      // Too little batch-level work to shard: run on the calling thread,
      // whose context may intra-op parallelize inside GEMM / Winograd.
      for (int b = 0; b < nb; ++b) layer.forward_item(*main_ctx_, ins, b);
      dnn::LayerRecord rec;
      rec.name = layer.name();
      rec.flops = layer.flops() * nb;
      rec.items = nb;
      rec.algo = algo_of(layer);
      rec.wall_seconds = std::chrono::duration<double>(clock::now() - t0).count();
      records_.push_back(std::move(rec));
      continue;
    }

    // Shard batch items across the pool; each worker fills its own part
    // record (static chunking makes the per-worker contents deterministic).
    std::vector<std::vector<dnn::LayerRecord>> parts(
        static_cast<std::size_t>(pool_.size()));
    pool_.parallel_for(nb, [&](int b, int w) {
      layer.forward_item(*worker_ctxs_[static_cast<std::size_t>(w)], ins, b);
      auto& mine = parts[static_cast<std::size_t>(w)];
      if (mine.empty()) {
        dnn::LayerRecord rec;
        rec.name = layer.name();
        rec.items = 0;
        mine.push_back(std::move(rec));
      }
      mine.back().items += 1;
      mine.back().flops += layer.flops();
    });
    dnn::LayerRecord rec;
    std::vector<dnn::LayerRecord> merged = dnn::merge_layer_records(parts);
    if (!merged.empty()) rec = std::move(merged.front());
    rec.name = layer.name();
    rec.algo = algo_of(layer);
    // The layer barrier waits for the slowest worker: report the span.
    rec.wall_seconds = std::chrono::duration<double>(clock::now() - t0).count();
    records_.push_back(std::move(rec));
  }
  return net.layer(net.num_layers() - 1).output();
}

}  // namespace vlacnn::runtime

#include "runtime/batch_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "runtime/fault_injector.hpp"

namespace vlacnn::runtime {

BatchScheduler::BatchScheduler(core::ConvolutionEngine& engine,
                               const SchedulerConfig& cfg)
    : engine_(&engine), cfg_(cfg), pool_(cfg.threads) {
  graph_ = std::make_unique<WorkGraph>(pool_);
  const int t = pool_.size();
  worker_ctxs_.reserve(static_cast<std::size_t>(t));
  for (int w = 0; w < t; ++w) {
    vla::VectorEngine& eng =
        vla::ensure_worker_engine(worker_engines_, w, cfg_.vlen_bits);
    worker_ctxs_.push_back(std::make_unique<dnn::ExecContext>(eng));
    engine_->install(*worker_ctxs_.back());
  }
  main_engine_ = std::make_unique<vla::VectorEngine>(cfg_.vlen_bits);
  main_ctx_ = std::make_unique<dnn::ExecContext>(*main_engine_);
  engine_->install(*main_ctx_, cfg_.intra_op && t > 1 ? &pool_ : nullptr);
  if (cfg_.fault_injector != nullptr) {
    graph_->set_fault_injector(cfg_.fault_injector);
    FaultInjector* inj = cfg_.fault_injector;
    pool_.task_start_hook = [inj](int worker) { inj->on_worker_task(worker); };
  }
  executor_ = std::thread([this] { executor_loop(); });
  if (cfg_.watchdog_timeout_s > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

BatchScheduler::~BatchScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  exec_cv_.notify_all();
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  if (executor_.joinable()) executor_.join();
}

void BatchScheduler::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(1e-4,
                                                   cfg_.watchdog_poll_s))),
        [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    if (graph_->cancel_if_wedged(cfg_.watchdog_timeout_s) > 0)
      watchdog_wedges_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void BatchScheduler::init_item_errors(Slot& slot, int items) {
  std::lock_guard<std::mutex> lock(item_mu_);
  slot.result.item_errors.assign(static_cast<std::size_t>(items), nullptr);
}

bool BatchScheduler::item_failed(Slot& slot, int item) {
  std::lock_guard<std::mutex> lock(item_mu_);
  return slot.result.item_errors[static_cast<std::size_t>(item)] != nullptr;
}

bool BatchScheduler::any_item_failed(Slot& slot) {
  std::lock_guard<std::mutex> lock(item_mu_);
  for (const auto& e : slot.result.item_errors)
    if (e) return true;
  return false;
}

void BatchScheduler::fail_item(Slot& slot, int item, std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(item_mu_);
  auto& cell = slot.result.item_errors[static_cast<std::size_t>(item)];
  if (!cell) cell = std::move(e);  // first failure wins (the root cause)
}

void BatchScheduler::fail_items(Slot& slot, int begin, int end,
                                std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(item_mu_);
  for (int b = begin; b < end; ++b) {
    auto& cell = slot.result.item_errors[static_cast<std::size_t>(b)];
    if (!cell) cell = e;
  }
}

std::uint64_t BatchScheduler::mem_bytes_moved() const {
  std::uint64_t total = main_engine_->mem_bytes_moved();
  for (const auto& eng : worker_engines_)
    if (eng) total += eng->mem_bytes_moved();
  return total;
}

BatchTicket BatchScheduler::enqueue(dnn::Network& net,
                                    const dnn::Tensor* borrowed,
                                    dnn::Tensor owned, bool snapshot_output) {
  // Validate synchronously so precondition errors throw from submit()/run(),
  // not from a later wait().
  const dnn::Tensor& in = borrowed != nullptr ? *borrowed : owned;
  VLACNN_REQUIRE(net.num_layers() > 0, "empty network");
  VLACNN_REQUIRE(in.c() == net.in_c() && in.h() == net.in_h() &&
                     in.w() == net.in_w(),
                 "network input shape mismatch");

  std::unique_lock<std::mutex> lock(mu_);
  // The slot a ticket maps to is a function of its id, and ids are handed
  // out under the lock — re-evaluate the slot inside the predicate because
  // a concurrent submitter may claim next_ticket_ while we sleep.
  slot_cv_.wait(lock, [&] {
    return slots_[next_ticket_ % kSlots].state == Slot::State::Free;
  });
  Slot& slot = slots_[next_ticket_ % kSlots];
  slot.id = next_ticket_++;
  slot.net = &net;
  slot.owned_input = std::move(owned);
  slot.input = borrowed != nullptr ? borrowed : &slot.owned_input;
  slot.snapshot_output = snapshot_output;
  slot.result = {};
  slot.error = nullptr;
  slot.state = Slot::State::Queued;
  const BatchTicket ticket{slot.id};
  lock.unlock();
  exec_cv_.notify_one();
  // next_ticket_ advanced: another producer blocked on the *other* slot's
  // freedom may now be eligible.
  slot_cv_.notify_all();
  return ticket;
}

BatchTicket BatchScheduler::submit(dnn::Network& net, dnn::Tensor input) {
  return enqueue(net, nullptr, std::move(input), /*snapshot_output=*/true);
}

BatchResult BatchScheduler::wait(const BatchTicket& ticket) {
  VLACNN_REQUIRE(ticket.id != 0, "invalid (default-constructed) ticket");
  std::unique_lock<std::mutex> lock(mu_);
  VLACNN_REQUIRE(ticket.id < next_ticket_, "ticket was never issued");
  Slot& slot = slots_[ticket.id % kSlots];
  // slot.id only grows; > means the slot was collected and recycled, ==
  // with State::Free means this very ticket was already waited.
  slot_cv_.wait(lock, [&] {
    return slot.id > ticket.id || slot.state == Slot::State::Done ||
           slot.state == Slot::State::Free;
  });
  VLACNN_REQUIRE(slot.id == ticket.id && slot.state == Slot::State::Done,
                 "ticket already collected (tickets are single-use)");
  BatchResult result = std::move(slot.result);
  std::exception_ptr error = slot.error;
  slot.result = {};
  slot.error = nullptr;
  slot.net = nullptr;
  slot.state = Slot::State::Free;
  lock.unlock();
  slot_cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return result;
}

const dnn::Tensor& BatchScheduler::run(dnn::Network& net,
                                       const dnn::Tensor& input) {
  // Thin synchronous wrapper over the pipelined API: the input is borrowed
  // (no copy — we block in wait() for the batch's whole lifetime) and the
  // output snapshot is skipped because the caller reads the network's own
  // tensor, exactly as the historical drain-loop API did.
  const BatchTicket ticket =
      enqueue(net, &input, dnn::Tensor(), /*snapshot_output=*/false);
  BatchResult result = wait(ticket);
  records_ = std::move(result.records);
  return net.layer(net.num_layers() - 1).output();
}

void BatchScheduler::complete(Slot& slot) {
  {
    // Collapse an all-null item-error vector to empty: the common fault-free
    // path hands callers `item_errors.empty()`, and a batch-level error
    // supersedes per-item bookkeeping entirely.
    std::lock_guard<std::mutex> item_lock(item_mu_);
    auto& errs = slot.result.item_errors;
    bool any = false;
    for (const auto& e : errs)
      if (e) { any = true; break; }
    if (!any || slot.error) errs.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot.owned_input = dnn::Tensor();  // release admitted input early
    slot.input = nullptr;
    slot.state = Slot::State::Done;
    --running_;
  }
  slot_cv_.notify_all();
}

void BatchScheduler::install_plan(core::BackendPlan plan) {
  std::unique_lock<std::mutex> lock(mu_);
  // One swap at a time; a second caller queues behind the first.
  slot_cv_.wait(lock, [&] { return !swap_pending_; });
  swap_pending_ = true;  // executor claims no further queued batches
  // Quiesce: every claimed batch must retire (complete() notifies
  // slot_cv_). Queued batches stay queued and run under the new plan.
  slot_cv_.wait(lock, [&] { return running_ == 0; });
  lock.unlock();

  // No batch in flight: the graph's remaining work is bookkeeping only.
  graph_->drain();
  engine_->set_plan(std::move(plan));
  // Recompile every context's dispatch against the new plan (same
  // install() calls as construction; per-context scratch is rebuilt, the
  // shared weight caches persist). The next launch's prepare() packs and
  // transforms whatever the new routing needs.
  for (auto& ctx : worker_ctxs_) engine_->install(*ctx);
  engine_->install(*main_ctx_,
                   cfg_.intra_op && pool_.size() > 1 ? &pool_ : nullptr);

  lock.lock();
  swap_pending_ = false;
  lock.unlock();
  exec_cv_.notify_all();
  slot_cv_.notify_all();
}

void BatchScheduler::executor_loop() {
  for (;;) {
    Slot* slot = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      exec_cv_.wait(lock, [&] {
        Slot& s = slots_[next_exec_ % kSlots];
        if (!swap_pending_ && s.state == Slot::State::Queued &&
            s.id == next_exec_) {
          slot = &s;
          return true;
        }
        return stopping_ && !swap_pending_;
      });
      // Queued batches drain even during shutdown (their submitters may be
      // blocked in wait()); exit only once nothing is queued.
      if (slot == nullptr) break;
      slot->state = Slot::State::Running;
      ++running_;
      ++next_exec_;
    }

    // Batch-1 passes gain more from intra-op kernel parallelism (the whole
    // pool inside one GEMM/Winograd call on the main context) than from a
    // one-chunk-per-layer graph, so they take the serial path even under
    // Graph. Everything else goes through the work graph — including a
    // 1-worker pool, where the graph machinery still runs (zero overlap,
    // same results).
    const bool batch1_intra =
        slot->input->n() == 1 && cfg_.intra_op && pool_.size() > 1;
    if (cfg_.executor == ExecutorKind::Graph && !batch1_intra) {
      launch_graph(*slot);  // returns immediately; on_done completes it
    } else {
      // The serial path runs outside the graph's hazard tracking, so any
      // in-flight graph batches must fully retire first.
      graph_->drain();
      execute_serial(*slot);
    }
  }
  graph_->drain();
}

void BatchScheduler::launch_graph(Slot& slot) {
  init_item_errors(slot, slot.input->n());
  try {
    // Weight transforms happen before any task runs, so the shared caches
    // are read-only lookups for the rest of the pass (they are also
    // thread-safe, which keeps this prepare sound while an older batch is
    // still executing on the pool).
    engine_->prepare(*slot.net);
    graph_->launch(build_program(slot));
  } catch (...) {
    slot.error = std::current_exception();
    complete(slot);
  }
}

GraphBatchSpec BatchScheduler::build_program(Slot& slot) {
  dnn::Network& net = *slot.net;
  const dnn::Tensor* input = slot.input;
  const int nb = input->n();
  Slot* slotp = &slot;

  GraphBatchSpec spec;
  spec.items = nb;
  spec.chunks = pool_.size();
  spec.layers.reserve(net.num_layers());

  // Per-layer backend names come from the engine's compiled plan (every
  // worker context shares the same plan, so the main context's label
  // function is authoritative for all of them).
  const auto algo_of = [this](const dnn::Layer& layer) -> std::string {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&layer);
    if (conv == nullptr) return "aux";
    return main_ctx_->conv_label ? main_ctx_->conv_label(conv->desc())
                                 : "im2col+gemm";
  };

  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    dnn::Layer& layer = net.layer(i);
    const int li = static_cast<int>(i);
    dnn::Layer* lp = &layer;

    std::vector<const dnn::Tensor*> ins;
    for (int idx : layer.input_indices()) {
      if (idx < 0)
        ins.push_back(input);
      else
        ins.push_back(&net.layer(static_cast<std::size_t>(idx)).output());
    }

    // Weight-resident layers execute batch-fused: ONE dispatch covers the
    // whole batch (per-item im2col matrices concatenated along the GEMM N
    // axis), so each resident weight panel is streamed once per batch
    // instead of once per item. That single dispatch — like a fused
    // residual fold, which must see every item of its shortcut source —
    // pins a sync point: the layer becomes one barrier task.
    //
    // Tradeoff vs the serial executor: a barrier task runs on ONE pool
    // worker, and worker ExecContexts have no intra-op pool installed (a
    // nested parallel_for from inside a posted task would degrade to an
    // inline serial loop anyway — see ThreadPool), so the whole-batch GEMM
    // that intra-op parallelized across the pool under Serial executes
    // single-worker here. The graph's bet is that cross-batch overlap
    // refills the other workers; for weight-resident-dominant plans with no
    // second batch in flight, --executor=serial restores the pool-wide
    // intra-op dispatch.
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&layer);
    const bool want_batch_fused =
        nb > 1 &&
        (conv != nullptr
             ? engine_->plan().weight_resident_for(conv->desc())
             : (engine_->plan().fc_weight_resident &&
                dynamic_cast<const dnn::ConnectedLayer*>(&layer) != nullptr));

    GraphLayerSpec L;
    L.inputs = layer.input_indices();
    L.out_key = &layer.output();
    L.barrier =
        want_batch_fused || layer.readiness() == dnn::Layer::Readiness::Barrier;
    L.prepare = [lp, ins] { lp->prepare_batch(ins); };
    const std::string algo = algo_of(layer);
    L.run = [this, lp, ins, algo, li, nb, want_batch_fused, slotp](
                int begin, int end, int worker, dnn::LayerRecord& rec) {
      dnn::ExecContext& ctx = *worker_ctxs_[static_cast<std::size_t>(worker)];
      rec.name = lp->name();
      // One batch-fused dispatch covers every item, so it only runs while
      // the batch is fault-free: a failed item would poison the fused
      // output of all the others. With a failure aboard, fall through to
      // the per-item path (bit-identical by the residency contract), which
      // skips poisoned items individually.
      if (want_batch_fused && !any_item_failed(*slotp)) {
        try {
          if (test_item_hook) test_item_hook(li, -1);
          if (lp->forward_batch(ctx, ins)) {
            rec.algo = algo + "+batch";
            rec.items = nb;
            rec.flops = lp->flops() * static_cast<double>(nb);
            return;
          }
          // Layer declined (e.g. packing disabled): per-item fallback.
        } catch (...) {
          // The fused kernel failed with all items in flight: every item of
          // this task fails together (a barrier task spans the full batch).
          fail_items(*slotp, begin, end, std::current_exception());
          rec.algo = algo + "+batch";
          rec.items = 0;
          return;
        }
      }
      rec.algo = algo;
      rec.items = 0;
      for (int b = begin; b < end; ++b) {
        if (item_failed(*slotp, b)) continue;  // poisoned upstream: skip
        try {
          if (cfg_.fault_injector != nullptr)
            cfg_.fault_injector->maybe_fail_item(slotp->id, li, b);
          if (test_item_hook) test_item_hook(li, b);
          lp->forward_item(ctx, ins, b);
        } catch (...) {
          // Isolate: this item fails, its siblings' outputs stay untouched
          // and bit-identical; downstream layers skip it.
          fail_item(*slotp, b, std::current_exception());
          continue;
        }
        rec.items += 1;
        rec.flops += lp->flops();
      }
    };
    spec.layers.push_back(std::move(L));
  }

  spec.final_read_keys = {&net.layer(net.num_layers() - 1).output()};
  spec.on_done = [this, slotp](GraphBatchResult&& res) {
    Slot& s = *slotp;
    s.error = res.error;
    s.result.records = std::move(res.records);
    s.result.exec = res.stats;
    s.result.compute_seconds = res.stats.span_seconds;
    if (!s.error && s.snapshot_output) {
      // The graph's sink still holds the read guard on the output tensor
      // here, so the next batch cannot overwrite it mid-copy.
      try {
        const dnn::Tensor& out = s.net->layer(s.net->num_layers() - 1).output();
        s.result.output.reshape(out.n(), out.c(), out.h(), out.w());
        std::memcpy(s.result.output.data(), out.data(),
                    out.size() * sizeof(float));
      } catch (...) {
        s.error = std::current_exception();
      }
    }
    complete(s);
  };
  return spec;
}

void BatchScheduler::execute_serial(Slot& slot) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  init_item_errors(slot, slot.input->n());
  try {
    dnn::Network& net = *slot.net;
    const dnn::Tensor& input = *slot.input;
    std::vector<dnn::LayerRecord>& records = slot.result.records;

    // Weight transforms happen before any worker runs, so the shared cache
    // is a read-only lookup for the rest of the pass.
    engine_->prepare(net);
    records.clear();
    const auto algo_of = [this](const dnn::Layer& layer) -> std::string {
      const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&layer);
      if (conv == nullptr) return "aux";
      return main_ctx_->conv_label ? main_ctx_->conv_label(conv->desc())
                                   : "im2col+gemm";
    };

    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      dnn::Layer& layer = net.layer(i);
      const int li = static_cast<int>(i);
      std::vector<const dnn::Tensor*> ins;
      for (int idx : layer.input_indices()) {
        if (idx < 0)
          ins.push_back(&input);
        else
          ins.push_back(&net.layer(static_cast<std::size_t>(idx)).output());
      }
      const int nb = layer.prepare_batch(ins);
      const auto l0 = clock::now();

      // Weight-resident layers execute batch-fused (see build_program). On
      // this path the batched call runs on the executor context — whose
      // kernels may intra-op parallelize over the pool — because it is a
      // single kernel invocation, not shardable per item. A layer that
      // declines (e.g. packing disabled) falls through to the per-item
      // paths below.
      const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&layer);
      const bool want_batch_fused =
          nb > 1 &&
          (conv != nullptr
               ? engine_->plan().weight_resident_for(conv->desc())
               : (engine_->plan().fc_weight_resident &&
                  dynamic_cast<const dnn::ConnectedLayer*>(&layer) !=
                      nullptr));
      // Batch-fused only while the batch is fault-free (see build_program);
      // a fused-kernel failure fails every item together.
      if (want_batch_fused && !any_item_failed(slot)) {
        bool fused = false;
        try {
          if (test_item_hook) test_item_hook(li, -1);
          fused = layer.forward_batch(*main_ctx_, ins);
        } catch (...) {
          fail_items(slot, 0, nb, std::current_exception());
          fused = true;  // all items failed: nothing left for per-item
        }
        if (fused) {
          dnn::LayerRecord rec;
          rec.name = layer.name();
          rec.flops = layer.flops() * nb;
          rec.items = nb;
          rec.algo = algo_of(layer) + "+batch";
          rec.wall_seconds =
              std::chrono::duration<double>(clock::now() - l0).count();
          records.push_back(std::move(rec));
          continue;
        }
      }

      if (nb == 1 || pool_.size() == 1) {
        // Too little batch-level work to shard: run on the executor thread,
        // whose context may intra-op parallelize inside GEMM / Winograd.
        int done_items = 0;
        for (int b = 0; b < nb; ++b) {
          if (item_failed(slot, b)) continue;
          try {
            if (cfg_.fault_injector != nullptr)
              cfg_.fault_injector->maybe_fail_item(slot.id, li, b);
            if (test_item_hook) test_item_hook(li, b);
            layer.forward_item(*main_ctx_, ins, b);
          } catch (...) {
            fail_item(slot, b, std::current_exception());
            continue;
          }
          ++done_items;
        }
        dnn::LayerRecord rec;
        rec.name = layer.name();
        rec.flops = layer.flops() * done_items;
        rec.items = done_items;
        rec.algo = algo_of(layer);
        rec.wall_seconds =
            std::chrono::duration<double>(clock::now() - l0).count();
        records.push_back(std::move(rec));
        continue;
      }

      // Shard batch items across the pool; each worker fills its own part
      // record (static chunking makes the per-worker contents
      // deterministic).
      std::vector<std::vector<dnn::LayerRecord>> parts(
          static_cast<std::size_t>(pool_.size()));
      pool_.parallel_for(nb, [&](int b, int w) {
        if (item_failed(slot, b)) return;
        try {
          if (cfg_.fault_injector != nullptr)
            cfg_.fault_injector->maybe_fail_item(slot.id, li, b);
          if (test_item_hook) test_item_hook(li, b);
          layer.forward_item(*worker_ctxs_[static_cast<std::size_t>(w)], ins,
                             b);
        } catch (...) {
          fail_item(slot, b, std::current_exception());
          return;
        }
        auto& mine = parts[static_cast<std::size_t>(w)];
        if (mine.empty()) {
          dnn::LayerRecord rec;
          rec.name = layer.name();
          rec.items = 0;
          mine.push_back(std::move(rec));
        }
        mine.back().items += 1;
        mine.back().flops += layer.flops();
      });
      dnn::LayerRecord rec;
      std::vector<dnn::LayerRecord> merged = dnn::merge_layer_records(parts);
      if (!merged.empty()) rec = std::move(merged.front());
      rec.name = layer.name();
      rec.algo = algo_of(layer);
      // The layer barrier waits for the slowest worker: report the span.
      rec.wall_seconds =
          std::chrono::duration<double>(clock::now() - l0).count();
      records.push_back(std::move(rec));
    }

    if (slot.snapshot_output) {
      const dnn::Tensor& out =
          slot.net->layer(slot.net->num_layers() - 1).output();
      slot.result.output.reshape(out.n(), out.c(), out.h(), out.w());
      std::memcpy(slot.result.output.data(), out.data(),
                  out.size() * sizeof(float));
    }
  } catch (...) {
    slot.error = std::current_exception();
  }

  const double wall = std::chrono::duration<double>(clock::now() - t0).count();
  slot.result.compute_seconds = wall;
  // One execution stream: the batch's span is fully busy on (effectively)
  // one worker-equivalent, so occupancy reads 1/workers.
  slot.result.exec.span_seconds = wall;
  slot.result.exec.busy_seconds = wall;
  slot.result.exec.workers = pool_.size();
  slot.result.exec.tasks = slot.result.records.size();
  complete(slot);
}

}  // namespace vlacnn::runtime

#pragma once

#include <memory>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/network.hpp"
#include "runtime/thread_pool.hpp"

namespace vlacnn::runtime {

struct SchedulerConfig {
  /// Worker count; <= 0 selects the hardware concurrency.
  int threads = 0;
  /// Hardware vector length of the per-worker functional engines.
  unsigned vlen_bits = 512;
  /// Shard the GEMM M-panel / Winograd tile loops across the pool when a
  /// layer has fewer batch items than workers (the batch-1 latency case).
  bool intra_op = true;
};

/// Parallel layer scheduler: runs a batched forward pass of a Network with
/// every core busy.
///
/// Layers execute in topological (definition) order — each may consume
/// earlier outputs via route/shortcut, so layer-level execution stays
/// sequential — but within a layer the batch items are independent and are
/// sharded across the pool. Each worker owns a functional VectorEngine and
/// an ExecContext (its own im2col workspace, packed-GEMM buffers and
/// Winograd scratch, installed by the ConvolutionEngine), so workers never
/// share mutable kernel state; weights and the Winograd weight cache are
/// read-only during the pass (run() calls engine.prepare() first).
///
/// Scheduling is deterministic: items map to workers by a static chunked
/// partition, every worker's arithmetic is bit-identical to the serial
/// batch-1 path, and per-worker LayerRecords are merged in worker-id order
/// (dnn::merge_layer_records).
class BatchScheduler {
 public:
  BatchScheduler(core::ConvolutionEngine& engine,
                 const SchedulerConfig& cfg = {});

  /// Batched forward of `net` on `input` (any batch size N >= 1). Returns
  /// the last layer's batched output. Per-layer stats land in records().
  const dnn::Tensor& run(dnn::Network& net, const dnn::Tensor& input);

  [[nodiscard]] const std::vector<dnn::LayerRecord>& records() const {
    return records_;
  }

  [[nodiscard]] int threads() const { return pool_.size(); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Cumulative bytes moved by every engine this scheduler drives (main +
  /// batch workers; intra-op worker traffic is folded into the main engine
  /// by the GEMM/Winograd kernels). Sample before/after run() to get the
  /// traffic of one batch. Call only between runs.
  [[nodiscard]] std::uint64_t mem_bytes_moved() const;

 private:
  core::ConvolutionEngine* engine_;
  SchedulerConfig cfg_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<dnn::ExecContext>> worker_ctxs_;
  // Driven by the calling thread when a layer's batch is too small to
  // shard; its kernels may intra-op parallelize over the same pool.
  std::unique_ptr<vla::VectorEngine> main_engine_;
  std::unique_ptr<dnn::ExecContext> main_ctx_;
  std::vector<dnn::LayerRecord> records_;
};

}  // namespace vlacnn::runtime

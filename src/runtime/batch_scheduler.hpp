#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/network.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/work_graph.hpp"

namespace vlacnn::runtime {

/// Which executor drives batched forward passes (see BatchScheduler).
enum class ExecutorKind {
  /// One batch at a time; within a batch, a global barrier per layer
  /// (parallel_for sweep). The reference path.
  Serial,
  /// Work-graph execution: (batch, layer, item-chunk) tasks with per-item
  /// readiness and cross-batch overlap. Bit-identical to Serial.
  Graph,
};

struct SchedulerConfig {
  /// Worker count; <= 0 selects the hardware concurrency.
  int threads = 0;
  /// Hardware vector length of the per-worker functional engines.
  unsigned vlen_bits = 512;
  /// Shard the GEMM M-panel / Winograd tile loops across the pool when a
  /// layer has fewer batch items than workers (the batch-1 latency case).
  bool intra_op = true;
  /// Runtime escape hatch: Graph is the default; Serial restores the
  /// pre-work-graph executor (one batch at a time, per-layer barriers).
  ExecutorKind executor = ExecutorKind::Graph;
  /// Deterministic fault source for chaos runs: injected task stalls reach
  /// the work graph, worker-slow faults the pool, item failures the layer
  /// dispatch (where per-item isolation catches them). Must outlive the
  /// scheduler. Null = no injection (production default).
  FaultInjector* fault_injector = nullptr;
  /// Batch watchdog: when > 0, a monitor thread declares the oldest
  /// in-flight graph batch wedged after this many seconds without progress
  /// and cancels it (WorkGraph::cancel_if_wedged) — the batch completes
  /// with BatchCancelled instead of blocking the slot ring forever. 0
  /// disables the watchdog. Graph executor only; the serial path has no
  /// cancellation point.
  double watchdog_timeout_s = 0.0;
  /// Watchdog poll period.
  double watchdog_poll_s = 0.01;
};

/// Handle to a batch accepted by BatchScheduler::submit(). Single-use:
/// redeem exactly once with wait(). Tickets complete in submission order,
/// but may be waited from any thread and in any order (results are buffered
/// in their slot until collected).
struct BatchTicket {
  std::uint64_t id = 0;
};

/// What BatchScheduler::wait() hands back for one batch.
struct BatchResult {
  /// Snapshot of the last layer's batched output, copied out before the
  /// next batch may run — valid independently of anything executed later
  /// on the same network.
  dnn::Tensor output;
  /// Deterministically merged per-layer records of this batch (same
  /// contents records() holds after a synchronous run()).
  std::vector<dnn::LayerRecord> records;
  /// Wall time of the forward pass (first task start to completion under
  /// the graph executor). Excludes the time the batch spent queued in its
  /// admission slot, so callers can separate queue wait from compute.
  double compute_seconds = 0.0;
  /// Worker occupancy and cross-batch overlap counters for this batch.
  ExecStats exec;
  /// Per-item execution errors: empty when every item succeeded; otherwise
  /// size n() with a non-null exception_ptr per failed item. A failed
  /// item's slice of `output` is meaningless; every other item is
  /// bit-identical to a fault-free run (its kernels ran on the same
  /// contexts with the same inputs — failed items are skipped, never
  /// recomputed differently). Batch-level failures (prepare, shape,
  /// watchdog cancellation) surface as a wait() throw instead.
  std::vector<std::exception_ptr> item_errors;
};

/// Parallel layer scheduler: runs batched forward passes of a Network with
/// every core busy.
///
/// Each worker owns a functional VectorEngine and an ExecContext (its own
/// im2col workspace, packed-GEMM buffers and Winograd scratch, installed by
/// the ConvolutionEngine), so workers never share mutable kernel state;
/// weights and the Winograd/packed weight caches are read-only during a
/// pass (every pass calls engine.prepare() first, and the caches themselves
/// are thread-safe for the prepare-during-execution overlap below).
///
/// Under the default Graph executor the pass is decomposed into a work
/// graph (runtime::WorkGraph): per-item layers split into item chunks whose
/// readiness follows the items they consume, so a worker finishing its
/// chunk of layer i starts layer i+1 on those items instead of waiting at a
/// global barrier; layers that pin a sync point — batch-fused
/// weight-resident dispatch and fused residual folds (Layer::readiness())
/// — become single barrier tasks. The kSlots slot ring feeds the same
/// graph, so batch k+1's early layers overlap batch k's late layers on free
/// workers (write-after-read edges on the shared layer tensors keep it
/// sound). The Serial executor (SchedulerConfig::executor) is the
/// reference: one batch at a time, parallel_for per layer.
///
/// Scheduling is deterministic under both executors and they are
/// bit-identical to each other: items map to chunks by the same static
/// partition, every worker's arithmetic depends only on the engine vector
/// length, readiness edges reproduce exactly the data dependences the
/// serial order obeyed, and LayerRecords are merged in canonical chunk
/// order regardless of interleaving.
///
/// Layers the engine's plan marks weight-resident (and FC layers under the
/// plan's fc_weight_resident flag) are dispatched batch-fused: one
/// Layer::forward_batch call covers the whole batch, streaming each
/// pack-once weight panel once per batch instead of once per item —
/// bit-identical to the per-item path, which remains the fallback whenever
/// the layer declines.
///
/// Two ways to drive it:
///  * run(net, input) — synchronous: blocks until the batch finishes and
///    returns the network's output tensor. This is a thin wrapper over the
///    async API below and is bit-identical to it.
///  * submit(net, batch) -> BatchTicket / wait(ticket) -> BatchResult —
///    pipelined: batches execute FIFO while the caller forms/packs the next
///    one. kSlots batches may be in flight; a further submit() blocks until
///    a slot frees — the natural backpressure the serving layer leans on.
///    Under Graph both in-flight batches make progress concurrently; under
///    Serial the overlap is admission/packing vs. execution only.
///
/// submit() and wait() are thread-safe; run() may be freely mixed with
/// them, but the reference it returns (into the Network's last layer) is
/// only stable until the next batch executes on that network.
class BatchScheduler {
 public:
  /// In-flight batch slots: one executing + one admitted (Serial), or two
  /// overlapping in the work graph (Graph).
  static constexpr int kSlots = 2;

  BatchScheduler(core::ConvolutionEngine& engine,
                 const SchedulerConfig& cfg = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Batched forward of `net` on `input` (any batch size N >= 1). Returns
  /// the last layer's batched output. Per-layer stats land in records().
  const dnn::Tensor& run(dnn::Network& net, const dnn::Tensor& input);

  /// Queues a batched forward of `net` on `input` (ownership taken) and
  /// returns immediately once an admission slot is free. Shape errors throw
  /// here, synchronously; execution errors surface from wait().
  BatchTicket submit(dnn::Network& net, dnn::Tensor input);

  /// Blocks until `ticket`'s batch has executed and returns its output
  /// snapshot, records and compute time. Rethrows any execution error.
  /// Each ticket must be waited exactly once.
  BatchResult wait(const BatchTicket& ticket);

  /// Records of the last run() — the synchronous API's accounting surface.
  /// Pipelined batches carry their records in their BatchResult instead.
  [[nodiscard]] const std::vector<dnn::LayerRecord>& records() const {
    return records_;
  }

  /// Atomically swaps the engine's plan at a batch boundary: pauses the
  /// executor from claiming further queued batches, waits for every
  /// in-flight batch to retire (FIFO — the ring drains in order), drains
  /// the work graph, installs `plan` into the engine, recompiles every
  /// worker/main ExecContext against it, then resumes. Queued batches are
  /// never dropped — they simply execute under the new plan; a batch
  /// already executing finishes entirely under the old one (its compiled
  /// dispatch owns the old plan). Safe to call from any thread (the
  /// Replanner's worker calls it off the hot path); callers blocked in
  /// submit()/wait() are unaffected beyond the pause.
  void install_plan(core::BackendPlan plan);

  [[nodiscard]] int threads() const { return pool_.size(); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Batches the watchdog declared wedged and cancelled so far.
  [[nodiscard]] std::uint64_t watchdog_wedges() const {
    return watchdog_wedges_.load(std::memory_order_relaxed);
  }

  /// Cumulative bytes moved by every engine this scheduler drives (main +
  /// batch workers; intra-op worker traffic is folded into the main engine
  /// by the GEMM/Winograd kernels). Sample before/after a batch to get its
  /// traffic. Call only while no batch is in flight.
  [[nodiscard]] std::uint64_t mem_bytes_moved() const;

  /// TEST-ONLY: invoked before every per-item kernel as (layer, item), and
  /// as (layer, -1) before a batch-fused dispatch — on both executors, from
  /// whichever thread runs the work. Tests use it to inject delays (stress
  /// interleavings) or throw (exercise error propagation). Set / clear only
  /// while no batch is in flight.
  std::function<void(int layer, int item)> test_item_hook;

 private:
  struct Slot {
    enum class State { Free, Queued, Running, Done };
    State state = State::Free;
    std::uint64_t id = 0;
    dnn::Network* net = nullptr;
    dnn::Tensor owned_input;             // submit() path: input moved in
    const dnn::Tensor* input = nullptr;  // &owned_input, or run()'s borrow
    bool snapshot_output = true;         // run() skips the output copy
    BatchResult result;
    std::exception_ptr error;
  };

  BatchTicket enqueue(dnn::Network& net, const dnn::Tensor* borrowed,
                      dnn::Tensor owned, bool snapshot_output);
  void executor_loop();
  void execute_serial(Slot& slot);
  void launch_graph(Slot& slot);
  GraphBatchSpec build_program(Slot& slot);
  void complete(Slot& slot);  // release input, mark Done, wake waiters
  void watchdog_loop();

  // Per-item error isolation (guarded by item_mu_: entries are written by
  // whichever worker hits the failure and read by every later layer's
  // skip check).
  void init_item_errors(Slot& slot, int items);
  [[nodiscard]] bool item_failed(Slot& slot, int item);
  [[nodiscard]] bool any_item_failed(Slot& slot);
  void fail_item(Slot& slot, int item, std::exception_ptr e);
  void fail_items(Slot& slot, int begin, int end, std::exception_ptr e);

  core::ConvolutionEngine* engine_;
  SchedulerConfig cfg_;
  ThreadPool pool_;
  // Declared after pool_ so it is destroyed first: the graph drains its
  // posted tasks before the pool's destructor checks for strays.
  std::unique_ptr<WorkGraph> graph_;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<dnn::ExecContext>> worker_ctxs_;
  // Driven by the executor thread on the Serial path (and for batch-1
  // passes, where its kernels intra-op parallelize over the same pool).
  std::unique_ptr<vla::VectorEngine> main_engine_;
  std::unique_ptr<dnn::ExecContext> main_ctx_;
  std::vector<dnn::LayerRecord> records_;

  std::mutex item_mu_;  // guards every Slot::result.item_errors
  std::atomic<std::uint64_t> watchdog_wedges_{0};

  std::mutex mu_;                  // guards slots_ + counters below
  std::condition_variable slot_cv_;  // slot became Free or Done
  std::condition_variable exec_cv_;  // slot became Queued (or stopping)
  Slot slots_[kSlots];
  std::uint64_t next_ticket_ = 1;  // id the next submit() will take
  std::uint64_t next_exec_ = 1;    // id the executor claims next (FIFO)
  bool stopping_ = false;
  bool swap_pending_ = false;  // install_plan() gate: executor claims nothing
  std::uint64_t running_ = 0;  // slots claimed but not yet Done
  std::thread executor_;
  std::condition_variable watchdog_cv_;  // wakes the watchdog on shutdown
  std::thread watchdog_;
};

}  // namespace vlacnn::runtime

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/network.hpp"
#include "runtime/thread_pool.hpp"

namespace vlacnn::runtime {

struct SchedulerConfig {
  /// Worker count; <= 0 selects the hardware concurrency.
  int threads = 0;
  /// Hardware vector length of the per-worker functional engines.
  unsigned vlen_bits = 512;
  /// Shard the GEMM M-panel / Winograd tile loops across the pool when a
  /// layer has fewer batch items than workers (the batch-1 latency case).
  bool intra_op = true;
};

/// Handle to a batch accepted by BatchScheduler::submit(). Single-use:
/// redeem exactly once with wait(). Tickets complete in submission order,
/// but may be waited from any thread and in any order (results are buffered
/// in their slot until collected).
struct BatchTicket {
  std::uint64_t id = 0;
};

/// What BatchScheduler::wait() hands back for one batch.
struct BatchResult {
  /// Snapshot of the last layer's batched output, copied out before the
  /// next batch may run — valid independently of anything executed later
  /// on the same network.
  dnn::Tensor output;
  /// Deterministically merged per-layer records of this batch (same
  /// contents records() holds after a synchronous run()).
  std::vector<dnn::LayerRecord> records;
  /// Wall time of the forward pass on the executor thread. Excludes the
  /// time the batch spent queued in its admission slot, so callers can
  /// separate queue wait from compute.
  double compute_seconds = 0.0;
};

/// Parallel layer scheduler: runs batched forward passes of a Network with
/// every core busy.
///
/// Layers execute in topological (definition) order — each may consume
/// earlier outputs via route/shortcut, so layer-level execution stays
/// sequential — but within a layer the batch items are independent and are
/// sharded across the pool. Each worker owns a functional VectorEngine and
/// an ExecContext (its own im2col workspace, packed-GEMM buffers and
/// Winograd scratch, installed by the ConvolutionEngine), so workers never
/// share mutable kernel state; weights and the Winograd weight cache are
/// read-only during the pass (every pass calls engine.prepare() first).
///
/// Scheduling is deterministic: items map to workers by a static chunked
/// partition, every worker's arithmetic is bit-identical to the serial
/// batch-1 path, and per-worker LayerRecords are merged in worker-id order
/// (dnn::merge_layer_records).
///
/// Layers the engine's plan marks weight-resident (and FC layers under the
/// plan's fc_weight_resident flag) are instead dispatched batch-fused: one
/// Layer::forward_batch call on the executor context covers the whole
/// batch, streaming each pack-once weight panel once per batch instead of
/// once per item — bit-identical to the per-item path, which remains the
/// fallback whenever the layer declines.
///
/// Two ways to drive it:
///  * run(net, input) — synchronous: blocks until the batch finishes and
///    returns the network's output tensor. This is a thin wrapper over the
///    async API below and is bit-identical to it.
///  * submit(net, batch) -> BatchTicket / wait(ticket) -> BatchResult —
///    pipelined: batches execute FIFO on a dedicated executor thread while
///    the caller forms/packs the next one. kSlots batches may be in flight
///    (one executing + one admitted, double buffering); a further submit()
///    blocks until a slot frees — the natural backpressure the serving
///    layer leans on. Forward passes themselves are serialized on the
///    executor (layer outputs live in the Network), so the overlap won is
///    admission/packing vs. execution, and the worker pool flows from the
///    last layer of batch k straight into the first layer of batch k+1
///    without a drain back to the submitting thread.
///
/// submit() and wait() are thread-safe; run() may be freely mixed with
/// them, but the reference it returns (into the Network's last layer) is
/// only stable until the next batch executes on that network.
class BatchScheduler {
 public:
  /// In-flight batch slots: one executing + one admitted.
  static constexpr int kSlots = 2;

  BatchScheduler(core::ConvolutionEngine& engine,
                 const SchedulerConfig& cfg = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Batched forward of `net` on `input` (any batch size N >= 1). Returns
  /// the last layer's batched output. Per-layer stats land in records().
  const dnn::Tensor& run(dnn::Network& net, const dnn::Tensor& input);

  /// Queues a batched forward of `net` on `input` (ownership taken) and
  /// returns immediately once an admission slot is free. Shape errors throw
  /// here, synchronously; execution errors surface from wait().
  BatchTicket submit(dnn::Network& net, dnn::Tensor input);

  /// Blocks until `ticket`'s batch has executed and returns its output
  /// snapshot, records and compute time. Rethrows any execution error.
  /// Each ticket must be waited exactly once.
  BatchResult wait(const BatchTicket& ticket);

  /// Records of the last run() — the synchronous API's accounting surface.
  /// Pipelined batches carry their records in their BatchResult instead.
  [[nodiscard]] const std::vector<dnn::LayerRecord>& records() const {
    return records_;
  }

  [[nodiscard]] int threads() const { return pool_.size(); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Cumulative bytes moved by every engine this scheduler drives (main +
  /// batch workers; intra-op worker traffic is folded into the main engine
  /// by the GEMM/Winograd kernels). Sample before/after a batch to get its
  /// traffic. Call only while no batch is in flight.
  [[nodiscard]] std::uint64_t mem_bytes_moved() const;

 private:
  struct Slot {
    enum class State { Free, Queued, Running, Done };
    State state = State::Free;
    std::uint64_t id = 0;
    dnn::Network* net = nullptr;
    dnn::Tensor owned_input;             // submit() path: input moved in
    const dnn::Tensor* input = nullptr;  // &owned_input, or run()'s borrow
    bool snapshot_output = true;         // run() skips the output copy
    BatchResult result;
    std::exception_ptr error;
  };

  BatchTicket enqueue(dnn::Network& net, const dnn::Tensor* borrowed,
                      dnn::Tensor owned, bool snapshot_output);
  void executor_loop();
  void execute(Slot& slot);

  core::ConvolutionEngine* engine_;
  SchedulerConfig cfg_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;
  std::vector<std::unique_ptr<dnn::ExecContext>> worker_ctxs_;
  // Driven by the executor thread when a layer's batch is too small to
  // shard; its kernels may intra-op parallelize over the same pool.
  std::unique_ptr<vla::VectorEngine> main_engine_;
  std::unique_ptr<dnn::ExecContext> main_ctx_;
  std::vector<dnn::LayerRecord> records_;

  std::mutex mu_;                  // guards slots_ + counters below
  std::condition_variable slot_cv_;  // slot became Free or Done
  std::condition_variable exec_cv_;  // slot became Queued (or stopping)
  Slot slots_[kSlots];
  std::uint64_t next_ticket_ = 1;  // id the next submit() will take
  std::uint64_t next_exec_ = 1;    // id the executor runs next (FIFO)
  bool stopping_ = false;
  std::thread executor_;
};

}  // namespace vlacnn::runtime

#include "runtime/fault_injector.hpp"

#include <chrono>
#include <string>
#include <thread>

namespace vlacnn::runtime {

namespace {

// splitmix64: the standard 64-bit finalizer — full avalanche, so adjacent
// (batch, layer, item) triples decorrelate completely.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::roll(std::uint64_t stream, std::uint64_t a,
                         std::uint64_t b, std::uint64_t c,
                         double prob) const {
  if (prob <= 0) return false;
  std::uint64_t h = mix(plan_.seed ^ mix(stream));
  h = mix(h ^ mix(a));
  h = mix(h ^ mix(b));
  h = mix(h ^ mix(c));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < prob;
}

double FaultInjector::task_stall_ms(std::uint64_t batch_seq, int layer,
                                    int chunk) const {
  return roll(1, batch_seq, static_cast<std::uint64_t>(layer),
              static_cast<std::uint64_t>(chunk), plan_.task_stall_prob)
             ? plan_.task_stall_ms
             : 0.0;
}

bool FaultInjector::fail_item(std::uint64_t batch_seq, int layer,
                              int item) const {
  return roll(2, batch_seq, static_cast<std::uint64_t>(layer),
              static_cast<std::uint64_t>(item), plan_.item_fail_prob);
}

void FaultInjector::maybe_fail_item(std::uint64_t batch_seq, int layer,
                                    int item) {
  if (!fail_item(batch_seq, layer, item)) return;
  item_failures_.fetch_add(1, std::memory_order_relaxed);
  throw FaultInjected("injected item failure (batch " +
                      std::to_string(batch_seq) + ", layer " +
                      std::to_string(layer) + ", item " +
                      std::to_string(item) + ")");
}

void FaultInjector::on_worker_task(int worker) noexcept {
  if (plan_.worker_slow_prob <= 0 || plan_.worker_slow_ms <= 0) return;
  const int w = worker >= 0 && worker < kMaxWorkers ? worker : 0;
  const std::uint64_t seq =
      worker_seq_[static_cast<std::size_t>(w)].fetch_add(
          1, std::memory_order_relaxed);
  if (!roll(3, static_cast<std::uint64_t>(w), seq, 0,
            plan_.worker_slow_prob))
    return;
  worker_slows_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(plan_.worker_slow_ms));
}

void FaultInjector::stall(double ms) noexcept {
  if (ms <= 0) return;
  task_stalls_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats s;
  s.task_stalls = task_stalls_.load(std::memory_order_relaxed);
  s.worker_slows = worker_slows_.load(std::memory_order_relaxed);
  s.item_failures = item_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vlacnn::runtime

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace vlacnn::runtime {

/// What a FaultInjector injects and how often. Probabilities are per
/// decision point; every decision is a pure hash of (seed, ids), so a given
/// seed produces the same fault set regardless of thread interleaving or
/// wall-clock — chaos runs are replayable.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Stall a work-graph task (one (batch, layer, chunk) node) before it
  /// runs: models a descheduled or page-faulting worker. Finite stalls —
  /// the watchdog's cancellation takes effect when the task returns.
  double task_stall_prob = 0.0;
  double task_stall_ms = 0.0;
  /// Slow a ThreadPool worker at task pickup (keyed on (worker, per-worker
  /// sequence) — deterministic per worker, but WHICH task it lands on
  /// depends on scheduling; timing-only chaos, never correctness).
  double worker_slow_prob = 0.0;
  double worker_slow_ms = 0.0;
  /// Throw FaultInjected out of one item's layer forward: models a
  /// poisoned input or transient kernel failure. The scheduler's per-item
  /// isolation turns it into that request's InternalError.
  double item_fail_prob = 0.0;

  /// The one-knob chaos profile the serving tools' --chaos=<seed> wires up.
  static FaultPlan chaos(std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed;
    p.task_stall_prob = 0.02;
    p.task_stall_ms = 20.0;
    p.worker_slow_prob = 0.05;
    p.worker_slow_ms = 2.0;
    p.item_fail_prob = 0.05;
    return p;
  }
};

/// The exception an injected item failure throws.
struct FaultInjected : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Deterministic, seed-driven fault source for the runtime. Decision
/// points hash their stable ids (batch sequence number, layer, chunk/item)
/// against the seed, so the injected fault set is a pure function of the
/// plan — independent of how threads interleave. Thread-safe; hooks are
/// called from pool workers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  /// Milliseconds to stall the (batch_seq, layer, chunk) graph task, 0 for
  /// none. Pure — the WorkGraph sleeps and counts via stall().
  [[nodiscard]] double task_stall_ms(std::uint64_t batch_seq, int layer,
                                     int chunk) const;

  /// True when item `item` of layer `layer` in batch `batch_seq` must fail.
  [[nodiscard]] bool fail_item(std::uint64_t batch_seq, int layer,
                               int item) const;

  /// Throws FaultInjected (and counts it) when fail_item() says so.
  void maybe_fail_item(std::uint64_t batch_seq, int layer, int item);

  /// ThreadPool task-pickup hook: sleeps the worker when its per-worker
  /// decision stream says so. Must not throw (pool tasks are noexcept).
  void on_worker_task(int worker) noexcept;

  /// Sleeps `ms` and counts a task stall (the WorkGraph's stall path).
  void stall(double ms) noexcept;

  struct Stats {
    std::uint64_t task_stalls = 0;
    std::uint64_t worker_slows = 0;
    std::uint64_t item_failures = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] bool roll(std::uint64_t stream, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c,
                          double prob) const;

  static constexpr int kMaxWorkers = 64;
  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kMaxWorkers> worker_seq_{};
  std::atomic<std::uint64_t> task_stalls_{0};
  std::atomic<std::uint64_t> worker_slows_{0};
  std::atomic<std::uint64_t> item_failures_{0};
};

}  // namespace vlacnn::runtime

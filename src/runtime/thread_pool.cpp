#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vlacnn::runtime {

namespace {
// Set while a thread is executing a chunk or a posted task for some pool;
// used to detect nested parallel_for calls (which run inline instead of
// deadlocking).
thread_local const ThreadPool* tls_current_pool = nullptr;
thread_local int tls_current_worker = 0;

// RAII guard for the nested-parallelism TLS.
struct TlsPoolScope {
  TlsPoolScope(const ThreadPool* pool, int worker)
      : prev_pool(tls_current_pool), prev_worker(tls_current_worker) {
    tls_current_pool = pool;
    tls_current_worker = worker;
  }
  ~TlsPoolScope() {
    tls_current_pool = prev_pool;
    tls_current_worker = prev_worker;
  }
  const ThreadPool* prev_pool;
  int prev_worker;
};
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads <= 0 ? hardware_threads() : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Undrained tasks would be silently dropped here; that is always a bug
    // in the owner (runtime::WorkGraph drains before its pool dies).
    if (!tasks_.empty()) std::abort();
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::is_worker_thread() const {
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& t : workers_)
    if (t.get_id() == me) return true;
  return false;
}

void ThreadPool::run_chunk(int worker) {
  // Static contiguous partition of [0, job_n_) over size() workers.
  const int n = job_n_;
  const int t = size();
  const int begin = static_cast<int>(static_cast<long long>(n) * worker / t);
  const int end = static_cast<int>(static_cast<long long>(n) * (worker + 1) / t);
  if (begin >= end) return;
  TlsPoolScope scope(this, worker);
  try {
    for (int i = begin; i < end; ++i) (*job_fn_)(i, worker);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task;
    bool run_job = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen || !tasks_.empty();
      });
      if (generation_ != seen) {
        // parallel_for jobs take priority: their caller blocks synchronously
        // on the full-pool barrier, while posted tasks only queue.
        seen = generation_;
        run_job = true;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else {
        return;  // stop_, with nothing left to run
      }
    }
    if (run_job) {
      run_chunk(id);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    } else {
      {
        TlsPoolScope scope(this, id);
        if (task_start_hook) task_start_hook(id);
        task(id);  // must not throw (see Task)
      }
      std::lock_guard<std::mutex> lock(mu_);
      --tasks_in_flight_;
    }
  }
}

void ThreadPool::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++tasks_in_flight_;
  }
  start_cv_.notify_one();
}

int ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_in_flight_;
}

void ThreadPool::parallel_for(int n,
                              const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  if (tls_current_pool == this) {
    // Nested call from one of our own workers (chunk or posted task): run
    // inline on that worker.
    const int w = tls_current_worker;
    for (int i = 0; i < n; ++i) fn(i, w);
    return;
  }
  // A call from one of this pool's worker threads that is NOT inside a
  // chunk/task (TLS would have routed it inline above) would deadlock below:
  // the job barrier needs every worker, including the caller. Unreachable
  // through the public API; fail loudly instead of hanging.
  VLACNN_REQUIRE(!is_worker_thread(),
                 "parallel_for re-entered from a worker thread of this pool "
                 "outside a chunk/task (would deadlock)");
  if (size() == 1) {
    TlsPoolScope scope(this, 0);
    for (int i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // NOTE: concurrent external callers serialize here — parallel_for offers
  // no cross-caller concurrency (see class comment; overlapping work goes
  // through post()).
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_fn_ = &fn;
    error_ = nullptr;
    pending_ = size();
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace vlacnn::runtime

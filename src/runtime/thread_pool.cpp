#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace vlacnn::runtime {

namespace {
// Set while a thread is executing a chunk for some pool; used to detect
// nested parallel_for calls (which run inline instead of deadlocking).
thread_local const ThreadPool* tls_current_pool = nullptr;
thread_local int tls_current_worker = 0;
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads <= 0 ? hardware_threads() : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunk(int worker) {
  // Static contiguous partition of [0, job_n_) over size() workers.
  const int n = job_n_;
  const int t = size();
  const int begin = static_cast<int>(static_cast<long long>(n) * worker / t);
  const int end = static_cast<int>(static_cast<long long>(n) * (worker + 1) / t);
  if (begin >= end) return;
  const ThreadPool* prev_pool = tls_current_pool;
  const int prev_worker = tls_current_worker;
  tls_current_pool = this;
  tls_current_worker = worker;
  try {
    for (int i = begin; i < end; ++i) (*job_fn_)(i, worker);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  tls_current_pool = prev_pool;
  tls_current_worker = prev_worker;
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_chunk(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int n,
                              const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  if (tls_current_pool == this) {
    // Nested call from one of our own workers: run inline on that worker.
    const int w = tls_current_worker;
    for (int i = 0; i < n; ++i) fn(i, w);
    return;
  }
  if (size() == 1) {
    const ThreadPool* prev_pool = tls_current_pool;
    const int prev_worker = tls_current_worker;
    tls_current_pool = this;
    tls_current_worker = 0;
    try {
      for (int i = 0; i < n; ++i) fn(i, 0);
    } catch (...) {
      tls_current_pool = prev_pool;
      tls_current_worker = prev_worker;
      throw;
    }
    tls_current_pool = prev_pool;
    tls_current_worker = prev_worker;
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_fn_ = &fn;
    error_ = nullptr;
    pending_ = size();
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace vlacnn::runtime

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vlacnn::runtime {

/// Fixed-size worker pool with a static-chunked parallel_for.
///
/// Items [0, n) are partitioned into at most size() contiguous chunks, one
/// per worker, so the item -> worker mapping is a pure function of (n,
/// size()) — results and any per-worker accumulation are deterministic
/// regardless of OS scheduling. The calling thread blocks until every item
/// has run.
///
/// parallel_for() is serialized: concurrent calls from different threads
/// queue on an internal mutex. A call made from inside one of this pool's own
/// workers (nested parallelism, e.g. an intra-op GEMM inside a batch-sharded
/// layer) degrades to an inline serial loop on that worker rather than
/// deadlocking.
class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  [[nodiscard]] static int hardware_threads();

  /// Runs fn(item, worker) for every item in [0, n); `worker` is in
  /// [0, size()). Rethrows the first exception thrown by fn (remaining
  /// chunks still complete).
  void parallel_for(int n, const std::function<void(int item, int worker)>& fn);

 private:
  void worker_loop(int id);
  void run_chunk(int worker);

  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // serializes parallel_for calls

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  int job_n_ = 0;
  const std::function<void(int, int)>* job_fn_ = nullptr;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace vlacnn::runtime

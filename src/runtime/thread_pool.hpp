#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vlacnn::runtime {

/// Fixed-size worker pool with two driving modes:
///
///  * parallel_for — static-chunked data parallelism. Items [0, n) are
///    partitioned into at most size() contiguous chunks, one per worker, so
///    the item -> worker mapping is a pure function of (n, size()) — results
///    and any per-worker accumulation are deterministic regardless of OS
///    scheduling. The calling thread blocks until every item has run.
///
///  * post — task submission (the work-graph executor's mode). Each posted
///    task is picked up by exactly one idle worker and runs to completion on
///    it; tasks are dequeued FIFO. post() never blocks on task execution and
///    the two modes share the workers: a posted task occupies its worker
///    until it returns, which stalls (never corrupts) a concurrent
///    parallel_for until that worker comes back around.
///
/// parallel_for's submission contract: concurrent calls from different
/// EXTERNAL threads are serialized on an internal mutex (`submit_mu_`) — the
/// second caller silently queues until the first job drains. This keeps the
/// generation/pending protocol single-writer, but it means parallel_for
/// provides no concurrency ACROSS callers, only within one call; callers
/// that need overlapping work must use post() instead. A call made from
/// inside one of this pool's own workers (nested parallelism, e.g. an
/// intra-op GEMM inside a batch-sharded layer, or from inside a posted task)
/// degrades to an inline serial loop on that worker rather than
/// deadlocking. A call from a worker thread of this pool that is NOT
/// currently inside a chunk or task (impossible through the public API, but
/// reachable by code that tampers with thread identity) would deadlock on
/// the full-pool barrier, so it throws instead.
class ThreadPool {
 public:
  /// A unit of work for the task-submission mode; `worker` is the id of the
  /// worker executing it, in [0, size()). Tasks must not throw — an escaped
  /// exception terminates the process (error handling belongs to the task's
  /// own scope, see runtime::WorkGraph).
  using Task = std::function<void(int worker)>;

  /// `threads` <= 0 selects the hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  [[nodiscard]] static int hardware_threads();

  /// Runs fn(item, worker) for every item in [0, n); `worker` is in
  /// [0, size()). Rethrows the first exception thrown by fn (remaining
  /// chunks still complete). See the class comment for the serialization
  /// contract of concurrent and nested calls.
  void parallel_for(int n, const std::function<void(int item, int worker)>& fn);

  /// Queues `task` for execution on one worker (thread-safe, non-blocking).
  /// Tasks posted while workers are busy wait FIFO. The caller is
  /// responsible for draining its tasks before the pool is destroyed — the
  /// destructor asserts the queue is empty.
  void post(Task task);

  /// Tasks posted but not yet finished (approximate; for tests).
  [[nodiscard]] int pending_tasks() const;

  /// Fault-injection hook: when set, runs on the worker right before each
  /// POSTED task executes (parallel_for chunks are exempt — they sit on the
  /// synchronous hot path and their caller blocks on the barrier). Must not
  /// throw; intended for timing-only chaos (runtime::FaultInjector's
  /// worker-slow faults). Set it only while no tasks are in flight.
  std::function<void(int worker)> task_start_hook;

 private:
  void worker_loop(int id);
  void run_chunk(int worker);
  [[nodiscard]] bool is_worker_thread() const;

  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // serializes parallel_for calls (see class comment)

  mutable std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  int job_n_ = 0;
  const std::function<void(int, int)>* job_fn_ = nullptr;
  std::exception_ptr error_;
  std::deque<Task> tasks_;      // task-submission mode queue (FIFO)
  int tasks_in_flight_ = 0;     // queued + currently executing tasks
  bool stop_ = false;
};

}  // namespace vlacnn::runtime

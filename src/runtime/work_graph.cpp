#include "runtime/work_graph.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "runtime/fault_injector.hpp"

namespace vlacnn::runtime {

namespace {
// Heap key: (seq, layer, compute-after-prepare, chunk). The sink sorts after
// every real layer of its batch.
struct Key {
  std::uint64_t seq;
  int layer;
  int phase;  // 0 = prepare, 1 = compute/sink
  int chunk;
};

Key key_of(const WorkGraph* /*unused*/, std::uint64_t seq, int layer,
           int phase, int chunk) {
  return Key{seq, layer, phase, chunk};
}

bool key_greater(const Key& a, const Key& b) {
  if (a.seq != b.seq) return a.seq > b.seq;
  if (a.layer != b.layer) return a.layer > b.layer;
  if (a.phase != b.phase) return a.phase > b.phase;
  return a.chunk > b.chunk;
}
}  // namespace

bool WorkGraph::NodeOrder::operator()(const Node* a, const Node* b) const {
  const Key ka = key_of(nullptr, a->batch->seq, a->layer, a->is_prepare ? 0 : 1,
                        a->chunk);
  const Key kb = key_of(nullptr, b->batch->seq, b->layer, b->is_prepare ? 0 : 1,
                        b->chunk);
  return key_greater(ka, kb);  // priority_queue is a max-heap; invert
}

void WorkGraph::launch(GraphBatchSpec&& spec) {
  const int n_layers = static_cast<int>(spec.layers.size());
  VLACNN_REQUIRE(n_layers > 0, "work graph batch has no layers");
  VLACNN_REQUIRE(spec.items >= 1, "work graph batch has no items");
  // Validate the whole spec before touching any shared state: the build
  // below registers out-edges into still-live older batches' nodes as it
  // goes, so a mid-build throw would leave them pointing into the destroyed
  // Batch (the only throw left past this point is std::bad_alloc, which
  // nothing in the runtime recovers from).
  for (int li = 0; li < n_layers; ++li) {
    const GraphLayerSpec& L = spec.layers[static_cast<std::size_t>(li)];
    VLACNN_REQUIRE(L.out_key != nullptr, "graph layer missing out_key");
    VLACNN_REQUIRE(static_cast<bool>(L.run), "graph layer missing run");
    for (int j : L.inputs)
      VLACNN_REQUIRE(j < li, "graph layer inputs must precede it");
  }

  auto batch = std::make_unique<Batch>();
  Batch& b = *batch;
  b.spec = std::move(spec);

  std::vector<Node*> initially_ready;

  std::lock_guard<std::mutex> lock(mu_);
  b.seq = next_seq_++;
  b.launched_at = std::chrono::steady_clock::now();
  b.layer_chunks.resize(static_cast<std::size_t>(n_layers));

  // Adds an ordering edge from every still-incomplete node of an OLDER batch
  // touching `key` (WAR/WAW hazard: this batch is about to rewrite a tensor
  // the older batch still reads or writes). Same-batch ordering is purely
  // structural — edges here would wrongly escalate per-item readiness to a
  // barrier whenever layers share storage (fused shortcuts).
  auto live_deps = [&](const void* key, Node* to) {
    auto it = live_touch_.find(key);
    if (it == live_touch_.end()) return;
    for (Node* from : it->second) {
      if (from->batch->seq == b.seq || from->done) continue;
      from->out.push_back(to);
      ++to->deps;
    }
  };
  auto touch = [&](const void* key, Node* n) {
    live_touch_[key].push_back(n);
    n->touched.push_back(key);
  };

  std::vector<Node*> prep(static_cast<std::size_t>(n_layers), nullptr);
  for (int li = 0; li < n_layers; ++li) {
    const GraphLayerSpec& L = b.spec.layers[static_cast<std::size_t>(li)];

    // Prepare node: reshape/validate before any chunk of this layer runs.
    auto pn = std::make_unique<Node>();
    pn->batch = &b;
    pn->layer = li;
    pn->is_prepare = true;
    for (int j : L.inputs) {
      if (j < 0) continue;  // batch input tensor: private, always ready
      prep[static_cast<std::size_t>(j)]->out.push_back(pn.get());
      ++pn->deps;
    }
    live_deps(L.out_key, pn.get());  // may realloc: older touchers first
    touch(L.out_key, pn.get());
    prep[static_cast<std::size_t>(li)] = pn.get();

    // Compute nodes: one per chunk (or one total for barrier layers).
    const int n_chunks =
        L.barrier ? 1 : std::max(1, std::min(b.spec.chunks, b.spec.items));
    for (int c = 0; c < n_chunks; ++c) {
      auto cn = std::make_unique<Node>();
      cn->batch = &b;
      cn->layer = li;
      cn->chunk = c;
      cn->begin = static_cast<int>(
          static_cast<long long>(b.spec.items) * c / n_chunks);
      cn->end = static_cast<int>(
          static_cast<long long>(b.spec.items) * (c + 1) / n_chunks);
      pn->out.push_back(cn.get());
      ++cn->deps;
      for (int j : L.inputs) {
        if (j < 0) continue;
        for (Node* src : b.layer_chunks[static_cast<std::size_t>(j)]) {
          // Chunk partitions are identical at every per-item layer, so this
          // overlap test links each chunk to exactly its aligned producer
          // chunk; barrier endpoints overlap everything.
          if (src->begin < cn->end && cn->begin < src->end) {
            src->out.push_back(cn.get());
            ++cn->deps;
          }
        }
        touch(b.spec.layers[static_cast<std::size_t>(j)].out_key, cn.get());
      }
      touch(L.out_key, cn.get());
      b.layer_chunks[static_cast<std::size_t>(li)].push_back(cn.get());
      ++b.tasks;
      b.nodes.push_back(std::move(cn));
    }
    b.nodes.push_back(std::move(pn));
  }

  // Sink: runs after every node of the batch; merges records and calls
  // on_done while still holding the final-output read guard.
  b.sink.batch = &b;
  b.sink.layer = std::numeric_limits<int>::max();
  b.sink.is_sink = true;
  for (auto& n : b.nodes) {
    n->out.push_back(&b.sink);
    ++b.sink.deps;
  }
  for (const void* key : b.spec.final_read_keys) {
    live_deps(key, &b.sink);  // e.g. guard against future batches: below
    touch(key, &b.sink);
  }

  // Completion-order chain: the new sink also waits on the youngest live
  // batch's sink, so batches complete (and retire) strictly FIFO even when
  // they share no tensors — two in-flight batches on different Networks
  // build no hazard edges against each other, and without this edge the
  // younger sink could fire first and retire() would pop the wrong batch.
  // A live batch's sink is never `done` while mu_ is held (a sink marks
  // itself done and retires its batch inside one critical section), so
  // this edge is never added to an already-completed sink.
  if (!live_.empty()) {
    live_.back()->sink.out.push_back(&b.sink);
    ++b.sink.deps;
  }

  for (auto& n : b.nodes)
    if (n->deps == 0) initially_ready.push_back(n.get());
  if (b.sink.deps == 0) initially_ready.push_back(&b.sink);

  live_.push_back(std::move(batch));
  for (Node* n : initially_ready) make_ready(n);
}

void WorkGraph::make_ready(Node* n) {
  ready_.push(n);
  pool_->post([this](int worker) { run_token(worker); });
}

void WorkGraph::run_token(int worker) {
  Node* n = nullptr;
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    VLACNN_ASSERT(!ready_.empty(), "work-graph token without a ready node");
    n = ready_.top();
    ready_.pop();
    Batch& b = *n->batch;
    const auto now = std::chrono::steady_clock::now();
    // A task being picked up is progress too: back-to-back long tasks keep
    // refreshing the watchdog at every boundary, so only a single task
    // exceeding the timeout outright (with nothing else starting or
    // finishing) can be declared wedged.
    last_progress_ = now;
    if (!b.started) {
      b.started = true;
      b.first_start = now;
    }
    if (!n->is_prepare && !n->is_sink && !live_.empty() &&
        live_.front()->seq < b.seq) {
      ++b.overlap_task_starts;
      if (n->layer == 0) ++b.overlap_first_layer_starts;
    }
    skip = b.failed;
  }

  Batch& b = *n->batch;
  if (n->is_sink) {
    finish_batch(b);
    std::lock_guard<std::mutex> lock(mu_);
    // The sink can carry out-edges of its own: a younger batch's writer of
    // the final output tensor waits on this sink's read guard. Release them
    // before the batch (and the sink with it) is freed.
    n->done = true;
    for (Node* d : n->out) {
      VLACNN_ASSERT(d->deps > 0, "work-graph dependency underflow");
      if (--d->deps == 0) make_ready(d);
    }
    retire(b);  // frees b — no further use
    return;
  }

  std::exception_ptr err;
  double dur = 0.0;
  if (!skip) {
    if (injector_ != nullptr && !n->is_prepare) {
      // Injected stall: the worker holds this task (and nothing else) for a
      // bounded time — the scenario the watchdog must ride out or, past its
      // timeout, declare wedged.
      const double ms = injector_->task_stall_ms(b.seq, n->layer, n->chunk);
      if (ms > 0) injector_->stall(ms);
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      if (n->is_prepare) {
        if (n->batch->spec.layers[static_cast<std::size_t>(n->layer)].prepare)
          n->batch->spec.layers[static_cast<std::size_t>(n->layer)].prepare();
      } else {
        n->batch->spec.layers[static_cast<std::size_t>(n->layer)].run(
            n->begin, n->end, worker, n->rec);
      }
    } catch (...) {
      err = std::current_exception();
    }
    dur = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    if (!n->is_prepare) n->rec.wall_seconds = dur;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (err && !b.failed) {
    b.failed = true;
    b.error = err;
  }
  if (!n->is_prepare) b.busy_seconds += dur;
  last_progress_ = std::chrono::steady_clock::now();
  n->done = true;
  for (Node* d : n->out) {
    VLACNN_ASSERT(d->deps > 0, "work-graph dependency underflow");
    if (--d->deps == 0) make_ready(d);
  }
}

void WorkGraph::finish_batch(Batch& b) {
  GraphBatchResult res;
  res.stats.workers = pool_->size();
  res.stats.tasks = b.tasks;
  res.stats.busy_seconds = b.busy_seconds;
  res.stats.overlap_task_starts = b.overlap_task_starts;
  res.stats.overlap_first_layer_starts = b.overlap_first_layer_starts;
  if (b.started) {
    res.stats.span_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      b.first_start)
            .count();
  }
  res.error = b.error;
  if (!b.error) {
    // Canonical merge: chunks in chunk order within each layer, layers in
    // program order — identical accounting to the serialized sweep no matter
    // how execution interleaved.
    res.records.reserve(b.layer_chunks.size());
    for (const auto& chunks : b.layer_chunks) {
      dnn::LayerRecord merged = chunks.front()->rec;
      for (std::size_t c = 1; c < chunks.size(); ++c) {
        const dnn::LayerRecord& r = chunks[c]->rec;
        merged.items += r.items;
        merged.flops += r.flops;
        merged.cycles += r.cycles;
        merged.wall_seconds = std::max(merged.wall_seconds, r.wall_seconds);
      }
      res.records.push_back(std::move(merged));
    }
  }
  if (b.spec.on_done) b.spec.on_done(std::move(res));
}

void WorkGraph::retire(Batch& b) {
  // mu_ held. Unregister every key this batch touched.
  for (auto& n : b.nodes) {
    for (const void* key : n->touched) {
      auto it = live_touch_.find(key);
      if (it == live_touch_.end()) continue;
      auto& v = it->second;
      v.erase(std::remove(v.begin(), v.end(), n.get()), v.end());
      if (v.empty()) live_touch_.erase(it);
    }
  }
  for (const void* key : b.sink.touched) {
    auto it = live_touch_.find(key);
    if (it == live_touch_.end()) continue;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), &b.sink), v.end());
    if (v.empty()) live_touch_.erase(it);
  }
  // Batches retire strictly FIFO by construction: launch() chains every new
  // sink onto its predecessor's, so the retiring batch is the oldest live
  // one even when in-flight batches share no tensors.
  VLACNN_ASSERT(!live_.empty() && live_.front().get() == &b,
                "work-graph batches must retire FIFO");
  live_.pop_front();
  if (live_.empty()) drained_cv_.notify_all();
}

void WorkGraph::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return live_.empty(); });
}

int WorkGraph::live_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(live_.size());
}

int WorkGraph::cancel_if_wedged(double timeout_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.empty()) return 0;
  Batch& b = *live_.front();
  if (b.failed) return 0;  // already failing/cancelled; skips are in flight
  auto since = b.launched_at;
  if (last_progress_ > since) since = last_progress_;
  const double idle_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - since)
                            .count();
  if (idle_s < timeout_s) return 0;
  b.failed = true;
  b.error = std::make_exception_ptr(BatchCancelled(
      "watchdog: batch made no progress for " + std::to_string(idle_s) +
      "s (timeout " + std::to_string(timeout_s) + "s)"));
  return 1;
}

}  // namespace vlacnn::runtime

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <vector>

#include "dnn/exec_context.hpp"
#include "runtime/thread_pool.hpp"

namespace vlacnn::runtime {

class FaultInjector;

/// The error a watchdog-cancelled batch completes with: the batch made no
/// progress for the configured timeout, so its remaining tasks were skipped
/// and the whole batch failed. Callers (serve::Server) map it to a typed
/// per-request Cancelled outcome rather than an internal error.
struct BatchCancelled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Execution statistics of one batch under an executor. Under the work-graph
/// executor, `span_seconds` runs from the batch's first task start to its
/// sink completion and `busy_seconds` sums compute-task durations across all
/// workers; the overlap counters prove cross-batch pipelining (tasks of this
/// batch that started while an older batch was still in flight). The serial
/// executor fills span/workers only (busy == span: one execution stream).
struct ExecStats {
  double span_seconds = 0.0;  ///< first task start -> batch completion
  double busy_seconds = 0.0;  ///< summed compute-task time over all workers
  int workers = 0;            ///< pool size the batch ran on
  std::uint64_t tasks = 0;    ///< compute tasks (layer chunks) of the batch
  /// Compute tasks of this batch started while an older batch was still
  /// incomplete — nonzero means the executor overlapped batches.
  std::uint64_t overlap_task_starts = 0;
  /// Same, restricted to layer-0 chunks: batch k+1 entered the network
  /// before batch k left it.
  std::uint64_t overlap_first_layer_starts = 0;

  /// Mean fraction of the pool busy on this batch over its span.
  [[nodiscard]] double occupancy() const {
    if (span_seconds <= 0.0 || workers <= 0) return 0.0;
    const double occ = busy_seconds / (span_seconds * workers);
    return occ < 1.0 ? occ : 1.0;
  }
  /// Complement of occupancy(): worker time idle (or stolen by other
  /// batches) during this batch's span.
  [[nodiscard]] double idle_fraction() const { return 1.0 - occupancy(); }
};

/// One layer of a batch program handed to WorkGraph::launch.
struct GraphLayerSpec {
  /// Single task over all items (batch-fused dispatch / residual fold sync
  /// point) instead of per-item chunks.
  bool barrier = false;
  /// Indices of the layers whose outputs this layer consumes; -1 denotes
  /// the batch input tensor (always ready, private to the batch).
  std::vector<int> inputs;
  /// Identity of the tensor this layer writes — &Layer::output(), which for
  /// a fused-away layer aliases its producer's tensor, so write-after-read
  /// hazards across batches are keyed by the real storage.
  const void* out_key = nullptr;
  /// Reshapes/validates the layer for this batch (dnn prepare_batch). Runs
  /// exactly once, after every input layer's prepare and after every live
  /// reader/writer of out_key from older batches has finished (the reshape
  /// may reallocate the tensor).
  std::function<void()> prepare;
  /// Computes items [begin, end) on `worker`, filling `rec`
  /// (name/algo/items/flops; the graph stamps wall_seconds) for the
  /// canonical chunk-order record merge.
  std::function<void(int begin, int end, int worker, dnn::LayerRecord& rec)>
      run;
};

/// What a completed batch hands to its on_done callback.
struct GraphBatchResult {
  /// Per-layer records, merged over chunks in chunk order — canonical
  /// regardless of execution interleaving (same name/algo/items/flops the
  /// serial executor produces; wall_seconds is the slowest chunk).
  std::vector<dnn::LayerRecord> records;
  ExecStats stats;
  /// First execution error of the batch, or null. On error the remaining
  /// tasks of the batch were skipped and `records` is empty.
  std::exception_ptr error;
};

/// One batch submitted to the graph.
struct GraphBatchSpec {
  int items = 1;   ///< batch size (chunking domain of per-item layers)
  int chunks = 1;  ///< target chunks per per-item layer (the worker count)
  std::vector<GraphLayerSpec> layers;
  /// Tensors on_done reads (the output snapshot): the graph holds the
  /// write-after-read guard on them until on_done returns, so the next
  /// batch cannot overwrite the output while it is being snapshotted.
  std::vector<const void*> final_read_keys;
  /// Invoked once on the completing worker after every task of the batch
  /// finished (or was skipped due to an error). Must not throw.
  std::function<void(GraphBatchResult&&)> on_done;
};

/// Work-graph batch executor: decomposes batched forward passes into
/// (batch, layer, item-chunk) tasks with readiness edges and runs them on a
/// ThreadPool's task-submission mode.
///
/// Per-item readiness — a worker that finishes its chunk of layer i
/// immediately unlocks layer i+1 on exactly the items it completed (chunk
/// partitions are the same static function of (items, chunks) at every
/// layer, so the per-item dependence collapses to aligned chunk -> chunk
/// edges; a barrier layer is a single task depending on every chunk of each
/// input). There is no global per-layer barrier: independent chunks of many
/// layers — and of different batches — run concurrently.
///
/// Cross-batch overlap — launch() may be called again while earlier batches
/// are still executing. The builder adds write-after-read / write-after-
/// write edges against every still-live task touching the same tensor
/// (keyed by tensor identity, so layer outputs living in the shared Network
/// are handed from batch k's readers to batch k+1's writers without copies):
/// batch k+1's early layers start on free workers as soon as batch k's
/// consumers of those tensors are done, overlapping batch k's tail.
///
/// Determinism — outputs are bit-identical to serialized execution because
/// every task runs the same per-item kernels on an equivalent ExecContext,
/// and the edges reproduce exactly the data dependences the serial order
/// obeyed; record merges are in (layer, chunk) order, so accounting is
/// byte-stable regardless of interleaving. Batches complete strictly FIFO:
/// launch() chains the youngest live batch's sink onto the new batch's
/// sink, so completion (and retirement) order is launch order even for
/// batches that share no tensors (e.g. different Networks in flight).
///
/// launch() must be called from one thread at a time (the scheduler's
/// executor thread); completion callbacks run on pool workers.
class WorkGraph {
 public:
  explicit WorkGraph(ThreadPool& pool) : pool_(&pool) {}
  ~WorkGraph() { drain(); }

  WorkGraph(const WorkGraph&) = delete;
  WorkGraph& operator=(const WorkGraph&) = delete;

  /// Admits one batch: builds its task graph (with ordering edges against
  /// every batch still in flight) and starts executing it. Returns
  /// immediately; completion is reported through spec.on_done. The spec is
  /// validated in full before any shared state is touched — on throw
  /// (InvalidArgument), in-flight batches are unaffected and the graph
  /// remains usable.
  void launch(GraphBatchSpec&& spec);

  /// Blocks until every launched batch has completed.
  void drain();

  /// Batches currently in flight (for tests).
  [[nodiscard]] int live_batches() const;

  /// Wires a deterministic fault source: compute tasks consult it for an
  /// injected stall before running. Set while the graph is drained (the
  /// scheduler wires it at construction); the injector must outlive the
  /// graph's batches.
  void set_fault_injector(FaultInjector* inj) { injector_ = inj; }

  /// The watchdog's wedge check: when the OLDEST live batch has made no
  /// progress (no task of ANY batch started or completed — younger batches
  /// overlapping the front one count as progress, since FIFO retirement
  /// gates on the front) for `timeout_s`, marks it failed with
  /// BatchCancelled so its remaining tasks skip and it completes with a
  /// typed error instead of wedging the slot ring forever. Returns 1 when
  /// a batch was declared wedged, else 0.
  /// Cancellation takes effect when the stuck task returns:
  /// a finitely stalled worker (the FaultInjector's model) unwedges; a task
  /// that never returns cannot be reclaimed without killing its thread.
  int cancel_if_wedged(double timeout_s);

 private:
  struct Batch;
  struct Node {
    Batch* batch = nullptr;
    int layer = 0;       // layer index; sink uses INT_MAX
    int chunk = 0;
    int begin = 0, end = 0;  // item range (compute nodes)
    bool is_prepare = false;
    bool is_sink = false;
    int deps = 0;        // unfinished predecessors (guarded by mu_)
    bool done = false;
    std::vector<Node*> out;            // dependents to unlock on completion
    std::vector<const void*> touched;  // keys registered in live_touch_
    dnn::LayerRecord rec;              // compute nodes only
  };
  struct Batch {
    std::uint64_t seq = 0;
    GraphBatchSpec spec;
    std::vector<std::unique_ptr<Node>> nodes;  // prepare + compute nodes
    std::vector<std::vector<Node*>> layer_chunks;  // per layer, chunk order
    Node sink;
    bool failed = false;
    std::exception_ptr error;
    bool started = false;
    std::chrono::steady_clock::time_point launched_at{};
    std::chrono::steady_clock::time_point first_start{};
    double busy_seconds = 0.0;
    std::uint64_t tasks = 0;
    std::uint64_t overlap_task_starts = 0;
    std::uint64_t overlap_first_layer_starts = 0;
  };
  struct NodeOrder {
    // Min-heap on (batch seq, layer, compute-after-prepare, chunk): older
    // batches drain first (tail latency), layers in topological order.
    bool operator()(const Node* a, const Node* b) const;
  };

  void make_ready(Node* n);  // mu_ held: push + post one pool token
  void run_token(int worker);
  void finish_batch(Batch& b);         // sink body (no lock held)
  void retire(Batch& b);               // mu_ held

  ThreadPool* pool_;
  FaultInjector* injector_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  // Last instant any task of any batch completed — the watchdog's liveness
  // signal (guarded by mu_).
  std::chrono::steady_clock::time_point last_progress_{};
  std::uint64_t next_seq_ = 1;
  std::deque<std::unique_ptr<Batch>> live_;  // FIFO by seq
  // Every incomplete node touching (reading or writing) a tensor, keyed by
  // tensor identity — the WAR/WAW edge source for newly launched batches.
  std::map<const void*, std::vector<Node*>> live_touch_;
  std::priority_queue<Node*, std::vector<Node*>, NodeOrder> ready_;
};

}  // namespace vlacnn::runtime

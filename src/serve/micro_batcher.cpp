#include "serve/micro_batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vlacnn::serve {

const char* trigger_name(Trigger t) {
  switch (t) {
    case Trigger::Full:
      return "full";
    case Trigger::MaxWait:
      return "max_wait";
    case Trigger::Deadline:
      return "deadline";
    case Trigger::Drain:
      return "drain";
  }
  return "?";
}

LaunchDecision decide(const BatchPolicy& policy, int queued,
                      Clock::time_point oldest_arrival,
                      Clock::time_point min_deadline, Clock::time_point now) {
  VLACNN_REQUIRE(policy.max_batch >= 1, "max_batch must be >= 1");
  LaunchDecision d;
  if (queued <= 0) return d;  // nothing aboard: nothing to launch
  if (queued >= policy.max_batch) {
    d.launch = true;
    d.trigger = Trigger::Full;
    return d;
  }
  Clock::time_point launch_by = oldest_arrival + policy.max_wait;
  Trigger binding = Trigger::MaxWait;
  if (min_deadline != kNoDeadline) {
    const Clock::time_point deadline_by = min_deadline - policy.deadline_slack;
    if (deadline_by < launch_by) {
      launch_by = deadline_by;
      binding = Trigger::Deadline;
    }
  }
  if (now >= launch_by) {
    d.launch = true;
    d.trigger = binding;
    return d;
  }
  d.trigger = binding;
  d.launch_by = launch_by;
  return d;
}

std::optional<FormedBatch> MicroBatcher::next_batch() {
  FormedBatch fb;
  Clock::time_point min_deadline = kNoDeadline;

  // Boards a freshly popped request unless its deadline has already passed,
  // in which case it is shed on the spot — the check runs at every pop
  // point so stale requests never occupy a batch slot.
  const auto board = [&](InferRequest&& r) {
    if (should_shed(policy_, r.deadline, Clock::now())) {
      if (on_shed) on_shed(std::move(r));
      return false;
    }
    min_deadline = std::min(min_deadline, r.deadline);
    fb.requests.push_back(std::move(r));
    return true;
  };

  // Block for the first live request of the batch, shedding stale ones.
  for (;;) {
    InferRequest first;
    if (!queue_->pop(first)) return std::nullopt;  // closed and drained
    if (board(std::move(first))) break;
  }
  const Clock::time_point oldest = fb.requests.front().arrival;

  for (;;) {
    // Greedy drain first: admit everything already queued (up to
    // max_batch) before consulting the time-based triggers. Otherwise a
    // stale oldest request (waited >= max_wait — routine under backlog,
    // where requests pile up while the previous batch computes) would
    // launch alone and strand a queue full of ready requests, collapsing
    // batches to size 1 exactly in the overload regime micro-batching
    // exists for.
    while (static_cast<int>(fb.requests.size()) < policy_.max_batch) {
      InferRequest ready;
      if (queue_->try_pop(ready) != RequestQueue::PopStatus::Ok) break;
      board(std::move(ready));
    }
    const LaunchDecision d =
        decide(policy_, static_cast<int>(fb.requests.size()), oldest,
               min_deadline, Clock::now());
    if (d.launch) {
      fb.trigger = d.trigger;
      break;
    }
    InferRequest more;
    const RequestQueue::PopStatus st =
        queue_->pop_wait_until(more, d.launch_by);
    if (st == RequestQueue::PopStatus::Ok) {
      board(std::move(more));
      continue;
    }
    if (st == RequestQueue::PopStatus::Closed) {
      // Shutdown drain: ship what's aboard rather than waiting out the
      // launch window.
      fb.trigger = Trigger::Drain;
      break;
    }
    // TimedOut: launch_by passed; the next decide() call launches with the
    // binding trigger.
  }
  fb.formed_at = Clock::now();
  return fb;
}

}  // namespace vlacnn::serve

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "serve/request_queue.hpp"

namespace vlacnn::serve {

/// Why a micro-batch launched.
enum class Trigger {
  Full,      ///< reached max_batch
  MaxWait,   ///< oldest request waited max_wait
  Deadline,  ///< a request's deadline (minus slack) would otherwise be missed
  Drain,     ///< queue closed; final partial batch of the shutdown drain
};

const char* trigger_name(Trigger t);

/// Batch-formation policy.
struct BatchPolicy {
  /// Launch as soon as this many requests are aboard.
  int max_batch = 8;
  /// Launch once the oldest aboard request has waited this long — bounds
  /// the queueing latency a request can accrue to batching.
  Clock::duration max_wait = std::chrono::milliseconds(2);
  /// Compute-time reserve before a deadline: a batch launches no later than
  /// min(deadline aboard) - deadline_slack, even if neither full nor
  /// max_wait-expired. Callers typically set it to an estimate of one
  /// batch's forward-pass time.
  Clock::duration deadline_slack = Clock::duration::zero();
  /// Shed requests whose deadline has already passed at dequeue time
  /// instead of boarding them: a stale request can only be served late, and
  /// under overload every slot it occupies makes the batch behind it later
  /// too. Off restores the old serve-late behavior.
  bool shed_expired = true;
};

/// The pure shed rule: true when `policy` says a request with this deadline
/// must be dropped at dequeue rather than boarded. Stale means the deadline
/// has already passed — a request at exactly its deadline can no longer be
/// served in time, so `now >= deadline` sheds.
inline bool should_shed(const BatchPolicy& policy, Clock::time_point deadline,
                        Clock::time_point now) {
  return policy.shed_expired && deadline != kNoDeadline && now >= deadline;
}

/// decide()'s verdict for the current batch-in-formation.
struct LaunchDecision {
  bool launch = false;
  /// When launch: why. When !launch: which criterion will bind at launch_by.
  Trigger trigger = Trigger::MaxWait;
  /// When !launch: the latest instant to re-evaluate (the batcher sleeps on
  /// the queue until then).
  Clock::time_point launch_by = kNoDeadline;
};

/// The pure batch-launch core — all policy, no clocks or threads, so the
/// formation rules are table-testable with synthetic time points. `queued`
/// counts requests already aboard the forming batch; `oldest_arrival` is
/// the first of them; `min_deadline` is the earliest deadline aboard
/// (kNoDeadline when none carries one).
LaunchDecision decide(const BatchPolicy& policy, int queued,
                      Clock::time_point oldest_arrival,
                      Clock::time_point min_deadline, Clock::time_point now);

/// One launched micro-batch.
struct FormedBatch {
  std::vector<InferRequest> requests;
  Clock::time_point formed_at{};
  Trigger trigger = Trigger::Full;
};

/// Deadline-aware micro-batcher: single consumer of a RequestQueue that
/// groups requests into batches per BatchPolicy. Blocks for the first
/// request of a batch, then keeps admitting until decide() says launch —
/// full, the oldest's max_wait expiring, or an aboard deadline approaching.
/// After the queue closes, remaining requests drain as final batches
/// (Trigger::Drain) before next_batch() returns nullopt.
class MicroBatcher {
 public:
  MicroBatcher(RequestQueue& queue, const BatchPolicy& policy)
      : queue_(&queue), policy_(policy) {}

  /// Forms and returns the next batch; nullopt once the queue is closed and
  /// drained. Single-consumer: call from one thread.
  std::optional<FormedBatch> next_batch();

  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }

  /// Invoked (from the batcher thread) for every request shed at dequeue
  /// because its deadline had already passed. Unset: shed requests are
  /// destroyed silently. The shed check runs at every pop point, so a stale
  /// request never occupies a batch slot; requests already aboard are not
  /// re-checked (their staleness is bounded by the launch window).
  std::function<void(InferRequest&&)> on_shed;

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
};

}  // namespace vlacnn::serve

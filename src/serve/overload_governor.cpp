#include "serve/overload_governor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/backend_plan.hpp"

namespace vlacnn::serve {

double estimate_item_seconds(const core::BackendPlan& plan, double freq_ghz) {
  VLACNN_REQUIRE(freq_ghz > 0, "freq_ghz must be > 0");
  double cycles = 0;
  for (const auto& e : plan.entries) cycles += static_cast<double>(e.cycles);
  return cycles / (freq_ghz * 1e9);
}

namespace {

Clock::duration ms_to_dur(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

OverloadGovernor::OverloadGovernor(GovernorConfig cfg,
                                   std::function<void(int)> on_tier)
    : cfg_(cfg), on_tier_(std::move(on_tier)) {
  VLACNN_REQUIRE(cfg_.target_sojourn_ms > 0, "target_sojourn_ms must be > 0");
  VLACNN_REQUIRE(cfg_.interval_ms > 0, "interval_ms must be > 0");
  VLACNN_REQUIRE(cfg_.ewma_alpha > 0 && cfg_.ewma_alpha <= 1,
                 "ewma_alpha must be in (0, 1]");
  est_item_s_ = cfg_.est_item_seconds;
  stats_.est_item_seconds = est_item_s_;
}

bool OverloadGovernor::above_target(double sojourn_s) const {
  return sojourn_s * 1e3 > cfg_.target_sojourn_ms;
}

// Decides (under mu_) whether the ladder moves; returns the tier to
// broadcast or -1. The on_tier callback is invoked by the caller AFTER
// releasing mu_, so a callback that reads governor stats can't deadlock.
void OverloadGovernor::update_ladder(Clock::time_point now) {
  if (cfg_.max_tier <= 0) return;
  const bool cooldown_ok =
      !moved_ || now - last_tier_move_ >= ms_to_dur(cfg_.cooldown_ms);
  if (!cooldown_ok) return;
  // Overload pressure is EITHER the CoDel dropping state OR an unbroken
  // rejection streak. The second clause matters when the capacity estimate
  // rejects every deadline-carrying arrival as doomed: nothing is admitted,
  // no batch completes, so the dropping state starves — yet degrading to a
  // cheaper tier is precisely what would make those deadlines reachable
  // again.
  const bool pressured =
      (dropping_ &&
       now - overload_since_ >= ms_to_dur(cfg_.degrade_after_ms)) ||
      (seen_reject_ &&
       now - reject_since_ >= ms_to_dur(cfg_.degrade_after_ms));
  if (pressured && stats_.tier < cfg_.max_tier) {
    ++stats_.tier;
    ++stats_.tier_degrades;
    moved_ = true;
    last_tier_move_ = now;
    overload_since_ = now;  // next step down needs its own sustained window
    reject_since_ = now;
    pending_tier_ = stats_.tier;
  } else if (!dropping_ && !seen_reject_ && seen_calm_ && stats_.tier > 0 &&
             now - calm_since_ >= ms_to_dur(cfg_.recover_after_ms)) {
    --stats_.tier;
    ++stats_.tier_recoveries;
    moved_ = true;
    last_tier_move_ = now;
    calm_since_ = now;  // next step up needs its own sustained calm
    pending_tier_ = stats_.tier;
  }
}

void OverloadGovernor::fire_pending_tier() {
  int tier = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tier = pending_tier_;
    pending_tier_ = -1;
  }
  if (tier >= 0 && on_tier_) on_tier_(tier);
}

AdmitVerdict OverloadGovernor::admit(Clock::time_point now,
                                     std::size_t queue_depth,
                                     Clock::time_point deadline) {
  AdmitVerdict v = AdmitVerdict::Admit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Doomed-work check first: with `queue_depth` requests ahead of it, the
    // earliest this request can finish is depth+1 item-services from now.
    // If that already overruns its deadline, queueing it only manufactures
    // a future ShedDeadline — reject with a structured status instead.
    if (v == AdmitVerdict::Admit && cfg_.doom_headroom > 0 &&
        est_item_s_ > 0 && deadline != kNoDeadline) {
      const double wait_s = static_cast<double>(queue_depth + 1) *
                            est_item_s_ * cfg_.doom_headroom;
      if (now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(wait_s)) >
          deadline) {
        ++stats_.rejected_doomed;
        v = AdmitVerdict::RejectDoomed;
      }
    }
    // An empty queue proves the standing queue dissolved: exit dropping at
    // the admission point itself. Without this the controller can wedge —
    // at high rejection pressure nothing is admitted, so no batch ever
    // completes to deliver the below-target sojourn reading that normally
    // ends the dropping state.
    if (dropping_ && queue_depth == 0) {
      dropping_ = false;
      seen_above_ = false;
      if (!seen_calm_) {
        seen_calm_ = true;
        calm_since_ = now;
      }
    }
    // CoDel control law: while the dropping state holds, reject one arrival
    // every interval/sqrt(n) — rejection pressure ramps until the standing
    // queue dissolves.
    if (v == AdmitVerdict::Admit && dropping_ && now >= drop_next_) {
      ++drop_count_;
      drop_next_ =
          std::max(now, drop_next_) +
          ms_to_dur(cfg_.interval_ms / std::sqrt(static_cast<double>(
                                           drop_count_)));
      ++stats_.rejected_overload;
      v = AdmitVerdict::RejectOverload;
    }
    if (v == AdmitVerdict::Admit) {
      ++stats_.admitted;
      seen_reject_ = false;
    } else {
      // Track the unbroken rejection streak for the ladder, and veto calm:
      // a governor that is turning work away is not recovering.
      if (!seen_reject_) {
        seen_reject_ = true;
        reject_since_ = now;
      }
      seen_calm_ = false;
    }
    update_ladder(now);
  }
  fire_pending_tier();
  return v;
}

void OverloadGovernor::observe_batch(Clock::time_point now, double sojourn_s,
                                     int items, double compute_s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items > 0 && compute_s > 0) {
      const double obs = compute_s / items;
      est_item_s_ = est_item_s_ <= 0
                        ? obs
                        : cfg_.ewma_alpha * obs +
                              (1.0 - cfg_.ewma_alpha) * est_item_s_;
      stats_.est_item_seconds = est_item_s_;
    }
    if (!above_target(sojourn_s)) {
      // One below-target reading proves the interval minimum is below
      // target: leave (or never enter) the dropping state.
      seen_above_ = false;
      dropping_ = false;
      if (!seen_calm_) {
        seen_calm_ = true;
        calm_since_ = now;
      }
    } else {
      seen_calm_ = false;
      if (!seen_above_) {
        seen_above_ = true;
        first_above_ = now;
      } else if (!dropping_ &&
                 now - first_above_ >= ms_to_dur(cfg_.interval_ms)) {
        // Sojourn stayed above target for a full interval: a standing
        // queue. Enter dropping; the first rejection fires immediately.
        dropping_ = true;
        ++stats_.drop_intervals;
        drop_count_ = 0;
        drop_next_ = now;
        overload_since_ = now;
      }
    }
    update_ladder(now);
  }
  fire_pending_tier();
}

GovernorStats OverloadGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vlacnn::serve

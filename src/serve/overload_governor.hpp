#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "serve/request_queue.hpp"

namespace vlacnn::core {
struct BackendPlan;
}

namespace vlacnn::serve {

/// OverloadGovernor configuration. Times are milliseconds of the serving
/// Clock; every rule is evaluated against explicit `now` arguments so the
/// whole state machine is table-testable with synthetic time points.
struct GovernorConfig {
  /// CoDel sojourn target: the standing queue delay the governor tolerates.
  /// Sojourn here is the queue wait of the oldest request in each completed
  /// batch — the same signal CoDel reads at dequeue.
  double target_sojourn_ms = 5.0;
  /// CoDel interval: sojourn must stay above target for this long before
  /// the governor enters the dropping state, and the control law spaces
  /// rejections interval/sqrt(n) apart once it has.
  double interval_ms = 100.0;
  /// Seed for the per-item service-time estimate, in seconds. Callers price
  /// it from the CostModel (estimate_item_seconds below); 0 means "learn
  /// from observations only" — doomed-work rejection stays off until the
  /// first batch completes.
  double est_item_seconds = 0.0;
  /// EWMA weight for folding observed per-item compute into the estimate.
  double ewma_alpha = 0.2;
  /// Doomed-work rejection margin: a request is rejected at admission when
  /// queue_depth * est_item_seconds * doom_headroom already overruns its
  /// deadline — it would only be shed at dequeue after wasting a queue
  /// slot. <= 0 disables the doomed check.
  double doom_headroom = 1.0;
  /// Degradation ladder: highest tier the governor may request (0 disables
  /// the ladder even when on_tier is set). Tier 0 is the full-precision
  /// plan; higher tiers are progressively cheaper (bf16, int8/sparse).
  int max_tier = 0;
  /// Sustained overload before stepping down a tier, and sustained calm
  /// before climbing back up. Overload pressure is the dropping state OR an
  /// unbroken rejection streak (see class doc), either held uninterrupted
  /// for degrade_after_ms.
  double degrade_after_ms = 250.0;
  double recover_after_ms = 500.0;
  /// Minimum gap between consecutive tier moves in either direction —
  /// hysteresis so a borderline load can't make the ladder oscillate.
  double cooldown_ms = 250.0;
};

struct GovernorStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;  ///< CoDel control-law rejections
  std::uint64_t rejected_doomed = 0;    ///< predicted to miss their deadline
  std::uint64_t drop_intervals = 0;     ///< times the dropping state engaged
  int tier = 0;                         ///< current degradation tier
  std::uint64_t tier_degrades = 0;
  std::uint64_t tier_recoveries = 0;
  double est_item_seconds = 0.0;  ///< live capacity estimate
};

/// Verdict of OverloadGovernor::admit().
enum class AdmitVerdict {
  Admit,
  RejectOverload,  ///< CoDel: standing queue delay above target
  RejectDoomed,    ///< capacity estimate says the deadline is unreachable
};

/// Adaptive admission control in front of the RequestQueue, plus the driver
/// of the graceful-degradation ladder.
///
/// Admission fuses two signals. (1) A CoDel-style controller on batch
/// sojourn delay: when the *minimum* sojourn observed over a full interval
/// stays above target, a standing queue has formed that batching slack
/// cannot explain, and the governor starts rejecting new arrivals at the
/// classic interval/sqrt(n) cadence until sojourn drops back under target
/// (or the queue empties at an admission point — the dequeue-side signal
/// starves once rejections outpace completions, so an empty queue is the
/// admission-side proof the standing queue dissolved).
/// (2) A CostModel-informed capacity estimate (seeded analytically,
/// corrected online by an EWMA of observed per-item compute): requests
/// whose deadline is already unreachable given the current backlog are
/// rejected up front with a structured status instead of queueing doomed
/// work that dequeue-time shedding would discard anyway.
///
/// The ladder: while overload pressure persists for degrade_after, the
/// governor asks (via on_tier, typically Replanner::request_tier) for the
/// next cheaper plan tier; once sojourn has stayed calm for recover_after
/// (with no rejections in between) it climbs back. Cooldown gates both
/// directions. Pressure is the dropping state OR an unbroken rejection
/// streak: when the capacity estimate rejects every deadline-carrying
/// arrival as doomed, nothing is admitted and no batch completes, so the
/// dropping state starves — yet a cheaper tier is exactly what would make
/// those deadlines reachable, so the streak itself must drive the ladder.
///
/// Thread-safe; admit() is called from producer threads and observe_batch()
/// from the server's completion thread.
class OverloadGovernor {
 public:
  explicit OverloadGovernor(GovernorConfig cfg,
                            std::function<void(int)> on_tier = nullptr);

  /// Admission verdict for a request arriving `now` with `queue_depth`
  /// requests already waiting. `deadline` may be kNoDeadline.
  AdmitVerdict admit(Clock::time_point now, std::size_t queue_depth,
                     Clock::time_point deadline);

  /// Feeds one completed batch back into the controller: `sojourn_s` is the
  /// queue wait of the oldest request aboard, `items` the batch size,
  /// `compute_s` the batch forward-pass time.
  void observe_batch(Clock::time_point now, double sojourn_s, int items,
                     double compute_s);

  [[nodiscard]] GovernorStats stats() const;

 private:
  bool above_target(double sojourn_s) const;
  void update_ladder(Clock::time_point now);
  void fire_pending_tier();

  const GovernorConfig cfg_;
  const std::function<void(int)> on_tier_;
  mutable std::mutex mu_;
  // CoDel controller state.
  bool dropping_ = false;
  Clock::time_point first_above_{};  ///< when sojourn first exceeded target
  bool seen_above_ = false;
  Clock::time_point drop_next_{};
  std::uint64_t drop_count_ = 0;
  // Ladder state.
  Clock::time_point overload_since_{};
  bool seen_reject_ = false;  ///< unbroken rejection streak in progress
  Clock::time_point reject_since_{};
  Clock::time_point calm_since_{};
  bool seen_calm_ = false;
  Clock::time_point last_tier_move_{};
  bool moved_ = false;
  int pending_tier_ = -1;  ///< tier move decided under mu_, fired outside it
  // Capacity estimate.
  double est_item_s_ = 0.0;
  GovernorStats stats_;
};

/// CostModel-informed capacity seed for GovernorConfig::est_item_seconds:
/// the plan's summed per-layer cycle estimates (already per-item — pack
/// cost is amortized over the priced batch) converted to seconds at
/// `freq_ghz`. The absolute scale is the simulated machine's, not the
/// host's; the governor's EWMA corrects it online, so this seed only has
/// to be the right order of magnitude for the doomed-work check to engage
/// before the first completion.
double estimate_item_seconds(const core::BackendPlan& plan, double freq_ghz);

}  // namespace vlacnn::serve

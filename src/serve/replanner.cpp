#include "serve/replanner.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vlacnn::serve {

namespace {

/// Two plans dispatch identically iff every entry routes to the same
/// backend with the same residency (cycles are bookkeeping, not dispatch).
bool same_dispatch(const core::BackendPlan& a, const core::BackendPlan& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const core::PlanEntry& ea = a.entries[i];
    const core::PlanEntry& eb = b.entries[i];
    if (ea.backend != eb.backend || ea.weight_resident != eb.weight_resident)
      return false;
  }
  return true;
}

void tally_wins(const core::BackendPlan& plan,
                std::array<std::uint64_t, core::kBackendCount>& wins) {
  wins.fill(0);
  for (const core::PlanEntry& e : plan.entries)
    ++wins[static_cast<std::size_t>(e.backend)];
}

}  // namespace

std::vector<core::BackendPlan> default_degradation_tiers(
    const core::BackendPlan& base) {
  std::vector<core::BackendPlan> tiers;
  tiers.push_back(base.with_precision(gemm::PackFormat::Bf16));
  tiers.push_back(base.with_precision(gemm::PackFormat::Int8PerChannel));
  return tiers;
}

Replanner::Replanner(runtime::BatchScheduler& sched, dnn::Network& net,
                     core::CostModel model, core::BackendPlan base,
                     ReplannerConfig cfg)
    : sched_(&sched),
      net_(&net),
      model_(std::move(model)),
      cfg_(cfg),
      plan_(base),
      tier0_(std::move(base)) {
  VLACNN_REQUIRE(cfg_.max_batch >= 1, "replanner max_batch must be >= 1");
  VLACNN_REQUIRE(cfg_.window >= 1, "replanner window must be >= 1");
  VLACNN_REQUIRE(cfg_.hysteresis >= 1.0, "hysteresis is a ratio >= 1");
  stats_.current_priced_batch = std::max(1, plan_.priced_batch);
  tally_wins(plan_, stats_.wins);
}

Replanner::~Replanner() { stop(); }

void Replanner::start() {
  VLACNN_REQUIRE(!started_, "replanner already started");
  started_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void Replanner::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Replanner::observe(int batch_items, std::size_t queue_depth) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_.emplace_back(batch_items, queue_depth);
    while (window_.size() > cfg_.window) window_.pop_front();
    ++observed_;
  }
  cv_.notify_one();
}

void Replanner::set_tiers(std::vector<core::BackendPlan> tiers) {
  std::lock_guard<std::mutex> lock(mu_);
  VLACNN_REQUIRE(!started_, "set_tiers must run before start()");
  tiers_ = std::move(tiers);
}

void Replanner::request_tier(int tier) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    requested_tier_ =
        std::clamp(tier, 0, static_cast<int>(tiers_.size()));
  }
  cv_.notify_one();
}

int Replanner::current_tier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_tier_;
}

ReplanStats Replanner::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

core::BackendPlan Replanner::current_plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

int Replanner::effective_batch_locked() const {
  double sum_items = 0.0, sum_depth = 0.0;
  for (const auto& [items, depth] : window_) {
    sum_items += items;
    sum_depth += static_cast<double>(depth);
  }
  const double n = static_cast<double>(window_.size());
  const double mean_items = sum_items / n;
  // Queue depth is only evidence up to what one micro-batch can absorb.
  const double mean_depth =
      std::min(sum_depth / n, static_cast<double>(cfg_.max_batch));
  const double eff = std::max(mean_items, mean_depth);
  return std::clamp(static_cast<int>(std::lround(eff)), 1, cfg_.max_batch);
}

void Replanner::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    int target = 0;
    core::BackendPlan base;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || observed_ > last_seen ||
               requested_tier_ != current_tier_;
      });
      if (stop_) return;
      if (requested_tier_ != current_tier_) {
        // Ladder move beats regime re-ranking: install the requested tier
        // plan as-is. Tier plans are pre-built (with_precision /
        // with_sparsity over the admitted base), never re-ranked — within a
        // tier, dispatch is frozen and outputs stay bit-identical.
        const int tier = requested_tier_;
        core::BackendPlan next = tier == 0 ? tier0_ : tiers_[tier - 1];
        current_tier_ = tier;
        lock.unlock();
        sched_->install_plan(next);
        lock.lock();
        plan_ = std::move(next);
        ++stats_.tier_swaps;
        ++stats_.swaps_applied;
        stats_.current_tier = tier;
        stats_.current_priced_batch = std::max(1, plan_.priced_batch);
        tally_wins(plan_, stats_.wins);
        last_swap_obs_ = observed_;  // cooldown before regime replans resume
        continue;
      }
      last_seen = observed_;
      if (current_tier_ != 0) continue;  // re-ranking frozen while degraded
      if (window_.size() < cfg_.min_batches) continue;
      if (observed_ - last_swap_obs_ < cfg_.cooldown_batches &&
          last_swap_obs_ != 0)
        continue;
      const int eff = effective_batch_locked();
      const int cur = std::max(1, plan_.priced_batch);
      const double shift = eff > cur ? static_cast<double>(eff) / cur
                                     : static_cast<double>(cur) / eff;
      if (shift < cfg_.hysteresis) continue;
      target = eff;
      base = plan_;  // re-rank from the live plan's admitted candidates
    }

    // Analytic re-plan off the hot path — no lock held, no simulator, no
    // accuracy gates, bit-identical pinning on.
    core::SelectorStats sel;
    core::BackendPlan next = core::replan_for_batch(
        *net_, base, model_, target, /*pin_bit_identical=*/true, &sel);
    const bool differs = !same_dispatch(base, next);
    if (differs) {
      // Quiesces in-flight batches and recompiles the contexts; queued
      // batches execute under the new plan, finished ones are untouched.
      sched_->install_plan(next);
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.plans_recomputed;
    stats_.last_plan_compute_us = sel.plan_compute_us;
    stats_.current_priced_batch = target;
    // Adopt the re-priced plan even when dispatch is unchanged: the
    // amortization point moved, and recording it stops the hysteresis
    // check from re-triggering on the same regime every batch.
    plan_ = std::move(next);
    tally_wins(plan_, stats_.wins);
    if (differs) {
      ++stats_.swaps_applied;
      last_swap_obs_ = observed_;
    }
  }
}

}  // namespace vlacnn::serve

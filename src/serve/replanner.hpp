#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cost_model.hpp"
#include "core/selector.hpp"
#include "runtime/batch_scheduler.hpp"

namespace vlacnn::serve {

struct ReplannerConfig {
  /// Ceiling of the effective batch size a plan may be priced for — set it
  /// to the server's BatchPolicy::max_batch (queue depth beyond it cannot
  /// be served in one micro-batch anyway).
  int max_batch = 8;
  /// Sliding window of observed batches the regime estimate averages over.
  std::size_t window = 32;
  /// Minimum regime shift (ratio between the estimated effective batch and
  /// the batch the current plan is priced for, whichever way) before a
  /// re-plan is considered. 2.0 = re-plan only when the amortization point
  /// moved by at least 2× — small wobbles never churn plans.
  double hysteresis = 2.0;
  /// Observations required before the first decision (don't re-plan off a
  /// cold two-sample window).
  std::size_t min_batches = 8;
  /// Observed batches that must pass after a swap before the next one —
  /// the post-swap window reflects the new plan, let it fill first.
  std::size_t cooldown_batches = 8;
};

/// Monotonic counters of the re-planning loop, merged into Server::stats().
struct ReplanStats {
  std::uint64_t plans_recomputed = 0;  ///< analytic re-plans computed
  std::uint64_t swaps_applied = 0;     ///< plans actually installed
  std::uint64_t last_plan_compute_us = 0;  ///< wall µs of the last re-plan
  int current_priced_batch = 0;        ///< batch the live plan is priced for
  int current_tier = 0;                ///< active degradation-ladder tier
  std::uint64_t tier_swaps = 0;        ///< tier plans installed (both ways)
  /// Per-backend layer-entry win counts of the live plan.
  std::array<std::uint64_t, core::kBackendCount> wins{};
};

/// The default graceful-degradation ladder above a full-precision base
/// plan: tier 1 swaps every Gemm6-family route to bf16 resident weights
/// (~2x weight-DRAM cut), tier 2 to int8 per-channel (~4x). Each tier is a
/// complete BackendPlan, so installing one goes through the same quiesce +
/// recompile path as any replan; within a tier the plan is frozen, so
/// outputs stay bit-identical until the governor moves tiers.
std::vector<core::BackendPlan> default_degradation_tiers(
    const core::BackendPlan& base);

/// Online re-planning driver: watches the traffic regime the server
/// actually sees (micro-batch sizes and queue depth, reported by the
/// completion loop via observe()) and, when the effective batch size shifts
/// past the hysteresis threshold, recomputes the plan analytically
/// (core::replan_for_batch over the calibrated CostModel — microseconds,
/// off the hot path on this object's own worker thread) and swaps it into
/// the scheduler at a batch boundary (BatchScheduler::install_plan).
///
/// Re-planning is re-RANKING, not re-admission: only candidates the base
/// plan already admitted under its AccuracyBudget are considered, and with
/// the default bit-identical pinning a swap can only move a layer between
/// backends that produce identical bits (Gemm6 <-> FusedGemm6) or flip its
/// residency/amortization — never change output numerics mid-stream.
class Replanner {
 public:
  /// `sched` and `net` must outlive the replanner. `base` is the currently
  /// installed plan (the one the scheduler's engine was built with);
  /// `model` is a calibrated cost model for the serving machine — e.g.
  /// CostModel::calibrated(...), or calibrate_from(net, base) to fit it
  /// from the base plan's own simulated candidate table for free.
  Replanner(runtime::BatchScheduler& sched, dnn::Network& net,
            core::CostModel model, core::BackendPlan base,
            ReplannerConfig cfg = {});
  ~Replanner();

  Replanner(const Replanner&) = delete;
  Replanner& operator=(const Replanner&) = delete;

  /// Spawns the worker thread. Call once, before the server starts.
  void start();

  /// Joins the worker. Idempotent; called by the destructor.
  void stop();

  /// One finished micro-batch: its item count and the admission-queue depth
  /// at completion time. Cheap (one lock, no planning) — the server's
  /// completion loop calls this inline per batch.
  void observe(int batch_items, std::size_t queue_depth);

  /// Installs the degradation ladder: tiers[i] serves as tier i+1 (tier 0
  /// is the base plan the replanner was built with). Call before start().
  void set_tiers(std::vector<core::BackendPlan> tiers);

  /// Asks the worker to move to `tier` (clamped to the installed ladder).
  /// Thread-safe and cheap — the OverloadGovernor calls this from its
  /// admission/observation path; the actual install_plan happens on the
  /// worker thread at a batch boundary. While a non-zero tier is active,
  /// regime re-ranking is frozen (the tier plan never mutates), so outputs
  /// stay bit-identical within a tier; recovery to tier 0 restores the
  /// original base plan and re-ranking resumes from it.
  void request_tier(int tier);

  [[nodiscard]] int current_tier() const;

  [[nodiscard]] ReplanStats stats() const;

  /// The plan currently installed (for tests and the advisor).
  [[nodiscard]] core::BackendPlan current_plan() const;

 private:
  void worker_loop();
  /// Effective batch the observed regime asks for, clamped to
  /// [1, max_batch]: the larger of the mean served batch and the mean
  /// queue depth (a deep queue means the batcher WILL form bigger batches
  /// as soon as the plan amortizes them better).
  [[nodiscard]] int effective_batch_locked() const;

  runtime::BatchScheduler* sched_;
  dnn::Network* net_;
  core::CostModel model_;
  ReplannerConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  core::BackendPlan plan_;   // the live plan (what the scheduler runs)
  core::BackendPlan tier0_;  // pristine base; reinstalled on recovery
  std::vector<core::BackendPlan> tiers_;  // tiers_[i] = ladder tier i+1
  int requested_tier_ = 0;
  int current_tier_ = 0;
  std::deque<std::pair<int, std::size_t>> window_;  // (items, depth)
  std::uint64_t observed_ = 0;        // total observe() calls
  std::uint64_t last_swap_obs_ = 0;   // observed_ at the last swap
  ReplanStats stats_;
  bool stop_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace vlacnn::serve

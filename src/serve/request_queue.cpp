#include "serve/request_queue.hpp"

#include <algorithm>

namespace vlacnn::serve {

Admit RequestQueue::push(InferRequest req) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Admit::Closed;
  if (q_.size() >= capacity_) {
    if (!block_when_full_) {
      ++stats_.rejected;
      return Admit::Rejected;
    }
    producer_cv_.wait(lock,
                      [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return Admit::Closed;
  }
  if (req.arrival == Clock::time_point{}) req.arrival = Clock::now();
  q_.push_back(std::move(req));
  stats_.peak_depth = std::max(stats_.peak_depth, q_.size());
  ++stats_.accepted;
  lock.unlock();
  consumer_cv_.notify_one();
  return Admit::Accepted;
}

bool RequestQueue::pop(InferRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  consumer_cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained
  out = std::move(q_.front());
  q_.pop_front();
  lock.unlock();
  producer_cv_.notify_one();
  return true;
}

RequestQueue::PopStatus RequestQueue::pop_wait_until(
    InferRequest& out, Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!consumer_cv_.wait_until(lock, deadline,
                               [&] { return closed_ || !q_.empty(); }))
    return PopStatus::TimedOut;
  if (q_.empty()) return PopStatus::Closed;
  out = std::move(q_.front());
  q_.pop_front();
  lock.unlock();
  producer_cv_.notify_one();
  return PopStatus::Ok;
}

RequestQueue::PopStatus RequestQueue::try_pop(InferRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.empty()) return closed_ ? PopStatus::Closed : PopStatus::TimedOut;
  out = std::move(q_.front());
  q_.pop_front();
  lock.unlock();
  producer_cv_.notify_one();
  return PopStatus::Ok;
}

std::vector<InferRequest> RequestQueue::close_and_cancel() {
  std::vector<InferRequest> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cancelled.reserve(q_.size());
    while (!q_.empty()) {
      cancelled.push_back(std::move(q_.front()));
      q_.pop_front();
    }
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
  return cancelled;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

RequestQueue::Stats RequestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vlacnn::serve

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "dnn/tensor.hpp"

namespace vlacnn::serve {

/// Serving-side clock. steady_clock: arrival/deadline arithmetic must be
/// monotonic.
using Clock = std::chrono::steady_clock;

/// "No deadline" sentinel for InferRequest::deadline.
inline constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/// One inference request: a single-image CHW input plus its admission
/// timestamps. Move-only (the tensor owns its storage).
struct InferRequest {
  std::uint64_t id = 0;
  dnn::Tensor input;  ///< batch-1 tensor matching the served network's input
  /// Stamped by RequestQueue::push() at admission when left default, so
  /// queue-wait accounting starts the moment the request entered the
  /// system; tests may pre-set it to inject synthetic arrival processes.
  Clock::time_point arrival{};
  Clock::time_point deadline = kNoDeadline;
};

/// Outcome of offering a request to the admission queue.
enum class Admit {
  Accepted,
  Rejected,          ///< queue full under the reject-on-full policy
  Closed,            ///< queue shut down; no further admissions
  RejectedOverload,  ///< OverloadGovernor turned the request away (Server)
};

/// Terminal status of a request that made it past admission. Every admitted
/// request resolves to exactly one of these, carried on RequestTrace and
/// tallied in ServerStats::outcomes — nothing vanishes silently.
enum class Outcome : std::uint8_t {
  Ok = 0,            ///< served; output delivered
  RejectedOverload,  ///< turned away at admission (governor or full queue)
  ShedDeadline,      ///< dropped at dequeue: deadline already passed
  Cancelled,         ///< shutdown drain or watchdog-cancelled batch
  InternalError,     ///< execution failed for this request
};

inline constexpr std::size_t kOutcomeCount = 5;

inline const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::RejectedOverload: return "rejected_overload";
    case Outcome::ShedDeadline: return "shed_deadline";
    case Outcome::Cancelled: return "cancelled";
    case Outcome::InternalError: return "internal_error";
  }
  return "?";
}

/// Bounded MPSC admission queue with configurable backpressure.
///
/// Producers (any number of client threads) push InferRequests; one
/// consumer — the micro-batcher — pops them. When the queue holds
/// `capacity` requests, push() either rejects immediately
/// (reject-on-full, the load-shedding mode a saturated server wants) or
/// blocks until the consumer drains a slot (block_when_full, the mode a
/// closed-loop client wants).
///
/// Shutdown drains: after close(), producers get Admit::Closed, but the
/// consumer keeps popping until the queue is empty — already-admitted
/// requests are served, never dropped.
class RequestQueue {
 public:
  enum class PopStatus { Ok, TimedOut, Closed };

  RequestQueue(std::size_t capacity, bool block_when_full)
      : capacity_(capacity), block_when_full_(block_when_full) {}

  /// Offers a request; stamps `arrival` if unset. See class comment for the
  /// full/closed behavior.
  Admit push(InferRequest req);

  /// Blocking pop. Returns false only when the queue is closed AND drained.
  bool pop(InferRequest& out);

  /// Pop that gives up at `deadline` (the micro-batcher's launch point).
  PopStatus pop_wait_until(InferRequest& out, Clock::time_point deadline);

  /// Non-blocking pop: Ok with a request, TimedOut when currently empty,
  /// Closed when closed and drained. The micro-batcher's greedy drain.
  PopStatus try_pop(InferRequest& out);

  /// Closes admission; wakes every blocked producer and, once drained, the
  /// consumer. Idempotent.
  void close();

  /// Closes admission AND removes every still-queued request in one atomic
  /// step, returning them so the caller can stamp each with a Cancelled
  /// status. Unlike close() + a drain loop, there is no window in which a
  /// request can sit in a closed queue with no consumer — either the
  /// consumer popped it (and it resolves through the serving path) or it is
  /// returned here. Idempotent; a second call returns an empty vector.
  std::vector<InferRequest> close_and_cancel();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::size_t peak_depth = 0;  ///< high-water mark of the queue depth
  };
  [[nodiscard]] Stats stats() const;

 private:
  const std::size_t capacity_;
  const bool block_when_full_;
  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::deque<InferRequest> q_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace vlacnn::serve

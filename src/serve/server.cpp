#include "serve/server.hpp"

#include <algorithm>
#include <cstring>

#include "serve/overload_governor.hpp"
#include "serve/replanner.hpp"

namespace vlacnn::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Server::Server(runtime::BatchScheduler& sched, dnn::Network& net,
               ServerConfig cfg)
    : sched_(&sched),
      net_(&net),
      cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity, cfg_.block_when_full),
      batcher_(queue_, cfg_.policy) {
  VLACNN_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be >= 1");
  VLACNN_REQUIRE(cfg_.policy.max_batch >= 1, "max_batch must be >= 1");
  // A request the batcher sheds at dequeue (deadline already passed) still
  // resolves: deliver its typed completion from the batcher thread.
  batcher_.on_shed = [this](InferRequest&& r) {
    emit(terminal(r, Outcome::ShedDeadline, Clock::now()));
  };
}

Server::~Server() {
  try {
    stop();
  } catch (...) {
    // A forward-pass failure already surfaced to stop()'s caller or is
    // being abandoned with the server; never throw from the destructor.
  }
}

void Server::start() {
  VLACNN_REQUIRE(!started_, "server already started");
  started_ = true;
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  completion_thread_ = std::thread([this] { completion_loop(); });
}

Admit Server::submit(std::uint64_t id, dnn::Tensor input,
                     Clock::time_point deadline) {
  VLACNN_REQUIRE(input.n() == 1 && input.c() == net_->in_c() &&
                     input.h() == net_->in_h() && input.w() == net_->in_w(),
                 "request input must be a batch-1 tensor of the network's "
                 "input shape");
  if (cfg_.governor != nullptr) {
    const AdmitVerdict v =
        cfg_.governor->admit(Clock::now(), queue_.size(), deadline);
    if (v != AdmitVerdict::Admit) return Admit::RejectedOverload;
  }
  InferRequest req;
  req.id = id;
  req.input = std::move(input);
  req.deadline = deadline;
  return queue_.push(std::move(req));
}

void Server::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!started_) {
    // Never started: no batcher thread exists to drain the queue, but
    // submit() may already have admitted requests. Atomically close and
    // pull them back, resolving each with a Cancelled completion — the
    // "every admitted request gets a typed outcome" contract holds even
    // for a server that was torn down before serving anything.
    std::vector<InferRequest> orphans = queue_.close_and_cancel();
    const Clock::time_point now = Clock::now();
    for (const InferRequest& r : orphans)
      emit(terminal(r, Outcome::Cancelled, now));
    return;
  }
  queue_.close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  if (completion_thread_.joinable()) completion_thread_.join();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

std::vector<Completion> Server::drain_completions() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<Completion> out = std::move(completions_);
  completions_.clear();
  return out;
}

ServerStats Server::stats() const {
  const RequestQueue::Stats qs = queue_.stats();
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.admitted = qs.accepted;
  s.rejected = qs.rejected;
  s.queue_peak_depth = qs.peak_depth;
  if (cfg_.replanner != nullptr) {
    const ReplanStats rs = cfg_.replanner->stats();
    s.plans_recomputed = rs.plans_recomputed;
    s.plan_swaps_applied = rs.swaps_applied;
    s.last_plan_compute_us = rs.last_plan_compute_us;
    s.plan_priced_batch = rs.current_priced_batch;
    s.backend_wins = rs.wins;
    s.tier = rs.current_tier;
  }
  if (cfg_.governor != nullptr) {
    const GovernorStats gs = cfg_.governor->stats();
    s.governor_rejected_overload = gs.rejected_overload;
    s.governor_rejected_doomed = gs.rejected_doomed;
    s.drop_intervals = gs.drop_intervals;
    s.tier = gs.tier;
    s.tier_degrades = gs.tier_degrades;
    s.tier_recoveries = gs.tier_recoveries;
  }
  // Admission rejections never produce a Completion; fold them into the
  // outcome tally here so outcomes sums to every resolved request.
  s.outcomes[static_cast<std::size_t>(Outcome::RejectedOverload)] +=
      qs.rejected + s.governor_rejected_overload + s.governor_rejected_doomed;
  s.watchdog_wedges = sched_->watchdog_wedges();
  return s;
}

Completion Server::terminal(const InferRequest& r, Outcome outcome,
                            Clock::time_point now) const {
  Completion c;
  c.trace.id = r.id;
  c.trace.outcome = outcome;
  c.trace.queue_ms = ms_between(r.arrival, now);
  c.trace.total_ms = c.trace.queue_ms;
  c.trace.batch_items = 0;
  c.trace.deadline_met = r.deadline == kNoDeadline || now <= r.deadline;
  return c;
}

void Server::emit(Completion&& c) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.completed += 1;
    stats_.outcomes[static_cast<std::size_t>(c.trace.outcome)] += 1;
    if (c.trace.outcome == Outcome::Ok && !c.trace.deadline_met)
      ++stats_.deadline_misses;
    if (!cfg_.on_complete) {
      completions_.push_back(std::move(c));
      return;
    }
  }
  cfg_.on_complete(std::move(c));
}

void Server::batcher_loop() {
  while (auto fb = batcher_.next_batch()) {
    const int nb = static_cast<int>(fb->requests.size());
    // Pack the requests into one batched tensor; item order is submission
    // order within the batch, and each item's values are exactly the
    // request's input bytes — per-item kernels make the results
    // independent of how requests were grouped.
    dnn::Tensor batch(nb, net_->in_c(), net_->in_h(), net_->in_w());
    for (int b = 0; b < nb; ++b) {
      InferRequest& r = fb->requests[static_cast<std::size_t>(b)];
      std::memcpy(batch.item_data(b), r.input.data(),
                  batch.item_size() * sizeof(float));
      r.input = dnn::Tensor();  // packed; release the request's copy
    }

    InFlight inf;
    inf.formed_at = fb->formed_at;
    inf.trigger = fb->trigger;
    // Blocks only when both scheduler slots are occupied — the pipeline's
    // own backpressure. While batch k executes, we loop around and form
    // batch k+1.
    inf.ticket = sched_->submit(*net_, std::move(batch));
    inf.submitted_at = Clock::now();
    inf.requests = std::move(fb->requests);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.push_back(std::move(inf));
    }
    inflight_cv_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    batcher_done_ = true;
  }
  inflight_cv_.notify_one();
}

void Server::completion_loop() {
  for (;;) {
    InFlight inf;
    {
      std::unique_lock<std::mutex> lock(inflight_mu_);
      inflight_cv_.wait(lock,
                        [&] { return !inflight_.empty() || batcher_done_; });
      if (inflight_.empty()) return;  // batcher exited and all collected
      inf = std::move(inflight_.front());
      inflight_.pop_front();
    }

    runtime::BatchResult res;
    bool cancelled = false;
    try {
      res = sched_->wait(inf.ticket);
    } catch (const runtime::BatchCancelled&) {
      // The watchdog declared the batch wedged and cancelled it: not an
      // internal fault of the server (no error_ recorded, stop() stays
      // clean) — resolve every rider with a typed Cancelled completion.
      cancelled = true;
    } catch (...) {
      // A failed forward pass: remember the first error (stop() rethrows)
      // and resolve the batch's requests as InternalError — they still
      // complete, just without an output.
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (!error_) error_ = std::current_exception();
      const Clock::time_point now = Clock::now();
      for (const InferRequest& r : inf.requests)
        emit(terminal(r, Outcome::InternalError, now));
      continue;
    }
    if (cancelled) {
      const Clock::time_point now = Clock::now();
      for (const InferRequest& r : inf.requests)
        emit(terminal(r, Outcome::Cancelled, now));
      continue;
    }
    const Clock::time_point done = Clock::now();
    const int nb = static_cast<int>(inf.requests.size());

    // Feed the traffic-regime observer (cheap: one lock + a cv signal;
    // planning itself happens on the replanner's own thread).
    if (cfg_.replanner != nullptr)
      cfg_.replanner->observe(nb, queue_.size());
    // Feed the admission controller: sojourn of the oldest rider is the
    // CoDel signal, per-item compute corrects the capacity estimate.
    if (cfg_.governor != nullptr) {
      double sojourn_s = 0.0;
      for (const InferRequest& r : inf.requests)
        sojourn_s = std::max(
            sojourn_s,
            std::chrono::duration<double>(inf.formed_at - r.arrival).count());
      cfg_.governor->observe_batch(done, sojourn_s, nb, res.compute_seconds);
    }

    std::vector<Completion> local;
    local.reserve(static_cast<std::size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      const InferRequest& r = inf.requests[static_cast<std::size_t>(b)];
      const bool item_failed =
          !res.item_errors.empty() &&
          res.item_errors[static_cast<std::size_t>(b)] != nullptr;
      Completion c;
      c.trace.id = r.id;
      c.trace.outcome = item_failed ? Outcome::InternalError : Outcome::Ok;
      c.trace.queue_ms = ms_between(r.arrival, inf.formed_at);
      c.trace.dispatch_ms = ms_between(inf.formed_at, inf.submitted_at);
      c.trace.compute_ms = res.compute_seconds * 1e3;
      c.trace.total_ms = ms_between(r.arrival, done);
      c.trace.batch_items = nb;
      c.trace.trigger = inf.trigger;
      c.trace.deadline_met = r.deadline == kNoDeadline || done <= r.deadline;
      c.trace.batch_occupancy = res.exec.occupancy();
      c.trace.worker_idle_frac = res.exec.idle_fraction();
      c.trace.batch_overlap_starts = res.exec.overlap_task_starts;
      if (!item_failed) {
        // A failed item's output slice is meaningless (per-item isolation
        // skipped its remaining layers) — deliver an empty tensor instead.
        c.output.reshape(res.output.c(), res.output.h(), res.output.w());
        std::memcpy(c.output.data(), res.output.item_data(b),
                    c.output.size() * sizeof(float));
      }
      local.push_back(std::move(c));
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.completed += static_cast<std::uint64_t>(nb);
      stats_.batches += 1;
      stats_.sum_batch_items += nb;
      stats_.trigger_counts[static_cast<std::size_t>(inf.trigger)] += 1;
      for (const Completion& c : local) {
        stats_.outcomes[static_cast<std::size_t>(c.trace.outcome)] += 1;
        if (c.trace.outcome == Outcome::Ok && !c.trace.deadline_met)
          ++stats_.deadline_misses;
      }
      if (!cfg_.on_complete) {
        for (Completion& c : local) completions_.push_back(std::move(c));
        continue;
      }
    }
    for (Completion& c : local) cfg_.on_complete(std::move(c));
  }
}

}  // namespace vlacnn::serve

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/cost_model.hpp"
#include "runtime/batch_scheduler.hpp"
#include "serve/micro_batcher.hpp"

namespace vlacnn::serve {

class OverloadGovernor;
class Replanner;

/// Per-request latency breakdown, in milliseconds.
struct RequestTrace {
  std::uint64_t id = 0;
  /// Terminal status. Only Ok completions carry a meaningful output; for
  /// every other outcome the Completion's output tensor is empty and the
  /// compute/dispatch fields are zero.
  Outcome outcome = Outcome::Ok;
  double queue_ms = 0.0;     ///< arrival -> micro-batch launched
  double dispatch_ms = 0.0;  ///< batch launched -> accepted by a scheduler
                             ///< slot (packing + slot backpressure)
  double compute_ms = 0.0;   ///< forward pass of the batch it rode in
  double total_ms = 0.0;     ///< arrival -> result delivered
  int batch_items = 1;       ///< size of that micro-batch (0: never batched)
  Trigger trigger = Trigger::Full;
  bool deadline_met = true;
  /// Mean fraction of the pool busy on this request's batch over its span
  /// (runtime::ExecStats::occupancy of the batch it rode in).
  double batch_occupancy = 0.0;
  /// 1 - batch_occupancy: worker time idle (or lent to an overlapping
  /// batch) during the batch's span.
  double worker_idle_frac = 1.0;
  /// Work-graph tasks of this batch that started while an older batch was
  /// still in flight — nonzero means the executor overlapped batches.
  std::uint64_t batch_overlap_starts = 0;
};

/// A finished request: its trace plus its slice of the network output.
struct Completion {
  RequestTrace trace;
  dnn::Tensor output;  ///< batch-1 copy of this request's last-layer output
};

struct ServerConfig {
  BatchPolicy policy;
  std::size_t queue_capacity = 64;
  /// false: reject-on-full (load shedding); true: block the submitter.
  bool block_when_full = false;
  /// Invoked on the completion thread as each request finishes. When unset,
  /// completions accumulate internally; collect with drain_completions().
  std::function<void(Completion&&)> on_complete;
  /// Online re-planning hook (optional; must outlive the server and be
  /// start()ed by the caller). The completion loop reports every finished
  /// micro-batch (size + queue depth) to it, and Server::stats() merges its
  /// counters. The server never blocks on it: planning happens on the
  /// replanner's own thread, plan swaps at scheduler batch boundaries.
  Replanner* replanner = nullptr;
  /// Adaptive admission control + degradation-ladder driver (optional; must
  /// outlive the server). submit() consults it before offering the request
  /// to the queue — a governor rejection returns Admit::RejectedOverload and
  /// the request never occupies a queue slot. The completion loop feeds
  /// every finished batch back into it, and Server::stats() merges its
  /// counters. Wire its on_tier callback to Replanner::request_tier to
  /// close the graceful-degradation loop.
  OverloadGovernor* governor = nullptr;
};

/// Aggregate throughput counters (monotonic over the server's life).
struct ServerStats {
  /// Completions delivered — every terminal outcome except admission
  /// rejections (a rejected request was never copied in, so nothing
  /// completes for it; rejections are tallied in `outcomes` below).
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t deadline_misses = 0;
  double sum_batch_items = 0.0;  ///< avg micro-batch = sum_batch_items/batches
  /// Launches per Trigger (indexed by static_cast<int>(Trigger)) — one
  /// count per batch, not per request.
  std::array<std::uint64_t, 4> trigger_counts{};
  // Admission-side counters (mirrors RequestQueue::Stats).
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::size_t queue_peak_depth = 0;
  // Re-planning counters (zero when no Replanner is wired in; otherwise a
  // snapshot of ReplanStats at the stats() call).
  std::uint64_t plans_recomputed = 0;
  std::uint64_t plan_swaps_applied = 0;
  std::uint64_t last_plan_compute_us = 0;
  int plan_priced_batch = 0;  ///< batch the live plan is priced for
  /// Per-backend layer-entry win counts of the live plan (indexed by
  /// static_cast<std::size_t>(core::Backend)).
  std::array<std::uint64_t, core::kBackendCount> backend_wins{};
  /// Terminal outcome tally, indexed by static_cast<std::size_t>(Outcome).
  /// outcomes[RejectedOverload] merges queue-full rejections with the
  /// governor's CoDel/doomed rejections; the other entries count delivered
  /// Completions. Sum == every request that ever entered submit() and
  /// resolved — nothing vanishes silently.
  std::array<std::uint64_t, kOutcomeCount> outcomes{};
  // Overload-governor counters (zero when no governor is wired in).
  std::uint64_t governor_rejected_overload = 0;
  std::uint64_t governor_rejected_doomed = 0;
  std::uint64_t drop_intervals = 0;
  int tier = 0;  ///< current degradation-ladder tier
  std::uint64_t tier_degrades = 0;
  std::uint64_t tier_recoveries = 0;
  /// Batches the scheduler's watchdog declared wedged and cancelled.
  std::uint64_t watchdog_wedges = 0;
};

/// The async serving runtime: admission queue -> deadline-aware
/// micro-batcher -> pipelined BatchScheduler.
///
/// Three stages run concurrently once start()ed:
///   * client threads push InferRequests through submit() (MPSC queue with
///     backpressure);
///   * the batcher thread forms micro-batches per BatchPolicy, packs them
///     into a batched tensor and hands them to BatchScheduler::submit() —
///     which returns as soon as an admission slot is free, so batch k+1's
///     formation and packing overlap batch k's execution;
///   * the completion thread waits each BatchTicket in FIFO order, slices
///     the output snapshot back into per-request results, stamps the
///     latency breakdown (queue / dispatch / compute) and delivers
///     Completions.
///
/// stop() closes admission, drains everything already accepted, and joins
/// the threads; per-request outputs are bit-identical to running the same
/// inputs through the synchronous BatchScheduler::run() path (pinned by
/// tests/test_serve.cpp).
class Server {
 public:
  /// The scheduler and network must outlive the server; between start()
  /// and stop() the server is their only driver.
  Server(runtime::BatchScheduler& sched, dnn::Network& net,
         ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the batcher + completion threads. Call once.
  void start();

  /// Admits one request (thread-safe). `input` must be a batch-1 tensor of
  /// the network's input shape. Returns the queue's verdict; a Rejected
  /// request was not copied anywhere and never completes.
  Admit submit(std::uint64_t id, dnn::Tensor input,
               Clock::time_point deadline = kNoDeadline);

  /// Closes admission, serves everything already accepted, joins the
  /// pipeline threads, and rethrows the first execution error if any.
  /// On a never-started server, cancels every admitted request with a typed
  /// Cancelled completion instead (nothing vanishes). Idempotent.
  void stop();

  /// Moves out the completions accumulated so far (only meaningful without
  /// an on_complete callback). Thread-safe.
  std::vector<Completion> drain_completions();

  // No raw queue accessor: submit() is the only admission path, so every
  // request passes its shape validation before the batcher memcpy's it.
  [[nodiscard]] ServerStats stats() const;

 private:
  struct InFlight {
    runtime::BatchTicket ticket;
    std::vector<InferRequest> requests;  // inputs released after packing
    Clock::time_point formed_at{};
    Clock::time_point submitted_at{};
    Trigger trigger = Trigger::Full;
  };

  void batcher_loop();
  void completion_loop();
  /// Delivers one out-of-band completion (shed / cancelled / internal
  /// error): updates the outcome counters and routes it to on_complete or
  /// the internal buffer, same as the batch path.
  void emit(Completion&& c);
  /// Builds the empty-output completion for a request that never executed.
  Completion terminal(const InferRequest& r, Outcome outcome,
                      Clock::time_point now) const;

  runtime::BatchScheduler* sched_;
  dnn::Network* net_;
  ServerConfig cfg_;
  RequestQueue queue_;
  MicroBatcher batcher_;

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::deque<InFlight> inflight_;
  bool batcher_done_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::vector<Completion> completions_;
  std::exception_ptr error_;

  std::thread batcher_thread_;
  std::thread completion_thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace vlacnn::serve

#include "sim/address_map.hpp"

#include "common/error.hpp"

namespace vlacnn::sim {

AddressMap& AddressMap::instance() {
  static AddressMap map;
  return map;
}

std::uint64_t AddressMap::register_range(const void* host, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto base = reinterpret_cast<std::uint64_t>(host);
  // Round each allocation to a 4 KiB simulated page so neighbouring buffers
  // never share a cache line in the simulated space.
  const std::uint64_t sim_base = next_base_;
  next_base_ += (bytes + 4095) & ~std::uint64_t{4095};
  next_base_ += 4096;  // guard page
  by_host_base_[base] = Range{base, bytes, sim_base};
  return sim_base;
}

void AddressMap::unregister_range(const void* host) {
  std::lock_guard<std::mutex> lock(mu_);
  by_host_base_.erase(reinterpret_cast<std::uint64_t>(host));
}

std::uint64_t AddressMap::translate(const void* host) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto addr = reinterpret_cast<std::uint64_t>(host);
  // Find the registered range with the greatest base <= addr.
  auto it = by_host_base_.upper_bound(addr);
  if (it != by_host_base_.begin()) {
    --it;
    const Range& r = it->second;
    if (addr >= r.host_base && addr < r.host_base + r.bytes)
      return r.sim_base + (addr - r.host_base);
  }
  // Unregistered pointer: map its 64 B line deterministically by first-seen
  // order into the scratch region.
  const std::uint64_t line = addr >> 6;
  auto [sit, inserted] = scratch_.try_emplace(line, 0);
  if (inserted) {
    sit->second = next_scratch_;
    next_scratch_ += 64;
  }
  return sit->second + (addr & 63);
}

void AddressMap::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  by_host_base_.clear();
  scratch_.clear();
  next_base_ = 0x1000;
  next_scratch_ = 0x4000'0000'0000ULL;
}

std::size_t AddressMap::live_ranges() {
  std::lock_guard<std::mutex> lock(mu_);
  return by_host_base_.size();
}

}  // namespace vlacnn::sim

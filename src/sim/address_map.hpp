#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace vlacnn::sim {

/// Translates host pointers into a stable simulated physical address space.
///
/// Host heap addresses differ across runs (ASLR), which would make cache
/// set-index mapping — and therefore simulated miss rates — nondeterministic.
/// Every simulation-visible buffer registers its range here and is assigned
/// a sequential simulated base address, so cache behaviour is bit-identical
/// across runs given the same allocation order.
///
/// Unregistered pointers (e.g. small stack temporaries used by kernels) are
/// mapped into a dedicated deterministic "scratch" region keyed by their
/// first-seen order, which keeps them from aliasing registered buffers.
class AddressMap {
 public:
  static AddressMap& instance();

  /// Registers [host, host+bytes) and returns the simulated base address.
  std::uint64_t register_range(const void* host, std::uint64_t bytes);

  /// Removes a registration (called from buffer destructors).
  void unregister_range(const void* host);

  /// Translates a host pointer to its simulated address.
  std::uint64_t translate(const void* host);

  /// Drops all registrations and resets the bump allocator. Intended for
  /// test isolation only.
  void reset();

  /// Number of live registered ranges (for tests).
  std::size_t live_ranges();

 private:
  AddressMap() = default;

  struct Range {
    std::uint64_t host_base;
    std::uint64_t bytes;
    std::uint64_t sim_base;
  };

  std::mutex mu_;
  std::map<std::uint64_t, Range> by_host_base_;  // keyed by host base address
  std::map<std::uint64_t, std::uint64_t> scratch_;  // host line -> sim addr
  std::uint64_t next_base_ = 0x1000;            // skip simulated page zero
  std::uint64_t next_scratch_ = 0x4000'0000'0000ULL;
};

/// RAII registration of a host buffer with the global AddressMap.
class RegisteredRange {
 public:
  RegisteredRange() = default;
  RegisteredRange(const void* host, std::uint64_t bytes) : host_(host) {
    if (host != nullptr && bytes != 0)
      AddressMap::instance().register_range(host, bytes);
    else
      host_ = nullptr;
  }
  ~RegisteredRange() {
    if (host_ != nullptr) AddressMap::instance().unregister_range(host_);
  }
  RegisteredRange(const RegisteredRange&) = delete;
  RegisteredRange& operator=(const RegisteredRange&) = delete;
  RegisteredRange(RegisteredRange&& other) noexcept : host_(other.host_) {
    other.host_ = nullptr;
  }
  RegisteredRange& operator=(RegisteredRange&& other) noexcept {
    if (this != &other) {
      if (host_ != nullptr) AddressMap::instance().unregister_range(host_);
      host_ = other.host_;
      other.host_ = nullptr;
    }
    return *this;
  }

 private:
  const void* host_ = nullptr;
};

}  // namespace vlacnn::sim

#include "sim/cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace vlacnn::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheModel::CacheModel(const CacheConfig& cfg) : cfg_(cfg) {
  VLACNN_REQUIRE(is_pow2(cfg.line_bytes), "cache line size must be pow2");
  VLACNN_REQUIRE(cfg.associativity >= 1, "associativity must be >= 1");
  VLACNN_REQUIRE(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.associativity) *
                                   cfg.line_bytes) == 0,
                 "cache size must be a multiple of assoc*line");
  num_sets_ = cfg.num_sets();
  VLACNN_REQUIRE(is_pow2(num_sets_), "number of sets must be pow2");
  line_shift_ = static_cast<unsigned>(std::countr_zero(
      static_cast<std::uint64_t>(cfg.line_bytes)));
  lines_.assign(num_sets_ * cfg.associativity, Line{});
}

std::uint64_t CacheModel::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t CacheModel::tag_of(std::uint64_t addr) const {
  return addr >> line_shift_;  // store the full line number as the tag
}

int CacheModel::find_way(std::uint64_t set, std::uint64_t tag) const {
  const Line* base = &lines_[set * cfg_.associativity];
  for (unsigned w = 0; w < cfg_.associativity; ++w)
    if (base[w].valid && base[w].tag == tag) return static_cast<int>(w);
  return -1;
}

int CacheModel::victim_way(std::uint64_t set) const {
  const Line* base = &lines_[set * cfg_.associativity];
  int victim = 0;
  std::uint64_t oldest = UINT64_MAX;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) return static_cast<int>(w);
    if (base[w].lru_stamp < oldest) {
      oldest = base[w].lru_stamp;
      victim = static_cast<int>(w);
    }
  }
  return victim;
}

AccessResult CacheModel::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.associativity];

  int way = find_way(set, tag);
  if (way >= 0) {
    base[way].lru_stamp = ++stamp_;
    base[way].dirty = base[way].dirty || is_write;
    return AccessResult::Hit;
  }

  ++stats_.misses;
  way = victim_way(set);
  if (base[way].valid) {
    ++stats_.evictions;
    if (base[way].dirty) ++stats_.writebacks;
  }
  base[way] = Line{tag, true, is_write, ++stamp_};
  return AccessResult::Miss;
}

bool CacheModel::prefetch_fill(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.associativity];
  if (find_way(set, tag) >= 0) return false;
  const int way = victim_way(set);
  if (base[way].valid) {
    ++stats_.evictions;
    if (base[way].dirty) ++stats_.writebacks;
  }
  base[way] = Line{tag, true, false, ++stamp_};
  ++stats_.prefetch_fills;
  return true;
}

bool CacheModel::contains(std::uint64_t addr) const {
  return find_way(set_index(addr), tag_of(addr)) >= 0;
}

void CacheModel::reset() {
  for (auto& l : lines_) l = Line{};
  stamp_ = 0;
  stats_.reset();
}

}  // namespace vlacnn::sim

#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"

namespace vlacnn::sim {

/// Outcome of a single cache-line access.
enum class AccessResult { Hit, Miss };

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetch_fills = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  void reset() { *this = CacheStats{}; }
};

/// Set-associative, write-back, write-allocate cache with true-LRU
/// replacement. Simulates tag state only — data always lives in host memory
/// (the functional VLA engine reads/writes host buffers directly).
class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& cfg);

  /// Looks up (and on miss, fills) the line containing `addr`.
  /// `is_write` marks the line dirty; evicted dirty lines count writebacks.
  AccessResult access(std::uint64_t addr, bool is_write);

  /// Inserts the line without counting a demand access (prefetch fill).
  /// Returns true if the line was newly inserted (i.e. it was absent).
  bool prefetch_fill(std::uint64_t addr);

  /// True if the line containing `addr` is currently resident.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Invalidates all lines and clears statistics.
  void reset();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_stamp = 0;  // larger = more recently used
  };

  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const;
  /// Returns way of the line within its set, or -1.
  [[nodiscard]] int find_way(std::uint64_t set, std::uint64_t tag) const;
  /// Returns the victim way in `set` (invalid first, else LRU).
  [[nodiscard]] int victim_way(std::uint64_t set) const;

  CacheConfig cfg_;
  std::uint64_t num_sets_;
  unsigned line_shift_;
  std::vector<Line> lines_;  // num_sets_ * associativity, row-major by set
  std::uint64_t stamp_ = 0;
  CacheStats stats_;
};

}  // namespace vlacnn::sim

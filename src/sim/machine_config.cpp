#include "sim/machine_config.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vlacnn::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

MachineConfig MachineConfig::with_vlen(unsigned bits) const {
  VLACNN_REQUIRE(is_pow2(bits) && bits >= 128 && bits <= max_vlen_bits,
                 "vector length must be a power of two within [128, MVL]");
  MachineConfig c = *this;
  c.vlen_bits = bits;
  return c;
}

MachineConfig MachineConfig::with_l2_size(std::uint64_t bytes) const {
  VLACNN_REQUIRE(bytes >= 64 * 1024, "L2 must be at least 64 KiB");
  MachineConfig c = *this;
  c.l2.size_bytes = bytes;
  c.l2.latency_cycles = l2_latency_for_size(bytes);
  return c;
}

MachineConfig MachineConfig::with_lanes(unsigned n) const {
  VLACNN_REQUIRE(is_pow2(n) && n >= 1 && n <= 64, "lanes must be pow2 in [1,64]");
  MachineConfig c = *this;
  c.lanes = n;
  c.lanes_proportional_to_vl = false;
  return c;
}

unsigned l2_latency_for_size(std::uint64_t size_bytes, L2LatencyModel model) {
  // Paper §III-B: 12 cycles for 1 MB, extrapolated from AMD Zen2 via CACTI.
  constexpr unsigned kBaseLatency = 12;
  constexpr double kBaseMiB = 1.0;
  if (model == L2LatencyModel::kConstant) return kBaseLatency;
  const double mib = static_cast<double>(size_bytes) / (1024.0 * 1024.0);
  if (mib <= kBaseMiB) return kBaseLatency;
  // CACTI-like: +3 cycles per doubling beyond 1 MiB.
  return kBaseLatency + static_cast<unsigned>(3.0 * std::log2(mib / kBaseMiB));
}

MachineConfig rvv_gem5() {
  MachineConfig c;
  c.name = "riscv-vector-gem5";
  c.isa = Isa::RiscvVector;
  c.core = CoreKind::InOrder;
  c.max_vlen_bits = 16384;
  c.vlen_bits = 512;
  c.lanes = 8;
  c.lanes_proportional_to_vl = false;
  c.vector_pipes = 1;
  c.l1 = CacheConfig{64 * 1024, 4, 64, 4};
  c.l2 = CacheConfig{1 * 1024 * 1024, 8, 64, 12};
  c.vector_cache_bytes = 2 * 1024;  // paper §III-A: 2 KB VectorCache buffer
  c.vector_through_l1 = false;      // VPU is connected to the L2 cache
  c.hw_prefetch = false;
  c.sw_prefetch_effective = false;  // RVV has no prefetch instructions
  // Decoupled VPU: every vector instruction pays a dispatch/queue overhead
  // on the vector pipe that only long vectors amortize (the mechanism
  // behind Fig. 6's 2.5x headroom at fixed lane count).
  c.vector_dispatch_cycles = 8.0;
  return c;
}

MachineConfig sve_gem5() {
  MachineConfig c;
  c.name = "arm-sve-gem5";
  c.isa = Isa::ArmSve;
  c.core = CoreKind::InOrder;
  c.max_vlen_bits = 2048;
  c.vlen_bits = 512;
  c.lanes_proportional_to_vl = true;  // gem5's SVE model (paper §VI-D)
  c.vector_pipes = 1;
  c.l1 = CacheConfig{64 * 1024, 4, 64, 4};
  c.l2 = CacheConfig{1 * 1024 * 1024, 8, 64, 12};
  c.vector_cache_bytes = 0;
  c.vector_through_l1 = true;  // SVE vector data is accessed through L1
  c.hw_prefetch = false;
  c.sw_prefetch_effective = false;  // gem5 treats prefetch as no-ops
  // gem5's SVE pipeline re-dispatches each predicated micro-op; a smaller
  // per-instruction overhead than the decoupled RVV unit.
  c.vector_dispatch_cycles = 2.0;
  return c;
}

MachineConfig a64fx() {
  MachineConfig c;
  c.name = "a64fx";
  c.isa = Isa::ArmSve;
  c.core = CoreKind::OutOfOrder;
  c.max_vlen_bits = 512;  // fixed-silicon vector length
  c.vlen_bits = 512;
  c.lanes = 16;           // 512-bit datapath = 16 fp32 lanes
  c.lanes_proportional_to_vl = false;
  // One FMA pipe: 16 lanes x 2 flops x 2 GHz = 64 GFLOP/s, matching the
  // paper's quoted 62.5 GFLOP/s single-core peak (§VI-C). The second SIMD
  // unit serves loads/stores, which the memory port models separately.
  c.vector_pipes = 1;
  c.l1 = CacheConfig{64 * 1024, 4, 256, 5};
  c.l2 = CacheConfig{8 * 1024 * 1024, 16, 256, 40};
  c.vector_cache_bytes = 0;
  c.vector_through_l1 = true;
  c.hw_prefetch = true;
  c.sw_prefetch_effective = true;  // prefetch instructions take effect
  c.dram_latency_cycles = 220;
  c.dram_bytes_per_cycle = 32.0;
  c.startup_base_cycles = 4.0;
  c.startup_per_lane = 0.125;
  c.issue_width = 4;             // A64FX decodes up to 4 instructions/cycle
  c.inflight_window = 48;        // lean OoO: bounded latency hiding
  c.mem_level_parallelism = 8;   // non-blocking caches overlap misses
  c.tlb_entries = 64;            // L1 DTLB; gem5 SE runs translate for free
  c.tlb_miss_cycles = 25;
  return c;
}

}  // namespace vlacnn::sim

#pragma once

#include <cstdint>
#include <string>

namespace vlacnn::sim {

/// Geometry and timing of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 0;
  unsigned associativity = 8;
  unsigned line_bytes = 64;
  unsigned latency_cycles = 4;

  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(associativity) * line_bytes);
  }
};

/// Which vector ISA frontend the machine exposes. This also selects the
/// vector unit's memory path: the RISC-V Vector design under study attaches
/// the VPU to the L2 cache through a small VectorCache buffer, while
/// ARM-SVE vector accesses go through the L1 data cache (paper §III-A).
enum class Isa { RiscvVector, ArmSve };

enum class CoreKind { InOrder, OutOfOrder };

/// Full micro-architectural parameter set for one simulated machine.
/// Field defaults correspond to the paper's RISC-V Vector @ gem5 baseline
/// (Table I); use the presets below for the three studied platforms.
struct MachineConfig {
  std::string name = "riscv-vector-gem5";
  Isa isa = Isa::RiscvVector;
  CoreKind core = CoreKind::InOrder;
  double freq_ghz = 2.0;

  // ---- vector unit ----
  unsigned max_vlen_bits = 16384;  ///< architectural MVL
  unsigned vlen_bits = 512;        ///< configured hardware vector length
  unsigned lanes = 8;              ///< 32-bit elements retired per cycle/pipe
  bool lanes_proportional_to_vl = false;  ///< SVE @ gem5 behaviour
  unsigned vector_pipes = 1;       ///< parallel FMA pipes (A64FX has 2)

  // ---- memory hierarchy ----
  CacheConfig l1{64 * 1024, 4, 64, 4};
  CacheConfig l2{1 * 1024 * 1024, 8, 64, 12};
  unsigned vector_cache_bytes = 2 * 1024;  ///< RVV VPU<->L2 buffer; 0 = none
  bool vector_through_l1 = false;  ///< true for SVE, false for RVV
  bool hw_prefetch = false;        ///< stream prefetcher (A64FX)
  bool sw_prefetch_effective = false;  ///< prefetch intrinsics take effect
  unsigned dram_latency_cycles = 140;
  double dram_bytes_per_cycle = 16.0;

  // ---- pipeline timing knobs ----
  double startup_base_cycles = 6.0;   ///< fixed vector-instruction startup
  double startup_per_lane = 0.5;      ///< extra startup per lane (paper §V)
  double scalar_op_cycles = 1.0;      ///< cost of one scalar bookkeeping op
  double vector_dispatch_cycles = 0.0;  ///< per-instruction vector-pipe
                                        ///< overhead (decoupled VPU dispatch)
  unsigned issue_width = 1;           ///< instructions decoded per cycle
  unsigned inflight_window = 8;       ///< max overlapped vector instructions
  unsigned mem_level_parallelism = 1; ///< outstanding misses overlapped

  // ---- TLB (real silicon only; gem5 SE-mode translation is free) ----
  unsigned tlb_entries = 0;           ///< 0 disables TLB modelling
  unsigned tlb_miss_cycles = 25;      ///< page-walk penalty

  /// Elements of `elem_bits` held by one vector register at the configured VL.
  [[nodiscard]] unsigned elements_per_vreg(unsigned elem_bits = 32) const {
    return vlen_bits / elem_bits;
  }

  /// Effective lane count (SVE @ gem5 scales lanes with VL, paper §VI-D).
  [[nodiscard]] unsigned effective_lanes() const {
    if (lanes_proportional_to_vl) return vlen_bits / 128u;
    return lanes;
  }

  /// Peak FP32 FLOP/s of one core (2 flops per FMA lane per pipe).
  [[nodiscard]] double peak_gflops() const {
    return 2.0 * effective_lanes() * vector_pipes * freq_ghz;
  }

  /// Returns a copy with a different configured vector length.
  [[nodiscard]] MachineConfig with_vlen(unsigned bits) const;
  /// Returns a copy with a different L2 capacity (latency per latency model).
  [[nodiscard]] MachineConfig with_l2_size(std::uint64_t bytes) const;
  /// Returns a copy with a different lane count.
  [[nodiscard]] MachineConfig with_lanes(unsigned n) const;
};

/// L2 latency as a function of capacity. The paper extrapolates AMD Zen2's
/// 12-cycle L2 with CACTI and reports that its co-design conclusions assume
/// the latency "remains low"; `kConstant` reproduces that assumption while
/// `kCactiLike` grows latency ~logarithmically for ablations.
enum class L2LatencyModel { kConstant, kCactiLike };

unsigned l2_latency_for_size(std::uint64_t size_bytes,
                             L2LatencyModel model = L2LatencyModel::kConstant);

/// Paper Table I presets.
MachineConfig rvv_gem5();    ///< RISC-V Vector @ gem5 (in-order, VPU on L2)
MachineConfig sve_gem5();    ///< ARM-SVE @ gem5 (in-order, vector via L1)
MachineConfig a64fx();       ///< Fujitsu A64FX (OoO, HW prefetch, 512-bit)

}  // namespace vlacnn::sim

#include "sim/memory_system.hpp"

#include "common/error.hpp"

namespace vlacnn::sim {

namespace {
CacheConfig vector_cache_config(const MachineConfig& cfg) {
  // Small fully associative staging buffer between the VPU and L2.
  CacheConfig vc;
  vc.size_bytes = cfg.vector_cache_bytes;
  vc.line_bytes = cfg.l2.line_bytes;
  vc.associativity = static_cast<unsigned>(vc.size_bytes / vc.line_bytes);
  vc.latency_cycles = 2;
  return vc;
}
}  // namespace

MemorySystem::MemorySystem(const MachineConfig& cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2) {
  if (cfg.isa == Isa::RiscvVector && cfg.vector_cache_bytes > 0)
    vcache_ = std::make_unique<CacheModel>(vector_cache_config(cfg));
  if (cfg.hw_prefetch)
    prefetcher_ = std::make_unique<StreamPrefetcher>(cfg.l2.line_bytes);
}

std::uint64_t MemorySystem::tlb_lookup(std::uint64_t addr) {
  if (cfg_.tlb_entries == 0) return 0;
  const std::uint64_t page = addr >> 12;
  ++tlb_tick_;
  for (auto& entry : tlb_) {
    if (entry.first == page) {
      entry.second = tlb_tick_;
      return 0;
    }
  }
  ++tlb_misses_;
  if (tlb_.size() < cfg_.tlb_entries) {
    tlb_.emplace_back(page, tlb_tick_);
  } else {
    auto lru = tlb_.begin();
    for (auto it = tlb_.begin(); it != tlb_.end(); ++it)
      if (it->second < lru->second) lru = it;
    *lru = {page, tlb_tick_};
  }
  return cfg_.tlb_miss_cycles;
}

MemCost MemorySystem::touch_l2_line(std::uint64_t addr, bool write) {
  // Note: `lines` stays 0 — this is the same line the upstream level
  // already counted, not additional traffic.
  MemCost cost;
  if (l2_.access(addr, write) == AccessResult::Hit) {
    cost.overlappable_cycles = cfg_.l2.latency_cycles;
  } else {
    cost.overlappable_cycles = cfg_.l2.latency_cycles + cfg_.dram_latency_cycles;
    cost.dram_lines = 1;
    ++dram_lines_;
    if (!watches_.empty()) {
      for (const auto& [base, end] : watches_) {
        if (addr >= base && addr < end) {
          ++watched_dram_lines_;
          break;
        }
      }
    }
  }
  return cost;
}

void MemorySystem::add_dram_watch(std::uint64_t sim_base,
                                  std::uint64_t bytes) {
  if (bytes == 0) return;
  watches_.emplace_back(sim_base, sim_base + bytes);
}

void MemorySystem::clear_dram_watches() {
  watches_.clear();
  watched_dram_lines_ = 0;
}

MemCost MemorySystem::touch_vector_line(std::uint64_t addr, bool write) {
  MemCost cost;
  cost.lines = 1;
  if (vcache_) {
    // RVV path: VectorCache -> L2 -> DRAM. L1 is bypassed entirely.
    if (vcache_->access(addr, write) == AccessResult::Hit) {
      cost.serial_cycles = vcache_->config().latency_cycles;
      return cost;
    }
    cost.serial_cycles = vcache_->config().latency_cycles;
    cost += touch_l2_line(addr, write);
    return cost;
  }
  // SVE path: L1 -> L2 -> DRAM.
  if (prefetcher_) prefetcher_->observe(addr, l1_);
  if (l1_.access(addr, write) == AccessResult::Hit) {
    cost.serial_cycles = cfg_.l1.latency_cycles;
    return cost;
  }
  cost.serial_cycles = cfg_.l1.latency_cycles;
  MemCost below = touch_l2_line(addr, write);
  if (prefetcher_ && below.dram_lines > 0) {
    // A64FX also trains its L2 prefetch engine on L2 misses.
    prefetcher_->observe(addr, l2_);
  }
  cost += below;
  return cost;
}

MemCost MemorySystem::vector_access(std::uint64_t addr, std::uint64_t bytes,
                                    bool write) {
  VLACNN_REQUIRE(bytes > 0, "zero-byte access");
  const unsigned line = vcache_ ? cfg_.l2.line_bytes : cfg_.l1.line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  MemCost total;
  for (std::uint64_t ln = first; ln <= last; ++ln)
    total += touch_vector_line(ln * line, write);
  // Contiguous lines stream out of the entry-level cache at one line per
  // cycle after the first; the per-line entry latencies accumulated above
  // over-count that pipelining, so rebase the serial part.
  const unsigned entry_lat = vcache_ ? vcache_->config().latency_cycles
                                     : cfg_.l1.latency_cycles;
  total.serial_cycles = entry_lat + (total.lines - 1);
  // Address translation: one lookup per page touched.
  for (std::uint64_t page = addr >> 12; page <= (addr + bytes - 1) >> 12; ++page)
    total.translation_cycles += tlb_lookup(page << 12);
  return total;
}

MemCost MemorySystem::vector_access_strided(std::uint64_t base,
                                            std::int64_t stride_bytes,
                                            std::uint64_t elem_bytes,
                                            std::uint64_t n, bool write) {
  // Gather/scatter and strided traffic: each element is an independent
  // line touch. Elements pipeline at one per cycle through the address
  // generator (the occupancy model charges that), so the serial portion is
  // one entry latency plus a cycle per extra line — what makes these
  // accesses expensive is the per-element line/TLB traffic and the
  // occupancy, not an unpipelined entry latency.
  MemCost total;
  std::uint64_t addr = base;
  for (std::uint64_t i = 0; i < n; ++i) {
    MemCost c = touch_vector_line(addr, write);
    c.translation_cycles += tlb_lookup(addr);
    total += c;
    addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(addr) + stride_bytes);
  }
  const unsigned entry_lat = vcache_ ? vcache_->config().latency_cycles
                                     : cfg_.l1.latency_cycles;
  total.serial_cycles = entry_lat + (total.lines > 0 ? total.lines - 1 : 0);
  (void)elem_bytes;
  return total;
}

MemCost MemorySystem::scalar_access(std::uint64_t addr, std::uint64_t bytes,
                                    bool write) {
  const unsigned line = cfg_.l1.line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  MemCost total;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    std::uint64_t a = ln * line;
    MemCost c;
    c.lines = 1;
    c.translation_cycles = tlb_lookup(a);
    if (prefetcher_) prefetcher_->observe(a, l1_);
    if (l1_.access(a, write) == AccessResult::Hit) {
      c.serial_cycles = cfg_.l1.latency_cycles;
    } else {
      c.serial_cycles = cfg_.l1.latency_cycles;
      c += touch_l2_line(a, write);
    }
    total += c;
  }
  return total;
}

void MemorySystem::software_prefetch(std::uint64_t addr, std::uint64_t bytes,
                                     int level) {
  if (!cfg_.sw_prefetch_effective) return;  // no-op on RVV and gem5-SVE
  VLACNN_REQUIRE(level == 1 || level == 2, "prefetch level must be 1 or 2");
  CacheModel& target = (level == 1) ? l1_ : l2_;
  const unsigned line = target.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = bytes == 0 ? first : (addr + bytes - 1) / line;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    if (level == 1) {
      // Filling L1 implies the line is also resident below (inclusive-ish).
      l2_.prefetch_fill(ln * line);
    }
    target.prefetch_fill(ln * line);
  }
}

void MemorySystem::reset() {
  l1_.reset();
  l2_.reset();
  if (vcache_) vcache_->reset();
  if (prefetcher_) prefetcher_->reset();
  dram_lines_ = 0;
  watched_dram_lines_ = 0;  // watch windows are configuration: kept
  tlb_.clear();
  tlb_tick_ = 0;
  tlb_misses_ = 0;
}

}  // namespace vlacnn::sim

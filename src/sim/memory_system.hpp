#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/cache.hpp"
#include "sim/machine_config.hpp"
#include "sim/prefetcher.hpp"

namespace vlacnn::sim {

/// Cycle cost of one (possibly multi-line) memory operation, split into a
/// serial part (entry-level latency + line transfer) and an overlappable
/// part (miss penalties, which non-blocking caches / OoO cores can overlap
/// up to the machine's memory-level parallelism).
struct MemCost {
  std::uint64_t serial_cycles = 0;
  std::uint64_t overlappable_cycles = 0;
  std::uint64_t translation_cycles = 0;  ///< TLB page-walk penalty
  std::uint64_t lines = 0;
  std::uint64_t dram_lines = 0;

  MemCost& operator+=(const MemCost& o) {
    serial_cycles += o.serial_cycles;
    overlappable_cycles += o.overlappable_cycles;
    translation_cycles += o.translation_cycles;
    lines += o.lines;
    dram_lines += o.dram_lines;
    return *this;
  }
};

/// Two-level data-cache hierarchy plus the vector unit's entry path.
///
/// Paper §III-A: on the RISC-V Vector design, the VPU reads/writes through a
/// small (2 KB) VectorCache buffer attached to the **L2** cache — vector data
/// never touches L1. On ARM-SVE (gem5 and A64FX), vector accesses go through
/// the **L1** data cache. Scalar accesses always use L1 on both.
class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& cfg);

  /// Simulates a contiguous access of `bytes` at simulated address `addr`
  /// issued by the vector unit.
  MemCost vector_access(std::uint64_t addr, std::uint64_t bytes, bool write);

  /// Simulates `n` element accesses of `elem_bytes` at stride `stride_bytes`
  /// (strided / gather / scatter traffic: each element touches its own line).
  MemCost vector_access_strided(std::uint64_t base, std::int64_t stride_bytes,
                                std::uint64_t elem_bytes, std::uint64_t n,
                                bool write);

  /// Simulates a scalar load/store through L1.
  MemCost scalar_access(std::uint64_t addr, std::uint64_t bytes, bool write);

  /// Software prefetch of [addr, addr+bytes) into L1 (`level`==1) or L2.
  /// A no-op unless the machine honours prefetch instructions (paper §IV-A:
  /// RVV lacks them; gem5's SVE model treats them as no-ops; A64FX honours
  /// them).
  void software_prefetch(std::uint64_t addr, std::uint64_t bytes, int level);

  /// Invalidates all cache state and statistics.
  void reset();

  [[nodiscard]] const CacheStats& l1_stats() const { return l1_.stats(); }
  [[nodiscard]] const CacheStats& l2_stats() const { return l2_.stats(); }
  [[nodiscard]] const CacheStats* vector_cache_stats() const {
    return vcache_ ? &vcache_->stats() : nullptr;
  }
  [[nodiscard]] const PrefetcherStats* prefetcher_stats() const {
    return prefetcher_ ? &prefetcher_->stats() : nullptr;
  }
  [[nodiscard]] std::uint64_t dram_line_fills() const { return dram_lines_; }
  [[nodiscard]] std::uint64_t tlb_misses() const { return tlb_misses_; }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }

  /// DRAM-fill attribution: fills whose line address falls inside any
  /// watched simulated-address window are additionally counted in
  /// watched_dram_line_fills(). The weight-residency benches watch the
  /// weight (and packed-weight) buffers — via sim::AddressMap translation —
  /// to measure per-item weight DRAM traffic in isolation. Watches are
  /// configuration, so reset() zeroes the counter but keeps the windows.
  void add_dram_watch(std::uint64_t sim_base, std::uint64_t bytes);
  void clear_dram_watches();
  [[nodiscard]] std::uint64_t watched_dram_line_fills() const {
    return watched_dram_lines_;
  }

 private:
  /// Returns the page-walk penalty (0 on a TLB hit or when TLB modelling is
  /// off). Fully associative LRU over 4 KiB pages.
  std::uint64_t tlb_lookup(std::uint64_t addr);
  /// Cost of touching one line on the vector path.
  MemCost touch_vector_line(std::uint64_t addr, bool write);
  /// Cost of an L2 lookup (after an upstream miss), including DRAM fill.
  MemCost touch_l2_line(std::uint64_t addr, bool write);

  MachineConfig cfg_;
  CacheModel l1_;
  CacheModel l2_;
  std::unique_ptr<CacheModel> vcache_;          // RVV only
  std::unique_ptr<StreamPrefetcher> prefetcher_;  // A64FX only
  std::uint64_t dram_lines_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> watches_;  // [base,end)
  std::uint64_t watched_dram_lines_ = 0;

  // TLB state: page number -> LRU stamp.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> tlb_;
  std::uint64_t tlb_tick_ = 0;
  std::uint64_t tlb_misses_ = 0;
};

}  // namespace vlacnn::sim

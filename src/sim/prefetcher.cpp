#include "sim/prefetcher.hpp"

#include <bit>

#include "common/error.hpp"
#include "sim/cache.hpp"

namespace vlacnn::sim {

StreamPrefetcher::StreamPrefetcher(unsigned line_bytes, unsigned depth,
                                   unsigned table_entries)
    : line_shift_(static_cast<unsigned>(
          std::countr_zero(static_cast<std::uint64_t>(line_bytes)))),
      depth_(depth),
      table_(table_entries) {
  VLACNN_REQUIRE((line_bytes & (line_bytes - 1)) == 0, "line size must be pow2");
  VLACNN_REQUIRE(depth >= 1 && depth <= 64, "prefetch depth out of range");
}

void StreamPrefetcher::observe(std::uint64_t addr, CacheModel& target) {
  const std::uint64_t region = addr >> 12;
  const auto line = static_cast<std::int64_t>(addr >> line_shift_);
  ++tick_;

  // Find the tracking entry for this region, or allocate the LRU one.
  StreamEntry* entry = nullptr;
  StreamEntry* lru = &table_[0];
  for (auto& e : table_) {
    if (e.region == region) {
      entry = &e;
      break;
    }
    if (e.lru < lru->lru) lru = &e;
  }
  if (entry == nullptr) {
    *lru = StreamEntry{region, line, 0, 0, tick_};
    return;
  }
  entry->lru = tick_;

  const std::int64_t stride = line - entry->last_line;
  if (stride == 0) return;  // same line, nothing to learn
  if (stride == entry->stride) {
    if (entry->confidence < 4) ++entry->confidence;
    if (entry->confidence == 2) ++stats_.trained_streams;
  } else {
    entry->stride = stride;
    entry->confidence = 1;
  }
  entry->last_line = line;

  if (entry->confidence >= 2) {
    for (unsigned d = 1; d <= depth_; ++d) {
      const std::int64_t target_line = line + entry->stride * static_cast<std::int64_t>(d);
      if (target_line < 0) break;
      const std::uint64_t pf_addr = static_cast<std::uint64_t>(target_line)
                                    << line_shift_;
      ++stats_.issued;
      if (target.prefetch_fill(pf_addr)) ++stats_.useful_fills;
    }
  }
}

void StreamPrefetcher::reset() {
  for (auto& e : table_) e = StreamEntry{};
  tick_ = 0;
  stats_.reset();
}

}  // namespace vlacnn::sim

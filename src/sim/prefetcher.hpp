#pragma once

#include <cstdint>
#include <vector>

namespace vlacnn::sim {

class CacheModel;

struct PrefetcherStats {
  std::uint64_t trained_streams = 0;
  std::uint64_t issued = 0;
  std::uint64_t useful_fills = 0;  // fills of lines that were absent
  void reset() { *this = PrefetcherStats{}; }
};

/// Stride-based stream prefetcher modelled after the A64FX hardware
/// prefetch engine. Tracks per-region (4 KiB) access streams; once a stride
/// is confirmed twice, it prefetches `depth` lines ahead into the attached
/// cache on every subsequent stream access.
class StreamPrefetcher {
 public:
  StreamPrefetcher(unsigned line_bytes, unsigned depth = 4,
                   unsigned table_entries = 32);

  /// Observes a demand access and issues prefetch fills into `target`.
  void observe(std::uint64_t addr, CacheModel& target);

  void reset();
  [[nodiscard]] const PrefetcherStats& stats() const { return stats_; }

 private:
  struct StreamEntry {
    std::uint64_t region = UINT64_MAX;  // addr >> 12
    std::int64_t last_line = 0;
    std::int64_t stride = 0;  // in lines
    int confidence = 0;
    std::uint64_t lru = 0;
  };

  unsigned line_shift_;
  unsigned depth_;
  std::vector<StreamEntry> table_;
  std::uint64_t tick_ = 0;
  PrefetcherStats stats_;
};

}  // namespace vlacnn::sim

#pragma once

#include <memory>

#include "sim/address_map.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"
#include "sim/timing_model.hpp"

namespace vlacnn::sim {

/// Bundles one simulated machine instance: its configuration, memory
/// hierarchy, and core timing model. A `SimContext*` is attached to a
/// `vla::VectorEngine`; a null context runs the engine functionally at full
/// host speed with no instrumentation.
class SimContext {
 public:
  explicit SimContext(const MachineConfig& cfg)
      : cfg_(cfg), memory_(cfg), timing_(cfg) {}

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] MemorySystem& memory() { return memory_; }
  [[nodiscard]] const MemorySystem& memory() const { return memory_; }
  [[nodiscard]] VectorTimingModel& timing() { return timing_; }
  [[nodiscard]] const VectorTimingModel& timing() const { return timing_; }

  /// Completion horizon in cycles (flushes the pipeline).
  std::uint64_t cycles() { return timing_.finish(); }

  /// Seconds at the configured clock.
  double seconds() {
    return static_cast<double>(cycles()) / (cfg_.freq_ghz * 1e9);
  }

  /// Clears timing and cache state (keeps the configuration).
  void reset() {
    memory_.reset();
    timing_.reset();
  }

 private:
  MachineConfig cfg_;
  MemorySystem memory_;
  VectorTimingModel timing_;
};

}  // namespace vlacnn::sim

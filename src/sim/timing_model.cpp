#include "sim/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vlacnn::sim {

VectorTimingModel::VectorTimingModel(const MachineConfig& cfg) : cfg_(cfg) {
  pipe_free_.assign(std::max(1u, cfg.vector_pipes), 0);
  inflight_.assign(std::max(1u, cfg.inflight_window), 0);
}

std::uint64_t VectorTimingModel::mem_exposed_cycles(const MemCost& cost) const {
  const unsigned mlp = std::max(1u, cfg_.mem_level_parallelism);
  const double overlapped =
      static_cast<double>(cost.overlappable_cycles) / static_cast<double>(mlp);
  // DRAM bandwidth floor: fills cannot stream faster than the pin bandwidth.
  const double bw_floor =
      static_cast<double>(cost.dram_lines) * cfg_.l2.line_bytes /
      cfg_.dram_bytes_per_cycle;
  return cost.serial_cycles + cost.translation_cycles +
         static_cast<std::uint64_t>(std::llround(std::max(overlapped, bw_floor)));
}

std::uint64_t VectorTimingModel::issue(int dst,
                                       std::initializer_list<int> srcs,
                                       std::uint64_t occupancy,
                                       std::uint64_t extra_latency,
                                       std::uint64_t elements, VopClass cls) {
  // Earliest cycle all sources are ready.
  std::uint64_t ready = issue_cycle_;
  for (int s : srcs) {
    if (s < 0) continue;
    VLACNN_ASSERT(static_cast<unsigned>(s) < reg_ready_.size(), "bad src reg");
    ready = std::max(ready, reg_ready_[static_cast<unsigned>(s)]);
  }
  // Bounded in-flight window: cannot run further ahead than the completion
  // of the instruction issued `window` slots ago.
  ready = std::max(ready, inflight_[inflight_pos_]);
  const std::uint64_t prev_issue = issue_cycle_;

  // Memory instructions execute on the load/store port (vector units have
  // dedicated load pipes); arithmetic executes on the FMA pipes. Both pay
  // the decoupled-VPU dispatch overhead on their resource.
  const bool is_mem = cls == VopClass::Load || cls == VopClass::Store ||
                      cls == VopClass::Gather || cls == VopClass::Scatter;
  const auto dispatch = static_cast<std::uint64_t>(
      std::llround(cfg_.vector_dispatch_cycles));
  std::uint64_t start;
  if (is_mem) {
    start = std::max(ready, mem_port_free_);
  } else {
    auto pipe = std::min_element(pipe_free_.begin(), pipe_free_.end());
    start = std::max(ready, *pipe);
    *pipe = start + occupancy + dispatch;
  }

  const std::uint64_t startup = static_cast<std::uint64_t>(std::llround(
      cfg_.startup_base_cycles + cfg_.startup_per_lane * cfg_.effective_lanes()));
  const std::uint64_t done = start + startup + occupancy + extra_latency;

  if (is_mem) {
    // Pipelined cache port: busy for the transfer occupancy only; access
    // latency (serial/miss/translation) is charged to the instruction's
    // completion and overlaps with later independent memory instructions
    // (bounded by the in-flight window and the register scoreboard).
    mem_port_free_ = start + occupancy + dispatch;
  }
  if (dst >= 0) {
    VLACNN_ASSERT(static_cast<unsigned>(dst) < reg_ready_.size(), "bad dst reg");
    reg_ready_[static_cast<unsigned>(dst)] = done;
  }
  inflight_[inflight_pos_] = done;
  inflight_pos_ = (inflight_pos_ + 1) % inflight_.size();

  issue_frac_ += 1.0 / std::max(1u, cfg_.issue_width);
  const auto issue_adv = static_cast<std::uint64_t>(issue_frac_);
  issue_frac_ -= static_cast<double>(issue_adv);
  if (cfg_.core == CoreKind::InOrder) {
    // In-order issue: a stalled instruction blocks everything behind it.
    issue_cycle_ = std::max(issue_cycle_ + issue_adv, start);
  } else {
    // OoO: dispatch proceeds at decode rate; dependent instructions wait in
    // the window (bounded by `inflight_window`) without blocking issue.
    issue_cycle_ += issue_adv;
  }
  horizon_ = std::max(horizon_, done);

  ++stats_.vector_instructions;
  if (elements > 0) {
    stats_.elements += elements;
    ++stats_.vl_sample_count;
  }
  if (cls == VopClass::Fma)
    stats_.flops += 2 * elements;
  else if (cls == VopClass::Arith || cls == VopClass::Reduce)
    stats_.flops += elements;
  stats_.issue_stall_cycles += issue_cycle_ - std::min(issue_cycle_, prev_issue + 1);
  return done;
}

void VectorTimingModel::vop(VopClass cls, int dst,
                            std::initializer_list<int> srcs,
                            std::uint64_t elements) {
  const unsigned lanes = std::max(1u, cfg_.effective_lanes());
  std::uint64_t occupancy = (elements + lanes - 1) / lanes;
  if (cls == VopClass::Permute || cls == VopClass::Reduce)
    occupancy *= 2;  // cross-lane traffic halves throughput
  if (cls == VopClass::SetVl || cls == VopClass::Broadcast)
    occupancy = 1;
  issue(dst, srcs, std::max<std::uint64_t>(1, occupancy), 0, elements, cls);
}

void VectorTimingModel::vmem(VopClass cls, int dst,
                             std::initializer_list<int> srcs,
                             std::uint64_t elements, const MemCost& cost) {
  const unsigned lanes = std::max(1u, cfg_.effective_lanes());
  std::uint64_t occupancy = (elements + lanes - 1) / lanes;
  if (cls == VopClass::Gather || cls == VopClass::Scatter)
    occupancy = std::max<std::uint64_t>(occupancy, elements);  // 1 elem/cycle
  const std::uint64_t stall = mem_exposed_cycles(cost);
  stats_.mem_stall_cycles += stall;
  issue(dst, srcs, std::max<std::uint64_t>(1, occupancy), stall, elements, cls);
}

void VectorTimingModel::scalar(std::uint64_t count) {
  // Scalar pipe runs in program order ahead of the vector unit; its cost is
  // serialized into the issue stream, scaled by the core's issue width
  // (superscalar cores co-issue scalar bookkeeping with vector work).
  const auto cost = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(count) * cfg_.scalar_op_cycles /
      std::max(1u, cfg_.issue_width)));
  issue_cycle_ += cost;
  horizon_ = std::max(horizon_, issue_cycle_);
  stats_.scalar_ops += count;
}

void VectorTimingModel::scalar_mem(const MemCost& cost) {
  // Scalar loads that hit pipeline at one per issue slot (hit latency is
  // hidden by load-to-use scheduling); page walks and the miss portion
  // stall.
  MemCost miss_only = cost;
  miss_only.serial_cycles = 0;
  const std::uint64_t stall =
      cost.lines / std::max(1u, cfg_.issue_width) + mem_exposed_cycles(miss_only);
  stats_.mem_stall_cycles += stall;
  issue_cycle_ += stall;
  horizon_ = std::max(horizon_, issue_cycle_);
  ++stats_.scalar_ops;
}

std::uint64_t VectorTimingModel::finish() {
  issue_cycle_ = std::max(issue_cycle_, horizon_);
  stats_.cycles = issue_cycle_;
  return issue_cycle_;
}

void VectorTimingModel::reset() {
  issue_cycle_ = 0;
  reg_ready_.fill(0);
  std::fill(pipe_free_.begin(), pipe_free_.end(), 0);
  mem_port_free_ = 0;
  std::fill(inflight_.begin(), inflight_.end(), 0);
  inflight_pos_ = 0;
  horizon_ = 0;
  stats_.reset();
}

}  // namespace vlacnn::sim

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"

namespace vlacnn::sim {

/// Classes of dynamic vector instructions, for accounting.
enum class VopClass {
  Arith,      // add/mul/sub/min/max/compare...
  Fma,        // fused multiply-add (counts 2 flops/element)
  Load,
  Store,
  Gather,
  Scatter,
  Permute,    // transpose/zip/table ops
  Broadcast,  // scalar -> vector
  Reduce,     // vector -> scalar
  SetVl,      // vsetvl / whilelt
};

struct TimingStats {
  std::uint64_t cycles = 0;            // completion horizon
  std::uint64_t vector_instructions = 0;
  std::uint64_t scalar_ops = 0;
  std::uint64_t elements = 0;          // sum of per-instruction vector lengths
  std::uint64_t flops = 0;
  std::uint64_t vl_sample_count = 0;   // #instructions contributing elements
  std::uint64_t mem_stall_cycles = 0;  // exposed memory stall
  std::uint64_t issue_stall_cycles = 0;

  [[nodiscard]] double avg_vector_length_elems() const {
    return vl_sample_count == 0
               ? 0.0
               : static_cast<double>(elements) / static_cast<double>(vl_sample_count);
  }
  void reset() { *this = TimingStats{}; }
};

/// Scoreboard timing model of an in-order (optionally OoO-overlapping) core
/// with a configurable-width vector unit.
///
/// Model (paper §V knobs):
///  * each dynamic vector instruction occupies a vector pipe for
///    `ceil(E / lanes)` cycles and its result becomes available after an
///    additional startup latency `s0 + s1·lanes` — more lanes shorten
///    occupancy but raise startup, reproducing the paper's lane trade-off;
///  * issue is 1 instruction/cycle and stalls on (a) unavailable source
///    registers and (b) a bounded in-flight window (`inflight_window`),
///    which is small for the in-order gem5 MinorCPU and large for A64FX;
///  * memory costs come from MemorySystem: the serial part always stalls the
///    instruction; the overlappable miss part is divided by the machine's
///    memory-level parallelism and additionally floor-bounded by DRAM
///    bandwidth, so long vectors that miss in L2 become bandwidth-bound;
///  * scalar bookkeeping (loop control, address arithmetic) charges
///    `scalar_op_cycles` on the scalar pipe — this is the overhead long
///    vector lengths amortize.
class VectorTimingModel {
 public:
  static constexpr unsigned kNumVregs = 32;
  static constexpr unsigned kNumPregs = 16;

  explicit VectorTimingModel(const MachineConfig& cfg);

  /// Records a non-memory vector instruction writing `dst` (0..31, or -1 for
  /// none) reading `srcs`.
  void vop(VopClass cls, int dst, std::initializer_list<int> srcs,
           std::uint64_t elements);

  /// Records a vector memory instruction with a pre-computed memory cost.
  void vmem(VopClass cls, int dst, std::initializer_list<int> srcs,
            std::uint64_t elements, const MemCost& cost);

  /// Records `count` scalar bookkeeping operations.
  void scalar(std::uint64_t count = 1);

  /// Records a scalar memory access (through L1).
  void scalar_mem(const MemCost& cost);

  /// Advances the clock to the completion horizon and returns it.
  std::uint64_t finish();

  [[nodiscard]] const TimingStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t now() const { return issue_cycle_; }
  void reset();

 private:
  std::uint64_t issue(int dst, std::initializer_list<int> srcs,
                      std::uint64_t occupancy, std::uint64_t extra_latency,
                      std::uint64_t elements, VopClass cls);
  [[nodiscard]] std::uint64_t mem_exposed_cycles(const MemCost& cost) const;

  MachineConfig cfg_;
  std::uint64_t issue_cycle_ = 0;
  std::array<std::uint64_t, kNumVregs + kNumPregs> reg_ready_{};
  std::vector<std::uint64_t> pipe_free_;   // one per vector pipe
  std::uint64_t mem_port_free_ = 0;        // vector memory port
  double issue_frac_ = 0.0;                // sub-cycle issue accumulation
  std::vector<std::uint64_t> inflight_;    // completion ring buffer
  std::size_t inflight_pos_ = 0;
  std::uint64_t horizon_ = 0;
  TimingStats stats_;
};

}  // namespace vlacnn::sim

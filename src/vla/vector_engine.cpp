#include "vla/vector_engine.hpp"

#include <algorithm>
#include <cstring>

namespace vlacnn::vla {

namespace {
bool is_pow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

VectorEngine::VectorEngine(unsigned vlen_bits)
    : vlen_bits_(vlen_bits), gvl_(vlen_bits / 32) {
  VLACNN_REQUIRE(is_pow2(vlen_bits) && vlen_bits >= 128 && vlen_bits <= 65536,
                 "vector length must be a power of two in [128, 65536] bits");
  regfile_.assign(static_cast<std::size_t>(kNumVregs) * vlmax(), 0.0f);
  predfile_.assign(static_cast<std::size_t>(kNumPregs) * vlmax(), 0);
}

VectorEngine::VectorEngine(sim::SimContext& ctx)
    : VectorEngine(ctx.config().vlen_bits) {
  ctx_ = &ctx;
}

float* VectorEngine::reg(Vreg v) {
  return regfile_.data() + static_cast<std::size_t>(v) * vlmax();
}
const float* VectorEngine::reg(Vreg v) const {
  return regfile_.data() + static_cast<std::size_t>(v) * vlmax();
}

void VectorEngine::check_vreg(Vreg v) const {
  VLACNN_REQUIRE(v >= 0 && v < static_cast<int>(kNumVregs),
                 "vector register out of range");
}
void VectorEngine::check_preg(Preg p) const {
  VLACNN_REQUIRE(p >= 0 && p < static_cast<int>(kNumPregs),
                 "predicate register out of range");
}

void VectorEngine::note_vop(sim::VopClass cls, int dst,
                            std::initializer_list<int> srcs,
                            std::size_t elements) {
  if (ctx_ != nullptr) ctx_->timing().vop(cls, dst, srcs, elements);
}

void VectorEngine::note_vmem(sim::VopClass cls, int dst,
                             std::initializer_list<int> srcs,
                             std::size_t elements, const void* addr,
                             std::size_t bytes, bool write) {
  if (ctx_ == nullptr) return;
  const std::uint64_t sim_addr = sim::AddressMap::instance().translate(addr);
  const sim::MemCost cost = ctx_->memory().vector_access(sim_addr, bytes, write);
  ctx_->timing().vmem(cls, dst, srcs, elements, cost);
}

void VectorEngine::note_vmem_strided(sim::VopClass cls, int dst,
                                     const void* base,
                                     std::ptrdiff_t stride_bytes,
                                     std::size_t n, bool write) {
  if (ctx_ == nullptr) return;
  const std::uint64_t sim_addr = sim::AddressMap::instance().translate(base);
  const sim::MemCost cost = ctx_->memory().vector_access_strided(
      sim_addr, stride_bytes, 4, n, write);
  ctx_->timing().vmem(cls, dst, {}, n, cost);
}

// ---------------- strip mining / predication ----------------

std::size_t VectorEngine::setvl(std::size_t requested) {
  gvl_ = std::min(requested, vlmax());
  note_vop(sim::VopClass::SetVl, -1, {}, 0);
  return gvl_;
}

std::size_t VectorEngine::whilelt(Preg p, std::size_t i, std::size_t n) {
  check_preg(p);
  std::uint8_t* pr = predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) {
    pr[l] = (i + l < n) ? 1 : 0;
    active += pr[l];
  }
  gvl_ = vlmax();  // SVE ops nominally run at full width with predication
  note_vop(sim::VopClass::SetVl, -1, {}, 0);
  return active;
}

void VectorEngine::ptrue(Preg p) {
  check_preg(p);
  std::uint8_t* pr = predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  std::fill(pr, pr + vlmax(), std::uint8_t{1});
  gvl_ = vlmax();
  note_vop(sim::VopClass::SetVl, -1, {}, 0);
}

std::size_t VectorEngine::active_lanes(Preg p) const {
  check_preg(p);
  const std::uint8_t* pr =
      predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) active += pr[l];
  return active;
}

// ---------------- memory ----------------

void VectorEngine::vload(Vreg vd, const float* src) {
  check_vreg(vd);
  std::memcpy(reg(vd), src, gvl_ * sizeof(float));
  count_mem(gvl_ * sizeof(float), false);
  note_vmem(sim::VopClass::Load, vd, {}, gvl_, src, gvl_ * sizeof(float), false);
}

void VectorEngine::vstore(Vreg vs, float* dst) {
  check_vreg(vs);
  std::memcpy(dst, reg(vs), gvl_ * sizeof(float));
  count_mem(gvl_ * sizeof(float), true);
  note_vmem(sim::VopClass::Store, -1, {vs}, gvl_, dst, gvl_ * sizeof(float), true);
}

void VectorEngine::vload_pred(Vreg vd, Preg p, const float* src) {
  check_vreg(vd);
  check_preg(p);
  const std::uint8_t* pr =
      predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  float* d = reg(vd);
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) {
    d[l] = pr[l] ? src[l] : 0.0f;
    active += pr[l];
  }
  count_mem(active * sizeof(float), false);
  note_vmem(sim::VopClass::Load, vd, {}, active, src, active * sizeof(float),
            false);
}

void VectorEngine::vstore_pred(Vreg vs, Preg p, float* dst) {
  check_vreg(vs);
  check_preg(p);
  const std::uint8_t* pr =
      predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  const float* s = reg(vs);
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) {
    if (pr[l]) {
      dst[l] = s[l];
      ++active;
    }
  }
  count_mem(active * sizeof(float), true);
  note_vmem(sim::VopClass::Store, -1, {vs}, active, dst, active * sizeof(float),
            true);
}

void VectorEngine::vload_strided(Vreg vd, const float* base,
                                 std::ptrdiff_t stride_elems) {
  check_vreg(vd);
  float* d = reg(vd);
  for (std::size_t l = 0; l < gvl_; ++l)
    d[l] = base[static_cast<std::ptrdiff_t>(l) * stride_elems];
  count_mem(gvl_ * sizeof(float), false);
  note_vmem_strided(sim::VopClass::Load, vd, base,
                    stride_elems * static_cast<std::ptrdiff_t>(sizeof(float)),
                    gvl_, false);
}

void VectorEngine::vstore_strided(Vreg vs, float* base,
                                  std::ptrdiff_t stride_elems) {
  check_vreg(vs);
  const float* s = reg(vs);
  for (std::size_t l = 0; l < gvl_; ++l)
    base[static_cast<std::ptrdiff_t>(l) * stride_elems] = s[l];
  count_mem(gvl_ * sizeof(float), true);
  note_vmem_strided(sim::VopClass::Store, -1, base,
                    stride_elems * static_cast<std::ptrdiff_t>(sizeof(float)),
                    gvl_, true);
}

void VectorEngine::vgather(Vreg vd, const float* base,
                           const std::int32_t* indices) {
  check_vreg(vd);
  float* d = reg(vd);
  for (std::size_t l = 0; l < gvl_; ++l) d[l] = base[indices[l]];
  count_mem(gvl_ * sizeof(float), false);
  if (ctx_ != nullptr) {
    sim::MemCost total;
    for (std::size_t l = 0; l < gvl_; ++l) {
      const std::uint64_t a =
          sim::AddressMap::instance().translate(base + indices[l]);
      total += ctx_->memory().vector_access(a, sizeof(float), false);
    }
    // Element accesses pipeline; rebase the serial part (cf.
    // MemorySystem::vector_access_strided).
    total.serial_cycles = 4 + (total.lines > 0 ? total.lines - 1 : 0);
    ctx_->timing().vmem(sim::VopClass::Gather, vd, {}, gvl_, total);
  }
}

namespace {
/// Splits a lane-index vector into maximal runs of consecutive addresses —
/// the access pattern of a structured tuple load/store (one small
/// unit-stride transfer per channel sub-block).
template <typename Fn>
void for_each_run(const std::int32_t* indices, std::size_t n, Fn&& fn) {
  std::size_t start = 0;
  for (std::size_t l = 1; l <= n; ++l) {
    if (l == n || indices[l] != indices[l - 1] + 1) {
      fn(indices[start], l - start);
      start = l;
    }
  }
}
}  // namespace

void VectorEngine::vgather_local(Vreg vd, const float* base,
                                 const std::int32_t* indices) {
  check_vreg(vd);
  float* d = reg(vd);
  for (std::size_t l = 0; l < gvl_; ++l) d[l] = base[indices[l]];
  count_mem(gvl_ * sizeof(float), false);
  if (ctx_ != nullptr) {
    sim::MemCost total;
    for_each_run(indices, gvl_, [&](std::int32_t first, std::size_t count) {
      const std::uint64_t a =
          sim::AddressMap::instance().translate(base + first);
      total += ctx_->memory().vector_access(a, count * sizeof(float), false);
    });
    total.serial_cycles = 4 + (total.lines > 0 ? total.lines - 1 : 0);
    ctx_->timing().vmem(sim::VopClass::Load, vd, {}, gvl_, total);
    ctx_->timing().vop(sim::VopClass::Permute, vd, {vd}, gvl_);
  }
}

void VectorEngine::vscatter_local(Vreg vs, float* base,
                                  const std::int32_t* indices) {
  check_vreg(vs);
  const float* s = reg(vs);
  for (std::size_t l = 0; l < gvl_; ++l) base[indices[l]] = s[l];
  count_mem(gvl_ * sizeof(float), true);
  if (ctx_ != nullptr) {
    ctx_->timing().vop(sim::VopClass::Permute, vs, {vs}, gvl_);
    sim::MemCost total;
    for_each_run(indices, gvl_, [&](std::int32_t first, std::size_t count) {
      const std::uint64_t a =
          sim::AddressMap::instance().translate(base + first);
      total += ctx_->memory().vector_access(a, count * sizeof(float), true);
    });
    total.serial_cycles = 4 + (total.lines > 0 ? total.lines - 1 : 0);
    ctx_->timing().vmem(sim::VopClass::Store, -1, {vs}, gvl_, total);
  }
}

void VectorEngine::vscatter(Vreg vs, float* base, const std::int32_t* indices) {
  check_vreg(vs);
  const float* s = reg(vs);
  for (std::size_t l = 0; l < gvl_; ++l) base[indices[l]] = s[l];
  count_mem(gvl_ * sizeof(float), true);
  if (ctx_ != nullptr) {
    sim::MemCost total;
    for (std::size_t l = 0; l < gvl_; ++l) {
      const std::uint64_t a =
          sim::AddressMap::instance().translate(base + indices[l]);
      total += ctx_->memory().vector_access(a, sizeof(float), true);
    }
    total.serial_cycles = 4 + (total.lines > 0 ? total.lines - 1 : 0);
    ctx_->timing().vmem(sim::VopClass::Scatter, -1, {vs}, gvl_, total);
  }
}

void VectorEngine::prefetch(const void* addr, std::size_t bytes, int level) {
  if (ctx_ == nullptr) return;
  // The instruction itself occupies an issue slot even when it is a no-op
  // (paper §IV-A: gem5 treats SVE prefetches as no-ops but still decodes
  // them; RVV builds simply have no such instruction emitted).
  ctx_->timing().scalar(1);
  const std::uint64_t sim_addr = sim::AddressMap::instance().translate(addr);
  ctx_->memory().software_prefetch(sim_addr, bytes, level);
}

// ---------------- arithmetic ----------------

void VectorEngine::vbroadcast(Vreg vd, float x) {
  check_vreg(vd);
  float* d = reg(vd);
  std::fill(d, d + gvl_, x);
  note_vop(sim::VopClass::Broadcast, vd, {}, gvl_);
}

#define VLACNN_DEFINE_BINOP(NAME, EXPR)                            \
  void VectorEngine::NAME(Vreg vd, Vreg va, Vreg vb) {             \
    check_vreg(vd);                                                \
    check_vreg(va);                                                \
    check_vreg(vb);                                                \
    float* d = reg(vd);                                            \
    const float* a = reg(va);                                      \
    const float* b = reg(vb);                                      \
    for (std::size_t l = 0; l < gvl_; ++l) d[l] = (EXPR);          \
    note_vop(sim::VopClass::Arith, vd, {va, vb}, gvl_);            \
  }

VLACNN_DEFINE_BINOP(vadd, a[l] + b[l])
VLACNN_DEFINE_BINOP(vsub, a[l] - b[l])
VLACNN_DEFINE_BINOP(vmul, a[l] * b[l])
VLACNN_DEFINE_BINOP(vdiv, a[l] / b[l])
VLACNN_DEFINE_BINOP(vmax, std::max(a[l], b[l]))
VLACNN_DEFINE_BINOP(vmin, std::min(a[l], b[l]))
#undef VLACNN_DEFINE_BINOP

void VectorEngine::vfma(Vreg vacc, Vreg va, Vreg vb) {
  check_vreg(vacc);
  check_vreg(va);
  check_vreg(vb);
  float* acc = reg(vacc);
  const float* a = reg(va);
  const float* b = reg(vb);
  for (std::size_t l = 0; l < gvl_; ++l) acc[l] += a[l] * b[l];
  note_vop(sim::VopClass::Fma, vacc, {vacc, va, vb}, gvl_);
}

void VectorEngine::vfma_scalar(Vreg vacc, float a, Vreg vb) {
  check_vreg(vacc);
  check_vreg(vb);
  float* acc = reg(vacc);
  const float* b = reg(vb);
  for (std::size_t l = 0; l < gvl_; ++l) acc[l] += a * b[l];
  note_vop(sim::VopClass::Fma, vacc, {vacc, vb}, gvl_);
}

void VectorEngine::vadd_scalar(Vreg vd, Vreg va, float b) {
  check_vreg(vd);
  check_vreg(va);
  float* d = reg(vd);
  const float* a = reg(va);
  for (std::size_t l = 0; l < gvl_; ++l) d[l] = a[l] + b;
  note_vop(sim::VopClass::Arith, vd, {va}, gvl_);
}

void VectorEngine::vmul_scalar(Vreg vd, Vreg va, float b) {
  check_vreg(vd);
  check_vreg(va);
  float* d = reg(vd);
  const float* a = reg(va);
  for (std::size_t l = 0; l < gvl_; ++l) d[l] = a[l] * b;
  note_vop(sim::VopClass::Arith, vd, {va}, gvl_);
}

void VectorEngine::vmax_scalar(Vreg vd, Vreg va, float b) {
  check_vreg(vd);
  check_vreg(va);
  float* d = reg(vd);
  const float* a = reg(va);
  for (std::size_t l = 0; l < gvl_; ++l) d[l] = std::max(a[l], b);
  note_vop(sim::VopClass::Arith, vd, {va}, gvl_);
}

void VectorEngine::vfma_pred(Vreg vacc, Preg p, Vreg va, Vreg vb) {
  check_vreg(vacc);
  check_vreg(va);
  check_vreg(vb);
  check_preg(p);
  const std::uint8_t* pr =
      predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  float* acc = reg(vacc);
  const float* a = reg(va);
  const float* b = reg(vb);
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) {
    if (pr[l]) {
      acc[l] += a[l] * b[l];
      ++active;
    }
  }
  note_vop(sim::VopClass::Fma, vacc, {vacc, va, vb}, active);
}

void VectorEngine::vfma_scalar_pred(Vreg vacc, Preg p, float a, Vreg vb) {
  check_vreg(vacc);
  check_vreg(vb);
  check_preg(p);
  const std::uint8_t* pr =
      predfile_.data() + static_cast<std::size_t>(p) * vlmax();
  float* acc = reg(vacc);
  const float* b = reg(vb);
  std::size_t active = 0;
  for (std::size_t l = 0; l < vlmax(); ++l) {
    if (pr[l]) {
      acc[l] += a * b[l];
      ++active;
    }
  }
  note_vop(sim::VopClass::Fma, vacc, {vacc, vb}, active);
}

float VectorEngine::vredsum(Vreg v) {
  check_vreg(v);
  const float* s = reg(v);
  float sum = 0.0f;
  for (std::size_t l = 0; l < gvl_; ++l) sum += s[l];
  note_vop(sim::VopClass::Reduce, -1, {v}, gvl_);
  return sum;
}

float VectorEngine::vredmax(Vreg v) {
  check_vreg(v);
  const float* s = reg(v);
  float m = s[0];
  for (std::size_t l = 1; l < gvl_; ++l) m = std::max(m, s[l]);
  note_vop(sim::VopClass::Reduce, -1, {v}, gvl_);
  return m;
}

// ---------------- permutes ----------------

void VectorEngine::vpermute(Vreg vd, Vreg vs, const std::int32_t* idx) {
  check_vreg(vd);
  check_vreg(vs);
  VLACNN_REQUIRE(vd != vs, "vpermute requires distinct registers");
  float* d = reg(vd);
  const float* s = reg(vs);
  for (std::size_t l = 0; l < gvl_; ++l) {
    VLACNN_REQUIRE(idx[l] >= 0 && static_cast<std::size_t>(idx[l]) < vlmax(),
                   "permute index out of register bounds");
    d[l] = s[idx[l]];
  }
  note_vop(sim::VopClass::Permute, vd, {vs}, gvl_);
}

void VectorEngine::vzip_lo(Vreg vd, Vreg va, Vreg vb) {
  check_vreg(vd);
  check_vreg(va);
  check_vreg(vb);
  VLACNN_REQUIRE(vd != va && vd != vb, "vzip requires a distinct destination");
  float* d = reg(vd);
  const float* a = reg(va);
  const float* b = reg(vb);
  const std::size_t half = gvl_ / 2;
  for (std::size_t l = 0; l < half; ++l) {
    d[2 * l] = a[l];
    d[2 * l + 1] = b[l];
  }
  note_vop(sim::VopClass::Permute, vd, {va, vb}, gvl_);
}

void VectorEngine::vzip_hi(Vreg vd, Vreg va, Vreg vb) {
  check_vreg(vd);
  check_vreg(va);
  check_vreg(vb);
  VLACNN_REQUIRE(vd != va && vd != vb, "vzip requires a distinct destination");
  float* d = reg(vd);
  const float* a = reg(va);
  const float* b = reg(vb);
  const std::size_t half = gvl_ / 2;
  for (std::size_t l = 0; l < half; ++l) {
    d[2 * l] = a[half + l];
    d[2 * l + 1] = b[half + l];
  }
  note_vop(sim::VopClass::Permute, vd, {va, vb}, gvl_);
}

// ---------------- scalar accounting / test access ----------------

void VectorEngine::scalar_ops(std::uint64_t n) {
  if (ctx_ != nullptr) ctx_->timing().scalar(n);
}

void VectorEngine::scalar_mem(const void* addr, std::size_t bytes, bool write) {
  count_mem(bytes, write);
  if (ctx_ == nullptr) return;
  const std::uint64_t sim_addr = sim::AddressMap::instance().translate(addr);
  ctx_->timing().scalar_mem(ctx_->memory().scalar_access(sim_addr, bytes, write));
}

float VectorEngine::lane(Vreg v, std::size_t i) const {
  check_vreg(v);
  VLACNN_REQUIRE(i < vlmax(), "lane out of range");
  return reg(v)[i];
}

void VectorEngine::set_lane(Vreg v, std::size_t i, float x) {
  check_vreg(v);
  VLACNN_REQUIRE(i < vlmax(), "lane out of range");
  reg(v)[i] = x;
}

}  // namespace vlacnn::vla

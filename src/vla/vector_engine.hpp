#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/sim_context.hpp"

namespace vlacnn::vla {

/// Architectural vector register number (v0..v31).
using Vreg = int;
/// Architectural predicate register number (p0..p15, SVE only).
using Preg = int;

/// Vector-length-agnostic vector engine: the substitute for RVV / SVE
/// hardware intrinsics.
///
/// Kernels are written against this class exactly as they would be written
/// with EPI builtins (RVV) or ACLE (SVE): the author allocates architectural
/// registers v0..v31 explicitly, strip-mines loops with `setvl` (RVV style)
/// or `whilelt` predicates (SVE style), and uses contiguous / strided /
/// gather-scatter memory operations and vector-scalar FMAs.
///
/// The engine executes every operation functionally on host memory. When a
/// `sim::SimContext` is attached, each operation additionally feeds the
/// scoreboard timing model and the cache hierarchy, so the same kernel code
/// yields both numerics and simulated cycles.
class VectorEngine {
 public:
  static constexpr unsigned kNumVregs = 32;
  static constexpr unsigned kNumPregs = 16;

  /// Functional-only engine with the given hardware vector length.
  explicit VectorEngine(unsigned vlen_bits);
  /// Instrumented engine; vector length comes from the machine config.
  explicit VectorEngine(sim::SimContext& ctx);

  [[nodiscard]] unsigned vlen_bits() const { return vlen_bits_; }
  /// VLMAX for 32-bit elements (svcntw() in SVE terms).
  [[nodiscard]] std::size_t vlmax() const { return vlen_bits_ / 32; }
  [[nodiscard]] sim::SimContext* context() const { return ctx_; }

  // ---------------- RVV-style strip mining ----------------

  /// `vsetvl`: returns the granted vector length min(requested, VLMAX) and
  /// makes it the implicit element count of subsequent unpredicated ops.
  std::size_t setvl(std::size_t requested);
  [[nodiscard]] std::size_t gvl() const { return gvl_; }

  // ---------------- SVE-style predication ----------------

  /// `whilelt p, i, n`: lane l is active iff i + l < n. Returns active count.
  std::size_t whilelt(Preg p, std::size_t i, std::size_t n);
  /// `ptrue`: all VLMAX lanes active.
  void ptrue(Preg p);
  [[nodiscard]] std::size_t active_lanes(Preg p) const;

  // ---------------- memory operations ----------------

  /// Unit-stride load of gvl() elements.
  void vload(Vreg vd, const float* src);
  /// Unit-stride store of gvl() elements.
  void vstore(Vreg vs, float* dst);
  /// Predicated unit-stride load/store (SVE): inactive lanes are zeroed /
  /// skipped.
  void vload_pred(Vreg vd, Preg p, const float* src);
  void vstore_pred(Vreg vs, Preg p, float* dst);
  /// Strided load/store (stride in elements); gvl() elements.
  void vload_strided(Vreg vd, const float* base, std::ptrdiff_t stride_elems);
  void vstore_strided(Vreg vs, float* base, std::ptrdiff_t stride_elems);
  /// Gather / scatter with per-element indices (in elements from base).
  void vgather(Vreg vd, const float* base, const std::int32_t* indices);
  void vscatter(Vreg vs, float* base, const std::int32_t* indices);

  /// Structured gather/scatter over a small cache-resident region — the
  /// cost model of SVE tuple loads + register transposes (ld4/st4 + trn/zip,
  /// the intrinsics the paper's Winograd uses, §IV-B/§VII). Functionally
  /// identical to vgather/vscatter; billed as one unit-stride access over
  /// the touched footprint plus an in-register permute, instead of
  /// per-element address generation.
  void vgather_local(Vreg vd, const float* base, const std::int32_t* indices);
  void vscatter_local(Vreg vs, float* base, const std::int32_t* indices);

  /// Software prefetch hint (level 1 = L1, 2 = L2). Honoured only on
  /// machines with `sw_prefetch_effective` (paper §IV-A).
  void prefetch(const void* addr, std::size_t bytes, int level);

  // ---------------- arithmetic ----------------

  void vbroadcast(Vreg vd, float x);
  /// vd[i] = a[i] + b[i], etc. All use gvl() elements.
  void vadd(Vreg vd, Vreg va, Vreg vb);
  void vsub(Vreg vd, Vreg va, Vreg vb);
  void vmul(Vreg vd, Vreg va, Vreg vb);
  void vdiv(Vreg vd, Vreg va, Vreg vb);
  void vmax(Vreg vd, Vreg va, Vreg vb);
  void vmin(Vreg vd, Vreg va, Vreg vb);
  /// vacc[i] += va[i] * vb[i]   (vfmacc.vv)
  void vfma(Vreg vacc, Vreg va, Vreg vb);
  /// vacc[i] += a * vb[i]       (vfmacc.vf — vector-scalar FMA; the compiler
  /// pattern the paper relies on to avoid explicit broadcasts)
  void vfma_scalar(Vreg vacc, float a, Vreg vb);
  void vadd_scalar(Vreg vd, Vreg va, float b);
  void vmul_scalar(Vreg vd, Vreg va, float b);
  void vmax_scalar(Vreg vd, Vreg va, float b);
  /// Predicated FMA (SVE): only active lanes update.
  void vfma_pred(Vreg vacc, Preg p, Vreg va, Vreg vb);
  void vfma_scalar_pred(Vreg vacc, Preg p, float a, Vreg vb);

  /// Horizontal sum of gvl() elements.
  float vredsum(Vreg v);
  float vredmax(Vreg v);

  // ---------------- permutes (Winograd transposes) ----------------

  /// vd[i] = vs[idx[i]] for gvl() elements (tbl / vrgather).
  void vpermute(Vreg vd, Vreg vs, const std::int32_t* idx);
  /// Interleave even/odd (zip1/zip2-like) helpers used by the Winograd
  /// tuple transpose.
  void vzip_lo(Vreg vd, Vreg va, Vreg vb);
  void vzip_hi(Vreg vd, Vreg va, Vreg vb);

  // ---------------- scalar-side accounting ----------------

  /// Charges `n` scalar bookkeeping operations (loop control, address
  /// arithmetic) to the scalar pipe. No functional effect.
  void scalar_ops(std::uint64_t n);
  /// Charges a scalar load/store of `bytes` at `addr`.
  void scalar_mem(const void* addr, std::size_t bytes, bool write);

  // ---------------- traffic accounting ----------------

  /// Cumulative bytes read / written through this engine's memory operations
  /// (vector and scalar). Maintained functionally — unlike the simulator's
  /// cache statistics these are available on uninstrumented runs, which is
  /// what lets the fused-conv benchmarks and tests compare the memory
  /// traffic of two algorithm pipelines at host speed.
  [[nodiscard]] std::uint64_t mem_bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t mem_bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t mem_bytes_moved() const {
    return bytes_read_ + bytes_written_;
  }
  void reset_mem_counters() { bytes_read_ = bytes_written_ = 0; }
  /// Folds traffic observed on helper engines (intra-op pool workers) into
  /// this engine so a coordinating engine's counters stay inclusive.
  void add_mem_bytes(std::uint64_t read, std::uint64_t written) {
    bytes_read_ += read;
    bytes_written_ += written;
  }

  // ---------------- test access ----------------

  [[nodiscard]] float lane(Vreg v, std::size_t i) const;
  void set_lane(Vreg v, std::size_t i, float x);

 private:
  float* reg(Vreg v);
  const float* reg(Vreg v) const;
  void check_vreg(Vreg v) const;
  void check_preg(Preg p) const;
  void note_vop(sim::VopClass cls, int dst, std::initializer_list<int> srcs,
                std::size_t elements);
  void note_vmem(sim::VopClass cls, int dst, std::initializer_list<int> srcs,
                 std::size_t elements, const void* addr, std::size_t bytes,
                 bool write);
  void note_vmem_strided(sim::VopClass cls, int dst, const void* base,
                         std::ptrdiff_t stride_bytes, std::size_t n,
                         bool write);

  /// Counts `bytes` toward the functional traffic totals.
  void count_mem(std::size_t bytes, bool write) {
    if (write)
      bytes_written_ += bytes;
    else
      bytes_read_ += bytes;
  }

  sim::SimContext* ctx_ = nullptr;
  unsigned vlen_bits_;
  std::size_t gvl_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::vector<float> regfile_;               // kNumVregs * vlmax()
  std::vector<std::uint8_t> predfile_;       // kNumPregs * vlmax()
};

/// Folds the memory traffic that intra-op worker engines generate during a
/// fan-out into the coordinating engine, so its counters stay inclusive:
/// snapshot() before the parallel_for, fold_into() after the join. The
/// single implementation shared by the GEMM M-panel and Winograd tile
/// fan-outs — the two backends' bytes-moved accounting must not drift.
/// Reusable across calls (the snapshot buffer is retained).
class WorkerTrafficFold {
 public:
  void snapshot(const std::vector<std::unique_ptr<VectorEngine>>& workers,
                int n) {
    before_.resize(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w)
      before_[static_cast<std::size_t>(w)] = {
          workers[static_cast<std::size_t>(w)]->mem_bytes_read(),
          workers[static_cast<std::size_t>(w)]->mem_bytes_written()};
  }
  void fold_into(VectorEngine& eng,
                 const std::vector<std::unique_ptr<VectorEngine>>& workers,
                 int n) const {
    for (int w = 0; w < n; ++w) {
      const VectorEngine& weng = *workers[static_cast<std::size_t>(w)];
      eng.add_mem_bytes(
          weng.mem_bytes_read() - before_[static_cast<std::size_t>(w)].first,
          weng.mem_bytes_written() -
              before_[static_cast<std::size_t>(w)].second);
    }
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> before_;
};

/// Lazily materializes functional engine `w` of a per-worker pool,
/// recreating it when the requested hardware vector length changes. Shared
/// by the intra-op parallel GEMM/Winograd paths and the batch scheduler so
/// engine construction has a single home. Not thread-safe: call from the
/// coordinating thread before fanning out.
inline VectorEngine& ensure_worker_engine(
    std::vector<std::unique_ptr<VectorEngine>>& engines, int w,
    unsigned vlen_bits) {
  const auto idx = static_cast<std::size_t>(w);
  if (engines.size() <= idx) engines.resize(idx + 1);
  if (!engines[idx] || engines[idx]->vlen_bits() != vlen_bits)
    engines[idx] = std::make_unique<VectorEngine>(vlen_bits);
  return *engines[idx];
}

}  // namespace vlacnn::vla

#include "winograd/f6x3.hpp"

namespace vlacnn::winograd {

namespace {

/// tmp(R x 8) = T(R x C) * in(C x 8); all row-major, double accumulation.
template <int R, int C>
void left_multiply(const std::array<std::array<double, C>, R>& t,
                   const double* in, int in_cols, double* out) {
  for (int r = 0; r < R; ++r) {
    for (int j = 0; j < in_cols; ++j) {
      double acc = 0.0;
      for (int k = 0; k < C; ++k) acc += t[r][k] * in[k * in_cols + j];
      out[r * in_cols + j] = acc;
    }
  }
}

template <int N>
void transpose(const double* in, int rows, int cols, double* out) {
  (void)N;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
}

}  // namespace

void input_transform_ref(const float d[kTileElems], float out[kTileElems]) {
  double in[kTileElems], t1[kTileElems], t2[kTileElems], t3[kTileElems];
  for (int i = 0; i < kTileElems; ++i) in[i] = d[i];
  left_multiply<8, 8>(kBT, in, 8, t1);   // Bᵀ d
  transpose<8>(t1, 8, 8, t2);            // (Bᵀ d)ᵀ
  left_multiply<8, 8>(kBT, t2, 8, t3);   // Bᵀ (Bᵀ d)ᵀ = (Bᵀ d B)ᵀ
  transpose<8>(t3, 8, 8, t2);            // Bᵀ d B
  for (int i = 0; i < kTileElems; ++i) out[i] = static_cast<float>(t2[i]);
}

void weight_transform_ref(const float g[9], float out[kTileElems]) {
  double in[9], t1[24], t2[24], t3[kTileElems], t4[kTileElems];
  for (int i = 0; i < 9; ++i) in[i] = g[i];
  left_multiply<8, 3>(kG, in, 3, t1);    // G g            (8x3)
  transpose<8>(t1, 8, 3, t2);            // (G g)ᵀ         (3x8)
  left_multiply<8, 3>(kG, t2, 8, t3);    // G (G g)ᵀ = (G g Gᵀ)ᵀ (8x8)
  transpose<8>(t3, 8, 8, t4);            // G g Gᵀ
  for (int i = 0; i < kTileElems; ++i) out[i] = static_cast<float>(t4[i]);
}

void output_transform_ref(const float m[kTileElems], float out[36]) {
  double in[kTileElems], t1[48], t2[48], t3[36], t4[36];
  for (int i = 0; i < kTileElems; ++i) in[i] = m[i];
  left_multiply<6, 8>(kAT, in, 8, t1);   // Aᵀ m           (6x8)
  transpose<6>(t1, 6, 8, t2);            // (Aᵀ m)ᵀ        (8x6)
  left_multiply<6, 8>(kAT, t2, 6, t3);   // Aᵀ (Aᵀ m)ᵀ = (Aᵀ m A)ᵀ (6x6)
  transpose<6>(t3, 6, 6, t4);            // Aᵀ m A
  for (int i = 0; i < 36; ++i) out[i] = static_cast<float>(t4[i]);
}

}  // namespace vlacnn::winograd

#pragma once

#include <array>

namespace vlacnn::winograd {

/// Winograd F(6x6, 3x3) minimal-filtering transform matrices over the
/// interpolation points {0, ±1, ±2, ±1/2, ∞} — the same tile configuration
/// NNPACK uses (8x8 input tile, 3x3 kernel, 6x6 output tile).
///
/// V = Bᵀ d B   (input transform,  d: 8x8)
/// U = G g Gᵀ   (weight transform, g: 3x3)
/// Y = Aᵀ m A   (output transform, m: 8x8, Y: 6x6)

inline constexpr int kTile = 8;      ///< input tile edge
inline constexpr int kOutTile = 6;   ///< output tile edge
inline constexpr int kTileElems = kTile * kTile;  ///< 64 tuple elements

inline constexpr std::array<std::array<double, 8>, 8> kBT = {{
    {1.0, 0.0, -21.0 / 4, 0.0, 21.0 / 4, 0.0, -1.0, 0.0},
    {0.0, 1.0, 1.0, -17.0 / 4, -17.0 / 4, 1.0, 1.0, 0.0},
    {0.0, -1.0, 1.0, 17.0 / 4, -17.0 / 4, -1.0, 1.0, 0.0},
    {0.0, 0.5, 0.25, -5.0 / 2, -5.0 / 4, 2.0, 1.0, 0.0},
    {0.0, -0.5, 0.25, 5.0 / 2, -5.0 / 4, -2.0, 1.0, 0.0},
    {0.0, 2.0, 4.0, -5.0 / 2, -5.0, 0.5, 1.0, 0.0},
    {0.0, -2.0, 4.0, 5.0 / 2, -5.0, -0.5, 1.0, 0.0},
    {0.0, -1.0, 0.0, 21.0 / 4, 0.0, -21.0 / 4, 0.0, 1.0},
}};

inline constexpr std::array<std::array<double, 3>, 8> kG = {{
    {1.0, 0.0, 0.0},
    {-2.0 / 9, -2.0 / 9, -2.0 / 9},
    {-2.0 / 9, 2.0 / 9, -2.0 / 9},
    {1.0 / 90, 1.0 / 45, 2.0 / 45},
    {1.0 / 90, -1.0 / 45, 2.0 / 45},
    {32.0 / 45, 16.0 / 45, 8.0 / 45},
    {32.0 / 45, -16.0 / 45, 8.0 / 45},
    {0.0, 0.0, 1.0},
}};

inline constexpr std::array<std::array<double, 8>, 6> kAT = {{
    {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0},
    {0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 0.0},
    {0.0, 1.0, 1.0, 4.0, 4.0, 0.25, 0.25, 0.0},
    {0.0, 1.0, -1.0, 8.0, -8.0, 0.125, -0.125, 0.0},
    {0.0, 1.0, 1.0, 16.0, 16.0, 1.0 / 16, 1.0 / 16, 0.0},
    {0.0, 1.0, -1.0, 32.0, -32.0, 1.0 / 32, -1.0 / 32, 1.0},
}};

/// Scalar reference transforms (used by tests and by the offline weight
/// transform). All operate on row-major tiles.

/// out(8x8) = Bᵀ · d(8x8) · B
void input_transform_ref(const float d[kTileElems], float out[kTileElems]);

/// out(8x8) = G · g(3x3) · Gᵀ
void weight_transform_ref(const float g[9], float out[kTileElems]);

/// out(6x6) = Aᵀ · m(8x8) · A
void output_transform_ref(const float m[kTileElems], float out[36]);

}  // namespace vlacnn::winograd

#include "winograd/variants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "winograd/f6x3.hpp"

namespace vlacnn::winograd {

const WinogradVariant& f2x3() {
  static const WinogradVariant v = [] {
    WinogradVariant w;
    w.name = "F(2x2,3x3)";
    w.out_tile = 2;
    w.in_tile = 4;
    w.bt = {1, 0, -1, 0,  //
            0, 1, 1, 0,   //
            0, -1, 1, 0,  //
            0, 1, 0, -1};
    w.g = {1, 0, 0,          //
           0.5, 0.5, 0.5,    //
           0.5, -0.5, 0.5,   //
           0, 0, 1};
    w.at = {1, 1, 1, 0,  //
            0, 1, -1, -1};
    return w;
  }();
  return v;
}

const WinogradVariant& f4x3() {
  static const WinogradVariant v = [] {
    WinogradVariant w;
    w.name = "F(4x4,3x3)";
    w.out_tile = 4;
    w.in_tile = 6;
    w.bt = {4, 0,  -5, 0,  1, 0,  //
            0, -4, -4, 1,  1, 0,  //
            0, 4,  -4, -1, 1, 0,  //
            0, -2, -1, 2,  1, 0,  //
            0, 2,  -1, -2, 1, 0,  //
            0, 4,  0,  -5, 0, 1};
    w.g = {1.0 / 4,  0,         0,          //
           -1.0 / 6, -1.0 / 6,  -1.0 / 6,   //
           -1.0 / 6, 1.0 / 6,   -1.0 / 6,   //
           1.0 / 24, 1.0 / 12,  1.0 / 6,    //
           1.0 / 24, -1.0 / 12, 1.0 / 6,    //
           0,        0,         1};
    w.at = {1, 1, 1,  1, 1,  0,  //
            0, 1, -1, 2, -2, 0,  //
            0, 1, 1,  4, 4,  0,  //
            0, 1, -1, 8, -8, 1};
    return w;
  }();
  return v;
}

const WinogradVariant& f6x3_variant() {
  static const WinogradVariant v = [] {
    WinogradVariant w;
    w.name = "F(6x6,3x3)";
    w.out_tile = 6;
    w.in_tile = 8;
    for (const auto& row : kBT)
      w.bt.insert(w.bt.end(), row.begin(), row.end());
    for (const auto& row : kG) w.g.insert(w.g.end(), row.begin(), row.end());
    for (const auto& row : kAT)
      w.at.insert(w.at.end(), row.begin(), row.end());
    return w;
  }();
  return v;
}

namespace {

/// out(rows x cols) = T(rows x inner) * in(inner x cols); fp32 accumulation
/// to mirror the production kernels' rounding behaviour.
void matmul_f32(const double* t, int rows, int inner, const float* in,
                int cols, float* out) {
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      float acc = 0.0f;
      for (int k = 0; k < inner; ++k)
        acc += static_cast<float>(t[r * inner + k]) * in[k * cols + c];
      out[r * cols + c] = acc;
    }
  }
}

void transpose_f32(const float* in, int rows, int cols, float* out) {
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
}

}  // namespace

void variant_tile_conv(const WinogradVariant& v, const float* d_tile,
                       const float* g3x3, float* out_tile) {
  const int t = v.in_tile, m = v.out_tile;
  std::vector<float> tmp1(static_cast<std::size_t>(t) * t);
  std::vector<float> tmp2(static_cast<std::size_t>(t) * t);
  std::vector<float> dv(static_cast<std::size_t>(t) * t);
  std::vector<float> uv(static_cast<std::size_t>(t) * t);

  // V = Bt d B  (via Bt d, transpose, Bt (.)t, transpose).
  matmul_f32(v.bt.data(), t, t, d_tile, t, tmp1.data());
  transpose_f32(tmp1.data(), t, t, tmp2.data());
  matmul_f32(v.bt.data(), t, t, tmp2.data(), t, tmp1.data());
  transpose_f32(tmp1.data(), t, t, dv.data());

  // U = G g Gt.
  std::vector<float> gg(static_cast<std::size_t>(t) * 3);
  matmul_f32(v.g.data(), t, 3, g3x3, 3, gg.data());
  std::vector<float> ggt(static_cast<std::size_t>(3) * t);
  transpose_f32(gg.data(), t, 3, ggt.data());
  matmul_f32(v.g.data(), t, 3, ggt.data(), t, tmp1.data());
  transpose_f32(tmp1.data(), t, t, uv.data());

  // M = U ⊙ V, then Y = At M A.
  for (int i = 0; i < t * t; ++i) tmp1[static_cast<std::size_t>(i)] = uv[static_cast<std::size_t>(i)] * dv[static_cast<std::size_t>(i)];
  std::vector<float> s(static_cast<std::size_t>(m) * t);
  matmul_f32(v.at.data(), m, t, tmp1.data(), t, s.data());
  std::vector<float> st(static_cast<std::size_t>(t) * m);
  transpose_f32(s.data(), m, t, st.data());
  std::vector<float> y(static_cast<std::size_t>(m) * m);
  matmul_f32(v.at.data(), m, t, st.data(), m, y.data());
  transpose_f32(y.data(), m, m, out_tile);
}

void variant_conv2d(const WinogradVariant& v, const float* image, int h,
                    int w, const float* g3x3, float* out) {
  VLACNN_REQUIRE(h >= 3 && w >= 3, "image too small");
  const int m = v.out_tile, t = v.in_tile, pad = 1;
  const int oh = h, ow = w;  // 3x3, stride 1, pad 1
  std::vector<float> d(static_cast<std::size_t>(t) * t);
  std::vector<float> y(static_cast<std::size_t>(m) * m);
  for (int ty = 0; ty * m < oh; ++ty) {
    for (int tx = 0; tx * m < ow; ++tx) {
      const int y0 = ty * m - pad, x0 = tx * m - pad;
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < t; ++j) {
          const int yy = y0 + i, xx = x0 + j;
          d[static_cast<std::size_t>(i) * t + j] =
              (yy >= 0 && yy < h && xx >= 0 && xx < w)
                  ? image[static_cast<std::size_t>(yy) * w + xx]
                  : 0.0f;
        }
      }
      variant_tile_conv(v, d.data(), g3x3, y.data());
      for (int r = 0; r < m && ty * m + r < oh; ++r)
        for (int c = 0; c < m && tx * m + c < ow; ++c)
          out[static_cast<std::size_t>(ty * m + r) * ow + tx * m + c] =
              y[static_cast<std::size_t>(r) * m + c];
    }
  }
}

double variant_max_error(const WinogradVariant& v, int h, int w,
                         std::uint64_t seed, float magnitude) {
  Rng rng(seed);
  std::vector<float> image(static_cast<std::size_t>(h) * w);
  for (auto& x : image) x = rng.uniform(-magnitude, magnitude);
  float g[9];
  for (auto& x : g) x = rng.uniform(-magnitude, magnitude);

  std::vector<float> wino(image.size()), direct(image.size(), 0.0f);
  variant_conv2d(v, image.data(), h, w, g, wino.data());

  // Direct reference in double precision.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          const int yy = y + ky - 1, xx = x + kx - 1;
          if (yy < 0 || yy >= h || xx < 0 || xx >= w) continue;
          acc += static_cast<double>(g[ky * 3 + kx]) *
                 image[static_cast<std::size_t>(yy) * w + xx];
        }
      }
      direct[static_cast<std::size_t>(y) * w + x] = static_cast<float>(acc);
    }
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < image.size(); ++i)
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(wino[i]) - direct[i]));
  return max_err;
}

}  // namespace vlacnn::winograd

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vlacnn::winograd {

/// Generic Winograd F(m x m, 3 x 3) machinery for the tile-size study.
///
/// The paper's §IV-B chooses the 8x8 tile (F(6x6,3x3)) and notes that
/// vectorizing with *larger* tiles would drop numerical accuracy — the very
/// reason the inter-tile scheme exists. These variants quantify that
/// trade-off: F(2x2,3x3) (4x4 tiles), F(4x4,3x3) (6x6 tiles) and
/// F(6x6,3x3) (8x8 tiles) share one generic implementation, so the
/// accuracy/arithmetic trade-off can be measured head-to-head
/// (`bench_accuracy_tilesize`).
struct WinogradVariant {
  std::string name;
  int out_tile;   ///< m  (output tile edge)
  int in_tile;    ///< m + 2 (input tile edge for r = 3)
  /// Row-major transform matrices:
  ///   bt: in_tile x in_tile,  g: in_tile x 3,  at: out_tile x in_tile.
  std::vector<double> bt;
  std::vector<double> g;
  std::vector<double> at;

  /// Multiplications per output element relative to direct convolution
  /// (direct: 9 multiplies/output; Winograd: in_tile^2 / out_tile^2).
  [[nodiscard]] double arithmetic_reduction() const {
    const double direct = 9.0 * out_tile * out_tile;
    const double wino = static_cast<double>(in_tile) * in_tile;
    return direct / wino;
  }
};

/// F(2x2,3x3): 4x4 tiles, 2.25x fewer multiplies, minimal rounding error.
const WinogradVariant& f2x3();
/// F(4x4,3x3): 6x6 tiles, 4x fewer multiplies.
const WinogradVariant& f4x3();
/// F(6x6,3x3): 8x8 tiles, 5.06x fewer multiplies — the paper's choice.
const WinogradVariant& f6x3_variant();

/// Single-tile convolution through the variant's transforms:
/// out(m x m) = At . [ (G g Gt) ⊙ (Bt d B) ] . A, all in fp32 like the
/// production kernels (double is only used inside the transform matrices).
void variant_tile_conv(const WinogradVariant& v, const float* d_tile,
                       const float* g3x3, float* out_tile);

/// Full single-image convolution (one input channel, one filter, stride 1,
/// pad 1) via the variant's tiling. Reference-grade, used by the accuracy
/// study and tests.
void variant_conv2d(const WinogradVariant& v, const float* image, int h,
                    int w, const float* g3x3, float* out);

/// Max |winograd - direct| over a deterministic random image, the accuracy
/// metric of the tile-size study.
double variant_max_error(const WinogradVariant& v, int h, int w,
                         std::uint64_t seed, float magnitude = 1.0f);

}  // namespace vlacnn::winograd

#include "winograd/weight_cache.hpp"

#include "winograd/f6x3.hpp"

namespace vlacnn::winograd {

const float* WeightCache::get(const dnn::ConvDesc& d, const float* weights) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{weights, d.in_c, d.out_c};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.data();

  // Offline (uninstrumented) scalar weight transform, stored in the
  // transposed element orientation used throughout the pipeline.
  AlignedBuffer<float> u(static_cast<std::size_t>(d.out_c) * d.in_c *
                         kTileElems);
  float tile[kTileElems];
  for (int oc = 0; oc < d.out_c; ++oc) {
    for (int ic = 0; ic < d.in_c; ++ic) {
      const float* g =
          weights + (static_cast<std::size_t>(oc) * d.in_c + ic) * 9;
      weight_transform_ref(g, tile);
      float* dst =
          u.data() + (static_cast<std::size_t>(oc) * d.in_c + ic) * kTileElems;
      for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j) dst[i * 8 + j] = tile[j * 8 + i];
    }
  }
  auto [pos, inserted] = cache_.emplace(key, std::move(u));
  (void)inserted;
  return pos->second.data();
}

void WeightCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

std::size_t WeightCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace vlacnn::winograd

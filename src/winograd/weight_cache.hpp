#pragma once

#include <map>
#include <mutex>
#include <tuple>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"

namespace vlacnn::winograd {

/// Cache of Winograd-transformed weight tensors U, keyed by the raw weight
/// pointer *and* the layer's channel shape — a recycled heap address from a
/// destroyed network must never alias an entry of a different shape. The
/// transform runs offline (scalar, uninstrumented), matching the paper's
/// protocol of excluding it from inference time (§VII-A).
///
/// The cache is shared between every per-thread WinogradConv instance a
/// core::ConvolutionEngine installs: transformed weights are immutable once
/// inserted, so after a prepare() sweep over the network the forward-pass
/// fast path is a read-only lookup. All methods are thread-safe; get() takes
/// a mutex only to locate the entry — concurrent first-touch of the same
/// layer computes under the lock exactly once.
class WeightCache {
 public:
  /// Transformed-weight tensor handle: U[(oc*in_c + ic)*64 + e] in the
  /// internally transposed element orientation. Computes on first use.
  const float* get(const dnn::ConvDesc& d, const float* weights);

  /// Pre-transforms (the prepare step); afterwards forward passes only read.
  void prepare(const dnn::ConvDesc& d, const float* weights) {
    (void)get(d, weights);
  }

  /// Drops every cached transform (e.g. after mutating weights in tests).
  void clear();

  [[nodiscard]] std::size_t size() const;

 private:
  using Key = std::tuple<const float*, int, int>;  // (weights, in_c, out_c)
  mutable std::mutex mu_;
  std::map<Key, AlignedBuffer<float>> cache_;
};

}  // namespace vlacnn::winograd

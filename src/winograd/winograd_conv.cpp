#include "winograd/winograd_conv.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"
#include "winograd/f6x3.hpp"

namespace vlacnn::winograd {

namespace {
// Register allocation of the transform kernels: packed tile rows live in
// v0..v15 (v[half*8+row]), stage outputs in v16..v31, lane-compaction
// scratch in v30 is only used after outputs 16..29 are final.
constexpr vla::Vreg kStageOutBase = 16;
constexpr vla::Vreg kCompact = 30;
constexpr vla::Vreg kURow = 8;     // tuple multiply: U operand
constexpr vla::Vreg kVRowBase = 9; // tuple multiply: V operands (9..16)
}  // namespace

WinogradConv::WinogradConv(WeightCache* shared_cache) {
  if (shared_cache != nullptr) {
    cache_ = shared_cache;
  } else {
    owned_cache_ = std::make_unique<WeightCache>();
    cache_ = owned_cache_.get();
  }
  scratch_.push_back(std::make_unique<StageScratch>());
}

void WinogradConv::StageScratch::ensure(std::size_t vecw) {
  if (pack.size() < 16 * vecw) {
    pack_reg = {};
    pack.resize(16 * vecw);
    pack.fill(0.0f);
    pack_reg = sim::RegisteredRange(pack.data(), pack.size() * sizeof(float));
  }
  if (spill.size() < 16 * vecw) {
    spill_reg = {};
    spill.resize(16 * vecw);
    spill.fill(0.0f);
    spill_reg =
        sim::RegisteredRange(spill.data(), spill.size() * sizeof(float));
  }
  if (epi.size() < 4 * vecw) {
    epi_reg = {};
    epi.resize(4 * vecw);
    epi.fill(0.0f);
    epi_reg = sim::RegisteredRange(epi.data(), epi.size() * sizeof(float));
  }
}

vla::VectorEngine& WinogradConv::worker_engine(int w, unsigned vlen_bits) {
  return vla::ensure_worker_engine(worker_engines_, w, vlen_bits);
}

bool WinogradConv::supports(const dnn::ConvDesc& d) {
  return d.ksize == 3 && d.pad == 1 && (d.stride == 1 || d.stride == 2);
}

WinogradConv::Plan WinogradConv::make_plan(const dnn::ConvDesc& d) const {
  Plan p;
  VLACNN_ASSERT(d.stride == 1, "plans are built for the stride-1 kernel");
  p.tiles_x = (d.out_w() + kOutTile - 1) / kOutTile;
  p.tiles_y = (d.out_h() + kOutTile - 1) / kOutTile;
  p.tiles = p.tiles_x * p.tiles_y;
  return p;
}

WinogradConv::IndexTables WinogradConv::make_tables(const dnn::ConvDesc& d,
                                                    const Plan& plan) const {
  IndexTables t;
  const int g = plan.group;
  const auto vecw = static_cast<int>(plan.vecw);
  const int in_ch_stride = d.in_h * d.in_w;
  const int out_ch_stride = d.out_h() * d.out_w();
  const int tile_stride = plan.tiles * kTileElems;

  // Image gather for interior input tiles: lane (k,j) -> channel k, col j.
  t.in_pack_idx.resize(static_cast<std::size_t>(vecw));
  for (int k = 0; k < g; ++k)
    for (int j = 0; j < 4; ++j)
      t.in_pack_idx[static_cast<std::size_t>(k * 4 + j)] = k * in_ch_stride + j;

  // V scatter / M gather: lane (k,j) of packed row (h,i) -> element
  // e = i*8 + h*4 + j of channel k's tile t.
  t.chan_idx.resize(static_cast<std::size_t>(16) * vecw);
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 8; ++i)
      for (int k = 0; k < g; ++k)
        for (int j = 0; j < 4; ++j)
          t.chan_idx[(static_cast<std::size_t>(h * 8 + i)) * vecw + k * 4 + j] =
              k * tile_stride + i * 8 + h * 4 + j;

  // Transpose gather (between the two transform passes): packed transposed
  // row (h,j), lane (k,j') <- scratch row ((j/4)*8 + 4h+j'), lane (k, j%4).
  t.transpose_idx.resize(static_cast<std::size_t>(16) * vecw);
  for (int h = 0; h < 2; ++h)
    for (int j = 0; j < 8; ++j)
      for (int k = 0; k < g; ++k)
        for (int jp = 0; jp < 4; ++jp)
          t.transpose_idx[(static_cast<std::size_t>(h * 8 + j)) * vecw + k * 4 +
                          jp] =
              ((j / 4) * 8 + (4 * h + jp)) * vecw + k * 4 + (j % 4);

  // Output scatter, cols 0..3 (half 1) and the compacted cols 4..5.
  t.out_scatter1.resize(static_cast<std::size_t>(vecw));
  for (int k = 0; k < g; ++k)
    for (int j = 0; j < 4; ++j)
      t.out_scatter1[static_cast<std::size_t>(k * 4 + j)] =
          k * out_ch_stride + j;
  t.out_compact.resize(static_cast<std::size_t>(2) * g);
  t.out_scatter2.resize(static_cast<std::size_t>(2) * g);
  for (int l = 0; l < 2 * g; ++l) {
    t.out_compact[static_cast<std::size_t>(l)] = (l / 2) * 4 + (l % 2);
    t.out_scatter2[static_cast<std::size_t>(l)] =
        (l / 2) * out_ch_stride + 4 + (l % 2);
  }
  return t;
}

void WinogradConv::stage_pass(vla::VectorEngine& eng, const double (*t)[8],
                              int rows_out, std::size_t vecw) {
  eng.setvl(vecw);
  for (int half = 0; half < 2; ++half) {
    const int in_base = half * 8;
    const int out_base = kStageOutBase + half * 8;
    for (int r = 0; r < rows_out; ++r) {
      bool first = true;
      for (int k = 0; k < 8; ++k) {
        const auto c = static_cast<float>(t[r][k]);
        if (c == 0.0f) continue;  // exploit transform-matrix sparsity
        if (first) {
          eng.vmul_scalar(out_base + r, in_base + k, c);
          first = false;
        } else {
          eng.vfma_scalar(out_base + r, c, in_base + k);
        }
      }
      eng.scalar_ops(1);
    }
  }
}

void WinogradConv::transform_input(vla::VectorEngine& eng,
                                   const dnn::ConvDesc& d, const Plan& plan,
                                   const IndexTables& tbl, const float* input,
                                   StageScratch& sc, int ty_begin,
                                   int ty_end) {
  const int ch_stride = d.in_h * d.in_w;
  const auto vecw = plan.vecw;
  for (int ic0 = 0; ic0 < d.in_c; ic0 += plan.group) {
    const int gr = std::min(plan.group, d.in_c - ic0);
    const std::size_t active = static_cast<std::size_t>(4) * gr;
    for (int ty = ty_begin; ty < ty_end; ++ty) {
      for (int tx = 0; tx < plan.tiles_x; ++tx) {
        const int tile = ty * plan.tiles_x + tx;
        const int y0 = ty * kOutTile - d.pad;
        const int x0 = tx * kOutTile - d.pad;
        const bool interior = y0 >= 0 && x0 >= 0 && y0 + kTile <= d.in_h &&
                              x0 + kTile <= d.in_w;
        eng.setvl(active);
        eng.scalar_ops(4);  // tile/group loop bookkeeping
        if (interior) {
          // Structured tuple load: one 4-float run per channel (SVE ld4 +
          // interleave), not a per-element gather.
          for (int h = 0; h < 2; ++h)
            for (int i = 0; i < 8; ++i)
              eng.vgather_local(h * 8 + i,
                                input + static_cast<std::size_t>(ic0) * ch_stride +
                                    static_cast<std::size_t>(y0 + i) * d.in_w +
                                    x0 + 4 * h,
                                tbl.in_pack_idx.data());
        } else {
          // Edge tile: scalar zero-padded packing (Fig. 4's fallback path).
          for (int k = 0; k < gr; ++k) {
            const float* chan =
                input + static_cast<std::size_t>(ic0 + k) * ch_stride;
            for (int i = 0; i < 8; ++i) {
              const int y = y0 + i;
              for (int c = 0; c < 8; ++c) {
                const int x = x0 + c;
                const float v = (y >= 0 && y < d.in_h && x >= 0 && x < d.in_w)
                                    ? chan[static_cast<std::size_t>(y) * d.in_w + x]
                                    : 0.0f;
                sc.pack[((static_cast<std::size_t>(c) / 4) * 8 + i) * vecw +
                        static_cast<std::size_t>(k) * 4 + (c % 4)] = v;
              }
            }
            eng.scalar_ops(kTileElems);
            // Charge the (clipped) tile footprint read through the scalar path.
            const std::size_t off =
                static_cast<std::size_t>(std::max(y0, 0)) * d.in_w;
            const std::size_t avail =
                static_cast<std::size_t>(ch_stride) - std::min<std::size_t>(
                    off, static_cast<std::size_t>(ch_stride));
            eng.scalar_mem(chan + off,
                           std::min<std::size_t>(kTileElems * sizeof(float),
                                                 std::max<std::size_t>(avail, 1) *
                                                     sizeof(float)),
                           false);
          }
          for (int s = 0; s < 16; ++s)
            eng.vload(s, sc.pack.data() + static_cast<std::size_t>(s) * vecw);
        }

        stage_pass(eng, reinterpret_cast<const double(*)[8]>(kBT.data()), 8,
                   active);
        for (int s = 0; s < 16; ++s)
          eng.vstore(kStageOutBase + s,
                     sc.spill.data() + static_cast<std::size_t>(s) * vecw);
        for (int s = 0; s < 16; ++s)
          eng.vgather_local(s, sc.spill.data(),
                            tbl.transpose_idx.data() + static_cast<std::size_t>(s) * vecw);
        stage_pass(eng, reinterpret_cast<const double(*)[8]>(kBT.data()), 8,
                   active);

        float* v_base = v_buf_.data() +
                        (static_cast<std::size_t>(ic0) * plan.tiles + tile) *
                            kTileElems;
        for (int s = 0; s < 16; ++s)
          eng.vscatter_local(kStageOutBase + s, v_base,
                             tbl.chan_idx.data() + static_cast<std::size_t>(s) * vecw);
      }
    }
  }
}

void WinogradConv::tuple_multiply(vla::VectorEngine& eng,
                                  const dnn::ConvDesc& d, const Plan& plan,
                                  const float* u, int oc_begin, int oc_end) {
  // Vectorize across the 64 tuple elements (16 blocks x 4 elements, paper
  // §IV-B); register-unroll over 4 tiles to overlap the FMA chains. The
  // batched GEMM is cache-blocked over tiles so the V panel of a tile block
  // stays resident across the whole output-channel loop (NNPACK's tuple
  // GEMM blocking): otherwise V would re-stream from memory per output
  // channel, which is exactly the traffic Winograd exists to avoid.
  const std::size_t vec_e = std::min<std::size_t>(eng.vlmax(), kTileElems);
  // Eight accumulator chains hide the load-to-FMA latency (v0..v7 accs,
  // v8 = U, v9..v16 = V operands).
  constexpr int kTileUnroll = 8;
  // V panel for one block: in_c * kTileBlock * 64 floats; 16 tiles keep it
  // within a few hundred KB for the paper's layer widths.
  constexpr int kTileBlock = 16;

  for (int tb0 = 0; tb0 < plan.tiles; tb0 += kTileBlock) {
    const int tb_end = std::min(tb0 + kTileBlock, plan.tiles);
    for (std::size_t e0 = 0; e0 < kTileElems; e0 += vec_e) {
      for (int oc = oc_begin; oc < oc_end; ++oc) {
        const float* u_oc =
            u + static_cast<std::size_t>(oc) * d.in_c * kTileElems;
        float* m_oc = m_buf_.data() +
                      static_cast<std::size_t>(oc) * plan.tiles * kTileElems;
        for (int t0 = tb0; t0 < tb_end; t0 += kTileUnroll) {
          const int tn = std::min(kTileUnroll, tb_end - t0);
          eng.setvl(std::min(vec_e, kTileElems - e0));
          for (int tt = 0; tt < tn; ++tt) eng.vbroadcast(tt, 0.0f);
          for (int ic = 0; ic < d.in_c; ++ic) {
            eng.vload(kURow,
                      u_oc + static_cast<std::size_t>(ic) * kTileElems + e0);
            eng.scalar_ops(2);
            for (int tt = 0; tt < tn; ++tt) {
              eng.vload(kVRowBase + tt,
                        v_buf_.data() +
                            (static_cast<std::size_t>(ic) * plan.tiles + t0 +
                             tt) *
                                kTileElems +
                            e0);
              eng.vfma(tt, kURow, kVRowBase + tt);
            }
          }
          for (int tt = 0; tt < tn; ++tt)
            eng.vstore(tt, m_oc + (static_cast<std::size_t>(t0) + tt) *
                                       kTileElems +
                               e0);
          eng.scalar_ops(3);
        }
      }
    }
  }
}

void WinogradConv::transform_output(vla::VectorEngine& eng,
                                    const dnn::ConvDesc& d, const Plan& plan,
                                    const IndexTables& tbl, float* output,
                                    StageScratch& sc, int ty_begin,
                                    int ty_end, const dnn::EpilogueDesc* epi) {
  const int out_h = d.out_h(), out_w = d.out_w();
  const int ch_stride = out_h * out_w;
  const auto vecw = plan.vecw;
  // Fused epilogue registers: per-lane parameter vectors in v0..v3 (free
  // after the second stage pass consumes its inputs), leaky scratch in v4,
  // residual gather in v5.
  constexpr vla::Vreg kNegMean = 0, kInvStd = 1, kScale = 2, kBias = 3,
                      kEpiTmp = 4, kResTmp = 5;
  const float* residual = epi != nullptr ? epi->residual : nullptr;
  for (int oc0 = 0; oc0 < d.out_c; oc0 += plan.group) {
    const int gr = std::min(plan.group, d.out_c - oc0);
    const std::size_t active = static_cast<std::size_t>(4) * gr;
    if (epi != nullptr) {
      // Lane l of an output register holds channel oc0 + l/4: expand the
      // per-channel constants into per-lane vectors once per channel group.
      // The arithmetic per lane matches the unfused kernels op-for-op
      // (x + (-mean)) * inv_std * scale + bias, so fused outputs stay
      // bit-identical.
      float* pp = sc.epi.data();
      for (std::size_t l = 0; l < vecw; ++l) {
        const int ch = oc0 + std::min(static_cast<int>(l) / 4, gr - 1);
        const dnn::EpilogueDesc::ChannelParams p = epi->channel_params(ch);
        pp[l] = p.neg_mean;
        pp[vecw + l] = p.inv_std;
        pp[2 * vecw + l] = p.scale;
        pp[3 * vecw + l] = p.bias;
      }
      eng.scalar_ops(static_cast<std::uint64_t>(gr) * 4);
      if (epi->batch_norm) {
        eng.scalar_mem(epi->bn_mean + oc0, static_cast<std::size_t>(gr) * sizeof(float), false);
        eng.scalar_mem(epi->bn_var + oc0, static_cast<std::size_t>(gr) * sizeof(float), false);
        eng.scalar_mem(epi->bn_scale + oc0, static_cast<std::size_t>(gr) * sizeof(float), false);
      }
      if (epi->bias != nullptr)
        eng.scalar_mem(epi->bias + oc0, static_cast<std::size_t>(gr) * sizeof(float), false);
      eng.scalar_mem(pp, 4 * vecw * sizeof(float), true);
    }
    for (int ty = ty_begin; ty < ty_end; ++ty) {
      for (int tx = 0; tx < plan.tiles_x; ++tx) {
        const int tile = ty * plan.tiles_x + tx;
        eng.setvl(active);
        eng.scalar_ops(4);
        const float* m_base =
            m_buf_.data() +
            (static_cast<std::size_t>(oc0) * plan.tiles + tile) * kTileElems;
        for (int s = 0; s < 16; ++s)
          eng.vgather_local(s, m_base,
                            tbl.chan_idx.data() + static_cast<std::size_t>(s) * vecw);

        stage_pass(eng, reinterpret_cast<const double(*)[8]>(kAT.data()), 6,
                   active);
        for (int half = 0; half < 2; ++half)
          for (int r = 0; r < 6; ++r)
            eng.vstore(kStageOutBase + half * 8 + r,
                       sc.spill.data() +
                           (static_cast<std::size_t>(half) * 8 + r) * vecw);
        for (int s = 0; s < 16; ++s)
          eng.vgather_local(s, sc.spill.data(),
                            tbl.transpose_idx.data() + static_cast<std::size_t>(s) * vecw);
        stage_pass(eng, reinterpret_cast<const double(*)[8]>(kAT.data()), 6,
                   active);

        if (epi != nullptr) {
          // Apply BN/bias/activation on the final tile registers before the
          // scatter — the epilogue passes of ConvLayer::forward_item never
          // run, so the output tensor is streamed exactly once.
          eng.vload(kNegMean, sc.epi.data());
          eng.vload(kInvStd, sc.epi.data() + vecw);
          eng.vload(kScale, sc.epi.data() + 2 * vecw);
          eng.vload(kBias, sc.epi.data() + 3 * vecw);
          for (int half = 0; half < 2; ++half) {
            for (int r = 0; r < 6; ++r) {
              const vla::Vreg o = kStageOutBase + half * 8 + r;
              if (epi->batch_norm) {
                eng.vadd(o, o, kNegMean);
                eng.vmul(o, o, kInvStd);
                eng.vmul(o, o, kScale);
              }
              if (epi->bias != nullptr) eng.vadd(o, o, kBias);
              switch (epi->act) {
                case dnn::Activation::Linear:
                case dnn::Activation::Logistic:  // post-pass in the layer
                  break;
                case dnn::Activation::Relu:
                  eng.vmax_scalar(o, o, 0.0f);
                  break;
                case dnn::Activation::Leaky:  // max(x,0) + 0.1*min(x,0)
                  eng.vbroadcast(kEpiTmp, 0.0f);
                  eng.vmin(kEpiTmp, o, kEpiTmp);
                  eng.vmax_scalar(o, o, 0.0f);
                  eng.vfma_scalar(o, 0.1f, kEpiTmp);
                  break;
              }
            }
          }
          eng.scalar_ops(2);
        }

        const bool interior =
            ty * kOutTile + kOutTile <= out_h && tx * kOutTile + kOutTile <= out_w;
        if (interior) {
          for (int r = 0; r < 6; ++r) {
            const std::size_t off =
                static_cast<std::size_t>(oc0) * ch_stride +
                static_cast<std::size_t>(ty * kOutTile + r) * out_w +
                tx * kOutTile;
            float* base = output + off;
            if (residual != nullptr) {
              // Fused shortcut: the skip tensor shares the output layout, so
              // the addend lanes sit at the scatter indices — gather, add,
              // shortcut-activate, then scatter as usual.
              eng.vgather_local(kResTmp, residual + off,
                                tbl.out_scatter1.data());
              eng.vadd(kStageOutBase + r, kStageOutBase + r, kResTmp);
              dnn::apply_activation_reg(eng, epi->residual_act,
                                        kStageOutBase + r, kResTmp);
            }
            eng.vscatter_local(kStageOutBase + r, base, tbl.out_scatter1.data());
            eng.setvl(static_cast<std::size_t>(2) * gr);
            eng.vpermute(kCompact, kStageOutBase + 8 + r, tbl.out_compact.data());
            if (residual != nullptr) {
              eng.vgather_local(kResTmp, residual + off,
                                tbl.out_scatter2.data());
              eng.vadd(kCompact, kCompact, kResTmp);
              dnn::apply_activation_reg(eng, epi->residual_act, kCompact,
                                        kResTmp);
            }
            eng.vscatter_local(kCompact, base, tbl.out_scatter2.data());
            eng.setvl(active);
          }
        } else {
          // Edge output tile: stage registers -> pack buffer -> clipped
          // scalar unpack.
          for (int half = 0; half < 2; ++half)
            for (int r = 0; r < 6; ++r)
              eng.vstore(kStageOutBase + half * 8 + r,
                         sc.pack.data() +
                             (static_cast<std::size_t>(half) * 8 + r) * vecw);
          for (int k = 0; k < gr; ++k) {
            const std::size_t ch_off =
                static_cast<std::size_t>(oc0 + k) * ch_stride;
            float* chan = output + ch_off;
            const float* res_chan =
                residual != nullptr ? residual + ch_off : nullptr;
            for (int r = 0; r < 6; ++r) {
              const int y = ty * kOutTile + r;
              if (y >= out_h) break;
              for (int c = 0; c < 6; ++c) {
                const int x = tx * kOutTile + c;
                if (x >= out_w) break;
                float v =
                    sc.pack[((static_cast<std::size_t>(c) / 4) * 8 + r) * vecw +
                            static_cast<std::size_t>(k) * 4 + (c % 4)];
                if (res_chan != nullptr) {
                  // Scalar fused shortcut; activate_scalar matches the
                  // vector op sequence bit-for-bit (see activate_array).
                  v += res_chan[static_cast<std::size_t>(y) * out_w + x];
                  v = dnn::activate_scalar(v, epi->residual_act);
                }
                chan[static_cast<std::size_t>(y) * out_w + x] = v;
              }
            }
            eng.scalar_ops(36);
            if (res_chan != nullptr) {
              eng.scalar_ops(36);
              eng.scalar_mem(res_chan, 36 * sizeof(float), false);
            }
          }
          eng.scalar_mem(output, 36 * sizeof(float), true);
        }
      }
    }
  }
}

void WinogradConv::run(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                       const float* input, const float* weights,
                       float* output, const dnn::EpilogueDesc* epi) {
  VLACNN_REQUIRE(supports(d), "unsupported conv shape for Winograd");

  if (d.stride == 2) {
    // Dense stride-1 Winograd followed by 2x subsampling. The redundant
    // work is why the paper finds Winograd 1.4x slower than im2col+GEMM on
    // stride-2 layers (§VII-A). The epilogue fuses into the subsampling
    // pass (per-channel constants on the strided-load register), not into
    // the dense stage — only kept pixels pay for it.
    dnn::ConvDesc s1 = d;
    s1.stride = 1;
    const std::size_t dense =
        static_cast<std::size_t>(d.out_c) * s1.out_h() * s1.out_w();
    if (s1_out_.size() < dense) {
      s1_reg_ = {};
      s1_out_.resize(dense);
      s1_reg_ = sim::RegisteredRange(s1_out_.data(), dense * sizeof(float));
    }
    run(eng, s1, input, weights, s1_out_.data(), nullptr);
    const int ow = d.out_w(), oh = d.out_h(), s1w = s1.out_w();
    for (int oc = 0; oc < d.out_c; ++oc) {
      dnn::EpilogueDesc::ChannelParams p;
      if (epi != nullptr) {
        p = epi->channel_params(oc);
        if (epi->batch_norm) {
          eng.scalar_mem(epi->bn_mean + oc, sizeof(float), false);
          eng.scalar_mem(epi->bn_var + oc, sizeof(float), false);
          eng.scalar_mem(epi->bn_scale + oc, sizeof(float), false);
        }
        if (epi->bias != nullptr)
          eng.scalar_mem(epi->bias + oc, sizeof(float), false);
        eng.scalar_ops(3);
      }
      for (int y = 0; y < oh; ++y) {
        const float* src = s1_out_.data() +
                           (static_cast<std::size_t>(oc) * s1.out_h() + 2 * y) *
                               s1w;
        const std::size_t dst_off =
            (static_cast<std::size_t>(oc) * oh + y) * ow;
        float* dst = output + dst_off;
        for (int x = 0; x < ow;) {
          const auto vl =
              static_cast<int>(eng.setvl(static_cast<std::size_t>(ow - x)));
          eng.vload_strided(0, src + 2 * static_cast<std::size_t>(x), 2);
          if (epi != nullptr) {
            dnn::apply_channel_epilogue(eng, *epi, p, 0, 1);
            if (epi->residual != nullptr) {
              // Fused shortcut on the kept pixels: the skip tensor shares
              // the (subsampled) output layout, so the addend is a plain
              // unit-stride load at the destination offset.
              eng.vload(1, epi->residual + dst_off + x);
              eng.vadd(0, 0, 1);
              dnn::apply_activation_reg(eng, epi->residual_act, 0, 1);
            }
          }
          eng.vstore(0, dst + x);
          eng.scalar_ops(2);
          x += vl;
        }
      }
    }
    return;
  }

  Plan plan = make_plan(d);
  plan.group = static_cast<int>(std::clamp<std::size_t>(eng.vlmax() / 4, 1, 16));
  plan.group = std::min(plan.group, std::max(d.in_c, d.out_c));
  plan.vecw = static_cast<std::size_t>(4) * plan.group;

  const std::size_t v_n =
      static_cast<std::size_t>(d.in_c) * plan.tiles * kTileElems;
  const std::size_t m_n =
      static_cast<std::size_t>(d.out_c) * plan.tiles * kTileElems;
  if (v_buf_.size() < v_n) {
    v_reg_ = {};
    v_buf_.resize(v_n);
    v_reg_ = sim::RegisteredRange(v_buf_.data(), v_n * sizeof(float));
  }
  if (m_buf_.size() < m_n) {
    m_reg_ = {};
    m_buf_.resize(m_n);
    m_reg_ = sim::RegisteredRange(m_buf_.data(), m_n * sizeof(float));
  }
  scratch_[0]->ensure(plan.vecw);

  const IndexTables tbl = make_tables(d, plan);
  const float* u = cache_->get(d, weights);

  // Intra-op sharding: only functionally (the timing model is a single
  // instruction stream) and only when there is enough tile-level work to
  // cover the fork/join cost.
  const bool parallel = pool_ != nullptr && pool_->size() > 1 &&
                        eng.context() == nullptr && plan.tiles_y >= 2;
  if (!parallel) {
    transform_input(eng, d, plan, tbl, input, *scratch_[0], 0, plan.tiles_y);
    tuple_multiply(eng, d, plan, u, 0, d.out_c);
    transform_output(eng, d, plan, tbl, output, *scratch_[0], 0, plan.tiles_y,
                     epi);
    return;
  }

  // Materialize per-worker engines and scratch on this thread so AddressMap
  // registration order stays deterministic.
  const unsigned vlen = eng.vlen_bits();
  const int workers = pool_->size();
  for (int w = 0; w < workers; ++w) {
    worker_engine(w, vlen);
    if (scratch_.size() <= static_cast<std::size_t>(w) + 1)
      scratch_.push_back(std::make_unique<StageScratch>());
    scratch_[static_cast<std::size_t>(w) + 1]->ensure(plan.vecw);
  }

  // Worker traffic folds into the coordinating engine's counters after the
  // fan-outs.
  vla::WorkerTrafficFold traffic_fold;
  traffic_fold.snapshot(worker_engines_, workers);

  // Each worker transforms a contiguous range of tile rows into its slice
  // of V, multiplies a range of output channels into its slice of M, then
  // transforms its tile rows of the output — all writes are disjoint.
  pool_->parallel_for(plan.tiles_y, [&](int ty, int w) {
    transform_input(worker_engine(w, vlen), d, plan, tbl, input,
                    *scratch_[static_cast<std::size_t>(w) + 1], ty, ty + 1);
  });
  pool_->parallel_for(d.out_c, [&](int oc, int w) {
    tuple_multiply(worker_engine(w, vlen), d, plan, u, oc, oc + 1);
  });
  pool_->parallel_for(plan.tiles_y, [&](int ty, int w) {
    transform_output(worker_engine(w, vlen), d, plan, tbl, output,
                     *scratch_[static_cast<std::size_t>(w) + 1], ty, ty + 1,
                     epi);
  });
  traffic_fold.fold_into(eng, worker_engines_, workers);
}

}  // namespace vlacnn::winograd

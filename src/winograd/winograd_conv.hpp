#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "dnn/conv_desc.hpp"
#include "dnn/epilogue.hpp"
#include "sim/address_map.hpp"
#include "vla/vector_engine.hpp"
#include "winograd/weight_cache.hpp"

namespace vlacnn::runtime {
class ThreadPool;
}  // namespace vlacnn::runtime

namespace vlacnn::winograd {

/// VLA-vectorized Winograd F(6x6,3x3) convolution with the paper's
/// inter-tile parallelization across channels (§IV-B, Fig. 4/5).
///
/// Vectorizing an 8x8 tile transform alone cannot fill a long vector
/// register without growing the tile (which hurts numerical accuracy), so
/// the transforms process one row of the 8x8 tile from `VL/4` channels at
/// once: with a 512-bit register (16 fp32 lanes) a group of 4 channels fills
/// two registers per row (elements 0..3 in "buff1", 4..7 in "buff2"); a
/// 2048-bit register uses 16 channels. Tile transposes between the two
/// transform passes use gather loads from a small scratch buffer (the
/// store+gather formulation of §VII on RVV; SVE tuple transposes are
/// timing-equivalent here to within second order). The tuple multiplication
/// vectorizes across the 64 tuple elements — 16 blocks of 4 elements, which
/// is exactly one 2048-bit register (§IV-B).
///
/// The weight transform runs offline (scalar, uninstrumented) and is cached
/// per weight pointer in a WeightCache, matching the paper's measurement
/// protocol of excluding it from inference time (§VII-A). The cache may be
/// shared (read-only after a prepare step) between the per-thread instances
/// the batched runtime installs; all other state — V/M buffers and stage
/// scratch — is owned per instance, so one WinogradConv must only ever be
/// driven by one thread at a time.
///
/// With set_intra_op_pool(), the tile loops of the input/output transforms
/// and the output-channel loop of the tuple multiplication are sharded
/// across the pool (per-worker functional engines and stage scratch),
/// bitwise identical to the serial path. Used for the batch-1 latency case;
/// simulated (instrumented) runs always stay serial.
class WinogradConv {
 public:
  /// `shared_cache` may outlive-scope-share transformed weights between
  /// instances; nullptr gives the instance its own private cache.
  explicit WinogradConv(WeightCache* shared_cache = nullptr);

  /// True for the layers this algorithm handles: 3x3 kernels with pad 1 and
  /// stride 1 or 2 (stride 2 is computed as dense stride-1 Winograd followed
  /// by subsampling, which is why the paper measures it slower than GEMM).
  [[nodiscard]] static bool supports(const dnn::ConvDesc& d);

  /// Runs the convolution: output = conv(input, weights). With `epi`
  /// non-null the epilogue (BN / bias / activation) is fused into the
  /// output transform — applied on the stage registers right before the
  /// output scatter (stride-2: on the subsampling pass) instead of as
  /// separate passes re-streaming the output tensor. With a null `epi` the
  /// raw convolution is written and bias/BN/activation remain the caller's
  /// concern (the ConvLayer applies them afterwards).
  void run(vla::VectorEngine& eng, const dnn::ConvDesc& d, const float* input,
           const float* weights, float* output,
           const dnn::EpilogueDesc* epi = nullptr);

  /// Shards the intra-op loops across `pool` when running functionally.
  void set_intra_op_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  /// Drops cached transformed weights (e.g. after mutating weights in tests).
  void invalidate_weight_cache() { cache_->clear(); }

  [[nodiscard]] WeightCache& weight_cache() { return *cache_; }

  // ---- exposed for unit tests and benchmarks ----
  /// Transformed-weight tensor handle: U[(oc*in_c + ic)*64 + e] in the
  /// internally transposed element orientation.
  const float* transformed_weights(const dnn::ConvDesc& d,
                                   const float* weights) {
    return cache_->get(d, weights);
  }

 private:
  struct Plan {
    int tiles_x = 0, tiles_y = 0, tiles = 0;
    int group = 1;        ///< channels per inter-tile group
    std::size_t vecw = 4; ///< active vector width = 4*group
  };

  struct IndexTables {
    // All gather/scatter index vectors are per (half*8 + row).
    std::vector<std::int32_t> transpose_idx;   // 16 x vecw, from scratch
    std::vector<std::int32_t> chan_idx;        // 16 x vecw, V/M <-> tiles
    std::vector<std::int32_t> in_pack_idx;     // vecw, image gather
    std::vector<std::int32_t> out_scatter1;    // vecw, cols 0..3
    std::vector<std::int32_t> out_compact;     // 2*group, lane compaction
    std::vector<std::int32_t> out_scatter2;    // 2*group, cols 4..5
  };

  /// Per-driver stage scratch: the edge-tile pack buffer, the transpose
  /// spill buffer, and the per-lane epilogue parameter vectors. Index 0
  /// belongs to the serial path; intra-op workers each own one so
  /// concurrent tiles never share scribble space.
  struct StageScratch {
    AlignedBuffer<float> pack;     // 16 x vecw packed rows (edge tiles)
    AlignedBuffer<float> spill;    // 16 x vecw stage output
    AlignedBuffer<float> epi;      // 4 x vecw: -mean | inv_std | scale | bias
    sim::RegisteredRange pack_reg, spill_reg, epi_reg;

    void ensure(std::size_t vecw);
  };

  Plan make_plan(const dnn::ConvDesc& d) const;
  IndexTables make_tables(const dnn::ConvDesc& d, const Plan& plan) const;

  void transform_input(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                       const Plan& plan, const IndexTables& tbl,
                       const float* input, StageScratch& sc, int ty_begin,
                       int ty_end);
  void tuple_multiply(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                      const Plan& plan, const float* u, int oc_begin,
                      int oc_end);
  void transform_output(vla::VectorEngine& eng, const dnn::ConvDesc& d,
                        const Plan& plan, const IndexTables& tbl,
                        float* output, StageScratch& sc, int ty_begin,
                        int ty_end, const dnn::EpilogueDesc* epi);

  /// Applies one transform pass (row combinations of matrix `t`) to the 16
  /// packed input registers v0..v15, writing v16..v16+rows-1 / v24..
  void stage_pass(vla::VectorEngine& eng, const double (*t)[8], int rows_out,
                  std::size_t vecw);

  /// Worker engine / scratch for intra-op sharding (lazily created).
  vla::VectorEngine& worker_engine(int w, unsigned vlen_bits);

  AlignedBuffer<float> v_buf_;       // V[ic][tile][64]
  AlignedBuffer<float> m_buf_;       // M[oc][tile][64]
  AlignedBuffer<float> s1_out_;      // stride-2: dense stride-1 output
  sim::RegisteredRange v_reg_, m_reg_, s1_reg_;

  std::vector<std::unique_ptr<StageScratch>> scratch_;  // [0] = serial path
  std::vector<std::unique_ptr<vla::VectorEngine>> worker_engines_;

  WeightCache* cache_;
  std::unique_ptr<WeightCache> owned_cache_;
  runtime::ThreadPool* pool_ = nullptr;
};

}  // namespace vlacnn::winograd

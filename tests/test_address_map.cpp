// Deterministic host->simulated address translation.

#include <gtest/gtest.h>

#include <vector>

#include "sim/address_map.hpp"

namespace vlacnn::sim {
namespace {

class AddressMapTest : public ::testing::Test {
 protected:
  void SetUp() override { AddressMap::instance().reset(); }
  void TearDown() override { AddressMap::instance().reset(); }
};

TEST_F(AddressMapTest, RegisteredRangeTranslatesByOffset) {
  std::vector<float> buf(1024);
  const std::uint64_t base =
      AddressMap::instance().register_range(buf.data(), buf.size() * 4);
  EXPECT_EQ(AddressMap::instance().translate(buf.data()), base);
  EXPECT_EQ(AddressMap::instance().translate(buf.data() + 100), base + 400);
  AddressMap::instance().unregister_range(buf.data());
}

TEST_F(AddressMapTest, DistinctBuffersDoNotOverlap) {
  std::vector<float> a(256), b(256);
  const auto ba = AddressMap::instance().register_range(a.data(), 1024);
  const auto bb = AddressMap::instance().register_range(b.data(), 1024);
  // 4 KiB page rounding plus a guard page between allocations.
  EXPECT_GE(bb > ba ? bb - ba : ba - bb, 4096u);
  AddressMap::instance().unregister_range(a.data());
  AddressMap::instance().unregister_range(b.data());
}

TEST_F(AddressMapTest, SequentialAssignmentIsDeterministic) {
  // Two allocation "runs" with identical order must produce identical
  // simulated bases regardless of host pointer values.
  std::vector<float> a(64), b(64);
  const auto base_a1 = AddressMap::instance().register_range(a.data(), 256);
  const auto base_b1 = AddressMap::instance().register_range(b.data(), 256);
  AddressMap::instance().unregister_range(a.data());
  AddressMap::instance().unregister_range(b.data());
  AddressMap::instance().reset();

  std::vector<float> c(64), d(64);
  const auto base_a2 = AddressMap::instance().register_range(c.data(), 256);
  const auto base_b2 = AddressMap::instance().register_range(d.data(), 256);
  EXPECT_EQ(base_a1, base_a2);
  EXPECT_EQ(base_b1, base_b2);
  AddressMap::instance().unregister_range(c.data());
  AddressMap::instance().unregister_range(d.data());
}

TEST_F(AddressMapTest, UnregisteredPointerGetsStableScratchMapping) {
  float local[4];
  const auto t1 = AddressMap::instance().translate(&local[0]);
  const auto t2 = AddressMap::instance().translate(&local[0]);
  EXPECT_EQ(t1, t2);
  // Scratch region lives far away from registered space.
  EXPECT_GE(t1, 0x4000'0000'0000ULL);
}

TEST_F(AddressMapTest, RaiiRegistrationUnregistersOnDestruction) {
  std::vector<float> buf(128);
  {
    RegisteredRange reg(buf.data(), 512);
    EXPECT_EQ(AddressMap::instance().live_ranges(), 1u);
  }
  EXPECT_EQ(AddressMap::instance().live_ranges(), 0u);
}

TEST_F(AddressMapTest, RaiiMoveTransfersOwnership) {
  std::vector<float> buf(128);
  RegisteredRange a(buf.data(), 512);
  RegisteredRange b = std::move(a);
  EXPECT_EQ(AddressMap::instance().live_ranges(), 1u);
  RegisteredRange c;
  c = std::move(b);
  EXPECT_EQ(AddressMap::instance().live_ranges(), 1u);
}

}  // namespace
}  // namespace vlacnn::sim

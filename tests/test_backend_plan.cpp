// BackendPlan: the per-layer dispatch table behind EnginePolicy, the
// selector and the codesign advisor. Pins the refactor's core contracts —
// table-driven dispatch is bit-identical to the equivalent uniform policy
// across models/batch modes, and a plan-declined layer keeps its plan
// default backend, fused included (the historical apply_plan cleared
// fusion unconditionally; nothing may reintroduce that side effect).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "core/codesign.hpp"
#include "core/conv_engine.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "gemm/blocking.hpp"
#include "runtime/batch_scheduler.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

std::uint32_t ulp_diff(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

std::uint32_t max_ulp(const std::vector<float>& a,
                      const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, ulp_diff(a[i], b[i]));
  return m;
}

/// Batched forward of `net` through a scheduler built on `plan`.
std::vector<float> run_scheduled(dnn::Network& net, const BackendPlan& plan,
                                 int batch, int threads) {
  ConvolutionEngine engine(plan);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  runtime::BatchScheduler sched(engine, cfg);
  dnn::Tensor input(batch, net.in_c(), net.in_h(), net.in_w());
  input.randomize_batch(1234, 0.0f, 1.0f);
  const dnn::Tensor& out = sched.run(net, input);
  return {out.data(), out.data() + out.size()};
}

/// An explicit per-layer table naming, for every conv layer of `net`, the
/// backend the uniform `policy` would route it to — dispatch must then go
/// through the table-entry path instead of the fallback path.
BackendPlan tabulated(const dnn::Network& net, const EnginePolicy& policy) {
  const BackendPlan uni = BackendPlan::uniform(policy);
  BackendPlan plan = uni;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net.layer(i));
    if (conv == nullptr) continue;
    PlanEntry e;
    e.layer_index = static_cast<int>(i);
    e.layer_name = conv->name();
    e.shape_key = conv_shape_key(conv->desc());
    e.backend = uni.backend_for(conv->desc());
    plan.entries.push_back(std::move(e));
  }
  // Clear the Winograd fallback flags: a 3x3 dispatch that misses the table
  // would run the (numerically different) GEMM fallback and be caught. The
  // GEMM fallback itself stays — it also serves the FC layers' GEMV.
  plan.winograd_stride1 = plan.winograd_stride2 = false;
  return plan;
}

TEST(BackendPlan, TableDispatchBitIdenticalToUniformPolicy) {
  // Satellite contract: plan-driven dispatch == the equivalent uniform
  // EnginePolicy, bit for bit, across tiny/VGG models, batch 1 and batch 4
  // multi-threaded.
  struct Case {
    const char* tag;
    std::unique_ptr<dnn::Network> (*build)();
  };
  const Case cases[] = {
      {"tiny", [] { return dnn::build_yolov3_tiny(48, 12); }},
      {"vgg", [] { return dnn::build_vgg16(32, 6); }},
  };
  for (const auto& c : cases) {
    for (const auto& policy :
         {EnginePolicy::opt6loop(), EnginePolicy::fused(),
          EnginePolicy::fused(/*use_winograd=*/true)}) {
      auto net = c.build();
      const BackendPlan uniform = BackendPlan::uniform(policy);
      const BackendPlan table = tabulated(*net, policy);
      for (int threads : {1, 4}) {
        const int batch = threads == 1 ? 1 : 4;
        const auto a = run_scheduled(*net, uniform, batch, threads);
        const auto b = run_scheduled(*net, table, batch, threads);
        EXPECT_EQ(max_ulp(a, b), 0u)
            << c.tag << " threads=" << threads << " batch=" << batch;
      }
    }
  }
}

TEST(BackendPlan, DeclinedEntryKeepsFusedPlanDefault) {
  // Regression for the historical apply_plan fusion clear: an entry whose
  // backend cannot run the layer shape (Winograd on 1x1) must leave the
  // layer on the plan's default — here the fused implicit-GEMM — not
  // silently fall back to an unfused pipeline.
  dnn::ConvDesc d;
  d.in_c = 16;
  d.in_h = d.in_w = 14;
  d.out_c = 12;
  d.ksize = 1;
  d.stride = 1;
  d.pad = 0;
  d.batch_norm = true;
  d.act = dnn::Activation::Leaky;

  BackendPlan mixed = BackendPlan::uniform(EnginePolicy::fused());
  PlanEntry e;
  e.shape_key = conv_shape_key(d);
  e.backend = Backend::Winograd;  // ineligible for 1x1
  mixed.entries.push_back(e);
  ASSERT_EQ(mixed.backend_for(d), Backend::FusedGemm6);

  auto run = [&](const BackendPlan& plan, std::uint64_t* bytes) {
    dnn::ConvLayer layer(d, 5);
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(plan);
    engine.install(ctx);
    dnn::Tensor in(d.in_c, d.in_h, d.in_w);
    Rng rng(7);
    in.randomize(rng);
    layer.forward(ctx, {&in});
    *bytes = eng.mem_bytes_moved();
    return std::vector<float>(layer.output().data(),
                              layer.output().data() + layer.output().size());
  };

  std::uint64_t mixed_bytes = 0, fused_bytes = 0, unfused_bytes = 0;
  const auto got = run(mixed, &mixed_bytes);
  const auto fused = run(BackendPlan::uniform(EnginePolicy::fused()),
                         &fused_bytes);
  const auto unfused = run(BackendPlan::uniform(EnginePolicy::opt6loop()),
                           &unfused_bytes);
  EXPECT_EQ(max_ulp(got, fused), 0u);
  // Fused and unfused outputs are bit-identical by design, so the byte
  // counters are what prove the fused path actually ran.
  EXPECT_EQ(mixed_bytes, fused_bytes);
  EXPECT_LT(static_cast<double>(mixed_bytes),
            0.95 * static_cast<double>(unfused_bytes));
}

TEST(BackendPlan, SelectedPlanMatchesUniformFusedWhereFusedWins) {
  // Acceptance: select_per_layer simulates fused candidates; running the
  // returned plan through the BatchScheduler is bit-identical to the
  // matching EnginePolicy::fused() configuration on layers the fused
  // backend won.
  struct Shape {
    int in_c, hw, out_c, ksize, stride, pad;
  };
  // VGG-style body shapes: 3x3/s1 and the 1x1 head.
  const Shape shapes[] = {{16, 32, 16, 3, 1, 1}, {32, 16, 16, 1, 1, 0}};
  for (const Shape& s : shapes) {
    dnn::Network net(s.in_c, s.hw, s.hw, 11);
    net.add_conv(s.out_c, s.ksize, s.stride, s.pad, dnn::Activation::Leaky,
                 true);
    const BackendPlan plan = select_per_layer(net, sim::sve_gem5());
    ASSERT_EQ(plan.entries.size(), 1u);
    const Backend winner = plan.entries[0].backend;
    EXPECT_TRUE(backend_fuses(winner)) << to_string(winner);
    const EnginePolicy uniform =
        EnginePolicy::fused(winner == Backend::FusedWinograd);
    const auto planned = run_scheduled(net, plan, 4, 4);
    const auto direct =
        run_scheduled(net, BackendPlan::uniform(uniform), 4, 4);
    EXPECT_EQ(max_ulp(planned, direct), 0u) << to_string(winner);
  }
}

TEST(BackendPlan, SelectorPricesPackOnceAmortization) {
  // Satellite contract: select_per_layer must no longer charge the full
  // A-packing cost on every simulated call for weight-bound layers — it is
  // a one-time prepare() cost amortized over the micro-batch. Pins three
  // decisions: (1) a weight-bound shape's GEMM candidates get cheaper as
  // the pricing batch grows (the amortization is visible in the candidate
  // table), (2) the winning GEMM backend on a weight-bound shape carries
  // weight_resident, (3) an activation-bound shape does not.
  auto gemm6_cycles = [](const PlanEntry& e, Backend b) -> std::uint64_t {
    for (const auto& [cand, cycles] : e.candidates)
      if (cand == b) return cycles;
    ADD_FAILURE() << "candidate " << to_string(b) << " missing";
    return 0;
  };

  // Weight-bound (M=256 >= N=64), 1x1 so Winograd cannot shadow the
  // decision between the GEMM kinds.
  dnn::Network heavy(256, 8, 8, 21);
  heavy.add_conv(256, 1, 1, 0, dnn::Activation::Leaky, true);
  const BackendPlan plan1 = select_per_layer(heavy, sim::sve_gem5(), 7, 1);
  const BackendPlan plan8 = select_per_layer(heavy, sim::sve_gem5(), 7, 8);
  ASSERT_EQ(plan1.entries.size(), 1u);
  ASSERT_EQ(plan8.entries.size(), 1u);
  for (Backend b : {Backend::Gemm6, Backend::FusedGemm6}) {
    EXPECT_LT(gemm6_cycles(plan8.entries[0], b),
              gemm6_cycles(plan1.entries[0], b))
        << to_string(b);
  }
  EXPECT_TRUE(backend_fuses(plan8.entries[0].backend) ||
              plan8.entries[0].backend == Backend::Gemm6);
  EXPECT_TRUE(plan8.entries[0].weight_resident);
  EXPECT_TRUE(plan8.weight_resident_for(
      dynamic_cast<const dnn::ConvLayer&>(heavy.layer(0)).desc()));
  // FC layers batch-fuse under the selector plan's dedicated flag; the
  // conv fallback stays non-resident (an unseen shape could be
  // activation-bound — batch-fusing it would cost staging and batch
  // parallelism for nothing).
  EXPECT_TRUE(plan8.fc_weight_resident);
  EXPECT_FALSE(plan8.fallback_weight_resident);

  // Activation-bound (M=16 << N=1024): packing is amortized away just the
  // same, but the layer must NOT be marked weight-resident.
  dnn::Network light(16, 32, 32, 22);
  light.add_conv(16, 1, 1, 0, dnn::Activation::Leaky, true);
  const BackendPlan lplan = select_per_layer(light, sim::sve_gem5(), 7, 8);
  ASSERT_EQ(lplan.entries.size(), 1u);
  EXPECT_FALSE(lplan.entries[0].weight_resident);
  EXPECT_FALSE(lplan.weight_resident_for(
      dynamic_cast<const dnn::ConvLayer&>(light.layer(0)).desc()));

  // The resident plan serves bit-identically to its non-resident twin
  // (batch-fused dispatch changes traffic, never bits).
  BackendPlan nonresident = plan8;
  nonresident.entries[0].weight_resident = false;
  nonresident.fc_weight_resident = false;
  const auto a = run_scheduled(heavy, plan8, 4, 4);
  const auto b = run_scheduled(heavy, nonresident, 4, 4);
  EXPECT_EQ(max_ulp(a, b), 0u);
}

TEST(BackendPlan, CodesignAdvisorRunsPlans) {
  // The codesign advisor's plan-emitting form: a selected plan runs
  // simulated end to end and reports per-layer records named after the
  // plan's backends.
  auto net = dnn::build_yolov3(48, 4);
  const BackendPlan plan = select_per_layer(*net, sim::rvv_gem5());
  const RunResult r = run_simulated(*net, sim::rvv_gem5(), plan);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.layers.size(), net->num_layers());
  for (std::size_t i = 0; i < net->num_layers(); ++i) {
    const auto* conv = dynamic_cast<const dnn::ConvLayer*>(&net->layer(i));
    if (conv == nullptr) continue;
    EXPECT_EQ(r.layers[i].algo,
              std::string(to_string(plan.backend_for(conv->desc()))));
  }
}

TEST(BackendPlan, SummaryListsEntriesAndFallback) {
  BackendPlan plan = BackendPlan::uniform(EnginePolicy::fused(true));
  PlanEntry e;
  e.layer_index = 3;
  e.layer_name = "conv 64 3x3/1";
  e.backend = Backend::Direct;
  plan.entries.push_back(e);
  const std::string s = plan.summary();
  EXPECT_NE(s.find("direct"), std::string::npos);
  EXPECT_NE(s.find("fused-gemm6"), std::string::npos);
  EXPECT_NE(s.find("fused-winograd"), std::string::npos);
}

// The selector memoizes per (shape, format): yolov3's repeated
// 1x1-squeeze / 3x3-expand blocks must hit the memo, and memoized entries
// must carry identical verdicts to their first-seen twins. The counters
// are the regression pin — the memo existed before but its stats were
// never surfaced, so a silently-disabled memo was unobservable.
TEST(BackendPlan, SelectorShapeMemoReusedAcrossRepeatedLayers) {
  auto net = dnn::build_yolov3(48, 16);
  const sim::MachineConfig machine = sim::sve_gem5();
  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(machine);
  CostModel model(machine, o6);  // uncalibrated: memo behavior is scale-free
  SelectorStats stats;
  const BackendPlan plan = select_per_layer(
      *net, model.machine(), 7, 4, {}, CostSource::Analytic, &model, &stats);

  // yolov3 repeats its squeeze/expand shapes: strictly fewer unique shapes
  // than plan entries.
  EXPECT_GE(stats.memo_hits, 2u);
  EXPECT_GE(stats.memo_misses, 1u);
  EXPECT_EQ(stats.memo_hits + stats.memo_misses, plan.entries.size());
  EXPECT_LT(stats.memo_misses, plan.entries.size());
  EXPECT_GT(stats.plan_compute_us, 0u);
  std::uint64_t wins = 0;
  for (const auto& w : stats.wins) wins += w;
  EXPECT_EQ(wins, plan.entries.size());

  // Memoized entries repeat the original verdict verbatim.
  for (std::size_t i = 0; i < plan.entries.size(); ++i)
    for (std::size_t j = i + 1; j < plan.entries.size(); ++j)
      if (plan.entries[i].shape_key == plan.entries[j].shape_key) {
        EXPECT_EQ(plan.entries[i].backend, plan.entries[j].backend);
        EXPECT_EQ(plan.entries[i].cycles, plan.entries[j].cycles);
        EXPECT_EQ(plan.entries[i].weight_resident,
                  plan.entries[j].weight_resident);
      }
}

}  // namespace
}  // namespace vlacnn::core

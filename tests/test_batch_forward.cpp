// Batch equivalence: a batched forward pass must match N independent
// batch-1 forwards bit-for-bit (0 ulp, functional engine), both through the
// sequential Network::forward loop and through the multi-threaded
// runtime::BatchScheduler. This is the core contract of the batched runtime:
// batching and scheduling change *when and where* items run, never *what*
// they compute.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"
#include "test_util.hpp"

namespace vlacnn::runtime {
namespace {

constexpr unsigned kVlen = 512;
constexpr std::uint64_t kInputSeed = 2024;

/// Reference: item `b` forwarded alone through a batch-1 pass.
std::vector<float> forward_single(dnn::Network& net,
                                  const core::EnginePolicy& policy, int b) {
  vla::VectorEngine eng(kVlen);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(policy);
  engine.install(ctx);
  dnn::Tensor input(net.in_c(), net.in_h(), net.in_w());
  // Stream b of the batched input's seed: the batch-1 tensor holds exactly
  // the values item b of the batched tensor holds.
  Rng rng = Rng::for_stream(kInputSeed, static_cast<std::uint64_t>(b));
  input.randomize(rng, 0.0f, 1.0f);
  const dnn::Tensor& out = net.forward(ctx, input);
  return std::vector<float>(out.data(), out.data() + out.size());
}

dnn::Tensor batched_input(const dnn::Network& net, int n) {
  dnn::Tensor input(n, net.in_c(), net.in_h(), net.in_w());
  input.randomize_batch(kInputSeed, 0.0f, 1.0f);
  return input;
}

void expect_items_bitwise_equal(
    const dnn::Tensor& batched,
    const std::vector<std::vector<float>>& singles) {
  ASSERT_EQ(static_cast<std::size_t>(batched.n()), singles.size());
  for (int b = 0; b < batched.n(); ++b) {
    ASSERT_EQ(batched.item_size(), singles[static_cast<std::size_t>(b)].size());
    // 0 ulp: bytewise identical.
    EXPECT_EQ(std::memcmp(batched.item_data(b),
                          singles[static_cast<std::size_t>(b)].data(),
                          batched.item_size() * sizeof(float)),
              0)
        << "batch item " << b << " diverged from its batch-1 forward";
  }
}

void check_sequential(dnn::Network& net, const core::EnginePolicy& policy,
                      int n) {
  std::vector<std::vector<float>> singles;
  for (int b = 0; b < n; ++b) singles.push_back(forward_single(net, policy, b));

  vla::VectorEngine eng(kVlen);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(policy);
  engine.install(ctx);
  const dnn::Tensor input = batched_input(net, n);
  const dnn::Tensor& out = net.forward(ctx, input);
  expect_items_bitwise_equal(out, singles);
}

void check_scheduled(dnn::Network& net, const core::EnginePolicy& policy,
                     int n, int threads) {
  std::vector<std::vector<float>> singles;
  for (int b = 0; b < n; ++b) singles.push_back(forward_single(net, policy, b));

  core::ConvolutionEngine engine(policy);
  SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.vlen_bits = kVlen;
  BatchScheduler sched(engine, cfg);
  const dnn::Tensor input = batched_input(net, n);
  const dnn::Tensor& out = sched.run(net, input);
  expect_items_bitwise_equal(out, singles);

  // Every batch item was executed exactly once per layer.
  ASSERT_EQ(sched.records().size(), net.num_layers());
  for (const auto& rec : sched.records()) EXPECT_EQ(rec.items, n);
}

TEST(BatchForward, VggCutSequentialMatchesBatch1) {
  auto net = dnn::build_vgg16(32, 4);
  check_sequential(*net, core::EnginePolicy::opt3loop(), 3);
}

TEST(BatchForward, VggCutSequentialMatchesBatch1Winograd) {
  auto net = dnn::build_vgg16(32, 4);
  check_sequential(*net, core::EnginePolicy::winograd(), 3);
}

TEST(BatchForward, YoloCutSequentialMatchesBatch1) {
  auto net = dnn::build_yolov3(96, 12);
  check_sequential(*net, core::EnginePolicy::opt3loop(), 3);
}

TEST(BatchForward, VggCutScheduledMatchesBatch1) {
  auto net = dnn::build_vgg16(32, 4);
  check_scheduled(*net, core::EnginePolicy::opt3loop(), 5, 4);
}

TEST(BatchForward, VggCutScheduledMatchesBatch1Winograd) {
  auto net = dnn::build_vgg16(32, 4);
  check_scheduled(*net, core::EnginePolicy::winograd(), 5, 4);
}

TEST(BatchForward, YoloCutScheduledMatchesBatch1) {
  auto net = dnn::build_yolov3(96, 12);
  check_scheduled(*net, core::EnginePolicy::opt3loop(), 5, 4);
}

TEST(BatchForward, YoloCutScheduledMatchesBatch1Opt6) {
  // Opt6 exercises the per-context packed-buffer GEMM under concurrency.
  auto net = dnn::build_yolov3(96, 12);
  gemm::Opt6Config o6;
  o6.blocks = {16, 128, 64};
  check_scheduled(*net, core::EnginePolicy::opt6loop(o6), 5, 4);
}

TEST(BatchForward, SchedulerHandlesBatch1AndOddBatches) {
  auto net = dnn::build_vgg16(32, 4);
  for (int n : {1, 2, 7}) {
    check_scheduled(*net, core::EnginePolicy::opt3loop(), n, 3);
  }
}

TEST(BatchForward, FullTinyYoloScheduledEndToEnd) {
  auto net = dnn::build_yolov3_tiny(96);
  core::ConvolutionEngine engine(core::EnginePolicy::opt3loop());
  SchedulerConfig cfg;
  cfg.threads = 4;
  cfg.vlen_bits = kVlen;
  BatchScheduler sched(engine, cfg);
  dnn::Tensor input(6, net->in_c(), net->in_h(), net->in_w());
  input.randomize_batch(kInputSeed, 0.0f, 1.0f);
  const dnn::Tensor& out = sched.run(*net, input);
  EXPECT_EQ(out.n(), 6);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_TRUE(std::isfinite(out[i]));
}

}  // namespace
}  // namespace vlacnn::runtime

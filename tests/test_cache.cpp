// Set-associative cache model: geometry, LRU replacement, write-back
// accounting, prefetch fills, and capacity/conflict behaviour.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cache.hpp"

namespace vlacnn::sim {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return CacheConfig{512, 2, 64, 4};
}

TEST(Cache, ColdMissThenHit) {
  CacheModel c(small_cache());
  EXPECT_EQ(c.access(0x1000, false), AccessResult::Miss);
  EXPECT_EQ(c.access(0x1000, false), AccessResult::Hit);
  EXPECT_EQ(c.access(0x1020, false), AccessResult::Hit);  // same line
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsOldestWay) {
  CacheModel c(small_cache());
  // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
  c.access(0x0000, false);
  c.access(0x0100, false);
  c.access(0x0000, false);  // touch A again; B is now LRU
  EXPECT_EQ(c.access(0x0200, false), AccessResult::Miss);  // evicts B
  EXPECT_EQ(c.access(0x0000, false), AccessResult::Hit);   // A survives
  EXPECT_EQ(c.access(0x0100, false), AccessResult::Miss);  // B was evicted
}

TEST(Cache, WritebackOnlyForDirtyLines) {
  CacheModel c(small_cache());
  c.access(0x0000, true);   // dirty
  c.access(0x0100, false);  // clean
  c.access(0x0200, false);  // evicts dirty 0x0000 (LRU)
  c.access(0x0300, false);  // evicts clean 0x0100
  EXPECT_EQ(c.stats().evictions, 2u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CapacityHoldsExactlyItsSize) {
  CacheConfig cfg{64 * 1024, 8, 64, 4};
  CacheModel c(cfg);
  const int lines = static_cast<int>(cfg.size_bytes / cfg.line_bytes);
  for (int i = 0; i < lines; ++i) c.access(static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_EQ(c.stats().misses, static_cast<std::uint64_t>(lines));
  // Second sweep over the same footprint: fully resident.
  for (int i = 0; i < lines; ++i) c.access(static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_EQ(c.stats().misses, static_cast<std::uint64_t>(lines));
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(Cache, StreamLargerThanCapacityAlwaysMisses) {
  CacheConfig cfg{4096, 4, 64, 4};
  CacheModel c(cfg);
  const int lines = 4 * static_cast<int>(cfg.size_bytes / cfg.line_bytes);
  for (int rep = 0; rep < 2; ++rep)
    for (int i = 0; i < lines; ++i)
      c.access(static_cast<std::uint64_t>(i) * 64, false);
  // Cyclic sweep of 4x capacity under LRU: every access misses.
  EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Cache, PrefetchFillMakesDemandHit) {
  CacheModel c(small_cache());
  EXPECT_TRUE(c.prefetch_fill(0x4000));
  EXPECT_FALSE(c.prefetch_fill(0x4000));  // already resident
  EXPECT_EQ(c.access(0x4000, false), AccessResult::Hit);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, ContainsReflectsResidency) {
  CacheModel c(small_cache());
  EXPECT_FALSE(c.contains(0x2000));
  c.access(0x2000, false);
  EXPECT_TRUE(c.contains(0x2000));
  EXPECT_TRUE(c.contains(0x203F));   // same line
  EXPECT_FALSE(c.contains(0x2040));  // next line
}

TEST(Cache, ResetClearsStateAndStats) {
  CacheModel c(small_cache());
  c.access(0x0, true);
  c.reset();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_FALSE(c.contains(0x0));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel(CacheConfig{500, 2, 64, 4}), InvalidArgument);
  EXPECT_THROW(CacheModel(CacheConfig{512, 2, 63, 4}), InvalidArgument);
  EXPECT_THROW(CacheModel(CacheConfig{512, 0, 64, 4}), InvalidArgument);
}

TEST(Cache, PaperGeometriesConstruct) {
  // Table I: 64 kB 4-way L1; L2 from 1 MB 8-way up to 256 MB; A64FX 8 MB
  // 16-way with 256 B lines.
  CacheModel l1(CacheConfig{64 * 1024, 4, 64, 4});
  CacheModel l2(CacheConfig{1024 * 1024, 8, 64, 12});
  CacheModel big(CacheConfig{256ull * 1024 * 1024, 8, 64, 12});
  CacheModel a64(CacheConfig{8 * 1024 * 1024, 16, 256, 40});
  EXPECT_EQ(l1.config().num_sets(), 256u);
  EXPECT_EQ(a64.config().num_sets(), 2048u);
}

}  // namespace
}  // namespace vlacnn::sim

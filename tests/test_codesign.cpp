// Co-design study runner: the simulated trends the paper's figures rely on
// must emerge from the model (longer VL faster at fixed cache; larger L2
// not slower; determinism; stats plumbing).

#include <gtest/gtest.h>

#include "core/codesign.hpp"
#include "dnn/models.hpp"

namespace vlacnn::core {
namespace {

// Small workload keeping each simulated run fast.
std::unique_ptr<dnn::Network> tiny_workload() {
  return dnn::build_yolov3(48, 4);
}

TEST(Codesign, RunProducesPopulatedResult) {
  auto net = tiny_workload();
  const RunResult r =
      run_simulated(*net, sim::rvv_gem5(), EnginePolicy::opt3loop());
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.total_flops, 0.0);
  EXPECT_GT(r.vector_instructions, 0u);
  EXPECT_GT(r.l2_accesses, 0u);
  EXPECT_EQ(r.layers.size(), net->num_layers());
  EXPECT_EQ(r.machine, "riscv-vector-gem5");
}

TEST(Codesign, DeterministicAcrossRuns) {
  auto net1 = tiny_workload();
  const RunResult a =
      run_simulated(*net1, sim::rvv_gem5(), EnginePolicy::opt3loop());
  auto net2 = tiny_workload();
  const RunResult b =
      run_simulated(*net2, sim::rvv_gem5(), EnginePolicy::opt3loop());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.vector_instructions, b.vector_instructions);
}

TEST(Codesign, LongerVectorsFasterAtFixedCache) {
  // Fig. 6 headline: 512-bit -> long vectors speeds up the conv layers.
  auto net = tiny_workload();
  const auto short_vl = run_simulated(*net, sim::rvv_gem5().with_vlen(512),
                                      EnginePolicy::opt3loop());
  const auto long_vl = run_simulated(*net, sim::rvv_gem5().with_vlen(4096),
                                     EnginePolicy::opt3loop());
  EXPECT_LT(long_vl.cycles, short_vl.cycles);
}

TEST(Codesign, LargerL2NeverSlower) {
  auto net = tiny_workload();
  const auto cfg = sim::rvv_gem5().with_vlen(2048);
  const auto small =
      run_simulated(*net, cfg.with_l2_size(256 * 1024), EnginePolicy::opt3loop());
  const auto big = run_simulated(*net, cfg.with_l2_size(8 << 20),
                                 EnginePolicy::opt3loop());
  EXPECT_LE(big.cycles, small.cycles);
  EXPECT_LE(big.l2_miss_rate, small.l2_miss_rate + 1e-9);
}

TEST(Codesign, MoreLanesNeverSlower) {
  auto net = tiny_workload();
  const auto cfg = sim::rvv_gem5().with_vlen(8192);
  const auto lanes2 =
      run_simulated(*net, cfg.with_lanes(2), EnginePolicy::opt3loop());
  const auto lanes8 =
      run_simulated(*net, cfg.with_lanes(8), EnginePolicy::opt3loop());
  EXPECT_LE(lanes8.cycles, lanes2.cycles);
}

TEST(Codesign, AvgVectorLengthNearlyFullAtLongVl) {
  // Table III: granted VL stays close to the hardware VL (tails only).
  auto net = tiny_workload();
  const auto r = run_simulated(*net, sim::rvv_gem5().with_vlen(1024),
                               EnginePolicy::opt3loop());
  EXPECT_GT(r.avg_vl_bits, 1024.0 * 0.85);
  EXPECT_LE(r.avg_vl_bits, 1024.0 + 1e-6);
}

TEST(Codesign, MissRateGrowsWithVectorLength) {
  // Table III: L2 miss rate increases with VL at fixed 1 MB L2.
  auto net = dnn::build_yolov3(64, 8);
  const auto short_vl = run_simulated(*net, sim::rvv_gem5().with_vlen(512),
                                      EnginePolicy::opt3loop());
  const auto long_vl = run_simulated(*net, sim::rvv_gem5().with_vlen(8192),
                                     EnginePolicy::opt3loop());
  EXPECT_GE(long_vl.l2_miss_rate, short_vl.l2_miss_rate);
}

TEST(Codesign, OptimizedBeatsNaiveByALot) {
  // §VI-A: vectorized+optimized im2col+GEMM is an order of magnitude
  // faster than the scalar baseline.
  auto net = dnn::build_yolov3_tiny(48, 5);
  const auto naive =
      run_simulated(*net, sim::rvv_gem5(), EnginePolicy::naive());
  const auto opt =
      run_simulated(*net, sim::rvv_gem5(), EnginePolicy::opt3loop());
  EXPECT_GT(static_cast<double>(naive.cycles) / static_cast<double>(opt.cycles),
            5.0);
}

TEST(Codesign, NativeRunReturnsWallClock) {
  auto net = tiny_workload();
  const double secs = run_native(*net, 512, EnginePolicy::opt3loop());
  EXPECT_GT(secs, 0.0);
  EXPECT_LT(secs, 60.0);
}

TEST(Codesign, ConvCyclesDominant) {
  auto net = tiny_workload();
  const auto r =
      run_simulated(*net, sim::rvv_gem5(), EnginePolicy::opt3loop());
  EXPECT_GT(static_cast<double>(conv_cycles(r)),
            0.7 * static_cast<double>(r.cycles));
}

TEST(Codesign, WinogradPolicyRunsSimulated) {
  auto net = dnn::build_vgg16(24, 2);
  const auto r = run_simulated(*net, sim::sve_gem5().with_vlen(512),
                               EnginePolicy::winograd());
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.machine, "arm-sve-gem5");
}

}  // namespace
}  // namespace vlacnn::core

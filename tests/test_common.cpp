// Common utilities: deterministic RNG, aligned buffers, table printer, CLI,
// latency percentiles.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/cli.hpp"
#include "common/percentile.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace vlacnn {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, FloatsInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = r.next_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const float f = r.uniform(-2.5f, 7.5f);
    ASSERT_GE(f, -2.5f);
    ASSERT_LT(f, 7.5f);
  }
}

TEST(Rng, NormalHasSaneMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(1.0f, 2.0f);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 256, 0u);
}

TEST(AlignedBuffer, FillAndCopy) {
  AlignedBuffer<float> buf(64, 3.5f);
  for (auto v : buf) ASSERT_EQ(v, 3.5f);
  AlignedBuffer<float> copy = buf;
  copy[0] = -1.0f;
  EXPECT_EQ(buf[0], 3.5f);
  EXPECT_EQ(copy[0], -1.0f);
}

TEST(AlignedBuffer, MoveLeavesSourceEmpty) {
  AlignedBuffer<float> buf(16, 1.0f);
  AlignedBuffer<float> moved = std::move(buf);
  EXPECT_EQ(moved.size(), 16u);
  EXPECT_TRUE(buf.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, ZeroSize) {
  AlignedBuffer<float> buf(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render("caption");
  EXPECT_NE(s.find("caption"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_EQ(percentile(std::vector<double>{}, 0.0), 0.0);
  EXPECT_EQ(percentile(std::vector<double>{}, 1.0), 0.0);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  // rank 0.5 * 3 = 1.5 -> halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  // rank 0.25 * 3 = 0.75 -> 10 + 0.75 * (20 - 10).
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 17.5);
  // rank 1/3 * 3 = 1 lands exactly on the second order statistic.
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20.0);
}

TEST(Percentile, SortsUnsortedInput) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  const std::vector<double> shuffled{40.0, 10.0, 30.0, 20.0};
  for (double p : {0.0, 0.25, 0.5, 0.9, 1.0})
    EXPECT_DOUBLE_EQ(percentile(shuffled, p), percentile(sorted, p)) << p;
}

TEST(Percentile, RejectsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW((void)percentile(v, -0.1), InvalidArgument);
  EXPECT_THROW((void)percentile(v, 1.1), InvalidArgument);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--vlen=1024", "--verbose", "pos1",
                        "--scale=0.5"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("vlen", 0), 1024);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

}  // namespace
}  // namespace vlacnn

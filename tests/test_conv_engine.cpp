// Algorithm-selection policy compiled to a BackendPlan: which layers go to
// which backend, and what install() wires into a context.

#include <gtest/gtest.h>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

dnn::ConvDesc desc_of(int k, int s, int pad) {
  dnn::ConvDesc d;
  d.in_c = 4;
  d.in_h = d.in_w = 16;
  d.out_c = 4;
  d.ksize = k;
  d.stride = s;
  d.pad = pad;
  return d;
}

Backend routed(const EnginePolicy& policy, const dnn::ConvDesc& d) {
  return BackendPlan::uniform(policy).backend_for(d);
}

TEST(ConvEngine, WinogradPolicySelects3x3Stride1) {
  const EnginePolicy p = EnginePolicy::winograd();
  EXPECT_EQ(routed(p, desc_of(3, 1, 1)), Backend::Winograd);
  EXPECT_EQ(routed(p, desc_of(1, 1, 0)), Backend::Gemm6);  // 1x1 -> GEMM
  // stride-2 off by default
  EXPECT_EQ(routed(p, desc_of(3, 2, 1)), Backend::Gemm6);
}

TEST(ConvEngine, Stride2OptIn) {
  EnginePolicy p = EnginePolicy::winograd();
  p.winograd_stride2 = true;
  EXPECT_EQ(routed(p, desc_of(3, 2, 1)), Backend::Winograd);
}

TEST(ConvEngine, UniformPlansMapPolicyGemmVariants) {
  EXPECT_EQ(routed(EnginePolicy::naive(), desc_of(3, 1, 1)), Backend::Naive);
  EXPECT_EQ(routed(EnginePolicy::opt3loop(), desc_of(3, 1, 1)),
            Backend::Gemm3);
  EXPECT_EQ(routed(EnginePolicy::opt6loop(), desc_of(3, 1, 1)),
            Backend::Gemm6);
}

TEST(ConvEngine, InstallWiresDispatchAndGemm) {
  for (const auto& p : {EnginePolicy::naive(), EnginePolicy::opt3loop(),
                        EnginePolicy::opt6loop(), EnginePolicy::winograd(),
                        EnginePolicy::fused()}) {
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(p);
    engine.install(ctx);
    EXPECT_TRUE(static_cast<bool>(ctx.conv_backend));
    EXPECT_TRUE(static_cast<bool>(ctx.conv_label));
    EXPECT_TRUE(static_cast<bool>(ctx.gemm));
  }
}

TEST(ConvEngine, NaivePolicyDisablesAuxVectorization) {
  EXPECT_FALSE(EnginePolicy::naive().vectorize_aux);
  EXPECT_TRUE(EnginePolicy::opt3loop().vectorize_aux);
}

TEST(ConvEngine, PolicyFactoriesCarryParameters) {
  EXPECT_EQ(EnginePolicy::opt3loop(24).opt3.unroll_factor, 24);
  gemm::Opt6Config o6;
  o6.blocks = {32, 512, 128};
  EXPECT_EQ(EnginePolicy::opt6loop(o6).opt6.blocks.block_m, 32);
  EXPECT_EQ(EnginePolicy::winograd().gemm_variant,
            gemm::GemmVariant::Opt6Loop);
  EXPECT_EQ(BackendPlan::uniform(EnginePolicy::opt6loop(o6)).opt6.blocks.block_m,
            32);
}

TEST(ConvEngine, FusedPolicyRoutesToFusedBackends) {
  const EnginePolicy p = EnginePolicy::fused();
  EXPECT_EQ(routed(p, desc_of(1, 1, 0)), Backend::FusedGemm6);
  EXPECT_EQ(routed(p, desc_of(3, 1, 1)), Backend::FusedGemm6);  // wino off
  const EnginePolicy pw = EnginePolicy::fused(/*use_winograd=*/true);
  EXPECT_EQ(routed(pw, desc_of(3, 1, 1)), Backend::FusedWinograd);
  EXPECT_EQ(routed(pw, desc_of(1, 1, 0)), Backend::FusedGemm6);
}

TEST(ConvEngine, ConvLabelNamesThePlannedBackend) {
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(EnginePolicy::fused(/*use_winograd=*/true));
  engine.install(ctx);
  EXPECT_STREQ(ctx.conv_label(desc_of(3, 1, 1)), "fused-winograd");
  EXPECT_STREQ(ctx.conv_label(desc_of(1, 1, 0)), "fused-gemm6");
}

TEST(ConvEngine, DispatchRunsThePlannedBackend) {
  // A plan entry routes its shape; RanFused means the epilogue was applied
  // in-kernel, Ran means the layer still owes the post-passes.
  const dnn::ConvDesc d = desc_of(3, 1, 1);
  auto status_of = [&](Backend b) {
    BackendPlan plan;
    PlanEntry e;
    e.shape_key = conv_shape_key(d);
    e.backend = b;
    plan.entries.push_back(e);
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(plan);
    engine.install(ctx);
    auto input = test::random_vec(
        static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 1);
    auto weights =
        test::random_vec(static_cast<std::size_t>(d.weight_count()), 2);
    std::vector<float> out(
        static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w());
    dnn::EpilogueDesc epi;
    return ctx.conv_backend(ctx, d, input.data(), weights.data(), out.data(),
                            epi);
  };
  EXPECT_EQ(status_of(Backend::Winograd), dnn::ConvStatus::Ran);
  EXPECT_EQ(status_of(Backend::FusedWinograd), dnn::ConvStatus::RanFused);
  EXPECT_EQ(status_of(Backend::Direct), dnn::ConvStatus::Ran);
  EXPECT_EQ(status_of(Backend::Gemm6), dnn::ConvStatus::Ran);
  EXPECT_EQ(status_of(Backend::FusedGemm6), dnn::ConvStatus::RanFused);
}

TEST(ConvEngine, FusedGemmWithPackingDisabledRunsUnfusedNotDeclined) {
  // The regression the BackendPlan refactor pins: a fused entry that cannot
  // fuse (pack_b off) must run its unfused twin, never bounce the layer to
  // a different pipeline.
  const dnn::ConvDesc d = desc_of(3, 1, 1);
  BackendPlan plan = BackendPlan::uniform(EnginePolicy::fused());
  plan.opt6.pack_b = false;
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(plan);
  engine.install(ctx);
  auto input = test::random_vec(
      static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 1);
  auto weights =
      test::random_vec(static_cast<std::size_t>(d.weight_count()), 2);
  std::vector<float> out(
      static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w());
  dnn::EpilogueDesc epi;
  EXPECT_EQ(ctx.conv_backend(ctx, d, input.data(), weights.data(), out.data(),
                             epi),
            dnn::ConvStatus::Ran);
}

}  // namespace
}  // namespace vlacnn::core

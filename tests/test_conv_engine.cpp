// Algorithm-selection policy: which layers go to Winograd, which fall back.

#include <gtest/gtest.h>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

dnn::ConvDesc desc_of(int k, int s, int pad) {
  dnn::ConvDesc d;
  d.in_c = 4;
  d.in_h = d.in_w = 16;
  d.out_c = 4;
  d.ksize = k;
  d.stride = s;
  d.pad = pad;
  return d;
}

bool override_taken(const EnginePolicy& policy, const dnn::ConvDesc& d) {
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(policy);
  engine.install(ctx);
  if (!ctx.conv_override) return false;
  auto input = test::random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 1);
  auto weights = test::random_vec(static_cast<std::size_t>(d.weight_count()), 2);
  std::vector<float> out(static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w());
  return ctx.conv_override(eng, d, input.data(), weights.data(), out.data(),
                           nullptr) != dnn::ConvStatus::Declined;
}

TEST(ConvEngine, WinogradPolicySelects3x3Stride1) {
  const EnginePolicy p = EnginePolicy::winograd();
  EXPECT_TRUE(override_taken(p, desc_of(3, 1, 1)));
  EXPECT_FALSE(override_taken(p, desc_of(1, 1, 0)));   // 1x1 -> GEMM
  EXPECT_FALSE(override_taken(p, desc_of(3, 2, 1)));   // stride-2 off by default
}

TEST(ConvEngine, Stride2OptIn) {
  EnginePolicy p = EnginePolicy::winograd();
  p.winograd_stride2 = true;
  EXPECT_TRUE(override_taken(p, desc_of(3, 2, 1)));
}

TEST(ConvEngine, GemmOnlyPoliciesInstallNoOverride) {
  for (const auto& p : {EnginePolicy::naive(), EnginePolicy::opt3loop(),
                        EnginePolicy::opt6loop()}) {
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(p);
    engine.install(ctx);
    EXPECT_FALSE(static_cast<bool>(ctx.conv_override));
    EXPECT_TRUE(static_cast<bool>(ctx.gemm));
  }
}

TEST(ConvEngine, NaivePolicyDisablesAuxVectorization) {
  EXPECT_FALSE(EnginePolicy::naive().vectorize_aux);
  EXPECT_TRUE(EnginePolicy::opt3loop().vectorize_aux);
}

TEST(ConvEngine, PolicyFactoriesCarryParameters) {
  EXPECT_EQ(EnginePolicy::opt3loop(24).opt3.unroll_factor, 24);
  gemm::Opt6Config o6;
  o6.blocks = {32, 512, 128};
  EXPECT_EQ(EnginePolicy::opt6loop(o6).opt6.blocks.block_m, 32);
  EXPECT_EQ(EnginePolicy::winograd().gemm_variant,
            gemm::GemmVariant::Opt6Loop);
}

TEST(ConvEngine, FusedPolicyInstallsFusedConv) {
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(EnginePolicy::fused());
  engine.install(ctx);
  EXPECT_TRUE(static_cast<bool>(ctx.fused_conv));
  EXPECT_TRUE(static_cast<bool>(ctx.gemm));
  EXPECT_FALSE(static_cast<bool>(ctx.conv_override));
}

TEST(ConvEngine, UnfusedPoliciesInstallNoFusedConv) {
  for (const auto& p : {EnginePolicy::naive(), EnginePolicy::opt3loop(),
                        EnginePolicy::opt6loop(), EnginePolicy::winograd()}) {
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(p);
    engine.install(ctx);
    EXPECT_FALSE(static_cast<bool>(ctx.fused_conv));
  }
}

TEST(ConvEngine, FusedWinogradPolicyInstallsBoth) {
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(EnginePolicy::fused(/*use_winograd=*/true));
  engine.install(ctx);
  EXPECT_TRUE(static_cast<bool>(ctx.fused_conv));
  EXPECT_TRUE(static_cast<bool>(ctx.conv_override));
}

}  // namespace
}  // namespace vlacnn::core

// core::CostModel: the analytic per-backend estimators behind online
// re-planning. Property-pins the structural shape trends each estimator
// must carry (monotone in the GEMM dims, density-proportional sparse
// pricing, exact warm + pack/batch amortization arithmetic), the
// calibration fallback chain, and — the PR's acceptance gate — argmax
// agreement with the simulator on the paper's VGG layer set, at a >=100x
// planning-time advantage. Everything here is deterministic: the simulator
// is cycle-exact and the estimators are closed-form, so these are equality
// tests, not tolerances.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/cost_model.hpp"
#include "core/selector.hpp"
#include "dnn/layers.hpp"
#include "dnn/models.hpp"
#include "gemm/blocking.hpp"

namespace vlacnn::core {
namespace {

sim::MachineConfig sve() { return sim::sve_gem5(); }

gemm::Opt6Config tuned_opt6(const sim::MachineConfig& m) {
  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(m);
  return o6;
}

dnn::ConvDesc conv(int in_c, int hw, int out_c, int ksize = 3,
                   int stride = 1) {
  dnn::ConvDesc d;
  d.in_c = in_c;
  d.in_h = d.in_w = hw;
  d.out_c = out_c;
  d.ksize = ksize;
  d.stride = stride;
  d.pad = ksize > 1 ? 1 : 0;
  d.validate();
  return d;
}

constexpr Backend kDenseBackends[] = {
    Backend::Gemm3,    Backend::Gemm6,         Backend::FusedGemm6,
    Backend::Winograd, Backend::FusedWinograd, Backend::Direct,
};

// --- structural properties (uncalibrated estimates) ---

// Growing any GEMM dimension (M via out_c, N via the output map, K via
// in_c) must never make a backend look cheaper: the selector ranks on these
// numbers and a non-monotone estimator could prefer enlarging a layer.
TEST(CostModel, EstimatesMonotoneInGemmDims) {
  const CostModel model(sve(), tuned_opt6(sve()));
  const dnn::ConvDesc base = conv(32, 24, 64);
  const dnn::ConvDesc more_m = conv(32, 24, 128);   // M: 64 -> 128
  const dnn::ConvDesc more_n = conv(32, 48, 64);    // N: 576 -> 2304
  const dnn::ConvDesc more_k = conv(64, 24, 64);    // K: 288 -> 576
  for (Backend b : kDenseBackends) {
    if (!backend_eligible(b, base)) continue;
    const double c0 = model.estimate(b, base, false).warm_cycles;
    EXPECT_GT(c0, 0.0) << to_string(b);
    for (const dnn::ConvDesc& bigger : {more_m, more_n, more_k}) {
      if (!backend_eligible(b, bigger)) continue;
      EXPECT_GE(model.estimate(b, bigger, false).warm_cycles, c0)
          << to_string(b);
    }
  }
}

// Block-sparse pricing must reward pruning monotonically: fewer kept
// blocks, fewer skip-aware FMA runs and resident-image lines.
TEST(CostModel, SparseEstimateDensityProportional) {
  const CostModel model(sve(), tuned_opt6(sve()));
  const dnn::ConvDesc d = conv(64, 24, 128);
  double prev = 0.0;
  for (int pm : {250, 500, 750, 1000}) {
    const double c =
        model.estimate(Backend::Gemm6Sparse, d, /*weight_resident=*/true, pm)
            .warm_cycles;
    EXPECT_GT(c, prev) << "density " << pm << "/1000";
    prev = c;
  }
  // And the sparse steady state at full density must not beat the dense
  // fused kernel it wraps (the bitmap walk is pure overhead there).
  EXPECT_GE(prev,
            model.estimate(Backend::FusedGemm6, d, true, 1000).warm_cycles);
}

// The amortization arithmetic the Replanner re-ranks with: priced(batch) is
// exactly warm + pack/batch, and cycles() applies the fitted scales to it.
TEST(CostModel, PricedBatchAmortizationExact) {
  CostModel model(sve(), tuned_opt6(sve()));
  const dnn::ConvDesc d = conv(256, 6, 512);  // weight-bound: pack delta > 0
  ASSERT_TRUE(conv_weight_bound(d));
  const CostEstimate est =
      model.estimate(Backend::FusedGemm6, d, /*weight_resident=*/true);
  EXPECT_GT(est.pack_cycles, 0.0);
  for (int batch : {1, 2, 8, 64}) {
    EXPECT_DOUBLE_EQ(est.priced(batch),
                     est.warm_cycles + est.pack_cycles / batch);
  }
  EXPECT_DOUBLE_EQ(est.priced(0), est.priced(1));  // clamped, never divides by 0

  model.set_scale(Backend::FusedGemm6, 2.0);
  model.set_pack_scale(1.0);
  const auto expected = static_cast<std::uint64_t>(
      std::llround(2.0 * (est.warm_cycles + est.pack_cycles / 8.0)));
  EXPECT_EQ(model.cycles(Backend::FusedGemm6, d, true, 8), expected);
}

// Non-resident pricing folds the pack into the per-call cost instead.
TEST(CostModel, NonResidentFoldsPackIntoWarm) {
  const CostModel model(sve(), tuned_opt6(sve()));
  const dnn::ConvDesc d = conv(256, 6, 512);
  const CostEstimate res = model.estimate(Backend::FusedGemm6, d, true);
  const CostEstimate nonres = model.estimate(Backend::FusedGemm6, d, false);
  EXPECT_DOUBLE_EQ(nonres.pack_cycles, 0.0);
  EXPECT_GT(nonres.warm_cycles, res.warm_cycles);
}

// Calibration scale resolution: shape-class bucket fit first, then the
// backend-global fit, then the FusedGemm6 chain for the lossy kinds that
// run the same kernel.
TEST(CostModel, ScaleFallbackChain) {
  CostModel model(sve(), tuned_opt6(sve()));
  const dnn::ConvDesc one = conv(64, 24, 32, 1);
  const dnn::ConvDesc three = conv(64, 24, 32, 3);
  EXPECT_NE(CostModel::shape_bucket(one), CostModel::shape_bucket(three));
  EXPECT_NE(CostModel::shape_bucket(three),
            CostModel::shape_bucket(conv(64, 24, 32, 3, 2)));

  // Unfitted: unit scale everywhere.
  EXPECT_DOUBLE_EQ(model.scale(Backend::Gemm6), 1.0);
  EXPECT_DOUBLE_EQ(model.scale_for(Backend::Gemm6, one), 1.0);
  // Global fit applies to every bucket...
  model.set_scale(Backend::FusedGemm6, 3.0);
  EXPECT_DOUBLE_EQ(model.scale_for(Backend::FusedGemm6, one), 3.0);
  EXPECT_DOUBLE_EQ(model.scale_for(Backend::FusedGemm6, three), 3.0);
  // ...and the quantized/sparse kinds inherit it until fitted directly.
  EXPECT_DOUBLE_EQ(model.scale(Backend::Gemm6Bf16), 3.0);
  EXPECT_DOUBLE_EQ(model.scale_for(Backend::Gemm6Sparse, three), 3.0);
  model.set_scale(Backend::Gemm6Bf16, 5.0);
  EXPECT_DOUBLE_EQ(model.scale(Backend::Gemm6Bf16), 5.0);
}

// --- calibration against the simulator ---

// One-shot calibrate() on a small shape fits positive scales and brings the
// estimator within a factor-2 band of the simulator on that shape (the
// closed forms carry the trend; the fit pins the level).
TEST(CostModel, CalibrateFitsSimulatorLevel) {
  const sim::MachineConfig m = sve();
  const gemm::Opt6Config o6 = tuned_opt6(m);
  CostModel model(m, o6);
  const dnn::ConvDesc d = conv(16, 16, 32);
  model.calibrate({d});
  for (Backend b : kDenseBackends) {
    if (!backend_eligible(b, d)) continue;
    EXPECT_GT(model.scale(b), 0.0) << to_string(b);
    const std::uint64_t sim_cycles =
        simulate_backend_cycles(b, d, m, o6, 7, false);
    const std::uint64_t est = model.cycles(b, d, false, 1);
    EXPECT_GT(est, sim_cycles / 2) << to_string(b);
    EXPECT_LT(est, sim_cycles * 2) << to_string(b);
  }
}

// --- the acceptance gate: argmax agreement on the paper's VGG set ---

// The analytic selector, calibrated for free from the simulated plan's own
// candidate table, must pick the same winner for every layer of the VGG16
// column stack on the paper's SVE machine — while computing the plan at
// least 100x faster. (CI runs the same gate through algorithm_advisor
// --check on VGG and YOLOv3 for both gem5 machines.)
TEST(CostModel, GoldenArgmaxAgreementVgg16Sve) {
  const sim::MachineConfig m = sve();
  std::unique_ptr<dnn::Network> net = dnn::build_vgg16(32, 6);
  SelectorStats sim_stats;
  const BackendPlan sim_plan = select_per_layer(
      *net, m, 7, 4, {}, CostSource::Simulated, nullptr, &sim_stats);
  ASSERT_FALSE(sim_plan.entries.empty());

  CostModel model(m, sim_plan.opt6);
  model.calibrate_from(*net, sim_plan);
  SelectorStats ana_stats;
  const BackendPlan ana_plan = select_per_layer(
      *net, m, 7, 4, {}, CostSource::Analytic, &model, &ana_stats);

  ASSERT_EQ(sim_plan.entries.size(), ana_plan.entries.size());
  for (std::size_t i = 0; i < sim_plan.entries.size(); ++i) {
    EXPECT_EQ(sim_plan.entries[i].backend, ana_plan.entries[i].backend)
        << "layer " << sim_plan.entries[i].layer_index << " "
        << sim_plan.entries[i].layer_name;
    EXPECT_EQ(sim_plan.entries[i].weight_resident,
              ana_plan.entries[i].weight_resident);
  }
  EXPECT_GE(sim_stats.plan_compute_us, 100 * ana_stats.plan_compute_us)
      << "analytic planning must be >=100x faster than simulation";
  EXPECT_EQ(ana_plan.priced_batch, 4);
}

// --- re-planning over the analytic model ---

// replan_for_batch re-RANKS the admitted candidates at a new amortization
// point: entries keep their layer identity and candidate sets, the plan
// records the batch it is priced for, and with bit-identical pinning every
// entry's backend stays bit-compatible with the incumbent — a live swap may
// change kernels, never bits.
TEST(CostModel, ReplanForBatchRepricesAndPins) {
  const sim::MachineConfig m = sve();
  std::unique_ptr<dnn::Network> net = dnn::build_yolov3_tiny(48, 12);
  CostModel model(m, tuned_opt6(m));
  const BackendPlan base =
      select_per_layer(*net, m, 7, 1, {}, CostSource::Analytic, &model);
  ASSERT_FALSE(base.entries.empty());
  EXPECT_EQ(base.priced_batch, 1);

  SelectorStats stats;
  const BackendPlan re = replan_for_batch(*net, base, model, 8, true, &stats);
  EXPECT_EQ(re.priced_batch, 8);
  ASSERT_EQ(re.entries.size(), base.entries.size());
  std::uint64_t wins = 0;
  for (std::size_t i = 0; i < re.entries.size(); ++i) {
    const PlanEntry& b = base.entries[i];
    const PlanEntry& r = re.entries[i];
    EXPECT_EQ(r.layer_index, b.layer_index);
    EXPECT_EQ(r.candidates.size(), b.candidates.size());
    EXPECT_TRUE(backend_bit_compatible(b.backend, r.backend))
        << to_string(b.backend) << " -> " << to_string(r.backend);
    wins += stats.win_count(r.backend) > 0 ? 1 : 0;
  }
  EXPECT_GT(wins, 0u);

  // Unpinned re-planning is pure argmin over the re-priced candidates.
  const BackendPlan free = replan_for_batch(*net, base, model, 8, false);
  for (std::size_t i = 0; i < free.entries.size(); ++i) {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [cb, cc] : free.entries[i].candidates) {
      const auto* conv_layer = dynamic_cast<const dnn::ConvLayer*>(
          &net->layer(static_cast<std::size_t>(free.entries[i].layer_index)));
      ASSERT_NE(conv_layer, nullptr);
      const bool resident = conv_weight_bound(conv_layer->desc()) &&
                            backend_gemm6_family(cb) && base.opt6.pack_a;
      best = std::min(best, model.cycles(cb, conv_layer->desc(), resident, 8,
                                         base.sparsity_pm));
      (void)cc;
    }
    EXPECT_EQ(free.entries[i].cycles, best)
        << "entry " << i << " not argmin at batch 8";
  }
}

// Bit-compatibility itself: only the dense Gemm6 pair is interchangeable.
TEST(CostModel, BackendBitCompatibility) {
  EXPECT_TRUE(backend_bit_compatible(Backend::Gemm6, Backend::FusedGemm6));
  EXPECT_TRUE(backend_bit_compatible(Backend::FusedGemm6, Backend::Gemm6));
  EXPECT_TRUE(backend_bit_compatible(Backend::Winograd, Backend::Winograd));
  EXPECT_FALSE(
      backend_bit_compatible(Backend::Winograd, Backend::FusedWinograd));
  EXPECT_FALSE(backend_bit_compatible(Backend::Gemm6, Backend::Gemm6Bf16));
  EXPECT_FALSE(backend_bit_compatible(Backend::FusedGemm6, Backend::Gemm3));
}

// paper_layer_set: deduplicated, validated, covers the kernel/stride mix
// that drives selection (1x1 and 3x3, stride 1 and 2, weight-bound tails).
TEST(CostModel, PaperLayerSetCoversShapeClasses) {
  const std::vector<dnn::ConvDesc> shapes = CostModel::paper_layer_set();
  ASSERT_GE(shapes.size(), 12u);
  bool k1 = false, k3 = false, s2 = false, wb = false;
  for (const dnn::ConvDesc& d : shapes) {
    d.validate();
    k1 = k1 || d.ksize == 1;
    k3 = k3 || d.ksize == 3;
    s2 = s2 || d.stride == 2;
    wb = wb || conv_weight_bound(d);
  }
  EXPECT_TRUE(k1 && k3 && s2 && wb);
}

}  // namespace
}  // namespace vlacnn::core

// Direct (im2col-free) VLA convolution vs references.

#include <gtest/gtest.h>

#include <vector>

#include "dnn/direct_conv.hpp"
#include "test_util.hpp"

namespace vlacnn::dnn {
namespace {

using test::allclose;
using test::random_vec;

struct Shape {
  int c, hw, oc, k, s, p;
};

class DirectConvTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Shape>> {};

TEST_P(DirectConvTest, MatchesReference) {
  const auto [vlen, sh] = GetParam();
  ConvDesc d;
  d.in_c = sh.c;
  d.in_h = d.in_w = sh.hw;
  d.out_c = sh.oc;
  d.ksize = sh.k;
  d.stride = sh.s;
  d.pad = sh.p;
  d.validate();

  auto input = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 1);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 2);
  std::vector<float> want(static_cast<std::size_t>(d.out_c) * d.out_h() *
                              d.out_w(),
                          0.0f);
  std::vector<float> got = want;
  direct_conv_ref(d, input.data(), weights.data(), want.data());

  vla::VectorEngine eng(vlen);
  direct_conv_vla(eng, d, input.data(), weights.data(), got.data());
  EXPECT_TRUE(allclose(want.data(), got.data(), got.size(), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectConvTest,
    ::testing::Combine(::testing::Values(512u, 2048u),
                       ::testing::Values(Shape{3, 12, 4, 1, 1, 0},   // 1x1
                                         Shape{4, 10, 2, 3, 1, 1},   // 3x3/s1
                                         Shape{4, 10, 2, 3, 2, 1},   // 3x3/s2
                                         Shape{2, 9, 3, 5, 1, 2},    // 5x5
                                         Shape{1, 6, 1, 3, 1, 0})),  // no pad
    [](const auto& info) {
      const Shape s = std::get<1>(info.param);
      return "vl" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(s.c) + "_k" + std::to_string(s.k) + "_s" +
             std::to_string(s.s) + "_p" + std::to_string(s.p);
    });

TEST(DirectConvSem, AccumulatesIntoOutput) {
  ConvDesc d;
  d.in_c = 1;
  d.in_h = d.in_w = 4;
  d.out_c = 1;
  d.ksize = 1;
  d.stride = 1;
  d.pad = 0;
  auto input = random_vec(16, 3);
  float w = 2.0f;
  std::vector<float> out(16, 5.0f);
  vla::VectorEngine eng(512);
  direct_conv_vla(eng, d, input.data(), &w, out.data());
  for (int i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                    5.0f + 2.0f * input[static_cast<std::size_t>(i)]);
}

TEST(DirectConvSem, MatchesIm2colGemmPath) {
  ConvDesc d;
  d.in_c = 8;
  d.in_h = d.in_w = 14;
  d.out_c = 6;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto input = random_vec(static_cast<std::size_t>(d.in_c) * 14 * 14, 7);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 8);
  std::vector<float> via_direct(static_cast<std::size_t>(d.out_c) * 14 * 14, 0.0f);
  std::vector<float> via_ref = via_direct;
  vla::VectorEngine eng(1024);
  direct_conv_vla(eng, d, input.data(), weights.data(), via_direct.data());
  test::conv_direct_ref(d, input.data(), weights.data(), via_ref.data());
  EXPECT_TRUE(allclose(via_ref.data(), via_direct.data(), via_ref.size(),
                       1e-4f, 1e-4f));
}

}  // namespace
}  // namespace vlacnn::dnn

// Fused-conv pipeline equivalence: the implicit-GEMM + epilogue-fused path
// must match the unfused fill + im2col + GEMM + post-pass pipeline
// bit-for-bit (Winograd within 2 ulp), across shapes, BN on/off, every
// activation, batch 1 and batch 4 multi-threaded — and must move fewer
// bytes doing it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "dnn/im2col.hpp"
#include "dnn/kernels.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "gemm/gemm_opt6.hpp"
#include "runtime/batch_scheduler.hpp"
#include "test_util.hpp"

namespace vlacnn {
namespace {

/// ULP distance between two floats (0 = bit-identical, accounting for -0).
std::uint32_t ulp_diff(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return 0xffffffffu;
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map to a monotonic integer line (two's-complement trick).
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

std::uint32_t max_ulp(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, ulp_diff(a[i], b[i]));
  return m;
}

struct Shape {
  const char* tag;
  int in_c, hw, out_c, ksize, stride, pad;
};

constexpr Shape kShapes[] = {
    {"1x1/s1", 16, 12, 8, 1, 1, 0},
    {"3x3/s1 padded", 8, 16, 8, 3, 1, 1},
    {"3x3/s1 padded odd", 5, 9, 7, 3, 1, 1},  // edge strips + partial groups
    {"3x3/s2 strided", 8, 16, 8, 3, 2, 1},
    {"3x3/s1 unpadded", 8, 12, 4, 3, 1, 0},
};

dnn::ConvDesc make_desc(const Shape& s, bool bn, dnn::Activation act) {
  dnn::ConvDesc d;
  d.in_c = s.in_c;
  d.in_h = d.in_w = s.hw;
  d.out_c = s.out_c;
  d.ksize = s.ksize;
  d.stride = s.stride;
  d.pad = s.pad;
  d.batch_norm = bn;
  d.act = act;
  return d;
}

/// Runs one ConvLayer (fresh weights from `seed`) under `policy` and returns
/// the output values. Blocks are kept small so multiple k/n panels are
/// exercised even on the small test shapes.
std::vector<float> run_layer(const dnn::ConvDesc& d,
                             const core::EnginePolicy& policy,
                             std::uint64_t seed = 42, unsigned vlen = 512) {
  dnn::ConvLayer layer(d, seed);
  vla::VectorEngine eng(vlen);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(policy);
  engine.install(ctx);
  dnn::Tensor in(d.in_c, d.in_h, d.in_w);
  Rng rng(7);
  in.randomize(rng);
  layer.forward(ctx, {&in});
  return {layer.output().data(),
          layer.output().data() + layer.output().size()};
}

core::EnginePolicy small_blocks(core::EnginePolicy p) {
  p.opt6.blocks = {16, 64, 32};
  return p;
}

TEST(FusedConv, GemmFusedIsBitIdenticalAcrossShapesBnAndActivations) {
  using dnn::Activation;
  for (const Shape& s : kShapes) {
    for (bool bn : {false, true}) {
      for (Activation act : {Activation::Linear, Activation::Relu,
                             Activation::Leaky, Activation::Logistic}) {
        const dnn::ConvDesc d = make_desc(s, bn, act);
        const auto unfused =
            run_layer(d, small_blocks(core::EnginePolicy::opt6loop()));
        const auto fused = run_layer(d, small_blocks(core::EnginePolicy::fused()));
        EXPECT_EQ(max_ulp(unfused, fused), 0u)
            << s.tag << " bn=" << bn << " act=" << dnn::to_string(act);
      }
    }
  }
}

TEST(FusedConv, WinogradFusedMatchesWithin2Ulp) {
  using dnn::Activation;
  for (const Shape& s : kShapes) {
    if (s.ksize != 3 || s.pad != 1) continue;  // Winograd-eligible only
    for (bool bn : {false, true}) {
      for (Activation act : {Activation::Linear, Activation::Relu,
                             Activation::Leaky, Activation::Logistic}) {
        const dnn::ConvDesc d = make_desc(s, bn, act);
        core::EnginePolicy unfused_p = core::EnginePolicy::winograd();
        unfused_p.winograd_stride2 = true;
        core::EnginePolicy fused_p = unfused_p;
        fused_p.fuse_conv = true;
        const auto unfused = run_layer(d, small_blocks(unfused_p));
        const auto fused = run_layer(d, small_blocks(fused_p));
        EXPECT_LE(max_ulp(unfused, fused), 2u)
            << s.tag << " bn=" << bn << " act=" << dnn::to_string(act);
      }
    }
  }
}

TEST(FusedConv, ImplicitPackMatchesMaterializedIm2col) {
  // Below the layer: Gemm6::conv_fused with an empty epilogue against the
  // fill + im2col_ref + operator() pipeline must be bit-identical — this
  // pins the implicit B-pack gather to the im2col definition.
  for (const Shape& s : kShapes) {
    const dnn::ConvDesc d = make_desc(s, false, dnn::Activation::Linear);
    const int m = d.gemm_m(), n = d.gemm_n(), k = d.gemm_k();
    const auto input = test::random_vec(
        static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 3);
    const auto weights =
        test::random_vec(static_cast<std::size_t>(d.weight_count()), 4);

    gemm::Opt6Config cfg;
    cfg.blocks = {16, 48, 24};  // force several panels on the small shapes
    vla::VectorEngine eng(512);

    std::vector<float> col(static_cast<std::size_t>(k) * n);
    dnn::im2col_ref(d, input.data(), col.data());
    std::vector<float> want(static_cast<std::size_t>(m) * n, 0.0f);
    gemm::Gemm6 ref(cfg);
    ref(eng, m, n, k, 1.0f, weights.data(), k, col.data(), n, want.data(), n);

    std::vector<float> got(static_cast<std::size_t>(m) * n, -1.0f);
    gemm::Gemm6 fused(cfg);
    dnn::EpilogueDesc epi;  // empty: raw convolution
    ASSERT_TRUE(fused.conv_fused(eng, d, weights.data(), input.data(),
                                 got.data(), &epi))
        << s.tag;
    EXPECT_EQ(max_ulp(want, got), 0u) << s.tag;
  }
}

TEST(FusedConv, ConvFusedDeclinesWhenPackingDisabled) {
  const dnn::ConvDesc d =
      make_desc(kShapes[1], false, dnn::Activation::Linear);
  gemm::Opt6Config cfg;
  cfg.pack_b = false;
  gemm::Gemm6 g(cfg);
  vla::VectorEngine eng(512);
  const auto input = test::random_vec(
      static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 3);
  const auto weights =
      test::random_vec(static_cast<std::size_t>(d.weight_count()), 4);
  std::vector<float> out(static_cast<std::size_t>(d.gemm_m()) * d.gemm_n());
  dnn::EpilogueDesc epi;
  EXPECT_FALSE(g.conv_fused(eng, d, weights.data(), input.data(), out.data(),
                            &epi));
}

/// Three-conv net covering 3x3/s1+BN+leaky, 1x1/s1+relu, 3x3/s2+BN.
std::unique_ptr<dnn::Network> small_net(int hw = 16) {
  auto net = std::make_unique<dnn::Network>(3, hw, hw, 99);
  net->add_conv(8, 3, 1, 1, dnn::Activation::Leaky, true);
  net->add_conv(12, 1, 1, 0, dnn::Activation::Relu, false);
  net->add_conv(8, 3, 2, 1, dnn::Activation::Leaky, true);
  return net;
}

std::vector<float> run_batched(const core::EnginePolicy& policy, int batch,
                               int threads) {
  auto net = small_net();
  core::ConvolutionEngine engine(policy);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  runtime::BatchScheduler sched(engine, cfg);
  dnn::Tensor input(batch, 3, 16, 16);
  input.randomize_batch(1234, 0.0f, 1.0f);
  const dnn::Tensor& out = sched.run(*net, input);
  return {out.data(), out.data() + out.size()};
}

TEST(FusedConv, Batch4MultiThreadedMatchesUnfused) {
  const auto unfused =
      run_batched(small_blocks(core::EnginePolicy::opt6loop()), 4, 4);
  const auto fused = run_batched(small_blocks(core::EnginePolicy::fused()), 4, 4);
  EXPECT_EQ(max_ulp(unfused, fused), 0u);
}

TEST(FusedConv, Batch1IntraOpPoolMatchesUnfused) {
  // Batch 1 with 4 workers drives the intra-op M-panel sharding inside the
  // fused GEMM (beta0/epilogue flags must reach the worker microkernels).
  const auto unfused =
      run_batched(small_blocks(core::EnginePolicy::opt6loop()), 1, 4);
  const auto fused = run_batched(small_blocks(core::EnginePolicy::fused()), 1, 4);
  EXPECT_EQ(max_ulp(unfused, fused), 0u);
}

/// Runs one ConvLayer with a fused residual (skip tensor added after the
/// activation, then `post_act` — the folded shortcut) under `policy`.
std::vector<float> run_residual_layer(const dnn::ConvDesc& d,
                                      const core::EnginePolicy& policy,
                                      dnn::Activation post_act,
                                      std::uint64_t seed = 42) {
  dnn::ConvLayer layer(d, seed);
  layer.fuse_residual(/*from=*/0, post_act);
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(policy);
  engine.install(ctx);
  dnn::Tensor in(d.in_c, d.in_h, d.in_w);
  Rng rng(7);
  in.randomize(rng);
  dnn::Tensor skip(d.out_c, d.out_h(), d.out_w());
  Rng rng2(8);
  skip.randomize(rng2);
  layer.forward(ctx, {&in, &skip});
  return {layer.output().data(),
          layer.output().data() + layer.output().size()};
}

TEST(FusedConv, ResidualFusedGemmBitIdenticalToUnfused) {
  // The folded shortcut-add (ROADMAP fused follow-up (b)) on the GEMM
  // microkernel's tile registers vs the unfused conv + axpy + activate
  // post-pass sequence: bit-identical across shapes, activations and the
  // shortcut's own activation (Logistic post-act stays a scalar post-pass).
  using dnn::Activation;
  for (const Shape& s : kShapes) {
    for (Activation act : {Activation::Leaky, Activation::Logistic}) {
      for (Activation post :
           {Activation::Linear, Activation::Leaky, Activation::Logistic}) {
        const dnn::ConvDesc d = make_desc(s, true, act);
        const auto unfused = run_residual_layer(
            d, small_blocks(core::EnginePolicy::opt6loop()), post);
        const auto fused = run_residual_layer(
            d, small_blocks(core::EnginePolicy::fused()), post);
        EXPECT_EQ(max_ulp(unfused, fused), 0u)
            << s.tag << " act=" << dnn::to_string(act)
            << " post=" << dnn::to_string(post);
      }
    }
  }
}

TEST(FusedConv, ResidualFusedWinogradMatchesWithin2Ulp) {
  // Same contract on the Winograd output transform (interior scatter, edge
  // tiles, and the stride-2 subsample pass all add the skip tensor).
  using dnn::Activation;
  for (const Shape& s : kShapes) {
    if (s.ksize != 3 || s.pad != 1) continue;  // Winograd-eligible only
    for (Activation post : {Activation::Linear, Activation::Leaky}) {
      const dnn::ConvDesc d = make_desc(s, true, Activation::Leaky);
      core::EnginePolicy unfused_p = core::EnginePolicy::winograd();
      unfused_p.winograd_stride2 = true;
      core::EnginePolicy fused_p = unfused_p;
      fused_p.fuse_conv = true;
      const auto unfused =
          run_residual_layer(d, small_blocks(unfused_p), post);
      const auto fused = run_residual_layer(d, small_blocks(fused_p), post);
      EXPECT_LE(max_ulp(unfused, fused), 2u)
          << s.tag << " post=" << dnn::to_string(post);
    }
  }
}

TEST(FusedConv, NetworkFuseResidualsBitIdenticalAcrossBackends) {
  // Whole-model check on YOLOv3's residual blocks: folding the shortcuts
  // into their producing 3x3 convolutions (Network::fuse_residuals) must
  // not change a single bit of the output, whichever backend serves the
  // convs — unfused GEMM (post-pass add), fused implicit-GEMM, or fused
  // Winograd — batch 1 and batch 4 multi-threaded.
  struct Mode {
    int batch, threads;
  };
  // batch 1 serial, batch 1 intra-op sharded, batch 4 item-sharded.
  constexpr Mode kModes[] = {{1, 1}, {1, 4}, {4, 4}};
  for (const auto& policy :
       {core::EnginePolicy::opt6loop(), core::EnginePolicy::fused(),
        core::EnginePolicy::fused(/*use_winograd=*/true)}) {
    for (const Mode mode : kModes) {
      const int batch = mode.batch, threads = mode.threads;
      auto run = [&](bool fold) {
        auto net = dnn::build_yolov3(48, 8);  // includes one residual block
        if (fold) {
          EXPECT_GT(net->fuse_residuals(), 0);
        }
        core::ConvolutionEngine engine(policy);
        runtime::SchedulerConfig cfg;
        cfg.threads = threads;
        runtime::BatchScheduler sched(engine, cfg);
        dnn::Tensor input(batch, net->in_c(), net->in_h(), net->in_w());
        input.randomize_batch(1234, 0.0f, 1.0f);
        const dnn::Tensor& out = sched.run(*net, input);
        return std::vector<float>(out.data(), out.data() + out.size());
      };
      const auto plain = run(false);
      const auto folded = run(true);
      EXPECT_EQ(max_ulp(plain, folded), 0u)
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

TEST(FusedConv, FusedMovesFewerBytes) {
  dnn::ConvDesc d;
  d.in_c = 32;
  d.in_h = d.in_w = 32;
  d.out_c = 32;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = true;
  d.act = dnn::Activation::Leaky;

  auto traffic = [&](const core::EnginePolicy& policy) {
    dnn::ConvLayer layer(d, 5);
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    dnn::Tensor in(d.in_c, d.in_h, d.in_w);
    Rng rng(7);
    in.randomize(rng);
    layer.forward(ctx, {&in});
    return eng.mem_bytes_moved();
  };

  const std::uint64_t unfused = traffic(core::EnginePolicy::opt6loop());
  const std::uint64_t fused = traffic(core::EnginePolicy::fused());
  // The workspace round-trip, the fill pass, the first C read and the four
  // output-tensor post-passes are gone; at engine level (every load/store
  // counted, cache-less) that is a >15% cut. The DRAM-level cut measured by
  // bench_fused_conv is far larger.
  EXPECT_LT(static_cast<double>(fused), 0.85 * static_cast<double>(unfused))
      << "fused=" << fused << " unfused=" << unfused;
}

}  // namespace
}  // namespace vlacnn

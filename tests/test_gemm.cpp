// GEMM variants vs the scalar reference: naive (Fig 1), optimized 3-loop
// (Fig 2) including the register-spilling path, optimized 6-loop BLIS-like
// (Fig 3) with every feature toggle, across vector lengths and shapes.

#include <gtest/gtest.h>

#include <vector>

#include "gemm/gemm.hpp"
#include "test_util.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::gemm {
namespace {

using test::allclose;
using test::random_vec;

struct Shape {
  int m, n, k;
};

void run_variant_and_check(GemmVariant variant, unsigned vlen, Shape s,
                           float alpha, const Opt3Config& o3 = {},
                           const Opt6Config& o6 = {}) {
  auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, 1);
  auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, 2);
  auto c0 = random_vec(static_cast<std::size_t>(s.m) * s.n, 3);
  auto c_ref = c0, c_got = c0;

  gemm_ref(s.m, s.n, s.k, alpha, a.data(), s.k, b.data(), s.n, c_ref.data(),
           s.n);

  vla::VectorEngine eng(vlen);
  auto fn = make_gemm_fn(variant, o3, o6);
  fn(eng, s.m, s.n, s.k, alpha, a.data(), s.k, b.data(), s.n, c_got.data(),
     s.n);

  EXPECT_TRUE(allclose(c_ref.data(), c_got.data(), c_ref.size(), 1e-4f, 1e-4f))
      << to_string(variant) << " vlen=" << vlen << " m=" << s.m
      << " n=" << s.n << " k=" << s.k;
}

TEST(GemmRef, OneByOne) {
  float a = 3.0f, b = 4.0f, c = 5.0f;
  gemm_ref(1, 1, 1, 2.0f, &a, 1, &b, 1, &c, 1);
  EXPECT_FLOAT_EQ(c, 5.0f + 2.0f * 3.0f * 4.0f);
}

TEST(GemmRef, AccumulatesIntoC) {
  // C must be updated (+=), not overwritten.
  auto a = random_vec(4 * 3, 10);
  auto b = random_vec(3 * 5, 11);
  std::vector<float> c(4 * 5, 1.0f);
  gemm_ref(4, 5, 3, 1.0f, a.data(), 3, b.data(), 5, c.data(), 5);
  std::vector<float> c2(4 * 5, 0.0f);
  gemm_ref(4, 5, 3, 1.0f, a.data(), 3, b.data(), 5, c2.data(), 5);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_FLOAT_EQ(c[i], c2[i] + 1.0f);
}

TEST(GemmNaive, MatchesReference) {
  run_variant_and_check(GemmVariant::Naive, 512, {7, 13, 5}, 1.0f);
  run_variant_and_check(GemmVariant::Naive, 512, {16, 64, 32}, 1.0f);
}

TEST(GemmOpt3, MatchesReferenceBasic) {
  run_variant_and_check(GemmVariant::Opt3Loop, 512, {16, 64, 32}, 1.0f);
}

TEST(GemmOpt3, AlphaNotOne) {
  run_variant_and_check(GemmVariant::Opt3Loop, 512, {8, 40, 12}, 0.5f);
  run_variant_and_check(GemmVariant::Opt6Loop, 512, {8, 40, 12}, -2.0f);
}

TEST(GemmOpt3, RaggedEdges) {
  // M not divisible by unroll, N not divisible by VL, K = 1.
  run_variant_and_check(GemmVariant::Opt3Loop, 512, {17, 33, 1}, 1.0f);
  run_variant_and_check(GemmVariant::Opt3Loop, 512, {1, 1, 1}, 1.0f);
  run_variant_and_check(GemmVariant::Opt3Loop, 2048, {3, 200, 7}, 1.0f);
}

TEST(GemmOpt3, UnrollFactorSweepStaysCorrect) {
  for (int unroll : {1, 2, 4, 8, 16, 24, 30}) {
    Opt3Config cfg;
    cfg.unroll_factor = unroll;
    run_variant_and_check(GemmVariant::Opt3Loop, 512, {37, 65, 19}, 1.0f, cfg);
  }
}

TEST(GemmOpt3, SpilledAccumulatorsStayCorrect) {
  // unroll 32 exceeds the 30 architectural accumulators; the spill path
  // must still produce exact results (paper: 32 regs spill and cost ~15%).
  Opt3Config cfg;
  cfg.unroll_factor = 32;
  run_variant_and_check(GemmVariant::Opt3Loop, 512, {64, 48, 9}, 1.0f, cfg);
}

TEST(GemmOpt6, MatchesReferenceBasic) {
  run_variant_and_check(GemmVariant::Opt6Loop, 512, {32, 96, 48}, 1.0f);
}

TEST(GemmOpt6, ShapesSmallerThanBlocks) {
  Opt6Config cfg;
  cfg.blocks = {16, 512, 128};
  run_variant_and_check(GemmVariant::Opt6Loop, 512, {5, 9, 3}, 1.0f, {}, cfg);
}

TEST(GemmOpt6, ShapesLargerThanBlocks) {
  Opt6Config cfg;
  cfg.blocks = {8, 32, 16};
  run_variant_and_check(GemmVariant::Opt6Loop, 512, {33, 130, 70}, 1.0f, {},
                        cfg);
}

TEST(GemmOpt6, FeatureTogglesStayCorrect) {
  for (bool pack_a : {false, true}) {
    for (bool pack_b : {false, true}) {
      for (bool prefetch : {false, true}) {
        Opt6Config cfg;
        cfg.blocks = {8, 64, 32};
        cfg.pack_a = pack_a;
        cfg.pack_b = pack_b;
        cfg.prefetch = prefetch;
        run_variant_and_check(GemmVariant::Opt6Loop, 1024, {20, 100, 50}, 1.0f,
                              {}, cfg);
      }
    }
  }
}

TEST(GemmOpt6, PaperBlockSizeCandidates) {
  // The six block-size candidates of Table II must all be numerically
  // correct (their difference is purely a performance property).
  const BlockSizes candidates[] = {{128, 1024, 256}, {16, 1024, 128},
                                   {16, 512, 128},   {16, 512, 256},
                                   {32, 512, 128},   {64, 1024, 128}};
  for (const auto& bs : candidates) {
    Opt6Config cfg;
    cfg.blocks = bs;
    run_variant_and_check(GemmVariant::Opt6Loop, 512, {40, 70, 30}, 1.0f, {},
                          cfg);
  }
}

TEST(BlockTuning, PanelsFitCaches) {
  const auto machines = {sim::rvv_gem5(), sim::sve_gem5(), sim::a64fx()};
  for (const auto& m : machines) {
    const BlockSizes bs = tune_block_sizes(m);
    EXPECT_LE(bs.packed_a_bytes(), m.l1.size_bytes / 2) << m.name;
    EXPECT_LE(bs.packed_b_bytes(), m.l2.size_bytes / 2) << m.name;
    EXPECT_GE(bs.block_k, 16);
  }
}

TEST(BlockTuning, BlockNIsVectorMultiple) {
  for (unsigned vl : {512u, 2048u, 8192u}) {
    auto m = sim::rvv_gem5().with_vlen(vl);
    const BlockSizes bs = tune_block_sizes(m);
    EXPECT_EQ(bs.block_n % static_cast<int>(m.elements_per_vreg()), 0);
  }
}

}  // namespace
}  // namespace vlacnn::gemm

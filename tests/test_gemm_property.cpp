// Property-style GEMM sweeps: every variant must match the scalar
// reference over a randomized (M, N, K, vlen, variant) grid, and the
// simulated-cost properties of the variants must order sensibly.

#include <gtest/gtest.h>

#include <vector>

#include "core/codesign.hpp"
#include "gemm/gemm.hpp"
#include "sim/sim_context.hpp"
#include "test_util.hpp"

namespace vlacnn::gemm {
namespace {

using test::allclose;
using test::random_vec;

struct PropCase {
  GemmVariant variant;
  unsigned vlen;
};

class GemmPropertyTest : public ::testing::TestWithParam<PropCase> {};

TEST_P(GemmPropertyTest, RandomShapeGridMatchesReference) {
  const auto [variant, vlen] = GetParam();
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 25; ++iter) {
    const int m = 1 + static_cast<int>(rng.next_below(70));
    const int n = 1 + static_cast<int>(rng.next_below(150));
    const int k = 1 + static_cast<int>(rng.next_below(60));
    auto a = random_vec(static_cast<std::size_t>(m) * k, 10 + iter);
    auto b = random_vec(static_cast<std::size_t>(k) * n, 20 + iter);
    auto c_ref = random_vec(static_cast<std::size_t>(m) * n, 30 + iter);
    auto c_got = c_ref;
    gemm_ref(m, n, k, 1.0f, a.data(), k, b.data(), n, c_ref.data(), n);

    vla::VectorEngine eng(vlen);
    Opt6Config o6;
    o6.blocks = {16, 64, 32};
    auto fn = make_gemm_fn(variant, Opt3Config{}, o6);
    fn(eng, m, n, k, 1.0f, a.data(), k, b.data(), n, c_got.data(), n);
    ASSERT_TRUE(allclose(c_ref.data(), c_got.data(), c_ref.size(), 2e-4f, 2e-4f))
        << to_string(variant) << " vlen=" << vlen << " m=" << m << " n=" << n
        << " k=" << k << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndLengths, GemmPropertyTest,
    ::testing::Values(PropCase{GemmVariant::Naive, 512},
                      PropCase{GemmVariant::Opt3Loop, 512},
                      PropCase{GemmVariant::Opt3Loop, 2048},
                      PropCase{GemmVariant::Opt3Loop, 16384},
                      PropCase{GemmVariant::Opt6Loop, 512},
                      PropCase{GemmVariant::Opt6Loop, 4096}),
    [](const auto& info) {
      std::string name = std::string(to_string(info.param.variant)) + "_vl" +
                         std::to_string(info.param.vlen);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

// ---- simulated-cost properties ----

std::uint64_t sim_cycles(GemmVariant v, const sim::MachineConfig& machine,
                         int m, int n, int k, int unroll = 16,
                         bool tuned_blocks = false) {
  auto a = random_vec(static_cast<std::size_t>(m) * k, 1);
  auto b = random_vec(static_cast<std::size_t>(k) * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  sim::RegisteredRange ra(a.data(), a.size() * 4), rb(b.data(), b.size() * 4),
      rc(c.data(), c.size() * 4);
  sim::SimContext ctx(machine);
  vla::VectorEngine eng(ctx);
  Opt3Config o3;
  o3.unroll_factor = unroll;
  Opt6Config o6;
  o6.blocks = tuned_blocks ? tune_block_sizes(machine) : BlockSizes{16, 128, 64};
  auto fn = make_gemm_fn(v, o3, o6);
  fn(eng, m, n, k, 1.0f, a.data(), k, b.data(), n, c.data(), n);
  return ctx.cycles();
}

TEST(GemmCostProperties, VectorizedBeatsNaive) {
  const auto machine = sim::rvv_gem5();
  const auto naive = sim_cycles(GemmVariant::Naive, machine, 32, 256, 64);
  const auto opt3 = sim_cycles(GemmVariant::Opt3Loop, machine, 32, 256, 64);
  EXPECT_GT(naive, 4 * opt3);
}

TEST(GemmCostProperties, UnrollingHelpsOnRvv) {
  // Paper §VI-A: unrolling hides the FMA latency; 16 is the sweet spot.
  const auto machine = sim::rvv_gem5().with_vlen(2048);
  const auto u1 = sim_cycles(GemmVariant::Opt3Loop, machine, 64, 512, 64, 1);
  const auto u16 = sim_cycles(GemmVariant::Opt3Loop, machine, 64, 512, 64, 16);
  EXPECT_GT(u1, u16);
}

TEST(GemmCostProperties, SpillingAt32Hurts) {
  // Paper §VI-A: utilizing 32 registers spills and loses ~15%.
  const auto machine = sim::rvv_gem5().with_vlen(2048);
  const auto u16 = sim_cycles(GemmVariant::Opt3Loop, machine, 64, 512, 64, 16);
  const auto u32 = sim_cycles(GemmVariant::Opt3Loop, machine, 64, 512, 64, 32);
  EXPECT_GT(u32, u16);
}

TEST(GemmCostProperties, LongerVectorsCheaperPerFlop) {
  const auto m512 = sim::rvv_gem5().with_vlen(512);
  const auto m8192 = sim::rvv_gem5().with_vlen(8192);
  const auto c512 = sim_cycles(GemmVariant::Opt3Loop, m512, 32, 1024, 32);
  const auto c8192 = sim_cycles(GemmVariant::Opt3Loop, m8192, 32, 1024, 32);
  EXPECT_GT(c512, c8192);
}

TEST(GemmCostProperties, SixLoopWinsOnA64fxNotOnRvv) {
  // The paper's headline asymmetry (§VI-A vs §VI-C): BLIS-like blocking +
  // packing + prefetch pays off on A64FX but not on the L2-connected RVV
  // design. Shape taken from a real YOLOv3 layer (L10 at 1/8 resolution)
  // so strides are not pathological powers of two.
  const int m = 64, n = 1444, k = 1152;
  const auto rvv3 =
      sim_cycles(GemmVariant::Opt3Loop, sim::rvv_gem5(), m, n, k, 16, true);
  const auto rvv6 =
      sim_cycles(GemmVariant::Opt6Loop, sim::rvv_gem5(), m, n, k, 16, true);
  const auto a64_3 =
      sim_cycles(GemmVariant::Opt3Loop, sim::a64fx(), m, n, k, 16, true);
  const auto a64_6 =
      sim_cycles(GemmVariant::Opt6Loop, sim::a64fx(), m, n, k, 16, true);
  // On RVV the 6-loop must not be meaningfully better (paper Table II:
  // at best within 2% of the 3-loop).
  EXPECT_GT(static_cast<double>(rvv6), 0.9 * static_cast<double>(rvv3));
  // A64FX: the paper measures a 2x kernel-level win for the 6-loop on real
  // silicon. Our latency-overlap model hides most of the strided-access
  // penalty the 3-loop pays there, so the packed variant only stays within
  // ~2x of the 3-loop instead of beating it — a documented model gap
  // (EXPERIMENTS.md, "known deviations"). Guard against regressions beyond
  // that band.
  EXPECT_LT(static_cast<double>(a64_6), 2.0 * static_cast<double>(a64_3));
  (void)rvv3;
}

}  // namespace
}  // namespace vlacnn::gemm

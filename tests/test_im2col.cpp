// im2col: Darknet layout, padding/stride handling, and equivalence of the
// VLA-vectorized version with the scalar reference on a shape sweep.

#include <gtest/gtest.h>

#include <vector>

#include "dnn/im2col.hpp"
#include "test_util.hpp"

namespace vlacnn::dnn {
namespace {

using test::random_vec;

ConvDesc make_desc(int c, int h, int w, int k, int s, int p) {
  ConvDesc d;
  d.in_c = c;
  d.in_h = h;
  d.in_w = w;
  d.out_c = 1;
  d.ksize = k;
  d.stride = s;
  d.pad = p;
  return d;
}

TEST(Im2colRef, IdentityFor1x1) {
  const ConvDesc d = make_desc(3, 4, 5, 1, 1, 0);
  auto in = random_vec(static_cast<std::size_t>(3) * 4 * 5, 1);
  std::vector<float> col(static_cast<std::size_t>(d.gemm_k()) * d.gemm_n());
  im2col_ref(d, in.data(), col.data());
  EXPECT_EQ(col.size(), in.size());
  EXPECT_EQ(col, in);
}

TEST(Im2colRef, KnownTinyCase) {
  // 1 channel, 3x3 input, 3x3 kernel, pad 1, stride 1 -> 9x9 matrix.
  const ConvDesc d = make_desc(1, 3, 3, 3, 1, 1);
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(81);
  im2col_ref(d, in.data(), col.data());
  // Row (kh=1,kw=1) (the center tap) is the unshifted image.
  const float* center = col.data() + 4 * 9;
  for (int i = 0; i < 9; ++i) EXPECT_EQ(center[i], in[static_cast<std::size_t>(i)]);
  // Row (kh=0,kw=0): image shifted down-right, first row/col zero-padded.
  const float* tl = col.data();
  EXPECT_EQ(tl[0], 0.0f);  // output (0,0) reads input (-1,-1)
  EXPECT_EQ(tl[4], 1.0f);  // output (1,1) reads input (0,0)
  EXPECT_EQ(tl[8], 5.0f);  // output (2,2) reads input (1,1)
}

TEST(Im2colRef, StrideTwoSelectsAlternatePixels) {
  const ConvDesc d = make_desc(1, 4, 4, 1, 2, 0);
  std::vector<float> in(16);
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(d.gemm_n()));
  im2col_ref(d, in.data(), col.data());
  EXPECT_EQ(d.gemm_n(), 4);
  EXPECT_EQ(col[0], 0.0f);
  EXPECT_EQ(col[1], 2.0f);
  EXPECT_EQ(col[2], 8.0f);
  EXPECT_EQ(col[3], 10.0f);
}

class Im2colEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colEquivalence, VlaMatchesReference) {
  const auto [hw, k, s, p] = GetParam();
  const ConvDesc d = make_desc(3, hw, hw + 2, k, s, p);
  if (d.out_h() <= 0 || d.out_w() <= 0) GTEST_SKIP();
  auto in = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 42);
  std::vector<float> ref(static_cast<std::size_t>(d.gemm_k()) * d.gemm_n(), -1.0f);
  std::vector<float> got(ref.size(), -2.0f);
  im2col_ref(d, in.data(), ref.data());
  for (unsigned vlen : {512u, 2048u}) {
    vla::VectorEngine eng(vlen);
    im2col_vla(eng, d, in.data(), got.data());
    ASSERT_EQ(ref, got) << "hw=" << hw << " k=" << k << " s=" << s
                        << " p=" << p << " vlen=" << vlen;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colEquivalence,
    ::testing::Values(std::make_tuple(8, 3, 1, 1), std::make_tuple(8, 3, 2, 1),
                      std::make_tuple(13, 3, 1, 1),
                      std::make_tuple(13, 5, 1, 2),
                      std::make_tuple(9, 5, 2, 2), std::make_tuple(7, 1, 1, 0),
                      std::make_tuple(6, 3, 1, 0),
                      std::make_tuple(16, 7, 3, 3)));

TEST(Im2colVla, LargePaddingBeyondImage) {
  // Pathological: pad > image extent exercises the all-zero row paths.
  const ConvDesc d = make_desc(2, 3, 3, 3, 1, 3);
  auto in = random_vec(18, 9);
  std::vector<float> ref(static_cast<std::size_t>(d.gemm_k()) * d.gemm_n());
  std::vector<float> got(ref.size());
  im2col_ref(d, in.data(), ref.data());
  vla::VectorEngine eng(512);
  im2col_vla(eng, d, in.data(), got.data());
  EXPECT_EQ(ref, got);
}

}  // namespace
}  // namespace vlacnn::dnn

// Auxiliary convolutional-layer kernels: VLA versions vs scalar references.

#include <gtest/gtest.h>

#include <vector>

#include "dnn/kernels.hpp"
#include "test_util.hpp"

namespace vlacnn::dnn {
namespace {

using test::allclose;
using test::random_vec;

class KernelsTest : public ::testing::TestWithParam<unsigned> {
 protected:
  vla::VectorEngine engine() { return vla::VectorEngine(GetParam()); }
  // Sizes chosen to exercise both full strips and tails.
  static constexpr int kChannels = 5;
  static constexpr int kSpatial = 77;
  static constexpr std::size_t kN = kChannels * kSpatial;
};

TEST_P(KernelsTest, Fill) {
  auto eng = engine();
  std::vector<float> got(kN, -1.0f), want(kN);
  fill_cpu(eng, kN, 2.5f, got.data());
  fill_ref(kN, 2.5f, want.data());
  EXPECT_EQ(got, want);
}

TEST_P(KernelsTest, Copy) {
  auto eng = engine();
  auto src = random_vec(kN, 1);
  std::vector<float> got(kN, 0.0f);
  copy_cpu(eng, kN, src.data(), got.data());
  EXPECT_EQ(got, src);
}

TEST_P(KernelsTest, Normalize) {
  auto eng = engine();
  auto x = random_vec(kN, 2);
  auto want = x;
  auto mean = random_vec(kChannels, 3, -0.5f, 0.5f);
  auto var = random_vec(kChannels, 4, 0.5f, 2.0f);
  normalize_cpu(eng, x.data(), mean.data(), var.data(), kChannels, kSpatial);
  normalize_ref(want.data(), mean.data(), var.data(), kChannels, kSpatial);
  EXPECT_TRUE(allclose(x.data(), want.data(), kN, 1e-5f, 1e-6f));
}

TEST_P(KernelsTest, AddBias) {
  auto eng = engine();
  auto x = random_vec(kN, 5);
  auto want = x;
  auto bias = random_vec(kChannels, 6);
  add_bias(eng, x.data(), bias.data(), kChannels, kSpatial);
  add_bias_ref(want.data(), bias.data(), kChannels, kSpatial);
  EXPECT_EQ(x, want);
}

TEST_P(KernelsTest, ScaleBias) {
  auto eng = engine();
  auto x = random_vec(kN, 7);
  auto want = x;
  auto scale = random_vec(kChannels, 8, 0.5f, 1.5f);
  scale_bias(eng, x.data(), scale.data(), kChannels, kSpatial);
  scale_bias_ref(want.data(), scale.data(), kChannels, kSpatial);
  EXPECT_EQ(x, want);
}

TEST_P(KernelsTest, ActivationsMatchReference) {
  for (auto act : {Activation::Linear, Activation::Relu, Activation::Leaky,
                   Activation::Logistic}) {
    auto eng = engine();
    auto x = random_vec(kN, 9, -3.0f, 3.0f);
    auto want = x;
    activate_array(eng, x.data(), kN, act);
    activate_ref(want.data(), kN, act);
    EXPECT_TRUE(allclose(x.data(), want.data(), kN, 1e-5f, 1e-6f))
        << to_string(act);
  }
}

TEST_P(KernelsTest, LeakySemantics) {
  auto eng = engine();
  std::vector<float> x = {-10.0f, -1.0f, 0.0f, 1.0f, 10.0f};
  activate_array(eng, x.data(), x.size(), Activation::Leaky);
  EXPECT_FLOAT_EQ(x[0], -1.0f);
  EXPECT_FLOAT_EQ(x[1], -0.1f);
  EXPECT_FLOAT_EQ(x[2], 0.0f);
  EXPECT_FLOAT_EQ(x[3], 1.0f);
  EXPECT_FLOAT_EQ(x[4], 10.0f);
}

TEST_P(KernelsTest, Axpy) {
  auto eng = engine();
  auto x = random_vec(kN, 10);
  auto y = random_vec(kN, 11);
  auto want = y;
  axpy_cpu(eng, kN, 2.0f, x.data(), y.data());
  for (std::size_t i = 0; i < kN; ++i) want[i] += 2.0f * x[i];
  EXPECT_TRUE(allclose(y.data(), want.data(), kN, 1e-6f, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(VectorLengths, KernelsTest,
                         ::testing::Values(128u, 512u, 2048u, 16384u),
                         [](const auto& info) {
                           return "vl" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vlacnn::dnn

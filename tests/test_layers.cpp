// Individual layer forward semantics against hand-computed references.

#include <gtest/gtest.h>

#include <vector>

#include "dnn/layers.hpp"
#include "gemm/gemm.hpp"
#include "test_util.hpp"

namespace vlacnn::dnn {
namespace {

using test::allclose;
using test::conv_direct_ref;

struct Env {
  vla::VectorEngine eng{512};
  ExecContext ctx{eng};
  Env() { ctx.gemm = gemm::make_gemm_fn(gemm::GemmVariant::Opt3Loop); }
};

TEST(ConvLayerTest, MatchesDirectConvolutionWithoutBnBias) {
  Env env;
  ConvDesc d;
  d.in_c = 3;
  d.in_h = d.in_w = 10;
  d.out_c = 4;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = false;
  d.act = Activation::Linear;
  ConvLayer layer(d, 99);

  // Zero the bias so the output is the raw convolution.
  Tensor in(3, 10, 10);
  Rng rng(1);
  in.randomize(rng);
  // Recompute the expected result including the layer's own bias.
  std::vector<float> want(static_cast<std::size_t>(d.out_c) * 10 * 10);
  conv_direct_ref(d, in.data(), layer.weights(), want.data());

  layer.forward(env.ctx, {&in});
  // Subtract the per-channel bias the layer added.
  std::vector<float> got(layer.output().data(),
                         layer.output().data() + layer.output().size());
  for (int c = 0; c < d.out_c; ++c) {
    const float b = got[static_cast<std::size_t>(c) * 100] -
                    want[static_cast<std::size_t>(c) * 100];
    for (int i = 0; i < 100; ++i)
      got[static_cast<std::size_t>(c) * 100 + i] -= b;
  }
  EXPECT_TRUE(allclose(want.data(), got.data(), got.size(), 2e-3f, 2e-3f));
}

TEST(ConvLayerTest, OneByOneSkipsIm2col) {
  Env env;
  ConvDesc d;
  d.in_c = 8;
  d.in_h = d.in_w = 6;
  d.out_c = 4;
  d.ksize = 1;
  d.stride = 1;
  d.pad = 0;
  d.batch_norm = false;
  d.act = Activation::Linear;
  ConvLayer layer(d, 5);
  Tensor in(8, 6, 6);
  Rng rng(2);
  in.randomize(rng);
  layer.forward(env.ctx, {&in});
  EXPECT_EQ(layer.output().c(), 4);
  EXPECT_EQ(layer.output().h(), 6);
  // Smoke: output must not be all zeros.
  float sum = 0.0f;
  for (std::size_t i = 0; i < layer.output().size(); ++i)
    sum += std::fabs(layer.output()[i]);
  EXPECT_GT(sum, 0.0f);
}

TEST(MaxPoolLayerTest, TwoByTwoStride2) {
  Env env;
  MaxPoolLayer pool(1, 4, 4, 2, 2);
  Tensor in(1, 4, 4);
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = static_cast<float>(i);
  pool.forward(env.ctx, {&in});
  // Darknet pads with size-1 (offset -pad/2 = 0 for size 2): windows are
  // {(0,0)..(1,1)} etc.
  EXPECT_EQ(pool.output().h(), 2);
  EXPECT_EQ(pool.output().at(0, 0, 0), 5.0f);
  EXPECT_EQ(pool.output().at(0, 0, 1), 7.0f);
  EXPECT_EQ(pool.output().at(0, 1, 0), 13.0f);
  EXPECT_EQ(pool.output().at(0, 1, 1), 15.0f);
}

TEST(MaxPoolLayerTest, Stride1KeepsSize) {
  Env env;
  MaxPoolLayer pool(2, 5, 5, 2, 1);
  EXPECT_EQ(pool.out_h(), 5);
  EXPECT_EQ(pool.out_w(), 5);
  Tensor in(2, 5, 5);
  Rng rng(3);
  in.randomize(rng);
  pool.forward(env.ctx, {&in});
  // Every output is >= the corresponding input (max over window incl. self
  // for in-bounds windows).
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      EXPECT_GE(pool.output().at(0, y, x), in.at(0, y, x));
}

TEST(RouteLayerTest, ConcatenatesChannels) {
  Env env;
  Tensor a(2, 3, 3), b(1, 3, 3);
  a.fill(1.0f);
  b.fill(2.0f);
  RouteLayer route({0, 1}, 3, 3, 3);
  route.forward(env.ctx, {&a, &b});
  EXPECT_EQ(route.output().c(), 3);
  EXPECT_EQ(route.output().at(0, 0, 0), 1.0f);
  EXPECT_EQ(route.output().at(1, 2, 2), 1.0f);
  EXPECT_EQ(route.output().at(2, 1, 1), 2.0f);
}

TEST(ShortcutLayerTest, AddsSkipConnection) {
  Env env;
  Tensor prev(1, 2, 2), skip(1, 2, 2);
  prev.fill(3.0f);
  skip.fill(4.0f);
  ShortcutLayer sc(0, 1, 2, 2, Activation::Linear);
  sc.forward(env.ctx, {&prev, &skip});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(sc.output()[i], 7.0f);
}

TEST(UpsampleLayerTest, NearestNeighbourDoubling) {
  Env env;
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  UpsampleLayer up(1, 2, 2);
  up.forward(env.ctx, {&in});
  EXPECT_EQ(up.output().h(), 4);
  EXPECT_EQ(up.output().at(0, 0, 0), 1.0f);
  EXPECT_EQ(up.output().at(0, 0, 1), 1.0f);
  EXPECT_EQ(up.output().at(0, 1, 1), 1.0f);
  EXPECT_EQ(up.output().at(0, 0, 2), 2.0f);
  EXPECT_EQ(up.output().at(0, 3, 3), 4.0f);
}

TEST(ConnectedLayerTest, ComputesDotProducts) {
  Env env;
  ConnectedLayer fc(4, 2, Activation::Linear, 77);
  Tensor in(4, 1, 1);
  for (int i = 0; i < 4; ++i) in[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
  fc.forward(env.ctx, {&in});
  EXPECT_EQ(fc.output().size(), 2u);
  // The result must be finite and deterministic.
  ConnectedLayer fc2(4, 2, Activation::Linear, 77);
  fc2.forward(env.ctx, {&in});
  EXPECT_EQ(fc.output()[0], fc2.output()[0]);
  EXPECT_EQ(fc.output()[1], fc2.output()[1]);
}

TEST(SoftmaxLayerTest, NormalizesToOne) {
  Env env;
  SoftmaxLayer sm(5, 1, 1);
  Tensor in(5, 1, 1);
  Rng rng(4);
  in.randomize(rng, -2.0f, 2.0f);
  sm.forward(env.ctx, {&in});
  float sum = 0.0f;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GT(sm.output()[i], 0.0f);
    sum += sm.output()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(YoloLayerTest, PassesThrough) {
  Env env;
  YoloLayer yolo(2, 3, 3);
  Tensor in(2, 3, 3);
  Rng rng(5);
  in.randomize(rng);
  yolo.forward(env.ctx, {&in});
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(yolo.output()[i], in[i]);
}

}  // namespace
}  // namespace vlacnn::dnn

// Machine presets vs the paper's Table I, and the config mutation helpers.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/machine_config.hpp"

namespace vlacnn::sim {
namespace {

TEST(MachineConfig, RvvPresetMatchesTableI) {
  const MachineConfig c = rvv_gem5();
  EXPECT_EQ(c.isa, Isa::RiscvVector);
  EXPECT_EQ(c.core, CoreKind::InOrder);
  EXPECT_DOUBLE_EQ(c.freq_ghz, 2.0);
  EXPECT_EQ(c.max_vlen_bits, 16384u);
  EXPECT_EQ(c.l1.size_bytes, 64u * 1024);
  EXPECT_EQ(c.l1.associativity, 4u);
  EXPECT_EQ(c.l2.size_bytes, 1024u * 1024);
  EXPECT_EQ(c.l2.associativity, 8u);
  EXPECT_EQ(c.l2.line_bytes, 64u);
  EXPECT_EQ(c.vector_cache_bytes, 2048u);  // 2 KB VectorCache buffer
  EXPECT_FALSE(c.vector_through_l1);
  EXPECT_FALSE(c.hw_prefetch);
  EXPECT_FALSE(c.sw_prefetch_effective);
  EXPECT_EQ(c.lanes, 8u);
}

TEST(MachineConfig, SvePresetMatchesTableI) {
  const MachineConfig c = sve_gem5();
  EXPECT_EQ(c.isa, Isa::ArmSve);
  EXPECT_EQ(c.max_vlen_bits, 2048u);
  EXPECT_TRUE(c.vector_through_l1);
  EXPECT_TRUE(c.lanes_proportional_to_vl);
  EXPECT_EQ(c.with_vlen(512).effective_lanes(), 4u);    // 512/128
  EXPECT_EQ(c.with_vlen(2048).effective_lanes(), 16u);  // 2048/128
}

TEST(MachineConfig, A64fxPresetMatchesTableI) {
  const MachineConfig c = a64fx();
  EXPECT_EQ(c.core, CoreKind::OutOfOrder);
  EXPECT_EQ(c.vlen_bits, 512u);
  EXPECT_EQ(c.l2.size_bytes, 8u * 1024 * 1024);
  EXPECT_EQ(c.l2.associativity, 16u);
  EXPECT_EQ(c.l1.line_bytes, 256u);
  EXPECT_TRUE(c.hw_prefetch);
  EXPECT_TRUE(c.sw_prefetch_effective);
  EXPECT_EQ(c.vector_pipes, 1u);
  EXPECT_EQ(c.issue_width, 4u);
  EXPECT_GT(c.tlb_entries, 0u);  // real silicon pays page walks
  // Paper §VI-C: single-core peak 62.5 GFLOP/s (16 fp32 FMA lanes @ 2 GHz).
  EXPECT_NEAR(c.peak_gflops(), 62.5, 3.0);
}

TEST(MachineConfig, WithVlenValidates) {
  const MachineConfig c = rvv_gem5();
  EXPECT_EQ(c.with_vlen(16384).vlen_bits, 16384u);
  EXPECT_THROW(c.with_vlen(32768), InvalidArgument);  // beyond MVL
  EXPECT_THROW(c.with_vlen(300), InvalidArgument);    // not pow2
  const MachineConfig s = sve_gem5();
  EXPECT_THROW(s.with_vlen(4096), InvalidArgument);   // SVE MVL is 2048
}

TEST(MachineConfig, WithL2SizeAdjustsLatencyModel) {
  const MachineConfig c = rvv_gem5();
  // Paper methodology: constant low latency (12 cycles @ CACTI-extrapolated).
  EXPECT_EQ(c.with_l2_size(256ull << 20).l2.latency_cycles, 12u);
  EXPECT_EQ(l2_latency_for_size(1 << 20, L2LatencyModel::kConstant), 12u);
  // CACTI-like ablation model grows with capacity.
  EXPECT_GT(l2_latency_for_size(256ull << 20, L2LatencyModel::kCactiLike), 12u);
}

TEST(MachineConfig, ElementsPerVreg) {
  EXPECT_EQ(rvv_gem5().with_vlen(512).elements_per_vreg(), 16u);
  EXPECT_EQ(rvv_gem5().with_vlen(16384).elements_per_vreg(), 512u);
}

TEST(MachineConfig, WithLanesValidates) {
  EXPECT_EQ(rvv_gem5().with_lanes(2).effective_lanes(), 2u);
  EXPECT_THROW(rvv_gem5().with_lanes(3), InvalidArgument);
}

}  // namespace
}  // namespace vlacnn::sim

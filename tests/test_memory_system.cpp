// Memory hierarchy paths: RVV VectorCache->L2 vs SVE L1->L2, software
// prefetch gating, strided-access costing, DRAM accounting.

#include <gtest/gtest.h>

#include "sim/memory_system.hpp"

namespace vlacnn::sim {
namespace {

TEST(MemorySystem, RvvVectorPathBypassesL1) {
  MemorySystem mem(rvv_gem5());
  mem.vector_access(0x10000, 256, false);
  EXPECT_EQ(mem.l1_stats().accesses, 0u);  // vector data never touches L1
  EXPECT_GT(mem.l2_stats().accesses, 0u);
  ASSERT_NE(mem.vector_cache_stats(), nullptr);
  EXPECT_GT(mem.vector_cache_stats()->accesses, 0u);
}

TEST(MemorySystem, SvePathGoesThroughL1) {
  MemorySystem mem(sve_gem5());
  mem.vector_access(0x10000, 256, false);
  EXPECT_GT(mem.l1_stats().accesses, 0u);
  EXPECT_EQ(mem.vector_cache_stats(), nullptr);
}

TEST(MemorySystem, RepeatAccessHitsAndCostsLess) {
  MemorySystem mem(sve_gem5());
  const MemCost cold = mem.vector_access(0x20000, 64, false);
  const MemCost warm = mem.vector_access(0x20000, 64, false);
  EXPECT_GT(cold.overlappable_cycles, warm.overlappable_cycles);
  EXPECT_EQ(warm.overlappable_cycles, 0u);  // L1 hit: only serial cost
}

TEST(MemorySystem, MultiLineAccessTouchesCorrectLineCount) {
  MemorySystem mem(sve_gem5());
  const MemCost c = mem.vector_access(0x30000, 64 * 7, false);
  EXPECT_EQ(c.lines, 7u);
  // Unaligned span crossing one extra line:
  const MemCost c2 = mem.vector_access(0x40020, 64, false);
  EXPECT_EQ(c2.lines, 2u);
}

TEST(MemorySystem, StridedCostsPerElementLine) {
  MemorySystem mem(sve_gem5());
  // 16 elements, stride 256 B: every element its own line.
  const MemCost c = mem.vector_access_strided(0x80000, 256, 4, 16, false);
  EXPECT_EQ(c.lines, 16u);
  // Contiguous equivalent touches just one line.
  mem.reset();
  const MemCost c2 = mem.vector_access(0x80000, 16 * 4, false);
  EXPECT_EQ(c2.lines, 1u);
}

TEST(MemorySystem, DramLinesCountedOnL2Miss) {
  MemorySystem mem(rvv_gem5());
  mem.vector_access(0x100000, 64, false);
  EXPECT_EQ(mem.dram_line_fills(), 1u);
  mem.vector_access(0x100000, 64, false);  // now resident
  EXPECT_EQ(mem.dram_line_fills(), 1u);
}

TEST(MemorySystem, SoftwarePrefetchIsNoOpWhenUnsupported) {
  // RVV and gem5-SVE ignore prefetch instructions (paper §IV-A).
  for (const auto& cfg : {rvv_gem5(), sve_gem5()}) {
    MemorySystem mem(cfg);
    mem.software_prefetch(0x50000, 256, 2);
    const MemCost c = mem.vector_access(0x50000, 64, false);
    EXPECT_GT(c.overlappable_cycles, 0u) << cfg.name;  // still a cold miss
  }
}

TEST(MemorySystem, SoftwarePrefetchEffectiveOnA64fx) {
  MemorySystem mem(a64fx());
  mem.software_prefetch(0x50000, 256, 1);
  const MemCost c = mem.vector_access(0x50000, 64, false);
  EXPECT_EQ(c.overlappable_cycles, 0u);  // L1 hit thanks to the prefetch
}

TEST(MemorySystem, HwPrefetcherActiveOnlyOnA64fx) {
  MemorySystem a(a64fx());
  EXPECT_NE(a.prefetcher_stats(), nullptr);
  MemorySystem r(rvv_gem5());
  EXPECT_EQ(r.prefetcher_stats(), nullptr);
}

TEST(MemorySystem, ScalarPathUsesL1OnBothIsas) {
  for (const auto& cfg : {rvv_gem5(), sve_gem5()}) {
    MemorySystem mem(cfg);
    mem.scalar_access(0x60000, 4, false);
    EXPECT_EQ(mem.l1_stats().accesses, 1u) << cfg.name;
  }
}

TEST(MemorySystem, LargerL2ReducesMissesOnCyclicSweep) {
  // Property backing Fig. 7: a working set cycled repeatedly misses less
  // in a larger L2.
  auto run = [](std::uint64_t l2_bytes) {
    MachineConfig cfg = rvv_gem5().with_l2_size(l2_bytes);
    MemorySystem mem(cfg);
    const std::uint64_t footprint = 4ull * 1024 * 1024;  // 4 MiB
    for (int rep = 0; rep < 3; ++rep)
      for (std::uint64_t a = 0; a < footprint; a += 64)
        mem.vector_access(a, 64, false);
    return mem.l2_stats().miss_rate();
  };
  const double small = run(1 * 1024 * 1024);
  const double big = run(8 * 1024 * 1024);
  EXPECT_GT(small, big);
  EXPECT_LT(big, 0.5);
}

TEST(MemorySystem, ResetClearsEverything) {
  MemorySystem mem(a64fx());
  mem.vector_access(0x0, 1024, true);
  mem.reset();
  EXPECT_EQ(mem.l1_stats().accesses, 0u);
  EXPECT_EQ(mem.l2_stats().accesses, 0u);
  EXPECT_EQ(mem.dram_line_fills(), 0u);
}

}  // namespace
}  // namespace vlacnn::sim

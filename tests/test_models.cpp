// Model zoo structure: layer counts, conv ordinals and GEMM shapes must
// match the paper's description of YOLOv3 / YOLOv3-tiny / VGG16.

#include <gtest/gtest.h>

#include "dnn/models.hpp"

namespace vlacnn::dnn {
namespace {

const ConvLayer* conv_at_ordinal(const Network& net, int ordinal_1based) {
  int seen = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const auto* conv = dynamic_cast<const ConvLayer*>(&net.layer(i));
    if (conv != nullptr && ++seen == ordinal_1based) return conv;
  }
  return nullptr;
}

TEST(Yolov3, LayerCountsMatchPaper) {
  // §II-B: 107 layers, 75 convolutional.
  auto net = build_yolov3(608);
  EXPECT_EQ(net->num_layers(), 107u);
  EXPECT_EQ(net->num_conv_layers(), 75u);
}

TEST(Yolov3, Prefix20Has15ConvLayers) {
  auto net = build_yolov3_prefix_20(96);
  EXPECT_EQ(net->num_layers(), 20u);
  EXPECT_EQ(net->num_conv_layers(), 15u);
}

TEST(Yolov3, First4ConvPrefix) {
  auto net = build_yolov3_first4conv(96);
  EXPECT_EQ(net->num_layers(), 4u);
  EXPECT_EQ(net->num_conv_layers(), 4u);
}

TEST(Yolov3, Table4GemmShapesExact) {
  // Spot-check the discrete layers of Table IV at 608x608 input.
  auto net = build_yolov3(608);
  struct Want {
    int ordinal, m, n, k;
  };
  const Want wants[] = {
      {1, 32, 369664, 27},   {2, 64, 92416, 288},  {3, 32, 92416, 64},
      {5, 128, 23104, 576},  {6, 64, 23104, 128},  {10, 256, 5776, 1152},
      {11, 128, 5776, 256},  {38, 256, 1444, 512}, {44, 1024, 361, 4608},
      {45, 512, 361, 1024},  {59, 255, 361, 1024}, {61, 256, 1444, 768},
      {62, 512, 1444, 2304}, {75, 255, 5776, 256},
  };
  for (const auto& w : wants) {
    const ConvLayer* conv = conv_at_ordinal(*net, w.ordinal);
    ASSERT_NE(conv, nullptr) << "L" << w.ordinal;
    EXPECT_EQ(conv->desc().gemm_m(), w.m) << "L" << w.ordinal;
    EXPECT_EQ(conv->desc().gemm_n(), w.n) << "L" << w.ordinal;
    EXPECT_EQ(conv->desc().gemm_k(), w.k) << "L" << w.ordinal;
  }
}

TEST(Yolov3, StrideAndKernelMix) {
  // §VII-A: 38 of the 75 conv layers are 3x3; the rest are 1x1. The
  // canonical yolov3.cfg has 33 stride-1 + 5 stride-2 3x3 convs (the paper
  // text says 32+6; the 3x3 total of 38 agrees).
  auto net = build_yolov3(608);
  int k3s1 = 0, k3s2 = 0, k1 = 0;
  for (std::size_t i = 0; i < net->num_layers(); ++i) {
    const auto* conv = dynamic_cast<const ConvLayer*>(&net->layer(i));
    if (conv == nullptr) continue;
    if (conv->desc().ksize == 3 && conv->desc().stride == 1) ++k3s1;
    if (conv->desc().ksize == 3 && conv->desc().stride == 2) ++k3s2;
    if (conv->desc().ksize == 1) ++k1;
  }
  EXPECT_EQ(k3s1, 33);
  EXPECT_EQ(k3s2, 5);
  EXPECT_EQ(k1, 75 - 38);
}

TEST(Yolov3Tiny, Has13ConvLayers) {
  auto net = build_yolov3_tiny(416);
  EXPECT_EQ(net->num_conv_layers(), 13u);
  EXPECT_EQ(net->num_layers(), 24u);
}

TEST(Vgg16, StructureMatchesPaper) {
  // §II-B: 13 convolutional + 3 fully-connected layers; all convs 3x3/s1.
  auto net = build_vgg16(224);
  EXPECT_EQ(net->num_conv_layers(), 13u);
  int fc = 0;
  for (std::size_t i = 0; i < net->num_layers(); ++i) {
    const auto* conv = dynamic_cast<const ConvLayer*>(&net->layer(i));
    if (conv != nullptr) {
      EXPECT_EQ(conv->desc().ksize, 3);
      EXPECT_EQ(conv->desc().stride, 1);
    }
    if (dynamic_cast<const ConnectedLayer*>(&net->layer(i)) != nullptr) ++fc;
  }
  EXPECT_EQ(fc, 3);
}

TEST(Vgg16, AllConvLayersAreWinogradEligible) {
  // §VII-A: "all convolutional layers [of VGG16] use 3x3 kernel-sized
  // filters" -> the whole network runs through Winograd.
  auto net = build_vgg16(64);
  for (std::size_t i = 0; i < net->num_layers(); ++i) {
    const auto* conv = dynamic_cast<const ConvLayer*>(&net->layer(i));
    if (conv == nullptr) continue;
    EXPECT_EQ(conv->desc().ksize, 3);
    EXPECT_EQ(conv->desc().stride, 1);
    EXPECT_EQ(conv->desc().pad, 1);
  }
}

TEST(Models, ScaledInputsProduceConsistentShapes) {
  for (int hw : {96, 160, 320}) {
    auto net = build_yolov3(hw);
    EXPECT_EQ(net->num_layers(), 107u) << hw;
    // Detection head output spatial = input/32 at scale 1.
    EXPECT_EQ(net->layer(82).output().h(), hw / 32) << hw;
  }
}

TEST(Models, WeightsDeterministicAcrossBuilds) {
  auto a = build_yolov3(96, 10, 42);
  auto b = build_yolov3(96, 10, 42);
  const auto* ca = dynamic_cast<const ConvLayer*>(&a->layer(0));
  const auto* cb = dynamic_cast<const ConvLayer*>(&b->layer(0));
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  for (std::int64_t i = 0; i < ca->desc().weight_count(); ++i)
    ASSERT_EQ(ca->weights()[i], cb->weights()[i]);
}

TEST(Models, TotalFlopsPositiveAndScaleQuadratically) {
  auto small = build_yolov3(96);
  auto big = build_yolov3(192);
  EXPECT_GT(small->total_flops(), 0.0);
  EXPECT_NEAR(big->total_flops() / small->total_flops(), 4.0, 0.3);
}

}  // namespace
}  // namespace vlacnn::dnn
